#include "isa/opcodes.hh"

#include <array>

namespace fpc::isa
{

namespace
{

constexpr OpInfo illegalOp = {"???", OperandKind::Illegal,
                              OpClass::Illegal, -1};

std::array<OpInfo, 256>
buildTable()
{
    std::array<OpInfo, 256> t;
    t.fill(illegalOp);

    auto def = [&t](Op op, const char *name, OperandKind kind, OpClass cls,
                    std::int32_t embedded = -1) {
        t[static_cast<std::uint8_t>(op)] = OpInfo{name, kind, cls,
                                                  embedded};
    };

    def(Op::NOOP, "NOOP", OperandKind::None, OpClass::Noop);
    def(Op::HALT, "HALT", OperandKind::None, OpClass::Halt);
    def(Op::DUP, "DUP", OperandKind::None, OpClass::Dup);
    def(Op::DROP, "DROP", OperandKind::None, OpClass::Drop);
    def(Op::EXCH, "EXCH", OperandKind::None, OpClass::Exch);
    def(Op::OUT, "OUT", OperandKind::None, OpClass::Out);
    def(Op::LRC, "LRC", OperandKind::None, OpClass::LoadRetCtx);
    def(Op::XF, "XF", OperandKind::None, OpClass::Xfer);
    def(Op::RET, "RET", OperandKind::None, OpClass::Ret);
    def(Op::BRK, "BRK", OperandKind::None, OpClass::Brk);
    def(Op::YIELD, "YIELD", OperandKind::None, OpClass::Yield);

    static const char *llNames[] = {"LL0", "LL1", "LL2", "LL3",
                                    "LL4", "LL5", "LL6", "LL7"};
    for (int i = 0; i < 8; ++i) {
        def(static_cast<Op>(static_cast<int>(Op::LL0) + i), llNames[i],
            OperandKind::None, OpClass::LoadLocal, i);
    }
    def(Op::LLB, "LLB", OperandKind::UByte, OpClass::LoadLocal);
    def(Op::LLA, "LLA", OperandKind::UByte, OpClass::LoadLocalAddr);
    def(Op::RD, "RD", OperandKind::None, OpClass::LoadIndirect);
    def(Op::WR, "WR", OperandKind::None, OpClass::StoreIndirect);
    def(Op::READF, "READF", OperandKind::UByte, OpClass::ReadField);
    def(Op::WRITEF, "WRITEF", OperandKind::UByte, OpClass::WriteField);
    def(Op::LPD, "LPD", OperandKind::UByte, OpClass::LoadDesc);

    static const char *slNames[] = {"SL0", "SL1", "SL2", "SL3"};
    for (int i = 0; i < 4; ++i) {
        def(static_cast<Op>(static_cast<int>(Op::SL0) + i), slNames[i],
            OperandKind::None, OpClass::StoreLocal, i);
    }
    def(Op::SLB, "SLB", OperandKind::UByte, OpClass::StoreLocal);

    static const char *lgNames[] = {"LG0", "LG1", "LG2", "LG3"};
    for (int i = 0; i < 4; ++i) {
        def(static_cast<Op>(static_cast<int>(Op::LG0) + i), lgNames[i],
            OperandKind::None, OpClass::LoadGlobal, i);
    }
    def(Op::LGB, "LGB", OperandKind::UByte, OpClass::LoadGlobal);
    def(Op::SGB, "SGB", OperandKind::UByte, OpClass::StoreGlobal);
    def(Op::SG0, "SG0", OperandKind::None, OpClass::StoreGlobal, 0);
    def(Op::SG1, "SG1", OperandKind::None, OpClass::StoreGlobal, 1);

    static const char *liNames[] = {"LI0", "LI1", "LI2", "LI3",
                                    "LI4", "LI5", "LI6"};
    for (int i = 0; i < 7; ++i) {
        def(static_cast<Op>(static_cast<int>(Op::LI0) + i), liNames[i],
            OperandKind::None, OpClass::LoadImm, i);
    }
    def(Op::LIN1, "LIN1", OperandKind::None, OpClass::LoadImm, 0xFFFF);
    def(Op::LIB, "LIB", OperandKind::UByte, OpClass::LoadImm);
    def(Op::LIW, "LIW", OperandKind::UWord, OpClass::LoadImm);

    def(Op::ADD, "ADD", OperandKind::None, OpClass::Arith);
    def(Op::SUB, "SUB", OperandKind::None, OpClass::Arith);
    def(Op::MUL, "MUL", OperandKind::None, OpClass::Arith);
    def(Op::DIV, "DIV", OperandKind::None, OpClass::Arith);
    def(Op::MOD, "MOD", OperandKind::None, OpClass::Arith);
    def(Op::NEG, "NEG", OperandKind::None, OpClass::Arith);
    def(Op::AND, "AND", OperandKind::None, OpClass::Arith);
    def(Op::IOR, "IOR", OperandKind::None, OpClass::Arith);
    def(Op::XOR, "XOR", OperandKind::None, OpClass::Arith);
    def(Op::NOT, "NOT", OperandKind::None, OpClass::Arith);
    def(Op::SHL, "SHL", OperandKind::None, OpClass::Arith);
    def(Op::SHR, "SHR", OperandKind::None, OpClass::Arith);

    def(Op::LT, "LT", OperandKind::None, OpClass::Compare);
    def(Op::LE, "LE", OperandKind::None, OpClass::Compare);
    def(Op::EQ, "EQ", OperandKind::None, OpClass::Compare);
    def(Op::NE, "NE", OperandKind::None, OpClass::Compare);
    def(Op::GE, "GE", OperandKind::None, OpClass::Compare);
    def(Op::GT, "GT", OperandKind::None, OpClass::Compare);

    static const char *jNames[] = {"J2", "J3", "J4", "J5", "J6", "J7",
                                   "J8"};
    for (int i = 0; i < 7; ++i) {
        def(static_cast<Op>(static_cast<int>(Op::J2) + i), jNames[i],
            OperandKind::None, OpClass::Jump, i + 2);
    }
    def(Op::JB, "JB", OperandKind::SByte, OpClass::Jump);
    def(Op::JW, "JW", OperandKind::SWord, OpClass::Jump);
    def(Op::JZB, "JZB", OperandKind::SByte, OpClass::JumpZero);
    def(Op::JNZB, "JNZB", OperandKind::SByte, OpClass::JumpNotZero);

    static const char *efcNames[] = {"EFC0", "EFC1", "EFC2", "EFC3",
                                     "EFC4", "EFC5", "EFC6", "EFC7"};
    for (int i = 0; i < 8; ++i) {
        def(static_cast<Op>(static_cast<int>(Op::EFC0) + i), efcNames[i],
            OperandKind::None, OpClass::ExtCall, i);
    }
    def(Op::EFCB, "EFCB", OperandKind::UByte, OpClass::ExtCall);

    static const char *lfcNames[] = {"LFC0", "LFC1", "LFC2", "LFC3",
                                     "LFC4", "LFC5", "LFC6", "LFC7"};
    for (int i = 0; i < 8; ++i) {
        def(static_cast<Op>(static_cast<int>(Op::LFC0) + i), lfcNames[i],
            OperandKind::None, OpClass::LocalCall, i);
    }
    def(Op::LFCB, "LFCB", OperandKind::UByte, OpClass::LocalCall);

    def(Op::DFC, "DFC", OperandKind::Code24, OpClass::DirectCall);
    def(Op::FCALL, "FCALL", OperandKind::Desc40, OpClass::FatCall);

    static const char *sdfcNames[] = {
        "SDFC0", "SDFC1", "SDFC2", "SDFC3", "SDFC4", "SDFC5", "SDFC6",
        "SDFC7", "SDFC8", "SDFC9", "SDFC10", "SDFC11", "SDFC12",
        "SDFC13", "SDFC14", "SDFC15"};
    for (int i = 0; i < 16; ++i) {
        def(static_cast<Op>(static_cast<int>(Op::SDFC0) + i),
            sdfcNames[i], OperandKind::Rel20, OpClass::ShortDirectCall,
            i);
    }

    return t;
}

const std::array<OpInfo, 256> opTable = buildTable();

} // namespace

const OpInfo &
opInfo(std::uint8_t opcode)
{
    return opTable[opcode];
}

unsigned
instLength(std::uint8_t opcode)
{
    switch (opTable[opcode].kind) {
      case OperandKind::None:
        return 1;
      case OperandKind::UByte:
      case OperandKind::SByte:
        return 2;
      case OperandKind::UWord:
      case OperandKind::SWord:
      case OperandKind::Rel20:
        return 3;
      case OperandKind::Code24:
        return 4;
      case OperandKind::Desc40:
        return 6;
      case OperandKind::Illegal:
      default:
        return 1;
    }
}

bool
opcodeValid(std::uint8_t opcode)
{
    return opTable[opcode].cls != OpClass::Illegal;
}

} // namespace fpc::isa
