/**
 * @file
 * Disassembler: renders code bytes back into mnemonics, used by the
 * examples and by debugging output.
 */

#ifndef FPC_ISA_DISASM_HH
#define FPC_ISA_DISASM_HH

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "isa/decode.hh"

namespace fpc::isa
{

/** Render one decoded instruction, e.g. "LLB 12" or "EFC3". */
std::string instToString(const Inst &inst);

/** One line of disassembly. */
struct DisasmLine
{
    std::size_t offset;
    Inst inst;
    std::string text;
};

/** Disassemble a code buffer from start to end (or the buffer end). */
std::vector<DisasmLine> disassemble(std::span<const std::uint8_t> code,
                                    std::size_t start = 0,
                                    std::size_t end = SIZE_MAX);

} // namespace fpc::isa

#endif // FPC_ISA_DISASM_HH
