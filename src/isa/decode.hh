/**
 * @file
 * Instruction decoding and encoding.
 *
 * decode() folds operand bytes and opcode-embedded values into a
 * single signed operand so the interpreter never re-derives encoding
 * details. encode() is the inverse, used by the assembler and by the
 * binder when it rewrites call sites (§6).
 */

#ifndef FPC_ISA_DECODE_HH
#define FPC_ISA_DECODE_HH

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "isa/opcodes.hh"

namespace fpc::isa
{

/** One decoded instruction. */
struct Inst
{
    Op op = Op::NOOP;
    OpClass cls = OpClass::Illegal;
    /**
     * The folded operand:
     *  - embedded values (LL3 -> 3, J5 -> 5, LI4 -> 4, EFC2 -> 2);
     *  - byte/word operands, sign-extended where the kind is signed;
     *  - DFC: the 24-bit absolute code byte address;
     *  - SDFC: the full signed 20-bit PC-relative offset;
     *  - FCALL: the 24-bit code byte address (environment in operand2).
     */
    std::int32_t operand = 0;
    /** FCALL only: the 16-bit environment (global frame) address. */
    std::int32_t operand2 = 0;
    unsigned length = 1;
};

/** Fetches the byte at the given offset from the instruction start. */
using FetchFn = std::function<std::uint8_t(unsigned)>;

/** Decode one instruction through a byte-fetch callback. */
Inst decode(const FetchFn &fetch);

/** Decode one instruction from a buffer at the given offset. */
Inst decodeAt(std::span<const std::uint8_t> code, std::size_t offset);

/**
 * Append the encoding of (op, operand) to out. The operand must match
 * the opcode's OperandKind (embedded-operand opcodes take no operand
 * argument; pass 0). Panics when the operand does not fit.
 */
void encode(std::vector<std::uint8_t> &out, Op op,
            std::int32_t operand = 0, std::int32_t operand2 = 0);

/** @name Compact-form selection (paper §5 space optimization)
 *  Pick the shortest opcode for the given operand value.
 *  @{ */
Op loadLocalOp(unsigned index);
Op storeLocalOp(unsigned index);
Op loadGlobalOp(unsigned index);
Op storeGlobalOp(unsigned index);
Op loadImmOp(std::uint16_t value);
Op extCallOp(unsigned lv_index);
Op localCallOp(unsigned ev_index);
/** @} */

} // namespace fpc::isa

#endif // FPC_ISA_DECODE_HH
