#include "isa/disasm.hh"

#include "common/strfmt.hh"

namespace fpc::isa
{

std::string
instToString(const Inst &inst)
{
    const OpInfo &info = opInfo(inst.op);
    if (info.kind == OperandKind::None ||
        info.kind == OperandKind::Illegal) {
        return info.name;
    }
    if (info.kind == OperandKind::Desc40)
        return strfmt("{} {} {}", info.name, inst.operand, inst.operand2);
    return strfmt("{} {}", info.name, inst.operand);
}

std::vector<DisasmLine>
disassemble(std::span<const std::uint8_t> code, std::size_t start,
            std::size_t end)
{
    std::vector<DisasmLine> lines;
    std::size_t pos = start;
    const std::size_t stop = std::min<std::size_t>(end, code.size());
    while (pos < stop) {
        Inst inst = decodeAt(code, pos);
        lines.push_back({pos, inst, instToString(inst)});
        pos += inst.length;
    }
    return lines;
}

} // namespace fpc::isa
