#include "isa/decode.hh"

#include "common/bits.hh"
#include "common/logging.hh"

namespace fpc::isa
{

Inst
decode(const FetchFn &fetch)
{
    const std::uint8_t opcode = fetch(0);
    const OpInfo &info = opInfo(opcode);

    Inst inst;
    inst.op = static_cast<Op>(opcode);
    inst.cls = info.cls;
    inst.length = instLength(opcode);

    switch (info.kind) {
      case OperandKind::None:
        inst.operand = info.embedded;
        break;
      case OperandKind::UByte:
        inst.operand = fetch(1);
        break;
      case OperandKind::SByte:
        inst.operand = static_cast<std::int8_t>(fetch(1));
        break;
      case OperandKind::UWord:
        inst.operand = (fetch(1) << 8) | fetch(2);
        break;
      case OperandKind::SWord:
        inst.operand =
            static_cast<std::int16_t>((fetch(1) << 8) | fetch(2));
        break;
      case OperandKind::Code24:
        inst.operand = (fetch(1) << 16) | (fetch(2) << 8) | fetch(3);
        break;
      case OperandKind::Rel20: {
        std::uint32_t raw = (static_cast<std::uint32_t>(info.embedded)
                             << 16) |
                            (fetch(1) << 8) | fetch(2);
        // Sign-extend from bit 19.
        if (raw & 0x80000)
            raw |= 0xFFF00000u;
        inst.operand = static_cast<std::int32_t>(raw);
        break;
      }
      case OperandKind::Desc40:
        inst.operand = (fetch(1) << 16) | (fetch(2) << 8) | fetch(3);
        inst.operand2 = (fetch(4) << 8) | fetch(5);
        break;
      case OperandKind::Illegal:
        inst.operand = 0;
        break;
    }
    return inst;
}

Inst
decodeAt(std::span<const std::uint8_t> code, std::size_t offset)
{
    return decode([code, offset](unsigned i) -> std::uint8_t {
        const std::size_t pos = offset + i;
        if (pos >= code.size())
            panic("decodeAt: read past end of code ({} of {})", pos,
                  code.size());
        return code[pos];
    });
}

void
encode(std::vector<std::uint8_t> &out, Op op, std::int32_t operand,
       std::int32_t operand2)
{
    const OpInfo &info = opInfo(op);
    out.push_back(static_cast<std::uint8_t>(op));

    switch (info.kind) {
      case OperandKind::None:
        break;
      case OperandKind::UByte:
        if (!fitsUnsigned(static_cast<std::uint32_t>(operand), 8))
            panic("encode {}: operand {} does not fit in a byte",
                  info.name, operand);
        out.push_back(static_cast<std::uint8_t>(operand));
        break;
      case OperandKind::SByte:
        if (!fitsSigned(operand, 8))
            panic("encode {}: operand {} does not fit in a signed byte",
                  info.name, operand);
        out.push_back(static_cast<std::uint8_t>(operand & 0xFF));
        break;
      case OperandKind::UWord:
      case OperandKind::SWord:
        if (info.kind == OperandKind::UWord
                ? !fitsUnsigned(static_cast<std::uint32_t>(operand), 16)
                : !fitsSigned(operand, 16)) {
            panic("encode {}: operand {} does not fit in a word",
                  info.name, operand);
        }
        out.push_back(static_cast<std::uint8_t>((operand >> 8) & 0xFF));
        out.push_back(static_cast<std::uint8_t>(operand & 0xFF));
        break;
      case OperandKind::Code24:
        if (!fitsUnsigned(static_cast<std::uint32_t>(operand), 24))
            panic("encode {}: address {} does not fit in 24 bits",
                  info.name, operand);
        out.push_back(static_cast<std::uint8_t>((operand >> 16) & 0xFF));
        out.push_back(static_cast<std::uint8_t>((operand >> 8) & 0xFF));
        out.push_back(static_cast<std::uint8_t>(operand & 0xFF));
        break;
      case OperandKind::Rel20: {
        if (!fitsSigned(operand, 20))
            panic("encode {}: offset {} does not fit in 20 bits",
                  info.name, operand);
        const std::uint32_t raw =
            static_cast<std::uint32_t>(operand) & 0xFFFFF;
        const unsigned high = raw >> 16;
        if (static_cast<std::int32_t>(high) != info.embedded) {
            panic("encode {}: high bits {} need SDFC{}", info.name,
                  high, high);
        }
        out.push_back(static_cast<std::uint8_t>((raw >> 8) & 0xFF));
        out.push_back(static_cast<std::uint8_t>(raw & 0xFF));
        break;
      }
      case OperandKind::Desc40:
        if (!fitsUnsigned(static_cast<std::uint32_t>(operand), 24))
            panic("encode {}: address {} does not fit in 24 bits",
                  info.name, operand);
        if (!fitsUnsigned(static_cast<std::uint32_t>(operand2), 16))
            panic("encode {}: environment {} does not fit in 16 bits",
                  info.name, operand2);
        out.push_back(static_cast<std::uint8_t>((operand >> 16) & 0xFF));
        out.push_back(static_cast<std::uint8_t>((operand >> 8) & 0xFF));
        out.push_back(static_cast<std::uint8_t>(operand & 0xFF));
        out.push_back(static_cast<std::uint8_t>((operand2 >> 8) & 0xFF));
        out.push_back(static_cast<std::uint8_t>(operand2 & 0xFF));
        break;
      case OperandKind::Illegal:
        panic("encode: illegal opcode {}",
              static_cast<int>(static_cast<std::uint8_t>(op)));
    }
}

namespace
{

Op
opPlus(Op base, unsigned n)
{
    return static_cast<Op>(static_cast<unsigned>(base) + n);
}

} // namespace

Op
loadLocalOp(unsigned index)
{
    return index < 8 ? opPlus(Op::LL0, index) : Op::LLB;
}

Op
storeLocalOp(unsigned index)
{
    return index < 4 ? opPlus(Op::SL0, index) : Op::SLB;
}

Op
loadGlobalOp(unsigned index)
{
    return index < 4 ? opPlus(Op::LG0, index) : Op::LGB;
}

Op
storeGlobalOp(unsigned index)
{
    return index < 2 ? opPlus(Op::SG0, index) : Op::SGB;
}

Op
loadImmOp(std::uint16_t value)
{
    if (value <= 6)
        return opPlus(Op::LI0, value);
    if (value == 0xFFFF)
        return Op::LIN1;
    if (value <= 0xFF)
        return Op::LIB;
    return Op::LIW;
}

Op
extCallOp(unsigned lv_index)
{
    return lv_index < 8 ? opPlus(Op::EFC0, lv_index) : Op::EFCB;
}

Op
localCallOp(unsigned ev_index)
{
    return ev_index < 8 ? opPlus(Op::LFC0, ev_index) : Op::LFCB;
}

} // namespace fpc::isa
