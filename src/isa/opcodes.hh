/**
 * @file
 * The FPC byte-coded instruction set.
 *
 * The encoding follows the Mesa design criteria from paper §5: one- to
 * three-byte instructions, a stack (not registers) for working
 * storage, compact one-byte forms for the statically common cases —
 * loads of the first few locals, small literals, short jumps, and
 * calls of the first few link-vector / entry-vector indices — so that
 * roughly two thirds of compiled instructions occupy a single byte.
 *
 * Transfers:
 *  - EFCn / EFCB: EXTERNALCALL by link-vector index (§5.1);
 *  - LFCn / LFCB: LOCALCALL by entry-vector index (§5.1);
 *  - RET: one-byte RETURN;
 *  - DFC: four-byte DIRECTCALL with a 24-bit code byte address (§6);
 *  - SDFC0..15: three-byte SHORTDIRECTCALL, sixteen opcodes each
 *    contributing 4 high bits to a signed 20-bit PC-relative offset,
 *    "one megabyte around the instruction" (§6, D1);
 *  - XF: the general XFER primitive taking a context from the stack;
 *  - LRC: push returnContext (how a callee/coroutinee learns its
 *    caller, §3).
 */

#ifndef FPC_ISA_OPCODES_HH
#define FPC_ISA_OPCODES_HH

#include <cstdint>

namespace fpc::isa
{

/** Raw opcode values. Gaps are illegal opcodes (decode traps). */
enum class Op : std::uint8_t
{
    NOOP = 0x00,
    HALT = 0x01,
    DUP = 0x02,
    DROP = 0x03,
    EXCH = 0x04,
    OUT = 0x05,   ///< pop a word to the machine's output channel
    LRC = 0x06,   ///< push returnContext
    XF = 0x07,    ///< general XFER: pop destination context
    RET = 0x08,   ///< RETURN
    BRK = 0x09,   ///< programmed trap
    YIELD = 0x0A, ///< invoke the process scheduler hook

    // Local variable access. LL0..LL7 embed the local index.
    LL0 = 0x10, LL1 = 0x11, LL2 = 0x12, LL3 = 0x13,
    LL4 = 0x14, LL5 = 0x15, LL6 = 0x16, LL7 = 0x17,
    LLB = 0x18,  ///< load local, byte index
    LLA = 0x19,  ///< load the *address* of a local (§7.4 pointers)
    RD = 0x1A,   ///< pop addr, push mem[addr]
    WR = 0x1B,   ///< pop addr, pop value, mem[addr] := value
    READF = 0x1C,  ///< pop addr, push mem[addr + field]
    WRITEF = 0x1D, ///< pop addr, pop value, mem[addr + field] := value
    LPD = 0x1E,  ///< push the link-vector entry (a context word)

    SL0 = 0x20, SL1 = 0x21, SL2 = 0x22, SL3 = 0x23,
    SLB = 0x24,  ///< store local, byte index

    LG0 = 0x28, LG1 = 0x29, LG2 = 0x2A, LG3 = 0x2B,
    LGB = 0x2C,  ///< load global, byte index
    SGB = 0x2D,  ///< store global, byte index
    SG0 = 0x2E, SG1 = 0x2F,

    // Literals. LI0..LI6 embed the value.
    LI0 = 0x30, LI1 = 0x31, LI2 = 0x32, LI3 = 0x33,
    LI4 = 0x34, LI5 = 0x35, LI6 = 0x36,
    LIN1 = 0x37, ///< push -1 (0xFFFF)
    LIB = 0x38,  ///< push unsigned byte literal
    LIW = 0x39,  ///< push word literal

    ADD = 0x40, SUB = 0x41, MUL = 0x42, DIV = 0x43, MOD = 0x44,
    NEG = 0x45, AND = 0x46, IOR = 0x47, XOR = 0x48, NOT = 0x49,
    SHL = 0x4A, SHR = 0x4B,

    LT = 0x50, LE = 0x51, EQ = 0x52, NE = 0x53, GE = 0x54, GT = 0x55,

    // Jumps; offsets are relative to the first byte of the jump.
    J2 = 0x60, J3 = 0x61, J4 = 0x62, J5 = 0x63,
    J6 = 0x64, J7 = 0x65, J8 = 0x66,
    JB = 0x67,   ///< signed byte offset
    JW = 0x68,   ///< signed word offset
    JZB = 0x69,  ///< pop; jump by signed byte offset if zero
    JNZB = 0x6A, ///< pop; jump by signed byte offset if nonzero

    // External calls: link-vector index embedded or in a byte.
    EFC0 = 0x70, EFC1 = 0x71, EFC2 = 0x72, EFC3 = 0x73,
    EFC4 = 0x74, EFC5 = 0x75, EFC6 = 0x76, EFC7 = 0x77,
    EFCB = 0x78,

    // Local calls: entry-vector index embedded or in a byte.
    LFC0 = 0x80, LFC1 = 0x81, LFC2 = 0x82, LFC3 = 0x83,
    LFC4 = 0x84, LFC5 = 0x85, LFC6 = 0x86, LFC7 = 0x87,
    LFCB = 0x88,

    DFC = 0x90, ///< DIRECTCALL, 24-bit absolute code byte address

    SDFC0 = 0xA0, SDFC1 = 0xA1, SDFC2 = 0xA2, SDFC3 = 0xA3,
    SDFC4 = 0xA4, SDFC5 = 0xA5, SDFC6 = 0xA6, SDFC7 = 0xA7,
    SDFC8 = 0xA8, SDFC9 = 0xA9, SDFC10 = 0xAA, SDFC11 = 0xAB,
    SDFC12 = 0xAC, SDFC13 = 0xAD, SDFC14 = 0xAE, SDFC15 = 0xAF,

    /**
     * FCALL: the §4 simple implementation's call. The full procedure
     * descriptor is a literal in the program ("LOADLITERAL f; XFER"):
     * a 24-bit code byte address plus a 16-bit environment (global
     * frame) address — six bytes in all. Space-costly, table-free.
     */
    FCALL = 0xB0,
};

/** Shape of an instruction's operand bytes. */
enum class OperandKind : std::uint8_t
{
    None,   ///< one byte, operand (if any) embedded in the opcode
    UByte,  ///< one unsigned byte operand
    SByte,  ///< one signed byte operand
    UWord,  ///< two-byte unsigned operand (big-endian)
    SWord,  ///< two-byte signed operand
    Code24, ///< three-byte absolute code byte address (DFC)
    Rel20,  ///< two bytes + 4 opcode bits: signed 20-bit offset (SDFC)
    Desc40, ///< 24-bit code address + 16-bit environment (FCALL)
    Illegal
};

/** Semantic class used by the interpreter's dispatch. */
enum class OpClass : std::uint8_t
{
    Noop, Halt, Dup, Drop, Exch, Out, LoadRetCtx, Xfer, Ret, Brk, Yield,
    LoadLocal, StoreLocal, LoadLocalAddr,
    LoadGlobal, StoreGlobal,
    LoadImm, LoadIndirect, StoreIndirect, ReadField, WriteField,
    LoadDesc,
    Arith, Compare,
    Jump, JumpZero, JumpNotZero,
    ExtCall, LocalCall, DirectCall, ShortDirectCall, FatCall,
    Illegal
};

/** Static description of one opcode. */
struct OpInfo
{
    const char *name;
    OperandKind kind;
    OpClass cls;
    /** Value embedded in the opcode (local index, literal, jump span,
     *  call index, SDFC high bits); -1 when not applicable. */
    std::int32_t embedded;
};

/** Look up the static description of a raw opcode byte. */
const OpInfo &opInfo(std::uint8_t opcode);

inline const OpInfo &
opInfo(Op op)
{
    return opInfo(static_cast<std::uint8_t>(op));
}

/** Total encoded length in bytes of the instruction. */
unsigned instLength(std::uint8_t opcode);

/** True if the opcode is defined. */
bool opcodeValid(std::uint8_t opcode);

} // namespace fpc::isa

#endif // FPC_ISA_OPCODES_HH
