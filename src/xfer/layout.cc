#include "xfer/layout.hh"

#include "common/logging.hh"

namespace fpc
{

CodeByteAddr
SystemLayout::codeSegBase(Word seg_num) const
{
    return static_cast<CodeByteAddr>(codeRegionBase) * wordBytes +
           static_cast<CodeByteAddr>(seg_num) * codeGranuleBytes;
}

Word
SystemLayout::codeSegNum(CodeByteAddr base) const
{
    const CodeByteAddr region = codeRegionBase * wordBytes;
    if (base < region || (base - region) % codeGranuleBytes != 0)
        panic("code base {} is not granule-aligned in the code region",
              base);
    const CodeByteAddr num = (base - region) / codeGranuleBytes;
    if (num > 0xFFFF)
        panic("code segment number {} overflows a word", num);
    return static_cast<Word>(num);
}

bool
SystemLayout::isFrameAddr(Addr addr) const
{
    return addr >= frameBase && addr < frameEnd;
}

void
SystemLayout::validate() const
{
    if (avAddr + maxSizeClasses > gftAddr)
        panic("layout: AV overlaps GFT");
    if (gftAddr + gftEntries > globalBase)
        panic("layout: GFT overlaps the global frame region");
    if (globalEnd > 0x10000)
        panic("layout: global frame region must stay below 64K words");
    if (frameBase < globalEnd)
        panic("layout: frame region overlaps the global region");
    if ((frameEnd - frameBase) > (1u << 17))
        panic("layout: frame region exceeds 15 bits of quads");
    if (frameEnd > 0x10000)
        panic("layout: data space must stay below 64K words so "
              "pointers fit in a word");
    if (frameBase % 4 != 0)
        panic("layout: frame region must be quad-aligned");
    if (codeRegionBase < frameEnd)
        panic("layout: code region overlaps the frame region");
    if (codeRegionBase >= memWords)
        panic("layout: no room for code");
}

} // namespace fpc
