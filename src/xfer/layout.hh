/**
 * @file
 * The simulated machine's address-space layout (DESIGN.md §4).
 *
 * Everything the paper keeps in main storage gets a fixed region:
 *
 *   [avAddr, avAddr+32)            the allocation vector AV (§5.3)
 *   [gftAddr, gftAddr+1024)        the global frame table GFT (§5.1)
 *   [globalBase, globalEnd)        global frames + link vectors; kept
 *                                  below 64K words so a global frame
 *                                  address fits in one machine word
 *   [frameBase, frameEnd)          the frame heap (§5.3); frames are
 *                                  quad-aligned so a 15-bit quad index
 *                                  addresses the whole region, which is
 *                                  what lets a frame context pack into
 *                                  a one-word Context with a tag bit
 *   [codeBase, end of memory)      code segments; a code segment base
 *                                  is named by a 16-bit segment number
 *                                  (256-byte granules), the one-word
 *                                  "code base" a global frame stores
 */

#ifndef FPC_XFER_LAYOUT_HH
#define FPC_XFER_LAYOUT_HH

#include "common/types.hh"

namespace fpc
{

/** Fixed address-space layout shared by loader, heap and machine. */
struct SystemLayout
{
    /** Total memory size in words. */
    std::size_t memWords = 1u << 21;

    /** Allocation vector base (one word per frame size class). */
    Addr avAddr = 0x0010;
    /** Maximum number of frame size classes. */
    unsigned maxSizeClasses = 32;

    /** Global frame table base; gftEntries one-word entries. */
    Addr gftAddr = 0x0040;
    unsigned gftEntries = 1024;

    /** Global frame / link vector region (must stay below 64K words). */
    Addr globalBase = 0x0440;
    Addr globalEnd = 0x8000;

    /**
     * Frame heap region; (frameEnd - frameBase) <= 2^15 quads, and the
     * whole data space (globals + frames) stays below 64K words so a
     * pointer to any datum fits in one machine word (§7.4 needs
     * pointers to locals to be ordinary word values).
     */
    Addr frameBase = 0x8000;
    Addr frameEnd = 0x10000;

    /** First word of the code region. */
    Addr codeRegionBase = 0x10000;

    /** Code segment alignment granule in bytes. */
    unsigned codeGranuleBytes = 256;

    /** Convert a code segment number to its base byte address. */
    CodeByteAddr codeSegBase(Word seg_num) const;

    /** Convert a code base byte address back to a segment number. */
    Word codeSegNum(CodeByteAddr base) const;

    /** True if addr lies in the frame heap region (§7.4 region test). */
    bool isFrameAddr(Addr addr) const;

    /** Validate internal consistency; panics on a bad layout. */
    void validate() const;
};

} // namespace fpc

#endif // FPC_XFER_LAYOUT_HH
