#include "xfer/context.hh"

#include "common/bits.hh"
#include "common/logging.hh"
#include "common/strfmt.hh"

namespace fpc
{

namespace
{
constexpr unsigned tagBit = 15;
} // namespace

Word
packFrameContext(Addr frame_ptr, const SystemLayout &layout)
{
    if (frame_ptr == nilAddr)
        return nilContext;
    const Addr block = frame_ptr - 1; // the header word
    if (block < layout.frameBase || frame_ptr >= layout.frameEnd)
        panic("frame pointer {} outside the frame region", frame_ptr);
    if ((block - layout.frameBase) % 4 != 0)
        panic("frame block {} is not quad-aligned", block);
    const Addr quad = (block - layout.frameBase) / 4;
    if (quad == 0)
        panic("frame quad 0 is reserved for NIL");
    return static_cast<Word>(quad); // tag bit 15 is 0
}

Word
packProcDesc(unsigned gft_index, unsigned ev_low5)
{
    checkedField(gft_index, 10, "procDesc.env");
    checkedField(ev_low5, 5, "procDesc.code");
    return static_cast<Word>((1u << tagBit) | (gft_index << 5) | ev_low5);
}

Context
unpackContext(Word ctx, const SystemLayout &layout)
{
    Context out;
    if (ctx & (1u << tagBit)) {
        out.tag = Context::Tag::Proc;
        out.env = bits(ctx, 5, 10);
        out.code = bits(ctx, 0, 5);
    } else {
        out.tag = Context::Tag::Frame;
        if (ctx == nilContext) {
            out.framePtr = nilAddr;
        } else {
            out.framePtr =
                layout.frameBase + static_cast<Addr>(ctx) * 4 + 1;
        }
    }
    return out;
}

bool
isFrameContext(Word ctx, const SystemLayout &layout)
{
    const Context c = unpackContext(ctx, layout);
    return c.tag == Context::Tag::Frame && !c.isNil();
}

std::string
contextToString(Word ctx, const SystemLayout &layout)
{
    const Context c = unpackContext(ctx, layout);
    if (c.tag == Context::Tag::Proc)
        return strfmt("proc[env={} code={}]", c.env, c.code);
    if (c.isNil())
        return "NIL";
    return strfmt("frame[{}]", c.framePtr);
}

Word
packGftEntry(const GftEntry &entry, const SystemLayout &layout)
{
    if (entry.gfAddr < layout.globalBase || entry.gfAddr >= layout.globalEnd)
        panic("global frame address {} outside the global region",
              entry.gfAddr);
    if (entry.gfAddr % 4 != 0)
        panic("global frame {} is not quad-aligned", entry.gfAddr);
    checkedField(entry.bias, 2, "gft.bias");
    // Quad index within the 64K-word global space (14 bits suffice
    // because the global region ends below 64K words).
    const Addr quad = entry.gfAddr / 4;
    checkedField(quad, 14, "gft.gfQuad");
    return static_cast<Word>((quad << 2) | entry.bias);
}

GftEntry
unpackGftEntry(Word raw, const SystemLayout &layout)
{
    (void)layout;
    GftEntry e;
    e.gfAddr = static_cast<Addr>(bits(raw, 2, 14)) * 4;
    e.bias = bits(raw, 0, 2);
    return e;
}

const char *
xferKindName(XferKind kind)
{
    switch (kind) {
      case XferKind::ExtCall: return "extCall";
      case XferKind::LocalCall: return "localCall";
      case XferKind::DirectCall: return "directCall";
      case XferKind::FatCall: return "fatCall";
      case XferKind::Return: return "return";
      case XferKind::Coroutine: return "coroutine";
      case XferKind::ProcSwitch: return "procSwitch";
      case XferKind::Trap: return "trap";
      default: return "?";
    }
}

} // namespace fpc
