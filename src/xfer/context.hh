/**
 * @file
 * The control-transfer model's data types (paper §3–§5).
 *
 * A Context is the entity control transfers among. It is a one-word
 * variant record (paper §4):
 *
 *     Context: TYPE = RECORD [
 *       CASE tag: {frame, proc} OF
 *         frame => [ FramePointer ];
 *         proc  => [ code: ProcPointer, env: EnvPointer ]
 *       ENDCASE ]
 *
 * packed per §5.1 into 16 bits: a one-bit tag, and either a 15-bit
 * quad index into the frame region (frame case) or a ten-bit env field
 * (a GFT index) and a five-bit code field (an EV index) (proc case).
 *
 * A GFT entry packs a 14-bit quad-aligned global frame address with
 * the two spare "bias" bits that extend a module to 4 * 32 = 128 entry
 * points (§5.1).
 *
 * The frame layout implements §4's record: return link, environment
 * pointer, saved PC, then arguments/locals/temporaries; one extra
 * header word in front holds the frame size index so a frame can be
 * freed without stating its size (§5.3), plus the retained flag (§4)
 * and the §7.4 "pointers may exist" flag.
 */

#ifndef FPC_XFER_CONTEXT_HH
#define FPC_XFER_CONTEXT_HH

#include <string>

#include "common/types.hh"
#include "xfer/layout.hh"

namespace fpc
{

/** The NIL context: "returnContext := NIL" on a RETURN (§4). */
constexpr Word nilContext = 0;

/** Decoded form of a one-word Context. */
struct Context
{
    enum class Tag { Frame, Proc };

    Tag tag = Tag::Frame;
    /** Frame case: the local frame pointer (a full word address). */
    Addr framePtr = nilAddr;
    /** Proc case: the env field — a GFT index. */
    unsigned env = 0;
    /** Proc case: the code field — a 5-bit EV index (pre-bias). */
    unsigned code = 0;

    bool isNil() const { return tag == Tag::Frame && framePtr == nilAddr; }
};

/** Pack a frame context. The frame pointer must be in the frame region
 *  and (framePtr - 1) must be quad-aligned. */
Word packFrameContext(Addr frame_ptr, const SystemLayout &layout);

/** Pack a procedure-descriptor context. */
Word packProcDesc(unsigned gft_index, unsigned ev_low5);

/** Decode a context word. */
Context unpackContext(Word ctx, const SystemLayout &layout);

/** True when ctx is a non-NIL frame context (a suspended activation a
 *  scheduler may dispatch, as opposed to a procedure descriptor). */
bool isFrameContext(Word ctx, const SystemLayout &layout);

/** Render a context word for diagnostics. */
std::string contextToString(Word ctx, const SystemLayout &layout);

/** A GFT entry: 14-bit global-frame quad + 2-bit bias. */
struct GftEntry
{
    Addr gfAddr = nilAddr; ///< word address of the global frame
    unsigned bias = 0;     ///< entry-point bias, in multiples of 32
};

Word packGftEntry(const GftEntry &entry, const SystemLayout &layout);
GftEntry unpackGftEntry(Word raw, const SystemLayout &layout);

/**
 * Local frame field offsets, relative to the frame pointer (which
 * points one word past the header).
 */
namespace frame
{
/** Header word, one *before* the frame pointer. */
constexpr int headerOffset = -1;
/** The return link: a Context word (§4). */
constexpr unsigned returnLinkOffset = 0;
/** The environment pointer: the global frame's word address. */
constexpr unsigned globalFrameOffset = 1;
/** Saved PC, as a byte offset relative to the code base (§5.3). */
constexpr unsigned savedPcOffset = 2;
/** First argument/local slot. */
constexpr unsigned varsOffset = 3;
/** Words of bookkeeping at the head of every frame. */
constexpr unsigned overheadWords = 3;

/** Header word encoding. */
constexpr Word fsiMask = 0x1F;
constexpr Word retainedFlag = 0x20; ///< §4 retained frames
constexpr Word flaggedFlag = 0x40;  ///< §7.4 pointers-to-locals exist
} // namespace frame

/** The transfer disciplines built on XFER, for statistics (§3). */
enum class XferKind : unsigned
{
    ExtCall,       ///< EXTERNALCALL through the link vector
    LocalCall,     ///< LOCALCALL within the module
    DirectCall,    ///< DIRECTCALL / SHORTDIRECTCALL (§6)
    FatCall,       ///< §4 inline-descriptor call
    Return,        ///< RETURN
    Coroutine,     ///< raw XFER to an existing frame context
    ProcSwitch,    ///< process switch via the scheduler
    Trap,          ///< trap transfer
    NumKinds
};

const char *xferKindName(XferKind kind);

} // namespace fpc

#endif // FPC_XFER_CONTEXT_HH
