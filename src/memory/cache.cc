#include "memory/cache.hh"

#include "common/logging.hh"

namespace fpc
{

Cache::Cache(const CacheConfig &config, const LatencyModel &latency)
    : config_(config), latency_(latency),
      lines_(static_cast<std::size_t>(config.sets) * config.ways)
{
    if (config.sets == 0 || config.ways == 0 || config.lineWords == 0)
        panic("Cache: degenerate geometry");
    if ((config.sets & (config.sets - 1)) != 0)
        fatal("Cache: set count {} must be a power of two", config.sets);
    if ((config.lineWords & (config.lineWords - 1)) != 0)
        fatal("Cache: line size {} must be a power of two",
              config.lineWords);
}

unsigned
Cache::access(Addr addr, bool is_write)
{
    ++useClock_;
    const std::uint32_t line_addr = addr / config_.lineWords;
    const std::uint32_t set = line_addr & (config_.sets - 1);
    const std::uint32_t tag = line_addr / config_.sets;

    Line *base = &lines_[static_cast<std::size_t>(set) * config_.ways];
    for (unsigned w = 0; w < config_.ways; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == tag) {
            ++hits_;
            line.lastUse = useClock_;
            line.dirty = line.dirty || is_write;
            return latency_.cacheHitCycles;
        }
    }

    // Miss: victim is the first invalid way, else the LRU way.
    Line *victim = base;
    for (unsigned w = 0; w < config_.ways; ++w) {
        Line &line = base[w];
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (line.lastUse < victim->lastUse)
            victim = &line;
    }

    ++misses_;
    unsigned cycles = latency_.cacheHitCycles + latency_.memCycles;
    if (victim->valid && victim->dirty) {
        ++writebacks_;
        cycles += latency_.memCycles;
    }
    victim->valid = true;
    victim->dirty = is_write;
    victim->tag = tag;
    victim->lastUse = useClock_;
    return cycles;
}

double
Cache::hitRate() const
{
    const CountT total = accesses();
    return total ? static_cast<double>(hits_) / total : 0.0;
}

void
Cache::reset()
{
    for (auto &line : lines_)
        line = Line();
    useClock_ = 0;
    hits_ = 0;
    misses_ = 0;
    writebacks_ = 0;
}

} // namespace fpc
