#include "memory/memory.hh"

#include <algorithm>
#include <ostream>

#include "common/logging.hh"

namespace fpc
{

const char *
accessKindName(AccessKind kind)
{
    switch (kind) {
      case AccessKind::Code: return "code";
      case AccessKind::Data: return "data";
      case AccessKind::Table: return "table";
      case AccessKind::Heap: return "heap";
      case AccessKind::FrameState: return "frameState";
      default: return "?";
    }
}

Memory::Memory(std::size_t words) : store_(words, 0)
{
    if (words == 0)
        panic("Memory: zero size");
}

void
Memory::addrPanic(Addr addr) const
{
    fatal("memory reference out of range: {} >= {}", addr,
          store_.size());
}

std::uint8_t
Memory::readByte(CodeByteAddr byte_addr)
{
    ++codeBytes_;
    return peekByte(byte_addr);
}

Word
Memory::peek(Addr addr) const
{
    checkAddr(addr);
    return store_[addr];
}

void
Memory::clear()
{
    std::fill(store_.begin(), store_.end(), 0);
    ++codeEpoch_;
}

void
Memory::poke(Addr addr, Word value)
{
    checkAddr(addr);
    ++codeEpoch_;
    store_[addr] = value;
}

std::uint8_t
Memory::peekByte(CodeByteAddr byte_addr) const
{
    const Addr word_addr = byte_addr / wordBytes;
    checkAddr(word_addr);
    const Word w = store_[word_addr];
    // Big-endian within the word: byte 0 is the high byte, matching the
    // Mesa convention of reading code left to right.
    if (byte_addr % wordBytes == 0)
        return static_cast<std::uint8_t>(w >> 8);
    return static_cast<std::uint8_t>(w & 0xFF);
}

void
Memory::pokeByte(CodeByteAddr byte_addr, std::uint8_t value)
{
    const Addr word_addr = byte_addr / wordBytes;
    checkAddr(word_addr);
    ++codeEpoch_;
    Word w = store_[word_addr];
    if (byte_addr % wordBytes == 0)
        w = static_cast<Word>((w & 0x00FF) | (value << 8));
    else
        w = static_cast<Word>((w & 0xFF00) | value);
    store_[word_addr] = w;
}

CountT
Memory::reads(AccessKind kind) const
{
    return readCounts_[static_cast<std::size_t>(kind)];
}

CountT
Memory::writes(AccessKind kind) const
{
    return writeCounts_[static_cast<std::size_t>(kind)];
}

void
Memory::resetStats()
{
    readCounts_.fill(0);
    writeCounts_.fill(0);
    totalRefs_ = 0;
    codeBytes_ = 0;
}

void
Memory::dumpStats(std::ostream &os) const
{
    os << "---- memory ----\n";
    for (unsigned k = 0; k < static_cast<unsigned>(AccessKind::NumKinds);
         ++k) {
        const auto kind = static_cast<AccessKind>(k);
        os << "  " << accessKindName(kind) << ": reads=" << reads(kind)
           << " writes=" << writes(kind) << "\n";
    }
    os << "  totalRefs=" << totalRefs_ << " codeBytes=" << codeBytes_
       << "\n";
}

} // namespace fpc
