/**
 * @file
 * Simulated main storage: a flat, word-addressed 16-bit memory with
 * per-kind access accounting.
 *
 * All architectural state that the paper keeps "in main storage"
 * (frames, free lists, the GFT, link vectors, entry vectors, global
 * frames, code) lives in this one array, so the reference counts the
 * benches report are literal counts of simulated storage accesses.
 */

#ifndef FPC_MEMORY_MEMORY_HH
#define FPC_MEMORY_MEMORY_HH

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "common/types.hh"
#include "stats/stats.hh"

namespace fpc
{

/**
 * Why a storage reference was made. The split mirrors the paper's
 * discussion: transfer-table references (LV/GFT/EV, §5.1), frame-heap
 * references (AV and free lists, §5.3), frame-state references (saving
 * or restoring PC / return links / bank flushes), ordinary data, and
 * code fetches.
 */
enum class AccessKind : unsigned
{
    Code,       ///< instruction bytes
    Data,       ///< program loads/stores (locals, globals, pointers)
    Table,      ///< LV, GFT, EV, interface records
    Heap,       ///< AV free-list manipulation
    FrameState, ///< context save/restore (PC, links, bank flushes)
    NumKinds
};

/** Printable name of an AccessKind. */
const char *accessKindName(AccessKind kind);

/** Flat simulated main storage. */
class Memory
{
  public:
    /** Construct a memory of the given size in 16-bit words. */
    explicit Memory(std::size_t words);

    std::size_t size() const { return store_.size(); }

    /** Accounted word read. Inline: every interpreted instruction
     *  makes one or more of these. */
    Word
    read(Addr addr, AccessKind kind)
    {
        checkAddr(addr);
        ++readCounts_[static_cast<std::size_t>(kind)];
        ++totalRefs_;
        return store_[addr];
    }

    /** Accounted word write. */
    void
    write(Addr addr, Word value, AccessKind kind)
    {
        checkAddr(addr);
        ++writeCounts_[static_cast<std::size_t>(kind)];
        ++totalRefs_;
        store_[addr] = value;
    }

    /** Accounted code byte read (big-endian byte order within words). */
    std::uint8_t readByte(CodeByteAddr byte_addr);

    /** Unaccounted accesses, for loaders and test inspection. */
    Word peek(Addr addr) const;
    void poke(Addr addr, Word value);
    std::uint8_t peekByte(CodeByteAddr byte_addr) const;
    void pokeByte(CodeByteAddr byte_addr, std::uint8_t value);

    /** @name Mutation epoch for host-side caches.
     *
     * Any unaccounted write (poke/pokeByte — the loader, relocator,
     * and test patching all go through these) advances the epoch, and
     * the machine's acceleration caches flush when they see it move.
     * Accounted writes are the simulated program's own stores and are
     * handled separately (they can never reach the code region: data
     * pointers are 16-bit words, the code region starts at word 2^16).
     * @{ */
    std::uint64_t codeEpoch() const { return codeEpoch_; }
    void invalidateCode() { ++codeEpoch_; }
    /** @} */

    /** @name Replay accounting for acceleration cache hits.
     *
     * A memoized resolution must charge exactly the storage references
     * the real walk would have made (the simulated numbers are
     * invariant under acceleration); these bump the counters without
     * touching the store.
     * @{ */
    void
    chargeReads(AccessKind kind, CountT n)
    {
        readCounts_[static_cast<std::size_t>(kind)] += n;
        totalRefs_ += n;
    }
    void
    chargeWrites(AccessKind kind, CountT n)
    {
        writeCounts_[static_cast<std::size_t>(kind)] += n;
        totalRefs_ += n;
    }
    void chargeCodeBytes(CountT n) { codeBytes_ += n; }

    /** Checked but uncounted accesses, for hosts that keep the access
     *  counts in registers and batch them in via chargeReads /
     *  chargeWrites (the threaded backend). Unlike poke these are
     *  simulated-program accesses: they do not move the code epoch
     *  (data addresses cannot reach the code region). */
    Word
    readUncounted(Addr addr)
    {
        checkAddr(addr);
        return store_[addr];
    }

    /** The raw store, for hosts that also hoist the bounds check:
     *  the store never moves or resizes after construction, so a
     *  cached pointer + size() check is exactly read()/write()'s
     *  checked access. Out-of-range addresses must go through
     *  readUncounted/writeUncounted for the accounted panic. */
    Word *raw() { return store_.data(); }
    void
    writeUncounted(Addr addr, Word value)
    {
        checkAddr(addr);
        store_[addr] = value;
    }
    /** @} */

    /** Reference counts. */
    CountT reads(AccessKind kind) const;
    CountT writes(AccessKind kind) const;
    CountT totalRefs() const { return totalRefs_; }
    CountT codeByteFetches() const { return codeBytes_; }

    /** Zero the whole store and advance the code epoch, returning the
     *  memory to its just-constructed contents. Lets a long-lived
     *  worker reuse one allocation across jobs with simulated state
     *  indistinguishable from a fresh Memory. */
    void clear();

    void resetStats();
    void dumpStats(std::ostream &os) const;

  private:
    void
    checkAddr(Addr addr) const
    {
        if (addr >= store_.size())
            addrPanic(addr);
    }

    [[noreturn]] void addrPanic(Addr addr) const;

    std::vector<Word> store_;
    std::array<CountT, static_cast<std::size_t>(AccessKind::NumKinds)>
        readCounts_{};
    std::array<CountT, static_cast<std::size_t>(AccessKind::NumKinds)>
        writeCounts_{};
    CountT totalRefs_ = 0;
    CountT codeBytes_ = 0;
    std::uint64_t codeEpoch_ = 0;
};

} // namespace fpc

#endif // FPC_MEMORY_MEMORY_HH
