/**
 * @file
 * A parameterized set-associative data cache model.
 *
 * This exists for the §7.3 study ("Why not just a cache?"): the paper
 * argues register banks beat a cache for local-variable traffic
 * because a cache access takes two cycles to a register's one, and
 * because locals consume half or more of all data bandwidth. The cache
 * here is a timing model only — data still lives in Memory — which is
 * all the comparison needs.
 */

#ifndef FPC_MEMORY_CACHE_HH
#define FPC_MEMORY_CACHE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "memory/latency.hh"

namespace fpc
{

/** Cache geometry. */
struct CacheConfig
{
    unsigned sets = 64;
    unsigned ways = 2;
    unsigned lineWords = 4;
};

/** Set-associative, write-back, LRU cache timing model. */
class Cache
{
  public:
    Cache(const CacheConfig &config, const LatencyModel &latency);

    /**
     * Simulate one access.
     * @param addr word address referenced
     * @param is_write true for a store
     * @return the number of cycles the access took
     */
    unsigned access(Addr addr, bool is_write);

    CountT hits() const { return hits_; }
    CountT misses() const { return misses_; }
    CountT writebacks() const { return writebacks_; }
    CountT accesses() const { return hits_ + misses_; }
    double hitRate() const;

    void reset();

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        std::uint32_t tag = 0;
        std::uint64_t lastUse = 0;
    };

    CacheConfig config_;
    LatencyModel latency_;
    std::vector<Line> lines_; // sets * ways
    std::uint64_t useClock_ = 0;
    CountT hits_ = 0;
    CountT misses_ = 0;
    CountT writebacks_ = 0;
};

} // namespace fpc

#endif // FPC_MEMORY_CACHE_HH
