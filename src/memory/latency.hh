/**
 * @file
 * The cycle-cost model shared by the whole simulator (DESIGN.md §4).
 *
 * The paper's performance arguments are phrased in memory references
 * and cycles, not nanoseconds: a register read/write takes one cycle,
 * a cache access two ("two cycles are needed for a cache access",
 * §7.3), and a main-storage reference several. These defaults encode
 * that ordering; benches may sweep them.
 */

#ifndef FPC_MEMORY_LATENCY_HH
#define FPC_MEMORY_LATENCY_HH

namespace fpc
{

/** Cycle costs of the primitive operations. */
struct LatencyModel
{
    /** A main-storage word reference. */
    unsigned memCycles = 4;
    /** A cache hit (paper §7.3: two cycles). */
    unsigned cacheHitCycles = 2;
    /** A register (or register-bank) access (paper §7.3: one cycle). */
    unsigned regCycles = 1;
    /** Decoding one instruction when the IFU has the bytes ready. */
    unsigned decodeCycles = 1;
    /**
     * Pipeline bubble when the IFU must redirect to an address it
     * could not pre-follow (an indirect transfer). IFU-followable
     * transfers (jumps, DIRECTCALLs, return-stack hits) do not pay it.
     */
    unsigned redirectCycles = 2;
};

} // namespace fpc

#endif // FPC_MEMORY_LATENCY_HH
