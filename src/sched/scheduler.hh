/**
 * @file
 * Layer 1 of the runtime: an in-VM preemptive scheduler built *on*
 * XFER, not beside it.
 *
 * The scheduler owns a set of Processes (suspended activations made
 * with Machine::spawn) and multiplexes one Machine among them. Every
 * switch — voluntary (YIELD) or involuntary (the timeslice trap,
 * MachineConfig::timesliceSteps) — is a genuine ProcSwitch XFER
 * through whichever engine the machine embodies, taking the fallback
 * path the paper prescribes for unusual transfers: I3 flushes the IFU
 * return stack, I4 additionally writes every register bank back to
 * its frame (§7.1). A preempted run is therefore state-equivalent to
 * an unpreempted one; only the cost differs, and the stats show it.
 */

#ifndef FPC_SCHED_SCHEDULER_HH
#define FPC_SCHED_SCHEDULER_HH

#include <deque>
#include <functional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "machine/machine.hh"
#include "sched/process.hh"

namespace fpc::sched
{

/** How the ready queue is ordered. */
enum class Policy
{
    RoundRobin, ///< FIFO; every ready process gets its turn
    Priority    ///< highest priority first, FIFO among equals
};

const char *policyName(Policy policy);

/** Scheduler-level event counts (machine-level costs are in
 *  MachineStats; these count decisions, not cycles). */
struct SchedStats
{
    CountT dispatches = 0;  ///< processes switched onto the machine
    CountT preemptions = 0; ///< timeslice-driven switches
    CountT yields = 0;      ///< YIELD-driven switches
    CountT completions = 0; ///< processes that reached Done
};

/**
 * The scheduler. Construction installs it as the machine's scheduler
 * hook; destruction removes it. Typical use:
 *
 *     MachineConfig config;
 *     config.timesliceSteps = 1000;          // preemption on
 *     Machine machine(mem, image, config);
 *     sched::Scheduler sched(machine);
 *     sched.spawn("Workers", "worker", {{1}});
 *     sched.spawn("Workers", "worker", {{2}});
 *     RunResult last = sched.runAll();
 *
 * runAll() returns when no process is ready: all Done, or the rest
 * Blocked (signal() and call runAll() again), or on the first
 * machine error, which is propagated.
 */
class Scheduler
{
  public:
    explicit Scheduler(Machine &machine,
                       Policy policy = Policy::RoundRobin);
    ~Scheduler();

    Scheduler(const Scheduler &) = delete;
    Scheduler &operator=(const Scheduler &) = delete;

    /** Create a suspended process from Mod.proc(args). */
    unsigned spawn(const std::string &module, const std::string &proc,
                   std::span<const Word> args = {},
                   unsigned priority = 0);

    /** Move a Ready process to the blocked queue until signal(event).
     *  The Running process cannot be blocked from outside. */
    void block(unsigned pid, Word event);

    /** Wake every process blocked on event; returns how many. */
    unsigned signal(Word event);

    /** Run until no process is ready. Returns the last RunResult (the
     *  first error, if one occurred). */
    RunResult runAll();

    const Process &process(unsigned pid) const;
    std::size_t processCount() const { return procs_.size(); }
    std::size_t readyCount() const { return ready_.size(); }
    std::size_t blockedCount() const;
    /** Processes not yet Done. */
    std::size_t liveCount() const;

    const SchedStats &stats() const { return stats_; }
    Policy policy() const { return policy_; }
    Machine &machine() { return machine_; }

    /** Append the scheduler's gauges (queue depths and decision
     *  counts) to out — shaped for obs::Telemetry::GaugeProvider:
     *
     *      telemetry.setProvider(
     *          [&](auto &g) { sched.appendGauges(g); });
     */
    void
    appendGauges(std::vector<std::pair<std::string, double>> &out) const;

    /** @name Record/replay hooks (see src/replay/). @{ */

    /** Observes every dispatch decision as it is made: the machine's
     *  instruction count and the chosen pid. Fires for initial
     *  dispatches in runAll() and for every in-run switch. */
    using PickHook = std::function<void(std::uint64_t step, unsigned pid)>;
    void setPickHook(PickHook hook) { pickHook_ = std::move(hook); }

    /** Forces dispatch decisions instead of live policy (replay).
     *  Receives the step stamp and the policy's live pick; returns the
     *  pid to dispatch (which must be ready), or -1 to keep the live
     *  pick. Installed before runAll(), this makes the schedule an
     *  input rather than an outcome. */
    using PickOverride =
        std::function<int(std::uint64_t step, int live_pick)>;
    void setPickOverride(PickOverride override)
    {
        pickOverride_ = std::move(override);
    }
    /** @} */

  private:
    /** The machine's scheduler hook: requeue the current process,
     *  pick the next, hand back its context. */
    Word onSwitch(Machine &m);
    /** Pop the next pid to run, honoring the policy; -1 if none. */
    int pickNext();
    void complete(Process &proc, bool release_root);

    Machine &machine_;
    Policy policy_;
    std::vector<Process> procs_;
    std::deque<unsigned> ready_;
    int current_ = -1; ///< index into procs_, -1 when none
    /** Machine step count at the last dispatch, for attributing
     *  executed instructions to processes. */
    std::uint64_t stepMark_ = 0;
    SchedStats stats_;
    PickHook pickHook_;
    PickOverride pickOverride_;
};

} // namespace fpc::sched

#endif // FPC_SCHED_SCHEDULER_HH
