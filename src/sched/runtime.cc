#include "sched/runtime.hh"

#include <exception>
#include <optional>
#include <thread>

#include "common/logging.hh"
#include "frames/size_classes.hh"
#include "obs/fanout.hh"
#include "obs/postmortem.hh"
#include "replay/recorder.hh"

namespace fpc::sched
{

Runtime::Runtime(RuntimeConfig config) : config_(std::move(config))
{
    if (config_.workers == 0)
        config_.workers = 1;
}

unsigned
Runtime::submit(Job job)
{
    if (ran_)
        panic("Runtime::submit after run()");
    if (!job.modules || job.modules->empty())
        panic("Runtime::submit: job has no modules");
    const auto id = static_cast<unsigned>(jobs_.size());
    jobs_.push_back(std::move(job));
    return id;
}

JobResult
Runtime::executeJob(const Job &job, unsigned id, unsigned worker_id,
                    MachineStats &acc, AccelStats &accel_acc,
                    obs::Tracer *tracer, obs::ProfileData *profile_acc,
                    obs::Telemetry *telemetry)
{
    JobResult out;
    out.id = id;
    out.worker = worker_id;

    // Each job gets a pristine simulated machine: its own memory,
    // image and processor. Workers therefore share nothing but the
    // job queue, and scale with host cores.
    const SystemLayout layout;
    Memory mem(layout.memWords);
    Loader loader{layout, SizeClasses::standard()};
    for (const Module &m : *job.modules)
        loader.add(m);
    const LoadedImage image = loader.load(mem, config_.plan);
    if (config_.record) {
        // Hash before the Machine exists: its FrameHeap constructor
        // rewrites the AV, and replay hashes at this same point.
        recordedImageHash_.store(replay::imageHash(mem, image),
                                 std::memory_order_relaxed);
    }

    Machine machine(mem, image, config_.machine);

    // Observers are per-job: the ProcMap indexes this job's image, and
    // the tracer interns names at record time, so nothing here has to
    // outlive the job.
    obs::ProcMap procMap;
    obs::Fanout fanout;
    std::optional<obs::Profiler> profiler;
    if (tracer != nullptr || profile_acc != nullptr)
        procMap = obs::ProcMap(image);
    if (tracer != nullptr) {
        tracer->setProcMap(&procMap);
        fanout.add(tracer);
    }
    if (profile_acc != nullptr) {
        profiler.emplace(image);
        fanout.add(&*profiler);
    }
    std::optional<obs::FlightRecorder> recorder;
    if (!config_.postmortemDir.empty()) {
        recorder.emplace();
        fanout.add(&*recorder);
    }
    if (!fanout.empty())
        machine.setObserver(&fanout);

    // Record/replay capture: the replay recorder takes the machine's
    // one sampler slot and chains a telemetry sampler behind it, so
    // both fire on the same simulated-cycle boundaries.
    replay::Recorder replayRec;
    if (config_.record) {
        replayRec.beginJob(id, worker_id);
        replayRec.setNext(telemetry);
        machine.setSampler(&replayRec, config_.metricsInterval);
    } else if (telemetry != nullptr) {
        machine.setSampler(telemetry, config_.metricsInterval);
    }

    if (config_.machine.timesliceSteps > 0) {
        // A single-process workload still takes the full ProcSwitch
        // XFER on every timeslice: the scheduler hook hands back the
        // current context and the engine pays the fallback.
        Machine::Scheduler policy =
            [](Machine &m) { return m.currentFrameContext(); };
        if (config_.record)
            policy = replayRec.wrapPolicy(std::move(policy));
        machine.setScheduler(std::move(policy));
    }

    machine.start(job.module, job.proc, job.args);
    if (config_.record)
        replayRec.sample(machine);
    if (telemetry != nullptr)
        telemetry->sample(machine);
    const RunResult result = machine.run();
    if (config_.record) {
        replayRec.finish(machine, result);
        jobRecords_[id] = replayRec.takeJob(); // distinct slot: no lock
    }
    if (telemetry != nullptr)
        telemetry->sample(machine);

    out.reason = result.reason;
    out.steps = machine.stats().steps;
    out.cycles = machine.stats().cycles;
    if (result.reason == StopReason::TopReturn) {
        out.ok = true;
        out.value = machine.popValue();
    } else if (result.reason == StopReason::Halted) {
        out.ok = true;
    } else {
        out.error = result.message;
    }
    acc.merge(machine.stats());
    accel_acc.merge(machine.accelStats());

    if (!out.ok && recorder) {
        obs::PostmortemConfig pm;
        pm.dir = config_.postmortemDir;
        pm.filePrefix = "job-" + std::to_string(id) + "-";
        pm.driver = config_.driver;
        pm.impl = implName(config_.machine.impl);
        obs::writePostmortem(pm, machine, result, image, *recorder,
                             telemetry);
    }

    if (telemetry != nullptr) {
        // As with the tracer: consecutive jobs lay out consecutively
        // on this worker's series, and the counters stay monotone.
        telemetry->setBase(telemetry->base() + machine.stats().cycles,
                           telemetry->stepBase() +
                               machine.stats().steps);
    }
    if (tracer != nullptr) {
        // Lay consecutive jobs out consecutively on this worker's
        // track; the ProcMap dies with this job.
        tracer->setBase(tracer->base() + machine.stats().cycles);
        tracer->setProcMap(nullptr);
    }
    if (profiler)
        profile_acc->merge(profiler->finish(machine.stats().cycles));

    return out;
}

void
Runtime::workerMain(unsigned worker_id)
{
    MachineStats acc;
    AccelStats accelAcc;
    stats::StatGroup local("fpc_runtime");
    auto &jobs_completed =
        local.counter("jobs_completed", "jobs that finished ok");
    auto &jobs_failed =
        local.counter("jobs_failed", "jobs that stopped on an error");
    auto &job_steps =
        local.distribution("job_steps", "instructions per job");
    auto &job_cycles =
        local.distribution("job_cycles", "simulated cycles per job");

    obs::Tracer *tracer =
        config_.trace ? tracers_[worker_id].get() : nullptr;
    obs::ProfileData profile_acc;
    obs::ProfileData *profile_ptr =
        config_.profile ? &profile_acc : nullptr;
    obs::Telemetry *telemetry =
        config_.metrics ? telemetry_[worker_id].get() : nullptr;

    // This worker's job progress, visible in every sample it takes.
    // Deterministic because metrics force the static assignment.
    double jobs_done = 0;
    double jobs_assigned = 0;
    if (telemetry != nullptr) {
        telemetry->setProvider(
            [&jobs_done, &jobs_assigned](
                std::vector<std::pair<std::string, double>> &g) {
                g.emplace_back("worker_jobs_done", jobs_done);
                g.emplace_back("worker_jobs_assigned", jobs_assigned);
            });
    }

    // The dynamic queue is fast but nondeterministic: which worker
    // claims which job depends on thread timing. With observation on
    // (tracing, metrics, postmortems) we want reproducible tracks, so
    // jobs stride statically instead (job i runs on worker i mod n).
    const std::size_t stride = poolSize_;
    std::size_t strided = worker_id;

    while (true) {
        std::size_t i;
        if (staticAssignment()) {
            i = strided;
            strided += stride;
        } else {
            i = next_.fetch_add(1, std::memory_order_relaxed);
        }
        if (i >= jobs_.size())
            break;
        ++jobs_assigned;
        JobResult r;
        try {
            r = executeJob(jobs_[i], static_cast<unsigned>(i),
                           worker_id, acc, accelAcc, tracer,
                           profile_ptr, telemetry);
        } catch (const std::exception &err) {
            r.id = static_cast<unsigned>(i);
            r.worker = worker_id;
            r.ok = false;
            r.reason = StopReason::Error;
            r.error = err.what();
        }
        if (r.ok)
            ++jobs_completed;
        else
            ++jobs_failed;
        job_steps.sample(static_cast<double>(r.steps));
        job_cycles.sample(static_cast<double>(r.cycles));
        ++jobs_done;
        results_[i] = std::move(r); // distinct slot per job: no lock
    }

    // Per-worker stats fold into the runtime's registries at join.
    std::lock_guard<std::mutex> lock(mergeMutex_);
    merged_.merge(acc);
    mergedAccel_.merge(accelAcc);
    group_.mergeFrom(local);
    if (profile_ptr != nullptr)
        profile_.merge(profile_acc);
}

std::vector<JobResult>
Runtime::run()
{
    if (ran_)
        panic("Runtime::run called twice");
    ran_ = true;
    results_.resize(jobs_.size());
    if (config_.record)
        jobRecords_.resize(jobs_.size());

    const unsigned n =
        std::min<unsigned>(config_.workers,
                           std::max<std::size_t>(1, jobs_.size()));
    poolSize_ = n;
    if (config_.trace) {
        tracers_.reserve(n);
        for (unsigned w = 0; w < n; ++w) {
            tracers_.push_back(
                std::make_unique<obs::Tracer>(config_.traceCapacity));
        }
    }
    if (config_.metrics) {
        telemetry_.reserve(n);
        for (unsigned w = 0; w < n; ++w) {
            telemetry_.push_back(std::make_unique<obs::Telemetry>(
                config_.metricsCapacity));
        }
    }
    std::vector<std::thread> pool;
    pool.reserve(n);
    for (unsigned w = 0; w < n; ++w)
        pool.emplace_back([this, w] { workerMain(w); });
    for (std::thread &t : pool)
        t.join();

    return results_;
}

void
Runtime::writeTrace(std::ostream &os) const
{
    std::vector<const obs::Tracer *> tracks;
    tracks.reserve(tracers_.size());
    for (const auto &t : tracers_)
        tracks.push_back(t.get());
    obs::writeChromeTrace(os, tracks);
}

obs::MetricsExport
Runtime::metricsMeta() const
{
    obs::MetricsExport meta;
    meta.driver = config_.driver;
    meta.impl = implName(config_.machine.impl);
    meta.interval = config_.metricsInterval;
    return meta;
}

void
Runtime::writeMetricsJson(std::ostream &os) const
{
    std::vector<const obs::Telemetry *> series;
    series.reserve(telemetry_.size());
    for (const auto &t : telemetry_)
        series.push_back(t.get());
    obs::writeMetricsJson(os, metricsMeta(), series);
}

void
Runtime::writeOpenMetrics(std::ostream &os) const
{
    std::vector<const obs::Telemetry *> series;
    series.reserve(telemetry_.size());
    for (const auto &t : telemetry_)
        series.push_back(t.get());
    obs::writeOpenMetrics(os, metricsMeta(), series);
}

} // namespace fpc::sched
