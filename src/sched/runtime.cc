#include "sched/runtime.hh"

#include <algorithm>
#include <exception>
#include <optional>
#include <thread>

#include "common/logging.hh"
#include "frames/size_classes.hh"
#include "obs/fanout.hh"
#include "obs/postmortem.hh"
#include "replay/recorder.hh"

namespace fpc::sched
{

Runtime::Runtime(RuntimeConfig config) : config_(std::move(config))
{
    if (config_.workers == 0)
        config_.workers = 1;
    // Fail the whole runtime up front rather than panicking on a
    // worker thread mid-run: every worker machine would hit the same
    // constructor check.
    if (config_.machine.accel.enabled && config_.machine.accel.threaded &&
        !Machine::threadedSupported())
        panic("threaded backend requested but not supported by this "
              "build");
}

Runtime::~Runtime()
{
    stopPool();
}

unsigned
Runtime::submit(Job job)
{
    if (ran_)
        panic("Runtime::submit after run()");
    if (!job.modules || job.modules->empty())
        panic("Runtime::submit: job has no modules");
    const auto id = static_cast<unsigned>(jobs_.size());
    jobs_.push_back(std::move(job));
    return id;
}

void
Runtime::prepareContext(ExecContext &ctx, const Job &job)
{
    // Tear down the previous job's machine before touching the
    // memory and image it references.
    ctx.machine.reset();
    if (!ctx.mem) {
        ctx.mem = std::make_unique<Memory>(ctx.layout.memWords);
        ++ctx.builds;
    } else {
        // Reuse keeps the allocation (and its first-touch cost) but
        // nothing else: zeroing the store and reloading the image
        // below leaves simulated state byte-identical to a fresh
        // Memory, so results, stats and replay digests don't depend
        // on which jobs shared a context.
        ctx.mem->clear();
        ctx.mem->resetStats();
        ++ctx.reuses;
    }
    Loader loader{ctx.layout, SizeClasses::standard()};
    for (const Module &m : *job.modules)
        loader.add(m);
    ctx.image.emplace(loader.load(*ctx.mem, config_.plan));
}

/**
 * A job that will never execute (canceled) or died mid-execution (an
 * exception out of executeJob) must not leave spans open: close
 * whatever phase is open as failed, and for batch jobs (which have no
 * serving layer to do it) the request span too.
 */
void
Runtime::closeSpansOnAbort(const Job &job, unsigned id,
                           unsigned worker_id)
{
    if (config_.spans == nullptr)
        return;
    const std::uint64_t sid =
        job.span.requestId != 0 ? job.span.requestId
                                : static_cast<std::uint64_t>(id) + 1;
    const std::int64_t t = obs::SpanCollector::nowNs();
    config_.spans->endPhase(sid, t, false, obs::SpanTrack::Worker,
                            worker_id);
    if (job.span.requestId == 0)
        config_.spans->endRequestIfOpen(sid, t, false,
                                        obs::SpanTrack::Worker,
                                        worker_id);
}

JobResult
Runtime::canceledResult(unsigned id, unsigned worker_id) const
{
    JobResult r;
    r.id = id;
    r.worker = worker_id;
    r.ok = false;
    r.reason = StopReason::Error;
    r.error = "canceled: drain requested";
    return r;
}

JobResult
Runtime::executeJob(const Job &job, unsigned id, unsigned worker_id,
                    ExecContext &ctx, MachineStats &acc,
                    AccelStats &accel_acc, obs::Tracer *tracer,
                    obs::ProfileData *profile_acc,
                    obs::SampledProfile *sampled_acc,
                    obs::Telemetry *telemetry)
{
    JobResult out;
    out.id = id;
    out.worker = worker_id;

    // Host-time execution bracket, stamped unconditionally (two clock
    // reads per job) so the serving layer can attribute queue-wait vs
    // execute without span collection on. When a collector is wired,
    // this closes the open phase (serve: dispatch; batch: queued) and
    // opens execute — re-homed to *this* worker's track, which under
    // work stealing is the stealing worker, deterministically
    // (span tracks always match JobResult::worker).
    obs::SpanCollector *spans = config_.spans;
    const std::uint64_t sid =
        job.span.requestId != 0 ? job.span.requestId
                                : static_cast<std::uint64_t>(id) + 1;
    out.execStartNs = obs::SpanCollector::nowNs();
    if (spans != nullptr) {
        spans->endPhase(sid, out.execStartNs, true,
                        obs::SpanTrack::Worker, worker_id);
        spans->begin(obs::SpanKind::Execute, sid,
                     obs::SpanTrack::Worker, worker_id, job.span.tenant,
                     out.execStartNs, job.span.traceId);
    }

    // Each job sees a pristine simulated machine — its own memory,
    // image and processor — but the worker's context (the Memory
    // allocation) persists across jobs. Workers share nothing but
    // the job queue, and scale with host cores.
    prepareContext(ctx, job);
    Memory &mem = *ctx.mem;
    const LoadedImage &image = *ctx.image;
    if (config_.record) {
        // Hash before the Machine exists: its FrameHeap constructor
        // rewrites the AV, and replay hashes at this same point.
        recordedImageHash_.store(replay::imageHash(mem, image),
                                 std::memory_order_relaxed);
    }

    ctx.machine.emplace(mem, image, config_.machine);
    Machine &machine = *ctx.machine;

    // Observers are per-job: the ProcMap indexes this job's image, and
    // the tracer interns names at record time, so nothing here has to
    // outlive the job.
    obs::ProcMap procMap;
    obs::Fanout fanout;
    std::optional<obs::Profiler> profiler;
    if (tracer != nullptr || profile_acc != nullptr)
        procMap = obs::ProcMap(image);
    if (tracer != nullptr) {
        tracer->setProcMap(&procMap);
        fanout.add(tracer);
    }
    if (profile_acc != nullptr) {
        profiler.emplace(image);
        fanout.add(&*profiler);
    }
    std::optional<obs::FlightRecorder> recorder;
    if (!config_.postmortemDir.empty()) {
        recorder.emplace();
        fanout.add(&*recorder);
    }
    if (!fanout.empty())
        machine.setObserver(&fanout);

    // Record/replay capture: the replay recorder takes the machine's
    // one sampler slot and chains a telemetry sampler behind it, so
    // both fire on the same simulated-cycle boundaries.
    replay::Recorder replayRec;
    const bool sampledMetrics =
        config_.metricsSampled && !config_.record;
    if (config_.record) {
        replayRec.beginJob(id, worker_id);
        replayRec.setNext(telemetry);
        machine.setSampler(&replayRec, config_.metricsInterval);
    } else if (telemetry != nullptr && !sampledMetrics) {
        machine.setSampler(telemetry, config_.metricsInterval);
    }

    // Sampled (accel-safe) observability rides the boundary-sample
    // slot instead: the fast paths keep running and the stamps obey
    // the bounded-slop contract. The fanout lets the sampled profiler
    // and sampled telemetry share the one slot on distinct budgets.
    std::optional<obs::SampledProfiler> sampledProfiler;
    obs::BoundaryFanout boundaryFan;
    if (sampled_acc != nullptr) {
        sampledProfiler.emplace(image);
        boundaryFan.add(&*sampledProfiler, config_.sampleInterval);
    }
    if (sampledMetrics && telemetry != nullptr)
        boundaryFan.add(telemetry, config_.metricsInterval);
    if (!boundaryFan.empty())
        machine.setBoundarySampler(&boundaryFan,
                                   boundaryFan.machineInterval());

    // Dynamic probes: compile the registry's current snapshot against
    // this job's image and attach as the machine's probe sink.
    // Entry/exit sites arm their procedures' code ranges, so the
    // accelerated backends deoptimize only the superblocks/bursts
    // containing probed PCs; everything else keeps full speed.
    std::optional<obs::ProbeEngine> probeEngine;
    if (config_.probes != nullptr) {
        obs::ProbeRegistry::Snapshot snap = config_.probes->snapshot();
        if (!snap->empty()) {
            probeEngine.emplace(std::move(snap), image, job.tenant,
                                worker_id);
            machine.setProbeSink(&*probeEngine,
                                 probeEngine->armedRanges());
        }
    }

    if (config_.machine.timesliceSteps > 0) {
        // A single-process workload still takes the full ProcSwitch
        // XFER on every timeslice: the scheduler hook hands back the
        // current context and the engine pays the fallback.
        Machine::Scheduler policy =
            [](Machine &m) { return m.currentFrameContext(); };
        if (config_.record)
            policy = replayRec.wrapPolicy(std::move(policy));
        machine.setScheduler(std::move(policy));
    }

    machine.start(job.module, job.proc, job.args);
    if (config_.record)
        replayRec.sample(machine);
    if (telemetry != nullptr)
        telemetry->sample(machine);
    const RunResult result = machine.run();
    if (config_.record) {
        replayRec.finish(machine, result);
        jobRecords_[id] = replayRec.takeJob(); // distinct slot: no lock
    }
    if (telemetry != nullptr)
        telemetry->sample(machine);

    out.reason = result.reason;
    out.steps = machine.stats().steps;
    out.cycles = machine.stats().cycles;
    if (result.reason == StopReason::TopReturn) {
        out.ok = true;
        out.value = machine.popValue();
    } else if (result.reason == StopReason::Halted) {
        out.ok = true;
    } else {
        out.error = result.message;
    }
    acc.merge(machine.stats());
    accel_acc.merge(machine.accelStats());
    {
        // Fold per job so a live scrape (serving) can surface accel
        // gauges mid-run: mergedAccel_ only folds at join.
        std::lock_guard<std::mutex> lock(liveMutex_);
        liveAccel_.merge(machine.accelStats());
    }

    out.execEndNs = obs::SpanCollector::nowNs();
    if (spans != nullptr) {
        spans->end(obs::SpanKind::Execute, sid, out.execEndNs, out.ok);
        if (job.span.requestId == 0) {
            // Batch jobs have no serving layer to close the request:
            // the tree is request ⊃ queued ⊃ execute, all ending here,
            // re-homed to the executing worker.
            spans->end(obs::SpanKind::Request, sid, out.execEndNs,
                       out.ok, obs::SpanTrack::Worker, worker_id);
        }
    }

    if (!out.ok && recorder) {
        obs::PostmortemConfig pm;
        pm.dir = config_.postmortemDir;
        pm.filePrefix = "job-" + std::to_string(id) + "-";
        pm.driver = config_.driver;
        pm.impl = implName(config_.machine.impl);
        obs::writePostmortem(pm, machine, result, image, *recorder,
                             telemetry);
    }

    if (telemetry != nullptr) {
        // As with the tracer: consecutive jobs lay out consecutively
        // on this worker's series, and the counters stay monotone.
        telemetry->setBase(telemetry->base() + machine.stats().cycles,
                           telemetry->stepBase() +
                               machine.stats().steps);
    }
    if (tracer != nullptr) {
        // Lay consecutive jobs out consecutively on this worker's
        // track; the ProcMap dies with this job.
        tracer->setBase(tracer->base() + machine.stats().cycles);
        tracer->setProcMap(nullptr);
    }
    if (profiler)
        profile_acc->merge(profiler->finish(machine.stats().cycles));
    if (sampledProfiler)
        sampled_acc->merge(sampledProfiler->finish());

    if (probeEngine) {
        machine.setProbeSink(nullptr);
        probeEngine->finishInto(*config_.probes);
    }

    // The machine outlives this call inside the worker's context, but
    // every observer above is a stack local: detach them so nothing
    // dangles between jobs.
    machine.setObserver(nullptr);
    machine.setSampler(nullptr, 0);
    machine.setBoundarySampler(nullptr, 0);
    machine.setScheduler(nullptr);

    return out;
}

void
Runtime::workerMain(unsigned worker_id)
{
    MachineStats acc;
    AccelStats accelAcc;
    stats::StatGroup local("fpc_runtime");
    auto &jobs_completed =
        local.counter("jobs_completed", "jobs that finished ok");
    auto &jobs_failed =
        local.counter("jobs_failed", "jobs that stopped on an error");
    auto &job_steps =
        local.distribution("job_steps", "instructions per job");
    auto &job_cycles =
        local.distribution("job_cycles", "simulated cycles per job");
    auto &context_builds = local.counter(
        "context_builds", "fresh per-worker machine contexts");
    auto &context_reuses = local.counter(
        "context_reuses", "jobs that recycled a worker context");

    obs::Tracer *tracer =
        config_.trace ? tracers_[worker_id].get() : nullptr;
    obs::ProfileData profile_acc;
    obs::ProfileData *profile_ptr =
        config_.profile ? &profile_acc : nullptr;
    obs::SampledProfile sampled_acc;
    obs::SampledProfile *sampled_ptr =
        config_.profileSampled ? &sampled_acc : nullptr;
    obs::Telemetry *telemetry =
        config_.metrics ? telemetry_[worker_id].get() : nullptr;
    ExecContext ctx;

    // This worker's job progress, visible in every sample it takes.
    // Deterministic because metrics force the static assignment.
    double jobs_done = 0;
    double jobs_assigned = 0;
    if (telemetry != nullptr) {
        telemetry->setProvider(
            [this, &jobs_done, &jobs_assigned](
                std::vector<std::pair<std::string, double>> &g) {
                g.emplace_back("worker_jobs_done", jobs_done);
                g.emplace_back("worker_jobs_assigned", jobs_assigned);
                if (config_.gaugeProvider)
                    config_.gaugeProvider(g);
            });
    }

    // The dynamic queue is fast but nondeterministic: which worker
    // claims which job depends on thread timing. With observation on
    // (tracing, metrics, postmortems) we want reproducible tracks, so
    // jobs stride statically instead (job i runs on worker i mod n).
    const std::size_t stride = poolSize_;
    std::size_t strided = worker_id;

    while (true) {
        std::size_t i;
        if (staticAssignment()) {
            i = strided;
            strided += stride;
        } else {
            i = next_.fetch_add(1, std::memory_order_relaxed);
        }
        if (i >= jobs_.size())
            break;
        ++jobs_assigned;
        JobResult r;
        if (stopRequested()) {
            r = canceledResult(static_cast<unsigned>(i), worker_id);
            closeSpansOnAbort(jobs_[i], static_cast<unsigned>(i),
                              worker_id);
        } else {
            try {
                r = executeJob(jobs_[i], static_cast<unsigned>(i),
                               worker_id, ctx, acc, accelAcc, tracer,
                               profile_ptr, sampled_ptr, telemetry);
            } catch (const std::exception &err) {
                r.id = static_cast<unsigned>(i);
                r.worker = worker_id;
                r.ok = false;
                r.reason = StopReason::Error;
                r.error = err.what();
                closeSpansOnAbort(jobs_[i], static_cast<unsigned>(i),
                                  worker_id);
            }
        }
        if (r.ok)
            ++jobs_completed;
        else
            ++jobs_failed;
        job_steps.sample(static_cast<double>(r.steps));
        job_cycles.sample(static_cast<double>(r.cycles));
        ++jobs_done;
        results_[i] = std::move(r); // distinct slot per job: no lock
    }
    context_builds += ctx.builds;
    context_reuses += ctx.reuses;

    // Per-worker stats fold into the runtime's registries at join.
    std::lock_guard<std::mutex> lock(mergeMutex_);
    merged_.merge(acc);
    mergedAccel_.merge(accelAcc);
    group_.mergeFrom(local);
    if (profile_ptr != nullptr)
        profile_.merge(profile_acc);
    if (sampled_ptr != nullptr)
        sampledProfile_.merge(sampled_acc);
}

void
Runtime::poolWorkerMain(unsigned worker_id)
{
    MachineStats acc;
    AccelStats accelAcc;
    stats::StatGroup local("fpc_runtime");
    auto &jobs_completed =
        local.counter("jobs_completed", "jobs that finished ok");
    auto &jobs_failed =
        local.counter("jobs_failed", "jobs that stopped on an error");
    auto &job_steps =
        local.distribution("job_steps", "instructions per job");
    auto &job_cycles =
        local.distribution("job_cycles", "simulated cycles per job");
    auto &context_builds = local.counter(
        "context_builds", "fresh per-worker machine contexts");
    auto &context_reuses = local.counter(
        "context_reuses", "jobs that recycled a worker context");
    auto &jobs_stolen = local.counter(
        "jobs_stolen", "jobs taken from another worker's deque");

    // Pool-mode tracing: this worker's track records every job it
    // executes — including stolen ones, which thereby re-home to the
    // thief's track (matching JobResult::worker and the job's spans).
    obs::Tracer *tracer =
        config_.trace && worker_id < tracers_.size()
            ? tracers_[worker_id].get()
            : nullptr;
    obs::ProfileData profile_acc;
    obs::ProfileData *profile_ptr =
        config_.profile ? &profile_acc : nullptr;
    obs::SampledProfile sampled_acc;
    obs::SampledProfile *sampled_ptr =
        config_.profileSampled ? &sampled_acc : nullptr;
    obs::Telemetry *telemetry =
        config_.metrics && worker_id < telemetry_.size()
            ? telemetry_[worker_id].get()
            : nullptr;
    ExecContext ctx;

    double jobs_done = 0;
    double jobs_assigned = 0;
    if (telemetry != nullptr) {
        telemetry->setProvider(
            [this, &jobs_done, &jobs_assigned](
                std::vector<std::pair<std::string, double>> &g) {
                g.emplace_back("worker_jobs_done", jobs_done);
                g.emplace_back("worker_jobs_assigned", jobs_assigned);
                if (config_.gaugeProvider)
                    config_.gaugeProvider(g);
            });
    }

    PoolTask task;
    bool stolen = false;
    while (takeTask(worker_id, task, stolen)) {
        ++jobs_assigned;
        if (stolen)
            ++jobs_stolen;
        JobResult r;
        if (stopRequested()) {
            r = canceledResult(task.id, worker_id);
            closeSpansOnAbort(task.job, task.id, worker_id);
        } else {
            try {
                r = executeJob(task.job, task.id, worker_id, ctx, acc,
                               accelAcc, tracer, profile_ptr,
                               sampled_ptr, telemetry);
            } catch (const std::exception &err) {
                r.id = task.id;
                r.worker = worker_id;
                r.ok = false;
                r.reason = StopReason::Error;
                r.error = err.what();
                closeSpansOnAbort(task.job, task.id, worker_id);
            }
        }
        if (r.ok)
            ++jobs_completed;
        else
            ++jobs_failed;
        job_steps.sample(static_cast<double>(r.steps));
        job_cycles.sample(static_cast<double>(r.cycles));
        ++jobs_done;

        // Completion fires before this job stops counting as running,
        // so a drain that began while it ran cannot observe an idle
        // pool until after the callback (which may chain more work)
        // has returned. No pool lock is held: completions may call
        // enqueue().
        if (task.done) {
            JobCompletion done = std::move(task.done);
            done(std::move(r));
        }
        task = PoolTask{}; // drop the job's module refs promptly
        {
            std::lock_guard<std::mutex> lock(poolMutex_);
            running_.fetch_sub(1);
        }
        idleCv_.notify_all();
    }
    context_builds += ctx.builds;
    context_reuses += ctx.reuses;

    // Per-worker stats fold into the runtime's registries at join.
    std::lock_guard<std::mutex> lock(mergeMutex_);
    merged_.merge(acc);
    mergedAccel_.merge(accelAcc);
    group_.mergeFrom(local);
    if (profile_ptr != nullptr)
        profile_.merge(profile_acc);
    if (sampled_ptr != nullptr)
        sampledProfile_.merge(sampled_acc);
}

AccelStats
Runtime::liveAccelStats() const
{
    std::lock_guard<std::mutex> lock(liveMutex_);
    return liveAccel_;
}

bool
Runtime::takeTask(unsigned worker_id, PoolTask &out, bool &stolen)
{
    const std::size_t n = deques_.size();
    while (true) {
        // Own deque first: the owner takes the newest entry (the
        // front ages toward thieves).
        {
            WorkerDeque &own = *deques_[worker_id];
            std::lock_guard<std::mutex> lock(own.m);
            if (!own.dq.empty()) {
                out = std::move(own.dq.back());
                own.dq.pop_back();
                running_.fetch_add(1);
                queued_.fetch_sub(1);
                stolen = false;
                return true;
            }
        }
        // Steal oldest-first from the other workers.
        for (std::size_t off = 1; off < n; ++off) {
            WorkerDeque &victim = *deques_[(worker_id + off) % n];
            std::lock_guard<std::mutex> lock(victim.m);
            if (!victim.dq.empty()) {
                out = std::move(victim.dq.front());
                victim.dq.pop_front();
                running_.fetch_add(1);
                queued_.fetch_sub(1);
                stolen = true;
                return true;
            }
        }
        std::unique_lock<std::mutex> lock(poolMutex_);
        if (queued_.load() > 0)
            continue; // raced an in-flight enqueue; rescan
        if (poolStopping_)
            return false;
        workCv_.wait(lock, [this] {
            return queued_.load() > 0 || poolStopping_;
        });
        if (poolStopping_ && queued_.load() == 0)
            return false;
    }
}

void
Runtime::startPoolWorkers(unsigned n)
{
    poolStarted_ = true;
    deques_.clear();
    deques_.reserve(n);
    for (unsigned w = 0; w < n; ++w)
        deques_.push_back(std::make_unique<WorkerDeque>());
    poolThreads_.reserve(n);
    for (unsigned w = 0; w < n; ++w)
        poolThreads_.emplace_back([this, w] { poolWorkerMain(w); });
}

void
Runtime::startPool()
{
    if (ran_)
        panic("Runtime::startPool after run()");
    if (poolStarted_)
        panic("Runtime::startPool called twice");
    if (config_.record) {
        panic("Runtime pool mode does not support record; batch "
              "run() provides the reproducible static assignment "
              "a recording's job→worker header needs");
    }
    const unsigned n = config_.workers;
    poolSize_ = n;
    if (config_.trace && tracers_.empty()) {
        tracers_.reserve(n);
        for (unsigned w = 0; w < n; ++w) {
            tracers_.push_back(
                std::make_unique<obs::Tracer>(config_.traceCapacity));
        }
    }
    if (config_.metrics && telemetry_.empty()) {
        telemetry_.reserve(n);
        for (unsigned w = 0; w < n; ++w) {
            telemetry_.push_back(std::make_unique<obs::Telemetry>(
                config_.metricsCapacity));
        }
    }
    startPoolWorkers(n);
}

unsigned
Runtime::enqueue(Job job, JobCompletion done)
{
    if (!poolStarted_)
        panic("Runtime::enqueue without startPool()");
    if (!job.modules || job.modules->empty())
        panic("Runtime::enqueue: job has no modules");
    const unsigned id = nextPoolId_.fetch_add(1);
    const auto w = static_cast<std::size_t>(enqueueRr_.fetch_add(1)) %
                   deques_.size();
    if (config_.spans != nullptr && job.span.requestId == 0) {
        // No serving layer owns this job's tree: synthesize
        // request ⊃ queued here (execute and the closes happen in
        // executeJob). Ids are job id + 1 — distinct from serve
        // request ids only because drivers use one style per process.
        const std::uint64_t sid = static_cast<std::uint64_t>(id) + 1;
        const std::int64_t t = obs::SpanCollector::nowNs();
        const auto track = static_cast<std::uint32_t>(w);
        config_.spans->begin(obs::SpanKind::Request, sid,
                             obs::SpanTrack::Worker, track,
                             job.span.tenant, t, job.span.traceId);
        config_.spans->begin(obs::SpanKind::Queued, sid,
                             obs::SpanTrack::Worker, track,
                             job.span.tenant, t, job.span.traceId);
    }
    // Count the job as queued before it becomes claimable: a worker
    // can never drive queued_ through zero while a task is in flight
    // between the deque and the running count, so drainPool's
    // "queued == 0 && running == 0" condition is exact.
    {
        std::lock_guard<std::mutex> lock(poolMutex_);
        queued_.fetch_add(1);
    }
    {
        std::lock_guard<std::mutex> lock(deques_[w]->m);
        deques_[w]->dq.push_back(
            PoolTask{id, std::move(job), std::move(done)});
    }
    workCv_.notify_one();
    return id;
}

void
Runtime::drainPool()
{
    std::unique_lock<std::mutex> lock(poolMutex_);
    idleCv_.wait(lock, [this] {
        return queued_.load() == 0 && running_.load() == 0;
    });
}

void
Runtime::stopPool()
{
    if (!poolStarted_)
        return;
    {
        std::lock_guard<std::mutex> lock(poolMutex_);
        poolStopping_ = true;
    }
    workCv_.notify_all();
    for (std::thread &t : poolThreads_)
        t.join();
    poolThreads_.clear();
    deques_.clear();
    {
        std::lock_guard<std::mutex> lock(poolMutex_);
        poolStopping_ = false;
    }
    poolStarted_ = false;
}

std::vector<JobResult>
Runtime::run()
{
    if (ran_)
        panic("Runtime::run called twice");
    if (poolStarted_)
        panic("Runtime::run after startPool()");
    ran_ = true;
    results_.resize(jobs_.size());
    if (config_.record)
        jobRecords_.resize(jobs_.size());

    const unsigned n =
        std::min<unsigned>(config_.workers,
                           std::max<std::size_t>(1, jobs_.size()));
    poolSize_ = n;
    if (config_.trace) {
        tracers_.reserve(n);
        for (unsigned w = 0; w < n; ++w) {
            tracers_.push_back(
                std::make_unique<obs::Tracer>(config_.traceCapacity));
        }
    }
    if (config_.metrics) {
        telemetry_.reserve(n);
        for (unsigned w = 0; w < n; ++w) {
            telemetry_.push_back(std::make_unique<obs::Telemetry>(
                config_.metricsCapacity));
        }
    }
    if (staticAssignment()) {
        if (config_.spans != nullptr) {
            // Batch request ⊃ queued spans all begin at submission
            // time (run() entry); queue-wait is time until a worker
            // reaches the job in its stride.
            const std::int64_t t = obs::SpanCollector::nowNs();
            for (std::size_t i = 0; i < jobs_.size(); ++i) {
                if (jobs_[i].span.requestId != 0)
                    continue;
                const std::uint64_t sid = i + 1;
                const auto track = static_cast<std::uint32_t>(i % n);
                config_.spans->begin(obs::SpanKind::Request, sid,
                                     obs::SpanTrack::Worker, track,
                                     jobs_[i].span.tenant, t,
                                     jobs_[i].span.traceId);
                config_.spans->begin(obs::SpanKind::Queued, sid,
                                     obs::SpanTrack::Worker, track,
                                     jobs_[i].span.tenant, t,
                                     jobs_[i].span.traceId);
            }
        }
        std::vector<std::thread> pool;
        pool.reserve(n);
        for (unsigned w = 0; w < n; ++w)
            pool.emplace_back([this, w] { workerMain(w); });
        for (std::thread &t : pool)
            t.join();
    } else {
        // The dynamic batch path rides the same pool machinery the
        // serving layer uses: bring workers up, enqueue everything
        // with completions that land results in their slots, drain
        // and join.
        startPoolWorkers(n);
        for (std::size_t i = 0; i < jobs_.size(); ++i) {
            enqueue(jobs_[i], [this, i](JobResult r) {
                r.id = static_cast<unsigned>(i);
                results_[i] = std::move(r); // distinct slot: no lock
            });
        }
        stopPool();
    }

    return results_;
}

void
Runtime::writeTrace(std::ostream &os) const
{
    obs::writeChromeTrace(os, tracers());
}

std::vector<const obs::Tracer *>
Runtime::tracers() const
{
    std::vector<const obs::Tracer *> tracks;
    tracks.reserve(tracers_.size());
    for (const auto &t : tracers_)
        tracks.push_back(t.get());
    return tracks;
}

obs::MetricsExport
Runtime::metricsMeta() const
{
    obs::MetricsExport meta;
    meta.driver = config_.driver;
    meta.impl = implName(config_.machine.impl);
    meta.interval = config_.metricsInterval;
    // Sampled series are not byte-identical across the accel switch
    // anyway (their purpose is observing accelerated runs), so the
    // accel gauges flow by default; exact mode keeps the strict
    // byte-identity contract and exports them only on request.
    meta.includeAccel = config_.metricsSampled && !config_.record;
    return meta;
}

void
Runtime::writeMetricsJson(std::ostream &os) const
{
    std::vector<const obs::Telemetry *> series;
    series.reserve(telemetry_.size());
    for (const auto &t : telemetry_)
        series.push_back(t.get());
    obs::writeMetricsJson(os, metricsMeta(), series);
}

void
Runtime::writeOpenMetrics(std::ostream &os) const
{
    std::vector<const obs::Telemetry *> series;
    series.reserve(telemetry_.size());
    for (const auto &t : telemetry_)
        series.push_back(t.get());
    obs::writeOpenMetrics(os, metricsMeta(), series);
}

} // namespace fpc::sched
