#include "sched/scheduler.hh"

#include <algorithm>

#include "common/logging.hh"

namespace fpc::sched
{

const char *
procStateName(ProcState state)
{
    switch (state) {
      case ProcState::Ready: return "ready";
      case ProcState::Running: return "running";
      case ProcState::Blocked: return "blocked";
      case ProcState::Done: return "done";
      default: return "?";
    }
}

const char *
policyName(Policy policy)
{
    switch (policy) {
      case Policy::RoundRobin: return "round-robin";
      case Policy::Priority: return "priority";
      default: return "?";
    }
}

Scheduler::Scheduler(Machine &machine, Policy policy)
    : machine_(machine), policy_(policy)
{
    machine_.setScheduler([this](Machine &m) { return onSwitch(m); });
}

Scheduler::~Scheduler()
{
    machine_.setScheduler({});
}

unsigned
Scheduler::spawn(const std::string &module, const std::string &proc,
                 std::span<const Word> args, unsigned priority)
{
    Process p;
    p.pid = static_cast<unsigned>(procs_.size());
    p.name = module + "." + proc;
    p.context = machine_.spawn(module, proc, args);
    p.rootFrame =
        unpackContext(p.context, machine_.image().layout()).framePtr;
    p.priority = priority;
    p.state = ProcState::Ready;
    // §4: the root activation record is a retained frame — it must
    // survive anything the process does until the scheduler reclaims
    // it, even a return that would normally free it.
    machine_.setRetained(p.rootFrame, true);
    ready_.push_back(p.pid);
    procs_.push_back(std::move(p));
    return procs_.back().pid;
}

void
Scheduler::block(unsigned pid, Word event)
{
    Process &p = procs_.at(pid);
    if (p.state != ProcState::Ready)
        panic("block: process {} ({}) is {}, not ready", pid, p.name,
              procStateName(p.state));
    ready_.erase(std::find(ready_.begin(), ready_.end(), pid));
    p.state = ProcState::Blocked;
    p.blockedOn = event;
}

unsigned
Scheduler::signal(Word event)
{
    unsigned woken = 0;
    for (Process &p : procs_) {
        if (p.state == ProcState::Blocked && p.blockedOn == event) {
            p.state = ProcState::Ready;
            p.blockedOn = 0;
            ready_.push_back(p.pid);
            ++woken;
        }
    }
    return woken;
}

int
Scheduler::pickNext()
{
    if (ready_.empty())
        return -1;
    auto best = ready_.begin();
    if (policy_ == Policy::Priority) {
        for (auto it = ready_.begin(); it != ready_.end(); ++it)
            if (procs_[*it].priority > procs_[*best].priority)
                best = it;
    }
    int idx = static_cast<int>(*best);
    if (pickOverride_) {
        const int forced =
            pickOverride_(machine_.stats().steps, idx);
        if (forced >= 0 && forced != idx) {
            const auto it = std::find(ready_.begin(), ready_.end(),
                                      static_cast<unsigned>(forced));
            if (it == ready_.end())
                panic("scheduler replay: forced pid {} is not ready",
                      forced);
            best = it;
            idx = forced;
        }
    }
    ready_.erase(best);
    if (pickHook_)
        pickHook_(machine_.stats().steps,
                  static_cast<unsigned>(idx));
    return idx;
}

Word
Scheduler::onSwitch(Machine &m)
{
    if (current_ >= 0) {
        Process &cur = procs_[static_cast<unsigned>(current_)];
        cur.stepsRun += m.stats().steps - stepMark_;
        stepMark_ = m.stats().steps;
        cur.context = m.currentFrameContext();
        cur.state = ProcState::Ready;
        ready_.push_back(cur.pid);
        if (m.preemptionInProgress()) {
            ++cur.preemptions;
            ++stats_.preemptions;
        } else {
            ++cur.yields;
            ++stats_.yields;
        }
    }
    const int idx = pickNext();
    if (idx < 0)
        panic("scheduler: no ready process at a switch point");
    Process &next = procs_[static_cast<unsigned>(idx)];
    next.state = ProcState::Running;
    ++next.dispatches;
    ++stats_.dispatches;
    current_ = idx;
    return next.context;
}

RunResult
Scheduler::runAll()
{
    RunResult last;
    last.reason = StopReason::Halted;
    last.message = "scheduler idle";

    while (true) {
        const int idx = pickNext();
        if (idx < 0)
            break;
        Process &p = procs_[static_cast<unsigned>(idx)];
        p.state = ProcState::Running;
        ++p.dispatches;
        ++stats_.dispatches;
        current_ = idx;
        stepMark_ = machine_.stats().steps;

        machine_.resumeProcess(p.context);
        last = machine_.run();

        // In-run switches may have moved the machine to a different
        // process; the one that stopped is current_.
        Process &fin = procs_[static_cast<unsigned>(current_)];
        fin.stepsRun += machine_.stats().steps - stepMark_;
        current_ = -1;

        if (last.reason == StopReason::TopReturn) {
            fin.result = machine_.popValue();
            complete(fin, true);
        } else if (last.reason == StopReason::Halted) {
            // HALT stops the machine without unwinding, so the frame
            // tree below the halted context stays allocated; only the
            // bookkeeping is closed out.
            complete(fin, false);
        } else {
            complete(fin, false);
            return last; // error / step limit: propagate to the caller
        }
    }
    return last;
}

void
Scheduler::complete(Process &proc, bool release_root)
{
    proc.state = ProcState::Done;
    ++stats_.completions;
    if (release_root && proc.rootFrame != nilAddr) {
        // The root returned (its release was skipped because the
        // frame is retained); now the scheduler lets go of it.
        machine_.setRetained(proc.rootFrame, false);
        machine_.heap().release(proc.rootFrame);
        proc.rootFrame = nilAddr;
    }
}

const Process &
Scheduler::process(unsigned pid) const
{
    return procs_.at(pid);
}

std::size_t
Scheduler::blockedCount() const
{
    return static_cast<std::size_t>(
        std::count_if(procs_.begin(), procs_.end(), [](const Process &p) {
            return p.state == ProcState::Blocked;
        }));
}

std::size_t
Scheduler::liveCount() const
{
    return static_cast<std::size_t>(
        std::count_if(procs_.begin(), procs_.end(), [](const Process &p) {
            return p.state != ProcState::Done;
        }));
}

void
Scheduler::appendGauges(
    std::vector<std::pair<std::string, double>> &out) const
{
    out.emplace_back("sched_ready",
                     static_cast<double>(readyCount()));
    out.emplace_back("sched_blocked",
                     static_cast<double>(blockedCount()));
    out.emplace_back("sched_live", static_cast<double>(liveCount()));
    out.emplace_back("sched_dispatches",
                     static_cast<double>(stats_.dispatches));
    out.emplace_back("sched_preemptions",
                     static_cast<double>(stats_.preemptions));
    out.emplace_back("sched_yields",
                     static_cast<double>(stats_.yields));
    out.emplace_back("sched_completions",
                     static_cast<double>(stats_.completions));
}

} // namespace fpc::sched
