/**
 * @file
 * A Process: a schedulable activation of the transfer model (§3).
 *
 * The paper's model already contains everything a process needs — a
 * process *is* a context plus the frames reachable from it, and a
 * process switch is just an XFER whose destination belongs to another
 * process. This header adds the bookkeeping a scheduler keeps *about*
 * a context: identity, priority, run state, and accounting. The
 * machine itself never sees a Process; it sees only context words.
 */

#ifndef FPC_SCHED_PROCESS_HH
#define FPC_SCHED_PROCESS_HH

#include <optional>
#include <string>

#include "common/types.hh"
#include "xfer/context.hh"

namespace fpc::sched
{

/** Where a process stands with the scheduler. */
enum class ProcState
{
    Ready,   ///< on the ready queue, dispatchable
    Running, ///< currently owns the machine
    Blocked, ///< waiting for a signal() on its event
    Done     ///< returned from its root frame (or halted/errored)
};

const char *procStateName(ProcState state);

/**
 * One schedulable process. `context` is the suspended activation —
 * while the process is off the machine it is always a frame context;
 * the scheduler refreshes it at every switch. `rootFrame` is the
 * frame spawn() created, kept retained (§4) for the process's
 * lifetime so the root activation record is pinned until the
 * scheduler itself reclaims it.
 */
struct Process
{
    unsigned pid = 0;
    std::string name;            ///< "Module.proc", for diagnostics
    Word context = nilContext;   ///< where an XFER resumes it
    Addr rootFrame = nilAddr;    ///< retained root activation record
    unsigned priority = 0;       ///< higher runs first (Priority policy)
    ProcState state = ProcState::Ready;
    Word blockedOn = 0;          ///< event word, valid when Blocked

    // accounting
    CountT dispatches = 0;       ///< times switched onto the machine
    CountT preemptions = 0;      ///< involuntary switches off it
    CountT yields = 0;           ///< voluntary switches off it
    std::uint64_t stepsRun = 0;  ///< instructions executed (attributed)
    std::optional<Word> result;  ///< top-level return value, when Done
};

} // namespace fpc::sched

#endif // FPC_SCHED_PROCESS_HH
