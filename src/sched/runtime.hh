/**
 * @file
 * Layer 2 of the runtime: a pool of OS worker threads, each running
 * an independent Machine, pulling jobs from a shared queue.
 *
 * The simulated processor is single-threaded by construction (one
 * Memory, one register file), so throughput comes from running many
 * of them: each worker owns a private Memory/LoadedImage/Machine per
 * job, executes it to completion, and folds its MachineStats and a
 * per-worker stat registry into the runtime's merged view at join.
 * Jobs are compiled MiniMesa programs (or generated synthetic ones);
 * with MachineConfig::timesliceSteps set, every worker also exercises
 * the in-VM preemption path, so the throughput numbers include the
 * process-switch overhead the paper's §7.1 fallback prescribes.
 */

#ifndef FPC_SCHED_RUNTIME_HH
#define FPC_SCHED_RUNTIME_HH

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "machine/machine.hh"
#include "obs/probes.hh"
#include "obs/profile.hh"
#include "obs/sampled_profile.hh"
#include "obs/spans.hh"
#include "obs/telemetry.hh"
#include "obs/trace.hh"
#include "program/loader.hh"
#include "program/module.hh"
#include "replay/record.hh"
#include "stats/stats.hh"

namespace fpc::sched
{

/** One unit of work: run modules' Mod.proc(args) to completion. The
 *  module list is shared — many jobs typically run one program. */
struct Job
{
    Job() = default;
    Job(std::shared_ptr<const std::vector<Module>> modules_,
        std::string module_, std::string proc_,
        std::vector<Word> args_, obs::SpanRef span_ = {})
        : modules(std::move(modules_)), module(std::move(module_)),
          proc(std::move(proc_)), args(std::move(args_)), span(span_)
    {
    }

    std::shared_ptr<const std::vector<Module>> modules;
    std::string module;
    std::string proc;
    std::vector<Word> args;

    /** Owning tenant (serving mode); probe `tenant ==` predicates
     *  match against it. Empty in batch mode. */
    std::string tenant;

    /** Span propagation context (see obs::SpanRef). When requestId is
     *  nonzero the serving layer owns the request/admission/queued/
     *  dispatch/reply brackets and the runtime only brackets execute
     *  (closing the open dispatch phase at execution start); when
     *  zero and RuntimeConfig::spans is set, the runtime synthesizes
     *  a request ⊃ queued ⊃ execute tree itself (batch mode). */
    obs::SpanRef span;
};

/** What became of one job. */
struct JobResult
{
    unsigned id = 0;
    unsigned worker = 0;
    bool ok = false;
    StopReason reason = StopReason::Running;
    Word value = 0;       ///< top-level return value, when ok
    std::string error;    ///< failure message, when !ok
    std::uint64_t steps = 0;
    Tick cycles = 0;

    /** Host steady-clock brackets of the execution itself
     *  (obs::SpanCollector::nowNs() epoch), stamped whether or not
     *  span collection is on; 0/0 for canceled jobs that never ran.
     *  The serving layer derives queue-wait/execute attribution from
     *  these without re-reading clocks. */
    std::int64_t execStartNs = 0;
    std::int64_t execEndNs = 0;
};

/** Delivered with a pool-mode job's result, on the worker thread that
 *  ran it. Must not block for long — the worker is the pool's
 *  capacity — but may call Runtime::enqueue to chain more work. */
using JobCompletion = std::function<void(JobResult)>;

struct RuntimeConfig
{
    unsigned workers = 1;
    MachineConfig machine;
    LinkPlan plan;

    /** Cooperative cancellation: when non-null and set, workers stop
     *  starting jobs — anything not yet begun completes immediately
     *  as failed ("canceled: drain requested") — but every job still
     *  gets a result and the merged stats stay valid. Drivers point
     *  this at their SIGINT/SIGTERM flag. */
    const std::atomic<bool> *stopFlag = nullptr;

    /** Extra gauges appended to every worker's telemetry samples when
     *  metrics are on (the serving layer injects queue depth and
     *  tenant gauges this way). Called on worker threads, so it must
     *  be thread-safe. */
    obs::Telemetry::GaugeProvider gaugeProvider;

    /** Record per-worker XFER traces (see obs::Tracer). In batch
     *  run() this forces the static job-to-worker assignment (job i →
     *  worker i mod stride, jobs_stolen structurally zero) so tracks
     *  are byte-identical across runs. Pool mode records too, with a
     *  different determinism contract: a job's whole trace (and its
     *  spans) land on the track of the worker that executed it —
     *  JobResult::worker — so work stealing re-homes the job to the
     *  stealing worker's track; tracks are stable given the
     *  execution, not across executions. */
    bool trace = false;
    std::size_t traceCapacity = obs::Tracer::defaultCapacity;

    /** Span sink shared with the serving layer (may be null). Spans
     *  are host-time only: collection never touches the Machine, so
     *  simulated stats/metrics are byte-identical with spans on or
     *  off and span collection adds zero simulated cycles. */
    obs::SpanCollector *spans = nullptr;

    /** Attribute cycles to procedures (merged across all jobs). */
    bool profile = false;

    /** Sampled (accel-safe) profiling: attribute cycle shares from
     *  boundary samples (see obs::SampledProfiler) instead of exact
     *  XFER observation, so the accel fast paths keep running.
     *  Merged across all jobs; statistical, so it does not force the
     *  static assignment. */
    bool profileSampled = false;
    /** Simulated-cycle budget between profile samples. Prime by
     *  default so tight loops don't alias the sampling clock. */
    Tick sampleInterval = 9973;

    /** Record a per-worker metrics time series (see obs::Telemetry):
     *  each job is sampled every metricsInterval simulated cycles and
     *  bracketed with a start and end snapshot; consecutive jobs lay
     *  out consecutively on their worker's series. Forces the static
     *  job-to-worker assignment so the series are reproducible. */
    bool metrics = false;
    Tick metricsInterval = obs::Telemetry::defaultInterval;
    std::size_t metricsCapacity = obs::Telemetry::defaultCapacity;

    /** Clock the telemetry off boundary samples instead of the exact
     *  cycle sampler: sample stamps obey the bounded-slop contract
     *  (machine/machine.hh) and accelerated runs keep their fast
     *  paths. Ignored — exact forced — when record is set: replay
     *  needs the exact sampler chain. */
    bool metricsSampled = false;

    /** When nonempty, every failed job writes a postmortem bundle
     *  ("job-<id>-postmortem.json" + disassembly) into this
     *  directory. Forces the static assignment, like trace. */
    std::string postmortemDir;

    /** Record every job's execution history (scheduler decisions +
     *  periodic state digests on metricsInterval) into a
     *  replay::JobRecord, retrievable with jobRecords() after run().
     *  Forces the static assignment so job→worker mapping — part of
     *  the fpc-record-v1 header — is reproducible. */
    bool record = false;

    /** Dynamic probes (see obs/probes.hh). When non-null and active,
     *  every job compiles the registry's current snapshot against its
     *  image, attaches a ProbeEngine as the machine's ProbeSink (which
     *  selectively deoptimizes only the armed code ranges under the
     *  accelerated backends), and folds its aggregation buffers back
     *  at completion. Probes are host-time only — simulated stats /
     *  metrics / traces stay byte-identical with any probe set
     *  attached — but batch run() forces the static job-to-worker
     *  assignment while probes are attached so fpc-probes-v1 capture
     *  rings are reproducible. */
    obs::ProbeRegistry *probes = nullptr;

    /** Identity stamped into metrics/postmortem exports. */
    std::string driver = "runtime";
};

/**
 * The multi-worker runtime, usable two ways.
 *
 * Batch mode (the original shape): submit() jobs, then run() once;
 * results come back in job order, and the merged statistics describe
 * all workers together.
 *
 * Pool mode (the serving shape): startPool() brings up long-lived
 * workers, enqueue() hands each job a completion callback, and
 * stopPool() drains and joins. Each worker keeps one reusable
 * execution context — the Memory allocation and Machine survive
 * across jobs (the store is zeroed and the image reloaded, so
 * simulated behavior is identical to a fresh machine) — and idle
 * workers steal from the back-logged ones's deques.
 */
class Runtime
{
  public:
    explicit Runtime(RuntimeConfig config);
    ~Runtime();

    /** Enqueue a job for batch mode; returns its id (results
     *  index). */
    unsigned submit(Job job);

    /** Run every submitted job across the worker pool; blocks until
     *  all are done. May be called once per Runtime (guarded — reuse
     *  panics; long-lived callers use the pool API instead). */
    std::vector<JobResult> run();

    /** @name Long-lived pool mode
     * @{ */

    /** Bring up config.workers long-lived workers. Panics if the
     *  pool is already up or run() was used. */
    void startPool();

    /** Hand the pool a job; done(result) fires on the worker thread
     *  that ran it. Jobs go to per-worker deques round-robin; idle
     *  workers steal from the front of busy ones. Returns the job
     *  id. */
    unsigned enqueue(Job job, JobCompletion done);

    /** Block until every enqueued job has completed (the pool stays
     *  up). Only races with concurrent enqueue if the caller lets
     *  it. */
    void drainPool();

    /** Drain, then stop and join the workers and fold their stats
     *  into the merged view. Idempotent. */
    void stopPool();

    bool poolStarted() const { return poolStarted_; }

    /** Jobs enqueued but not yet started / currently executing.
     *  Approximate under concurrency; exact once quiescent. */
    std::size_t queuedJobs() const
    {
        return queued_.load(std::memory_order_relaxed);
    }
    unsigned runningJobs() const
    {
        return running_.load(std::memory_order_relaxed);
    }
    /** @} */

    unsigned workers() const { return config_.workers; }

    /** Per-worker machine counters summed at join (valid after
     *  run()). */
    const MachineStats &machineStats() const { return merged_; }

    /** Host-acceleration counters summed across all workers (valid
     *  after run(); all zero when acceleration is off). */
    const AccelStats &accelStats() const { return mergedAccel_; }

    /** The merged "fpc_runtime" stat registry: job counts, per-job
     *  step/cycle distributions (valid after run()). */
    const stats::StatGroup &stats() const { return group_; }

    /** Merged per-procedure profile (valid after run() when
     *  RuntimeConfig::profile was set). */
    const obs::ProfileData &profile() const { return profile_; }

    /** Merged sampled profile (valid after run() or stopPool() when
     *  RuntimeConfig::profileSampled was set). */
    const obs::SampledProfile &sampledProfile() const
    {
        return sampledProfile_;
    }

    /** Host-acceleration counters folded per completed job, readable
     *  mid-run (accelStats() only folds at join): the serving layer's
     *  live scrape reads accel gauges from here. */
    AccelStats liveAccelStats() const;

    /** Write the multi-worker Chrome trace — one track per worker
     *  (valid after run() or stopPool() when RuntimeConfig::trace was
     *  set). */
    void writeTrace(std::ostream &os) const;

    /** The per-worker XFER tracers themselves (empty unless trace is
     *  on), for embedding into combined span/XFER documents. */
    std::vector<const obs::Tracer *> tracers() const;

    /** Write the fpc-metrics-v1 document — one series per worker
     *  (valid after run() when RuntimeConfig::metrics was set). */
    void writeMetricsJson(std::ostream &os) const;

    /** Same series in OpenMetrics text exposition format. */
    void writeOpenMetrics(std::ostream &os) const;

    /** Per-job recorded histories, indexed by job id (valid after
     *  run() when RuntimeConfig::record was set). */
    const std::vector<replay::JobRecord> &jobRecords() const
    {
        return jobRecords_;
    }

    /** The static-assignment stride actually used (min(workers,
     *  jobs)); the fpc-record-v1 header's "stride". */
    unsigned stride() const
    {
        return static_cast<unsigned>(poolSize_);
    }

    /** The recorded image hash (valid after run() with record on). */
    std::uint64_t recordedImageHash() const
    {
        return recordedImageHash_.load(std::memory_order_relaxed);
    }

  private:
    /** A worker's reusable simulated machine. The Memory allocation
     *  (and its first-touch cost) persists across jobs; prepare()
     *  zeroes the store and reloads the image, so each job still sees
     *  a pristine machine and the simulated numbers are identical to
     *  building everything fresh. */
    struct ExecContext
    {
        SystemLayout layout;
        std::unique_ptr<Memory> mem;
        std::optional<LoadedImage> image;
        std::optional<Machine> machine;
        std::uint64_t builds = 0; ///< fresh Memory allocations
        std::uint64_t reuses = 0; ///< jobs that recycled the Memory
    };

    struct PoolTask
    {
        unsigned id = 0;
        Job job;
        JobCompletion done;
    };

    /** One worker's deque: the owner pushes/pops at the back, thieves
     *  take from the front (oldest first, better locality for the
     *  owner's recent work). */
    struct WorkerDeque
    {
        std::mutex m;
        std::deque<PoolTask> dq;
    };

    void workerMain(unsigned worker_id);
    void poolWorkerMain(unsigned worker_id);
    bool takeTask(unsigned worker_id, PoolTask &out, bool &stolen);
    void startPoolWorkers(unsigned n);
    void prepareContext(ExecContext &ctx, const Job &job);
    JobResult executeJob(const Job &job, unsigned id,
                         unsigned worker_id, ExecContext &ctx,
                         MachineStats &acc, AccelStats &accel_acc,
                         obs::Tracer *tracer,
                         obs::ProfileData *profile_acc,
                         obs::SampledProfile *sampled_acc,
                         obs::Telemetry *telemetry);
    void closeSpansOnAbort(const Job &job, unsigned id,
                           unsigned worker_id);
    bool stopRequested() const
    {
        return config_.stopFlag != nullptr &&
               config_.stopFlag->load(std::memory_order_relaxed);
    }
    JobResult canceledResult(unsigned id, unsigned worker_id) const;

    /** Reproducible observation wants the static job-to-worker
     *  stride instead of the dynamic queue. */
    bool staticAssignment() const
    {
        return config_.trace || config_.metrics || config_.record ||
               !config_.postmortemDir.empty() ||
               (config_.probes != nullptr && config_.probes->active());
    }
    obs::MetricsExport metricsMeta() const;

    RuntimeConfig config_;
    std::vector<Job> jobs_;
    std::vector<JobResult> results_;
    std::atomic<std::size_t> next_{0};
    std::mutex mergeMutex_;
    MachineStats merged_;
    AccelStats mergedAccel_;
    stats::StatGroup group_{"fpc_runtime"};
    obs::ProfileData profile_;
    obs::SampledProfile sampledProfile_;
    mutable std::mutex liveMutex_;
    AccelStats liveAccel_;
    std::vector<std::unique_ptr<obs::Tracer>> tracers_;
    std::vector<std::unique_ptr<obs::Telemetry>> telemetry_;
    std::vector<replay::JobRecord> jobRecords_;
    std::atomic<std::uint64_t> recordedImageHash_{0};
    std::size_t poolSize_ = 0; ///< stride for the static assignment
    bool ran_ = false;

    // Pool mode.
    std::vector<std::unique_ptr<WorkerDeque>> deques_;
    std::vector<std::thread> poolThreads_;
    std::mutex poolMutex_;          ///< guards the wakeup conditions
    std::condition_variable workCv_; ///< work arrived / stopping
    std::condition_variable idleCv_; ///< a job finished (drain wait)
    std::atomic<std::size_t> queued_{0};
    std::atomic<unsigned> running_{0};
    std::atomic<unsigned> nextPoolId_{0};
    std::atomic<unsigned> enqueueRr_{0};
    bool poolStopping_ = false; ///< under poolMutex_
    bool poolStarted_ = false;
};

} // namespace fpc::sched

#endif // FPC_SCHED_RUNTIME_HH
