/**
 * @file
 * Layer 2 of the runtime: a pool of OS worker threads, each running
 * an independent Machine, pulling jobs from a shared queue.
 *
 * The simulated processor is single-threaded by construction (one
 * Memory, one register file), so throughput comes from running many
 * of them: each worker owns a private Memory/LoadedImage/Machine per
 * job, executes it to completion, and folds its MachineStats and a
 * per-worker stat registry into the runtime's merged view at join.
 * Jobs are compiled MiniMesa programs (or generated synthetic ones);
 * with MachineConfig::timesliceSteps set, every worker also exercises
 * the in-VM preemption path, so the throughput numbers include the
 * process-switch overhead the paper's §7.1 fallback prescribes.
 */

#ifndef FPC_SCHED_RUNTIME_HH
#define FPC_SCHED_RUNTIME_HH

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "machine/machine.hh"
#include "obs/profile.hh"
#include "obs/trace.hh"
#include "program/loader.hh"
#include "program/module.hh"
#include "stats/stats.hh"

namespace fpc::sched
{

/** One unit of work: run modules' Mod.proc(args) to completion. The
 *  module list is shared — many jobs typically run one program. */
struct Job
{
    std::shared_ptr<const std::vector<Module>> modules;
    std::string module;
    std::string proc;
    std::vector<Word> args;
};

/** What became of one job. */
struct JobResult
{
    unsigned id = 0;
    unsigned worker = 0;
    bool ok = false;
    StopReason reason = StopReason::Running;
    Word value = 0;       ///< top-level return value, when ok
    std::string error;    ///< failure message, when !ok
    std::uint64_t steps = 0;
    Tick cycles = 0;
};

struct RuntimeConfig
{
    unsigned workers = 1;
    MachineConfig machine;
    LinkPlan plan;

    /** Record per-worker XFER traces (see obs::Tracer). Forces the
     *  static job-to-worker assignment so traces are reproducible. */
    bool trace = false;
    std::size_t traceCapacity = obs::Tracer::defaultCapacity;

    /** Attribute cycles to procedures (merged across all jobs). */
    bool profile = false;
};

/**
 * The multi-worker runtime. submit() jobs, then run() once; results
 * come back in job order, and the merged statistics describe all
 * workers together.
 */
class Runtime
{
  public:
    explicit Runtime(RuntimeConfig config);

    /** Enqueue a job; returns its id (results index). */
    unsigned submit(Job job);

    /** Run every submitted job across the worker pool; blocks until
     *  all are done. May be called once per Runtime. */
    std::vector<JobResult> run();

    unsigned workers() const { return config_.workers; }

    /** Per-worker machine counters summed at join (valid after
     *  run()). */
    const MachineStats &machineStats() const { return merged_; }

    /** Host-acceleration counters summed across all workers (valid
     *  after run(); all zero when acceleration is off). */
    const AccelStats &accelStats() const { return mergedAccel_; }

    /** The merged "fpc_runtime" stat registry: job counts, per-job
     *  step/cycle distributions (valid after run()). */
    const stats::StatGroup &stats() const { return group_; }

    /** Merged per-procedure profile (valid after run() when
     *  RuntimeConfig::profile was set). */
    const obs::ProfileData &profile() const { return profile_; }

    /** Write the multi-worker Chrome trace — one track per worker
     *  (valid after run() when RuntimeConfig::trace was set). */
    void writeTrace(std::ostream &os) const;

  private:
    void workerMain(unsigned worker_id);
    JobResult executeJob(const Job &job, unsigned id,
                         unsigned worker_id, MachineStats &acc,
                         AccelStats &accel_acc, obs::Tracer *tracer,
                         obs::ProfileData *profile_acc);

    RuntimeConfig config_;
    std::vector<Job> jobs_;
    std::vector<JobResult> results_;
    std::atomic<std::size_t> next_{0};
    std::mutex mergeMutex_;
    MachineStats merged_;
    AccelStats mergedAccel_;
    stats::StatGroup group_{"fpc_runtime"};
    obs::ProfileData profile_;
    std::vector<std::unique_ptr<obs::Tracer>> tracers_;
    bool ran_ = false;
};

} // namespace fpc::sched

#endif // FPC_SCHED_RUNTIME_HH
