/**
 * @file
 * Host-side execution acceleration (see docs/PERFORMANCE.md).
 *
 * The paper's arc I1→I4 removes per-call work by resolving it once
 * per code site: §6's DIRECTCALL conversion moves the LV→GFT→GF→EV
 * walk from call time to load time. The interpreter pays analogous
 * *host* costs on every step — re-decoding the instruction at each PC
 * and re-walking the Figure-1 indirection chain on every external
 * call. This layer shifts that host work to once-per-code-site:
 *
 *  - a predecoded instruction cache: the first execution of a PC
 *    caches the isa::decode result so steady-state dispatch is an
 *    array index plus a switch;
 *  - an XFER link cache: small direct-mapped caches memoizing the
 *    resolved (global frame, entry PC, frame-size index) for each
 *    resolution discipline (EFC descriptor walk, LFC entry-vector
 *    lookup, DFC header read, FCALL fsi byte) — the dynamic analogue
 *    of I3's load-time DIRECTCALL conversion.
 *
 * The contract: every *simulated* number (cycles, storage references,
 * MachineStats, traces, profiles) is bit-identical with acceleration
 * on or off. A cache hit still charges the exact storage references
 * and cycles the paper's walk would have made; only the host-side
 * work is skipped. Invalidation: Memory keeps a code-mutation epoch
 * (bumped by every code-byte write and by the loader/relocator), and
 * the machine flushes everything when the epoch moves; data writes
 * that could change a cached mapping (the GFT, a global frame's code
 * base word) flush the link caches through a sensitive-address map.
 */

#ifndef FPC_MACHINE_ACCEL_HH
#define FPC_MACHINE_ACCEL_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "isa/decode.hh"

namespace fpc
{

class LoadedImage;

/** Host-acceleration knobs (all host-side; no simulated effect). */
struct AccelConfig
{
    /** Master switch; off runs the original interpret-everything path. */
    bool enabled = true;
    /** Predecoded icache entries (power of two). */
    unsigned icacheEntries = 1u << 14;
    /** Entries per link-cache flavor (power of two). */
    unsigned linkEntries = 1u << 8;
    /** Threaded-code backend: computed-goto dispatch over superblocks
     *  (see machine/threaded.hh). Requires enabled; only honored when
     *  Machine::threadedSupported() — callers reject it up front on
     *  toolchains without the computed-goto extension. */
    bool threaded = false;
    /** Superblock cache entries (power of two). */
    unsigned sblockEntries = 1u << 12;
};

/** Host-side cache counters (separate from MachineStats on purpose:
 *  simulated statistics are invariant under acceleration). */
struct AccelStats
{
    CountT icacheHits = 0;
    CountT icacheMisses = 0;

    CountT extHits = 0;    ///< EFC/XFER descriptor walks memoized
    CountT extMisses = 0;
    CountT localHits = 0;  ///< LFC entry-vector lookups memoized
    CountT localMisses = 0;
    CountT directHits = 0; ///< DFC/SDFC header reads memoized
    CountT directMisses = 0;
    CountT fatHits = 0;    ///< FCALL fsi-byte reads memoized
    CountT fatMisses = 0;

    CountT codeFlushes = 0;  ///< full flushes (code epoch moved)
    CountT tableFlushes = 0; ///< link flushes (sensitive data write)

    /** Threaded backend: superblocks decoded, superblock executions,
     *  and block-to-block transitions served by the inline chain
     *  pointer without a cache lookup. */
    CountT sblockBuilds = 0;
    CountT sblockExecs = 0;
    CountT sblockChainHits = 0;
    /** Dynamic executions of fused superinstructions (compare+branch
     *  and load-pair handlers): fused pairs per block × executions. */
    CountT sblockFusionHits = 0;
    /** Times the deferred block accounting folded into MachineStats
     *  (loop exits, cache flushes, boundary samples). */
    CountT deferredFlushes = 0;

    /** Dynamic probes (machine.hh ProbeSink): armed code ranges
     *  registered, superblocks selectively invalidated at arm time,
     *  and steps the accelerated loops deoptimized to the exact eager
     *  path because the PC lay inside an armed range. */
    CountT probeSites = 0;
    CountT probeDeoptBlocks = 0;
    CountT probeEagerSteps = 0;

    CountT linkHits() const
    {
        return extHits + localHits + directHits + fatHits;
    }
    CountT linkMisses() const
    {
        return extMisses + localMisses + directMisses + fatMisses;
    }
    double icacheHitRate() const;
    double linkHitRate() const;
    /** Block-to-block transitions served by the inline chain pointer,
     *  as a fraction of superblock executions. */
    double chainRate() const;

    /** Fold another machine's counters in (multi-worker runtimes). */
    void merge(const AccelStats &other);
};

/**
 * Where a procedure-call resolution landed: the callee's global
 * frame, entry PC and frame-size index (plus the code base when the
 * resolution path produced it — EFC/LFC do; DFC/FCALL leave it to be
 * recovered from the global frame on transfer out, §5.3).
 */
struct ProcTarget
{
    Addr gf = 0;
    CodeByteAddr codeBase = 0;
    bool codeBaseValid = false;
    unsigned fsi = 0;
    CodeByteAddr entryPc = 0; ///< absolute byte address
};

/** The caches themselves; owned by a Machine when acceleration is on. */
class Accel
{
  public:
    Accel(const AccelConfig &config, const LoadedImage &image,
          std::uint64_t code_epoch);

    AccelStats stats;

    /** Flush everything if the memory's code epoch moved. */
    void
    sync(std::uint64_t code_epoch)
    {
        if (code_epoch != seenEpoch_) {
            flushAll();
            seenEpoch_ = code_epoch;
            ++stats.codeFlushes;
        }
    }

    /** @name Predecoded instruction cache. @{ */
    const isa::Inst *
    findInst(CodeByteAddr pc)
    {
        const IEntry &e = icache_[pc & icacheMask_];
        if (e.tag == pc) {
            ++stats.icacheHits;
            return &e.inst;
        }
        ++stats.icacheMisses;
        return nullptr;
    }

    /** Counter-free probe for the batched fast loop: the caller
     *  accounts hits and misses at burst granularity instead of
     *  bumping a counter on every step. */
    const isa::Inst *
    probeInst(CodeByteAddr pc) const
    {
        const IEntry &e = icache_[pc & icacheMask_];
        return e.tag == pc ? &e.inst : nullptr;
    }

    /** Store a freshly decoded instruction (only after a successful
     *  decode, so a panicking fetch never leaves a live entry). */
    void
    storeInst(CodeByteAddr pc, const isa::Inst &inst)
    {
        IEntry &e = icache_[pc & icacheMask_];
        e.tag = pc;
        e.inst = inst;
    }
    /** @} */

    /** @name XFER link caches, one per resolution discipline. @{ */
    bool findExt(Word descriptor, ProcTarget &out);
    void putExt(Word descriptor, const ProcTarget &target);

    bool findLocal(CodeByteAddr code_base, unsigned ev_index,
                   unsigned &fsi, CodeByteAddr &entry_pc);
    void putLocal(CodeByteAddr code_base, unsigned ev_index,
                  const ProcTarget &target);

    bool findDirect(CodeByteAddr target_addr, ProcTarget &out);
    void putDirect(CodeByteAddr target_addr, const ProcTarget &target);

    bool findFat(CodeByteAddr target_addr, unsigned &fsi);
    void putFat(CodeByteAddr target_addr, unsigned fsi);
    /** @} */

    /** True if a data write to addr could change a memoized link
     *  mapping (GFT entry or a global frame's code-base word). */
    bool
    linkSensitive(Addr addr) const
    {
        return addr < sensitive_.size() && sensitive_[addr] != 0;
    }

    /** Drop the link caches (a sensitive data write happened). */
    void flushLinks();
    /** Drop everything (the code epoch moved). */
    void flushAll();

  private:
    struct IEntry
    {
        CodeByteAddr tag = invalidTag;
        isa::Inst inst;
    };
    struct LinkEntry
    {
        std::uint64_t key = invalidKey;
        ProcTarget target;
    };

    static constexpr CodeByteAddr invalidTag = 0xFFFFFFFFu;
    static constexpr std::uint64_t invalidKey = ~0ull;

    static std::size_t
    slot(std::uint64_t key, std::size_t mask)
    {
        return (key ^ (key >> 16)) & mask;
    }

    bool findLink(std::vector<LinkEntry> &cache, std::uint64_t key,
                  ProcTarget &out);
    void putLink(std::vector<LinkEntry> &cache, std::uint64_t key,
                 const ProcTarget &target);

    std::uint64_t seenEpoch_ = 0;
    std::size_t icacheMask_ = 0;
    std::size_t linkMask_ = 0;
    std::vector<IEntry> icache_;
    std::vector<LinkEntry> ext_;
    std::vector<LinkEntry> local_;
    std::vector<LinkEntry> direct_;
    std::vector<LinkEntry> fat_;
    /** One byte per data-space word below the frame region. */
    std::vector<std::uint8_t> sensitive_;
};

} // namespace fpc

#endif // FPC_MACHINE_ACCEL_HH
