/**
 * @file
 * The threaded-code superblock interpreter (see threaded.hh).
 *
 * Built on the GNU label-address extension: each decoded instruction
 * carries the address of its handler, handlers end by jumping straight
 * into the next handler, and a straight-line run executes out of one
 * sequential TInst array with one fused accounting charge per block.
 * The whole file is exact-accounting-first: every handler body is the
 * corresponding execute() case verbatim (with the bank checks folded
 * out by the Banked template parameter), and every block exit charges
 * precisely what the eager loop would have charged for the same
 * instruction sequence.
 */

#include "machine/threaded.hh"

#include <algorithm>
#include <array>
#include <bit>

#include "common/logging.hh"

#if defined(__GNUC__) || defined(__clang__)
#define FPC_THREADED_DISPATCH 1
#else
#define FPC_THREADED_DISPATCH 0
#endif

namespace fpc
{

bool
Machine::threadedSupported()
{
#if FPC_THREADED_DISPATCH
    return true;
#else
    return false;
#endif
}

// ---------------------------------------------------------------------
// SuperblockCache
// ---------------------------------------------------------------------

SuperblockCache::SuperblockCache(unsigned entries,
                                 std::uint64_t code_epoch)
    : seenEpoch_(code_epoch)
{
    const std::size_t size = std::bit_ceil(std::max(1u, entries));
    mask_ = size - 1;
    table_.assign(size, nullptr);
}

Superblock *
SuperblockCache::insert(std::unique_ptr<Superblock> block)
{
    Superblock *raw = block.get();
    arena_.push_back(std::move(block));
    table_[slot(raw->entry)] = raw;
    return raw;
}

void
SuperblockCache::flushAll(MachineStats &stats, AccelStats &astats)
{
    flushDeferred(stats, astats);
    std::fill(table_.begin(), table_.end(), nullptr);
    arena_.clear();
}

void
SuperblockCache::invalidateRange(CodeByteAddr begin, CodeByteAddr end,
                                 MachineStats &stats,
                                 AccelStats &astats)
{
    // Fold first: dropped blocks may carry deferred executions.
    flushDeferred(stats, astats);
    const auto intersects = [&](const Superblock &b) {
        return b.entry < end && b.entry + b.codeBytes > begin;
    };
    for (Superblock *&slot_entry : table_) {
        if (slot_entry != nullptr && intersects(*slot_entry)) {
            slot_entry = nullptr;
            ++astats.probeDeoptBlocks;
        }
    }
    // Chains bypass the outer loop's lookup (and its armed check), so
    // no surviving chain may lead into the range.
    for (auto &owned : arena_) {
        Superblock &b = *owned;
        if (b.chain == nullptr)
            continue;
        if (intersects(*b.chain) ||
            (b.chainPc >= begin && b.chainPc < end)) {
            b.chain = nullptr;
            b.chainPc = ~0u;
        }
    }
}

void
SuperblockCache::flushDeferred(MachineStats &stats, AccelStats &astats)
{
    ++astats.deferredFlushes;
    for (auto &owned : arena_) {
        Superblock &b = *owned;
        if (b.execPending == 0)
            continue;
        const std::uint64_t execs = b.execPending;
        b.execPending = 0;
        for (const auto &[op, count] : b.opDeltas)
            stats.opCount[op] += static_cast<CountT>(count) * execs;
        for (const auto &[len, count] : b.lenDeltas)
            stats.instLenCount[len] +=
                static_cast<CountT>(count) * execs;
        astats.sblockExecs += execs;
        astats.icacheHits += static_cast<CountT>(b.n) * execs;
        astats.sblockFusionHits +=
            static_cast<CountT>(b.fusedPairs) * execs;
    }
}

#if FPC_THREADED_DISPATCH

// ---------------------------------------------------------------------
// Handler indices and the superblock builder
// ---------------------------------------------------------------------

namespace
{

/**
 * Handler index space. Order matters twice: the labels array in
 * threadedLoopT must list the labels in exactly this order, and
 * every handler from H_Halt on is a block terminal (isTerminalIdx).
 */
enum HIdx : unsigned
{
    // Straight-line handlers: execution falls through to the next
    // TInst after the divergence check.
    H_Noop,
    H_Dup,
    H_Drop,
    H_Exch,
    H_Out,
    H_LoadRetCtx,
    H_LoadLocal,
    H_StoreLocal,
    H_LoadLocalAddr,
    H_LoadGlobal,
    H_StoreGlobal,
    H_LoadImm,
    H_LoadIndirect,
    H_StoreIndirect,
    H_ReadField,
    H_WriteField,
    H_LoadDesc,
    H_Add,
    H_Sub,
    H_Mul,
    H_And,
    H_Ior,
    H_Xor,
    H_Shl,
    H_Shr,
    H_ArithSlow, ///< DIV/MOD/NEG/NOT: delegate to execArith
    H_Lt,
    H_Le,
    H_Eq,
    H_Ne,
    H_Ge,
    H_Gt,
    /** Unconditional jump, fused: the builder followed the target, so
     *  the handler is pure dispatch (loops unroll into the block). */
    H_JumpFused,
    /** Forward conditional (BTFN: predicted not-taken): the block
     *  continues at the fall-through; a taken branch diverges and
     *  side-exits with exact prefix accounting. */
    H_JumpZeroFall,
    H_JumpNotZeroFall,
    /** Fused compare+forward-conditional superinstructions: the
     *  builder collapses a compare immediately followed by a
     *  JumpZeroFall/JumpNotZeroFall in the same block into one
     *  handler that branches on the comparison directly — no boolean
     *  push/pop and one dispatch instead of two. Layout is the six
     *  compares twice: first the JumpZero pairs, then JumpNotZero. */
    H_LtJz,
    H_LeJz,
    H_EqJz,
    H_NeJz,
    H_GeJz,
    H_GtJz,
    H_LtJnz,
    H_LeJnz,
    H_EqJnz,
    H_NeJnz,
    H_GeJnz,
    H_GtJnz,
    /** Fused load-pair superinstructions (LL/LI are over half of a
     *  call-heavy instruction stream): two pushes under one guard and
     *  one dispatch. As with the compare pairs, the second TInst
     *  stays in the array and keeps its own handler. */
    H_LlLl,
    H_LlLi,
    H_LiLl,
    H_LiLi,

    // Terminals: every handler from here on ends its block.
    H_Halt,
    H_Xfer,
    H_Ret,
    H_Brk,
    H_Yield,
    /** Backward conditional (BTFN: predicted taken): terminal, so a
     *  taken latch pays the O(1) full-block exit and re-enters through
     *  the chain pointer. */
    H_JumpZero,
    H_JumpNotZero,
    H_ExtCall,
    H_LocalCall,
    H_DirectCall,
    H_ShortDirectCall,
    H_FatCall,
    H_Illegal,
    H_BlockEnd, ///< sentinel after the length cap: fall to next block
    H_Count
};

constexpr bool
isTerminalIdx(unsigned h)
{
    return h >= H_Halt;
}

unsigned
handlerIndexFor(const isa::Inst &inst)
{
    using isa::Op;
    using isa::OpClass;
    switch (inst.cls) {
      case OpClass::Noop: return H_Noop;
      case OpClass::Halt: return H_Halt;
      case OpClass::Dup: return H_Dup;
      case OpClass::Drop: return H_Drop;
      case OpClass::Exch: return H_Exch;
      case OpClass::Out: return H_Out;
      case OpClass::LoadRetCtx: return H_LoadRetCtx;
      case OpClass::Xfer: return H_Xfer;
      case OpClass::Ret: return H_Ret;
      case OpClass::Brk: return H_Brk;
      case OpClass::Yield: return H_Yield;
      case OpClass::LoadLocal: return H_LoadLocal;
      case OpClass::StoreLocal: return H_StoreLocal;
      case OpClass::LoadLocalAddr: return H_LoadLocalAddr;
      case OpClass::LoadGlobal: return H_LoadGlobal;
      case OpClass::StoreGlobal: return H_StoreGlobal;
      case OpClass::LoadImm: return H_LoadImm;
      case OpClass::LoadIndirect: return H_LoadIndirect;
      case OpClass::StoreIndirect: return H_StoreIndirect;
      case OpClass::ReadField: return H_ReadField;
      case OpClass::WriteField: return H_WriteField;
      case OpClass::LoadDesc: return H_LoadDesc;
      case OpClass::Arith:
        switch (inst.op) {
          case Op::ADD: return H_Add;
          case Op::SUB: return H_Sub;
          case Op::MUL: return H_Mul;
          case Op::AND: return H_And;
          case Op::IOR: return H_Ior;
          case Op::XOR: return H_Xor;
          case Op::SHL: return H_Shl;
          case Op::SHR: return H_Shr;
          default: return H_ArithSlow; // DIV, MOD, NEG, NOT
        }
      case OpClass::Compare:
        switch (inst.op) {
          case Op::LT: return H_Lt;
          case Op::LE: return H_Le;
          case Op::EQ: return H_Eq;
          case Op::NE: return H_Ne;
          case Op::GE: return H_Ge;
          case Op::GT: return H_Gt;
          default: return H_ArithSlow; // unreachable
        }
      case OpClass::Jump:
        return H_JumpFused;
      case OpClass::JumpZero:
        return inst.operand > 0 ? H_JumpZeroFall : H_JumpZero;
      case OpClass::JumpNotZero:
        return inst.operand > 0 ? H_JumpNotZeroFall : H_JumpNotZero;
      case OpClass::ExtCall: return H_ExtCall;
      case OpClass::LocalCall: return H_LocalCall;
      case OpClass::DirectCall: return H_DirectCall;
      case OpClass::ShortDirectCall: return H_ShortDirectCall;
      case OpClass::FatCall: return H_FatCall;
      case OpClass::Illegal: return H_Illegal;
      default:
        panic("threaded: unhandled op class");
    }
}

/** Longest block: bounds both unrolled-loop blow-up (a fused jump can
 *  revisit the same code) and the prefix-accounting cost of a side
 *  exit. */
constexpr unsigned maxBlockInsts = 64;

/**
 * Decode a superblock starting at entry. Fetches are unaccounted
 * peeks: the execution charges chargeCodeBytes per run, which is
 * exactly what the eager loop's per-fetch readByte accounting sums to
 * (both only bump the code-byte counter). Returns null when even the
 * first instruction fails to decode — a single eager step then
 * reproduces the fault with the eager loop's exact partial-fetch
 * accounting.
 */
std::unique_ptr<Superblock>
buildBlock(Memory &mem, CodeByteAddr entry, const void *const *labels)
{
    auto block = std::make_unique<Superblock>();
    block->entry = entry;
    block->insts.reserve(maxBlockInsts + 1);

    std::array<std::uint32_t, 256> opCounts{};
    std::array<std::uint32_t, 7> lenCounts{};
    std::array<std::uint8_t, maxBlockInsts> hidx{};

    CodeByteAddr pc = entry;
    std::uint32_t bytes = 0;
    while (block->insts.size() < maxBlockInsts) {
        isa::Inst inst;
        try {
            inst = isa::decode([&mem, pc](unsigned i) {
                return mem.peekByte(pc + i);
            });
        } catch (...) {
            break; // undecodable tail: left for the eager loop
        }
        const unsigned h = handlerIndexFor(inst);
        hidx[block->insts.size()] = static_cast<std::uint8_t>(h);
        TInst t;
        t.handler = labels[h];
        t.start = pc;
        t.operand = inst.operand;
        t.operand2 = inst.operand2;
        t.op = static_cast<std::uint8_t>(inst.op);
        t.length = static_cast<std::uint8_t>(inst.length);
        bytes += inst.length;
        t.cumBytes = bytes;
        // Jump fusion: an unconditional jump's successor is its
        // target, so the builder keeps decoding there and the handler
        // is pure dispatch. Everything else falls through.
        t.next = h == H_JumpFused
                     ? pc + inst.operand
                     : pc + inst.length;
        block->insts.push_back(t);
        ++opCounts[t.op];
        if (inst.length < lenCounts.size())
            ++lenCounts[inst.length];
        if (isTerminalIdx(h))
            break;
        pc = t.next;
    }
    if (block->insts.empty())
        return nullptr;

    // Superinstruction fusion: a compare whose successor in this same
    // block is a forward conditional gets the fused handler. The
    // branch TInst stays in the array — the fused handler consumes
    // both slots, so the per-instruction prefix accounting of a side
    // exit (and the block deltas above) are unchanged.
    for (std::size_t i = 0; i + 1 < block->insts.size(); ++i) {
        const unsigned c = hidx[i];
        const unsigned br = hidx[i + 1];
        if (c >= H_Lt && c <= H_Gt &&
            (br == H_JumpZeroFall || br == H_JumpNotZeroFall)) {
            block->insts[i].handler =
                labels[H_LtJz + (c - H_Lt) +
                       (br == H_JumpNotZeroFall ? 6 : 0)];
            ++block->fusedPairs;
            ++i; // skip the branch: it belongs to the pair
            continue;
        }
        if ((c == H_LoadLocal || c == H_LoadImm) &&
            (br == H_LoadLocal || br == H_LoadImm)) {
            block->insts[i].handler =
                labels[c == H_LoadLocal
                           ? (br == H_LoadLocal ? H_LlLl : H_LlLi)
                           : (br == H_LoadLocal ? H_LiLl : H_LiLi)];
            ++block->fusedPairs;
            ++i; // skip the second load: it belongs to the pair
        }
    }

    block->n = static_cast<std::uint32_t>(block->insts.size());
    block->codeBytes = bytes;
    for (unsigned op = 0; op < opCounts.size(); ++op)
        if (opCounts[op] != 0)
            block->opDeltas.emplace_back(
                static_cast<std::uint8_t>(op), opCounts[op]);
    for (unsigned len = 0; len < lenCounts.size(); ++len)
        if (lenCounts[len] != 0)
            block->lenDeltas.emplace_back(
                static_cast<std::uint8_t>(len), lenCounts[len]);

    TInst sentinel;
    sentinel.handler = labels[H_BlockEnd];
    block->insts.push_back(sentinel);
    return block;
}

} // namespace

// ---------------------------------------------------------------------
// The threaded loop
// ---------------------------------------------------------------------

/** Begin a slow-path or terminal instruction: what stepCoreT does
 *  before execute(), plus the spill of the register-cached stack
 *  pointer. Fast paths skip this entirely — nothing they call reads
 *  instStart_/pcAbs_/sp_, traps only happen behind the guards, and
 *  the store-port traffic of three spills per instruction is the
 *  difference between matching and beating the burst loop. The
 *  members are re-established at every place control can leave the
 *  fast path: slow bodies and terminals run this macro, a taken side
 *  exit and the BlockEnd sentinel restore them by hand, and the
 *  catch block's accounting works from `ti` alone. (After a thrown
 *  storage panic the members can be stale — the machine is dead at
 *  that point and the simulated stats, which the catch charges
 *  exactly, are the only thing still observable.) */
#define FPC_T_PRE()                                                    \
    do {                                                               \
        instStart_ = ti->start;                                        \
        pcAbs_ = ti->next;                                             \
        sp_ = sp;                                                      \
        foldDirty();                                                   \
    } while (0)

/** End a straight-line instruction whose body may have diverged:
 *  anything a handler can do that would leave the block (a trap, a
 *  stop, a taken side exit) shows up as a stop or a PC off the
 *  decoded path; everything else is one indirect jump into the next
 *  handler. */
#define FPC_T_NEXT()                                                   \
    do {                                                               \
        if (stop_ != StopReason::Running || pcAbs_ != ti->next)        \
            [[unlikely]]                                               \
            goto early_exit;                                           \
        ++ti;                                                          \
        goto *const_cast<void *>(ti->handler);                         \
    } while (0)

/** End a fast path that provably could not diverge. The only ways a
 *  straight-line body leaves the decoded path are a trap (stack
 *  over/underflow, DIV/MOD faults) or a taken side-exit branch, so a
 *  fast path whose stack-bounds guard held — and whose body calls
 *  nothing that traps — needs no check at all: just the dispatch.
 *  (Thrown storage panics bypass this and land in the catch block
 *  with `ti` still on the faulting instruction.) */
#define FPC_T_NEXT_FAST()                                              \
    do {                                                               \
        ++ti;                                                          \
        goto *const_cast<void *>(ti->handler);                         \
    } while (0)

/** Binary ALU/compare body: execArith/execCompare's in-place fast
 *  path with the bank checks folded out; underflow delegates to the
 *  member for exact trap parity. The fast path cannot trap (the ops
 *  routed here are total), so it dispatches unchecked. */
#define FPC_T_BIN(RESULT_EXPR, FALLBACK)                               \
    do {                                                               \
        if (sp >= 2) [[likely]] {                                      \
            const unsigned bse = sp - 2;                               \
            const Word a = tslot(bse);                                 \
            const Word b = tslot(bse + 1);                             \
            tslotw(bse, (RESULT_EXPR));                                \
            sp = bse + 1;                                              \
            FPC_T_NEXT_FAST();                                         \
        }                                                              \
        FPC_T_PRE();                                                   \
        FALLBACK(static_cast<isa::Op>(ti->op));                        \
        sp = sp_;                                                      \
        treload();                                                     \
        FPC_T_NEXT();                                                  \
    } while (0)

/** Fused compare + forward-conditional body. The guard covers the
 *  whole pair (compare needs two slots; the branch pops the one the
 *  compare would push, so net sp >= 2 suffices) and the boolean never
 *  touches the stack. ti advances onto the branch TInst first so a
 *  taken side exit charges the exact two-instruction prefix; the
 *  untaken path's dispatch then steps over it. The fallback is the
 *  compare alone — underflow traps there, diverges, and the branch
 *  TInst never runs, exactly as in the eager loop. */
#define FPC_T_CMPBR(COND_EXPR, TAKEN_ON_TRUE)                          \
    do {                                                               \
        if (sp >= 2) [[likely]] {                                      \
            const unsigned bse = sp - 2;                               \
            const Word a = tslot(bse);                                 \
            const Word b = tslot(bse + 1);                             \
            sp = bse;                                                  \
            const bool cond = (COND_EXPR);                             \
            /* Eager pushes the boolean then pops it: the slot write   \
             * (value and dirty bit) is observable when the stack bank \
             * is renamed into a frame bank and later flushed, so the  \
             * fusion must keep it. */                                 \
            tslotw(bse, static_cast<Word>(cond ? 1 : 0));              \
            ++ti;                                                      \
            if (TAKEN_ON_TRUE ? cond : !cond) [[unlikely]] {           \
                sp_ = sp;                                              \
                instStart_ = ti->start;                                \
                pcAbs_ = ti->start + ti->operand;                      \
                goto early_exit; /* taken: known divergence */         \
            }                                                          \
            FPC_T_NEXT_FAST();                                         \
        }                                                              \
        FPC_T_PRE();                                                   \
        execCompare(static_cast<isa::Op>(ti->op));                     \
        sp = sp_;                                                      \
        treload();                                                     \
        FPC_T_NEXT();                                                  \
    } while (0)

template <bool Banked>
void
Machine::threadedLoopT(std::uint64_t &steps)
{
    // Label order must match HIdx exactly.
    const void *const labels[H_Count] = {
        &&h_noop,
        &&h_dup,
        &&h_drop,
        &&h_exch,
        &&h_out,
        &&h_lrc,
        &&h_ll,
        &&h_sl,
        &&h_lla,
        &&h_lg,
        &&h_sg,
        &&h_li,
        &&h_rd,
        &&h_wr,
        &&h_readf,
        &&h_writef,
        &&h_lpd,
        &&h_add,
        &&h_sub,
        &&h_mul,
        &&h_and,
        &&h_ior,
        &&h_xor,
        &&h_shl,
        &&h_shr,
        &&h_arith_slow,
        &&h_lt,
        &&h_le,
        &&h_eq,
        &&h_ne,
        &&h_ge,
        &&h_gt,
        &&h_jmp_fused,
        &&h_jz_fall,
        &&h_jnz_fall,
        &&h_lt_jz,
        &&h_le_jz,
        &&h_eq_jz,
        &&h_ne_jz,
        &&h_ge_jz,
        &&h_gt_jz,
        &&h_lt_jnz,
        &&h_le_jnz,
        &&h_eq_jnz,
        &&h_ne_jnz,
        &&h_ge_jnz,
        &&h_gt_jnz,
        &&h_ll_ll,
        &&h_ll_li,
        &&h_li_ll,
        &&h_li_li,
        &&h_halt,
        &&h_xf,
        &&h_ret,
        &&h_brk,
        &&h_yield,
        &&h_jz,
        &&h_jnz,
        &&h_efc,
        &&h_lfc,
        &&h_dfc,
        &&h_sdfc,
        &&h_fcall,
        &&h_illegal,
        &&h_block_end,
    };

    SuperblockCache &cache = *sblocks_;
    Accel *const acc = accel_.get();
    Cache *const dcache = cache_.get();
    const Tick decodeCyc = config_.latency.decodeCycles;
    const unsigned memCyc = config_.latency.memCycles;
    const unsigned regCyc = config_.latency.regCycles;
    const unsigned bankWords = banks_.bankWords();
    const Addr globalEnd = layout_.globalEnd;
    const std::uint64_t maxSteps = config_.maxSteps;
    // Boundary sampler, hoisted: the sampling-off cost is one
    // register compare per outer-loop iteration and per chain follow
    // — never per instruction.
    BoundarySampler *const bsmp = bsampler_;
    // Probe arming, hoisted the same way: the no-probe cost is one
    // register compare per outer-loop iteration. The armed set is
    // fixed while run() executes (setProbeSink is an outside-the-run
    // API), so hoisting is sound.
    const bool armedChk = probes_ != nullptr && !armed_.empty();
    (void)regCyc;
    (void)bankWords;

    // Deferred per-block accounting folds into the real counters on
    // every exit from this loop, normal or thrown, so deferral is
    // never observable from outside run().
    struct Flusher
    {
        Machine &m;
        ~Flusher()
        {
            m.sblocks_->flushDeferred(m.stats_, m.accel_->stats);
        }
    } flusher{*this};

    // Register-cached run-step counter: `steps` is a reference into
    // the caller's frame, which the compiler must assume any member
    // call could alias. No RAII mirror here — holding a reference to
    // the local would pin it to the stack and defeat the register
    // promotion this exists for; instead every path that leaves the
    // block world (block_done, the catch block, the eager tail, the
    // loop exit) writes it back explicitly.
    std::uint64_t st = steps;

    // Hoisted loop-invariant members and register-resident deltas.
    // The register budget is the constraint here: every local below
    // earns its keep on nearly every fast-path instruction, and the
    // colder counters (localMemAccesses, globalAccesses, the dcache
    // cycle charge) deliberately stay as direct member updates — a
    // larger delta set measured slower than this one because the
    // extra live locals spilled.
    //
    // The store and the eval-stack array never move or resize while
    // running, and stackCap_ is set once at reset. lf mirrors lf_ and
    // sbData/sbDirty mirror the stack bank's raw views; both only
    // move inside transfer code — every such call ends its block, and
    // both the block (re)entry and every slow-path tail reload them
    // (treload).
    //
    // dReads/dWrites count fast-path Data references; when no dcache
    // is configured each such reference also costs exactly memCyc
    // cycles, so the cycle charge is derived from the counts at spill
    // time instead of spending a third register (with a dcache the
    // charge is data-dependent and goes straight to stats_.cycles).
    // They flush at every slow-path entry (FPC_T_PRE, so member code
    // always sees exact absolute values), at block_done, and in the
    // catch block, so no path leaves run() with a pending delta. The
    // transfer walks' reference-delta probes are unaffected: the
    // pending deltas are constant across any member call, so snapshot
    // differences stay exact.
    Word *const memBase = mem_.raw();
    const std::size_t memSize = mem_.size();
    Word *const stackBase = stack_.data();
    const unsigned stackCap = stackCap_;
    Addr lf = 0;
    Word *sbData = nullptr;
    Word *lbData = nullptr;
    CountT dReads = 0;
    CountT dWrites = 0;
    CountT dLocalBank = 0;
    // Register accumulator for the stack bank's dirty bits: the
    // memory word is a loop-carried store-forward chain when every
    // push RMWs it, so fast paths OR into this register and the
    // spillStats choke points (slow entries, block_done, the catch)
    // fold it into the real mask before any member code can look.
    std::uint32_t sbAcc = 0;
    (void)stackBase;
    (void)sbData;
    (void)lbData;
    (void)sbAcc;
    (void)dLocalBank;
    // always_inline on every helper lambda is load-bearing: this
    // function is far past the inliner's size budget, so without the
    // attribute GCC outlines them into real calls — which also forces
    // sp and the delta counters out of registers at every call site.
    // The one piece of deferred state member code CAN observe: bank
    // flushes read dirty masks, so the register dirty bits fold in at
    // every slow-path entry. The storage/cycle counters below stay
    // pending across whole blocks instead — every mid-run reader is
    // either delta-based around member code (XferProbe, the heap and
    // link-cache trackers), where a constant pending delta cancels,
    // or absolute (spans, samplers, preemption), which forces eager.
    const auto foldDirty = [&]() __attribute__((always_inline)) {
        if constexpr (Banked) {
            *banks_.dirtyPtr(stackBank_) |= sbAcc;
            sbAcc = 0;
        }
    };
    const auto spillStats = [&]() __attribute__((always_inline)) {
        if constexpr (!Banked) {
            if (dcache == nullptr)
                stats_.cycles +=
                    static_cast<Tick>(memCyc) * (dReads + dWrites);
            mem_.chargeReads(AccessKind::Data, dReads);
            mem_.chargeWrites(AccessKind::Data, dWrites);
            dReads = 0;
            dWrites = 0;
        }
        if constexpr (Banked) {
            stats_.cycles += static_cast<Tick>(regCyc) * dLocalBank;
            stats_.localBankAccesses += dLocalBank;
            dLocalBank = 0;
        }
        foldDirty();
    };
    // Re-derive the block-cached mirrors from their members: run at
    // block (re)entry and after every slow-path body, the only places
    // transfer code (which moves them) can have run.
    const auto treload = [&]() __attribute__((always_inline)) {
        lf = lf_;
        if constexpr (Banked) {
            sbData = banks_.dataPtr(stackBank_);
            lbData = curLbank_ >= 0 ? banks_.dataPtr(curLbank_)
                                    : nullptr;
        }
    };

    // Inlined accessor bodies, identical to the members they mirror,
    // with the Banked checks resolved at compile time.
    const auto tpush = [&](Word value) __attribute__((always_inline)) {
        if (sp_ >= stackCap_) [[unlikely]] {
            trap(2, "evaluation stack overflow");
            return;
        }
        if constexpr (Banked)
            banks_.writeOwned(stackBank_, frame::varsOffset + sp_,
                              value);
        else
            stack_[sp_] = value;
        ++sp_;
    };
    const auto tpop = [&]() __attribute__((always_inline)) -> Word {
        if (sp_ == 0) [[unlikely]] {
            trap(3, "evaluation stack underflow");
            return 0;
        }
        --sp_;
        if constexpr (Banked)
            return banks_.readOwned(stackBank_,
                                    frame::varsOffset + sp_);
        return stack_[sp_];
    };
    const auto treadData = [&](Addr addr) __attribute__((always_inline)) -> Word {
        // Banked data accesses off the bank file are rare (globals,
        // indirects, bank-miss locals), so they take readData's exact
        // member path and keep four registers free for the bank fast
        // paths. The other engines hit this on every LL/SL and keep
        // the counts in registers instead.
        if constexpr (Banked) {
            if (dcache != nullptr)
                stats_.cycles += dcache->access(addr, false);
            else
                stats_.cycles += memCyc;
            return mem_.read(addr, AccessKind::Data);
        }
        // Eager read() order is charge, check, count: a storage panic
        // must leave the cycle charged and the reference uncounted.
        if (dcache != nullptr)
            stats_.cycles += dcache->access(addr, false);
        if (addr >= memSize) [[unlikely]] {
            if (dcache == nullptr)
                stats_.cycles += memCyc;
            return mem_.readUncounted(addr); // the accounted panic
        }
        const Word v = memBase[addr];
        ++dReads; // the memCyc charge is derived from the count
        return v;
    };
    const auto twriteData = [&](Addr addr, Word value) __attribute__((always_inline)) {
        if (addr < globalEnd && acc->linkSensitive(addr))
            acc->flushLinks();
        if constexpr (Banked) {
            if (dcache != nullptr)
                stats_.cycles += dcache->access(addr, true);
            else
                stats_.cycles += memCyc;
            mem_.write(addr, value, AccessKind::Data);
            return;
        }
        if (dcache != nullptr)
            stats_.cycles += dcache->access(addr, true);
        if (addr >= memSize) [[unlikely]] {
            if (dcache == nullptr)
                stats_.cycles += memCyc;
            mem_.writeUncounted(addr, value); // the accounted panic
            return;
        }
        memBase[addr] = value;
        ++dWrites;
    };
    const auto treadVar = [&](unsigned index) __attribute__((always_inline)) -> Word {
        const unsigned offset = frame::varsOffset + index;
        if constexpr (Banked) {
            if (lbData != nullptr && offset < bankWords) {
                ++dLocalBank; // regCyc charge derived at spill
                return lbData[offset];
            }
        }
        ++stats_.localMemAccesses;
        return treadData(lf + offset);
    };
    const auto twriteVar = [&](unsigned index, Word value) __attribute__((always_inline)) {
        const unsigned offset = frame::varsOffset + index;
        if constexpr (Banked) {
            if (lbData != nullptr && offset < bankWords) {
                ++dLocalBank; // regCyc charge derived at spill
                banks_.writeOwned(curLbank_, offset, value);
                return;
            }
        }
        ++stats_.localMemAccesses;
        twriteData(lf + offset, value);
    };
    // Raw evaluation-stack slot access for fast paths whose bounds
    // guard already held — the unchecked core of push/pop.
    const auto tslot = [&](unsigned index) __attribute__((always_inline)) -> Word {
        if constexpr (Banked)
            return sbData[frame::varsOffset + index];
        else
            return stackBase[index];
    };
    const auto tslotw = [&](unsigned index, Word value) __attribute__((always_inline)) {
        if constexpr (Banked) {
            sbData[frame::varsOffset + index] = value;
            sbAcc |= 1u << (frame::varsOffset + index);
        } else {
            stackBase[index] = value;
        }
    };

    Superblock *prev = nullptr;
    Superblock *cur = nullptr;
    const TInst *base = nullptr;
    const TInst *ti = nullptr;
    // Register-cached stack pointer. Fast paths read and write only
    // this; FPC_T_PRE spills it to sp_ at every instruction start,
    // and it reloads from sp_ after anything that runs member code
    // (fallbacks, terminals via the block-entry reload).
    unsigned sp = 0;

    while (stop_ == StopReason::Running) {
        if (st >= maxSteps) {
            stopWith(StopReason::StepLimit, "step budget exhausted");
            break;
        }
        // Boundary sampling: every path into this loop head has
        // spilled the register-held deltas (block_done, the eager
        // tail, the chain break below), so the sample point is exact
        // up to the deferred histograms fireBoundarySample folds.
        // Slop is bounded by one superblock: an expired budget breaks
        // the chain-follow fast path at the block exit.
        // Superblocks end at XFERs, so at this boundary pcAbs_ points
        // at the *destination* of the block's terminal transfer;
        // anchor the sample to the entry of the block that actually
        // spent the budget (prev, when it reached its full exit) so
        // attribution does not systematically shift one call deep.
        if (bsmp != nullptr && stats_.cycles >= bsampleNextAt_)
            [[unlikely]] {
            // The eager-tail and early-exit paths clear prev; there
            // instStart_ (the last executed instruction) is exact.
            bsampleAnchorPc_ =
                prev != nullptr ? prev->entry : instStart_;
            fireBoundarySample();
        }
        // Per-iteration epoch poll, as the burst loop does: the
        // machine never pokes code while running, so the epoch cannot
        // move inside a block.
        acc->sync(mem_.codeEpoch());
        if (cache.sync(mem_.codeEpoch(), stats_, acc->stats))
            prev = nullptr;

        // Selective deopt: an armed PC takes one exact eager step
        // instead of entering the block world, so probe events inside
        // armed ranges read exact absolute stamps. Because this check
        // guards every find/build below, no superblock is ever built
        // (or chained to) with its entry inside an armed range —
        // setProbeSink invalidated any pre-existing ones — which is
        // what keeps the chain-follow fast re-entry at full_exit
        // sound without its own armed check.
        if (armedChk && pcArmed(pcAbs_)) [[unlikely]] {
            prev = nullptr;
            ++acc->stats.probeEagerSteps;
            stepCoreT<true>();
            ++st;
            steps = st;
            continue;
        }

        Superblock *sb;
        if (prev != nullptr && prev->chainPc == pcAbs_) {
            // The IFU-follows-DIRECTCALL idiom at block granularity:
            // the previous block's exit remembers where it went.
            sb = prev->chain;
            ++acc->stats.sblockChainHits;
        } else {
            sb = cache.find(pcAbs_);
            if (sb == nullptr) {
                if (cache.overLimit()) {
                    cache.flushAll(stats_, acc->stats);
                    prev = nullptr;
                }
                std::unique_ptr<Superblock> built =
                    buildBlock(mem_, pcAbs_, labels);
                if (built != nullptr) {
                    sb = cache.insert(std::move(built));
                    ++acc->stats.sblockBuilds;
                    acc->stats.icacheMisses += sb->n;
                }
            }
            if (prev != nullptr && sb != nullptr) {
                prev->chain = sb;
                prev->chainPc = pcAbs_;
            }
        }

        if (sb == nullptr || sb->n > maxSteps - st) {
            // Undecodable PC or a step-budget tail shorter than the
            // block: take one exact eager step instead.
            prev = nullptr;
            stepCoreT<true>();
            ++st;
            steps = st; // the next iteration's member calls can throw
            continue;
        }

        cur = sb;
        base = cur->insts.data();
        ti = base;
        sp = sp_;
            treload();
        try {
            goto *const_cast<void *>(ti->handler);

            // -- straight-line handlers --------------------------------
          h_noop:
            // Cannot trap, stop, or move the PC: unchecked dispatch.
            FPC_T_NEXT_FAST();

          h_dup:
            if (sp >= 1 && sp < stackCap) [[likely]] {
                // pop v; push v; push v == copy the top slot up.
                tslotw(sp, tslot(sp - 1));
                ++sp;
                FPC_T_NEXT_FAST();
            }
            FPC_T_PRE();
            {
                const Word v = tpop();
                tpush(v);
                tpush(v);
            }
            sp = sp_;
            treload();
            FPC_T_NEXT();

          h_drop:
            if (sp >= 1) [[likely]] {
                --sp;
                FPC_T_NEXT_FAST();
            }
            FPC_T_PRE();
            tpop();
            sp = sp_;
            treload();
            FPC_T_NEXT();

          h_exch:
            if (sp >= 2) [[likely]] {
                const Word a = tslot(sp - 1);
                tslotw(sp - 1, tslot(sp - 2));
                tslotw(sp - 2, a);
                FPC_T_NEXT_FAST();
            }
            FPC_T_PRE();
            {
                const Word a = tpop();
                const Word b = tpop();
                tpush(a);
                tpush(b);
            }
            sp = sp_;
            treload();
            FPC_T_NEXT();

          h_out:
            if (sp >= 1) [[likely]] {
                --sp;
                output_.push_back(tslot(sp));
                FPC_T_NEXT_FAST();
            }
            FPC_T_PRE();
            output_.push_back(tpop());
            sp = sp_;
            treload();
            FPC_T_NEXT();

          h_lrc:
            if (sp < stackCap) [[likely]] {
                tslotw(sp, returnCtx_);
                ++sp;
                FPC_T_NEXT_FAST();
            }
            FPC_T_PRE();
            tpush(returnCtx_);
            sp = sp_;
            treload();
            FPC_T_NEXT();

          h_ll:
            if (sp < stackCap) [[likely]] {
                tslotw(sp,
                       treadVar(static_cast<unsigned>(ti->operand)));
                ++sp;
                FPC_T_NEXT_FAST();
            }
            FPC_T_PRE();
            tpush(treadVar(static_cast<unsigned>(ti->operand)));
            sp = sp_;
            treload();
            FPC_T_NEXT();

          h_sl:
            if (sp >= 1) [[likely]] {
                --sp;
                twriteVar(static_cast<unsigned>(ti->operand),
                          tslot(sp));
                FPC_T_NEXT_FAST();
            }
            FPC_T_PRE();
            {
                const Word v = tpop();
                twriteVar(static_cast<unsigned>(ti->operand), v);
            }
            sp = sp_;
            treload();
            FPC_T_NEXT();

          h_lla:
            FPC_T_PRE();
            {
                if constexpr (Banked) {
                    if (curLbank_ >= 0)
                        dropCurrentBank();
                }
                const Addr addr = lf_ + frame::varsOffset +
                                  static_cast<unsigned>(ti->operand);
                tpush(static_cast<Word>(addr));
            }
            sp = sp_;
            treload();
            FPC_T_NEXT();

          h_lg:
            ++stats_.globalAccesses;
            if (sp < stackCap) [[likely]] {
                tslotw(sp,
                       treadData(gf_ + 1 +
                                 static_cast<unsigned>(ti->operand)));
                ++sp;
                FPC_T_NEXT_FAST();
            }
            FPC_T_PRE();
            tpush(
                treadData(gf_ + 1 + static_cast<unsigned>(ti->operand)));
            sp = sp_;
            treload();
            FPC_T_NEXT();

          h_sg:
            if (sp >= 1) [[likely]] {
                --sp;
                const Word v = tslot(sp);
                ++stats_.globalAccesses;
                twriteData(gf_ + 1 + static_cast<unsigned>(ti->operand),
                           v);
                FPC_T_NEXT_FAST();
            }
            FPC_T_PRE();
            {
                const Word v = tpop();
                ++stats_.globalAccesses;
                twriteData(gf_ + 1 + static_cast<unsigned>(ti->operand),
                           v);
            }
            sp = sp_;
            treload();
            FPC_T_NEXT();

          h_li:
            if (sp < stackCap) [[likely]] {
                tslotw(sp, static_cast<Word>(ti->operand));
                ++sp;
                FPC_T_NEXT_FAST();
            }
            FPC_T_PRE();
            tpush(static_cast<Word>(ti->operand));
            sp = sp_;
            treload();
            FPC_T_NEXT();

          h_rd:
            if constexpr (!Banked) {
                // No bank divert to consider: pop addr, push value in
                // place; treadData never traps (panics throw).
                if (sp >= 1) [[likely]] {
                    tslotw(sp - 1, treadData(tslot(sp - 1)));
                    FPC_T_NEXT_FAST();
                }
            }
            FPC_T_PRE();
            {
                const Addr addr = tpop();
                Word value = 0;
                bool diverted = false;
                if constexpr (Banked)
                    diverted = divertToBank(addr, false, value);
                if (diverted)
                    tpush(value);
                else
                    tpush(treadData(addr));
            }
            sp = sp_;
            treload();
            FPC_T_NEXT();

          h_wr:
            if constexpr (!Banked) {
                if (sp >= 2) [[likely]] {
                    const Addr addr = tslot(sp - 1);
                    const Word value = tslot(sp - 2);
                    sp -= 2;
                    twriteData(addr, value);
                    FPC_T_NEXT_FAST();
                }
            }
            FPC_T_PRE();
            {
                const Addr addr = tpop();
                Word value = tpop();
                bool diverted = false;
                if constexpr (Banked)
                    diverted = divertToBank(addr, true, value);
                if (!diverted)
                    twriteData(addr, value);
            }
            sp = sp_;
            treload();
            FPC_T_NEXT();

          h_readf:
            if (sp >= 1) [[likely]] {
                tslotw(sp - 1,
                       treadData(tslot(sp - 1) +
                                 static_cast<unsigned>(ti->operand)));
                FPC_T_NEXT_FAST();
            }
            FPC_T_PRE();
            {
                const Addr addr = tpop();
                tpush(treadData(addr +
                                static_cast<unsigned>(ti->operand)));
            }
            sp = sp_;
            treload();
            FPC_T_NEXT();

          h_writef:
            if (sp >= 2) [[likely]] {
                const Addr addr = tslot(sp - 1);
                const Word value = tslot(sp - 2);
                sp -= 2;
                twriteData(addr + static_cast<unsigned>(ti->operand),
                           value);
                FPC_T_NEXT_FAST();
            }
            FPC_T_PRE();
            {
                const Addr addr = tpop();
                const Word value = tpop();
                twriteData(addr + static_cast<unsigned>(ti->operand),
                           value);
            }
            sp = sp_;
            treload();
            FPC_T_NEXT();

          h_lpd:
            FPC_T_PRE();
            {
                stats_.cycles += memCyc;
                tpush(mem_.read(
                    gf_ - 1 - static_cast<unsigned>(ti->operand),
                    AccessKind::Table));
            }
            sp = sp_;
            treload();
            FPC_T_NEXT();

            // -- ALU / compare (execArith/execCompare fast paths) ------
          h_add:
            FPC_T_BIN(static_cast<Word>(a + b), execArith);
          h_sub:
            FPC_T_BIN(static_cast<Word>(a - b), execArith);
          h_mul:
            FPC_T_BIN(static_cast<Word>(
                          static_cast<SDWord>(static_cast<SWord>(a)) *
                          static_cast<SWord>(b)),
                      execArith);
          h_and:
            FPC_T_BIN(static_cast<Word>(a & b), execArith);
          h_ior:
            FPC_T_BIN(static_cast<Word>(a | b), execArith);
          h_xor:
            FPC_T_BIN(static_cast<Word>(a ^ b), execArith);
          h_shl:
            FPC_T_BIN(static_cast<Word>(b >= 16 ? 0 : a << b),
                      execArith);
          h_shr:
            FPC_T_BIN(static_cast<Word>(b >= 16 ? 0 : a >> b),
                      execArith);

          h_arith_slow:
            // DIV/MOD (trap-prone) and the unaries: the member does
            // the exact eager sequence.
            FPC_T_PRE();
            execArith(static_cast<isa::Op>(ti->op));
            sp = sp_;
            treload();
            FPC_T_NEXT();

          h_lt:
            FPC_T_BIN(static_cast<Word>(static_cast<SWord>(a) <
                                                static_cast<SWord>(b)
                                            ? 1
                                            : 0),
                      execCompare);
          h_le:
            FPC_T_BIN(static_cast<Word>(static_cast<SWord>(a) <=
                                                static_cast<SWord>(b)
                                            ? 1
                                            : 0),
                      execCompare);
          h_eq:
            FPC_T_BIN(static_cast<Word>(static_cast<SWord>(a) ==
                                                static_cast<SWord>(b)
                                            ? 1
                                            : 0),
                      execCompare);
          h_ne:
            FPC_T_BIN(static_cast<Word>(static_cast<SWord>(a) !=
                                                static_cast<SWord>(b)
                                            ? 1
                                            : 0),
                      execCompare);
          h_ge:
            FPC_T_BIN(static_cast<Word>(static_cast<SWord>(a) >=
                                                static_cast<SWord>(b)
                                            ? 1
                                            : 0),
                      execCompare);
          h_gt:
            FPC_T_BIN(static_cast<Word>(static_cast<SWord>(a) >
                                                static_cast<SWord>(b)
                                            ? 1
                                            : 0),
                      execCompare);

            // -- fused / predicted-not-taken branches ------------------
          h_jmp_fused:
            // The builder followed the target, so the next TInst IS
            // the jump target: pure dispatch.
            FPC_T_NEXT_FAST();

          h_jz_fall:
            if (sp >= 1) [[likely]] {
                --sp;
                if (tslot(sp) != 0) [[likely]]
                    FPC_T_NEXT_FAST();
                sp_ = sp;
                instStart_ = ti->start;
                pcAbs_ = ti->start + ti->operand;
                goto early_exit; // taken: known divergence
            }
            FPC_T_PRE();
            if (tpop() == 0)
                pcAbs_ = instStart_ + ti->operand;
            sp = sp_;
            treload();
            FPC_T_NEXT();

          h_jnz_fall:
            if (sp >= 1) [[likely]] {
                --sp;
                if (tslot(sp) == 0) [[likely]]
                    FPC_T_NEXT_FAST();
                sp_ = sp;
                instStart_ = ti->start;
                pcAbs_ = ti->start + ti->operand;
                goto early_exit; // taken: known divergence
            }
            FPC_T_PRE();
            if (tpop() != 0)
                pcAbs_ = instStart_ + ti->operand;
            sp = sp_;
            treload();
            FPC_T_NEXT();

            // -- fused compare+branch superinstructions ----------------
            // JumpZeroFall takes when the pushed boolean would be 0,
            // i.e. when the comparison is false.
          h_lt_jz:
            FPC_T_CMPBR(static_cast<SWord>(a) < static_cast<SWord>(b),
                        false);
          h_le_jz:
            FPC_T_CMPBR(static_cast<SWord>(a) <= static_cast<SWord>(b),
                        false);
          h_eq_jz:
            FPC_T_CMPBR(static_cast<SWord>(a) == static_cast<SWord>(b),
                        false);
          h_ne_jz:
            FPC_T_CMPBR(static_cast<SWord>(a) != static_cast<SWord>(b),
                        false);
          h_ge_jz:
            FPC_T_CMPBR(static_cast<SWord>(a) >= static_cast<SWord>(b),
                        false);
          h_gt_jz:
            FPC_T_CMPBR(static_cast<SWord>(a) > static_cast<SWord>(b),
                        false);
          h_lt_jnz:
            FPC_T_CMPBR(static_cast<SWord>(a) < static_cast<SWord>(b),
                        true);
          h_le_jnz:
            FPC_T_CMPBR(static_cast<SWord>(a) <= static_cast<SWord>(b),
                        true);
          h_eq_jnz:
            FPC_T_CMPBR(static_cast<SWord>(a) == static_cast<SWord>(b),
                        true);
          h_ne_jnz:
            FPC_T_CMPBR(static_cast<SWord>(a) != static_cast<SWord>(b),
                        true);
          h_ge_jnz:
            FPC_T_CMPBR(static_cast<SWord>(a) >= static_cast<SWord>(b),
                        true);
          h_gt_jnz:
            FPC_T_CMPBR(static_cast<SWord>(a) > static_cast<SWord>(b),
                        true);

            // -- fused load pairs --------------------------------------
            // One guard covers both pushes; ti steps onto the second
            // load before its read so a thrown storage panic (and any
            // side-exit prefix) charges the exact instruction. The
            // fallback runs the FIRST load alone — the second TInst
            // kept its own handler and dispatches normally after it.
          h_ll_ll:
            if (sp + 2 <= stackCap) [[likely]] {
                const Word v1 =
                    treadVar(static_cast<unsigned>(ti->operand));
                tslotw(sp, v1);
                ++ti;
                const Word v2 =
                    treadVar(static_cast<unsigned>(ti->operand));
                tslotw(sp + 1, v2);
                sp += 2;
                FPC_T_NEXT_FAST();
            }
            FPC_T_PRE();
            tpush(treadVar(static_cast<unsigned>(ti->operand)));
            sp = sp_;
            treload();
            FPC_T_NEXT();

          h_ll_li:
            if (sp + 2 <= stackCap) [[likely]] {
                const Word v1 =
                    treadVar(static_cast<unsigned>(ti->operand));
                tslotw(sp, v1);
                ++ti;
                tslotw(sp + 1, static_cast<Word>(ti->operand));
                sp += 2;
                FPC_T_NEXT_FAST();
            }
            FPC_T_PRE();
            tpush(treadVar(static_cast<unsigned>(ti->operand)));
            sp = sp_;
            treload();
            FPC_T_NEXT();

          h_li_ll:
            if (sp + 2 <= stackCap) [[likely]] {
                tslotw(sp, static_cast<Word>(ti->operand));
                ++ti;
                const Word v2 =
                    treadVar(static_cast<unsigned>(ti->operand));
                tslotw(sp + 1, v2);
                sp += 2;
                FPC_T_NEXT_FAST();
            }
            FPC_T_PRE();
            tpush(static_cast<Word>(ti->operand));
            sp = sp_;
            treload();
            FPC_T_NEXT();

          h_li_li:
            if (sp + 2 <= stackCap) [[likely]] {
                tslotw(sp, static_cast<Word>(ti->operand));
                ++ti;
                tslotw(sp + 1, static_cast<Word>(ti->operand));
                sp += 2;
                FPC_T_NEXT_FAST();
            }
            FPC_T_PRE();
            tpush(static_cast<Word>(ti->operand));
            sp = sp_;
            treload();
            FPC_T_NEXT();

            // -- terminals ---------------------------------------------
          h_halt:
            FPC_T_PRE();
            stopWith(StopReason::Halted, "HALT");
            goto full_exit;

          h_xf:
            FPC_T_PRE();
            xferTo(tpop());
            goto full_exit;

          h_ret:
            FPC_T_PRE();
            doReturn();
            goto full_exit;

          h_brk:
            FPC_T_PRE();
            trap(1, "BRK trap");
            goto full_exit;

          h_yield:
            FPC_T_PRE();
            processSwitch();
            goto full_exit;

          h_jz:
            FPC_T_PRE();
            if (tpop() == 0)
                pcAbs_ = instStart_ + ti->operand;
            goto full_exit;

          h_jnz:
            FPC_T_PRE();
            if (tpop() != 0)
                pcAbs_ = instStart_ + ti->operand;
            goto full_exit;

          h_efc:
            FPC_T_PRE();
            callExternal(static_cast<unsigned>(ti->operand));
            goto full_exit;

          h_lfc:
            FPC_T_PRE();
            callLocal(static_cast<unsigned>(ti->operand));
            goto full_exit;

          h_dfc:
            FPC_T_PRE();
            callDirect(static_cast<CodeByteAddr>(ti->operand));
            goto full_exit;

          h_sdfc:
            FPC_T_PRE();
            callDirect(instStart_ + ti->operand);
            goto full_exit;

          h_fcall:
            FPC_T_PRE();
            callFat(static_cast<CodeByteAddr>(ti->operand),
                    static_cast<Addr>(ti->operand2));
            goto full_exit;

          h_illegal:
            FPC_T_PRE();
            trap(4, strfmt("illegal opcode {} at {}",
                           static_cast<int>(ti->op), instStart_));
            goto full_exit;

          h_block_end:
            // Length-cap sentinel: re-establish the members the fast
            // paths skipped — the last real instruction is ti[-1] and
            // execution resumes at its fall-through.
            sp_ = sp;
            instStart_ = ti[-1].start;
            pcAbs_ = ti[-1].next;
            goto full_exit;

          full_exit:
            // Whole block ran: one fused charge, deferring only the
            // histogram updates (nothing reads those mid-run).
            stats_.steps += cur->n;
            stats_.cycles += static_cast<Tick>(cur->n) * decodeCyc;
            mem_.chargeCodeBytes(cur->codeBytes);
            ++cur->execPending;
            st += cur->n;
            prev = cur;
            // Chain-follow fast re-entry: the code epoch only moves on
            // external pokes (loader, relocator, test patching), never
            // while run() executes, so a chain hit can skip the outer
            // loop's epoch polls and cache probe entirely.
            // An expired sampling budget breaks the chain so the
            // outer loop can fire the sample at this block boundary.
            if (stop_ == StopReason::Running &&
                cur->chainPc == pcAbs_ &&
                (bsmp == nullptr || stats_.cycles < bsampleNextAt_))
                [[likely]] {
                Superblock *nb = cur->chain;
                if (nb->n <= maxSteps - st) [[likely]] {
                    ++acc->stats.sblockChainHits;
                    cur = nb;
                    base = cur->insts.data();
                    ti = base;
                    sp = sp_;
            treload();
                    prev = cur;
                    goto *const_cast<void *>(ti->handler);
                }
            }
            goto block_done;

          early_exit : {
            // Divergence (trap transfer, stop, or taken side exit)
            // after instruction k-1 of the block: charge exactly the
            // k-instruction prefix the eager loop would have charged.
            const std::uint64_t k =
                static_cast<std::uint64_t>(ti - base) + 1;
            stats_.steps += k;
            stats_.cycles += k * decodeCyc;
            mem_.chargeCodeBytes(base[k - 1].cumBytes);
            for (std::uint64_t i = 0; i < k; ++i) {
                ++stats_.opCount[base[i].op];
                if (base[i].length < stats_.instLenCount.size())
                    ++stats_.instLenCount[base[i].length];
            }
            acc->stats.icacheHits += k;
            st += k;
            prev = nullptr;
            goto block_done;
          }

          block_done:
            spillStats();
            steps = st;
        } catch (...) {
            // A handler threw (storage panic): the prefix through the
            // throwing instruction is charged exactly like the eager
            // loop, whose counters include the instruction that threw;
            // the run-steps total, like the burst loop's, counts only
            // completed instructions.
            const std::uint64_t k =
                static_cast<std::uint64_t>(ti - base) + 1;
            stats_.steps += k;
            stats_.cycles += k * decodeCyc;
            mem_.chargeCodeBytes(base[k - 1].cumBytes);
            for (std::uint64_t i = 0; i < k; ++i) {
                ++stats_.opCount[base[i].op];
                if (base[i].length < stats_.instLenCount.size())
                    ++stats_.instLenCount[base[i].length];
            }
            acc->stats.icacheHits += k;
            st += k - 1;
            spillStats();
            steps = st;
            throw;
        }
    }
    steps = st;
}

#undef FPC_T_CMPBR
#undef FPC_T_BIN
#undef FPC_T_NEXT_FAST
#undef FPC_T_NEXT
#undef FPC_T_PRE

#else // !FPC_THREADED_DISPATCH

template <bool Banked>
void
Machine::threadedLoopT(std::uint64_t &steps)
{
    // No label-address extension on this toolchain:
    // threadedSupported() is false and the constructor refuses the
    // configuration, so this body is unreachable; keep an exact eager
    // loop as belt and braces.
    while (stop_ == StopReason::Running) {
        if (steps >= config_.maxSteps) {
            stopWith(StopReason::StepLimit, "step budget exhausted");
            break;
        }
        accel_->sync(mem_.codeEpoch());
        stepCoreT<true>();
        ++steps;
        if (bsampler_ != nullptr && stats_.cycles >= bsampleNextAt_) {
            bsampleAnchorPc_ = instStart_;
            fireBoundarySample();
        }
    }
}

#endif // FPC_THREADED_DISPATCH

template void Machine::threadedLoopT<false>(std::uint64_t &);
template void Machine::threadedLoopT<true>(std::uint64_t &);

} // namespace fpc
