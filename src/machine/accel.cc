#include "machine/accel.hh"

#include <algorithm>
#include <bit>

#include "common/logging.hh"
#include "program/loader.hh"

namespace fpc
{

double
AccelStats::icacheHitRate() const
{
    const CountT total = icacheHits + icacheMisses;
    if (total == 0)
        return 0.0;
    return static_cast<double>(icacheHits) / total;
}

double
AccelStats::linkHitRate() const
{
    const CountT total = linkHits() + linkMisses();
    if (total == 0)
        return 0.0;
    return static_cast<double>(linkHits()) / total;
}

double
AccelStats::chainRate() const
{
    if (sblockExecs == 0)
        return 0.0;
    return static_cast<double>(sblockChainHits) / sblockExecs;
}

void
AccelStats::merge(const AccelStats &other)
{
    icacheHits += other.icacheHits;
    icacheMisses += other.icacheMisses;
    extHits += other.extHits;
    extMisses += other.extMisses;
    localHits += other.localHits;
    localMisses += other.localMisses;
    directHits += other.directHits;
    directMisses += other.directMisses;
    fatHits += other.fatHits;
    fatMisses += other.fatMisses;
    codeFlushes += other.codeFlushes;
    tableFlushes += other.tableFlushes;
    sblockBuilds += other.sblockBuilds;
    sblockExecs += other.sblockExecs;
    sblockChainHits += other.sblockChainHits;
    sblockFusionHits += other.sblockFusionHits;
    deferredFlushes += other.deferredFlushes;
    probeSites += other.probeSites;
    probeDeoptBlocks += other.probeDeoptBlocks;
    probeEagerSteps += other.probeEagerSteps;
}

Accel::Accel(const AccelConfig &config, const LoadedImage &image,
             std::uint64_t code_epoch)
    : seenEpoch_(code_epoch)
{
    const std::size_t isize =
        std::bit_ceil(std::max(1u, config.icacheEntries));
    const std::size_t lsize =
        std::bit_ceil(std::max(1u, config.linkEntries));
    icacheMask_ = isize - 1;
    linkMask_ = lsize - 1;
    icache_.resize(isize);
    ext_.resize(lsize);
    local_.resize(lsize);
    direct_.resize(lsize);
    fat_.resize(lsize);

    // A data write to one of these words can silently change what a
    // memoized link resolution would produce: any GFT entry (the
    // descriptor -> global-frame step of Figure 1) and each instance's
    // gf[0] code-base word (the global-frame -> code-base step). Link
    // vectors are deliberately absent: the LV read stays a real read
    // on every external call, and its value is the cache key.
    const SystemLayout &layout = image.layout();
    sensitive_.assign(layout.globalEnd, 0);
    for (unsigned i = 0; i < layout.gftEntries; ++i)
        sensitive_[layout.gftAddr + i] = 1;
    for (const PlacedInstance &inst : image.instances())
        sensitive_[inst.gfAddr] = 1;
}

bool
Accel::findLink(std::vector<LinkEntry> &cache, std::uint64_t key,
                ProcTarget &out)
{
    const LinkEntry &e = cache[slot(key, linkMask_)];
    if (e.key != key)
        return false;
    out = e.target;
    return true;
}

void
Accel::putLink(std::vector<LinkEntry> &cache, std::uint64_t key,
               const ProcTarget &target)
{
    LinkEntry &e = cache[slot(key, linkMask_)];
    e.key = key;
    e.target = target;
}

bool
Accel::findExt(Word descriptor, ProcTarget &out)
{
    if (findLink(ext_, descriptor, out)) {
        ++stats.extHits;
        return true;
    }
    ++stats.extMisses;
    return false;
}

void
Accel::putExt(Word descriptor, const ProcTarget &target)
{
    putLink(ext_, descriptor, target);
}

bool
Accel::findLocal(CodeByteAddr code_base, unsigned ev_index,
                 unsigned &fsi, CodeByteAddr &entry_pc)
{
    // Caches only (fsi, entryPc): multiple instances of a module share
    // one code segment but have distinct global frames, so gf must
    // come from the live machine state, never from the cache.
    const std::uint64_t key =
        (static_cast<std::uint64_t>(code_base) << 16) | ev_index;
    ProcTarget t;
    if (findLink(local_, key, t)) {
        fsi = t.fsi;
        entry_pc = t.entryPc;
        ++stats.localHits;
        return true;
    }
    ++stats.localMisses;
    return false;
}

void
Accel::putLocal(CodeByteAddr code_base, unsigned ev_index,
                const ProcTarget &target)
{
    const std::uint64_t key =
        (static_cast<std::uint64_t>(code_base) << 16) | ev_index;
    putLink(local_, key, target);
}

bool
Accel::findDirect(CodeByteAddr target_addr, ProcTarget &out)
{
    if (findLink(direct_, target_addr, out)) {
        ++stats.directHits;
        return true;
    }
    ++stats.directMisses;
    return false;
}

void
Accel::putDirect(CodeByteAddr target_addr, const ProcTarget &target)
{
    putLink(direct_, target_addr, target);
}

bool
Accel::findFat(CodeByteAddr target_addr, unsigned &fsi)
{
    ProcTarget t;
    if (findLink(fat_, target_addr, t)) {
        fsi = t.fsi;
        ++stats.fatHits;
        return true;
    }
    ++stats.fatMisses;
    return false;
}

void
Accel::putFat(CodeByteAddr target_addr, unsigned fsi)
{
    ProcTarget t;
    t.fsi = fsi;
    putLink(fat_, target_addr, t);
}

void
Accel::flushLinks()
{
    for (auto *cache : {&ext_, &local_, &direct_, &fat_})
        for (LinkEntry &e : *cache)
            e.key = invalidKey;
    ++stats.tableFlushes;
}

void
Accel::flushAll()
{
    for (IEntry &e : icache_)
        e.tag = invalidTag;
    for (auto *cache : {&ext_, &local_, &direct_, &fat_})
        for (LinkEntry &e : *cache)
            e.key = invalidKey;
}

} // namespace fpc
