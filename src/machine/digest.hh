/**
 * @file
 * State digests: one 64-bit FNV-1a hash summarizing the simulated
 * processor's state, the primitive the record/replay layer
 * (src/replay/) builds on.
 *
 * Two scopes:
 *
 *  - DigestScope::Full covers everything the engine owns — the
 *    architectural registers and evaluation stack, the program
 *    output, the frame-heap AV/live census, the IFU return stack and
 *    the resident register banks. Two runs of the same program on the
 *    same configuration produce identical Full digests at identical
 *    step boundaries, with host acceleration on or off (every input
 *    is simulated state, and the determinism contract of
 *    docs/PERFORMANCE.md covers all of it).
 *
 *  - DigestScope::Arch covers only the state every engine represents
 *    identically — PC, evaluation-stack values, current global frame,
 *    program output. Frame addresses are excluded (I4's fast-frame
 *    stack allocates them in a different order), as is every
 *    microarchitectural structure, so Arch digests are comparable
 *    *across engines* at XFER granularity: the same image run on I1
 *    and I4 yields the same Arch digest stream for programs that do
 *    not take addresses of locals.
 *
 * Every read is unaccounted (public accessors, Memory::peek under the
 * hood), so taking a digest charges zero simulated cycles.
 */

#ifndef FPC_MACHINE_DIGEST_HH
#define FPC_MACHINE_DIGEST_HH

#include <cstdint>
#include <limits>
#include <vector>

#include "machine/machine.hh"

namespace fpc
{

/** FNV-1a, 64-bit: the offset basis. */
constexpr std::uint64_t fnvOffsetBasis = 0xcbf29ce484222325ull;

/** Fold one byte into an FNV-1a hash. */
constexpr std::uint64_t
fnv1aByte(std::uint64_t h, std::uint8_t byte)
{
    return (h ^ byte) * 0x00000100000001b3ull;
}

/** Fold a 64-bit value in, little-endian byte order. */
constexpr std::uint64_t
fnv1aWord(std::uint64_t h, std::uint64_t value)
{
    for (unsigned i = 0; i < 8; ++i)
        h = fnv1aByte(h, static_cast<std::uint8_t>(value >> (8 * i)));
    return h;
}

/** What a state digest covers. */
enum class DigestScope
{
    Arch, ///< engine-independent state only (cross-engine comparison)
    Full  ///< everything, including microarchitectural structures
};

/** Digest the machine's current state (zero simulated cost). */
std::uint64_t stateDigest(const Machine &machine,
                          DigestScope scope = DigestScope::Full);

/**
 * Per-XFER digest mode: an observer that digests the machine after
 * every completed transfer whose step stamp falls inside [beginStep,
 * endStep]. The replay layer's divergence bisection runs the suspect
 * interval at this granularity; cross-engine comparison uses the full
 * run with DigestScope::Arch.
 */
class XferDigester : public XferObserver
{
  public:
    struct Entry
    {
        std::uint64_t step = 0;
        std::uint64_t digest = 0;
    };

    XferDigester(const Machine &machine, DigestScope scope,
                 std::uint64_t begin_step = 0,
                 std::uint64_t end_step =
                     std::numeric_limits<std::uint64_t>::max())
        : machine_(machine), scope_(scope), beginStep_(begin_step),
          endStep_(end_step)
    {}

    void
    onXfer(const XferRecord &record) override
    {
        if (record.step < beginStep_ || record.step > endStep_)
            return;
        entries_.push_back(
            {record.step, stateDigest(machine_, scope_)});
    }

    const std::vector<Entry> &entries() const { return entries_; }

  private:
    const Machine &machine_;
    DigestScope scope_;
    std::uint64_t beginStep_;
    std::uint64_t endStep_;
    std::vector<Entry> entries_;
};

} // namespace fpc

#endif // FPC_MACHINE_DIGEST_HH
