/**
 * @file
 * Threaded-code host backend: superblocks over the decoded stream.
 *
 * The paper's arc removes per-call work (I3's IFU follows DIRECTCALL
 * like a jump); PR 3's icache removed per-step *decode* work. What is
 * left on the host hot path is dispatch itself — the central switch
 * and the per-instruction accounting. This backend compiles both
 * away:
 *
 *  - each decoded instruction carries a direct handler address
 *    (a GNU computed-goto label), so dispatch is one indirect jump
 *    from the end of one handler straight into the next — a BTB entry
 *    per handler instead of one mispredicted central switch;
 *  - straight-line runs are grouped into **superblocks** — basic
 *    blocks ending at an XFER, branch, or trap-prone terminal — with
 *    fused accounting: one steps/cycles/code-byte charge per block,
 *    replaying exactly what the eager loop would have charged per
 *    step, so every simulated number stays bit-identical;
 *  - an XFER at a block exit chains to the successor block through an
 *    inline pointer the way I3's IFU follows a DIRECTCALL: a chain
 *    hit re-enters the next block without touching the cache index.
 *
 * The contract is the acceleration contract (machine/accel.hh): all
 * simulated numbers are bit-identical with the backend off, on, or
 * threaded. Observers, samplers, preemption, step-budget tails, and
 * code-epoch moves fall back to the eager loop exactly as bursts do.
 * Host counters (AccelStats) may differ across backends by design.
 */

#ifndef FPC_MACHINE_THREADED_HH
#define FPC_MACHINE_THREADED_HH

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/types.hh"
#include "machine/accel.hh"
#include "machine/machine.hh"

namespace fpc
{

/** One threaded instruction: the decoded fields the handlers consume,
 *  flattened next to the direct handler address so a block executes
 *  out of one sequential array. */
struct TInst
{
    const void *handler = nullptr; ///< computed-goto label
    CodeByteAddr start = 0;        ///< absolute PC of this instruction
    CodeByteAddr next = 0;         ///< start + length
    std::int32_t operand = 0;
    std::int32_t operand2 = 0;
    /** Cumulative code bytes of the block through this instruction —
     *  the prefix charge when a trap exits the block early. */
    std::uint32_t cumBytes = 0;
    std::uint8_t op = 0;     ///< raw opcode (opCount accounting)
    std::uint8_t length = 0; ///< encoded length (instLenCount)
};

/**
 * A superblock: a straight-line decoded run ending at a control
 * transfer (or at the length cap, where a BlockEnd sentinel falls
 * through to the next block). Immutable once built; the accounting
 * totals and sparse per-opcode deltas replay the eager loop's exact
 * per-step charges at block granularity.
 */
struct Superblock
{
    CodeByteAddr entry = 0;
    std::uint32_t n = 0;          ///< executable instructions
    std::uint32_t codeBytes = 0;  ///< total encoded bytes of the n
    std::vector<TInst> insts;     ///< n + 1 (BlockEnd sentinel last)
    /** Sparse accounting deltas for one full execution. */
    std::vector<std::pair<std::uint8_t, std::uint32_t>> opDeltas;
    std::vector<std::pair<std::uint8_t, std::uint32_t>> lenDeltas;
    /** Superinstructions fused at build time (compare+branch and
     *  load-pair peepholes); host-side accounting only. */
    std::uint32_t fusedPairs = 0;

    /** Full executions not yet folded into MachineStats. The
     *  opCount/instLenCount/AccelStats charges defer here (nothing
     *  reads them mid-run); the loop's register-held counters (data
     *  reference counts and their cycles, local-bank accesses) defer
     *  across blocks too, because every mid-run reader is delta-based
     *  — XFER probes and heap/link trackers sample differences of the
     *  counters entirely within member code, where the pending deltas
     *  are constant and cancel — while the absolute readers (span
     *  observers, the telemetry sampler, preemption) all force the
     *  eager loop. Only the bank dirty bits fold at every slow-path
     *  entry: transfers read dirty masks directly. */
    std::uint64_t execPending = 0;

    /** Inline successor chain (the IFU-follows-DIRECTCALL idiom at
     *  block granularity): the block most recently entered from this
     *  block's exit, keyed by the exit PC it was entered at. Valid
     *  until the cache flushes — evicted blocks stay alive in the
     *  arena precisely so chains never dangle within an epoch. */
    Superblock *chain = nullptr;
    CodeByteAddr chainPc = ~0u;
};

/**
 * Entry-PC-indexed cache of superblocks. Direct-mapped table over an
 * owning arena: table eviction forgets the index entry only, so chain
 * pointers into evicted blocks stay valid until the next full flush
 * (code-epoch move or arena cap).
 */
class SuperblockCache
{
  public:
    SuperblockCache(unsigned entries, std::uint64_t code_epoch);

    /** The block whose entry is pc, or null. No counters: the loop
     *  accounts executions at block granularity. */
    Superblock *
    find(CodeByteAddr pc)
    {
        Superblock *b = table_[slot(pc)];
        return (b != nullptr && b->entry == pc) ? b : nullptr;
    }

    /** Take ownership and index the block. Returns the raw pointer,
     *  valid until the next flushAll. */
    Superblock *insert(std::unique_ptr<Superblock> block);

    /** Flush everything if the memory's code epoch moved. Returns
     *  true when a flush happened (chain pointers held by the caller
     *  are dead). Pending accounting folds into stats first. Inline
     *  for the common no-move case: this runs every loop iteration. */
    bool
    sync(std::uint64_t code_epoch, MachineStats &stats,
         AccelStats &astats)
    {
        if (code_epoch == seenEpoch_) [[likely]]
            return false;
        seenEpoch_ = code_epoch;
        flushAll(stats, astats);
        return true;
    }

    /** Arena saturation: the loop flushes between blocks, never
     *  mid-block, so the cap can be checked lazily. */
    bool overLimit() const { return arena_.size() >= maxBlocks; }

    /** Drop all blocks (deferred accounting folds into stats first). */
    void flushAll(MachineStats &stats, AccelStats &astats);

    /** Selective deopt for dynamic probes: forget the table entries of
     *  blocks intersecting [begin, end) and null every chain pointer
     *  into them, folding deferred accounting first. Arena blocks stay
     *  alive (nothing dangles); the outer loop's armed check keeps the
     *  range on the exact eager path afterwards. Counts the dropped
     *  blocks into AccelStats::probeDeoptBlocks. */
    void invalidateRange(CodeByteAddr begin, CodeByteAddr end,
                         MachineStats &stats, AccelStats &astats);

    /** Fold every block's deferred execution accounting into the
     *  simulated opcode/length histograms and the host counters.
     *  Called on every threaded-loop exit (RAII) and before any
     *  flush, so deferral is never observable. */
    void flushDeferred(MachineStats &stats, AccelStats &astats);

  private:
    static constexpr std::size_t maxBlocks = 1u << 16;

    std::size_t
    slot(CodeByteAddr pc) const
    {
        return (pc ^ (pc >> 12)) & mask_;
    }

    std::uint64_t seenEpoch_ = 0;
    std::size_t mask_ = 0;
    std::vector<Superblock *> table_;
    std::vector<std::unique_ptr<Superblock>> arena_;
};

} // namespace fpc

#endif // FPC_MACHINE_THREADED_HH
