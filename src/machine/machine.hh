/**
 * @file
 * The simulated processor: an interpreter for the FPC byte code with
 * pluggable realizations of the control-transfer model.
 *
 * One Machine executes one loaded image against one Memory. Which of
 * the paper's implementations it embodies is configuration:
 *
 *  - Impl::Simple (I1, §4): every transfer runs the general path;
 *    descriptors are inline literals (FCALL).
 *  - Impl::Mesa (I2, §5): EXTERNALCALL resolves through the four
 *    levels of indirection of Figure 1; frames come from the AV heap.
 *  - Impl::Ifu (I3, §6): adds DIRECTCALL/SHORTDIRECTCALL that the IFU
 *    follows like jumps, and the return stack that makes LIFO returns
 *    equally fast; unusual transfers flush it and fall back.
 *  - Impl::Banked (I4, §7): adds register banks shadowing frames, the
 *    stack-bank renaming that passes arguments for free (Figure 3),
 *    and the processor-held stack of free standard frames.
 *
 * The transfer entry points (callDescriptor, doReturn, xferTo,
 * processSwitch) are public so trace-driven experiments can exercise
 * the engines without interpreting code.
 */

#ifndef FPC_MACHINE_MACHINE_HH
#define FPC_MACHINE_MACHINE_HH

#include <array>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "frames/frame_heap.hh"
#include "isa/decode.hh"
#include "machine/accel.hh"
#include "machine/banks.hh"
#include "machine/config.hh"
#include "memory/cache.hh"
#include "memory/memory.hh"
#include "program/loader.hh"
#include "stats/stats.hh"
#include "xfer/context.hh"

namespace fpc
{

/** Why run() stopped. */
enum class StopReason
{
    Running,   ///< not stopped
    Halted,    ///< HALT instruction
    TopReturn, ///< RETURN with a NIL return link
    Error,     ///< program error with no trap handler
    StepLimit  ///< maxSteps exhausted
};

const char *stopReasonName(StopReason reason);

/** Result of a run. */
struct RunResult
{
    StopReason reason = StopReason::Running;
    std::string message;
    std::uint64_t steps = 0;
};

/** Counters the machine maintains (see DESIGN.md §3). */
struct MachineStats
{
    static constexpr unsigned numXferKinds =
        static_cast<unsigned>(XferKind::NumKinds);

    std::uint64_t steps = 0;
    Tick cycles = 0;

    /** Per-kind transfer counts and per-kind "jump-equivalent"
     *  transfers (no storage references, no IFU redirect). */
    std::array<CountT, numXferKinds> xferCount{};
    std::array<CountT, numXferKinds> xferFast{};
    /** Storage references and cycles per transfer, by kind. */
    std::array<stats::Distribution, numXferKinds> xferRefs{};
    std::array<stats::Distribution, numXferKinds> xferCycles{};

    CountT returnStackHits = 0;
    CountT returnStackMisses = 0;
    CountT returnStackFlushes = 0;
    CountT returnStackFlushedEntries = 0;
    CountT returnStackSpills = 0; ///< oldest entry evicted on overflow

    CountT bankOverflows = 0;  ///< evictions to make a bank free
    CountT bankUnderflows = 0; ///< XFER into a frame with no bank
    CountT bankFlushWords = 0;
    CountT bankLoadWords = 0;
    CountT bankDiverts = 0;    ///< §7.4 pointer references diverted
    CountT flaggedFrames = 0;  ///< §7.4 frames whose address was taken

    CountT fastFrameAllocs = 0;
    CountT slowFrameAllocs = 0;
    CountT fastFrameFrees = 0;
    CountT slowFrameFrees = 0;

    CountT localBankAccesses = 0;
    CountT localMemAccesses = 0;
    CountT globalAccesses = 0;

    /** Timeslice-driven (involuntary) process switches, a subset of
     *  the ProcSwitch transfer count. */
    CountT preemptions = 0;

    std::array<CountT, 256> opCount{};
    std::array<CountT, 7> instLenCount{}; ///< index = bytes 1..6

    CountT calls() const;
    CountT returns() const;
    CountT totalXfers() const;
    double bankEventRate() const; ///< (over+underflows) / transfers
    double fastCallReturnRate() const;

    /** Fold another machine's counters in (multi-worker runtimes
     *  merge per-worker stats at join). */
    void merge(const MachineStats &other);
};

/**
 * One observed transfer, as delivered to an attached XferObserver
 * (the fpc_obs tracer and profiler implement the interface): which
 * XFER discipline ran, between which contexts, and what it cost.
 * Delivered after the transfer completes.
 */
struct XferRecord
{
    XferKind kind = XferKind::ExtCall;
    Word srcCtx = nilContext;  ///< source frame context (nil at start)
    Word dstCtx = nilContext;  ///< destination frame context
    Addr frame = nilAddr;      ///< destination local frame pointer
    CodeByteAddr pc = 0;       ///< destination PC (entry or resume)
    Tick start = 0;            ///< cycle count when the transfer began
    Tick end = 0;              ///< cycle count when it completed
    CountT refs = 0;           ///< storage references it consumed
    std::uint64_t step = 0;    ///< instructions executed so far
};

/**
 * Observation hook for transfers; attach with Machine::setObserver.
 * With no observer attached the machine pays one pointer null-check
 * per transfer, and no simulated cycles are charged either way, so
 * the cost model is identical with observation on or off.
 */
class XferObserver
{
  public:
    virtual ~XferObserver() = default;
    virtual void onXfer(const XferRecord &record) = 0;
};

class Machine;

/**
 * Periodic sampling hook clocked on simulated cycles; attach with
 * Machine::setSampler. onSample fires at the first step boundary at
 * or past each interval multiple, reads whatever gauges it wants
 * through the const machine reference, and charges zero simulated
 * cycles — exactly the XferObserver contract, at interval rather
 * than transfer granularity. Because the clock is simulated cycles,
 * the sample points (and therefore any exported series) are
 * byte-identical across runs and across the acceleration switch.
 */
class CycleSampler
{
  public:
    virtual ~CycleSampler() = default;
    virtual void onSample(const Machine &machine) = 0;
};

/**
 * Boundary sampling hook clocked on simulated cycles; attach with
 * Machine::setBoundarySampler. Unlike a CycleSampler, an attached
 * boundary sampler does NOT force the eager loop: the accelerated
 * backends check the cycle budget only where their deferred
 * accounting is (or can cheaply be made) exact — the threaded loop's
 * block-exit and chain-follow sites and the burst loop's per-burst
 * flush — so onBoundarySample fires at the first such boundary at or
 * past each interval multiple. The documented slop contract: the
 * firing cycle exceeds the nominal interval multiple by at most one
 * superblock (≤ 64 instructions, threaded) or one burst (≤ 4096
 * instructions, burst) worth of cycles; the eager loop fires exactly
 * like a CycleSampler (≤ 1 instruction of slop). Deferred
 * opcode/length histograms and accel counters are folded before the
 * hook runs, so the machine the hook reads is self-consistent. Reads
 * must be unaccounted; the hook charges zero simulated cycles.
 */
class BoundarySampler
{
  public:
    virtual ~BoundarySampler() = default;
    virtual void onBoundarySample(const Machine &machine) = 0;
};

/** A half-open range of code byte addresses a probe sink has armed
 *  (typically one procedure's prologue + body). */
struct ProbeRange
{
    CodeByteAddr begin = 0;
    CodeByteAddr end = 0; ///< exclusive
};

/**
 * Dynamic-probe hook; attach with Machine::setProbeSink. Unlike an
 * XferObserver, an attached probe sink does NOT force the eager loop:
 * the callbacks fire from inside the member transfer/frame/trap code
 * all three backends share, where the accelerated loops' deferred
 * counters are constant, so the refs/cycles deltas delivered here are
 * exact under every backend. Absolute readings (machine.cycles(),
 * stats().steps) obey a bounded-slop contract instead: events fired
 * from unprobed threaded/burst code may lag the eager loop's stamps
 * by at most one superblock or one burst of decode cycles, while
 * events inside an armed range are exact — arming deoptimizes just
 * the superblocks/bursts containing those PCs to the eager path
 * (selective deopt; see setProbeSink). The hooks charge zero
 * simulated cycles, so all simulated numbers are byte-identical with
 * any probe set attached.
 */
class ProbeSink
{
  public:
    virtual ~ProbeSink() = default;
    /** After every completed transfer: the discipline, the storage
     *  references and simulated cycles the transfer consumed. */
    virtual void onProbeXfer(XferKind kind, CountT refs, Tick cycles,
                             const Machine &machine) = 0;
    /** After every frame allocation (fast = I4 fast-frame stack). */
    virtual void onProbeFrameAlloc(unsigned fsi, bool fast,
                                   const Machine &machine) = 0;
    /** After every frame release. fsi is ~0u when the slow release
     *  path cannot cheaply recover the size class. */
    virtual void onProbeFrameFree(unsigned fsi, bool fast,
                                  const Machine &machine) = 0;
    /** On every trap, including unhandled traps that stop the run
     *  (those never reach the XFER path). */
    virtual void onProbeTrap(Word code, const Machine &machine) = 0;
};

struct Superblock;
class SuperblockCache;

/** The processor. */
class Machine
{
  public:
    Machine(Memory &memory, const LoadedImage &image,
            const MachineConfig &config = MachineConfig());
    ~Machine();

    /** @name Program control. @{ */

    /** Reset processor state (not memory contents). */
    void reset();

    /** Begin executing Mod.proc with the given arguments. */
    void start(const std::string &module_name,
               const std::string &proc_name,
               std::span<const Word> args = {});

    /** Begin executing the given (procedure) context. */
    void startContext(Word descriptor, std::span<const Word> args = {});

    /** Run until halt/top-return/error or the step budget expires. */
    RunResult run();

    /** Execute one instruction. */
    void step();

    bool stopped() const { return stop_ != StopReason::Running; }
    const RunResult &result() const { return result_; }
    /** @} */

    /** @name Concurrency hooks. @{ */

    /** Create a suspended activation of Mod.proc: the model's
     *  "creation context" made tangible, for coroutines/processes. */
    Word spawn(const std::string &module_name,
               const std::string &proc_name,
               std::span<const Word> args = {});

    /** YIELD (and the timeslice trap) asks this hook for the next
     *  context to run. */
    using Scheduler = std::function<Word(Machine &)>;
    void setScheduler(Scheduler scheduler);

    /** Resume a suspended context as a process dispatch: clears the
     *  stop state and XFERs to ctx on the ProcSwitch path (return
     *  stack flushed, banks written back), exactly as if a scheduler
     *  had picked it. */
    void resumeProcess(Word ctx);

    /** True while the scheduler hook is being invoked from the
     *  timeslice trap rather than a voluntary YIELD. */
    bool preemptionInProgress() const { return preempting_; }

    /** Context that receives trap transfers (BRK, zero divide). */
    void setTrapContext(Word ctx) { trapCtx_ = ctx; }
    /** @} */

    /** @name Observation hooks (tracing/profiling, see src/obs/). @{ */

    /** Attach a transfer observer; null detaches. The observer must
     *  outlive the machine or be detached before it dies. */
    void setObserver(XferObserver *observer) { observer_ = observer; }
    XferObserver *observer() const { return observer_; }

    /** Attach a periodic sampler fired every interval_cycles simulated
     *  cycles (next fire is re-anchored at the current cycle count);
     *  null detaches. Like an observer, an attached sampler routes
     *  run() through the eager per-step loop so sample points stay
     *  byte-identical with acceleration on or off. */
    void setSampler(CycleSampler *sampler, Tick interval_cycles);
    CycleSampler *sampler() const { return sampler_; }

    /** Attach a boundary sampler fired at the first accel-boundary at
     *  or past each interval_cycles multiple (next fire re-anchored at
     *  the current cycle count); null detaches. Unlike setSampler this
     *  keeps the accelerated loops running — see the BoundarySampler
     *  slop contract. */
    void setBoundarySampler(BoundarySampler *sampler,
                            Tick interval_cycles);
    BoundarySampler *boundarySampler() const { return bsampler_; }

    /** Entry PC of the procedure the machine is currently executing,
     *  maintained as a shadow-of-shadow top-frame register: set on
     *  every call-like transfer, cleared (0) when a return or resume
     *  lands somewhere whose entry is not tracked. Cheap enough for
     *  the accelerated loops; sampling profilers attribute through it
     *  and fall back to pc() when it reads 0. */
    CodeByteAddr currentProcEntry() const { return curProcEntry_; }

    /** Entry PC of the superblock whose execution expired the sampling
     *  budget, valid only inside a BoundarySampler callback and only
     *  when the threaded loop fired it (0 otherwise). Superblocks end
     *  at XFERs, so at a threaded boundary pc()/currentProcEntry()
     *  already point at the *destination* of the block's terminal
     *  transfer; attributing through the anchor instead charges the
     *  sample to the procedure that actually spent the cycles. */
    CodeByteAddr boundaryAnchorPc() const { return bsampleAnchorPc_; }

    /** Attach a dynamic-probe sink; null detaches. armed lists the
     *  code ranges whose events need exact absolute stamps (probed
     *  procedures): superblocks intersecting an armed range are
     *  invalidated and those PCs execute on the exact eager path,
     *  while unprobed code keeps full threaded/burst speed. An
     *  attached sink does not force the eager loop — the detached
     *  cost is one pointer null-check per transfer/frame/trap and the
     *  armed check costs nothing until a sink is attached. */
    void setProbeSink(ProbeSink *sink,
                      std::vector<ProbeRange> armed = {});
    ProbeSink *probeSink() const { return probes_; }

    /** True when pc lies in a probe-armed range (exact-path code). */
    bool
    pcArmed(CodeByteAddr pc) const
    {
        if (pc < armedMin_ || pc >= armedMax_)
            return false;
        for (const ProbeRange &r : armed_)
            if (pc >= r.begin && pc < r.end)
                return true;
        return false;
    }
    /** @} */

    /** @name Transfer primitives (also for trace-driven use). @{ */
    void callExternal(unsigned lv_index);
    void callLocal(unsigned ev_index);
    void callDirect(CodeByteAddr target);
    void callFat(CodeByteAddr target, Addr gf);
    void callDescriptor(Word descriptor, XferKind kind);
    void doReturn();
    void xferTo(Word ctx);      ///< the raw XFER primitive
    void processSwitch();       ///< YIELD path
    /** @} */

    /** @name Observation. @{ */
    const std::vector<Word> &output() const { return output_; }
    unsigned stackDepth() const { return sp_; }
    Word stackAt(unsigned index_from_bottom) const;
    Word popValue();
    void pushValue(Word value);

    Word returnContext() const { return returnCtx_; }
    Addr currentFrame() const { return lf_; }
    Addr currentGlobalFrame() const { return gf_; }
    Word currentFrameContext() const;

    /** Absolute PC (next instruction byte). */
    CodeByteAddr pc() const { return pcAbs_; }
    /** Start of the most recently decoded instruction — after an
     *  error stop, the faulting instruction (postmortem support). */
    CodeByteAddr lastInstStart() const { return instStart_; }

    const MachineStats &stats() const { return stats_; }
    Tick cycles() const { return stats_.cycles; }

    /** Host-acceleration counters (zeroed copy when acceleration is
     *  off). Host-side only; never part of the simulated results. */
    AccelStats accelStats() const
    {
        return accel_ ? accel_->stats : AccelStats();
    }
    bool accelEnabled() const { return accel_ != nullptr; }

    /** True when this build can run the threaded-code backend (the
     *  computed-goto dispatch needs the GNU label-address extension).
     *  Callers must reject --accel=threaded up front when false. */
    static bool threadedSupported();
    /** True when the threaded backend is configured on this machine
     *  (run() still falls back to the eager loop for observers,
     *  samplers and preemption, exactly like bursts). */
    bool threadedActive() const { return sblocks_ != nullptr; }

    /** @name Microarchitectural state, for experiments/diagnostics. @{ */
    const BankFile &banks() const { return banks_; }
    int currentLbank() const { return curLbank_; }
    int currentStackBank() const { return stackBank_; }
    unsigned returnStackDepth() const { return retStack_.size(); }
    unsigned fastFrameStackSize() const { return fastFrames_.size(); }
    /** Return-stack entry frames, innermost last (empty if none). */
    std::vector<Addr> returnStackFrames() const;
    /** @} */

    FrameHeap &heap() { return heap_; }
    const FrameHeap &heap() const { return heap_; }
    Memory &memory() { return mem_; }
    const Memory &memory() const { return mem_; }
    const Cache *dataCache() const { return cache_.get(); }
    const MachineConfig &config() const { return config_; }
    const LoadedImage &image() const { return image_; }

    /** Zero the machine's statistics, including the host-acceleration
     *  counters (memory/heap stats are separate; see
     *  Memory::resetStats and FrameHeap::resetStats). */
    void resetStats();

    /** Retain/flag a frame coherently with the bank metadata. */
    void setRetained(Addr frame_ptr, bool retained);

    /** Read a variable of an arbitrary frame (test support; routes
     *  through a live bank when one shadows the frame). */
    Word inspectVar(Addr frame_ptr, unsigned index) const;
    /** @} */

  private:
    friend class TransferTestPeer;

    // -- cost accounting ---------------------------------------------
    Word readMem(Addr addr, AccessKind kind);
    void writeMem(Addr addr, Word value, AccessKind kind);
    Word readData(Addr addr);
    void writeData(Addr addr, Word value);
    std::uint8_t fetchCodeByte(unsigned offset_from_pc);
    void chargeRedirect();

    // -- frame word routing (bank or storage) ------------------------
    Word readFrameWord(Addr frame_ptr, unsigned offset);
    void writeFrameWord(Addr frame_ptr, unsigned offset, Word value);

    // -- locals / globals / stack ------------------------------------
    Word readVar(unsigned index);
    void writeVar(unsigned index, Word value);
    Word readGlobal(unsigned index);
    void writeGlobal(unsigned index, Word value);
    void push(Word value);
    Word pop();
    unsigned stackCapacity() const;

    // -- banks (I4) ---------------------------------------------------
    bool banked() const { return config_.impl == Impl::Banked; }
    bool ifuEnabled() const
    {
        return config_.impl == Impl::Ifu || config_.impl == Impl::Banked;
    }
    int acquireBank(Addr new_owner, int pinned_a, int pinned_b);
    void flushBank(int bank);
    int loadBankFor(Addr frame_ptr);
    void flushAllBanks();
    void dropCurrentBank(); ///< §7.4: flush + release, frame flagged
    bool divertToBank(Addr addr, bool is_write, Word &value);

    // -- transfers (implemented in transfers.cc) ----------------------
    struct RetEntry;

    ProcTarget resolveDescriptor(const Context &ctx);
    ProcTarget resolveDirect(CodeByteAddr target);
    void dispatchContext(Word ctx, XferKind kind, bool followable);
    void xferKinded(Word ctx, XferKind kind);
    void finishCall(const ProcTarget &target, XferKind kind,
                    bool followable);

    struct AllocResult
    {
        Addr framePtr;
        unsigned fsi;
        bool fast;
    };
    AllocResult allocFrame(unsigned fsi);
    void releaseFrame(Addr frame_ptr, int bank);
    void resumeFrame(Addr frame_ptr, XferKind kind);
    void flushReturnStack();
    void spillOldestReturnEntry();
    void materializeEntry(const RetEntry &entry, Addr child);
    void saveCurrentPc();
    /** Current code base; reads gf[0] if not cached in a register. */
    CodeByteAddr currentCodeBase();
    void trap(Word code, const std::string &message);

    struct XferProbe;

    // -- interpreter ---------------------------------------------------
    void execute(const isa::Inst &inst);
    /** Per-burst accumulators for the run() fast path: bookkeeping
     *  that is a pure sum over the burst (step count, decode cycles,
     *  hit-path code-byte charges) accumulates here and flushes into
     *  the real counters once per burst. Exact because only XFER
     *  probes read these counters mid-run, and they take deltas,
     *  which a pending constant offset cannot change. Not used when
     *  an observer is attached: XFER records carry absolute
     *  cycle/step stamps, which pending offsets would skew. */
    struct BurstAcc
    {
        std::uint64_t steps = 0;
        CountT codeBytes = 0;
        /** Icache misses this burst; hits are recovered at flush time
         *  as steps - misses (host-side counters, so the ±1 skew of a
         *  decode that throws mid-burst is tolerable). */
        CountT icacheMisses = 0;
    };
    /** One instruction, without the stop check / epoch sync /
     *  preemption poll that step() wraps around it (the run() fast
     *  path batches those). The template parameters fold the accel
     *  null-check and the batched-accounting choice out of the
     *  per-step path: each loop knows statically which variant it
     *  runs. */
    template <bool WithAccel, bool Batched = false>
    void stepCoreT(BurstAcc *acc = nullptr);
    void stepCore();
    /** The threaded-code superblock loop (threaded.cc): computed-goto
     *  dispatch with block-fused accounting. Runs until stop or the
     *  step budget expires; steps counts completed instructions and
     *  stays correct when a handler throws (run()'s catch reads it).
     *  The Banked parameter folds the I4 bank checks out of the
     *  inlined stack/local accessors at compile time. */
    template <bool Banked>
    void threadedLoopT(std::uint64_t &steps);
    /** Replay the accounting of a memoized link walk: n Table-kind
     *  word reads (each costing memCycles) plus n code-byte fetches. */
    void chargeLinkWalk(CountT table_reads, CountT code_bytes);
    /** Fire the boundary sampler: fold any deferred accounting so the
     *  machine is self-consistent, deliver the sample, and advance the
     *  budget past the current cycle count (catch-up, like the
     *  CycleSampler). Out of line — runs at most once per interval. */
    void fireBoundarySample();
    void maybePreempt();
    void execArith(isa::Op op);
    void execCompare(isa::Op op);
    void stopWith(StopReason reason, std::string message);

    // -- state ---------------------------------------------------------
    Memory &mem_;
    const LoadedImage &image_;
    MachineConfig config_;
    SystemLayout layout_;
    FrameHeap heap_;
    BankFile banks_;
    std::unique_ptr<Cache> cache_;
    std::unique_ptr<Accel> accel_;
    std::unique_ptr<SuperblockCache> sblocks_;

    // processor registers
    Addr lf_ = nilAddr;            ///< local frame pointer
    Addr gf_ = nilAddr;            ///< global frame pointer
    CodeByteAddr pcAbs_ = 0;       ///< absolute PC (byte address)
    CodeByteAddr codeBase_ = 0;    ///< cached code base, when valid
    bool codeBaseValid_ = false;
    CodeByteAddr instStart_ = 0;   ///< start of the current instruction
    Word returnCtx_ = nilContext;  ///< the returnContext global (§3)
    std::array<Word, 16> stack_{}; ///< eval stack (I1-I3 registers)
    /** Stack capacity for the configured mode, fixed at construction
     *  (bank words minus the vars offset when banked). */
    unsigned stackCap_ = 0;
    unsigned sp_ = 0;
    bool xferRedirected_ = false;

    /** Register hints about the current frame (restored via the
     *  return stack), enabling the I4 zero-reference free path. */
    unsigned curFrameFsi_ = 0;
    bool curFrameFsiValid_ = false;
    bool curFrameRetainedHint_ = false;

    // I3/I4 IFU return stack
    struct RetEntry
    {
        Addr lf;
        Addr gf;
        CodeByteAddr pcAbs;
        CodeByteAddr codeBase;
        bool codeBaseValid;
        int lbank;
        unsigned fsi;
        bool fsiValid;
        bool retained;
    };
    std::vector<RetEntry> retStack_;

    // I4 bank state
    int curLbank_ = -1;
    int stackBank_ = -1;
    bool curFrameFlagged_ = false;

    // I4 fast frame stack
    std::vector<Addr> fastFrames_;
    unsigned fastFsi_ = 0;
    bool fastFramesEnabled_ = false;

    Scheduler scheduler_;
    Word trapCtx_ = nilContext;
    /** Dynamic-probe sink and its armed code ranges. armedMin_/Max_
     *  bound the ranges so pcArmed rejects in one compare when no
     *  range (or no sink) is set. */
    ProbeSink *probes_ = nullptr;
    std::vector<ProbeRange> armed_;
    CodeByteAddr armedMin_ = ~static_cast<CodeByteAddr>(0);
    CodeByteAddr armedMax_ = 0;
    XferObserver *observer_ = nullptr;
    CycleSampler *sampler_ = nullptr;
    Tick sampleInterval_ = 0;
    Tick nextSampleAt_ = 0;
    BoundarySampler *bsampler_ = nullptr;
    Tick bsampleInterval_ = 0;
    Tick bsampleNextAt_ = 0;
    /** Block-entry anchor for threaded boundary samples (see
     *  boundaryAnchorPc()); set by the threaded loop around
     *  fireBoundarySample, 0 everywhere else. */
    CodeByteAddr bsampleAnchorPc_ = 0;
    /** Shadow-of-shadow top-frame register: entry PC of the procedure
     *  currently executing (0 when unknown, e.g. after a return). */
    CodeByteAddr curProcEntry_ = 0;

    // timeslice preemption
    std::uint64_t sliceLeft_ = 0;
    bool switchPending_ = false;
    bool preempting_ = false;

    RunResult result_;
    StopReason stop_ = StopReason::Halted;
    MachineStats stats_;
    std::vector<Word> output_;
};

} // namespace fpc

#endif // FPC_MACHINE_MACHINE_HH
