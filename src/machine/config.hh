/**
 * @file
 * Machine configuration: which of the paper's implementations the
 * processor realizes, and the model parameters of §6–§7.
 */

#ifndef FPC_MACHINE_CONFIG_HH
#define FPC_MACHINE_CONFIG_HH

#include <cstdint>

#include "machine/accel.hh"
#include "memory/cache.hh"
#include "memory/latency.hh"

namespace fpc
{

/** The four implementations of the control-transfer model. */
enum class Impl
{
    Simple, ///< I1 (§4): heap frames, inline descriptors, no IFU
    Mesa,   ///< I2 (§5): compact encoding, LV/GFT/EV indirection
    Ifu,    ///< I3 (§6): I2 + IFU-followed DIRECTCALLs + return stack
    Banked  ///< I4 (§7): I3 + register banks + fast frame stack
};

const char *implName(Impl impl);

/** Everything configurable about the simulated processor. */
struct MachineConfig
{
    Impl impl = Impl::Mesa;

    LatencyModel latency;

    /** I3/I4: IFU return stack depth ("a small stack", §6). */
    unsigned returnStackDepth = 8;

    /** I4: number of register banks ("say 4-8", §7.1). */
    unsigned numBanks = 4;
    /** I4: words per bank ("some modest fixed size (say 16 words)"). */
    unsigned bankWords = 16;
    /** I4: flush only written words ("keep track of which registers
     *  have been written, to avoid the cost of dumping registers which
     *  have never been written", §7.1). */
    bool flushDirtyOnly = true;

    /** I4: depth of the processor's stack of free standard frames
     *  (§7.1: "the processor can keep a stack of free frames of this
     *  size, and allocation will be extremely fast"). */
    unsigned fastFrameStackDepth = 16;
    /** I4: payload words of the standard fast frame (§7.1: 80 bytes =
     *  40 words covers ~95% of frames). */
    unsigned fastFramePayloadWords = 40;

    /** Route program data references through a cache timing model
     *  (for the §7.3 banks-vs-cache study). */
    bool useDataCache = false;
    CacheConfig cacheConfig;

    /** Preemptive timeslice: after this many executed instructions the
     *  machine performs a genuine ProcSwitch XFER through the installed
     *  scheduler hook (§3's process switch, driven by a timer trap
     *  instead of a YIELD). The switch is deferred to the next
     *  instruction boundary where the evaluation stack is empty — the
     *  Mesa rule for interruptible points — so the argument record of
     *  an in-flight expression is never torn. 0 disables preemption. */
    std::uint64_t timesliceSteps = 0;

    /** Interpreter step budget for run(). */
    std::uint64_t maxSteps = 200'000'000;

    /** Host-side acceleration (predecoded icache + XFER link cache +
     *  dispatch fast path). Pure wall-clock optimization: every
     *  simulated number is bit-identical with it on or off (see
     *  docs/PERFORMANCE.md), so it defaults to on. */
    AccelConfig accel;
};

} // namespace fpc

#endif // FPC_MACHINE_CONFIG_HH
