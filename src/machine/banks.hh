/**
 * @file
 * The register-bank file of §7.1–§7.2 and Figure 3.
 *
 * Each bank can shadow the first few words of one local frame, or hold
 * the evaluation stack. A call renames the stack bank to become the
 * callee's local-frame bank ("the arguments will automatically appear
 * as the first few local variables, without any actual data
 * movement") and assigns a fresh bank as the new stack. Banks are not
 * used in last-in first-out order (Figure 3).
 *
 * The bank file itself only manages storage and ownership; the
 * machine decides when to flush or load and charges the memory
 * traffic.
 */

#ifndef FPC_MACHINE_BANKS_HH
#define FPC_MACHINE_BANKS_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "common/types.hh"

namespace fpc
{

/** The register-bank file. */
class BankFile
{
  public:
    BankFile(unsigned num_banks, unsigned bank_words);

    unsigned numBanks() const { return numBanks_; }
    unsigned bankWords() const { return bankWords_; }

    /** Bank currently shadowing the frame, or -1. */
    int bankOf(Addr frame_ptr) const;

    /** Take a free bank for the frame; -1 if none is free. */
    int assignFree(Addr frame_ptr);

    /**
     * Pick the eviction victim: the oldest-assigned owned bank that is
     * not one of the pinned banks. -1 if every bank is pinned.
     */
    int victim(int pinned_a, int pinned_b) const;

    /** Rename a bank to shadow a (new) frame, keeping its contents. */
    void rename(int bank, Addr new_owner);

    /** Release a bank (its contents become garbage). */
    void free(int bank);

    bool isFree(int bank) const { return banks_[bank].free; }
    Addr owner(int bank) const { return banks_[bank].owner; }

    /** Inline: these run 2-4 times per interpreted instruction on the
     *  I4 engine (every push/pop and local-variable access). */
    Word
    read(int bank, unsigned word) const
    {
        const Bank &b = bankAt(bank, word);
        return b.data[word];
    }

    void
    write(int bank, unsigned word, Word value)
    {
        Bank &b = bankAt(bank, word);
        b.data[word] = value;
        b.dirty |= 1u << word;
    }

    /** @name Unchecked access for the machine's hottest bank paths.
     *
     * The eval-stack and current-local-frame accesses already
     * establish the preconditions (bank owned, word < bankWords())
     * before every call — the stack pointer is bounded by the bank
     * capacity and curLbank_/stackBank_ are only ever valid owned
     * banks — so these skip bankAt()'s revalidation.
     * @{ */
    Word
    readOwned(int bank, unsigned word) const
    {
        return banks_[bank].data[word];
    }

    void
    writeOwned(int bank, unsigned word, Word value)
    {
        Bank &b = banks_[bank];
        b.data[word] = value;
        b.dirty |= 1u << word;
    }
    /** @} */

    /** @name Stable raw views for block-cached bank pointers.
     *
     * A bank's data vector is sized at construction and never
     * reallocates, so the machine's threaded loop can hold these
     * across a superblock (re-deriving them whenever the bank
     * assignment can change, i.e. at every transfer).
     * @{ */
    Word *dataPtr(int bank) { return banks_[bank].data.data(); }
    std::uint32_t *dirtyPtr(int bank) { return &banks_[bank].dirty; }
    /** @} */

    /** Bitmask of written words since the last markClean. */
    std::uint32_t dirtyMask(int bank) const { return banks_[bank].dirty; }
    void markClean(int bank) { banks_[bank].dirty = 0; }

    /** Host-side cached frame metadata (fsi / flags snapshot). */
    void setOwnerFsi(int bank, unsigned fsi);
    unsigned ownerFsi(int bank) const { return banks_[bank].ownerFsi; }

    /** Drop every ownership (full flush is handled by the machine). */
    void reset();

  private:
    struct Bank
    {
        bool free = true;
        Addr owner = nilAddr;
        std::uint32_t dirty = 0;
        std::uint64_t assignedAt = 0;
        unsigned ownerFsi = 0;
        std::vector<Word> data;
    };

    const Bank &
    bankAt(int bank, unsigned word) const
    {
        if (static_cast<unsigned>(bank) >= numBanks_ ||
            banks_[bank].free || word >= bankWords_)
            bankRangePanic(bank, word);
        return banks_[bank];
    }

    Bank &
    bankAt(int bank, unsigned word)
    {
        return const_cast<Bank &>(
            std::as_const(*this).bankAt(bank, word));
    }

    [[noreturn]] void bankRangePanic(int bank, unsigned word) const;

    std::vector<Bank> banks_;
    unsigned numBanks_ = 0;
    unsigned bankWords_;
    std::uint64_t clock_ = 0;
};

} // namespace fpc

#endif // FPC_MACHINE_BANKS_HH
