/**
 * @file
 * The register-bank file of §7.1–§7.2 and Figure 3.
 *
 * Each bank can shadow the first few words of one local frame, or hold
 * the evaluation stack. A call renames the stack bank to become the
 * callee's local-frame bank ("the arguments will automatically appear
 * as the first few local variables, without any actual data
 * movement") and assigns a fresh bank as the new stack. Banks are not
 * used in last-in first-out order (Figure 3).
 *
 * The bank file itself only manages storage and ownership; the
 * machine decides when to flush or load and charges the memory
 * traffic.
 */

#ifndef FPC_MACHINE_BANKS_HH
#define FPC_MACHINE_BANKS_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace fpc
{

/** The register-bank file. */
class BankFile
{
  public:
    BankFile(unsigned num_banks, unsigned bank_words);

    unsigned numBanks() const { return banks_.size(); }
    unsigned bankWords() const { return bankWords_; }

    /** Bank currently shadowing the frame, or -1. */
    int bankOf(Addr frame_ptr) const;

    /** Take a free bank for the frame; -1 if none is free. */
    int assignFree(Addr frame_ptr);

    /**
     * Pick the eviction victim: the oldest-assigned owned bank that is
     * not one of the pinned banks. -1 if every bank is pinned.
     */
    int victim(int pinned_a, int pinned_b) const;

    /** Rename a bank to shadow a (new) frame, keeping its contents. */
    void rename(int bank, Addr new_owner);

    /** Release a bank (its contents become garbage). */
    void free(int bank);

    bool isFree(int bank) const { return banks_[bank].free; }
    Addr owner(int bank) const { return banks_[bank].owner; }

    Word read(int bank, unsigned word) const;
    void write(int bank, unsigned word, Word value);

    /** Bitmask of written words since the last markClean. */
    std::uint32_t dirtyMask(int bank) const { return banks_[bank].dirty; }
    void markClean(int bank) { banks_[bank].dirty = 0; }

    /** Host-side cached frame metadata (fsi / flags snapshot). */
    void setOwnerFsi(int bank, unsigned fsi);
    unsigned ownerFsi(int bank) const { return banks_[bank].ownerFsi; }

    /** Drop every ownership (full flush is handled by the machine). */
    void reset();

  private:
    struct Bank
    {
        bool free = true;
        Addr owner = nilAddr;
        std::uint32_t dirty = 0;
        std::uint64_t assignedAt = 0;
        unsigned ownerFsi = 0;
        std::vector<Word> data;
    };

    std::vector<Bank> banks_;
    unsigned bankWords_;
    std::uint64_t clock_ = 0;
};

} // namespace fpc

#endif // FPC_MACHINE_BANKS_HH
