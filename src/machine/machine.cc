#include "machine/machine.hh"

#include <algorithm>

#include "common/logging.hh"

namespace fpc
{

namespace
{
/** Owner tag for the bank holding the evaluation stack. */
constexpr Addr stackOwner = 0xFFFFFFFFu;
} // namespace

const char *
implName(Impl impl)
{
    switch (impl) {
      case Impl::Simple: return "I1-simple";
      case Impl::Mesa: return "I2-mesa";
      case Impl::Ifu: return "I3-ifu";
      case Impl::Banked: return "I4-banked";
      default: return "?";
    }
}

const char *
stopReasonName(StopReason reason)
{
    switch (reason) {
      case StopReason::Running: return "running";
      case StopReason::Halted: return "halted";
      case StopReason::TopReturn: return "topReturn";
      case StopReason::Error: return "error";
      case StopReason::StepLimit: return "stepLimit";
      default: return "?";
    }
}

CountT
MachineStats::calls() const
{
    return xferCount[static_cast<unsigned>(XferKind::ExtCall)] +
           xferCount[static_cast<unsigned>(XferKind::LocalCall)] +
           xferCount[static_cast<unsigned>(XferKind::DirectCall)] +
           xferCount[static_cast<unsigned>(XferKind::FatCall)];
}

CountT
MachineStats::returns() const
{
    return xferCount[static_cast<unsigned>(XferKind::Return)];
}

CountT
MachineStats::totalXfers() const
{
    CountT total = 0;
    for (auto c : xferCount)
        total += c;
    return total;
}

double
MachineStats::bankEventRate() const
{
    const CountT xfers = totalXfers();
    if (xfers == 0)
        return 0.0;
    return static_cast<double>(bankOverflows + bankUnderflows) / xfers;
}

double
MachineStats::fastCallReturnRate() const
{
    const CountT total = calls() + returns();
    if (total == 0)
        return 0.0;
    CountT fast = xferFast[static_cast<unsigned>(XferKind::Return)];
    fast += xferFast[static_cast<unsigned>(XferKind::ExtCall)];
    fast += xferFast[static_cast<unsigned>(XferKind::LocalCall)];
    fast += xferFast[static_cast<unsigned>(XferKind::DirectCall)];
    fast += xferFast[static_cast<unsigned>(XferKind::FatCall)];
    return static_cast<double>(fast) / total;
}

void
MachineStats::merge(const MachineStats &other)
{
    steps += other.steps;
    cycles += other.cycles;
    for (unsigned k = 0; k < numXferKinds; ++k) {
        xferCount[k] += other.xferCount[k];
        xferFast[k] += other.xferFast[k];
        xferRefs[k].merge(other.xferRefs[k]);
        xferCycles[k].merge(other.xferCycles[k]);
    }
    returnStackHits += other.returnStackHits;
    returnStackMisses += other.returnStackMisses;
    returnStackFlushes += other.returnStackFlushes;
    returnStackFlushedEntries += other.returnStackFlushedEntries;
    returnStackSpills += other.returnStackSpills;
    bankOverflows += other.bankOverflows;
    bankUnderflows += other.bankUnderflows;
    bankFlushWords += other.bankFlushWords;
    bankLoadWords += other.bankLoadWords;
    bankDiverts += other.bankDiverts;
    flaggedFrames += other.flaggedFrames;
    fastFrameAllocs += other.fastFrameAllocs;
    slowFrameAllocs += other.slowFrameAllocs;
    fastFrameFrees += other.fastFrameFrees;
    slowFrameFrees += other.slowFrameFrees;
    localBankAccesses += other.localBankAccesses;
    localMemAccesses += other.localMemAccesses;
    globalAccesses += other.globalAccesses;
    preemptions += other.preemptions;
    for (unsigned i = 0; i < opCount.size(); ++i)
        opCount[i] += other.opCount[i];
    for (unsigned i = 0; i < instLenCount.size(); ++i)
        instLenCount[i] += other.instLenCount[i];
}

Machine::Machine(Memory &memory, const LoadedImage &image,
                 const MachineConfig &config)
    : mem_(memory), image_(image), config_(config),
      layout_(image.layout()),
      heap_(memory, image.layout(), image.classes()),
      banks_(std::max(2u, config.numBanks), config.bankWords)
{
    if (config_.useDataCache)
        cache_ = std::make_unique<Cache>(config_.cacheConfig,
                                         config_.latency);
    if (banked()) {
        const unsigned payload =
            std::min(config_.fastFramePayloadWords,
                     image.classes().maxWords());
        fastFsi_ = image.classes().fsiFor(payload);
        fastFramesEnabled_ = config_.fastFrameStackDepth > 0;
    }
    reset();
}

void
Machine::reset()
{
    lf_ = nilAddr;
    gf_ = nilAddr;
    pcAbs_ = 0;
    codeBase_ = 0;
    codeBaseValid_ = false;
    returnCtx_ = nilContext;
    sp_ = 0;
    retStack_.clear();
    banks_.reset();
    curLbank_ = -1;
    stackBank_ = -1;
    curFrameFlagged_ = false;
    curFrameFsiValid_ = false;
    curFrameRetainedHint_ = false;
    fastFrames_.clear();
    sliceLeft_ = config_.timesliceSteps;
    switchPending_ = false;
    preempting_ = false;
    stop_ = StopReason::Halted;
    result_ = RunResult();

    if (banked()) {
        stackBank_ = banks_.assignFree(stackOwner);
        if (fastFramesEnabled_) {
            for (unsigned i = 0; i < config_.fastFrameStackDepth; ++i)
                fastFrames_.push_back(heap_.alloc(fastFsi_));
        }
    }
}

// ---------------------------------------------------------------------
// Cost accounting
// ---------------------------------------------------------------------

Word
Machine::readMem(Addr addr, AccessKind kind)
{
    stats_.cycles += config_.latency.memCycles;
    return mem_.read(addr, kind);
}

void
Machine::writeMem(Addr addr, Word value, AccessKind kind)
{
    stats_.cycles += config_.latency.memCycles;
    mem_.write(addr, value, kind);
}

Word
Machine::readData(Addr addr)
{
    if (cache_) {
        stats_.cycles += cache_->access(addr, false);
        return mem_.read(addr, AccessKind::Data);
    }
    stats_.cycles += config_.latency.memCycles;
    return mem_.read(addr, AccessKind::Data);
}

void
Machine::writeData(Addr addr, Word value)
{
    if (cache_) {
        stats_.cycles += cache_->access(addr, true);
        mem_.write(addr, value, AccessKind::Data);
        return;
    }
    stats_.cycles += config_.latency.memCycles;
    mem_.write(addr, value, AccessKind::Data);
}

std::uint8_t
Machine::fetchCodeByte(unsigned offset_from_pc)
{
    // The IFU prefetches sequential code, so byte fetches cost no
    // extra cycles; they are still counted as code traffic.
    return mem_.readByte(pcAbs_ + offset_from_pc);
}

void
Machine::chargeRedirect()
{
    stats_.cycles += config_.latency.redirectCycles;
    xferRedirected_ = true;
}

// ---------------------------------------------------------------------
// Frame word routing: register bank when one shadows the frame
// ---------------------------------------------------------------------

Word
Machine::readFrameWord(Addr frame_ptr, unsigned offset)
{
    if (banked() && offset < banks_.bankWords()) {
        const int bank = banks_.bankOf(frame_ptr);
        if (bank >= 0) {
            stats_.cycles += config_.latency.regCycles;
            return banks_.read(bank, offset);
        }
    }
    const AccessKind kind = offset < frame::varsOffset
                                ? AccessKind::FrameState
                                : AccessKind::Data;
    if (kind == AccessKind::Data)
        return readData(frame_ptr + offset);
    return readMem(frame_ptr + offset, kind);
}

void
Machine::writeFrameWord(Addr frame_ptr, unsigned offset, Word value)
{
    if (banked() && offset < banks_.bankWords()) {
        const int bank = banks_.bankOf(frame_ptr);
        if (bank >= 0) {
            stats_.cycles += config_.latency.regCycles;
            banks_.write(bank, offset, value);
            return;
        }
    }
    const AccessKind kind = offset < frame::varsOffset
                                ? AccessKind::FrameState
                                : AccessKind::Data;
    if (kind == AccessKind::Data)
        writeData(frame_ptr + offset, value);
    else
        writeMem(frame_ptr + offset, value, kind);
}

// ---------------------------------------------------------------------
// Variables and the evaluation stack
// ---------------------------------------------------------------------

Word
Machine::readVar(unsigned index)
{
    const unsigned offset = frame::varsOffset + index;
    if (banked() && curLbank_ >= 0 && offset < banks_.bankWords()) {
        ++stats_.localBankAccesses;
        stats_.cycles += config_.latency.regCycles;
        return banks_.read(curLbank_, offset);
    }
    ++stats_.localMemAccesses;
    return readData(lf_ + offset);
}

void
Machine::writeVar(unsigned index, Word value)
{
    const unsigned offset = frame::varsOffset + index;
    if (banked() && curLbank_ >= 0 && offset < banks_.bankWords()) {
        ++stats_.localBankAccesses;
        stats_.cycles += config_.latency.regCycles;
        banks_.write(curLbank_, offset, value);
        return;
    }
    ++stats_.localMemAccesses;
    writeData(lf_ + offset, value);
}

Word
Machine::readGlobal(unsigned index)
{
    ++stats_.globalAccesses;
    return readData(gf_ + 1 + index);
}

void
Machine::writeGlobal(unsigned index, Word value)
{
    ++stats_.globalAccesses;
    writeData(gf_ + 1 + index, value);
}

unsigned
Machine::stackCapacity() const
{
    if (banked())
        return banks_.bankWords() - frame::varsOffset;
    return stack_.size();
}

void
Machine::push(Word value)
{
    if (sp_ >= stackCapacity()) {
        trap(2, "evaluation stack overflow");
        return;
    }
    if (banked())
        banks_.write(stackBank_, frame::varsOffset + sp_, value);
    else
        stack_[sp_] = value;
    ++sp_;
}

Word
Machine::pop()
{
    if (sp_ == 0) {
        trap(3, "evaluation stack underflow");
        return 0;
    }
    --sp_;
    if (banked())
        return banks_.read(stackBank_, frame::varsOffset + sp_);
    return stack_[sp_];
}

Word
Machine::stackAt(unsigned index_from_bottom) const
{
    if (index_from_bottom >= sp_)
        panic("stackAt: index {} >= depth {}", index_from_bottom, sp_);
    if (banked())
        return banks_.read(stackBank_,
                           frame::varsOffset + index_from_bottom);
    return stack_[index_from_bottom];
}

Word
Machine::popValue()
{
    return pop();
}

void
Machine::pushValue(Word value)
{
    push(value);
}

std::vector<Addr>
Machine::returnStackFrames() const
{
    std::vector<Addr> out;
    out.reserve(retStack_.size());
    for (const auto &entry : retStack_)
        out.push_back(entry.lf);
    return out;
}

Word
Machine::currentFrameContext() const
{
    return lf_ == nilAddr ? nilContext
                          : packFrameContext(lf_, layout_);
}

void
Machine::setScheduler(Scheduler scheduler)
{
    scheduler_ = std::move(scheduler);
}

void
Machine::setRetained(Addr frame_ptr, bool retained)
{
    heap_.setRetained(frame_ptr, retained);
    if (frame_ptr == lf_)
        curFrameRetainedHint_ = retained;
}

Word
Machine::inspectVar(Addr frame_ptr, unsigned index) const
{
    const unsigned offset = frame::varsOffset + index;
    if (banked() && offset < banks_.bankWords()) {
        const int bank = banks_.bankOf(frame_ptr);
        if (bank >= 0)
            return banks_.read(bank, offset);
    }
    return mem_.peek(frame_ptr + offset);
}

// ---------------------------------------------------------------------
// Program control
// ---------------------------------------------------------------------

void
Machine::start(const std::string &module_name,
               const std::string &proc_name, std::span<const Word> args)
{
    startContext(image_.procDescriptor(module_name, proc_name), args);
}

void
Machine::startContext(Word descriptor, std::span<const Word> args)
{
    stop_ = StopReason::Running;
    result_ = RunResult();
    for (Word a : args)
        push(a);
    callDescriptor(descriptor, XferKind::ExtCall);
}

RunResult
Machine::run()
{
    std::uint64_t steps = 0;
    try {
        while (stop_ == StopReason::Running) {
            if (steps >= config_.maxSteps) {
                stopWith(StopReason::StepLimit, "step budget exhausted");
                break;
            }
            step();
            ++steps;
        }
    } catch (const FatalError &err) {
        stopWith(StopReason::Error, err.what());
    }
    result_.steps += steps;
    return result_;
}

void
Machine::stopWith(StopReason reason, std::string message)
{
    stop_ = reason;
    result_.reason = reason;
    result_.message = std::move(message);
}

void
Machine::step()
{
    if (stop_ != StopReason::Running)
        return;

    instStart_ = pcAbs_;
    const isa::Inst inst =
        isa::decode([this](unsigned i) { return fetchCodeByte(i); });
    pcAbs_ += inst.length;

    ++stats_.steps;
    stats_.cycles += config_.latency.decodeCycles;
    ++stats_.opCount[static_cast<std::uint8_t>(inst.op)];
    if (inst.length < stats_.instLenCount.size())
        ++stats_.instLenCount[inst.length];

    execute(inst);
    maybePreempt();
}

void
Machine::maybePreempt()
{
    if (config_.timesliceSteps == 0 || !scheduler_ ||
        stop_ != StopReason::Running)
        return;
    if (sliceLeft_ > 1) {
        --sliceLeft_;
    } else {
        switchPending_ = true;
        sliceLeft_ = config_.timesliceSteps;
    }
    // The switch waits for an interruptible point: instruction
    // boundary, empty evaluation stack, a live frame. (§3: the timer
    // trap is just another XFER; Mesa requires the stack empty.)
    if (!switchPending_ || sp_ != 0 || lf_ == nilAddr)
        return;
    switchPending_ = false;
    ++stats_.preemptions;
    preempting_ = true;
    processSwitch();
    preempting_ = false;
}

// ---------------------------------------------------------------------
// Instruction execution
// ---------------------------------------------------------------------

void
Machine::execute(const isa::Inst &inst)
{
    using isa::OpClass;

    switch (inst.cls) {
      case OpClass::Noop:
        break;
      case OpClass::Halt:
        stopWith(StopReason::Halted, "HALT");
        break;
      case OpClass::Dup: {
        const Word v = pop();
        push(v);
        push(v);
        break;
      }
      case OpClass::Drop:
        pop();
        break;
      case OpClass::Exch: {
        const Word a = pop();
        const Word b = pop();
        push(a);
        push(b);
        break;
      }
      case OpClass::Out:
        output_.push_back(pop());
        break;
      case OpClass::LoadRetCtx:
        push(returnCtx_);
        break;
      case OpClass::Xfer:
        xferTo(pop());
        break;
      case OpClass::Ret:
        doReturn();
        break;
      case OpClass::Brk:
        trap(1, "BRK trap");
        break;
      case OpClass::Yield:
        processSwitch();
        break;

      case OpClass::LoadLocal:
        push(readVar(static_cast<unsigned>(inst.operand)));
        break;
      case OpClass::StoreLocal:
        writeVar(static_cast<unsigned>(inst.operand), pop());
        break;
      case OpClass::LoadLocalAddr: {
        // §7.4 (C1/C2): the variable must have an address, and the
        // register copy must not go stale. The conservative policy:
        // flag the frame and flush/drop its bank, making storage the
        // only copy from here on.
        if (banked() && curLbank_ >= 0)
            dropCurrentBank();
        const Addr addr =
            lf_ + frame::varsOffset + static_cast<unsigned>(inst.operand);
        push(static_cast<Word>(addr));
        break;
      }
      case OpClass::LoadGlobal:
        push(readGlobal(static_cast<unsigned>(inst.operand)));
        break;
      case OpClass::StoreGlobal:
        writeGlobal(static_cast<unsigned>(inst.operand), pop());
        break;
      case OpClass::LoadImm:
        push(static_cast<Word>(inst.operand));
        break;

      case OpClass::LoadIndirect: {
        const Addr addr = pop();
        Word value = 0;
        if (banked() && divertToBank(addr, false, value)) {
            push(value);
        } else {
            push(readData(addr));
        }
        break;
      }
      case OpClass::StoreIndirect: {
        const Addr addr = pop();
        Word value = pop();
        if (!(banked() && divertToBank(addr, true, value)))
            writeData(addr, value);
        break;
      }
      case OpClass::ReadField: {
        const Addr addr = pop();
        push(readData(addr + static_cast<unsigned>(inst.operand)));
        break;
      }
      case OpClass::WriteField: {
        const Addr addr = pop();
        const Word value = pop();
        writeData(addr + static_cast<unsigned>(inst.operand), value);
        break;
      }
      case OpClass::LoadDesc:
        push(readMem(gf_ - 1 - static_cast<unsigned>(inst.operand),
                     AccessKind::Table));
        break;

      case OpClass::Arith:
        execArith(inst.op);
        break;
      case OpClass::Compare:
        execCompare(inst.op);
        break;

      case OpClass::Jump:
        pcAbs_ = instStart_ + inst.operand;
        break;
      case OpClass::JumpZero:
        if (pop() == 0)
            pcAbs_ = instStart_ + inst.operand;
        break;
      case OpClass::JumpNotZero:
        if (pop() != 0)
            pcAbs_ = instStart_ + inst.operand;
        break;

      case OpClass::ExtCall:
        callExternal(static_cast<unsigned>(inst.operand));
        break;
      case OpClass::LocalCall:
        callLocal(static_cast<unsigned>(inst.operand));
        break;
      case OpClass::DirectCall:
        callDirect(static_cast<CodeByteAddr>(inst.operand));
        break;
      case OpClass::ShortDirectCall:
        callDirect(instStart_ + inst.operand);
        break;
      case OpClass::FatCall:
        callFat(static_cast<CodeByteAddr>(inst.operand),
                static_cast<Addr>(inst.operand2));
        break;

      case OpClass::Illegal:
        trap(4, strfmt("illegal opcode {} at {}",
                       static_cast<int>(
                           static_cast<std::uint8_t>(inst.op)),
                       instStart_));
        break;
      default:
        panic("unhandled op class");
    }
}

void
Machine::execArith(isa::Op op)
{
    using isa::Op;
    if (op == Op::NEG) {
        push(static_cast<Word>(-static_cast<SWord>(pop())));
        return;
    }
    if (op == Op::NOT) {
        push(static_cast<Word>(~pop()));
        return;
    }

    const Word b = pop();
    const Word a = pop();
    switch (op) {
      case Op::ADD:
        push(static_cast<Word>(a + b));
        break;
      case Op::SUB:
        push(static_cast<Word>(a - b));
        break;
      case Op::MUL:
        push(static_cast<Word>(
            static_cast<SDWord>(static_cast<SWord>(a)) *
            static_cast<SWord>(b)));
        break;
      case Op::DIV:
        if (b == 0) {
            trap(5, "division by zero");
            return;
        }
        push(static_cast<Word>(static_cast<SWord>(a) /
                               static_cast<SWord>(b)));
        break;
      case Op::MOD:
        if (b == 0) {
            trap(5, "division by zero");
            return;
        }
        push(static_cast<Word>(static_cast<SWord>(a) %
                               static_cast<SWord>(b)));
        break;
      case Op::AND:
        push(static_cast<Word>(a & b));
        break;
      case Op::IOR:
        push(static_cast<Word>(a | b));
        break;
      case Op::XOR:
        push(static_cast<Word>(a ^ b));
        break;
      case Op::SHL:
        push(static_cast<Word>(b >= 16 ? 0 : a << b));
        break;
      case Op::SHR:
        push(static_cast<Word>(b >= 16 ? 0 : a >> b));
        break;
      default:
        panic("execArith: bad op");
    }
}

void
Machine::execCompare(isa::Op op)
{
    using isa::Op;
    const auto b = static_cast<SWord>(pop());
    const auto a = static_cast<SWord>(pop());
    bool result = false;
    switch (op) {
      case Op::LT: result = a < b; break;
      case Op::LE: result = a <= b; break;
      case Op::EQ: result = a == b; break;
      case Op::NE: result = a != b; break;
      case Op::GE: result = a >= b; break;
      case Op::GT: result = a > b; break;
      default: panic("execCompare: bad op");
    }
    push(result ? 1 : 0);
}

} // namespace fpc
