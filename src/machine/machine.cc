#include "machine/machine.hh"

#include <algorithm>

#include "common/logging.hh"
#include "machine/threaded.hh"

namespace fpc
{

namespace
{
/** Owner tag for the bank holding the evaluation stack. */
constexpr Addr stackOwner = 0xFFFFFFFFu;
} // namespace

const char *
implName(Impl impl)
{
    switch (impl) {
      case Impl::Simple: return "I1-simple";
      case Impl::Mesa: return "I2-mesa";
      case Impl::Ifu: return "I3-ifu";
      case Impl::Banked: return "I4-banked";
      default: return "?";
    }
}

const char *
stopReasonName(StopReason reason)
{
    switch (reason) {
      case StopReason::Running: return "running";
      case StopReason::Halted: return "halted";
      case StopReason::TopReturn: return "topReturn";
      case StopReason::Error: return "error";
      case StopReason::StepLimit: return "stepLimit";
      default: return "?";
    }
}

CountT
MachineStats::calls() const
{
    return xferCount[static_cast<unsigned>(XferKind::ExtCall)] +
           xferCount[static_cast<unsigned>(XferKind::LocalCall)] +
           xferCount[static_cast<unsigned>(XferKind::DirectCall)] +
           xferCount[static_cast<unsigned>(XferKind::FatCall)];
}

CountT
MachineStats::returns() const
{
    return xferCount[static_cast<unsigned>(XferKind::Return)];
}

CountT
MachineStats::totalXfers() const
{
    CountT total = 0;
    for (auto c : xferCount)
        total += c;
    return total;
}

double
MachineStats::bankEventRate() const
{
    const CountT xfers = totalXfers();
    if (xfers == 0)
        return 0.0;
    return static_cast<double>(bankOverflows + bankUnderflows) / xfers;
}

double
MachineStats::fastCallReturnRate() const
{
    const CountT total = calls() + returns();
    if (total == 0)
        return 0.0;
    CountT fast = xferFast[static_cast<unsigned>(XferKind::Return)];
    fast += xferFast[static_cast<unsigned>(XferKind::ExtCall)];
    fast += xferFast[static_cast<unsigned>(XferKind::LocalCall)];
    fast += xferFast[static_cast<unsigned>(XferKind::DirectCall)];
    fast += xferFast[static_cast<unsigned>(XferKind::FatCall)];
    return static_cast<double>(fast) / total;
}

void
MachineStats::merge(const MachineStats &other)
{
    steps += other.steps;
    cycles += other.cycles;
    for (unsigned k = 0; k < numXferKinds; ++k) {
        xferCount[k] += other.xferCount[k];
        xferFast[k] += other.xferFast[k];
        xferRefs[k].merge(other.xferRefs[k]);
        xferCycles[k].merge(other.xferCycles[k]);
    }
    returnStackHits += other.returnStackHits;
    returnStackMisses += other.returnStackMisses;
    returnStackFlushes += other.returnStackFlushes;
    returnStackFlushedEntries += other.returnStackFlushedEntries;
    returnStackSpills += other.returnStackSpills;
    bankOverflows += other.bankOverflows;
    bankUnderflows += other.bankUnderflows;
    bankFlushWords += other.bankFlushWords;
    bankLoadWords += other.bankLoadWords;
    bankDiverts += other.bankDiverts;
    flaggedFrames += other.flaggedFrames;
    fastFrameAllocs += other.fastFrameAllocs;
    slowFrameAllocs += other.slowFrameAllocs;
    fastFrameFrees += other.fastFrameFrees;
    slowFrameFrees += other.slowFrameFrees;
    localBankAccesses += other.localBankAccesses;
    localMemAccesses += other.localMemAccesses;
    globalAccesses += other.globalAccesses;
    preemptions += other.preemptions;
    for (unsigned i = 0; i < opCount.size(); ++i)
        opCount[i] += other.opCount[i];
    for (unsigned i = 0; i < instLenCount.size(); ++i)
        instLenCount[i] += other.instLenCount[i];
}

Machine::Machine(Memory &memory, const LoadedImage &image,
                 const MachineConfig &config)
    : mem_(memory), image_(image), config_(config),
      layout_(image.layout()),
      heap_(memory, image.layout(), image.classes()),
      banks_(std::max(2u, config.numBanks), config.bankWords)
{
    if (config_.useDataCache)
        cache_ = std::make_unique<Cache>(config_.cacheConfig,
                                         config_.latency);
    if (config_.accel.enabled)
        accel_ = std::make_unique<Accel>(config_.accel, image,
                                         memory.codeEpoch());
    if (config_.accel.enabled && config_.accel.threaded) {
        if (!threadedSupported())
            panic("threaded backend requested but not supported by "
                  "this build");
        sblocks_ = std::make_unique<SuperblockCache>(
            config_.accel.sblockEntries, memory.codeEpoch());
    }
    if (banked()) {
        const unsigned payload =
            std::min(config_.fastFramePayloadWords,
                     image.classes().maxWords());
        fastFsi_ = image.classes().fsiFor(payload);
        fastFramesEnabled_ = config_.fastFrameStackDepth > 0;
    }
    stackCap_ = banked() ? banks_.bankWords() - frame::varsOffset
                         : static_cast<unsigned>(stack_.size());
    reset();
}

Machine::~Machine() = default;

void
Machine::reset()
{
    lf_ = nilAddr;
    gf_ = nilAddr;
    pcAbs_ = 0;
    codeBase_ = 0;
    codeBaseValid_ = false;
    curProcEntry_ = 0;
    returnCtx_ = nilContext;
    sp_ = 0;
    retStack_.clear();
    banks_.reset();
    curLbank_ = -1;
    stackBank_ = -1;
    curFrameFlagged_ = false;
    curFrameFsiValid_ = false;
    curFrameRetainedHint_ = false;
    fastFrames_.clear();
    sliceLeft_ = config_.timesliceSteps;
    switchPending_ = false;
    preempting_ = false;
    stop_ = StopReason::Halted;
    result_ = RunResult();

    if (banked()) {
        stackBank_ = banks_.assignFree(stackOwner);
        if (fastFramesEnabled_) {
            for (unsigned i = 0; i < config_.fastFrameStackDepth; ++i)
                fastFrames_.push_back(heap_.alloc(fastFsi_));
        }
    }
}

// ---------------------------------------------------------------------
// Cost accounting
// ---------------------------------------------------------------------

Word
Machine::readMem(Addr addr, AccessKind kind)
{
    stats_.cycles += config_.latency.memCycles;
    return mem_.read(addr, kind);
}

void
Machine::writeMem(Addr addr, Word value, AccessKind kind)
{
    stats_.cycles += config_.latency.memCycles;
    mem_.write(addr, value, kind);
}

Word
Machine::readData(Addr addr)
{
    if (cache_) {
        stats_.cycles += cache_->access(addr, false);
        return mem_.read(addr, AccessKind::Data);
    }
    stats_.cycles += config_.latency.memCycles;
    return mem_.read(addr, AccessKind::Data);
}

void
Machine::writeData(Addr addr, Word value)
{
    // A program store into the GFT or a global frame's code-base word
    // changes what a memoized link walk would resolve to; drop the
    // link caches. One compare for the common case: every frame/local
    // store lands at or above globalEnd and skips the map lookup.
    if (accel_ && addr < layout_.globalEnd && accel_->linkSensitive(addr))
        accel_->flushLinks();
    if (cache_) {
        stats_.cycles += cache_->access(addr, true);
        mem_.write(addr, value, AccessKind::Data);
        return;
    }
    stats_.cycles += config_.latency.memCycles;
    mem_.write(addr, value, AccessKind::Data);
}

std::uint8_t
Machine::fetchCodeByte(unsigned offset_from_pc)
{
    // The IFU prefetches sequential code, so byte fetches cost no
    // extra cycles; they are still counted as code traffic.
    return mem_.readByte(pcAbs_ + offset_from_pc);
}

void
Machine::chargeRedirect()
{
    stats_.cycles += config_.latency.redirectCycles;
    xferRedirected_ = true;
}

// ---------------------------------------------------------------------
// Frame word routing: register bank when one shadows the frame
// ---------------------------------------------------------------------

Word
Machine::readFrameWord(Addr frame_ptr, unsigned offset)
{
    if (banked() && offset < banks_.bankWords()) {
        const int bank = banks_.bankOf(frame_ptr);
        if (bank >= 0) {
            stats_.cycles += config_.latency.regCycles;
            return banks_.read(bank, offset);
        }
    }
    const AccessKind kind = offset < frame::varsOffset
                                ? AccessKind::FrameState
                                : AccessKind::Data;
    if (kind == AccessKind::Data)
        return readData(frame_ptr + offset);
    return readMem(frame_ptr + offset, kind);
}

void
Machine::writeFrameWord(Addr frame_ptr, unsigned offset, Word value)
{
    if (banked() && offset < banks_.bankWords()) {
        const int bank = banks_.bankOf(frame_ptr);
        if (bank >= 0) {
            stats_.cycles += config_.latency.regCycles;
            banks_.write(bank, offset, value);
            return;
        }
    }
    const AccessKind kind = offset < frame::varsOffset
                                ? AccessKind::FrameState
                                : AccessKind::Data;
    if (kind == AccessKind::Data)
        writeData(frame_ptr + offset, value);
    else
        writeMem(frame_ptr + offset, value, kind);
}

// ---------------------------------------------------------------------
// Variables and the evaluation stack
// ---------------------------------------------------------------------

Word
Machine::readVar(unsigned index)
{
    const unsigned offset = frame::varsOffset + index;
    if (banked() && curLbank_ >= 0 && offset < banks_.bankWords()) {
        ++stats_.localBankAccesses;
        stats_.cycles += config_.latency.regCycles;
        return banks_.readOwned(curLbank_, offset);
    }
    ++stats_.localMemAccesses;
    return readData(lf_ + offset);
}

void
Machine::writeVar(unsigned index, Word value)
{
    const unsigned offset = frame::varsOffset + index;
    if (banked() && curLbank_ >= 0 && offset < banks_.bankWords()) {
        ++stats_.localBankAccesses;
        stats_.cycles += config_.latency.regCycles;
        banks_.writeOwned(curLbank_, offset, value);
        return;
    }
    ++stats_.localMemAccesses;
    writeData(lf_ + offset, value);
}

Word
Machine::readGlobal(unsigned index)
{
    ++stats_.globalAccesses;
    return readData(gf_ + 1 + index);
}

void
Machine::writeGlobal(unsigned index, Word value)
{
    ++stats_.globalAccesses;
    writeData(gf_ + 1 + index, value);
}

unsigned
Machine::stackCapacity() const
{
    return stackCap_;
}

void
Machine::push(Word value)
{
    if (sp_ >= stackCap_) [[unlikely]] {
        trap(2, "evaluation stack overflow");
        return;
    }
    if (banked())
        banks_.writeOwned(stackBank_, frame::varsOffset + sp_, value);
    else
        stack_[sp_] = value;
    ++sp_;
}

Word
Machine::pop()
{
    if (sp_ == 0) [[unlikely]] {
        trap(3, "evaluation stack underflow");
        return 0;
    }
    --sp_;
    if (banked())
        return banks_.readOwned(stackBank_, frame::varsOffset + sp_);
    return stack_[sp_];
}

Word
Machine::stackAt(unsigned index_from_bottom) const
{
    if (index_from_bottom >= sp_)
        panic("stackAt: index {} >= depth {}", index_from_bottom, sp_);
    if (banked())
        return banks_.read(stackBank_,
                           frame::varsOffset + index_from_bottom);
    return stack_[index_from_bottom];
}

Word
Machine::popValue()
{
    return pop();
}

void
Machine::pushValue(Word value)
{
    push(value);
}

std::vector<Addr>
Machine::returnStackFrames() const
{
    std::vector<Addr> out;
    out.reserve(retStack_.size());
    for (const auto &entry : retStack_)
        out.push_back(entry.lf);
    return out;
}

Word
Machine::currentFrameContext() const
{
    return lf_ == nilAddr ? nilContext
                          : packFrameContext(lf_, layout_);
}

void
Machine::setScheduler(Scheduler scheduler)
{
    scheduler_ = std::move(scheduler);
}

void
Machine::setSampler(CycleSampler *sampler, Tick interval_cycles)
{
    sampler_ = sampler;
    sampleInterval_ = interval_cycles > 0 ? interval_cycles : 1;
    nextSampleAt_ = stats_.cycles + sampleInterval_;
}

void
Machine::setBoundarySampler(BoundarySampler *sampler,
                            Tick interval_cycles)
{
    bsampler_ = sampler;
    bsampleInterval_ = interval_cycles > 0 ? interval_cycles : 1;
    bsampleNextAt_ = stats_.cycles + bsampleInterval_;
}

void
Machine::setProbeSink(ProbeSink *sink, std::vector<ProbeRange> armed)
{
    probes_ = sink;
    armed_ = std::move(armed);
    if (sink == nullptr)
        armed_.clear();
    armedMin_ = ~static_cast<CodeByteAddr>(0);
    armedMax_ = 0;
    for (const ProbeRange &r : armed_) {
        armedMin_ = std::min(armedMin_, r.begin);
        armedMax_ = std::max(armedMax_, r.end);
    }
    if (accel_) {
        accel_->stats.probeSites += static_cast<CountT>(armed_.size());
        // Selective deopt: drop just the superblocks intersecting an
        // armed range (and null chain pointers into them), so probed
        // PCs re-enter through the outer loop's armed check while
        // everything else keeps its blocks. Also restores the
        // invariant the threaded chain-follow relies on: no live
        // block or chain targets an armed entry.
        if (sblocks_)
            for (const ProbeRange &r : armed_)
                sblocks_->invalidateRange(r.begin, r.end, stats_,
                                          accel_->stats);
    }
}

void
Machine::fireBoundarySample()
{
    // The accelerated loops only reach here at boundaries where their
    // register-held deltas have been spilled; the block-granular
    // opcode/length histograms and accel counters may still be
    // deferred, so fold them now — samples must read a
    // self-consistent machine.
    if (sblocks_ && accel_)
        sblocks_->flushDeferred(stats_, accel_->stats);
    // Same catch-up discipline as the exact sampler: advance strictly
    // past the current cycle count so each interval fires once.
    do {
        bsampleNextAt_ += bsampleInterval_;
    } while (bsampleNextAt_ <= stats_.cycles);
    bsampler_->onBoundarySample(*this);
    // The anchor is only meaningful inside the callback; the threaded
    // loop sets it just before calling here, everything else leaves
    // it 0.
    bsampleAnchorPc_ = 0;
}

void
Machine::setRetained(Addr frame_ptr, bool retained)
{
    heap_.setRetained(frame_ptr, retained);
    if (frame_ptr == lf_)
        curFrameRetainedHint_ = retained;
}

void
Machine::resetStats()
{
    stats_ = MachineStats();
    if (accel_)
        accel_->stats = AccelStats();
}

Word
Machine::inspectVar(Addr frame_ptr, unsigned index) const
{
    const unsigned offset = frame::varsOffset + index;
    if (banked() && offset < banks_.bankWords()) {
        const int bank = banks_.bankOf(frame_ptr);
        if (bank >= 0)
            return banks_.read(bank, offset);
    }
    return mem_.peek(frame_ptr + offset);
}

// ---------------------------------------------------------------------
// Program control
// ---------------------------------------------------------------------

void
Machine::start(const std::string &module_name,
               const std::string &proc_name, std::span<const Word> args)
{
    startContext(image_.procDescriptor(module_name, proc_name), args);
}

void
Machine::startContext(Word descriptor, std::span<const Word> args)
{
    stop_ = StopReason::Running;
    result_ = RunResult();
    // The entry call resolves before run()'s per-burst epoch poll
    // gets a chance: catch host-side patches (loader, relocator)
    // that happened between runs here.
    if (accel_)
        accel_->sync(mem_.codeEpoch());
    for (Word a : args)
        push(a);
    callDescriptor(descriptor, XferKind::ExtCall);
}

RunResult
Machine::run()
{
    // With no preemption configured, maybePreempt() is a no-op and the
    // fast path batches the per-step bookkeeping: the stop/step-limit
    // checks and the code-epoch poll move to burst granularity, the
    // pure-sum counters accumulate in a BurstAcc, and the inner loop
    // is just the step core. The epoch cannot move inside a burst —
    // the machine itself never pokes memory while running — so
    // per-burst sync is exact; host-side patching between step() or
    // run() calls is caught at the next (re)entry. An attached
    // observer forces the eager loop: XFER records stamp absolute
    // cycles/steps, which batched accounting would skew. An attached
    // sampler does too: sample points are defined as step boundaries
    // crossing cycle-interval multiples, which burst-granular cycle
    // accounting would move.
    const bool preemptible =
        config_.timesliceSteps != 0 && scheduler_ != nullptr;
    constexpr std::uint64_t burstSteps = 4096;

    std::uint64_t steps = 0;
    try {
        if (sblocks_ && !preemptible && observer_ == nullptr &&
            sampler_ == nullptr) {
            // Threaded-code backend: same gating rules as bursts (an
            // observer, sampler, or preemption forces the eager loop
            // below), same simulated numbers, faster dispatch.
            if (banked())
                threadedLoopT<true>(steps);
            else
                threadedLoopT<false>(steps);
        } else if (accel_ && !preemptible && observer_ == nullptr &&
                   sampler_ == nullptr) {
            while (stop_ == StopReason::Running) {
                if (steps >= config_.maxSteps) {
                    stopWith(StopReason::StepLimit,
                             "step budget exhausted");
                    break;
                }
                accel_->sync(mem_.codeEpoch());
                const std::uint64_t burst =
                    std::min(burstSteps, config_.maxSteps - steps);
                std::uint64_t done = 0;
                BurstAcc acc;
                const auto flush = [&] {
                    // acc.steps includes a step that threw (it is
                    // bumped before execute, exactly like the eager
                    // counter); `done` counts only completed steps,
                    // exactly like the plain loop's run total.
                    stats_.steps += acc.steps;
                    stats_.cycles +=
                        acc.steps * config_.latency.decodeCycles;
                    mem_.chargeCodeBytes(acc.codeBytes);
                    accel_->stats.icacheMisses += acc.icacheMisses;
                    if (acc.steps >= acc.icacheMisses)
                        accel_->stats.icacheHits +=
                            acc.steps - acc.icacheMisses;
                };
                const bool armedChk =
                    probes_ != nullptr && !armed_.empty();
                try {
                    if (armedChk) {
                        // Selective deopt at burst granularity: a PC
                        // inside an armed range takes one exact eager
                        // step with the pending burst accounting
                        // flushed first, so probe events there read
                        // exact absolute stamps; unprobed code stays
                        // batched.
                        while (done < burst &&
                               stop_ == StopReason::Running) {
                            if (pcArmed(pcAbs_)) [[unlikely]] {
                                flush();
                                acc = BurstAcc();
                                ++accel_->stats.probeEagerSteps;
                                stepCoreT<true, false>();
                            } else {
                                stepCoreT<true, true>(&acc);
                            }
                            ++done;
                        }
                    } else {
                        while (done < burst &&
                               stop_ == StopReason::Running) {
                            stepCoreT<true, true>(&acc);
                            ++done;
                        }
                    }
                } catch (...) {
                    flush();
                    steps += done;
                    throw;
                }
                flush();
                steps += done;
                // Boundary sampling: the per-burst flush above folded
                // every batched counter, so this is an exact point —
                // slop is bounded by one burst. Anchor to the last
                // executed instruction: when the budget expires inside
                // a transfer, pc() already points at the destination,
                // but the cycles belong to the source — the same
                // charge-to-source convention the exact profiler uses.
                if (bsampler_ != nullptr &&
                    stats_.cycles >= bsampleNextAt_) [[unlikely]] {
                    bsampleAnchorPc_ = instStart_;
                    fireBoundarySample();
                }
            }
        } else {
            while (stop_ == StopReason::Running) {
                if (steps >= config_.maxSteps) {
                    stopWith(StopReason::StepLimit,
                             "step budget exhausted");
                    break;
                }
                step();
                ++steps;
            }
        }
    } catch (const FatalError &err) {
        stopWith(StopReason::Error, err.what());
    }
    result_.steps += steps;
    return result_;
}

void
Machine::stopWith(StopReason reason, std::string message)
{
    stop_ = reason;
    result_.reason = reason;
    result_.message = std::move(message);
}

void
Machine::step()
{
    if (stop_ != StopReason::Running)
        return;
    if (accel_)
        accel_->sync(mem_.codeEpoch());
    stepCore();
    maybePreempt();
    if (sampler_ != nullptr && stats_.cycles >= nextSampleAt_)
        [[unlikely]] {
        // Catch up past multi-cycle instructions so the next fire is
        // strictly in the future; the sampler only reads state, so no
        // simulated cost is charged here.
        do {
            nextSampleAt_ += sampleInterval_;
        } while (nextSampleAt_ <= stats_.cycles);
        sampler_->onSample(*this);
    }
    if (bsampler_ != nullptr && stats_.cycles >= bsampleNextAt_)
        [[unlikely]] {
        // Anchor to the instruction that spent the cycles: a transfer
        // that expires the budget has already moved pc() to its
        // destination, but the exact profiler charges its cost to the
        // source.
        bsampleAnchorPc_ = instStart_;
        fireBoundarySample();
    }
}

void
Machine::stepCore()
{
    if (accel_)
        stepCoreT<true>();
    else
        stepCoreT<false>();
}

template <bool WithAccel, bool Batched>
void
Machine::stepCoreT(BurstAcc *acc)
{
    instStart_ = pcAbs_;
    isa::Inst decoded;
    const isa::Inst *inst;
    if constexpr (WithAccel) {
        // The real decode fetches exactly inst.length code bytes (no
        // cycles: the IFU prefetches); a hit replays that. Executing
        // through the cached entry is safe: the icache is only
        // written here, never during execute(). The batched loop uses
        // the counter-free probe and recovers the hit count at burst
        // flush.
        const isa::Inst *cached = Batched ? accel_->probeInst(pcAbs_)
                                          : accel_->findInst(pcAbs_);
        if (cached) {
            if constexpr (Batched)
                acc->codeBytes += cached->length;
            else
                mem_.chargeCodeBytes(cached->length);
            inst = cached;
        } else {
            if constexpr (Batched)
                ++acc->icacheMisses;
            decoded = isa::decode(
                [this](unsigned i) { return fetchCodeByte(i); });
            accel_->storeInst(pcAbs_, decoded);
            inst = &decoded;
        }
    } else {
        decoded = isa::decode(
            [this](unsigned i) { return fetchCodeByte(i); });
        inst = &decoded;
    }
    pcAbs_ += inst->length;

    if constexpr (Batched) {
        // steps and decode cycles flush at burst end: the count is
        // the accumulated steps, the cycles are steps x decodeCycles.
        ++acc->steps;
    } else {
        ++stats_.steps;
        stats_.cycles += config_.latency.decodeCycles;
    }
    ++stats_.opCount[static_cast<std::uint8_t>(inst->op)];
    if (inst->length < stats_.instLenCount.size())
        ++stats_.instLenCount[inst->length];

    execute(*inst);
}

void
Machine::chargeLinkWalk(CountT table_reads, CountT code_bytes)
{
    stats_.cycles += config_.latency.memCycles * table_reads;
    mem_.chargeReads(AccessKind::Table, table_reads);
    mem_.chargeCodeBytes(code_bytes);
}

void
Machine::maybePreempt()
{
    if (config_.timesliceSteps == 0 || !scheduler_ ||
        stop_ != StopReason::Running)
        return;
    if (sliceLeft_ > 1) {
        --sliceLeft_;
    } else {
        switchPending_ = true;
        sliceLeft_ = config_.timesliceSteps;
    }
    // The switch waits for an interruptible point: instruction
    // boundary, empty evaluation stack, a live frame. (§3: the timer
    // trap is just another XFER; Mesa requires the stack empty.)
    if (!switchPending_ || sp_ != 0 || lf_ == nilAddr)
        return;
    switchPending_ = false;
    ++stats_.preemptions;
    preempting_ = true;
    processSwitch();
    preempting_ = false;
}

// ---------------------------------------------------------------------
// Instruction execution
// ---------------------------------------------------------------------

void
Machine::execute(const isa::Inst &inst)
{
    using isa::OpClass;

    switch (inst.cls) {
      case OpClass::Noop:
        break;
      case OpClass::Halt:
        stopWith(StopReason::Halted, "HALT");
        break;
      case OpClass::Dup: {
        const Word v = pop();
        push(v);
        push(v);
        break;
      }
      case OpClass::Drop:
        pop();
        break;
      case OpClass::Exch: {
        const Word a = pop();
        const Word b = pop();
        push(a);
        push(b);
        break;
      }
      case OpClass::Out:
        output_.push_back(pop());
        break;
      case OpClass::LoadRetCtx:
        push(returnCtx_);
        break;
      case OpClass::Xfer:
        xferTo(pop());
        break;
      case OpClass::Ret:
        doReturn();
        break;
      case OpClass::Brk:
        trap(1, "BRK trap");
        break;
      case OpClass::Yield:
        processSwitch();
        break;

      case OpClass::LoadLocal:
        push(readVar(static_cast<unsigned>(inst.operand)));
        break;
      case OpClass::StoreLocal:
        writeVar(static_cast<unsigned>(inst.operand), pop());
        break;
      case OpClass::LoadLocalAddr: {
        // §7.4 (C1/C2): the variable must have an address, and the
        // register copy must not go stale. The conservative policy:
        // flag the frame and flush/drop its bank, making storage the
        // only copy from here on.
        if (banked() && curLbank_ >= 0)
            dropCurrentBank();
        const Addr addr =
            lf_ + frame::varsOffset + static_cast<unsigned>(inst.operand);
        push(static_cast<Word>(addr));
        break;
      }
      case OpClass::LoadGlobal:
        push(readGlobal(static_cast<unsigned>(inst.operand)));
        break;
      case OpClass::StoreGlobal:
        writeGlobal(static_cast<unsigned>(inst.operand), pop());
        break;
      case OpClass::LoadImm:
        push(static_cast<Word>(inst.operand));
        break;

      case OpClass::LoadIndirect: {
        const Addr addr = pop();
        Word value = 0;
        if (banked() && divertToBank(addr, false, value)) {
            push(value);
        } else {
            push(readData(addr));
        }
        break;
      }
      case OpClass::StoreIndirect: {
        const Addr addr = pop();
        Word value = pop();
        if (!(banked() && divertToBank(addr, true, value)))
            writeData(addr, value);
        break;
      }
      case OpClass::ReadField: {
        const Addr addr = pop();
        push(readData(addr + static_cast<unsigned>(inst.operand)));
        break;
      }
      case OpClass::WriteField: {
        const Addr addr = pop();
        const Word value = pop();
        writeData(addr + static_cast<unsigned>(inst.operand), value);
        break;
      }
      case OpClass::LoadDesc:
        push(readMem(gf_ - 1 - static_cast<unsigned>(inst.operand),
                     AccessKind::Table));
        break;

      case OpClass::Arith:
        execArith(inst.op);
        break;
      case OpClass::Compare:
        execCompare(inst.op);
        break;

      case OpClass::Jump:
        pcAbs_ = instStart_ + inst.operand;
        break;
      case OpClass::JumpZero:
        if (pop() == 0)
            pcAbs_ = instStart_ + inst.operand;
        break;
      case OpClass::JumpNotZero:
        if (pop() != 0)
            pcAbs_ = instStart_ + inst.operand;
        break;

      case OpClass::ExtCall:
        callExternal(static_cast<unsigned>(inst.operand));
        break;
      case OpClass::LocalCall:
        callLocal(static_cast<unsigned>(inst.operand));
        break;
      case OpClass::DirectCall:
        callDirect(static_cast<CodeByteAddr>(inst.operand));
        break;
      case OpClass::ShortDirectCall:
        callDirect(instStart_ + inst.operand);
        break;
      case OpClass::FatCall:
        callFat(static_cast<CodeByteAddr>(inst.operand),
                static_cast<Addr>(inst.operand2));
        break;

      case OpClass::Illegal:
        trap(4, strfmt("illegal opcode {} at {}",
                       static_cast<int>(
                           static_cast<std::uint8_t>(inst.op)),
                       instStart_));
        break;
      default:
        panic("unhandled op class");
    }
}

namespace
{

/** Two-operand ALU result; reports division by zero instead of
 *  dividing, so both execArith paths trap identically. */
Word
arithResult(isa::Op op, Word a, Word b, bool &div_zero)
{
    using isa::Op;
    switch (op) {
      case Op::ADD:
        return static_cast<Word>(a + b);
      case Op::SUB:
        return static_cast<Word>(a - b);
      case Op::MUL:
        return static_cast<Word>(
            static_cast<SDWord>(static_cast<SWord>(a)) *
            static_cast<SWord>(b));
      case Op::DIV:
        if (b == 0) {
            div_zero = true;
            return 0;
        }
        return static_cast<Word>(static_cast<SWord>(a) /
                                 static_cast<SWord>(b));
      case Op::MOD:
        if (b == 0) {
            div_zero = true;
            return 0;
        }
        return static_cast<Word>(static_cast<SWord>(a) %
                                 static_cast<SWord>(b));
      case Op::AND:
        return static_cast<Word>(a & b);
      case Op::IOR:
        return static_cast<Word>(a | b);
      case Op::XOR:
        return static_cast<Word>(a ^ b);
      case Op::SHL:
        return static_cast<Word>(b >= 16 ? 0 : a << b);
      case Op::SHR:
        return static_cast<Word>(b >= 16 ? 0 : a >> b);
      default:
        panic("execArith: bad op");
    }
}

bool
compareResult(isa::Op op, SWord a, SWord b)
{
    using isa::Op;
    switch (op) {
      case Op::LT: return a < b;
      case Op::LE: return a <= b;
      case Op::EQ: return a == b;
      case Op::NE: return a != b;
      case Op::GE: return a >= b;
      case Op::GT: return a > b;
      default: panic("execCompare: bad op");
    }
}

} // namespace

void
Machine::execArith(isa::Op op)
{
    using isa::Op;
    if (op == Op::NEG || op == Op::NOT) {
        // Unary: pop-then-push is a net stack effect of zero, so with
        // an operand present the value can be rewritten in place.
        // push()/pop() charge no simulated cost — skipping their
        // checks changes nothing simulated.
        if (sp_ >= 1) [[likely]] {
            const unsigned top = sp_ - 1;
            if (banked()) {
                const Word v =
                    banks_.readOwned(stackBank_, frame::varsOffset + top);
                banks_.writeOwned(
                    stackBank_, frame::varsOffset + top,
                    op == Op::NEG
                        ? static_cast<Word>(-static_cast<SWord>(v))
                        : static_cast<Word>(~v));
            } else {
                const Word v = stack_[top];
                stack_[top] =
                    op == Op::NEG
                        ? static_cast<Word>(-static_cast<SWord>(v))
                        : static_cast<Word>(~v);
            }
            return;
        }
        const Word v = pop();
        push(op == Op::NEG ? static_cast<Word>(-static_cast<SWord>(v))
                           : static_cast<Word>(~v));
        return;
    }

    if (sp_ >= 2) [[likely]] {
        // Binary fast path: with both operands present the pops
        // cannot underflow and the in-place result store cannot
        // overflow (net stack effect -1, and sp_ <= stackCap_ is a
        // push() invariant).
        const unsigned base = sp_ - 2;
        Word a, b;
        if (banked()) {
            a = banks_.readOwned(stackBank_, frame::varsOffset + base);
            b = banks_.readOwned(stackBank_,
                                 frame::varsOffset + base + 1);
        } else {
            a = stack_[base];
            b = stack_[base + 1];
        }
        bool div_zero = false;
        const Word r = arithResult(op, a, b, div_zero);
        sp_ = base;
        if (div_zero) [[unlikely]] {
            trap(5, "division by zero");
            return;
        }
        if (banked())
            banks_.writeOwned(stackBank_, frame::varsOffset + base, r);
        else
            stack_[base] = r;
        sp_ = base + 1;
        return;
    }

    // Underflow path: keep the original pop/pop sequence so the trap
    // order and the post-trap state are exactly the historical ones.
    const Word b = pop();
    const Word a = pop();
    bool div_zero = false;
    const Word r = arithResult(op, a, b, div_zero);
    if (div_zero) {
        trap(5, "division by zero");
        return;
    }
    push(r);
}

void
Machine::execCompare(isa::Op op)
{
    if (sp_ >= 2) [[likely]] {
        // Same in-place fast path as execArith's binary case.
        const unsigned base = sp_ - 2;
        SWord a, b;
        if (banked()) {
            a = static_cast<SWord>(
                banks_.readOwned(stackBank_, frame::varsOffset + base));
            b = static_cast<SWord>(banks_.readOwned(
                stackBank_, frame::varsOffset + base + 1));
        } else {
            a = static_cast<SWord>(stack_[base]);
            b = static_cast<SWord>(stack_[base + 1]);
        }
        const Word r = compareResult(op, a, b) ? 1 : 0;
        if (banked())
            banks_.writeOwned(stackBank_, frame::varsOffset + base, r);
        else
            stack_[base] = r;
        sp_ = base + 1;
        return;
    }

    const auto b = static_cast<SWord>(pop());
    const auto a = static_cast<SWord>(pop());
    push(compareResult(op, a, b) ? 1 : 0);
}

} // namespace fpc
