#include "machine/banks.hh"

#include "common/logging.hh"

namespace fpc
{

BankFile::BankFile(unsigned num_banks, unsigned bank_words)
    : bankWords_(bank_words)
{
    if (num_banks < 2)
        panic("BankFile: at least two banks are required (stack + "
              "frame)");
    if (bank_words < 8 || bank_words > 32)
        panic("BankFile: bank size {} out of the modelled range",
              bank_words);
    banks_.resize(num_banks);
    numBanks_ = num_banks;
    for (auto &b : banks_)
        b.data.assign(bank_words, 0);
}

int
BankFile::bankOf(Addr frame_ptr) const
{
    for (unsigned i = 0; i < banks_.size(); ++i)
        if (!banks_[i].free && banks_[i].owner == frame_ptr)
            return static_cast<int>(i);
    return -1;
}

int
BankFile::assignFree(Addr frame_ptr)
{
    for (unsigned i = 0; i < banks_.size(); ++i) {
        if (banks_[i].free) {
            banks_[i].free = false;
            banks_[i].owner = frame_ptr;
            banks_[i].dirty = 0;
            banks_[i].assignedAt = ++clock_;
            banks_[i].ownerFsi = 0;
            return static_cast<int>(i);
        }
    }
    return -1;
}

int
BankFile::victim(int pinned_a, int pinned_b) const
{
    int best = -1;
    for (unsigned i = 0; i < banks_.size(); ++i) {
        const int bi = static_cast<int>(i);
        if (banks_[i].free || bi == pinned_a || bi == pinned_b)
            continue;
        if (best < 0 || banks_[i].assignedAt < banks_[best].assignedAt)
            best = bi;
    }
    return best;
}

void
BankFile::rename(int bank, Addr new_owner)
{
    Bank &b = banks_.at(bank);
    if (b.free)
        panic("rename of a free bank");
    b.owner = new_owner;
    b.assignedAt = ++clock_;
}

void
BankFile::free(int bank)
{
    Bank &b = banks_.at(bank);
    b.free = true;
    b.owner = nilAddr;
    b.dirty = 0;
    b.ownerFsi = 0;
}

void
BankFile::bankRangePanic(int bank, unsigned word) const
{
    panic("bank access out of range (bank {}, word {})", bank, word);
}

void
BankFile::setOwnerFsi(int bank, unsigned fsi)
{
    banks_.at(bank).ownerFsi = fsi;
}

void
BankFile::reset()
{
    for (auto &b : banks_) {
        b.free = true;
        b.owner = nilAddr;
        b.dirty = 0;
        b.ownerFsi = 0;
    }
}

} // namespace fpc
