#include "machine/digest.hh"

#include "machine/machine.hh"

namespace fpc
{

namespace
{

/** Separate the digest's sections so reordered state cannot alias. */
constexpr std::uint64_t
section(std::uint64_t h, std::uint8_t tag)
{
    return fnv1aByte(h, tag);
}

std::uint64_t
digestArch(std::uint64_t h, const Machine &m)
{
    h = section(h, 'R');
    h = fnv1aWord(h, m.pc());
    h = fnv1aWord(h, m.currentGlobalFrame());
    h = section(h, 'S');
    h = fnv1aWord(h, m.stackDepth());
    for (unsigned i = 0; i < m.stackDepth(); ++i)
        h = fnv1aWord(h, m.stackAt(i));
    h = section(h, 'O');
    h = fnv1aWord(h, m.output().size());
    for (const Word v : m.output())
        h = fnv1aWord(h, v);
    return h;
}

std::uint64_t
digestMicro(std::uint64_t h, const Machine &m)
{
    // Frame registers: engine-dependent (I4 allocates fast frames in
    // its own order), so these live outside the Arch scope.
    h = section(h, 'F');
    h = fnv1aWord(h, m.currentFrame());
    h = fnv1aWord(h, m.returnContext());

    // IFU return stack (I3/I4): resident entry frames, innermost last.
    h = section(h, 'I');
    const std::vector<Addr> ret = m.returnStackFrames();
    h = fnv1aWord(h, ret.size());
    for (const Addr frame : ret)
        h = fnv1aWord(h, frame);

    // Register banks (I4): ownership and resident contents. Free
    // banks contribute only their tag — their data is garbage.
    h = section(h, 'B');
    const BankFile &banks = m.banks();
    h = fnv1aWord(h, banks.numBanks());
    h = fnv1aWord(h, static_cast<std::uint64_t>(
                         static_cast<std::int64_t>(m.currentLbank())));
    h = fnv1aWord(h,
                  static_cast<std::uint64_t>(
                      static_cast<std::int64_t>(m.currentStackBank())));
    for (unsigned b = 0; b < banks.numBanks(); ++b) {
        const int bank = static_cast<int>(b);
        if (banks.isFree(bank)) {
            h = fnv1aByte(h, 0);
            continue;
        }
        h = fnv1aByte(h, 1);
        h = fnv1aWord(h, banks.owner(bank));
        for (unsigned w = 0; w < banks.bankWords(); ++w)
            h = fnv1aWord(h, banks.readOwned(bank, w));
    }
    h = fnv1aWord(h, m.fastFrameStackSize());

    // Frame heap: the AV free lists and the live census.
    h = section(h, 'H');
    const FrameHeap &heap = m.heap();
    h = fnv1aWord(h, heap.stats().liveFrames());
    h = fnv1aWord(h, heap.stats().allocs);
    h = fnv1aWord(h, heap.stats().frees);
    h = fnv1aWord(h, heap.regionRemaining());
    const unsigned classes = heap.classes().numClasses();
    h = fnv1aWord(h, classes);
    for (unsigned c = 0; c < classes; ++c)
        h = fnv1aWord(h, heap.freeListLength(c));
    return h;
}

} // namespace

std::uint64_t
stateDigest(const Machine &machine, DigestScope scope)
{
    std::uint64_t h = fnvOffsetBasis;
    h = digestArch(h, machine);
    if (scope == DigestScope::Full)
        h = digestMicro(h, machine);
    return h;
}

} // namespace fpc
