/**
 * @file
 * The four realizations of XFER (paper §4–§7): descriptor resolution,
 * frame allocation and release, the IFU return stack, register-bank
 * renaming, and the orderly fallbacks that keep the general model
 * intact under every discipline.
 */

#include <algorithm>

#include "common/logging.hh"
#include "machine/machine.hh"

namespace fpc
{

namespace
{
constexpr Addr stackOwner = 0xFFFFFFFFu;

unsigned
kindIndex(XferKind kind)
{
    return static_cast<unsigned>(kind);
}
} // namespace

/**
 * Measures one transfer: storage references and cycles consumed, and
 * whether it ran at unconditional-jump cost (no storage references,
 * no IFU redirect) — the paper's headline metric.
 */
struct Machine::XferProbe
{
    Machine &m;
    XferKind kind;
    CountT refs0;
    Tick cycles0;
    Word srcCtx = nilContext;

    XferProbe(Machine &machine, XferKind k)
        : m(machine), kind(k), refs0(machine.mem_.totalRefs()),
          cycles0(machine.stats_.cycles)
    {
        m.xferRedirected_ = false;
        if (m.observer_ != nullptr)
            srcCtx = m.currentFrameContext();
    }

    ~XferProbe()
    {
        const CountT refs = m.mem_.totalRefs() - refs0;
        const Tick cycles = m.stats_.cycles - cycles0;
        auto &s = m.stats_;
        ++s.xferCount[kindIndex(kind)];
        s.xferRefs[kindIndex(kind)].sample(static_cast<double>(refs));
        s.xferCycles[kindIndex(kind)].sample(
            static_cast<double>(cycles));
        if (refs == 0 && !m.xferRedirected_)
            ++s.xferFast[kindIndex(kind)];
        // Dynamic probes sample the same deltas; the deferred
        // burst/threaded counters are constant across the member
        // transfer code bracketed here, so refs/cycles are exact
        // under every backend (machine.hh ProbeSink contract).
        if (m.probes_ != nullptr)
            m.probes_->onProbeXfer(kind, refs, cycles, m);
        if (m.observer_ != nullptr) {
            XferRecord rec;
            rec.kind = kind;
            rec.srcCtx = srcCtx;
            rec.dstCtx = m.currentFrameContext();
            rec.frame = m.lf_;
            rec.pc = m.pcAbs_;
            rec.start = cycles0;
            rec.end = m.stats_.cycles;
            rec.refs = refs;
            rec.step = m.stats_.steps;
            m.observer_->onXfer(rec);
        }
    }
};

// ---------------------------------------------------------------------
// Register banks (I4)
// ---------------------------------------------------------------------

int
Machine::acquireBank(Addr new_owner, int pinned_a, int pinned_b)
{
    int bank = banks_.assignFree(new_owner);
    if (bank >= 0)
        return bank;
    const int victim = banks_.victim(pinned_a, pinned_b);
    if (victim < 0)
        panic("no evictable register bank");
    // "If an overflow occurs ... the contents of the oldest bank is
    // written out into the frame." (§7.1)
    ++stats_.bankOverflows;
    if (banks_.owner(victim) != stackOwner)
        flushBank(victim);
    banks_.free(victim);
    bank = banks_.assignFree(new_owner);
    if (bank < 0)
        panic("bank acquisition failed after eviction");
    return bank;
}

void
Machine::flushBank(int bank)
{
    const Addr owner = banks_.owner(bank);
    if (owner == stackOwner || owner == nilAddr)
        return;
    const std::uint32_t dirty = banks_.dirtyMask(bank);
    for (unsigned w = 0; w < banks_.bankWords(); ++w) {
        if (config_.flushDirtyOnly && !(dirty & (1u << w)))
            continue;
        writeMem(owner + w, banks_.read(bank, w),
                 AccessKind::FrameState);
        ++stats_.bankFlushWords;
    }
    banks_.markClean(bank);
}

int
Machine::loadBankFor(Addr frame_ptr)
{
    // A flagged frame (§7.4) lives in storage only.
    const Word header = readMem(frame_ptr - 1, AccessKind::FrameState);
    if (header & frame::flaggedFlag)
        return -1;
    const unsigned fsi = header & frame::fsiMask;
    const unsigned words = std::min<unsigned>(
        banks_.bankWords(), image_.classes().classWords(fsi));

    const int bank = acquireBank(frame_ptr, stackBank_, curLbank_);
    for (unsigned w = 0; w < words; ++w)
        banks_.write(bank, w,
                     readMem(frame_ptr + w, AccessKind::FrameState));
    banks_.markClean(bank);
    banks_.setOwnerFsi(bank, fsi);
    stats_.bankLoadWords += words;
    return bank;
}

void
Machine::flushAllBanks()
{
    // Preserve the evaluation stack across the full flush.
    std::vector<Word> saved;
    saved.reserve(sp_);
    for (unsigned i = 0; i < sp_; ++i)
        saved.push_back(banks_.read(stackBank_,
                                    frame::varsOffset + i));

    for (unsigned b = 0; b < banks_.numBanks(); ++b) {
        if (banks_.isFree(b))
            continue;
        if (banks_.owner(b) != stackOwner)
            flushBank(b);
        banks_.free(b);
    }
    curLbank_ = -1;
    stackBank_ = banks_.assignFree(stackOwner);
    for (unsigned i = 0; i < saved.size(); ++i)
        banks_.write(stackBank_, frame::varsOffset + i, saved[i]);
}

void
Machine::dropCurrentBank()
{
    // §7.4 C1/C2 conservative policy: once a pointer to a local
    // exists, the frame is flagged and storage becomes the only copy.
    flushBank(curLbank_);
    banks_.free(curLbank_);
    curLbank_ = -1;
    if (!curFrameFlagged_) {
        ++stats_.flaggedFrames;
        curFrameFlagged_ = true;
        Word header = readMem(lf_ - 1, AccessKind::FrameState);
        header |= frame::flaggedFlag;
        writeMem(lf_ - 1, header, AccessKind::FrameState);
    }
}

bool
Machine::divertToBank(Addr addr, bool is_write, Word &value)
{
    // §7.4 C2: a storage reference into the frame region must check
    // the addresses shadowed by register banks and divert.
    if (!layout_.isFrameAddr(addr))
        return false;
    for (unsigned b = 0; b < banks_.numBanks(); ++b) {
        if (banks_.isFree(b) || banks_.owner(b) == stackOwner)
            continue;
        const Addr owner = banks_.owner(b);
        if (addr >= owner && addr < owner + banks_.bankWords()) {
            ++stats_.bankDiverts;
            stats_.cycles += config_.latency.regCycles;
            if (is_write)
                banks_.write(b, addr - owner, value);
            else
                value = banks_.read(b, addr - owner);
            return true;
        }
    }
    return false;
}

// ---------------------------------------------------------------------
// Frame allocation / release
// ---------------------------------------------------------------------

Machine::AllocResult
Machine::allocFrame(unsigned fsi)
{
    // §7.1: "a reasonable strategy is to make the smallest frame size
    // the 80 bytes just cited" — every small frame is standard-sized,
    // so it can recycle through the processor's stack of free frames.
    // (The paper notes the drawback: deep recursion can hold many
    // 80-byte frames with few words used.)
    if (banked() && fastFramesEnabled_ && fsi <= fastFsi_) {
        if (!fastFrames_.empty()) {
            // "allocation will be extremely fast; furthermore, it can
            // be done in parallel with the rest of an XFER operation."
            const Addr lf = fastFrames_.back();
            fastFrames_.pop_back();
            ++stats_.fastFrameAllocs;
            if (probes_ != nullptr)
                probes_->onProbeFrameAlloc(fastFsi_, true, *this);
            return {lf, fastFsi_, true};
        }
        // Underflow: fall back to the AV heap, still standard-sized.
        ++stats_.slowFrameAllocs;
        const CountT refs0 = mem_.totalRefs();
        const Addr lf = heap_.alloc(fastFsi_);
        stats_.cycles +=
            config_.latency.memCycles * (mem_.totalRefs() - refs0);
        if (probes_ != nullptr)
            probes_->onProbeFrameAlloc(fastFsi_, false, *this);
        return {lf, fastFsi_, false};
    }
    ++stats_.slowFrameAllocs;
    const CountT refs0 = mem_.totalRefs();
    const Addr lf = heap_.alloc(fsi);
    stats_.cycles +=
        config_.latency.memCycles * (mem_.totalRefs() - refs0);
    if (probes_ != nullptr)
        probes_->onProbeFrameAlloc(fsi, false, *this);
    return {lf, fsi, false};
}

void
Machine::releaseFrame(Addr frame_ptr, int bank)
{
    // Fast path: the current frame's size class and retained flag are
    // register hints carried by the return stack, so a standard,
    // unretained frame goes back on the processor's free stack with
    // no storage references at all.
    if (banked() && fastFramesEnabled_ && curFrameFsiValid_ &&
        frame_ptr == lf_ && curFrameFsi_ == fastFsi_ &&
        !curFrameRetainedHint_ && !curFrameFlagged_ &&
        fastFrames_.size() < config_.fastFrameStackDepth) {
        fastFrames_.push_back(frame_ptr);
        ++stats_.fastFrameFrees;
        if (bank >= 0)
            banks_.free(bank); // contents die with the frame
        if (probes_ != nullptr)
            probes_->onProbeFrameFree(fastFsi_, true, *this);
        return;
    }

    ++stats_.slowFrameFrees;
    const CountT refs0 = mem_.totalRefs();
    const bool freed = heap_.release(frame_ptr);
    stats_.cycles +=
        config_.latency.memCycles * (mem_.totalRefs() - refs0);
    if (bank >= 0) {
        if (!freed)
            flushBank(bank); // retained frame lives on in storage
        banks_.free(bank);
    }
    if (probes_ != nullptr) {
        // The slow path releases arbitrary frames; the size class is
        // only known when the register hint covers this frame.
        const unsigned fsi = curFrameFsiValid_ && frame_ptr == lf_
                                 ? curFrameFsi_
                                 : ~0u;
        probes_->onProbeFrameFree(fsi, false, *this);
    }
}

// ---------------------------------------------------------------------
// Descriptor resolution
// ---------------------------------------------------------------------

CodeByteAddr
Machine::currentCodeBase()
{
    if (!codeBaseValid_) {
        // "the code base is recovered from the global frame" (§5.3).
        const Word seg = readMem(gf_, AccessKind::Table);
        codeBase_ = layout_.codeSegBase(seg);
        codeBaseValid_ = true;
    }
    return codeBase_;
}

ProcTarget
Machine::resolveDescriptor(const Context &ctx)
{
    // Figure 1: descriptor -> GFT -> global frame -> entry vector.
    const Word gft_raw =
        readMem(layout_.gftAddr + ctx.env, AccessKind::Table);
    const GftEntry entry = unpackGftEntry(gft_raw, layout_);
    if (entry.gfAddr == nilAddr)
        fatal("XFER through an unbound GFT entry {}", ctx.env);

    ProcTarget target;
    target.gf = entry.gfAddr;
    const Word seg = readMem(target.gf, AccessKind::Table);
    target.codeBase = layout_.codeSegBase(seg);
    target.codeBaseValid = true;

    const unsigned ev_index = ctx.code + entry.bias * 32;
    const Word ev_offset = readMem(
        target.codeBase / wordBytes + ev_index, AccessKind::Table);

    // "This first byte gives the size of the procedure's frame."
    target.fsi = mem_.readByte(target.codeBase + ev_offset);
    target.entryPc = target.codeBase + ev_offset + 1;
    return target;
}

ProcTarget
Machine::resolveDirect(CodeByteAddr target_addr)
{
    // §6: "at p is stored the global frame address GF and the frame
    // size fsi, immediately followed by the first instruction." The
    // IFU reads these with the prefetch stream, so they are free.
    ProcTarget target;
    target.gf = (static_cast<Addr>(mem_.readByte(target_addr)) << 8) |
                mem_.readByte(target_addr + 1);
    target.fsi = (static_cast<unsigned>(
                      mem_.readByte(target_addr + 2))
                  << 8) |
                 mem_.readByte(target_addr + 3);
    target.codeBaseValid = false;
    target.entryPc = target_addr + 4;
    return target;
}

// ---------------------------------------------------------------------
// The transfers themselves
// ---------------------------------------------------------------------

void
Machine::callExternal(unsigned lv_index)
{
    XferProbe probe(*this, XferKind::ExtCall);
    // "The context is retrieved from LV."
    const Word desc = readMem(gf_ - 1 - lv_index, AccessKind::Table);
    dispatchContext(desc, XferKind::ExtCall, false);
}

void
Machine::callLocal(unsigned ev_index)
{
    XferProbe probe(*this, XferKind::LocalCall);
    // "This kind of call keeps the same environment and code base,
    // and has only one level of indirection."
    ProcTarget target;
    target.gf = gf_;
    // Stays a real (conditionally charged) read either way: whether
    // gf[0] must be fetched depends on live register state, not on
    // the cacheable (code base, EV index) -> (fsi, entry) mapping.
    target.codeBase = currentCodeBase();
    target.codeBaseValid = true;
    if (accel_ &&
        accel_->findLocal(target.codeBase, ev_index, target.fsi,
                          target.entryPc)) {
        chargeLinkWalk(1, 1); // the EV word read + the fsi byte
        finishCall(target, XferKind::LocalCall, false);
        return;
    }
    const Word ev_offset = readMem(
        target.codeBase / wordBytes + ev_index, AccessKind::Table);
    target.fsi = mem_.readByte(target.codeBase + ev_offset);
    target.entryPc = target.codeBase + ev_offset + 1;
    if (accel_)
        accel_->putLocal(target.codeBase, ev_index, target);
    finishCall(target, XferKind::LocalCall, false);
}

void
Machine::callDirect(CodeByteAddr target_addr)
{
    XferProbe probe(*this, XferKind::DirectCall);
    if (accel_) {
        ProcTarget target;
        if (accel_->findDirect(target_addr, target)) {
            mem_.chargeCodeBytes(4); // the GF/fsi header bytes
            finishCall(target, XferKind::DirectCall, ifuEnabled());
            return;
        }
        const ProcTarget resolved = resolveDirect(target_addr);
        accel_->putDirect(target_addr, resolved);
        finishCall(resolved, XferKind::DirectCall, ifuEnabled());
        return;
    }
    const ProcTarget target = resolveDirect(target_addr);
    finishCall(target, XferKind::DirectCall, ifuEnabled());
}

void
Machine::callFat(CodeByteAddr target_addr, Addr gf)
{
    XferProbe probe(*this, XferKind::FatCall);
    // §4: the descriptor was a literal in the instruction stream; only
    // the fsi byte comes from code, so that is all the cache holds.
    ProcTarget target;
    target.gf = gf;
    target.codeBaseValid = false;
    target.entryPc = target_addr + 1;
    if (accel_ && accel_->findFat(target_addr, target.fsi)) {
        mem_.chargeCodeBytes(1);
        finishCall(target, XferKind::FatCall, ifuEnabled());
        return;
    }
    target.fsi = mem_.readByte(target_addr);
    if (accel_)
        accel_->putFat(target_addr, target.fsi);
    finishCall(target, XferKind::FatCall, ifuEnabled());
}

void
Machine::callDescriptor(Word descriptor, XferKind kind)
{
    XferProbe probe(*this, kind);
    dispatchContext(descriptor, kind, false);
}

void
Machine::dispatchContext(Word ctx_word, XferKind kind, bool followable)
{
    const Context ctx = unpackContext(ctx_word, layout_);
    if (ctx.tag == Context::Tag::Proc) {
        // The memoizable Figure-1 walk. Keyed by the descriptor word
        // itself, so a program that rewrites an LV slot changes the
        // key, never the mapping; a hit replays the walk's exact
        // accounting (GFT word + gf[0] word + EV word, each a Table
        // read at memCycles, plus the fsi code byte).
        if (accel_) {
            ProcTarget target;
            if (accel_->findExt(ctx_word, target)) {
                chargeLinkWalk(3, 1);
            } else {
                target = resolveDescriptor(ctx);
                accel_->putExt(ctx_word, target);
            }
            finishCall(target, kind, followable);
            return;
        }
        finishCall(resolveDescriptor(ctx), kind, followable);
        return;
    }
    // F3: a frame context may be the destination of any XFER; the
    // discipline is chosen by the destination, not the caller.
    if (ctx.isNil()) {
        trap(6, "XFER to NIL context");
        return;
    }
    const Word ret_ctx = currentFrameContext();
    if (ifuEnabled())
        flushReturnStack();
    saveCurrentPc();
    resumeFrame(ctx.framePtr, kind);
    returnCtx_ = ret_ctx;
    chargeRedirect();
}

void
Machine::finishCall(const ProcTarget &target, XferKind kind,
                    bool followable)
{
    const Word ret_ctx = currentFrameContext();

    const AllocResult alloc = allocFrame(target.fsi);
    const Addr new_lf = alloc.framePtr;

    // Guard: the argument record must fit the frame's variable space.
    const unsigned payload = image_.classes().classWords(alloc.fsi);
    if (sp_ > payload - frame::varsOffset) {
        trap(7, "argument record overflows the new frame");
        return;
    }

    const bool call_like =
        kind == XferKind::ExtCall || kind == XferKind::LocalCall ||
        kind == XferKind::DirectCall || kind == XferKind::FatCall;
    const bool use_ret_stack =
        ifuEnabled() && call_like && lf_ != nilAddr;

    if (use_ret_stack) {
        // §6: the caller's PC and the callee's return link live in the
        // IFU return stack instead of storage. On overflow the oldest
        // entry is materialized into the frames to make room (the
        // whole-stack flush is reserved for unusual transfers).
        if (retStack_.size() >= config_.returnStackDepth)
            spillOldestReturnEntry();
        retStack_.push_back({lf_, gf_, pcAbs_, codeBase_,
                             codeBaseValid_, curLbank_, curFrameFsi_,
                             curFrameFsiValid_,
                             curFrameRetainedHint_});
    } else if (lf_ != nilAddr) {
        saveCurrentPc();
    }

    // Register-bank renaming (§7.2, Figure 3): the stack bank becomes
    // the callee's frame bank, so the arguments are already in place.
    int new_bank = -1;
    if (banked()) {
        new_bank = stackBank_;
        banks_.rename(new_bank, new_lf);
        banks_.setOwnerFsi(new_bank, alloc.fsi);
        curLbank_ = new_bank;
        curFrameFlagged_ = false;
        stackBank_ = acquireBank(stackOwner, new_bank, -1);
        sp_ = 0;
    } else {
        // I1-I3: the argument record moves from the working registers
        // into the frame.
        for (unsigned i = 0; i < sp_; ++i)
            writeData(new_lf + frame::varsOffset + i, stack_[i]);
        sp_ = 0;
    }

    // The frame's bookkeeping words. With the return stack the return
    // link stays in registers until a flush materializes it.
    const Addr old_lf = lf_;
    lf_ = new_lf;
    if (new_bank >= 0) {
        // The callee's bank is the one just renamed to new_lf, so the
        // writeFrameWord() bank scan would find exactly new_bank;
        // route there directly with the same register-access cost.
        if (!use_ret_stack) {
            stats_.cycles += config_.latency.regCycles;
            banks_.writeOwned(new_bank, frame::returnLinkOffset,
                              ret_ctx);
        }
        stats_.cycles += config_.latency.regCycles;
        banks_.writeOwned(new_bank, frame::globalFrameOffset,
                          static_cast<Word>(target.gf));
    } else {
        if (!use_ret_stack)
            writeFrameWord(new_lf, frame::returnLinkOffset, ret_ctx);
        writeFrameWord(new_lf, frame::globalFrameOffset,
                       static_cast<Word>(target.gf));
    }
    (void)old_lf;

    curFrameFsi_ = alloc.fsi;
    curFrameFsiValid_ = true;
    curFrameRetainedHint_ = false;

    returnCtx_ = ret_ctx;
    gf_ = target.gf;
    codeBase_ = target.codeBase;
    codeBaseValid_ = target.codeBaseValid;
    pcAbs_ = target.entryPc;
    curProcEntry_ = target.entryPc;

    if (!followable)
        chargeRedirect();
}

void
Machine::doReturn()
{
    XferProbe probe(*this, XferKind::Return);

    if (lf_ == nilAddr) {
        trap(8, "RETURN with no current frame");
        return;
    }
    const Addr dying = lf_;

    if (ifuEnabled() && !retStack_.empty()) {
        // §6: "if the return stack is empty, proceed as in §5.
        // Otherwise start fetching instructions from the PC value on
        // the return stack, and restore the frame and global frame
        // registers from those values."
        const RetEntry entry = retStack_.back();
        retStack_.pop_back();
        ++stats_.returnStackHits;

        releaseFrame(dying, banked() ? curLbank_ : -1);

        lf_ = entry.lf;
        gf_ = entry.gf;
        pcAbs_ = entry.pcAbs;
        codeBase_ = entry.codeBase;
        codeBaseValid_ = entry.codeBaseValid;
        curFrameFsi_ = entry.fsi;
        curFrameFsiValid_ = entry.fsiValid;
        curFrameRetainedHint_ = entry.retained;
        curFrameFlagged_ = false;

        if (banked()) {
            if (entry.lbank >= 0 && !banks_.isFree(entry.lbank) &&
                banks_.owner(entry.lbank) == entry.lf) {
                curLbank_ = entry.lbank;
            } else {
                ++stats_.bankUnderflows;
                curLbank_ = loadBankFor(entry.lf);
                curFrameFlagged_ = curLbank_ < 0;
            }
        }
        returnCtx_ = nilContext;
        // The caller's entry PC was not stacked; sampling profilers
        // fall back to pc()-based attribution until the next call.
        curProcEntry_ = 0;
        return; // followable: no redirect
    }

    ++stats_.returnStackMisses;

    // General path (§4/§5): pick up the return link, free the frame,
    // XFER to the link.
    const Word ret_link =
        readFrameWord(dying, frame::returnLinkOffset);
    const Context ctx = unpackContext(ret_link, layout_);
    if (ctx.tag == Context::Tag::Proc) {
        trap(9, "return link holds a procedure descriptor");
        return;
    }

    releaseFrame(dying, banked() ? curLbank_ : -1);
    lf_ = nilAddr;
    curLbank_ = -1;
    curFrameFsiValid_ = false;
    returnCtx_ = nilContext;

    if (ctx.isNil()) {
        // Returning out of the outermost context ends the run; the
        // results are on the stack.
        stopWith(StopReason::TopReturn, "top-level return");
        return;
    }

    resumeFrame(ctx.framePtr, XferKind::Return);
    chargeRedirect();
}

void
Machine::resumeFrame(Addr frame_ptr, XferKind kind)
{
    (void)kind;
    if (banked()) {
        int bank = banks_.bankOf(frame_ptr);
        if (bank < 0) {
            ++stats_.bankUnderflows;
            bank = loadBankFor(frame_ptr);
        }
        curLbank_ = bank;
        curFrameFlagged_ = bank < 0;
    }
    lf_ = frame_ptr;
    curFrameFsiValid_ = false;
    curFrameRetainedHint_ = false;
    curProcEntry_ = 0;

    gf_ = readFrameWord(frame_ptr, frame::globalFrameOffset);
    const Word seg = readMem(gf_, AccessKind::Table);
    codeBase_ = layout_.codeSegBase(seg);
    codeBaseValid_ = true;
    const Word rel = readFrameWord(frame_ptr, frame::savedPcOffset);
    pcAbs_ = codeBase_ + rel;
}

void
Machine::xferTo(Word ctx)
{
    XferProbe probe(*this, XferKind::Coroutine);
    if (ifuEnabled())
        flushReturnStack(); // any XFER besides simple call/return
    dispatchContext(ctx, XferKind::Coroutine, false);
}

void
Machine::xferKinded(Word ctx, XferKind kind)
{
    XferProbe probe(*this, kind);
    if (ifuEnabled())
        flushReturnStack();
    dispatchContext(ctx, kind, false);
}

void
Machine::processSwitch()
{
    if (!scheduler_) {
        trap(10, "YIELD with no scheduler");
        return;
    }
    const Word next = scheduler_(*this);
    XferProbe probe(*this, XferKind::ProcSwitch);
    if (ifuEnabled())
        flushReturnStack();
    if (banked())
        flushAllBanks(); // §7.1: process switch flushes all banks
    dispatchContext(next, XferKind::ProcSwitch, false);
}

void
Machine::resumeProcess(Word ctx)
{
    // A scheduler dispatch outside the interpreter loop: same XFER,
    // same fallback path as a YIELD-driven switch (§7.1: "a process
    // switch causes all the banks to be flushed").
    stop_ = StopReason::Running;
    result_ = RunResult();
    XferProbe probe(*this, XferKind::ProcSwitch);
    if (ifuEnabled())
        flushReturnStack();
    if (banked())
        flushAllBanks();
    dispatchContext(ctx, XferKind::ProcSwitch, false);
}

void
Machine::trap(Word code, const std::string &message)
{
    // The trap probe site hooks here rather than the XFER path:
    // an unhandled trap stops the run without ever constructing an
    // XferProbe, and probes should see it regardless.
    if (probes_ != nullptr)
        probes_->onProbeTrap(code, *this);
    if (trapCtx_ == nilContext) {
        stopWith(StopReason::Error, message);
        return;
    }
    const Word handler = trapCtx_;
    if (sp_ < stackCapacity())
        push(code);
    xferKinded(handler, XferKind::Trap);
}

/**
 * Write one return-stack entry into the frames: the entry's frame
 * becomes the returnLink of its child, and the entry's PC goes into
 * the entry frame's PC component (§6: "the frame pointer LF goes into
 * the returnLink component of the next higher frame, and the PC goes
 * into the PC component of LF. The global frame pointer can be
 * discarded").
 */
void
Machine::materializeEntry(const RetEntry &entry, Addr child)
{
    if (child != nilAddr) {
        writeFrameWord(child, frame::returnLinkOffset,
                       packFrameContext(entry.lf, layout_));
    }
    CodeByteAddr base = entry.codeBase;
    if (!entry.codeBaseValid) {
        const Word seg = readMem(entry.gf, AccessKind::Table);
        base = layout_.codeSegBase(seg);
    }
    writeFrameWord(entry.lf, frame::savedPcOffset,
                   static_cast<Word>(entry.pcAbs - base));
}

void
Machine::flushReturnStack()
{
    if (retStack_.empty())
        return;
    ++stats_.returnStackFlushes;

    Addr child = lf_;
    while (!retStack_.empty()) {
        const RetEntry entry = retStack_.back();
        retStack_.pop_back();
        ++stats_.returnStackFlushedEntries;
        materializeEntry(entry, child);
        child = entry.lf;
    }
}

void
Machine::spillOldestReturnEntry()
{
    if (retStack_.empty())
        return;
    ++stats_.returnStackSpills;
    const RetEntry oldest = retStack_.front();
    retStack_.erase(retStack_.begin());
    // The child above the oldest entry: the next entry up, or the
    // current frame when the spilled entry was the only one.
    const Addr child =
        retStack_.empty() ? lf_ : retStack_.front().lf;
    materializeEntry(oldest, child);
}

void
Machine::saveCurrentPc()
{
    if (lf_ == nilAddr)
        return;
    const CodeByteAddr base = currentCodeBase();
    writeFrameWord(lf_, frame::savedPcOffset,
                   static_cast<Word>(pcAbs_ - base));
}

// ---------------------------------------------------------------------
// Spawning suspended activations (the model's creation context)
// ---------------------------------------------------------------------

Word
Machine::spawn(const std::string &module_name,
               const std::string &proc_name, std::span<const Word> args)
{
    const PlacedModule &pm = image_.module(module_name);
    const int proc = pm.src->procIndex(proc_name);
    if (proc < 0)
        fatal("spawn: no procedure {} in {}", proc_name, module_name);
    const PlacedProc &pp = pm.procs[static_cast<unsigned>(proc)];
    const Addr gf = image_.gfAddr(module_name);

    const Addr lf = heap_.alloc(pp.fsi);
    mem_.poke(lf + frame::returnLinkOffset, nilContext);
    mem_.poke(lf + frame::globalFrameOffset, static_cast<Word>(gf));
    // Entry PC relative to the code base: the byte after the fsi byte.
    mem_.poke(lf + frame::savedPcOffset,
              static_cast<Word>(pp.evOffset + 1));
    for (unsigned i = 0; i < args.size(); ++i)
        mem_.poke(lf + frame::varsOffset + i, args[i]);
    return packFrameContext(lf, layout_);
}

} // namespace fpc
