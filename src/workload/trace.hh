/**
 * @file
 * Trace-driven transfer workloads.
 *
 * For the bank-count and return-stack studies (Figure 3, §7.1) the
 * interesting variable is the *pattern* of transfers, not the code
 * between them. A trace is a sequence of Call / Return / Switch
 * operations with a tunable "LIFO-ness": the paper's observation is
 * that "long runs of calls nearly uninterrupted by returns, or vice
 * versa, are quite rare", so the generator's persistence parameter
 * controls exactly that.
 *
 * TraceRunner feeds a trace straight into the machine's transfer
 * primitives against a small resident image, so a million transfers
 * cost a million transfers, with no interpretation in between.
 */

#ifndef FPC_WORKLOAD_TRACE_HH
#define FPC_WORKLOAD_TRACE_HH

#include <memory>
#include <vector>

#include "common/random.hh"
#include "machine/machine.hh"
#include "workload/frame_dist.hh"

namespace fpc
{

enum class TraceOp : std::uint8_t
{
    Call,
    Return,
    Switch ///< coroutine transfer to another process chain
};

/** Trace shape parameters. */
struct TraceConfig
{
    std::size_t length = 100'000;
    /**
     * Probability that the next transfer repeats the previous
     * direction (call after call, return after return). 0.5 is a
     * random walk; Mesa-like traces sit near 0.2-0.35 (short
     * excursions, so "long runs ... are quite rare").
     */
    double persistence = 0.3;
    /**
     * Depth locality: real call profiles oscillate around the depth
     * of the current phase rather than drifting — most calls are to
     * leaves that return promptly. The pull biases the direction
     * toward meanDepth; 0 gives a pure (unrealistic) random walk.
     */
    double depthPull = 0.15;
    unsigned meanDepth = 8;
    /** Fraction of events that are coroutine switches. */
    double switchFraction = 0.0;
    unsigned maxDepth = 200;
    std::uint64_t seed = 1;
};

/** Generate a depth-valid trace (never returns past depth 1). */
std::vector<TraceOp> generateTrace(const TraceConfig &config);

/**
 * Executes traces against a machine using the public transfer
 * primitives. Builds a one-module image with procedures spanning the
 * frame-size distribution and a set of coroutine chains for Switch.
 */
class TraceRunner
{
  public:
    TraceRunner(const MachineConfig &config,
                const FrameSizeDist &dist = FrameSizeDist::mesa(),
                unsigned coroutines = 4, std::uint64_t seed = 1);
    ~TraceRunner();

    /** Run the trace; invalid ops are skipped defensively. */
    void run(const std::vector<TraceOp> &trace);

    /** One call of a procedure with the given size-class ordinal. */
    void call(unsigned proc_ordinal);
    /** One return (no-op at the chain bottom). */
    void ret();
    /** Transfer to the next coroutine chain (round robin). */
    void switchChain();

    Machine &machine() { return *machine_; }
    Memory &memory() { return *mem_; }
    unsigned depth() const { return depth_; }
    unsigned procCount() const { return descriptors_.size(); }

  private:
    std::unique_ptr<Memory> mem_;
    std::unique_ptr<LoadedImage> image_;
    std::unique_ptr<Machine> machine_;
    std::vector<Word> descriptors_; ///< procs of varied frame sizes
    std::vector<Word> chains_;      ///< coroutine base contexts
    std::vector<unsigned> chainDepth_;
    unsigned currentChain_ = 0;
    unsigned depth_ = 0;
    Rng rng_;
};

} // namespace fpc

#endif // FPC_WORKLOAD_TRACE_HH
