#include "workload/synthetic.hh"

#include "asm/builder.hh"
#include "common/logging.hh"
#include "common/strfmt.hh"
#include "xfer/context.hh"

namespace fpc
{

namespace
{

/** Slots: 0 = depth argument, 1 = accumulator, 2..3 = filler. */
constexpr unsigned slotDepth = 0;
constexpr unsigned slotAcc = 1;
constexpr unsigned slotFillA = 2;
constexpr unsigned slotFillB = 3;
constexpr unsigned numSlots = 4;

void
emitFiller(ProcBuilder &pb, Rng &rng, unsigned ops)
{
    using isa::Op;
    for (unsigned i = 0; i < ops; ++i) {
        switch (rng.uniform(0, 4)) {
          case 0:
            pb.loadLocal(slotFillA);
            pb.loadImm(static_cast<Word>(rng.uniform(0, 6)));
            pb.op(Op::ADD);
            pb.storeLocal(slotFillA);
            i += 3;
            break;
          case 1:
            pb.loadLocal(slotAcc);
            pb.loadLocal(slotFillB);
            pb.op(Op::XOR);
            pb.storeLocal(slotFillB);
            i += 3;
            break;
          case 2:
            pb.loadImm(static_cast<Word>(rng.uniform(0, 255)));
            pb.storeLocal(slotFillB);
            i += 1;
            break;
          case 3:
            pb.loadLocal(slotFillA);
            pb.loadImm(1);
            pb.op(Op::SHL);
            pb.storeLocal(slotFillA);
            i += 3;
            break;
          default:
            pb.loadGlobal(0);
            pb.loadImm(1);
            pb.op(Op::ADD);
            pb.storeGlobal(0);
            i += 3;
            break;
        }
    }
}

} // namespace

std::string
generatedEntryModule()
{
    return "Gen0";
}

std::string
generatedEntryProc()
{
    return "p0";
}

std::vector<Module>
generateProgram(const ProgramConfig &config)
{
    if (config.modules == 0 || config.procsPerModule == 0)
        fatal("generateProgram: empty shape");
    if (config.liveCallsPerProc > config.callSitesPerProc)
        fatal("generateProgram: more live calls than call sites");

    Rng rng(config.seed);
    std::vector<ModuleBuilder> builders;
    builders.reserve(config.modules);
    for (unsigned m = 0; m < config.modules; ++m) {
        builders.emplace_back(strfmt("Gen{}", m));
        builders.back().globals(2);
    }

    for (unsigned m = 0; m < config.modules; ++m) {
        for (unsigned p = 0; p < config.procsPerModule; ++p) {
            const unsigned payload = config.frameDist.sample(rng);
            const unsigned extra =
                payload > frame::overheadWords + numSlots
                    ? payload - frame::overheadWords - numSlots
                    : 0;
            auto &pb = builders[m].proc(strfmt("p{}", p), 1, numSlots,
                                        extra);

            using isa::Op;
            // if (depth == 0) return 1;
            auto go = pb.newLabel();
            pb.loadLocal(slotDepth).jumpNotZero(go);
            pb.loadImm(1).ret();
            pb.label(go);
            // acc = depth;
            pb.loadLocal(slotDepth).storeLocal(slotAcc);

            for (unsigned site = 0; site < config.callSitesPerProc;
                 ++site) {
                emitFiller(pb, rng, config.computeOpsPerCall);

                const bool live = site < config.liveCallsPerProc;
                AsmLabel skip{0};
                if (!live) {
                    // A statically present, dynamically dead site: it
                    // contributes to the image and to the static call
                    // profile but never executes.
                    skip = pb.newLabel();
                    pb.loadImm(0).jumpZero(skip);
                }

                // acc = acc + target(depth - 1)
                pb.loadLocal(slotDepth).loadImm(1).op(Op::SUB);
                const bool local =
                    config.modules == 1 ||
                    rng.chance(config.localCallFraction);
                if (local) {
                    const unsigned target =
                        rng.uniform(0, config.procsPerModule - 1);
                    pb.callLocal(strfmt("p{}", target));
                } else {
                    unsigned tm = rng.uniform(0, config.modules - 2);
                    if (tm >= m)
                        ++tm; // pick a different module
                    const unsigned tp =
                        rng.uniform(0, config.procsPerModule - 1);
                    const unsigned ext = builders[m].externRef(
                        strfmt("Gen{}", tm), strfmt("p{}", tp));
                    pb.callExtern(ext);
                }
                pb.loadLocal(slotAcc).op(Op::ADD).storeLocal(slotAcc);

                if (!live)
                    pb.label(skip);
            }
            pb.loadLocal(slotAcc).ret();
        }
    }

    std::vector<Module> out;
    out.reserve(config.modules);
    for (auto &b : builders)
        out.push_back(b.build());
    return out;
}

} // namespace fpc
