/**
 * @file
 * Frame-size distributions.
 *
 * The paper's §7.1 statistic — "Mesa statistics suggest that 95% of
 * all frames allocated are smaller than 80 bytes" — calibrates the
 * default distribution; benches verify their workloads match it and
 * sweep alternatives.
 */

#ifndef FPC_WORKLOAD_FRAME_DIST_HH
#define FPC_WORKLOAD_FRAME_DIST_HH

#include <vector>

#include "common/random.hh"
#include "common/types.hh"

namespace fpc
{

/** A bucketed sampler of frame payload sizes in words. */
class FrameSizeDist
{
  public:
    struct Bucket
    {
        unsigned minWords;
        unsigned maxWords; ///< inclusive
        double weight;
    };

    explicit FrameSizeDist(std::vector<Bucket> buckets);

    /** The paper's Mesa-like shape: 95% of frames below 40 words
     *  (80 bytes), a thin tail up to ~200 words. */
    static FrameSizeDist mesa();

    /** Every frame the same size (for controlled experiments). */
    static FrameSizeDist fixed(unsigned words);

    unsigned sample(Rng &rng) const;

    /** Expected fraction of samples at or below the threshold. */
    double fractionAtOrBelow(unsigned words) const;

  private:
    std::vector<Bucket> buckets_;
    std::vector<double> weights_;
};

} // namespace fpc

#endif // FPC_WORKLOAD_FRAME_DIST_HH
