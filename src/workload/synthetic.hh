/**
 * @file
 * Synthetic program generation.
 *
 * Builds multi-module programs whose *distributional* properties match
 * what the paper reports for real Mesa code: roughly one call per ten
 * executed instructions (§1), frames mostly below 80 bytes (§7.1), a
 * skewed static call-frequency profile (so the one-byte EFC/LFC forms
 * earn their keep, §5.1), and a LIFO-dominated but not strictly LIFO
 * transfer pattern. Benches use these programs where the paper used
 * its Mesa corpus — see the substitution table in DESIGN.md.
 */

#ifndef FPC_WORKLOAD_SYNTHETIC_HH
#define FPC_WORKLOAD_SYNTHETIC_HH

#include <string>
#include <vector>

#include "common/random.hh"
#include "program/module.hh"
#include "workload/frame_dist.hh"

namespace fpc
{

/** Shape of the generated program. */
struct ProgramConfig
{
    unsigned modules = 4;
    unsigned procsPerModule = 8;
    /** Call sites emitted per procedure body. */
    unsigned callSitesPerProc = 3;
    /** Fraction of call sites that stay inside the module. */
    double localCallFraction = 0.5;
    /** Recursion fuel: each call passes depth-1; 0 returns. */
    unsigned maxDepth = 8;
    /** Fan-out degree: how many of the call sites actually execute
     *  per activation (the rest are behind never-taken branches,
     *  giving a skewed static/dynamic profile). */
    unsigned liveCallsPerProc = 2;
    /** Arithmetic/load/store filler per call site, tuning the
     *  instructions-per-call ratio toward the paper's ~10. */
    unsigned computeOpsPerCall = 5;
    /** Extra frame words sampled per procedure. */
    FrameSizeDist frameDist = FrameSizeDist::mesa();
    std::uint64_t seed = 1;
};

/**
 * Generate the program. Module names are "Gen0".."GenN"; the entry
 * point is Gen0.main(depth).
 */
std::vector<Module> generateProgram(const ProgramConfig &config);

/** Name of the generated entry module/procedure. */
std::string generatedEntryModule();
std::string generatedEntryProc();

} // namespace fpc

#endif // FPC_WORKLOAD_SYNTHETIC_HH
