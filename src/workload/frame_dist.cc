#include "workload/frame_dist.hh"

#include "common/logging.hh"

namespace fpc
{

FrameSizeDist::FrameSizeDist(std::vector<Bucket> buckets)
    : buckets_(std::move(buckets))
{
    if (buckets_.empty())
        panic("FrameSizeDist: no buckets");
    for (const auto &b : buckets_) {
        if (b.minWords > b.maxWords || b.weight < 0)
            panic("FrameSizeDist: bad bucket");
        weights_.push_back(b.weight);
    }
}

FrameSizeDist
FrameSizeDist::mesa()
{
    // Paper §7.1: 95% of frames < 80 bytes (40 words). The frame
    // payload here excludes nothing: it is what allocWords() receives
    // (overhead + variables), so the smallest useful frame is ~5
    // words.
    return FrameSizeDist({
        {5, 10, 0.34},
        {11, 20, 0.36},
        {21, 39, 0.25},
        {40, 100, 0.04},
        {101, 200, 0.01},
    });
}

FrameSizeDist
FrameSizeDist::fixed(unsigned words)
{
    return FrameSizeDist({{words, words, 1.0}});
}

unsigned
FrameSizeDist::sample(Rng &rng) const
{
    const std::size_t i = rng.weighted(weights_);
    const Bucket &b = buckets_[i];
    return static_cast<unsigned>(
        rng.uniform(b.minWords, b.maxWords));
}

double
FrameSizeDist::fractionAtOrBelow(unsigned words) const
{
    double total = 0;
    double below = 0;
    for (const auto &b : buckets_) {
        total += b.weight;
        if (b.maxWords <= words) {
            below += b.weight;
        } else if (b.minWords <= words) {
            const double span = b.maxWords - b.minWords + 1;
            below += b.weight * (words - b.minWords + 1) / span;
        }
    }
    return total > 0 ? below / total : 0.0;
}

} // namespace fpc
