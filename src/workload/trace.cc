#include "workload/trace.hh"

#include <algorithm>

#include "asm/builder.hh"
#include "common/logging.hh"
#include "common/strfmt.hh"
#include "program/loader.hh"

namespace fpc
{

std::vector<TraceOp>
generateTrace(const TraceConfig &config)
{
    Rng rng(config.seed);
    std::vector<TraceOp> trace;
    trace.reserve(config.length);

    unsigned depth = 0;
    TraceOp prev = TraceOp::Call;
    for (std::size_t i = 0; i < config.length; ++i) {
        if (config.switchFraction > 0 &&
            rng.chance(config.switchFraction)) {
            trace.push_back(TraceOp::Switch);
            continue;
        }
        TraceOp op;
        if (depth == 0) {
            op = TraceOp::Call;
        } else if (depth >= config.maxDepth) {
            op = TraceOp::Return;
        } else if (rng.chance(config.persistence)) {
            op = prev == TraceOp::Switch ? TraceOp::Call : prev;
        } else {
            // Mean-reverting direction choice: depth stays local.
            double p_call =
                0.5 + config.depthPull *
                          (static_cast<double>(config.meanDepth) -
                           static_cast<double>(depth));
            p_call = std::min(0.95, std::max(0.05, p_call));
            op = rng.chance(p_call) ? TraceOp::Call : TraceOp::Return;
        }
        trace.push_back(op);
        if (op == TraceOp::Call)
            ++depth;
        else
            --depth;
        prev = op;
    }
    return trace;
}

namespace
{

/** Build the resident module: procedures spanning the size classes. */
Module
traceModule(const FrameSizeDist &dist, unsigned procs,
            std::uint64_t seed)
{
    Rng rng(seed);
    ModuleBuilder b("T");
    b.globals(1);
    for (unsigned p = 0; p < procs; ++p) {
        const unsigned payload = dist.sample(rng);
        const unsigned extra = payload > frame::overheadWords + 1
                                   ? payload - frame::overheadWords - 1
                                   : 0;
        auto &pb = b.proc(strfmt("p{}", p), 0, 1, extra);
        pb.loadImm(0).ret(); // never interpreted in trace mode
    }
    return b.build();
}

} // namespace

TraceRunner::TraceRunner(const MachineConfig &config,
                         const FrameSizeDist &dist, unsigned coroutines,
                         std::uint64_t seed)
    : rng_(seed ^ 0xC0FFEE)
{
    const SystemLayout layout;
    mem_ = std::make_unique<Memory>(layout.memWords);
    Loader loader{layout, SizeClasses::standard()};
    constexpr unsigned numProcs = 8;
    loader.add(traceModule(dist, numProcs, seed));
    image_ = std::make_unique<LoadedImage>(
        loader.load(*mem_, LinkPlan{}));
    machine_ = std::make_unique<Machine>(*mem_, *image_, config);

    for (unsigned p = 0; p < numProcs; ++p)
        descriptors_.push_back(
            image_->procDescriptor("T", strfmt("p{}", p)));

    // The base activation of chain 0.
    machine_->startContext(descriptors_[0]);

    for (unsigned c = 1; c < std::max(1u, coroutines); ++c)
        chains_.push_back(machine_->spawn("T", "p0"));
    chains_.insert(chains_.begin(), nilContext); // slot for chain 0
    chainDepth_.assign(chains_.size(), 0);
}

TraceRunner::~TraceRunner() = default;

void
TraceRunner::call(unsigned proc_ordinal)
{
    machine_->callDescriptor(
        descriptors_[proc_ordinal % descriptors_.size()],
        XferKind::ExtCall);
    ++depth_;
}

void
TraceRunner::ret()
{
    if (depth_ == 0)
        return; // never return past the chain base
    machine_->doReturn();
    --depth_;
}

void
TraceRunner::switchChain()
{
    if (chains_.size() < 2)
        return;
    chains_[currentChain_] = machine_->currentFrameContext();
    chainDepth_[currentChain_] = depth_;
    currentChain_ = (currentChain_ + 1) % chains_.size();
    machine_->xferTo(chains_[currentChain_]);
    depth_ = chainDepth_[currentChain_];
}

void
TraceRunner::run(const std::vector<TraceOp> &trace)
{
    for (const TraceOp op : trace) {
        switch (op) {
          case TraceOp::Call:
            call(static_cast<unsigned>(rng_.uniform(0, 7)));
            break;
          case TraceOp::Return:
            if (depth_ == 0)
                call(static_cast<unsigned>(rng_.uniform(0, 7)));
            else
                ret();
            break;
          case TraceOp::Switch:
            switchChain();
            break;
        }
    }
}

} // namespace fpc
