#include "lang/parser.hh"

#include "common/logging.hh"

namespace fpc::lang
{

namespace
{

class Parser
{
  public:
    explicit Parser(const std::vector<Token> &tokens) : toks_(tokens) {}

    std::vector<ModuleAst>
    parseAll()
    {
        std::vector<ModuleAst> modules;
        while (!at(Tok::End))
            modules.push_back(parseModule());
        if (modules.empty())
            fatal("no modules in source");
        return modules;
    }

  private:
    const Token &
    cur() const
    {
        return toks_[pos_];
    }

    bool
    at(Tok kind) const
    {
        return cur().kind == kind;
    }

    Token
    advance()
    {
        return toks_[pos_++];
    }

    Token
    expect(Tok kind)
    {
        if (!at(kind)) {
            fatal("line {}: expected {}, found {} '{}'", cur().line,
                  tokName(kind), tokName(cur().kind), cur().text);
        }
        return advance();
    }

    bool
    accept(Tok kind)
    {
        if (!at(kind))
            return false;
        advance();
        return true;
    }

    [[noreturn]] void
    err(const std::string &what)
    {
        fatal("line {}: {} (found {} '{}')", cur().line, what,
              tokName(cur().kind), cur().text);
    }

    ModuleAst
    parseModule()
    {
        ModuleAst mod;
        expect(Tok::KwModule);
        mod.name = expect(Tok::Ident).text;
        expect(Tok::Semi);
        while (!at(Tok::End) && !at(Tok::KwModule)) {
            if (at(Tok::KwVar)) {
                parseGlobalDecl(mod);
            } else if (at(Tok::KwProc)) {
                mod.procs.push_back(parseProc());
            } else {
                err("expected 'var' or 'proc'");
            }
        }
        return mod;
    }

    void
    parseGlobalDecl(ModuleAst &mod)
    {
        expect(Tok::KwVar);
        for (;;) {
            const std::string name = expect(Tok::Ident).text;
            Word init = 0;
            if (accept(Tok::Assign))
                init = expect(Tok::Number).number;
            mod.globals.emplace_back(name, init);
            if (!accept(Tok::Comma))
                break;
        }
        expect(Tok::Semi);
    }

    ProcAst
    parseProc()
    {
        ProcAst proc;
        proc.line = cur().line;
        expect(Tok::KwProc);
        proc.name = expect(Tok::Ident).text;
        expect(Tok::LParen);
        if (!at(Tok::RParen)) {
            for (;;) {
                proc.params.push_back(expect(Tok::Ident).text);
                if (!accept(Tok::Comma))
                    break;
            }
        }
        expect(Tok::RParen);
        proc.body = parseBlock();
        return proc;
    }

    std::vector<StmtPtr>
    parseBlock()
    {
        expect(Tok::LBrace);
        std::vector<StmtPtr> body;
        while (!accept(Tok::RBrace))
            body.push_back(parseStmt());
        return body;
    }

    StmtPtr
    newStmt(Stmt::Kind kind)
    {
        auto s = std::make_unique<Stmt>();
        s->kind = kind;
        s->line = cur().line;
        return s;
    }

    StmtPtr
    parseStmt()
    {
        if (at(Tok::KwVar)) {
            auto s = newStmt(Stmt::Kind::VarDecl);
            advance();
            for (;;) {
                s->names.push_back(expect(Tok::Ident).text);
                unsigned words = 1;
                if (accept(Tok::LBracket)) {
                    const Token n = expect(Tok::Number);
                    if (n.number == 0)
                        fatal("line {}: zero-length array", n.line);
                    words = n.number;
                    expect(Tok::RBracket);
                }
                s->sizes.push_back(words);
                if (!accept(Tok::Comma))
                    break;
            }
            expect(Tok::Semi);
            return s;
        }
        if (at(Tok::KwIf)) {
            auto s = newStmt(Stmt::Kind::If);
            advance();
            expect(Tok::LParen);
            s->value = parseExpr();
            expect(Tok::RParen);
            s->body = parseBlock();
            if (accept(Tok::KwElse)) {
                if (at(Tok::KwIf)) {
                    s->elseBody.push_back(parseStmt()); // else if
                } else {
                    s->elseBody = parseBlock();
                }
            }
            return s;
        }
        if (at(Tok::KwWhile)) {
            auto s = newStmt(Stmt::Kind::While);
            advance();
            expect(Tok::LParen);
            s->value = parseExpr();
            expect(Tok::RParen);
            s->body = parseBlock();
            return s;
        }
        if (at(Tok::KwReturn)) {
            auto s = newStmt(Stmt::Kind::Return);
            advance();
            if (!at(Tok::Semi))
                s->value = parseExpr();
            expect(Tok::Semi);
            return s;
        }
        if (at(Tok::KwOut)) {
            auto s = newStmt(Stmt::Kind::Out);
            advance();
            s->value = parseExpr();
            expect(Tok::Semi);
            return s;
        }
        if (at(Tok::KwHalt)) {
            auto s = newStmt(Stmt::Kind::Halt);
            advance();
            expect(Tok::Semi);
            return s;
        }
        if (at(Tok::KwYield)) {
            auto s = newStmt(Stmt::Kind::Yield);
            advance();
            expect(Tok::Semi);
            return s;
        }
        if (at(Tok::Star)) {
            // *addr = value;
            auto s = newStmt(Stmt::Kind::Store);
            advance();
            s->addr = parseUnary();
            expect(Tok::Assign);
            s->value = parseExpr();
            expect(Tok::Semi);
            return s;
        }
        // Assignment or expression statement.
        if (at(Tok::Ident) && toks_[pos_ + 1].kind == Tok::Assign) {
            auto s = newStmt(Stmt::Kind::Assign);
            s->name = advance().text;
            expect(Tok::Assign);
            s->value = parseExpr();
            expect(Tok::Semi);
            return s;
        }
        // Indexed assignment: a[i] = e; — backtracks to an expression
        // statement when no '=' follows the subscript.
        if (at(Tok::Ident) && toks_[pos_ + 1].kind == Tok::LBracket) {
            const std::size_t mark = pos_;
            auto s = newStmt(Stmt::Kind::AssignIndex);
            s->name = advance().text;
            expect(Tok::LBracket);
            s->addr = parseExpr(); // the subscript
            expect(Tok::RBracket);
            if (accept(Tok::Assign)) {
                s->value = parseExpr();
                expect(Tok::Semi);
                return s;
            }
            pos_ = mark; // a[i] used as an expression
        }
        auto s = newStmt(Stmt::Kind::Expr);
        s->value = parseExpr();
        expect(Tok::Semi);
        return s;
    }

    ExprPtr
    newExpr(Expr::Kind kind)
    {
        auto e = std::make_unique<Expr>();
        e->kind = kind;
        e->line = cur().line;
        return e;
    }

    ExprPtr
    parseExpr()
    {
        return parseOr();
    }

    ExprPtr
    parseOr()
    {
        ExprPtr lhs = parseAnd();
        while (at(Tok::OrOr)) {
            auto e = newExpr(Expr::Kind::Or);
            advance();
            e->lhs = std::move(lhs);
            e->rhs = parseAnd();
            lhs = std::move(e);
        }
        return lhs;
    }

    ExprPtr
    parseAnd()
    {
        ExprPtr lhs = parseCmp();
        while (at(Tok::AndAnd)) {
            auto e = newExpr(Expr::Kind::And);
            advance();
            e->lhs = std::move(lhs);
            e->rhs = parseCmp();
            lhs = std::move(e);
        }
        return lhs;
    }

    bool
    isCmpOp(Tok t) const
    {
        return t == Tok::Eq || t == Tok::Ne || t == Tok::Lt ||
               t == Tok::Le || t == Tok::Gt || t == Tok::Ge;
    }

    ExprPtr
    parseCmp()
    {
        ExprPtr lhs = parseAdd();
        if (isCmpOp(cur().kind)) {
            auto e = newExpr(Expr::Kind::Binary);
            e->op = advance().kind;
            e->lhs = std::move(lhs);
            e->rhs = parseAdd();
            return e;
        }
        return lhs;
    }

    ExprPtr
    parseAdd()
    {
        ExprPtr lhs = parseMul();
        while (at(Tok::Plus) || at(Tok::Minus) || at(Tok::Pipe) ||
               at(Tok::Caret)) {
            auto e = newExpr(Expr::Kind::Binary);
            e->op = advance().kind;
            e->lhs = std::move(lhs);
            e->rhs = parseMul();
            lhs = std::move(e);
        }
        return lhs;
    }

    ExprPtr
    parseMul()
    {
        ExprPtr lhs = parseUnary();
        while (at(Tok::Star) || at(Tok::Slash) || at(Tok::Percent) ||
               at(Tok::Amp) || at(Tok::Shl) || at(Tok::Shr)) {
            auto e = newExpr(Expr::Kind::Binary);
            e->op = advance().kind;
            e->lhs = std::move(lhs);
            e->rhs = parseUnary();
            lhs = std::move(e);
        }
        return lhs;
    }

    ExprPtr
    parseUnary()
    {
        if (at(Tok::Minus) || at(Tok::Bang) || at(Tok::Tilde)) {
            auto e = newExpr(Expr::Kind::Unary);
            e->op = advance().kind;
            e->lhs = parseUnary();
            return e;
        }
        if (at(Tok::Star)) {
            auto e = newExpr(Expr::Kind::Deref);
            advance();
            e->lhs = parseUnary();
            return e;
        }
        if (at(Tok::At)) {
            auto e = newExpr(Expr::Kind::AddrOf);
            advance();
            e->name = expect(Tok::Ident).text;
            return e;
        }
        return parsePrimary();
    }

    ExprPtr
    parsePrimary()
    {
        if (at(Tok::Number)) {
            auto e = newExpr(Expr::Kind::Num);
            e->number = advance().number;
            return e;
        }
        if (accept(Tok::LParen)) {
            ExprPtr e = parseExpr();
            expect(Tok::RParen);
            return e;
        }
        if (at(Tok::Ident)) {
            const Token first = advance();
            // Qualified call: Mod.proc(args)
            if (at(Tok::Dot)) {
                advance();
                const std::string proc = expect(Tok::Ident).text;
                auto e = newExpr(Expr::Kind::Call);
                e->moduleName = first.text;
                e->name = proc;
                e->line = first.line;
                parseArgs(*e);
                return e;
            }
            if (at(Tok::LParen)) {
                auto e = newExpr(Expr::Kind::Call);
                e->name = first.text;
                e->line = first.line;
                parseArgs(*e);
                return e;
            }
            if (accept(Tok::LBracket)) {
                auto e = newExpr(Expr::Kind::Index);
                e->name = first.text;
                e->line = first.line;
                e->lhs = parseExpr();
                expect(Tok::RBracket);
                return e;
            }
            auto e = newExpr(Expr::Kind::Var);
            e->name = first.text;
            e->line = first.line;
            return e;
        }
        err("expected an expression");
    }

    void
    parseArgs(Expr &call)
    {
        expect(Tok::LParen);
        if (!at(Tok::RParen)) {
            for (;;) {
                call.args.push_back(parseExpr());
                if (!accept(Tok::Comma))
                    break;
            }
        }
        expect(Tok::RParen);
    }

    const std::vector<Token> &toks_;
    std::size_t pos_ = 0;
};

} // namespace

std::vector<ModuleAst>
parse(const std::vector<Token> &tokens)
{
    Parser parser(tokens);
    return parser.parseAll();
}

} // namespace fpc::lang
