/**
 * @file
 * MiniMesa abstract syntax.
 */

#ifndef FPC_LANG_AST_HH
#define FPC_LANG_AST_HH

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hh"
#include "lang/lexer.hh"

namespace fpc::lang
{

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/** An expression node. */
struct Expr
{
    enum class Kind
    {
        Num,    ///< literal
        Var,    ///< local or global variable
        Unary,  ///< -x  !x  ~x
        Binary, ///< arithmetic / comparison / bitwise
        And,    ///< short-circuit &&
        Or,     ///< short-circuit ||
        Call,   ///< f(args) or Mod.f(args)
        AddrOf, ///< @x (address of a local, §7.4)
        Deref,  ///< *p
        Index   ///< a[i] (a is a local array)
    };

    Kind kind;
    unsigned line = 0;
    Word number = 0;        ///< Num
    std::string name;       ///< Var / Call / AddrOf / Index
    std::string moduleName; ///< Call: qualifier ("" = this module)
    Tok op = Tok::End;      ///< Unary / Binary operator
    ExprPtr lhs;            ///< Unary/Deref operand; Binary left; Index subscript
    ExprPtr rhs;            ///< Binary right
    std::vector<ExprPtr> args;
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/** A statement node. */
struct Stmt
{
    enum class Kind
    {
        VarDecl,     ///< var a, b, buf[8];
        Assign,      ///< x = e;
        AssignIndex, ///< a[i] = e;
        Store,       ///< *p = e;
        If,      ///< if (e) {..} else {..}
        While,   ///< while (e) {..}
        Return,  ///< return e?; (missing e returns 0)
        Out,     ///< out e;    (append to the machine output channel)
        Halt,    ///< halt;
        Yield,   ///< yield;    (process switch)
        Expr     ///< e;        (value dropped)
    };

    Kind kind;
    unsigned line = 0;
    std::vector<std::string> names; ///< VarDecl
    /** VarDecl: words per name (1 = scalar, N = array of N). */
    std::vector<unsigned> sizes;
    std::string name;               ///< Assign / AssignIndex target
    ExprPtr value; ///< Assign/Store/Return/Out/Expr value, If/While cond
    ExprPtr addr;  ///< Store target address; AssignIndex subscript
    std::vector<StmtPtr> body;     ///< If-then / While body
    std::vector<StmtPtr> elseBody; ///< If-else
};

/** One procedure. */
struct ProcAst
{
    std::string name;
    std::vector<std::string> params;
    std::vector<StmtPtr> body;
    unsigned line = 0;
};

/** One module. */
struct ModuleAst
{
    std::string name;
    std::vector<std::pair<std::string, Word>> globals;
    std::vector<ProcAst> procs;
};

} // namespace fpc::lang

#endif // FPC_LANG_AST_HH
