#include "lang/lexer.hh"

#include <cctype>
#include <map>

#include "common/logging.hh"

namespace fpc::lang
{

const char *
tokName(Tok tok)
{
    switch (tok) {
      case Tok::End: return "end of input";
      case Tok::Ident: return "identifier";
      case Tok::Number: return "number";
      case Tok::KwModule: return "'module'";
      case Tok::KwVar: return "'var'";
      case Tok::KwProc: return "'proc'";
      case Tok::KwIf: return "'if'";
      case Tok::KwElse: return "'else'";
      case Tok::KwWhile: return "'while'";
      case Tok::KwReturn: return "'return'";
      case Tok::KwOut: return "'out'";
      case Tok::KwHalt: return "'halt'";
      case Tok::KwYield: return "'yield'";
      case Tok::LParen: return "'('";
      case Tok::RParen: return "')'";
      case Tok::LBrace: return "'{'";
      case Tok::LBracket: return "'['";
      case Tok::RBracket: return "']'";
      case Tok::RBrace: return "'}'";
      case Tok::Semi: return "';'";
      case Tok::Comma: return "','";
      case Tok::Dot: return "'.'";
      case Tok::Assign: return "'='";
      case Tok::Plus: return "'+'";
      case Tok::Minus: return "'-'";
      case Tok::Star: return "'*'";
      case Tok::Slash: return "'/'";
      case Tok::Percent: return "'%'";
      case Tok::Amp: return "'&'";
      case Tok::Pipe: return "'|'";
      case Tok::Caret: return "'^'";
      case Tok::Tilde: return "'~'";
      case Tok::Shl: return "'<<'";
      case Tok::Shr: return "'>>'";
      case Tok::Eq: return "'=='";
      case Tok::Ne: return "'!='";
      case Tok::Lt: return "'<'";
      case Tok::Le: return "'<='";
      case Tok::Gt: return "'>'";
      case Tok::Ge: return "'>='";
      case Tok::AndAnd: return "'&&'";
      case Tok::OrOr: return "'||'";
      case Tok::Bang: return "'!'";
      case Tok::At: return "'@'";
      default: return "?";
    }
}

namespace
{

const std::map<std::string, Tok> keywords = {
    {"module", Tok::KwModule}, {"var", Tok::KwVar},
    {"proc", Tok::KwProc},     {"if", Tok::KwIf},
    {"else", Tok::KwElse},     {"while", Tok::KwWhile},
    {"return", Tok::KwReturn}, {"out", Tok::KwOut},
    {"halt", Tok::KwHalt},     {"yield", Tok::KwYield},
};

} // namespace

std::vector<Token>
tokenize(const std::string &source)
{
    std::vector<Token> out;
    unsigned line = 1;
    std::size_t i = 0;
    const std::size_t n = source.size();

    auto peek = [&](std::size_t k = 0) -> char {
        return i + k < n ? source[i + k] : '\0';
    };
    auto emit = [&](Tok kind, std::size_t len) {
        out.push_back({kind, source.substr(i, len), 0, line});
        i += len;
    };

    while (i < n) {
        const char c = source[i];
        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        // Comments: "--" to end of line (Mesa style) and "//".
        if ((c == '-' && peek(1) == '-') ||
            (c == '/' && peek(1) == '/')) {
            while (i < n && source[i] != '\n')
                ++i;
            continue;
        }
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            std::size_t len = 1;
            while (std::isalnum(static_cast<unsigned char>(peek(len))) ||
                   peek(len) == '_') {
                ++len;
            }
            const std::string word = source.substr(i, len);
            auto kw = keywords.find(word);
            out.push_back({kw == keywords.end() ? Tok::Ident : kw->second,
                           word, 0, line});
            i += len;
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            std::size_t len = 1;
            unsigned base = 10;
            if (c == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
                base = 16;
                len = 2;
                while (std::isxdigit(
                    static_cast<unsigned char>(peek(len)))) {
                    ++len;
                }
            } else {
                while (std::isdigit(
                    static_cast<unsigned char>(peek(len)))) {
                    ++len;
                }
            }
            const std::string text = source.substr(i, len);
            const unsigned long value =
                std::stoul(base == 16 ? text.substr(2) : text, nullptr,
                           base);
            if (value > 0xFFFF)
                fatal("line {}: literal {} exceeds a 16-bit word", line,
                      text);
            out.push_back({Tok::Number, text,
                           static_cast<std::uint16_t>(value), line});
            i += len;
            continue;
        }
        switch (c) {
          case '(': emit(Tok::LParen, 1); break;
          case ')': emit(Tok::RParen, 1); break;
          case '{': emit(Tok::LBrace, 1); break;
          case '[': emit(Tok::LBracket, 1); break;
          case ']': emit(Tok::RBracket, 1); break;
          case '}': emit(Tok::RBrace, 1); break;
          case ';': emit(Tok::Semi, 1); break;
          case ',': emit(Tok::Comma, 1); break;
          case '.': emit(Tok::Dot, 1); break;
          case '+': emit(Tok::Plus, 1); break;
          case '-': emit(Tok::Minus, 1); break;
          case '*': emit(Tok::Star, 1); break;
          case '/': emit(Tok::Slash, 1); break;
          case '%': emit(Tok::Percent, 1); break;
          case '^': emit(Tok::Caret, 1); break;
          case '~': emit(Tok::Tilde, 1); break;
          case '@': emit(Tok::At, 1); break;
          case '&':
            emit(peek(1) == '&' ? Tok::AndAnd : Tok::Amp,
                 peek(1) == '&' ? 2 : 1);
            break;
          case '|':
            emit(peek(1) == '|' ? Tok::OrOr : Tok::Pipe,
                 peek(1) == '|' ? 2 : 1);
            break;
          case '=':
            emit(peek(1) == '=' ? Tok::Eq : Tok::Assign,
                 peek(1) == '=' ? 2 : 1);
            break;
          case '!':
            emit(peek(1) == '=' ? Tok::Ne : Tok::Bang,
                 peek(1) == '=' ? 2 : 1);
            break;
          case '<':
            if (peek(1) == '<')
                emit(Tok::Shl, 2);
            else if (peek(1) == '=')
                emit(Tok::Le, 2);
            else
                emit(Tok::Lt, 1);
            break;
          case '>':
            if (peek(1) == '>')
                emit(Tok::Shr, 2);
            else if (peek(1) == '=')
                emit(Tok::Ge, 2);
            else
                emit(Tok::Gt, 1);
            break;
          default:
            fatal("line {}: unexpected character '{}'", line, c);
        }
    }
    out.push_back({Tok::End, "", 0, line});
    return out;
}

} // namespace fpc::lang
