/**
 * @file
 * MiniMesa code generation.
 *
 * The generated code obeys the calling convention of §5.2/§7.2: at
 * every call instruction the evaluation stack holds exactly the
 * argument record. Nested calls are therefore flattened — the result
 * of an inner call is stored to a frame temporary before the outer
 * expression continues, which is precisely the drawback the paper
 * notes for f[g[], h[]] ("requires the results of g to be saved
 * before h is called, and then retrieved").
 *
 * Declared locals are zero-initialized at procedure entry, because
 * frames are recycled through the AV heap and would otherwise carry
 * garbage from prior activations.
 */

#ifndef FPC_LANG_CODEGEN_HH
#define FPC_LANG_CODEGEN_HH

#include <string>
#include <vector>

#include "lang/ast.hh"
#include "program/module.hh"

namespace fpc::lang
{

/** Compile one module AST; batch (if given) supplies arity checking
 *  for qualified calls to sibling modules. */
Module compileModule(const ModuleAst &ast,
                     const std::vector<ModuleAst> *batch = nullptr);

/** Lex, parse and compile a MiniMesa source file. */
std::vector<Module> compile(const std::string &source);

} // namespace fpc::lang

#endif // FPC_LANG_CODEGEN_HH
