#include "lang/codegen.hh"

#include <map>
#include <optional>
#include <set>

#include "asm/builder.hh"
#include "common/logging.hh"
#include "lang/parser.hh"

namespace fpc::lang
{

namespace
{

using isa::Op;

/** Count the Call nodes in an expression tree. */
unsigned
countCalls(const Expr &e)
{
    unsigned n = e.kind == Expr::Kind::Call ? 1 : 0;
    if (e.lhs)
        n += countCalls(*e.lhs);
    if (e.rhs)
        n += countCalls(*e.rhs);
    for (const auto &arg : e.args)
        n += countCalls(*arg);
    return n;
}

/** Count short-circuit nodes; each may need a temp when it holds
 *  calls and must be hoisted to preserve lazy evaluation. */
unsigned
countAndOr(const Expr &e)
{
    unsigned n =
        (e.kind == Expr::Kind::And || e.kind == Expr::Kind::Or) ? 1 : 0;
    if (e.lhs)
        n += countAndOr(*e.lhs);
    if (e.rhs)
        n += countAndOr(*e.rhs);
    for (const auto &arg : e.args)
        n += countAndOr(*arg);
    return n;
}

/** Upper bound on the temps one expression's flattening uses. */
unsigned
exprTemps(const Expr &e)
{
    return countCalls(e) + countAndOr(e);
}

/** Temps one statement needs (its root call, if any, goes direct). */
unsigned
stmtTemps(const Stmt &s)
{
    unsigned n = 0;
    if (s.value) {
        n += exprTemps(*s.value);
        const bool direct_root =
            s.value->kind == Expr::Kind::Call &&
            (s.kind == Stmt::Kind::Assign ||
             s.kind == Stmt::Kind::Return || s.kind == Stmt::Kind::Out ||
             s.kind == Stmt::Kind::Expr);
        if (direct_root)
            --n;
    }
    if (s.addr)
        n += exprTemps(*s.addr);
    return n;
}

unsigned
maxTemps(const std::vector<StmtPtr> &body)
{
    unsigned worst = 0;
    for (const auto &s : body) {
        worst = std::max(worst, stmtTemps(*s));
        worst = std::max(worst, maxTemps(s->body));
        worst = std::max(worst, maxTemps(s->elseBody));
    }
    return worst;
}

/**
 * Compile-time evaluation of constant expressions, with exactly the
 * interpreter's 16-bit semantics (so folding never changes results).
 * Returns nullopt for anything dynamic, a potential trap (division by
 * zero), or short-circuit forms whose value depends on normalization.
 */
std::optional<Word>
constEval(const Expr &e)
{
    using R = std::optional<Word>;
    switch (e.kind) {
      case Expr::Kind::Num:
        return e.number;
      case Expr::Kind::Unary: {
        const R v = constEval(*e.lhs);
        if (!v)
            return std::nullopt;
        switch (e.op) {
          case Tok::Minus:
            return static_cast<Word>(-static_cast<SWord>(*v));
          case Tok::Tilde:
            return static_cast<Word>(~*v);
          case Tok::Bang:
            return static_cast<Word>(*v == 0 ? 1 : 0);
          default:
            return std::nullopt;
        }
      }
      case Expr::Kind::Binary: {
        const R a = constEval(*e.lhs);
        const R b = constEval(*e.rhs);
        if (!a || !b)
            return std::nullopt;
        const auto sa = static_cast<SWord>(*a);
        const auto sb = static_cast<SWord>(*b);
        switch (e.op) {
          case Tok::Plus: return static_cast<Word>(*a + *b);
          case Tok::Minus: return static_cast<Word>(*a - *b);
          case Tok::Star:
            return static_cast<Word>(static_cast<SDWord>(sa) * sb);
          case Tok::Slash:
            if (*b == 0)
                return std::nullopt; // keep the runtime trap
            return static_cast<Word>(sa / sb);
          case Tok::Percent:
            if (*b == 0)
                return std::nullopt;
            return static_cast<Word>(sa % sb);
          case Tok::Amp: return static_cast<Word>(*a & *b);
          case Tok::Pipe: return static_cast<Word>(*a | *b);
          case Tok::Caret: return static_cast<Word>(*a ^ *b);
          case Tok::Shl:
            return static_cast<Word>(*b >= 16 ? 0 : *a << *b);
          case Tok::Shr:
            return static_cast<Word>(*b >= 16 ? 0 : *a >> *b);
          case Tok::Eq: return static_cast<Word>(*a == *b);
          case Tok::Ne: return static_cast<Word>(*a != *b);
          case Tok::Lt: return static_cast<Word>(sa < sb);
          case Tok::Le: return static_cast<Word>(sa <= sb);
          case Tok::Gt: return static_cast<Word>(sa > sb);
          case Tok::Ge: return static_cast<Word>(sa >= sb);
          default: return std::nullopt;
        }
      }
      case Expr::Kind::And: {
        const R a = constEval(*e.lhs);
        if (a && *a == 0)
            return Word{0}; // rhs (even a call) must not run
        if (!a)
            return std::nullopt;
        const R b = constEval(*e.rhs);
        if (!b)
            return std::nullopt;
        return static_cast<Word>(*b != 0 ? 1 : 0);
      }
      case Expr::Kind::Or: {
        const R a = constEval(*e.lhs);
        if (a && *a != 0)
            return Word{1};
        if (!a)
            return std::nullopt;
        const R b = constEval(*e.rhs);
        if (!b)
            return std::nullopt;
        return static_cast<Word>(*b != 0 ? 1 : 0);
      }
      default:
        return std::nullopt;
    }
}

struct LocalDecl
{
    std::string name;
    unsigned words;
};

void
collectLocals(const std::vector<StmtPtr> &body,
              std::vector<LocalDecl> &out)
{
    for (const auto &s : body) {
        if (s->kind == Stmt::Kind::VarDecl) {
            for (std::size_t i = 0; i < s->names.size(); ++i) {
                const unsigned words =
                    i < s->sizes.size() ? s->sizes[i] : 1;
                out.push_back({s->names[i], words});
            }
        }
        collectLocals(s->body, out);
        collectLocals(s->elseBody, out);
    }
}

/** Compiles one module. */
class ModuleCompiler
{
  public:
    ModuleCompiler(const ModuleAst &ast,
                   const std::vector<ModuleAst> *batch)
        : ast_(ast), batch_(batch), builder_(ast.name)
    {}

    Module
    compile()
    {
        std::vector<Word> init;
        for (unsigned i = 0; i < ast_.globals.size(); ++i) {
            const auto &[name, value] = ast_.globals[i];
            if (globals_.count(name))
                fatal("module {}: duplicate global {}", ast_.name, name);
            globals_[name] = i;
            init.push_back(value);
        }
        builder_.globals(ast_.globals.size(), std::move(init));

        for (const auto &proc : ast_.procs) {
            if (procArity_.count(proc.name))
                fatal("module {}: duplicate procedure {}", ast_.name,
                      proc.name);
            procArity_[proc.name] = proc.params.size();
        }

        for (const auto &proc : ast_.procs)
            compileProc(proc);
        return builder_.build();
    }

  private:
    // ---- per-procedure state ----------------------------------------
    struct Sym
    {
        unsigned slot = 0;
        unsigned words = 1;
        bool isArray = false;
    };

    ProcBuilder *pb_ = nullptr;
    std::map<std::string, Sym> slots_;
    unsigned tempBase_ = 0;
    unsigned tempNext_ = 0;

    void
    compileProc(const ProcAst &proc)
    {
        slots_.clear();
        std::vector<LocalDecl> locals;
        collectLocals(proc.body, locals);

        unsigned slot = 0;
        for (const auto &p : proc.params) {
            if (slots_.count(p))
                fatal("line {}: duplicate parameter {}", proc.line, p);
            slots_[p] = Sym{slot++, 1, false};
        }
        const unsigned first_local = slot;
        for (const auto &l : locals) {
            if (slots_.count(l.name))
                fatal("proc {}: duplicate local {}", proc.name, l.name);
            slots_[l.name] = Sym{slot, l.words, l.words > 1};
            slot += l.words;
        }
        tempBase_ = slot;
        const unsigned num_vars = slot + maxTemps(proc.body);

        pb_ = &builder_.proc(proc.name, proc.params.size(),
                             std::max(1u, num_vars));

        // Zero-initialize declared locals (and arrays): frames are
        // recycled through the heap and would carry garbage.
        for (unsigned i = first_local; i < tempBase_; ++i)
            pb_->loadImm(0).storeLocal(i);

        emitBody(proc.body);

        // Implicit "return 0" at the end of the body.
        pb_->loadImm(0).ret();
    }

    void
    emitBody(const std::vector<StmtPtr> &body)
    {
        for (const auto &s : body)
            emitStmt(*s);
    }

    void
    emitStmt(const Stmt &s)
    {
        tempNext_ = tempBase_; // temps recycle per statement
        switch (s.kind) {
          case Stmt::Kind::VarDecl:
            break;
          case Stmt::Kind::Assign: {
            emitValueWithDirectRoot(*s.value);
            auto it = slots_.find(s.name);
            if (it != slots_.end()) {
                if (it->second.isArray)
                    fatal("line {}: cannot assign to array {}", s.line,
                          s.name);
                pb_->storeLocal(it->second.slot);
            } else {
                auto git = globals_.find(s.name);
                if (git == globals_.end())
                    fatal("line {}: unknown variable {}", s.line, s.name);
                pb_->storeGlobal(git->second);
            }
            break;
          }
          case Stmt::Kind::AssignIndex: {
            const Sym sym = arraySym(s.name, s.line);
            // Constant subscripts address the slot directly, keeping
            // the access in the register bank.
            if (const auto k = constEval(*s.addr)) {
                if (*k >= sym.words)
                    fatal("line {}: index {} out of bounds for {}[{}]",
                          s.line, *k, s.name, sym.words);
                emitValueWithDirectRoot(*s.value);
                pb_->storeLocal(sym.slot + *k);
                break;
            }
            ExprPtr value = cloneFlatten(*s.value);
            ExprPtr index = cloneFlatten(*s.addr);
            emitPure(*value);
            pb_->loadLocalAddr(sym.slot);
            emitPure(*index);
            pb_->op(isa::Op::ADD);
            pb_->op(isa::Op::WR);
            break;
          }
          case Stmt::Kind::Store: {
            ExprPtr value = cloneFlatten(*s.value);
            ExprPtr addr = cloneFlatten(*s.addr);
            emitPure(*value);
            emitPure(*addr);
            pb_->op(Op::WR);
            break;
          }
          case Stmt::Kind::If: {
            // A constant condition selects its branch at compile time
            // (the condition can have no side effects if it folds).
            if (const auto folded = constEval(*s.value)) {
                emitBody(*folded != 0 ? s.body : s.elseBody);
                break;
            }
            ExprPtr cond = cloneFlatten(*s.value);
            emitPure(*cond);
            auto else_label = pb_->newLabel();
            pb_->jumpZero(else_label);
            emitBody(s.body);
            if (s.elseBody.empty()) {
                pb_->label(else_label);
            } else {
                auto end_label = pb_->newLabel();
                pb_->jump(end_label);
                pb_->label(else_label);
                emitBody(s.elseBody);
                pb_->label(end_label);
            }
            break;
          }
          case Stmt::Kind::While: {
            // `while (0)` disappears; `while (k != 0)` keeps only the
            // backward jump.
            if (const auto folded = constEval(*s.value);
                folded && *folded == 0) {
                break;
            }
            auto top = pb_->newLabel();
            auto end = pb_->newLabel();
            pb_->label(top);
            {
                ExprPtr cond = cloneFlatten(*s.value);
                emitPure(*cond);
            }
            pb_->jumpZero(end);
            emitBody(s.body);
            pb_->jump(top);
            pb_->label(end);
            break;
          }
          case Stmt::Kind::Return:
            if (s.value)
                emitValueWithDirectRoot(*s.value);
            else
                pb_->loadImm(0);
            pb_->ret();
            break;
          case Stmt::Kind::Out:
            emitValueWithDirectRoot(*s.value);
            pb_->op(Op::OUT);
            break;
          case Stmt::Kind::Halt:
            pb_->halt();
            break;
          case Stmt::Kind::Yield:
            pb_->op(Op::YIELD);
            break;
          case Stmt::Kind::Expr:
            emitValueWithDirectRoot(*s.value);
            pb_->op(Op::DROP);
            break;
        }
    }

    /**
     * Emit an expression whose root call (if the whole expression is
     * one) may run with the stack empty, avoiding a temp.
     */
    void
    emitValueWithDirectRoot(const Expr &e)
    {
        if (e.kind == Expr::Kind::Call) {
            emitCall(e);
            return;
        }
        ExprPtr flat = cloneFlatten(e);
        emitPure(*flat);
    }

    /**
     * Clone the expression, replacing every Call subtree by a temp
     * variable reference after emitting the call and a store. The
     * returned tree is call-free ("pure"): evaluating it touches only
     * the stack.
     */
    ExprPtr
    cloneFlatten(const Expr &e)
    {
        auto out = std::make_unique<Expr>();
        out->kind = e.kind;
        out->line = e.line;
        out->number = e.number;
        out->name = e.name;
        out->moduleName = e.moduleName;
        out->op = e.op;

        if (e.kind == Expr::Kind::Call) {
            emitCall(e);
            return spillToTemp(std::move(out));
        }

        // A short-circuit node containing calls cannot have the calls
        // hoisted past its branch points (that would evaluate them
        // eagerly). Emit the whole short-circuit computation here —
        // the stack is empty at its branch boundaries — flattening
        // each side at its own evaluation point, and spill the 0/1.
        if ((e.kind == Expr::Kind::And || e.kind == Expr::Kind::Or) &&
            countCalls(e) > 0) {
            const bool is_and = e.kind == Expr::Kind::And;
            auto exit_label = pb_->newLabel();
            auto end_label = pb_->newLabel();
            {
                ExprPtr lhs = cloneFlatten(*e.lhs);
                emitPure(*lhs);
            }
            if (is_and)
                pb_->jumpZero(exit_label);
            else
                pb_->jumpNotZero(exit_label);
            {
                ExprPtr rhs = cloneFlatten(*e.rhs);
                emitPure(*rhs);
            }
            if (is_and)
                pb_->jumpZero(exit_label);
            else
                pb_->jumpNotZero(exit_label);
            pb_->loadImm(is_and ? 1 : 0).jump(end_label);
            pb_->label(exit_label).loadImm(is_and ? 0 : 1);
            pb_->label(end_label);
            return spillToTemp(std::move(out));
        }

        if (e.lhs)
            out->lhs = cloneFlatten(*e.lhs);
        if (e.rhs)
            out->rhs = cloneFlatten(*e.rhs);
        for (const auto &arg : e.args)
            out->args.push_back(cloneFlatten(*arg));
        return out;
    }

    /** Store the value on the stack into a fresh statement temp and
     *  return a reference node for it. */
    ExprPtr
    spillToTemp(ExprPtr node)
    {
        const unsigned temp = tempNext_++;
        if (temp >= pb_->numVars())
            panic("temp slot {} beyond frame ({} vars)", temp,
                  pb_->numVars());
        pb_->storeLocal(temp);
        node->kind = Expr::Kind::Var;
        node->name = "$t";
        node->number = static_cast<Word>(temp);
        node->lhs.reset();
        node->rhs.reset();
        node->args.clear();
        return node;
    }

    /** Look up an array local; fatal if absent or scalar. */
    Sym
    arraySym(const std::string &name, unsigned line) const
    {
        auto it = slots_.find(name);
        if (it == slots_.end() || !it->second.isArray)
            fatal("line {}: {} is not a local array", line, name);
        return it->second;
    }

    /** Emit a call: arguments (already call-free trees are produced
     *  on the fly here) then the transfer. */
    void
    emitCall(const Expr &call)
    {
        // Arguments are flattened first, so that when they are pushed
        // the stack contains partial argument records only.
        std::vector<ExprPtr> flat_args;
        flat_args.reserve(call.args.size());
        for (const auto &arg : call.args)
            flat_args.push_back(cloneFlatten(*arg));
        for (const auto &arg : flat_args)
            emitPure(*arg);

        if (call.moduleName.empty()) {
            auto it = procArity_.find(call.name);
            if (it == procArity_.end()) {
                fatal("line {}: unknown procedure {} (qualify external "
                      "calls as Module.proc)",
                      call.line, call.name);
            }
            if (it->second != call.args.size()) {
                fatal("line {}: {} takes {} arguments, got {}",
                      call.line, call.name, it->second,
                      call.args.size());
            }
            pb_->callLocal(call.name);
            return;
        }

        if (batch_) {
            for (const auto &mod : *batch_) {
                if (mod.name != call.moduleName)
                    continue;
                bool found = false;
                for (const auto &proc : mod.procs) {
                    if (proc.name != call.name)
                        continue;
                    found = true;
                    if (proc.params.size() != call.args.size()) {
                        fatal("line {}: {}.{} takes {} arguments, "
                              "got {}",
                              call.line, call.moduleName, call.name,
                              proc.params.size(), call.args.size());
                    }
                }
                if (!found)
                    fatal("line {}: module {} has no procedure {}",
                          call.line, call.moduleName, call.name);
            }
        }
        const unsigned ext =
            builder_.externRef(call.moduleName, call.name);
        pb_->callExtern(ext);
    }

    /** Emit a call-free expression (constants folded). */
    void
    emitPure(const Expr &e)
    {
        if (const auto folded = constEval(e)) {
            pb_->loadImm(*folded);
            return;
        }
        switch (e.kind) {
          case Expr::Kind::Num:
            pb_->loadImm(e.number);
            break;
          case Expr::Kind::Var: {
            if (e.name == "$t") { // flattened temp; slot in number
                pb_->loadLocal(e.number);
                break;
            }
            auto it = slots_.find(e.name);
            if (it != slots_.end()) {
                if (it->second.isArray) {
                    // An array name decays to the address of its
                    // first element.
                    pb_->loadLocalAddr(it->second.slot);
                } else {
                    pb_->loadLocal(it->second.slot);
                }
                break;
            }
            auto git = globals_.find(e.name);
            if (git == globals_.end())
                fatal("line {}: unknown variable {}", e.line, e.name);
            pb_->loadGlobal(git->second);
            break;
          }
          case Expr::Kind::Index: {
            const Sym sym = arraySym(e.name, e.line);
            if (const auto k = constEval(*e.lhs)) {
                if (*k >= sym.words)
                    fatal("line {}: index {} out of bounds for {}[{}]",
                          e.line, *k, e.name, sym.words);
                pb_->loadLocal(sym.slot + *k);
                break;
            }
            pb_->loadLocalAddr(sym.slot);
            emitPure(*e.lhs);
            pb_->op(isa::Op::ADD);
            pb_->op(isa::Op::RD);
            break;
          }
          case Expr::Kind::Unary:
            emitPure(*e.lhs);
            switch (e.op) {
              case Tok::Minus: pb_->op(Op::NEG); break;
              case Tok::Tilde: pb_->op(Op::NOT); break;
              case Tok::Bang:
                pb_->loadImm(0).op(Op::EQ);
                break;
              default:
                panic("bad unary operator");
            }
            break;
          case Expr::Kind::Binary:
            emitPure(*e.lhs);
            emitPure(*e.rhs);
            pb_->op(binaryOp(e.op, e.line));
            break;
          case Expr::Kind::And: {
            auto false_label = pb_->newLabel();
            auto end_label = pb_->newLabel();
            emitPure(*e.lhs);
            pb_->jumpZero(false_label);
            emitPure(*e.rhs);
            pb_->jumpZero(false_label);
            pb_->loadImm(1).jump(end_label);
            pb_->label(false_label).loadImm(0);
            pb_->label(end_label);
            break;
          }
          case Expr::Kind::Or: {
            auto true_label = pb_->newLabel();
            auto end_label = pb_->newLabel();
            emitPure(*e.lhs);
            pb_->jumpNotZero(true_label);
            emitPure(*e.rhs);
            pb_->jumpNotZero(true_label);
            pb_->loadImm(0).jump(end_label);
            pb_->label(true_label).loadImm(1);
            pb_->label(end_label);
            break;
          }
          case Expr::Kind::AddrOf: {
            auto it = slots_.find(e.name);
            if (it == slots_.end())
                fatal("line {}: @ requires a local variable, {} is not "
                      "one",
                      e.line, e.name);
            pb_->loadLocalAddr(it->second.slot);
            break;
          }
          case Expr::Kind::Deref:
            emitPure(*e.lhs);
            pb_->op(Op::RD);
            break;
          case Expr::Kind::Call:
            panic("call survived flattening");
        }
    }

    static Op
    binaryOp(Tok op, unsigned line)
    {
        switch (op) {
          case Tok::Plus: return Op::ADD;
          case Tok::Minus: return Op::SUB;
          case Tok::Star: return Op::MUL;
          case Tok::Slash: return Op::DIV;
          case Tok::Percent: return Op::MOD;
          case Tok::Amp: return Op::AND;
          case Tok::Pipe: return Op::IOR;
          case Tok::Caret: return Op::XOR;
          case Tok::Shl: return Op::SHL;
          case Tok::Shr: return Op::SHR;
          case Tok::Eq: return Op::EQ;
          case Tok::Ne: return Op::NE;
          case Tok::Lt: return Op::LT;
          case Tok::Le: return Op::LE;
          case Tok::Gt: return Op::GT;
          case Tok::Ge: return Op::GE;
          default:
            fatal("line {}: bad binary operator", line);
        }
    }

    const ModuleAst &ast_;
    const std::vector<ModuleAst> *batch_;
    ModuleBuilder builder_;
    std::map<std::string, unsigned> globals_;
    std::map<std::string, unsigned> procArity_;
};

} // namespace

Module
compileModule(const ModuleAst &ast, const std::vector<ModuleAst> *batch)
{
    ModuleCompiler compiler(ast, batch);
    return compiler.compile();
}

std::vector<Module>
compile(const std::string &source)
{
    const auto tokens = tokenize(source);
    const auto asts = parse(tokens);
    std::vector<Module> out;
    out.reserve(asts.size());
    for (const auto &ast : asts)
        out.push_back(compileModule(ast, &asts));
    return out;
}

} // namespace fpc::lang
