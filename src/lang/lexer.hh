/**
 * @file
 * MiniMesa lexer.
 *
 * MiniMesa is the Algol-family source language of this reproduction —
 * the top level of the paper's §2 hierarchy (source -> encoding ->
 * interpreter). It is deliberately small: 16-bit integers, modules
 * with globals and procedures, expressions, if/while/return, local
 * and qualified external calls, plus `out`, `yield` and address-of
 * for exercising the §7.4 machinery.
 */

#ifndef FPC_LANG_LEXER_HH
#define FPC_LANG_LEXER_HH

#include <cstdint>
#include <string>
#include <vector>

namespace fpc::lang
{

enum class Tok
{
    End,
    Ident,
    Number,
    // keywords
    KwModule, KwVar, KwProc, KwIf, KwElse, KwWhile, KwReturn, KwOut,
    KwHalt, KwYield,
    // punctuation
    LParen, RParen, LBrace, RBrace, LBracket, RBracket,
    Semi, Comma, Dot, Assign,
    // operators
    Plus, Minus, Star, Slash, Percent,
    Amp, Pipe, Caret, Tilde, Shl, Shr,
    Eq, Ne, Lt, Le, Gt, Ge,
    AndAnd, OrOr, Bang,
    At ///< '@x': address of a local (§7.4 pointers to locals)
};

const char *tokName(Tok tok);

struct Token
{
    Tok kind = Tok::End;
    std::string text;
    std::uint16_t number = 0;
    unsigned line = 0;
};

/** Tokenize; throws FatalError with a line number on bad input. */
std::vector<Token> tokenize(const std::string &source);

} // namespace fpc::lang

#endif // FPC_LANG_LEXER_HH
