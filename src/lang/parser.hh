/**
 * @file
 * MiniMesa recursive-descent parser.
 */

#ifndef FPC_LANG_PARSER_HH
#define FPC_LANG_PARSER_HH

#include <vector>

#include "lang/ast.hh"

namespace fpc::lang
{

/** Parse a source file holding one or more modules. */
std::vector<ModuleAst> parse(const std::vector<Token> &tokens);

} // namespace fpc::lang

#endif // FPC_LANG_PARSER_HH
