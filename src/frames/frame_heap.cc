#include "frames/frame_heap.hh"

#include "common/logging.hh"
#include "xfer/context.hh"

namespace fpc
{

double
FrameHeapStats::fragmentation() const
{
    if (allocatedWords == 0)
        return 0.0;
    return 1.0 - static_cast<double>(requestedWords) / allocatedWords;
}

FrameHeap::FrameHeap(Memory &memory, const SystemLayout &layout,
                     SizeClasses classes, unsigned frames_per_trap)
    : mem_(memory), layout_(layout), classes_(std::move(classes)),
      framesPerTrap_(frames_per_trap)
{
    if (classes_.numClasses() > layout_.maxSizeClasses)
        panic("more size classes ({}) than AV slots ({})",
              classes_.numClasses(), layout_.maxSizeClasses);
    if (framesPerTrap_ == 0)
        panic("framesPerTrap must be positive");
    // Skip quad 0: the zero context word must stay NIL.
    carve_ = layout_.frameBase + 4;
    // Clear AV (unaccounted: boot-time initialization).
    for (unsigned i = 0; i < classes_.numClasses(); ++i)
        mem_.poke(layout_.avAddr + i, 0);
}

Addr
FrameHeap::alloc(unsigned fsi)
{
    if (fsi >= classes_.numClasses())
        panic("alloc: fsi {} out of range", fsi);

    const Addr av_slot = layout_.avAddr + fsi;
    // Ref 1: fetch the list head from AV.
    Word head = mem_.read(av_slot, AccessKind::Heap);
    stats_.refsAlloc += 1;
    if (head == nilContext) {
        // "If the free list is empty there is a trap to a software
        // allocator which creates more frames of the desired size."
        ++stats_.softwareTraps;
        replenish(fsi);
        head = mem_.read(av_slot, AccessKind::Heap);
        stats_.refsAlloc += 1;
    }

    const Context ctx = unpackContext(head, layout_);
    const Addr frame_ptr = ctx.framePtr;
    // Ref 2: fetch the next pointer from the first node.
    const Word next = mem_.read(frame_ptr, AccessKind::Heap);
    // Ref 3: store it into the list head.
    mem_.write(av_slot, next, AccessKind::Heap);
    stats_.refsAlloc += 2;

    ++stats_.allocs;
    stats_.allocatedWords += classes_.classWords(fsi);
    stats_.blockWords += classes_.blockWords(fsi);
    return frame_ptr;
}

unsigned
FrameHeap::freeListLength(unsigned fsi) const
{
    if (fsi >= classes_.numClasses())
        panic("freeListLength: fsi {} out of range", fsi);
    unsigned n = 0;
    Word head = mem_.peek(layout_.avAddr + fsi);
    while (head != nilContext) {
        ++n;
        const Context ctx = unpackContext(head, layout_);
        head = mem_.peek(ctx.framePtr);
    }
    return n;
}

Addr
FrameHeap::allocWords(unsigned payload_words)
{
    if (!classes_.fits(payload_words)) {
        fatal("frame request of {} words exceeds the largest size "
              "class ({})",
              payload_words, classes_.maxWords());
    }
    const unsigned fsi = classes_.fsiFor(payload_words);
    stats_.requestedWords += payload_words;
    return alloc(fsi);
}

void
FrameHeap::free(Addr frame_ptr)
{
    // Ref 1: read the header to learn the size class; "each frame has
    // an extra word which holds its frame size index, so that the size
    // need not be specified when it is freed."
    const Word header = mem_.read(frame_ptr - 1, AccessKind::Heap);
    const unsigned fsi = header & frame::fsiMask;
    if (fsi >= classes_.numClasses())
        panic("free: corrupt header at {} (fsi {})", frame_ptr - 1, fsi);

    const Addr av_slot = layout_.avAddr + fsi;
    // Ref 2: fetch the current list head.
    const Word head = mem_.read(av_slot, AccessKind::Heap);
    // Ref 3: store it as this frame's next pointer.
    mem_.write(frame_ptr, head, AccessKind::Heap);
    // Ref 4: store this frame into the list head.
    mem_.write(av_slot, packFrameContext(frame_ptr, layout_),
               AccessKind::Heap);
    stats_.refsFree += 4;
    ++stats_.frees;
}

bool
FrameHeap::release(Addr frame_ptr)
{
    // The retained check shares the header read with free(); to keep
    // the paper's four-reference count exact we read it once here and
    // hand the fsi path the same value.
    const Word header = mem_.read(frame_ptr - 1, AccessKind::Heap);
    if (header & frame::retainedFlag) {
        ++stats_.retainedSkips;
        stats_.refsFree += 1;
        return false;
    }
    const unsigned fsi = header & frame::fsiMask;
    if (fsi >= classes_.numClasses())
        panic("release: corrupt header at {} (fsi {})", frame_ptr - 1,
              fsi);

    const Addr av_slot = layout_.avAddr + fsi;
    const Word head = mem_.read(av_slot, AccessKind::Heap);
    mem_.write(frame_ptr, head, AccessKind::Heap);
    mem_.write(av_slot, packFrameContext(frame_ptr, layout_),
               AccessKind::Heap);
    stats_.refsFree += 3 + 1; // header read above + three list refs
    ++stats_.frees;
    return true;
}

void
FrameHeap::setRetained(Addr frame_ptr, bool retained)
{
    writeHeaderFlags(frame_ptr, retained ? frame::retainedFlag : 0,
                     retained ? 0 : frame::retainedFlag);
}

bool
FrameHeap::isRetained(Addr frame_ptr) const
{
    return readHeader(frame_ptr) & frame::retainedFlag;
}

void
FrameHeap::setFlagged(Addr frame_ptr, bool flagged)
{
    writeHeaderFlags(frame_ptr, flagged ? frame::flaggedFlag : 0,
                     flagged ? 0 : frame::flaggedFlag);
}

bool
FrameHeap::isFlagged(Addr frame_ptr) const
{
    return readHeader(frame_ptr) & frame::flaggedFlag;
}

unsigned
FrameHeap::frameFsi(Addr frame_ptr) const
{
    return readHeader(frame_ptr) & frame::fsiMask;
}

unsigned
FrameHeap::frameWords(Addr frame_ptr) const
{
    return classes_.classWords(frameFsi(frame_ptr));
}

Word
FrameHeap::readHeader(Addr frame_ptr) const
{
    return mem_.peek(frame_ptr - 1);
}

void
FrameHeap::writeHeaderFlags(Addr frame_ptr, Word flags_on, Word flags_off)
{
    Word header = mem_.read(frame_ptr - 1, AccessKind::FrameState);
    header = static_cast<Word>((header | flags_on) & ~flags_off);
    mem_.write(frame_ptr - 1, header, AccessKind::FrameState);
}

void
FrameHeap::replenish(unsigned fsi)
{
    const unsigned block = classes_.blockWords(fsi);
    const Addr av_slot = layout_.avAddr + fsi;
    for (unsigned i = 0; i < framesPerTrap_; ++i) {
        if (carve_ + block > layout_.frameEnd)
            fatal("frame heap exhausted carving class {} ({} words "
                  "left)",
                  fsi, layout_.frameEnd - carve_);
        const Addr header_addr = carve_;
        const Addr frame_ptr = header_addr + 1;
        carve_ += block;
        // The software allocator's own storage traffic is charged as
        // heap traffic: write the header, then push onto the list.
        mem_.write(header_addr, static_cast<Word>(fsi),
                   AccessKind::Heap);
        const Word head = mem_.read(av_slot, AccessKind::Heap);
        mem_.write(frame_ptr, head, AccessKind::Heap);
        mem_.write(av_slot, packFrameContext(frame_ptr, layout_),
                   AccessKind::Heap);
    }
}

void
FrameHeap::dumpStats(std::ostream &os) const
{
    os << "---- frameHeap ----\n"
       << "  allocs=" << stats_.allocs << " frees=" << stats_.frees
       << " traps=" << stats_.softwareTraps << "\n"
       << "  refs/alloc="
       << (stats_.allocs
               ? static_cast<double>(stats_.refsAlloc) / stats_.allocs
               : 0)
       << " refs/free="
       << (stats_.frees
               ? static_cast<double>(stats_.refsFree) / stats_.frees
               : 0)
       << "\n"
       << "  fragmentation=" << stats_.fragmentation() << "\n";
}

} // namespace fpc
