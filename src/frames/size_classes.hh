/**
 * @file
 * Frame size classes (paper §5.3).
 *
 * "A procedure specifies its frame size in its first byte by a frame
 *  size index into an array of free lists called the allocation vector
 *  AV. Frame sizes increase from a minimum of about 16 bytes in steps
 *  of about 20%; less than 20 steps are needed to cover any size up to
 *  several thousand bytes."
 *
 * The choice of sizes is private to the compiler and the software
 * allocator (§5.3), so it is a standalone value type shared by both
 * sides — the fast heap itself never interprets an fsi beyond using it
 * to index AV.
 */

#ifndef FPC_FRAMES_SIZE_CLASSES_HH
#define FPC_FRAMES_SIZE_CLASSES_HH

#include <vector>

#include "common/types.hh"

namespace fpc
{

/** The compiler/allocator agreement on fsi -> size in words. */
class SizeClasses
{
  public:
    /**
     * Build a geometric size-class table.
     * @param min_words  payload words of class 0
     * @param growth     per-step growth factor (paper: "about 20%")
     * @param max_classes number of classes (paper: "less than 20")
     */
    SizeClasses(unsigned min_words, double growth, unsigned max_classes);

    /** The paper's configuration: 8 words (16 bytes), ~20% steps,
     *  fewer than 20 classes reaching several thousand bytes. */
    static SizeClasses standard();

    unsigned numClasses() const { return sizes_.size(); }

    /** Payload words available in the given class. */
    unsigned classWords(unsigned fsi) const;

    /** Smallest class holding the given payload; panics if none. */
    unsigned fsiFor(unsigned payload_words) const;

    /** True if some class can hold the payload. */
    bool fits(unsigned payload_words) const;

    /** Largest payload any class holds. */
    unsigned maxWords() const { return sizes_.back(); }

    /**
     * Words a block of this class occupies in the heap, including the
     * header word and quad-alignment padding.
     */
    unsigned blockWords(unsigned fsi) const;

  private:
    std::vector<unsigned> sizes_;
};

} // namespace fpc

#endif // FPC_FRAMES_SIZE_CLASSES_HH
