#include "frames/size_classes.hh"

#include <cmath>

#include "common/logging.hh"

namespace fpc
{

SizeClasses::SizeClasses(unsigned min_words, double growth,
                         unsigned max_classes)
{
    if (min_words == 0 || growth <= 1.0 || max_classes == 0 ||
        max_classes > 32) {
        panic("SizeClasses: bad shape (min={}, growth={}, n={})",
              min_words, growth, max_classes);
    }
    double size = min_words;
    unsigned prev = 0;
    for (unsigned i = 0; i < max_classes; ++i) {
        auto words = static_cast<unsigned>(std::ceil(size));
        if (words <= prev)
            words = prev + 1;
        sizes_.push_back(words);
        prev = words;
        size *= growth;
    }
}

SizeClasses
SizeClasses::standard()
{
    // 8 words = 16 bytes minimum, 20% steps, 19 classes (fewer than
    // 20). Note the paper's own numbers do not quite close: 20% steps
    // reach ~430 bytes in 19 steps, not "several thousand" — reaching
    // several KB would take ~34% steps or ~28 classes. We keep the 20%
    // step because the ~10% fragmentation claim (F2) follows from it
    // (expected waste is about half the step size). See EXPERIMENTS.md.
    return SizeClasses(8, 1.2, 19);
}

unsigned
SizeClasses::classWords(unsigned fsi) const
{
    if (fsi >= sizes_.size())
        panic("fsi {} out of range ({} classes)", fsi, sizes_.size());
    return sizes_[fsi];
}

unsigned
SizeClasses::fsiFor(unsigned payload_words) const
{
    for (unsigned i = 0; i < sizes_.size(); ++i)
        if (sizes_[i] >= payload_words)
            return i;
    panic("no size class holds {} words (max {})", payload_words,
          sizes_.back());
}

bool
SizeClasses::fits(unsigned payload_words) const
{
    return payload_words <= sizes_.back();
}

unsigned
SizeClasses::blockWords(unsigned fsi) const
{
    const unsigned raw = classWords(fsi) + 1; // + header word
    return (raw + 3u) & ~3u;                  // quad alignment
}

} // namespace fpc
