/**
 * @file
 * The frame allocation heap (paper §5.3, Figure 2).
 *
 * The allocation vector AV and all free-list links live in simulated
 * main storage, so the reference counts the paper quotes are literal
 * here: three storage references to allocate a frame (fetch list head
 * from AV, fetch next pointer from the first node, store it into the
 * list head) and four to free one (the extra reference reads the
 * header word that holds the frame size index, "so that the size need
 * not be specified when it is freed").
 *
 * When a free list is empty there is "a trap to a software allocator
 * which creates more frames of the desired size" — modelled by
 * carving fresh blocks from a bump region, with its storage traffic
 * charged and the trap counted.
 *
 * The heap imposes no last-in first-out discipline, which is the
 * paper's point: the same allocator serves procedure frames, retained
 * frames, coroutines, multiple processes, and long argument records.
 */

#ifndef FPC_FRAMES_FRAME_HEAP_HH
#define FPC_FRAMES_FRAME_HEAP_HH

#include <ostream>

#include "common/types.hh"
#include "frames/size_classes.hh"
#include "memory/memory.hh"
#include "xfer/layout.hh"

namespace fpc
{

/** Statistics the heap maintains. */
struct FrameHeapStats
{
    CountT allocs = 0;
    CountT frees = 0;
    CountT softwareTraps = 0;   ///< empty-free-list traps
    CountT retainedSkips = 0;   ///< release() calls that kept the frame
    CountT requestedWords = 0;  ///< payload words callers asked for
    CountT allocatedWords = 0;  ///< payload words classes provided
    CountT blockWords = 0;      ///< heap words consumed incl. headers
    CountT refsAlloc = 0;       ///< storage references spent allocating
    CountT refsFree = 0;        ///< storage references spent freeing

    /** Internal fragmentation: fraction of granted payload unused. */
    double fragmentation() const;

    /** Frames currently allocated and not yet freed. */
    CountT liveFrames() const { return allocs - frees; }
};

/** The fast frame allocator over simulated storage. */
class FrameHeap
{
  public:
    /**
     * @param memory   the simulated storage holding AV and the region
     * @param layout   supplies avAddr and the frame region bounds
     * @param classes  the compiler/allocator size agreement
     * @param frames_per_trap frames the software allocator carves per
     *        empty-list trap
     */
    FrameHeap(Memory &memory, const SystemLayout &layout,
              SizeClasses classes, unsigned frames_per_trap = 8);

    const SizeClasses &classes() const { return classes_; }

    /**
     * Allocate a frame of the given size class; returns the frame
     * pointer (one word past the header). Exactly three storage
     * references on the fast path.
     */
    Addr alloc(unsigned fsi);

    /**
     * Allocate for a payload request, recording fragmentation stats.
     */
    Addr allocWords(unsigned payload_words);

    /**
     * Free the frame unconditionally. Exactly four storage references.
     */
    void free(Addr frame_ptr);

    /**
     * The RETURN-path release: frees the frame unless it is retained
     * (§4). Returns true if the frame was actually freed.
     */
    bool release(Addr frame_ptr);

    /** @name Retained frames and §7.4 flags. @{ */
    void setRetained(Addr frame_ptr, bool retained);
    bool isRetained(Addr frame_ptr) const;
    void setFlagged(Addr frame_ptr, bool flagged);
    bool isFlagged(Addr frame_ptr) const;
    /** @} */

    /** Read a frame's size class from its header (unaccounted). */
    unsigned frameFsi(Addr frame_ptr) const;

    /** Payload words of an allocated frame. */
    unsigned frameWords(Addr frame_ptr) const;

    const FrameHeapStats &stats() const { return stats_; }
    void resetStats() { stats_ = FrameHeapStats(); }

    /** Free frames currently on the fsi free list (AV state). Walks
     *  the in-storage list with unaccounted peeks, so sampling it
     *  charges no simulated references. */
    unsigned freeListLength(unsigned fsi) const;

    /** Words of the region not yet carved by the software allocator. */
    Addr regionRemaining() const { return layout_.frameEnd - carve_; }

    void dumpStats(std::ostream &os) const;

  private:
    /** The software allocator: replenish the free list for fsi. */
    void replenish(unsigned fsi);

    Word readHeader(Addr frame_ptr) const;
    void writeHeaderFlags(Addr frame_ptr, Word flags_on, Word flags_off);

    Memory &mem_;
    const SystemLayout layout_;
    SizeClasses classes_;
    unsigned framesPerTrap_;
    Addr carve_; ///< bump pointer for the software allocator
    FrameHeapStats stats_;
};

} // namespace fpc

#endif // FPC_FRAMES_FRAME_HEAP_HH
