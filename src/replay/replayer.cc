#include "replay/replayer.hh"

#include <filesystem>
#include <fstream>
#include <limits>
#include <utility>

#include "common/logging.hh"
#include "common/strfmt.hh"
#include "lang/codegen.hh"
#include "machine/digest.hh"
#include "machine/machine.hh"
#include "memory/memory.hh"
#include "obs/fanout.hh"
#include "obs/json.hh"
#include "obs/postmortem.hh"
#include "replay/recorder.hh"

namespace fpc::replay
{

/** One replay execution's knobs. */
struct Replayer::ExecSpec
{
    Impl impl = Impl::Mesa;
    bool accel = true;
    bool threaded = false;
    /** Collect per-XFER digests of this scope inside the window. */
    bool perXfer = false;
    DigestScope xferScope = DigestScope::Full;
    std::uint64_t windowBegin = 0;
    std::uint64_t windowEnd = std::numeric_limits<std::uint64_t>::max();
    /** Keep a transfer ring for the divergence bundle. */
    bool keepRing = false;
};

/** What one replay execution produced. */
struct Replayer::ExecOutcome
{
    JobRecord replayed; ///< samples + final, recorded protocol
    std::vector<XferDigester::Entry> xferDigests;
    std::vector<XferRecord> ring;
    bool decisionOverrun = false;
    bool decisionMismatch = false;
    std::uint64_t imageHash = 0;
};

Replayer::Replayer(RecordLog log) : log_(std::move(log))
{
    modules_ = lang::compile(log_.source);
}

Replayer::ExecOutcome
Replayer::executeJob(const JobRecord &job, const ExecSpec &spec)
{
    ExecOutcome out;

    const SystemLayout layout;
    Memory mem(layout.memWords);
    Loader loader{layout, SizeClasses::standard()};
    for (const auto &m : modules_)
        loader.add(m);
    LinkPlan plan;
    plan.lowering = log_.lowering;
    plan.shortCalls = log_.shortCalls;
    const LoadedImage image = loader.load(mem, plan);
    // Hash at the same point the recorder did: after the loader, and
    // before the Machine exists (its FrameHeap rewrites the AV).
    out.imageHash = imageHash(mem, image);

    MachineConfig config;
    config.impl = spec.impl;
    config.numBanks = log_.banks;
    config.timesliceSteps = log_.timeslice;
    config.accel.enabled = spec.accel;
    config.accel.threaded = spec.accel && spec.threaded;
    Machine machine(mem, image, config);

    obs::Fanout fanout;
    std::optional<XferDigester> digester;
    if (spec.perXfer) {
        digester.emplace(machine, spec.xferScope, spec.windowBegin,
                         spec.windowEnd);
        fanout.add(&*digester);
    }
    obs::FlightRecorder flight;
    if (spec.keepRing)
        fanout.add(&flight);
    if (!fanout.empty())
        machine.setObserver(&fanout);

    // The replayed stream follows the recording protocol exactly:
    // sampler attached before start, one bracket sample after start,
    // interval samples during run, final captured before any pop.
    Recorder collector;
    collector.beginJob(job.id, job.worker);
    machine.setSampler(&collector, log_.interval);

    // Forced decisions: the recorded contexts, in order, with their
    // step stamps cross-checked. A live-policy fallback past the end
    // of the log is an overrun — reported even if digests match.
    std::size_t next = 0;
    if (log_.timeslice > 0 || !job.decisions.empty()) {
        machine.setScheduler([this, &job, &next, &out](Machine &m) {
            if (next < job.decisions.size()) {
                const Decision &d = job.decisions[next++];
                if (d.step != m.stats().steps)
                    out.decisionMismatch = true;
                return d.ctx;
            }
            out.decisionOverrun = true;
            return m.currentFrameContext();
        });
    }

    machine.start(log_.entryModule, log_.entryProc, log_.args);
    collector.sample(machine);
    const RunResult result = machine.run();
    collector.finish(machine, result);
    if (next < job.decisions.size())
        out.decisionMismatch = true; // recorded decisions left unused

    out.replayed = collector.takeJob();
    if (spec.perXfer)
        out.xferDigests = digester->entries();
    if (spec.keepRing)
        out.ring = flight.records();
    return out;
}

namespace
{

/** First index where the recorded and replayed streams disagree, or
 *  npos when they match (stamps and digests both). */
std::size_t
firstMismatch(const std::vector<Sample> &recorded,
              const std::vector<Sample> &replayed)
{
    const std::size_t n = std::min(recorded.size(), replayed.size());
    for (std::size_t i = 0; i < n; ++i) {
        if (recorded[i].steps != replayed[i].steps ||
            recorded[i].cycles != replayed[i].cycles ||
            recorded[i].digest != replayed[i].digest)
            return i;
    }
    if (recorded.size() != replayed.size())
        return n;
    return std::string::npos;
}

bool
finalMatches(const Final &a, const Final &b)
{
    return a.reason == b.reason && a.steps == b.steps &&
           a.cycles == b.cycles && a.digest == b.digest &&
           a.value == b.value;
}

void
finalJson(obs::JsonWriter &w, const Final &f)
{
    w.beginObject()
        .kv("reason", f.reason)
        .kv("steps", f.steps)
        .kv("cycles", f.cycles)
        .kv("digest", digestHex(f.digest))
        .kv("value", std::uint64_t(f.value))
        .kv("pc", f.pc)
        .kv("lf", f.lf)
        .kv("gf", f.gf)
        .kv("sp", std::uint64_t(f.sp))
        .kv("heapLive", f.heapLive)
        .kv("heapAllocs", f.heapAllocs)
        .kv("heapFrees", f.heapFrees)
        .endObject();
}

void
sampleStreamJson(obs::JsonWriter &w, const std::vector<Sample> &samples,
                 std::size_t begin, std::size_t end)
{
    w.beginArray();
    for (std::size_t i = begin; i < end && i < samples.size(); ++i) {
        w.beginObject()
            .kv("steps", samples[i].steps)
            .kv("cycles", samples[i].cycles)
            .kv("digest", digestHex(samples[i].digest))
            .endObject();
    }
    w.endArray();
}

} // namespace

Divergence
Replayer::diagnose(const JobRecord &job, Divergence divergence,
                   const VerifyOptions &options)
{
    // Bisect: re-run the suspect window twice at per-XFER granularity.
    // Agreement means the replay side is deterministic and the
    // recording carries the divergent bytes; disagreement pinpoints
    // the exact transfer where two replays part ways.
    ExecSpec spec;
    spec.impl = log_.impl;
    spec.accel = options.accelOverride.value_or(log_.accel);
    spec.threaded = options.threaded;
    spec.perXfer = true;
    spec.xferScope = DigestScope::Full;
    spec.windowBegin = divergence.windowBeginStep;
    spec.windowEnd = divergence.windowEndStep;
    spec.keepRing = true;
    const ExecOutcome a = executeJob(job, spec);
    const ExecOutcome b = executeJob(job, spec);

    divergence.bisected = true;
    divergence.selfConsistent = true;
    const std::size_t n = std::min(a.xferDigests.size(),
                                   b.xferDigests.size());
    for (std::size_t i = 0; i < n; ++i) {
        if (a.xferDigests[i].digest != b.xferDigests[i].digest ||
            a.xferDigests[i].step != b.xferDigests[i].step) {
            divergence.selfConsistent = false;
            divergence.divergentStep = a.xferDigests[i].step;
            break;
        }
    }
    if (divergence.selfConsistent &&
        a.xferDigests.size() != b.xferDigests.size())
        divergence.selfConsistent = false;

    divergence.detail =
        divergence.selfConsistent
            ? strfmt("job {}: replay is self-consistent over steps "
                     "[{}, {}]; the recording itself diverges at "
                     "sample {} (recorded {}, replayed {})",
                     divergence.job, divergence.windowBeginStep,
                     divergence.windowEndStep, divergence.sampleIndex,
                     digestHex(divergence.recordedDigest),
                     digestHex(divergence.replayedDigest))
            : strfmt("job {}: replays disagree at step {} inside "
                     "[{}, {}] — nondeterministic execution",
                     divergence.job, divergence.divergentStep,
                     divergence.windowBeginStep,
                     divergence.windowEndStep);

    if (options.divergenceDir.empty())
        return divergence;

    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(options.divergenceDir, ec);
    if (ec) {
        warn("cannot create divergence dir {}: {}",
             options.divergenceDir, ec.message());
        return divergence;
    }
    const std::string path =
        options.divergenceDir +
        strfmt("/job-{}-divergence.json", divergence.job);
    std::ofstream os(path);
    if (!os) {
        warn("cannot write {}", path);
        return divergence;
    }

    // The extended fpc-postmortem-v1 bundle: what was recorded, what
    // replayed, and where they part ways.
    obs::JsonWriter w(os);
    w.beginObject()
        .kv("schema", "fpc-postmortem-v1")
        .kv("kind", "replay-divergence")
        .kv("driver", "fpcreplay")
        .kv("impl", implName(log_.impl))
        .kv("job", std::uint64_t(divergence.job))
        .kv("sampleIndex", std::uint64_t(divergence.sampleIndex))
        .kv("finalMismatch", divergence.finalMismatch)
        .kv("windowBeginStep", divergence.windowBeginStep)
        .kv("windowEndStep", divergence.windowEndStep)
        .kv("recordedDigest",
            digestHex(divergence.recordedDigest))
        .kv("replayedDigest",
            digestHex(divergence.replayedDigest))
        .kv("selfConsistent", divergence.selfConsistent);
    if (divergence.selfConsistent)
        w.key("divergentStep").nullValue();
    else
        w.kv("divergentStep", divergence.divergentStep);

    w.key("recordedFinal");
    finalJson(w, job.final);
    w.key("replayedFinal");
    finalJson(w, a.replayed.final);

    // The digest streams around the divergence, recorded vs replayed.
    const std::size_t lo =
        divergence.sampleIndex > 2 ? divergence.sampleIndex - 2 : 0;
    const std::size_t hi = divergence.sampleIndex + 3;
    w.key("recordedSamples");
    sampleStreamJson(w, job.samples, lo, hi);
    w.key("replayedSamples");
    sampleStreamJson(w, a.replayed.samples, lo, hi);

    // Per-XFER digests inside the window (replay A), and the window's
    // transfer ring — kind/contexts/pc per transfer.
    w.key("xferDigests").beginArray();
    for (const auto &e : a.xferDigests) {
        w.beginObject()
            .kv("step", e.step)
            .kv("digest", digestHex(e.digest))
            .endObject();
    }
    w.endArray();
    w.key("xferRing").beginArray();
    for (const XferRecord &r : a.ring) {
        if (r.step < divergence.windowBeginStep ||
            r.step > divergence.windowEndStep)
            continue;
        w.beginObject()
            .kv("step", r.step)
            .kv("kind", xferKindName(r.kind))
            .kv("srcCtx", std::uint64_t(r.srcCtx))
            .kv("dstCtx", std::uint64_t(r.dstCtx))
            .kv("frame", std::uint64_t(r.frame))
            .kv("pc", std::uint64_t(r.pc))
            .endObject();
    }
    w.endArray();
    w.endObject();
    os << "\n";
    divergence.bundlePath = path;
    return divergence;
}

VerifyResult
Replayer::verify(const VerifyOptions &options)
{
    VerifyResult result;
    ExecSpec spec;
    spec.impl = log_.impl;
    spec.accel = options.accelOverride.value_or(log_.accel);
    spec.threaded = options.threaded;

    for (const JobRecord &job : log_.jobs) {
        const ExecOutcome out = executeJob(job, spec);
        if (out.imageHash != log_.imageHash) {
            Divergence d;
            d.job = job.id;
            d.detail = strfmt(
                "job {}: image hash mismatch (recorded {}, "
                "replayed {}) — program or loader changed",
                job.id, digestHex(log_.imageHash),
                digestHex(out.imageHash));
            d.recordedDigest = log_.imageHash;
            d.replayedDigest = out.imageHash;
            result.divergence = d;
            return result;
        }
        result.decisionOverrun |=
            out.decisionOverrun || out.decisionMismatch;

        const std::size_t mismatch =
            firstMismatch(job.samples, out.replayed.samples);
        if (mismatch != std::string::npos) {
            Divergence d;
            d.job = job.id;
            d.sampleIndex = mismatch;
            d.windowBeginStep =
                mismatch == 0 ? 0 : job.samples[mismatch - 1].steps + 1;
            d.windowEndStep = mismatch < job.samples.size()
                                  ? job.samples[mismatch].steps
                                  : job.final.steps;
            if (mismatch < job.samples.size())
                d.recordedDigest = job.samples[mismatch].digest;
            if (mismatch < out.replayed.samples.size())
                d.replayedDigest = out.replayed.samples[mismatch].digest;
            result.divergence = diagnose(job, d, options);
            return result;
        }
        if (!finalMatches(job.final, out.replayed.final)) {
            Divergence d;
            d.job = job.id;
            d.finalMismatch = true;
            d.sampleIndex = job.samples.size();
            d.windowBeginStep =
                job.samples.empty()
                    ? 0
                    : job.samples.back().steps + 1;
            d.windowEndStep = job.final.steps;
            d.recordedDigest = job.final.digest;
            d.replayedDigest = out.replayed.final.digest;
            result.divergence = diagnose(job, d, options);
            return result;
        }
        ++result.jobsChecked;
        result.samplesChecked += job.samples.size() + 1;
    }
    result.ok = !result.decisionOverrun;
    return result;
}

DivergeResult
Replayer::diverge(Impl other)
{
    if (log_.jobs.empty())
        fatal("diverge: recording has no jobs");
    const JobRecord &job = log_.jobs.front();

    ExecSpec spec;
    spec.accel = log_.accel;
    spec.perXfer = true;
    spec.xferScope = DigestScope::Arch;
    spec.impl = log_.impl;
    const ExecOutcome base = executeJob(job, spec);
    spec.impl = other;
    const ExecOutcome alt = executeJob(job, spec);

    DivergeResult result;
    const auto &a = base.xferDigests;
    const auto &b = alt.xferDigests;
    const std::size_t n = std::min(a.size(), b.size());
    for (std::size_t i = 0; i < n; ++i) {
        if (a[i].digest != b[i].digest) {
            result.xferIndex = i;
            result.step = a[i].step;
            result.baseDigest = a[i].digest;
            result.otherDigest = b[i].digest;
            result.xfersCompared = i;
            return result;
        }
    }
    result.xfersCompared = n;
    if (a.size() != b.size()) {
        result.countMismatch = true;
        result.xferIndex = n;
        return result;
    }
    result.equivalent = true;
    return result;
}

} // namespace fpc::replay
