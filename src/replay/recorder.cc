#include "replay/recorder.hh"

#include <utility>

#include "machine/digest.hh"

namespace fpc::replay
{

void
Recorder::onSample(const Machine &machine)
{
    sample(machine);
    if (next_ != nullptr)
        next_->onSample(machine);
}

void
Recorder::sample(const Machine &machine)
{
    Sample s;
    s.steps = machine.stats().steps;
    s.cycles = machine.cycles();
    s.digest = stateDigest(machine, DigestScope::Full);
    job_.samples.push_back(s);
}

void
Recorder::recordDecision(std::uint64_t step, Word ctx)
{
    job_.decisions.push_back({step, ctx});
}

Machine::Scheduler
Recorder::wrapPolicy(Machine::Scheduler inner)
{
    return [this, inner = std::move(inner)](Machine &m) {
        const Word ctx = inner(m);
        recordDecision(m.stats().steps, ctx);
        return ctx;
    };
}

void
Recorder::finish(const Machine &machine, const RunResult &result)
{
    job_.final.reason = stopReasonName(result.reason);
    job_.final.steps = machine.stats().steps;
    job_.final.cycles = machine.cycles();
    job_.final.digest = stateDigest(machine, DigestScope::Full);
    job_.final.value =
        result.reason == StopReason::TopReturn &&
                machine.stackDepth() > 0
            ? machine.stackAt(machine.stackDepth() - 1)
            : 0;
    job_.final.pc = machine.pc();
    job_.final.lf = machine.currentFrame();
    job_.final.gf = machine.currentGlobalFrame();
    job_.final.sp = machine.stackDepth();
    job_.final.heapLive =
        static_cast<std::uint64_t>(machine.heap().stats().liveFrames());
    job_.final.heapAllocs =
        static_cast<std::uint64_t>(machine.heap().stats().allocs);
    job_.final.heapFrees =
        static_cast<std::uint64_t>(machine.heap().stats().frees);
}

void
Recorder::beginJob(unsigned id, unsigned worker)
{
    job_ = JobRecord();
    job_.id = id;
    job_.worker = worker;
}

JobRecord
Recorder::takeJob()
{
    JobRecord out = std::move(job_);
    job_ = JobRecord();
    return out;
}

} // namespace fpc::replay
