/**
 * @file
 * The "fpc-record-v1" execution log: everything needed to re-run an
 * execution deterministically and check it against the original.
 *
 * Because every simulated number is byte-identical across runs and
 * across the acceleration switch (docs/PERFORMANCE.md), a complete
 * execution history needs only three things beyond the program
 * itself: the machine configuration, the scheduler's decisions
 * (step-stamped contexts), and a stream of periodic state digests to
 * check against. The format is line-oriented text, append-only
 * streamable, and self-contained — the MiniMesa source is embedded,
 * so a recording taken on one checkout replays anywhere:
 *
 *     fpc-record-v1
 *     impl mesa              linkage mesa        short-calls 0
 *     banks 4                timeslice 1000      accel 1
 *     interval 10000         workers 2           stride 2
 *     image-hash <hex16>
 *     entry Main main
 *     arg 12                 (one line per entry argument)
 *     src <source line>      (one line per embedded source line)
 *     job <id> <worker>
 *     decision <step> <ctx>
 *     sample <steps> <cycles> <digest-hex16>
 *     end <reason> <steps> <cycles> <digest-hex16> <value>
 *     eof
 *
 * Digests are DigestScope::Full (machine/digest.hh). The image hash
 * is FNV-1a over the loaded image — data words below
 * SystemLayout::globalEnd plus every placed code segment — taken
 * after Loader::load and before the Machine exists (the FrameHeap
 * constructor rewrites the AV), at the identical point during record
 * and replay.
 */

#ifndef FPC_REPLAY_RECORD_HH
#define FPC_REPLAY_RECORD_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hh"
#include "machine/config.hh"
#include "program/loader.hh"

namespace fpc
{
class Memory;
}

namespace fpc::replay
{

/** One scheduler decision: at instruction `step`, XFER to `ctx`. */
struct Decision
{
    std::uint64_t step = 0;
    Word ctx = 0;
};

/** One periodic state digest. */
struct Sample
{
    std::uint64_t steps = 0;
    Tick cycles = 0;
    std::uint64_t digest = 0;
};

/** How a job's run ended. The register and heap fields feed the
 *  divergence bundle's recorded-vs-replayed deltas. */
struct Final
{
    std::string reason; ///< stopReasonName() token
    std::uint64_t steps = 0;
    Tick cycles = 0;
    std::uint64_t digest = 0;
    Word value = 0; ///< top-of-stack on topReturn, else 0
    std::uint64_t pc = 0;
    std::uint64_t lf = 0;
    std::uint64_t gf = 0;
    unsigned sp = 0;
    std::uint64_t heapLive = 0;
    std::uint64_t heapAllocs = 0;
    std::uint64_t heapFrees = 0;
};

/** One job's recorded history. */
struct JobRecord
{
    unsigned id = 0;
    unsigned worker = 0;
    std::vector<Decision> decisions;
    std::vector<Sample> samples;
    Final final;
};

/** A parsed (or to-be-written) recording. */
struct RecordLog
{
    Impl impl = Impl::Mesa;
    CallLowering lowering = CallLowering::Mesa;
    bool shortCalls = false;
    unsigned banks = 4;
    std::uint64_t timeslice = 0;
    bool accel = true;
    Tick interval = 10000;
    unsigned workers = 1;
    unsigned stride = 1;
    std::uint64_t imageHash = 0;
    std::string entryModule;
    std::string entryProc;
    std::vector<Word> args;
    std::string source; ///< the embedded MiniMesa program
    std::vector<JobRecord> jobs;
};

/** Serialize the log (terminated with "eof"). */
void writeRecord(std::ostream &os, const RecordLog &log);

/** Parse a log; throws FatalError on malformed or truncated input. */
RecordLog parseRecord(std::istream &is);

/** Hash the loaded image: data words in [0, layout.globalEnd) plus
 *  each placed module's code bytes. Call after Loader::load and
 *  before constructing the Machine. */
std::uint64_t imageHash(const Memory &memory, const LoadedImage &image);

/** Render a digest as the format's fixed-width hex token. */
std::string digestHex(std::uint64_t digest);

/** Round-trip helpers for the header tokens; fatal on bad input. */
Impl parseImplToken(const std::string &token);
const char *implToken(Impl impl);
CallLowering parseLoweringToken(const std::string &token);

} // namespace fpc::replay

#endif // FPC_REPLAY_RECORD_HH
