/**
 * @file
 * The Recorder: captures one job's execution history — periodic state
 * digests on the machine's CycleSampler interval, every scheduler
 * decision, and the final state — into a replay::JobRecord.
 *
 * The recorder *is* a CycleSampler, so attaching it costs zero
 * simulated cycles and (like any sampler) routes run() through the
 * eager per-step loop; the digests it takes are therefore identical
 * with host acceleration on or off. When a Telemetry also wants the
 * machine's one sampler slot, chain it behind the recorder with
 * setNext() — both fire on the same simulated-cycle boundaries.
 *
 * Scheduler decisions enter through wrapPolicy(): it decorates any
 * Machine::Scheduler hook so every context the policy hands back is
 * recorded with its instruction-count stamp before the machine sees
 * it.
 */

#ifndef FPC_REPLAY_RECORDER_HH
#define FPC_REPLAY_RECORDER_HH

#include "machine/machine.hh"
#include "replay/record.hh"

namespace fpc::replay
{

class Recorder : public CycleSampler
{
  public:
    Recorder() = default;

    /** Chain another sampler (e.g. a Telemetry) behind this one. */
    void setNext(CycleSampler *next) { next_ = next; }

    void onSample(const Machine &machine) override;

    /** Take a digest right now (run bracketing, like
     *  Telemetry::sample). */
    void sample(const Machine &machine);

    /** Record one scheduler decision explicitly. */
    void recordDecision(std::uint64_t step, Word ctx);

    /** Decorate a scheduler hook so its decisions are recorded. */
    Machine::Scheduler wrapPolicy(Machine::Scheduler inner);

    /** Capture the final state. Call at stop, *before* any popValue:
     *  the top-of-stack return value is peeked, not consumed. */
    void finish(const Machine &machine, const RunResult &result);

    /** Begin the next job's record (keeps the finished ones). */
    void beginJob(unsigned id, unsigned worker);

    const JobRecord &current() const { return job_; }
    JobRecord takeJob();

  private:
    JobRecord job_;
    CycleSampler *next_ = nullptr;
};

} // namespace fpc::replay

#endif // FPC_REPLAY_RECORDER_HH
