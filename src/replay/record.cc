#include "replay/record.hh"

#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/logging.hh"
#include "machine/digest.hh"
#include "memory/memory.hh"

namespace fpc::replay
{

std::string
digestHex(std::uint64_t digest)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(digest));
    return buf;
}

namespace
{

std::uint64_t
parseHex16(const std::string &token)
{
    if (token.size() != 16)
        fatal("record: bad digest token '{}'", token);
    std::uint64_t v = 0;
    for (const char c : token) {
        v <<= 4;
        if (c >= '0' && c <= '9')
            v |= c - '0';
        else if (c >= 'a' && c <= 'f')
            v |= c - 'a' + 10;
        else
            fatal("record: bad digest token '{}'", token);
    }
    return v;
}

std::uint64_t
parseU64(const std::string &token)
{
    std::uint64_t v = 0;
    if (token.empty())
        fatal("record: expected a number, got an empty field");
    for (const char c : token) {
        if (c < '0' || c > '9')
            fatal("record: bad number '{}'", token);
        v = v * 10 + (c - '0');
    }
    return v;
}

} // namespace

Impl
parseImplToken(const std::string &token)
{
    if (token == "simple")
        return Impl::Simple;
    if (token == "mesa")
        return Impl::Mesa;
    if (token == "ifu")
        return Impl::Ifu;
    if (token == "banked")
        return Impl::Banked;
    fatal("record: unknown impl '{}'", token);
}

const char *
implToken(Impl impl)
{
    switch (impl) {
      case Impl::Simple: return "simple";
      case Impl::Mesa: return "mesa";
      case Impl::Ifu: return "ifu";
      case Impl::Banked: return "banked";
    }
    return "?";
}

CallLowering
parseLoweringToken(const std::string &token)
{
    if (token == "fat")
        return CallLowering::Fat;
    if (token == "mesa")
        return CallLowering::Mesa;
    if (token == "direct")
        return CallLowering::Direct;
    fatal("record: unknown linkage '{}'", token);
}

void
writeRecord(std::ostream &os, const RecordLog &log)
{
    os << "fpc-record-v1\n"
       << "impl " << implToken(log.impl) << "\n"
       << "linkage " << callLoweringName(log.lowering) << "\n"
       << "short-calls " << (log.shortCalls ? 1 : 0) << "\n"
       << "banks " << log.banks << "\n"
       << "timeslice " << log.timeslice << "\n"
       << "accel " << (log.accel ? 1 : 0) << "\n"
       << "interval " << log.interval << "\n"
       << "workers " << log.workers << "\n"
       << "stride " << log.stride << "\n"
       << "image-hash " << digestHex(log.imageHash) << "\n"
       << "entry " << log.entryModule << " " << log.entryProc << "\n";
    for (const Word a : log.args)
        os << "arg " << a << "\n";
    std::istringstream src(log.source);
    for (std::string line; std::getline(src, line);) {
        if (line.empty())
            os << "src\n";
        else
            os << "src " << line << "\n";
    }
    for (const JobRecord &job : log.jobs) {
        os << "job " << job.id << " " << job.worker << "\n";
        for (const Decision &d : job.decisions)
            os << "decision " << d.step << " " << d.ctx << "\n";
        for (const Sample &s : job.samples)
            os << "sample " << s.steps << " " << s.cycles << " "
               << digestHex(s.digest) << "\n";
        os << "end " << job.final.reason << " " << job.final.steps
           << " " << job.final.cycles << " " << digestHex(job.final.digest)
           << " " << job.final.value << "\n";
        os << "endstate " << job.final.pc << " " << job.final.lf << " "
           << job.final.gf << " " << job.final.sp << " "
           << job.final.heapLive << " " << job.final.heapAllocs << " "
           << job.final.heapFrees << "\n";
    }
    os << "eof\n";
}

RecordLog
parseRecord(std::istream &is)
{
    RecordLog log;
    std::string line;
    if (!std::getline(is, line) || line != "fpc-record-v1")
        fatal("record: not an fpc-record-v1 log (bad magic)");

    JobRecord *job = nullptr;
    bool sawEof = false;
    std::string source;
    while (std::getline(is, line)) {
        // "src" lines carry raw text; split off only the keyword.
        const auto space = line.find(' ');
        const std::string kw = line.substr(0, space);
        const std::string rest =
            space == std::string::npos ? "" : line.substr(space + 1);
        if (kw == "src") {
            source += rest;
            source += '\n';
            continue;
        }
        std::istringstream fields(rest);
        auto word = [&]() {
            std::string t;
            if (!(fields >> t))
                fatal("record: truncated '{}' line", kw);
            return t;
        };
        if (kw == "impl") {
            log.impl = parseImplToken(word());
        } else if (kw == "linkage") {
            log.lowering = parseLoweringToken(word());
        } else if (kw == "short-calls") {
            log.shortCalls = parseU64(word()) != 0;
        } else if (kw == "banks") {
            log.banks = static_cast<unsigned>(parseU64(word()));
        } else if (kw == "timeslice") {
            log.timeslice = parseU64(word());
        } else if (kw == "accel") {
            log.accel = parseU64(word()) != 0;
        } else if (kw == "interval") {
            log.interval = parseU64(word());
        } else if (kw == "workers") {
            log.workers = static_cast<unsigned>(parseU64(word()));
        } else if (kw == "stride") {
            log.stride = static_cast<unsigned>(parseU64(word()));
        } else if (kw == "image-hash") {
            log.imageHash = parseHex16(word());
        } else if (kw == "entry") {
            log.entryModule = word();
            log.entryProc = word();
        } else if (kw == "arg") {
            log.args.push_back(
                static_cast<Word>(parseU64(word()) & 0xFFFF));
        } else if (kw == "job") {
            log.jobs.emplace_back();
            job = &log.jobs.back();
            job->id = static_cast<unsigned>(parseU64(word()));
            job->worker = static_cast<unsigned>(parseU64(word()));
        } else if (kw == "decision") {
            if (job == nullptr)
                fatal("record: 'decision' before any 'job'");
            Decision d;
            d.step = parseU64(word());
            d.ctx = static_cast<Word>(parseU64(word()) & 0xFFFF);
            job->decisions.push_back(d);
        } else if (kw == "sample") {
            if (job == nullptr)
                fatal("record: 'sample' before any 'job'");
            Sample s;
            s.steps = parseU64(word());
            s.cycles = parseU64(word());
            s.digest = parseHex16(word());
            job->samples.push_back(s);
        } else if (kw == "end") {
            if (job == nullptr)
                fatal("record: 'end' before any 'job'");
            job->final.reason = word();
            job->final.steps = parseU64(word());
            job->final.cycles = parseU64(word());
            job->final.digest = parseHex16(word());
            job->final.value =
                static_cast<Word>(parseU64(word()) & 0xFFFF);
        } else if (kw == "endstate") {
            if (job == nullptr)
                fatal("record: 'endstate' before any 'job'");
            job->final.pc = parseU64(word());
            job->final.lf = parseU64(word());
            job->final.gf = parseU64(word());
            job->final.sp = static_cast<unsigned>(parseU64(word()));
            job->final.heapLive = parseU64(word());
            job->final.heapAllocs = parseU64(word());
            job->final.heapFrees = parseU64(word());
        } else if (kw == "eof") {
            sawEof = true;
            break;
        } else {
            fatal("record: unknown line '{}'", line);
        }
    }
    if (!sawEof)
        fatal("record: truncated log (no 'eof' terminator)");
    if (log.entryModule.empty())
        fatal("record: log has no 'entry' line");
    if (source.empty())
        fatal("record: log has no embedded program ('src' lines)");
    log.source = std::move(source);
    return log;
}

std::uint64_t
imageHash(const Memory &memory, const LoadedImage &image)
{
    std::uint64_t h = fnvOffsetBasis;
    for (Addr a = 0; a < image.layout().globalEnd; ++a)
        h = fnv1aWord(h, memory.peek(a));
    for (const PlacedModule &pm : image.modules())
        for (unsigned b = 0; b < pm.segBytes; ++b)
            h = fnv1aByte(h, memory.peekByte(pm.segBase + b));
    return h;
}

} // namespace fpc::replay
