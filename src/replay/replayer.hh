/**
 * @file
 * The Replayer: re-executes a recording and diagnoses the first
 * divergence.
 *
 * verify() re-runs every job with the recorded configuration, forcing
 * the recorded scheduler decisions instead of live policy, and
 * compares the replayed digest stream against the recorded one. On
 * mismatch it reports the first divergent sampling interval, then
 * bisects: the job is re-run twice more with per-XFER Full digests
 * inside the suspect step window. If the two re-runs agree with each
 * other, the replay side is self-consistent and the recording itself
 * is the divergent party (a corrupted log, or nondeterminism in the
 * recording run) — resolution stays at interval granularity. If they
 * disagree, the first differing XFER pinpoints the divergence
 * exactly. Either way an extended "fpc-postmortem-v1" bundle is
 * written with recorded-vs-replayed deltas (registers, heap
 * counters, digest streams, and the transfer ring around the
 * window).
 *
 * diverge() is the intentional cross-engine comparison: the same
 * recording replayed on the recorded engine and on another one, both
 * at per-XFER granularity with DigestScope::Arch (the state every
 * engine represents identically), reporting the first transfer where
 * the engines part ways — or their equivalence, which is the paper's
 * central claim made checkable.
 */

#ifndef FPC_REPLAY_REPLAYER_HH
#define FPC_REPLAY_REPLAYER_HH

#include <optional>
#include <string>
#include <vector>

#include "program/module.hh"
#include "replay/record.hh"

namespace fpc::replay
{

struct VerifyOptions
{
    /** Replay with host acceleration forced on/off regardless of the
     *  recording — digests must be invariant, so this *tests* the
     *  acceleration contract rather than weakening verification. */
    std::optional<bool> accelOverride;
    /** Configure the threaded-code backend on the replay machine
     *  (implies acceleration on). The verifier's sampler routes
     *  execution through the eager loop either way — this checks that
     *  a threaded-configured machine honors the record/replay gating
     *  contract bit-for-bit. Callers must check
     *  Machine::threadedSupported() first. */
    bool threaded = false;
    /** When nonempty, a divergence writes
     *  "<dir>/job-<id>-divergence.json". */
    std::string divergenceDir;
};

/** Where and how a verification failed. */
struct Divergence
{
    unsigned job = 0;
    /** Index into the recorded sample stream; the stream is the start
     *  bracket followed by one sample per elapsed interval. */
    std::size_t sampleIndex = 0;
    bool finalMismatch = false; ///< divergence only at the final state
    std::uint64_t windowBeginStep = 0;
    std::uint64_t windowEndStep = 0;
    std::uint64_t recordedDigest = 0;
    std::uint64_t replayedDigest = 0;
    bool bisected = false;
    /** Two independent per-XFER replays of the window agreed: the
     *  recording, not the replay, carries the divergent bytes. */
    bool selfConsistent = false;
    /** First divergent instruction (valid when bisected and not
     *  selfConsistent). */
    std::uint64_t divergentStep = 0;
    std::string bundlePath; ///< written bundle, when requested
    std::string detail;     ///< one-line human summary
};

struct VerifyResult
{
    bool ok = false;
    unsigned jobsChecked = 0;
    std::size_t samplesChecked = 0;
    /** Replay consumed decisions the log did not contain (or stamps
     *  disagreed) — reported even when digests happen to match. */
    bool decisionOverrun = false;
    std::optional<Divergence> divergence;
};

/** Outcome of the cross-engine comparison. */
struct DivergeResult
{
    bool equivalent = false;
    std::size_t xfersCompared = 0;
    bool countMismatch = false; ///< engines made different XFER counts
    std::size_t xferIndex = 0;  ///< first divergent transfer
    std::uint64_t step = 0;     ///< its instruction stamp (base run)
    std::uint64_t baseDigest = 0;
    std::uint64_t otherDigest = 0;
};

class Replayer
{
  public:
    /** Compiles the embedded program once; fatal on compile errors. */
    explicit Replayer(RecordLog log);

    const RecordLog &log() const { return log_; }

    VerifyResult verify(const VerifyOptions &options = {});

    /** Replay job 0 on the recorded engine and on `other`, comparing
     *  Arch digests after every transfer. */
    DivergeResult diverge(Impl other);

  private:
    struct ExecSpec;
    struct ExecOutcome;
    ExecOutcome executeJob(const JobRecord &job, const ExecSpec &spec);
    Divergence diagnose(const JobRecord &job, Divergence divergence,
                        const VerifyOptions &options);

    RecordLog log_;
    std::vector<Module> modules_;
};

} // namespace fpc::replay

#endif // FPC_REPLAY_REPLAYER_HH
