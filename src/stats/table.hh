/**
 * @file
 * Plain-text table rendering for bench output. Every bench prints the
 * table or series the paper reports through this formatter so the
 * outputs are uniform and diffable.
 */

#ifndef FPC_STATS_TABLE_HH
#define FPC_STATS_TABLE_HH

#include <ostream>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

namespace fpc::stats
{

/** A simple left/right-aligned column table. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append one row; must match the header arity. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format arbitrary streamable cells. */
    template <typename... Cells>
    void
    row(const Cells &...cells)
    {
        addRow({cellStr(cells)...});
    }

    void print(std::ostream &os) const;

    std::size_t rows() const { return rows_.size(); }

    /** Raw contents, for machine-readable export (bench --json). */
    const std::vector<std::string> &headers() const { return headers_; }
    const std::vector<std::vector<std::string>> &cells() const
    {
        return rows_;
    }

  private:
    template <typename T>
    static std::string
    cellStr(const T &v)
    {
        if constexpr (std::is_convertible_v<T, std::string>) {
            return std::string(v);
        } else {
            std::ostringstream os;
            os << v;
            return os.str();
        }
    }

    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with the given number of decimal places. */
std::string fixed(double v, int places = 2);

/** Format a fraction as a percentage string, e.g. "95.0%". */
std::string percent(double fraction, int places = 1);

} // namespace fpc::stats

#endif // FPC_STATS_TABLE_HH
