#include "stats/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/logging.hh"

namespace fpc::stats
{

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers))
{
    if (headers_.empty())
        panic("Table: no headers");
}

void
Table::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size()) {
        panic("Table: row arity {} != header arity {}", cells.size(),
              headers_.size());
    }
    rows_.push_back(std::move(cells));
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto print_row = [&](const std::vector<std::string> &cells) {
        os << "|";
        for (std::size_t c = 0; c < cells.size(); ++c)
            os << " " << std::setw(static_cast<int>(widths[c]))
               << cells[c] << " |";
        os << "\n";
    };

    print_row(headers_);
    os << "|";
    for (std::size_t c = 0; c < headers_.size(); ++c)
        os << std::string(widths[c] + 2, '-') << "|";
    os << "\n";
    for (const auto &row : rows_)
        print_row(row);
}

std::string
fixed(double v, int places)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(places) << v;
    return os.str();
}

std::string
percent(double fraction, int places)
{
    return fixed(fraction * 100.0, places) + "%";
}

} // namespace fpc::stats
