/**
 * @file
 * A small statistics package in the spirit of gem5's Stats: named
 * counters, scalar distributions and histograms grouped into a
 * StatGroup, dumped as text. Every simulator component owns a group;
 * benches read individual stats to regenerate the paper's numbers.
 */

#ifndef FPC_STATS_STATS_HH
#define FPC_STATS_STATS_HH

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"

namespace fpc::stats
{

/** A monotonically increasing event counter. */
class Counter
{
  public:
    Counter() = default;

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(CountT n) { value_ += n; return *this; }
    void reset() { value_ = 0; }

    /** Fold another counter in (multi-worker stat merging). */
    void merge(const Counter &other) { value_ += other.value_; }

    CountT value() const { return value_; }

  private:
    CountT value_ = 0;
};

/** Running min/max/mean/variance over a stream of samples. */
class Distribution
{
  public:
    /** Inline: sampled on every XFER (refs and cycles). */
    void
    sample(double val, CountT count = 1)
    {
        count_ += count;
        sum_ += val * count;
        sumSq_ += val * val * count;
        min_ = std::min(min_, val);
        max_ = std::max(max_, val);
    }

    void reset();

    /** Fold another distribution in; exact for count/sum/moments. */
    void merge(const Distribution &other);

    CountT count() const { return count_; }
    double total() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double variance() const;
    double stddev() const;

  private:
    CountT count_ = 0;
    double sum_ = 0;
    double sumSq_ = 0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/** A fixed-bucket histogram over [0, bucketCount * bucketWidth). */
class Histogram
{
  public:
    Histogram(double bucket_width = 1.0, std::size_t bucket_count = 16);

    void sample(double val, CountT count = 1);
    void reset();

    /** Fold another histogram in; panics if the bucket shapes
     *  (width and count) do not match. */
    void merge(const Histogram &other);

    CountT count() const { return dist_.count(); }
    double mean() const { return dist_.mean(); }
    double min() const { return dist_.min(); }
    double max() const { return dist_.max(); }

    std::size_t buckets() const { return counts_.size(); }
    double bucketWidth() const { return bucketWidth_; }
    CountT bucketCount(std::size_t i) const { return counts_.at(i); }
    CountT overflow() const { return overflow_; }

    /** Fraction of samples with value <= val (bucket-resolution). */
    double fractionAtOrBelow(double val) const;

    /** @name Percentiles, linearly interpolated within buckets.
     *  Ranks that fall into the overflow bucket report the observed
     *  maximum; results are clamped to [min(), max()] so a
     *  single-bucket histogram never reports a value outside the
     *  samples it actually saw. Empty histograms report 0. @{ */
    double percentile(double p) const;
    double p50() const { return percentile(0.50); }
    double p90() const { return percentile(0.90); }
    double p99() const { return percentile(0.99); }
    /** @} */

  private:
    double bucketWidth_;
    std::vector<CountT> counts_;
    CountT overflow_ = 0;
    Distribution dist_;
};

/**
 * A named collection of statistics. Components register their stats by
 * name; dump() prints them; find*() lets benches read them back.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    Counter &counter(const std::string &name, std::string desc = "");
    Distribution &distribution(const std::string &name,
                               std::string desc = "");
    Histogram &histogram(const std::string &name, double bucket_width,
                         std::size_t buckets, std::string desc = "");

    const std::string &name() const { return name_; }

    /** Look up a previously registered stat; panics if missing. */
    const Counter &findCounter(const std::string &name) const;
    const Distribution &findDistribution(const std::string &name) const;
    const Histogram &findHistogram(const std::string &name) const;

    bool hasCounter(const std::string &name) const;

    void resetAll();
    void dump(std::ostream &os) const;

    /** Visit every stat in registration order. Exactly one of the
     *  three stat pointers is non-null per call (the JSON exporter
     *  and other generic consumers iterate through this). */
    using Visitor = std::function<void(
        const std::string &name, const std::string &desc,
        const Counter *counter, const Distribution *dist,
        const Histogram *hist)>;
    void visit(const Visitor &visitor) const;

    /** Fold another group's stats into this one. Entries are matched
     *  by name; entries this group lacks are created. Used to merge
     *  per-worker registries into one at Runtime join. */
    void mergeFrom(const StatGroup &other);

  private:
    struct Entry
    {
        std::string desc;
        // Exactly one of these is non-null; unique ownership.
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Distribution> dist;
        std::unique_ptr<Histogram> hist;
    };

    std::string name_;
    std::map<std::string, Entry> entries_;
    std::vector<std::string> order_;

    Entry &newEntry(const std::string &name, std::string desc);
};

} // namespace fpc::stats

#endif // FPC_STATS_STATS_HH
