#include "stats/stats.hh"

#include <cmath>

#include "common/logging.hh"

namespace fpc::stats
{

void
Distribution::reset()
{
    *this = Distribution();
}

void
Distribution::merge(const Distribution &other)
{
    if (other.count_ == 0)
        return;
    count_ += other.count_;
    sum_ += other.sum_;
    sumSq_ += other.sumSq_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
Distribution::variance() const
{
    if (count_ < 2)
        return 0.0;
    const double m = mean();
    return std::max(0.0, sumSq_ / count_ - m * m);
}

double
Distribution::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(double bucket_width, std::size_t bucket_count)
    : bucketWidth_(bucket_width), counts_(bucket_count, 0)
{
    if (bucket_width <= 0 || bucket_count == 0)
        panic("Histogram: bad shape ({} x {})", bucket_width, bucket_count);
}

void
Histogram::sample(double val, CountT count)
{
    dist_.sample(val, count);
    const auto idx = static_cast<std::size_t>(val / bucketWidth_);
    if (val < 0 || idx >= counts_.size())
        overflow_ += count;
    else
        counts_[idx] += count;
}

void
Histogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    overflow_ = 0;
    dist_.reset();
}

void
Histogram::merge(const Histogram &other)
{
    if (bucketWidth_ != other.bucketWidth_ ||
        counts_.size() != other.counts_.size())
        panic("Histogram::merge: shape mismatch ({} x {} vs {} x {})",
              bucketWidth_, counts_.size(), other.bucketWidth_,
              other.counts_.size());
    for (std::size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    overflow_ += other.overflow_;
    dist_.merge(other.dist_);
}

double
Histogram::fractionAtOrBelow(double val) const
{
    if (dist_.count() == 0)
        return 0.0;
    CountT at_or_below = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        // A bucket counts only when it lies entirely at or below val.
        if ((i + 1) * bucketWidth_ > val)
            break;
        at_or_below += counts_[i];
    }
    return static_cast<double>(at_or_below) / dist_.count();
}

double
Histogram::percentile(double p) const
{
    const CountT n = dist_.count();
    if (n == 0)
        return 0.0;
    p = std::min(1.0, std::max(0.0, p));
    const double rank = p * static_cast<double>(n);
    // Rank 0 is the smallest sample by definition — even when every
    // sample overflowed the bucketed range and the scan below would
    // only ever see the recorded maximum.
    if (rank <= 0.0)
        return dist_.min();
    double cum = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const double in_bucket = static_cast<double>(counts_[i]);
        if (in_bucket > 0 && cum + in_bucket >= rank) {
            // Interpolate the rank's position inside [i*w, (i+1)*w).
            const double frac =
                std::max(0.0, rank - cum) / in_bucket;
            const double v = (i + frac) * bucketWidth_;
            return std::min(dist_.max(), std::max(dist_.min(), v));
        }
        cum += in_bucket;
    }
    // The rank lands among overflow samples; all we know about them
    // is the recorded extremum.
    return dist_.max();
}

StatGroup::Entry &
StatGroup::newEntry(const std::string &name, std::string desc)
{
    auto [it, inserted] = entries_.try_emplace(name);
    if (!inserted)
        panic("stat '{}' registered twice in group '{}'", name, name_);
    it->second.desc = std::move(desc);
    order_.push_back(name);
    return it->second;
}

Counter &
StatGroup::counter(const std::string &name, std::string desc)
{
    auto &e = newEntry(name, std::move(desc));
    e.counter = std::make_unique<Counter>();
    return *e.counter;
}

Distribution &
StatGroup::distribution(const std::string &name, std::string desc)
{
    auto &e = newEntry(name, std::move(desc));
    e.dist = std::make_unique<Distribution>();
    return *e.dist;
}

Histogram &
StatGroup::histogram(const std::string &name, double bucket_width,
                     std::size_t buckets, std::string desc)
{
    auto &e = newEntry(name, std::move(desc));
    e.hist = std::make_unique<Histogram>(bucket_width, buckets);
    return *e.hist;
}

const Counter &
StatGroup::findCounter(const std::string &name) const
{
    auto it = entries_.find(name);
    if (it == entries_.end() || !it->second.counter)
        panic("no counter '{}' in group '{}'", name, name_);
    return *it->second.counter;
}

const Distribution &
StatGroup::findDistribution(const std::string &name) const
{
    auto it = entries_.find(name);
    if (it == entries_.end() || !it->second.dist)
        panic("no distribution '{}' in group '{}'", name, name_);
    return *it->second.dist;
}

const Histogram &
StatGroup::findHistogram(const std::string &name) const
{
    auto it = entries_.find(name);
    if (it == entries_.end() || !it->second.hist)
        panic("no histogram '{}' in group '{}'", name, name_);
    return *it->second.hist;
}

bool
StatGroup::hasCounter(const std::string &name) const
{
    auto it = entries_.find(name);
    return it != entries_.end() && it->second.counter != nullptr;
}

void
StatGroup::resetAll()
{
    for (auto &[name, e] : entries_) {
        if (e.counter)
            e.counter->reset();
        if (e.dist)
            e.dist->reset();
        if (e.hist)
            e.hist->reset();
    }
}

void
StatGroup::mergeFrom(const StatGroup &other)
{
    for (const auto &name : other.order_) {
        const Entry &src = other.entries_.at(name);
        auto it = entries_.find(name);
        if (it == entries_.end()) {
            Entry &dst = newEntry(name, src.desc);
            if (src.counter)
                dst.counter = std::make_unique<Counter>(*src.counter);
            else if (src.dist)
                dst.dist = std::make_unique<Distribution>(*src.dist);
            else if (src.hist)
                dst.hist = std::make_unique<Histogram>(*src.hist);
            continue;
        }
        Entry &dst = it->second;
        if (src.counter && dst.counter)
            dst.counter->merge(*src.counter);
        else if (src.dist && dst.dist)
            dst.dist->merge(*src.dist);
        else if (src.hist && dst.hist)
            dst.hist->merge(*src.hist);
        else
            panic("StatGroup::mergeFrom: stat '{}' has mismatched "
                  "types between '{}' and '{}'",
                  name, name_, other.name_);
    }
}

void
StatGroup::visit(const Visitor &visitor) const
{
    for (const auto &name : order_) {
        const Entry &e = entries_.at(name);
        visitor(name, e.desc, e.counter.get(), e.dist.get(),
                e.hist.get());
    }
}

void
StatGroup::dump(std::ostream &os) const
{
    os << "---- " << name_ << " ----\n";
    for (const auto &name : order_) {
        const auto &e = entries_.at(name);
        os << "  " << name << " = ";
        if (e.counter) {
            os << e.counter->value();
        } else if (e.dist) {
            os << "n=" << e.dist->count() << " mean=" << e.dist->mean()
               << " min=" << e.dist->min() << " max=" << e.dist->max();
        } else if (e.hist) {
            os << "n=" << e.hist->count() << " mean=" << e.hist->mean();
        }
        if (!e.desc.empty())
            os << "   # " << e.desc;
        os << "\n";
    }
}

} // namespace fpc::stats
