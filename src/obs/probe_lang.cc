#include "obs/probe_lang.hh"

#include <cctype>

namespace fpc::obs
{

namespace
{

/** Cursor over the spec text with the usual recursive-descent
 *  helpers; whitespace is skipped between tokens. */
struct Cursor
{
    std::string_view s;
    std::size_t pos = 0;

    void
    skipWs()
    {
        while (pos < s.size() &&
               std::isspace(static_cast<unsigned char>(s[pos])))
            ++pos;
    }
    bool done()
    {
        skipWs();
        return pos >= s.size();
    }
    char
    peek()
    {
        skipWs();
        return pos < s.size() ? s[pos] : '\0';
    }
    bool
    eat(char c)
    {
        skipWs();
        if (pos < s.size() && s[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }
    bool
    eatWord(std::string_view word)
    {
        skipWs();
        if (s.substr(pos, word.size()) != word)
            return false;
        pos += word.size();
        return true;
    }
    /** Identifier-ish token: letters, digits, and the characters
     *  procedure names and globs use. */
    std::string
    token(std::string_view extra = "")
    {
        skipWs();
        std::string out;
        while (pos < s.size()) {
            const char c = s[pos];
            const bool word =
                std::isalnum(static_cast<unsigned char>(c)) ||
                c == '_' || c == '.' || c == '*' || c == '?';
            if (!word && extra.find(c) == std::string_view::npos)
                break;
            out.push_back(c);
            ++pos;
        }
        return out;
    }
};

bool
parseUint(const std::string &tok, std::uint64_t &out)
{
    if (tok.empty())
        return false;
    out = 0;
    for (char c : tok) {
        if (!std::isdigit(static_cast<unsigned char>(c)))
            return false;
        out = out * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return true;
}

bool
parseCmp(Cursor &c, ProbeCmp &out)
{
    if (c.eatWord("=="))
        out = ProbeCmp::Eq;
    else if (c.eatWord("!="))
        out = ProbeCmp::Ne;
    else if (c.eatWord("<="))
        out = ProbeCmp::Le;
    else if (c.eatWord(">="))
        out = ProbeCmp::Ge;
    else if (c.eatWord("<"))
        out = ProbeCmp::Lt;
    else if (c.eatWord(">"))
        out = ProbeCmp::Gt;
    else
        return false;
    return true;
}

bool
parseXferKind(const std::string &tok, XferKind &out)
{
    if (tok == "extcall")
        out = XferKind::ExtCall;
    else if (tok == "localcall")
        out = XferKind::LocalCall;
    else if (tok == "directcall")
        out = XferKind::DirectCall;
    else if (tok == "fatcall")
        out = XferKind::FatCall;
    else if (tok == "return")
        out = XferKind::Return;
    else if (tok == "coroutine")
        out = XferKind::Coroutine;
    else if (tok == "procswitch")
        out = XferKind::ProcSwitch;
    else if (tok == "trap")
        out = XferKind::Trap;
    else
        return false;
    return true;
}

const char *
xferKindToken(XferKind kind)
{
    switch (kind) {
    case XferKind::ExtCall:
        return "extcall";
    case XferKind::LocalCall:
        return "localcall";
    case XferKind::DirectCall:
        return "directcall";
    case XferKind::FatCall:
        return "fatcall";
    case XferKind::Return:
        return "return";
    case XferKind::Coroutine:
        return "coroutine";
    case XferKind::ProcSwitch:
        return "procswitch";
    case XferKind::Trap:
        return "trap";
    default:
        return "?";
    }
}

bool
parseExpr(const std::string &tok, ProbeExpr &out)
{
    if (tok == "refs")
        out = ProbeExpr::Refs;
    else if (tok == "cycles")
        out = ProbeExpr::Cycles;
    else if (tok == "depth")
        out = ProbeExpr::Depth;
    else if (tok == "fsi")
        out = ProbeExpr::Fsi;
    else
        return false;
    return true;
}

bool
parsePredicate(Cursor &c, ProbePredicate &out, std::string &err)
{
    const std::string key = c.token();
    if (key == "depth" || key == "fsi") {
        out.kind = key == "depth" ? ProbePredicate::Kind::Depth
                                  : ProbePredicate::Kind::Fsi;
        if (!parseCmp(c, out.cmp)) {
            err = "expected comparison after '" + key + "'";
            return false;
        }
        if (!parseUint(c.token(), out.number)) {
            err = "expected number after '" + key + "' comparison";
            return false;
        }
        return true;
    }
    if (key == "tenant" || key == "caller") {
        out.kind = key == "tenant" ? ProbePredicate::Kind::Tenant
                                   : ProbePredicate::Kind::Caller;
        out.cmp = ProbeCmp::Eq;
        if (!c.eatWord("==")) {
            err = "'" + key + "' only supports '=='";
            return false;
        }
        out.text = c.token();
        if (out.text.empty()) {
            err = "expected pattern after '" + key + " =='";
            return false;
        }
        return true;
    }
    if (key == "callstr") {
        out.kind = ProbePredicate::Kind::CallString;
        out.cmp = ProbeCmp::Eq;
        if (!c.eatWord("==")) {
            err = "'callstr' only supports '=='";
            return false;
        }
        do {
            const std::string part = c.token();
            if (part.empty()) {
                err = "expected glob in 'callstr' path";
                return false;
            }
            out.path.push_back(part);
        } while (c.eat('/'));
        return true;
    }
    err = key.empty() ? "expected predicate"
                      : "unknown predicate '" + key + "'";
    return false;
}

/** Canonical rendering: the identity probes are merged/deduped by. */
std::string
render(const ProbeSpec &spec)
{
    std::string out;
    switch (spec.site) {
    case ProbeSite::Entry:
        out = "entry:" + spec.pattern;
        break;
    case ProbeSite::Exit:
        out = "exit:" + spec.pattern;
        break;
    case ProbeSite::Xfer:
        out = std::string("xfer:") + xferKindToken(spec.kind);
        break;
    case ProbeSite::Trap:
        out = "trap";
        break;
    case ProbeSite::ProcSwitch:
        out = "procswitch";
        break;
    case ProbeSite::FrameAlloc:
        out = "alloc";
        break;
    case ProbeSite::FrameFree:
        out = "free";
        break;
    }
    if (!spec.predicates.empty()) {
        out += "{";
        bool first = true;
        for (const ProbePredicate &p : spec.predicates) {
            if (!first)
                out += ", ";
            first = false;
            switch (p.kind) {
            case ProbePredicate::Kind::Depth:
                out += "depth ";
                out += probeCmpName(p.cmp);
                out += " " + std::to_string(p.number);
                break;
            case ProbePredicate::Kind::Fsi:
                out += "fsi ";
                out += probeCmpName(p.cmp);
                out += " " + std::to_string(p.number);
                break;
            case ProbePredicate::Kind::Tenant:
                out += "tenant == " + p.text;
                break;
            case ProbePredicate::Kind::Caller:
                out += "caller == " + p.text;
                break;
            case ProbePredicate::Kind::CallString: {
                out += "callstr == ";
                bool firstPart = true;
                for (const std::string &part : p.path) {
                    if (!firstPart)
                        out += "/";
                    firstPart = false;
                    out += part;
                }
                break;
            }
            }
        }
        out += "}";
    }
    out += " -> ";
    out += probeActionName(spec.action);
    if (spec.action == ProbeAction::Capture)
        out += "(" + std::to_string(spec.captureDepth) + ")";
    else if (spec.action != ProbeAction::Count)
        out += std::string("(") + probeExprName(spec.expr) + ")";
    return out;
}

} // namespace

bool
parseProbeSpec(std::string_view input, ProbeSpec &out, std::string &err)
{
    out = ProbeSpec();
    Cursor c{input};

    // -- site ---------------------------------------------------------
    const std::string site = c.token();
    if (site == "entry" || site == "exit") {
        if (!c.eat(':')) {
            err = "expected ':<glob>' after '" + site + "'";
            return false;
        }
        out.site =
            site == "entry" ? ProbeSite::Entry : ProbeSite::Exit;
        out.pattern = c.token();
        if (out.pattern.empty()) {
            err = "expected procedure glob after '" + site + ":'";
            return false;
        }
    } else if (site == "xfer") {
        if (!c.eat(':')) {
            err = "expected ':<kind>' after 'xfer'";
            return false;
        }
        out.site = ProbeSite::Xfer;
        if (!parseXferKind(c.token(), out.kind)) {
            err = "unknown XFER kind (want extcall/localcall/"
                  "directcall/fatcall/return/coroutine/procswitch/"
                  "trap)";
            return false;
        }
    } else if (site == "trap") {
        out.site = ProbeSite::Trap;
    } else if (site == "procswitch") {
        out.site = ProbeSite::ProcSwitch;
    } else if (site == "alloc") {
        out.site = ProbeSite::FrameAlloc;
    } else if (site == "free") {
        out.site = ProbeSite::FrameFree;
    } else {
        err = site.empty()
                  ? "empty probe spec"
                  : "unknown probe site '" + site + "'";
        return false;
    }

    // -- predicates ---------------------------------------------------
    if (c.eat('{')) {
        do {
            ProbePredicate pred;
            if (!parsePredicate(c, pred, err))
                return false;
            out.predicates.push_back(std::move(pred));
        } while (c.eat(','));
        if (!c.eat('}')) {
            err = "expected '}' closing the predicate list";
            return false;
        }
    }

    // -- action -------------------------------------------------------
    if (c.eatWord("->")) {
        const std::string action = c.token();
        if (action == "count") {
            out.action = ProbeAction::Count;
        } else if (action == "sum" || action == "min" ||
                   action == "max" || action == "quantize") {
            out.action = action == "sum"   ? ProbeAction::Sum
                         : action == "min" ? ProbeAction::Min
                         : action == "max" ? ProbeAction::Max
                                           : ProbeAction::Quantize;
            if (!c.eat('(')) {
                err = "expected '(<expr>)' after '" + action + "'";
                return false;
            }
            if (!parseExpr(c.token(), out.expr)) {
                err = "unknown expression (want refs/cycles/depth/"
                      "fsi)";
                return false;
            }
            if (!c.eat(')')) {
                err = "expected ')' after the expression";
                return false;
            }
        } else if (action == "capture") {
            out.action = ProbeAction::Capture;
            std::uint64_t n = 0;
            if (!c.eat('(') || !parseUint(c.token(), n) ||
                !c.eat(')')) {
                err = "expected 'capture(<N>)'";
                return false;
            }
            if (n == 0 || n > 65536) {
                err = "capture ring size must be in [1, 65536]";
                return false;
            }
            out.captureDepth = static_cast<std::uint32_t>(n);
        } else {
            err = action.empty()
                      ? "expected action after '->'"
                      : "unknown action '" + action + "'";
            return false;
        }
    }

    if (!c.done()) {
        err = "trailing garbage at offset " + std::to_string(c.pos);
        return false;
    }
    out.text = render(out);
    return true;
}

bool
probeGlobMatch(std::string_view pattern, std::string_view name)
{
    // Classic backtracking glob: linear in practice, no recursion.
    std::size_t p = 0, n = 0;
    std::size_t starP = std::string_view::npos, starN = 0;
    while (n < name.size()) {
        if (p < pattern.size() &&
            (pattern[p] == '?' || pattern[p] == name[n])) {
            ++p;
            ++n;
        } else if (p < pattern.size() && pattern[p] == '*') {
            starP = p++;
            starN = n;
        } else if (starP != std::string_view::npos) {
            p = starP + 1;
            n = ++starN;
        } else {
            return false;
        }
    }
    while (p < pattern.size() && pattern[p] == '*')
        ++p;
    return p == pattern.size();
}

const char *
probeSiteName(ProbeSite site)
{
    switch (site) {
    case ProbeSite::Entry:
        return "entry";
    case ProbeSite::Exit:
        return "exit";
    case ProbeSite::Xfer:
        return "xfer";
    case ProbeSite::Trap:
        return "trap";
    case ProbeSite::ProcSwitch:
        return "procswitch";
    case ProbeSite::FrameAlloc:
        return "alloc";
    case ProbeSite::FrameFree:
        return "free";
    }
    return "?";
}

const char *
probeActionName(ProbeAction action)
{
    switch (action) {
    case ProbeAction::Count:
        return "count";
    case ProbeAction::Sum:
        return "sum";
    case ProbeAction::Min:
        return "min";
    case ProbeAction::Max:
        return "max";
    case ProbeAction::Quantize:
        return "quantize";
    case ProbeAction::Capture:
        return "capture";
    }
    return "?";
}

const char *
probeExprName(ProbeExpr expr)
{
    switch (expr) {
    case ProbeExpr::Refs:
        return "refs";
    case ProbeExpr::Cycles:
        return "cycles";
    case ProbeExpr::Depth:
        return "depth";
    case ProbeExpr::Fsi:
        return "fsi";
    }
    return "?";
}

const char *
probeCmpName(ProbeCmp cmp)
{
    switch (cmp) {
    case ProbeCmp::Eq:
        return "==";
    case ProbeCmp::Ne:
        return "!=";
    case ProbeCmp::Lt:
        return "<";
    case ProbeCmp::Le:
        return "<=";
    case ProbeCmp::Gt:
        return ">";
    case ProbeCmp::Ge:
        return ">=";
    }
    return "?";
}

} // namespace fpc::obs
