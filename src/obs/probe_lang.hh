/**
 * @file
 * The fpcprobe specification language: a DTrace-idiom one-liner per
 * probe, parsed from --probe='<site>{<predicate>} -> <action>'.
 *
 * Grammar (whitespace insignificant outside identifiers):
 *
 *   spec       := site [ '{' predicates '}' ] [ '->' action ]
 *   site       := 'entry:' glob          procedure entry, by
 *                                        "Module.proc" name or glob
 *               | 'exit:' glob           procedure exit (RETURN from)
 *               | 'xfer:' kind           every transfer of one kind
 *               | 'trap'                 every trap, handled or not
 *               | 'procswitch'           every process switch
 *               | 'alloc'                every frame allocation
 *               | 'free'                 every frame release
 *   kind       := 'extcall' | 'localcall' | 'directcall' | 'fatcall'
 *               | 'return' | 'coroutine' | 'procswitch' | 'trap'
 *   predicates := pred ( ',' pred )*
 *   pred       := 'depth' cmp uint       shadow-stack call depth
 *               | 'fsi' cmp uint         frame-size class
 *               | 'tenant' '==' ident    serving tenant name
 *               | 'caller' '==' glob     immediate caller's name
 *               | 'callstr' '==' glob ( '/' glob )*
 *                                        call-string suffix match
 *                                        against the shadow stack
 *   cmp        := '==' | '!=' | '<' | '<=' | '>' | '>='
 *   action     := 'count'                                (default)
 *               | 'sum(' expr ')' | 'min(' expr ')' | 'max(' expr ')'
 *               | 'quantize(' expr ')'   log2 histogram
 *               | 'capture(' uint ')'    last-N event ring
 *   expr       := 'refs' | 'cycles' | 'depth' | 'fsi'
 *
 * Globs support '*' (any run, including empty) and '?' (any one
 * character); everything else matches literally. A parsed ProbeSpec
 * is image-independent — name patterns bind to PCs when the spec is
 * compiled against a LoadedImage (obs/probes.hh).
 */

#ifndef FPC_OBS_PROBE_LANG_HH
#define FPC_OBS_PROBE_LANG_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "xfer/context.hh"

namespace fpc::obs
{

enum class ProbeSite : std::uint8_t
{
    Entry,      ///< procedure entry (call-like transfer landing)
    Exit,       ///< procedure exit (RETURN leaving)
    Xfer,       ///< every transfer of spec.kind
    Trap,       ///< every trap (including unhandled)
    ProcSwitch, ///< every process switch
    FrameAlloc, ///< every frame allocation
    FrameFree,  ///< every frame release
};

enum class ProbeCmp : std::uint8_t
{
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
};

/** The value expression an action aggregates. */
enum class ProbeExpr : std::uint8_t
{
    Refs,   ///< storage references of the event's transfer
    Cycles, ///< simulated cycles of the event's transfer
    Depth,  ///< shadow-stack call depth at the event
    Fsi,    ///< frame-size class (frame events / callee frames)
};

enum class ProbeAction : std::uint8_t
{
    Count,
    Sum,
    Min,
    Max,
    Quantize, ///< log2 histogram of expr
    Capture,  ///< last-N ring of events
};

struct ProbePredicate
{
    enum class Kind : std::uint8_t
    {
        Depth,
        Fsi,
        Tenant,
        Caller,
        CallString,
    };
    Kind kind = Kind::Depth;
    ProbeCmp cmp = ProbeCmp::Eq;
    std::uint64_t number = 0;       ///< Depth / Fsi operand
    std::string text;               ///< Tenant / Caller pattern
    std::vector<std::string> path;  ///< CallString suffix patterns
};

/** One parsed probe, still image-independent. */
struct ProbeSpec
{
    std::string text; ///< the normalized source line (identity)
    ProbeSite site = ProbeSite::Entry;
    std::string pattern;                 ///< Entry/Exit name glob
    XferKind kind = XferKind::ExtCall;   ///< Xfer site
    std::vector<ProbePredicate> predicates;
    ProbeAction action = ProbeAction::Count;
    ProbeExpr expr = ProbeExpr::Cycles;
    std::uint32_t captureDepth = 0;      ///< Capture ring size
};

/** Parse one spec; false (with a diagnosis in err) on malformed
 *  input. out.text is set to a canonical rendering of the spec, so
 *  equal probes compare equal regardless of input spacing. */
bool parseProbeSpec(std::string_view input, ProbeSpec &out,
                    std::string &err);

/** '*' / '?' glob match (full-string). */
bool probeGlobMatch(std::string_view pattern, std::string_view name);

/** Stable lowercase names for export (site / action / expr). */
const char *probeSiteName(ProbeSite site);
const char *probeActionName(ProbeAction action);
const char *probeExprName(ProbeExpr expr);
const char *probeCmpName(ProbeCmp cmp);

} // namespace fpc::obs

#endif // FPC_OBS_PROBE_LANG_HH
