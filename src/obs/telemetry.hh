/**
 * @file
 * Time-series telemetry: a deterministic gauge sampler clocked on
 * simulated cycles, with JSON ("fpc-metrics-v1") and OpenMetrics
 * text-exposition exporters.
 *
 * The paper's claims are steady-state behaviors — ~10% frame-heap
 * fragmentation (§5.3), IFU return-stack residency (§6), bank
 * occupancy (§7) — and end-of-run aggregates cannot show how those
 * gauges *evolve*. A Telemetry attaches to a Machine's CycleSampler
 * slot and snapshots every layer's gauges into a fixed-capacity,
 * drop-oldest ring each time simulated time crosses an interval
 * boundary.
 *
 * Because the clock is simulated cycles and every gauge read is
 * unaccounted (zero simulated cost), the series is byte-identical
 * across runs and across the host-acceleration switch. The one
 * exception — host cache hit rates, which legitimately differ — is
 * captured but only exported on explicit request, exactly like
 * --accel-stats in the fpc-stats-v1 document.
 */

#ifndef FPC_OBS_TELEMETRY_HH
#define FPC_OBS_TELEMETRY_HH

#include <functional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "machine/machine.hh"

namespace fpc::obs
{

/** One gauge snapshot, stamped with the simulated clock. */
struct MetricsSample
{
    Tick cycles = 0;
    std::uint64_t steps = 0;

    // Machine: cumulative per-kind transfer counts (rates fall out of
    // deltas between consecutive samples) and instantaneous depths.
    std::array<CountT, MachineStats::numXferKinds> xferCount{};
    CountT calls = 0;
    CountT returns = 0;
    CountT preemptions = 0;
    double fastCallReturnRate = 0.0;
    unsigned returnStackDepth = 0;
    unsigned banksResident = 0; ///< banks currently owning a frame

    // FrameHeap: live-frame census, fragmentation, AV occupancy.
    CountT liveFrames = 0;
    double fragmentation = 0.0;
    std::vector<unsigned> freeFrames; ///< per size class, index = fsi

    // Host-acceleration hit rates. Captured always, exported only on
    // request: the default export must stay byte-identical with
    // acceleration on or off, and these are the one thing that
    // legitimately differs.
    bool accelEnabled = false;
    double icacheHitRate = 0.0;
    double linkHitRate = 0.0;
    /** Threaded-backend internals (zero when the backend is off):
     *  chain-served block transitions per superblock execution, fused
     *  superinstruction executions, deferred-accounting folds. */
    double sblockChainRate = 0.0;
    CountT sblockFusionHits = 0;
    CountT deferredFlushes = 0;

    /** Extra gauges contributed by a provider (scheduler/runtime
     *  state the obs layer cannot name without a layering cycle). */
    std::vector<std::pair<std::string, double>> gauges;
};

/**
 * The sampler: attach with machine.setSampler(&telemetry, interval).
 * Samples land in a drop-oldest ring; drivers additionally bracket a
 * run with explicit sample() calls so even programs shorter than one
 * interval export a start and a final point.
 */
class Telemetry : public CycleSampler, public BoundarySampler
{
  public:
    static constexpr std::size_t defaultCapacity = 4096;
    static constexpr Tick defaultInterval = 10000;

    explicit Telemetry(std::size_t capacity = defaultCapacity);

    /** Appends (name, value) gauges to every subsequent sample. The
     *  scheduler/runtime layers sit above fpc_obs, so their gauges
     *  enter through this hook instead of a direct dependency. */
    using GaugeProvider =
        std::function<void(std::vector<std::pair<std::string, double>> &)>;
    void setProvider(GaugeProvider provider);

    /** Cycle/step offsets added to sample stamps — a Runtime worker
     *  advances these between jobs so consecutive jobs lay out
     *  consecutively on its series and the exported counters stay
     *  monotone (same idea as Tracer::setBase). */
    void setBase(Tick cycle_base, std::uint64_t step_base = 0)
    {
        base_ = cycle_base;
        stepBase_ = step_base;
    }
    Tick base() const { return base_; }
    std::uint64_t stepBase() const { return stepBase_; }

    void onSample(const Machine &machine) override;

    /** Sampled (accel-safe) mode: attach with
     *  machine.setBoundarySampler(&telemetry, interval). Same
     *  snapshot, but the stamps obey the BoundarySampler slop
     *  contract instead of the exact-interval contract, and the accel
     *  fast paths keep running. */
    void onBoundarySample(const Machine &machine) override;

    /** Take a snapshot right now (run bracketing). */
    void sample(const Machine &machine);

    std::size_t capacity() const { return capacity_; }
    CountT recorded() const { return recorded_; }
    /** Samples discarded by the ring over the telemetry's lifetime. */
    CountT dropped() const { return dropped_; }

    /** Oldest-first snapshot of the retained samples. */
    std::vector<MetricsSample> samples() const;

    void clear();

  private:
    std::size_t capacity_;
    std::vector<MetricsSample> ring_;
    std::size_t head_ = 0; ///< next write slot once the ring is full
    CountT recorded_ = 0;
    CountT dropped_ = 0;
    Tick base_ = 0;
    std::uint64_t stepBase_ = 0;
    GaugeProvider provider_;
};

/** Document-level metadata for the metrics exporters. */
struct MetricsExport
{
    std::string driver; ///< "fpcvm" | "fpcrun" | test name
    std::string impl;   ///< implName() of the machine config
    Tick interval = Telemetry::defaultInterval;
    /** Export host-acceleration hit-rate gauges. Off by default: the
     *  default document must be byte-identical with acceleration on
     *  or off. */
    bool includeAccel = false;
};

/**
 * Write the append-only "fpc-metrics-v1" JSON time series: one series
 * per worker (fpcvm exports exactly one), each an array of samples in
 * time order. Null tracks are skipped.
 */
void writeMetricsJson(std::ostream &os, const MetricsExport &meta,
                      const std::vector<const Telemetry *> &workers);

/** Single-machine convenience: one series, worker 0. */
void writeMetricsJson(std::ostream &os, const MetricsExport &meta,
                      const Telemetry &telemetry);

/**
 * Write the series in OpenMetrics text exposition format: one
 * `# TYPE`/`# HELP` header per metric family, `worker`/`impl` (and
 * where applicable `kind`/`fsi`) labels, counters suffixed `_total`,
 * each sample stamped with its simulated-cycle timestamp, and the
 * mandatory `# EOF` terminator.
 */
void writeOpenMetrics(std::ostream &os, const MetricsExport &meta,
                      const std::vector<const Telemetry *> &workers);

/** Single-machine convenience: one series, worker 0. */
void writeOpenMetrics(std::ostream &os, const MetricsExport &meta,
                      const Telemetry &telemetry);

} // namespace fpc::obs

#endif // FPC_OBS_TELEMETRY_HH
