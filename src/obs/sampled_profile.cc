#include "obs/sampled_profile.hh"

#include <algorithm>

namespace fpc::obs
{

void
SampledProfile::merge(const SampledProfile &other)
{
    for (const auto &[name, n] : other.samples)
        samples[name] += n;
    total += other.total;
    recorded += other.recorded;
    dropped += other.dropped;
}

double
SampledProfile::share(const std::string &name) const
{
    if (total == 0)
        return 0.0;
    auto it = samples.find(name);
    if (it == samples.end())
        return 0.0;
    return static_cast<double>(it->second) /
           static_cast<double>(total);
}

stats::Table
SampledProfile::topTable(std::size_t top_n) const
{
    std::vector<std::pair<std::string, CountT>> rows(samples.begin(),
                                                     samples.end());
    std::sort(rows.begin(), rows.end(),
              [](const auto &a, const auto &b) {
                  if (a.second != b.second)
                      return a.second > b.second;
                  return a.first < b.first;
              });
    if (rows.size() > top_n)
        rows.resize(top_n);

    stats::Table table({"procedure", "samples", "share %"});
    for (const auto &[name, n] : rows) {
        table.row(name, n,
                  stats::percent(
                      total ? static_cast<double>(n) /
                                  static_cast<double>(total)
                            : 0.0));
    }
    return table;
}

void
SampledProfile::writeFolded(std::ostream &os) const
{
    for (const auto &[name, n] : samples)
        os << name << " " << n << "\n";
}

SampledProfiler::SampledProfiler(const LoadedImage &image,
                                 std::size_t capacity)
    : map_(image), capacity_(std::max<std::size_t>(1, capacity))
{
    ring_.reserve(std::min<std::size_t>(capacity_, 4096));
}

void
SampledProfiler::onBoundarySample(const Machine &machine)
{
    Sample s;
    s.cycles = machine.stats().cycles;
    s.steps = machine.stats().steps;
    s.pc = machine.pc();
    s.procEntry = machine.currentProcEntry();
    s.anchorPc = machine.boundaryAnchorPc();
    ++recorded_;
    if (ring_.size() < capacity_) {
        ring_.push_back(s);
        return;
    }
    ring_[head_] = s;
    head_ = (head_ + 1) % capacity_;
    ++dropped_;
}

SampledProfile
SampledProfiler::finish()
{
    SampledProfile out;
    out.recorded = recorded_;
    out.dropped = dropped_;
    for (const Sample &s : ring_) {
        // Threaded boundaries land just *after* a block's terminal
        // XFER, so the block-entry anchor — inside the procedure that
        // spent the cycles — beats both the shadow top-frame register
        // and the raw PC, which already point at the transfer's
        // destination. Off the threaded path the anchor is 0: the
        // shadow register gives call-boundary-exact attribution, and
        // when cold (return-stack returns do not restore it) the raw
        // PC still resolves through the ProcMap.
        const CodeByteAddr at =
            s.anchorPc != 0
                ? s.anchorPc
                : (s.procEntry != 0 ? s.procEntry : s.pc);
        const std::string *name = map_.find(at);
        out.samples[name != nullptr ? *name : idleProcName] += 1;
        ++out.total;
    }
    ring_.clear();
    head_ = 0;
    recorded_ = 0;
    dropped_ = 0;
    return out;
}

} // namespace fpc::obs
