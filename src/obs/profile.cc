#include "obs/profile.hh"

#include <algorithm>

namespace fpc::obs
{

const std::string idleProcName = "(idle)";

namespace
{

bool
callLike(XferKind kind)
{
    return kind == XferKind::ExtCall || kind == XferKind::LocalCall ||
           kind == XferKind::DirectCall || kind == XferKind::FatCall;
}

} // namespace

ProcMap::ProcMap(const LoadedImage &image)
{
    for (const PlacedModule &pm : image.modules()) {
        for (unsigned p = 0; p < pm.procs.size(); ++p) {
            const PlacedProc &pp = pm.procs[p];
            Range range;
            range.end =
                pp.prologueAddr + pp.prologueBytes + pp.bodyBytes;
            range.name = pm.src->name + "." + pm.src->procs[p].name;
            ranges_[pp.prologueAddr] = std::move(range);
        }
    }
}

const std::string *
ProcMap::find(CodeByteAddr pc) const
{
    auto it = ranges_.upper_bound(pc);
    if (it == ranges_.begin())
        return nullptr;
    --it;
    if (pc >= it->first && pc < it->second.end)
        return &it->second.name;
    return nullptr;
}

// ---------------------------------------------------------------------
// ProfileData
// ---------------------------------------------------------------------

void
ProfileData::merge(const ProfileData &other)
{
    for (const auto &[name, p] : other.procs) {
        ProcProfile &dst = procs[name];
        dst.calls += p.calls;
        dst.resumes += p.resumes;
        dst.inclusive += p.inclusive;
        dst.exclusive += p.exclusive;
    }
    for (const auto &[stack, cycles] : other.folded)
        folded[stack] += cycles;
    total += other.total;
}

Tick
ProfileData::exclusiveTotal() const
{
    Tick sum = 0;
    for (const auto &[name, p] : procs)
        sum += p.exclusive;
    return sum;
}

stats::Table
ProfileData::topTable(std::size_t top_n) const
{
    std::vector<std::pair<std::string, ProcProfile>> rows(
        procs.begin(), procs.end());
    std::sort(rows.begin(), rows.end(),
              [](const auto &a, const auto &b) {
                  if (a.second.exclusive != b.second.exclusive)
                      return a.second.exclusive > b.second.exclusive;
                  return a.first < b.first;
              });
    if (rows.size() > top_n)
        rows.resize(top_n);

    stats::Table table({"procedure", "calls", "resumes", "excl cycles",
                        "excl %", "incl cycles"});
    for (const auto &[name, p] : rows) {
        table.row(name, p.calls, p.resumes, p.exclusive,
                  stats::percent(total ? static_cast<double>(p.exclusive) /
                                             static_cast<double>(total)
                                       : 0.0),
                  p.inclusive);
    }
    return table;
}

void
ProfileData::writeFolded(std::ostream &os) const
{
    for (const auto &[stack, cycles] : folded)
        os << stack << " " << cycles << "\n";
}

// ---------------------------------------------------------------------
// Profiler
// ---------------------------------------------------------------------

std::string
Profiler::nameAt(CodeByteAddr pc) const
{
    if (const std::string *name = map_.find(pc))
        return *name;
    return "pc_" + std::to_string(pc);
}

std::string
Profiler::foldedKey() const
{
    if (stack_.empty())
        return idleProcName;
    std::string key;
    for (const Open &open : stack_) {
        if (!key.empty())
            key += ";";
        key += open.name;
    }
    return key;
}

void
Profiler::attribute(Tick now)
{
    if (now <= lastTick_)
        return;
    const Tick delta = now - lastTick_;
    const std::string &top =
        stack_.empty() ? idleProcName : stack_.back().name;
    data_.procs[top].exclusive += delta;
    data_.folded[foldedKey()] += delta;
    lastTick_ = now;
}

void
Profiler::closeAll(Tick now)
{
    while (!stack_.empty()) {
        const Open open = stack_.back();
        stack_.pop_back();
        data_.procs[open.name].inclusive += now - open.entered;
    }
}

void
Profiler::onXfer(const XferRecord &record)
{
    // The transfer's own cost [start, end) is charged to the source
    // procedure: attribute everything up to the completed transfer
    // before touching the shadow stack.
    attribute(record.end);

    if (callLike(record.kind)) {
        stack_.push_back({nameAt(record.pc), record.end});
        ++data_.procs[stack_.back().name].calls;
        return;
    }
    if (record.kind == XferKind::Return) {
        if (!stack_.empty()) {
            const Open open = stack_.back();
            stack_.pop_back();
            data_.procs[open.name].inclusive +=
                record.end - open.entered;
        }
        return;
    }

    // Switch / ProcSwitch / Trap: LIFO order is broken. Flush
    // attribution the way I3 flushes its return stack: close every
    // open activation, then re-root at the destination.
    closeAll(record.end);
    if (record.dstCtx != nilContext || record.frame != nilAddr) {
        stack_.push_back({nameAt(record.pc), record.end});
        ++data_.procs[stack_.back().name].resumes;
    }
}

ProfileData
Profiler::finish(Tick end_cycles)
{
    attribute(end_cycles);
    // lastTick_ is now the last attributed cycle: exactly the total
    // charged, even if the caller's end_cycles ran behind an observed
    // transfer — keeps the exclusive-sum invariant exact.
    closeAll(lastTick_);
    data_.total += lastTick_;
    ProfileData out = std::move(data_);
    data_ = ProfileData();
    lastTick_ = 0;
    return out;
}

} // namespace fpc::obs
