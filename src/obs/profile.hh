/**
 * @file
 * Per-procedure profiling over the Machine's XFER observer hook.
 *
 * The profiler maintains a shadow call stack from the matched
 * call/return bracketing the transfer disciplines provide: call-like
 * transfers push the callee (identified by its entry PC through a
 * ProcMap built from the LoadedImage), RETURN pops. Exclusive cycles
 * are attributed to the procedure on top of the shadow stack as
 * simulated time advances; inclusive cycles are closed when an
 * activation leaves the stack.
 *
 * Coroutine Switch, ProcSwitch and Trap transfers break LIFO order,
 * so — exactly the way I3 flushes its return stack on an unusual
 * XFER — the profiler flushes attribution: it closes every open
 * activation and re-roots the stack at the transfer's destination.
 * Cycles therefore never dangle, and the invariant
 *
 *     sum over procedures of exclusive cycles  ==  total cycles
 *
 * holds exactly (cycles outside any procedure land in the "(idle)"
 * bucket; resumed activations restart their inclusive interval).
 */

#ifndef FPC_OBS_PROFILE_HH
#define FPC_OBS_PROFILE_HH

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "machine/machine.hh"
#include "program/loader.hh"
#include "stats/table.hh"

namespace fpc::obs
{

/** Bucket for simulated time spent outside any known procedure. */
extern const std::string idleProcName;

/** Maps code byte addresses to "Module.proc" procedure names. */
class ProcMap
{
  public:
    ProcMap() = default;
    explicit ProcMap(const LoadedImage &image);

    /** Name of the procedure whose code contains pc, or null. */
    const std::string *find(CodeByteAddr pc) const;

    std::size_t size() const { return ranges_.size(); }

  private:
    struct Range
    {
        CodeByteAddr end = 0;
        std::string name;
    };
    std::map<CodeByteAddr, Range> ranges_; ///< keyed by start address
};

/** What one procedure accumulated. */
struct ProcProfile
{
    CountT calls = 0;    ///< call-like activations
    CountT resumes = 0;  ///< non-LIFO entries (Switch/ProcSwitch/Trap)
    Tick inclusive = 0;  ///< cycles while anywhere on the stack
    Tick exclusive = 0;  ///< cycles while on top of the stack
};

/** Attribution results; mergeable across workers/jobs. */
struct ProfileData
{
    std::map<std::string, ProcProfile> procs;
    /** Folded call stacks ("a;b;c") to exclusive cycles — the
     *  flamegraph.pl input format. */
    std::map<std::string, Tick> folded;
    Tick total = 0; ///< cycles attributed in all merged runs

    void merge(const ProfileData &other);

    /** Sum of per-procedure exclusive cycles (== total by invariant). */
    Tick exclusiveTotal() const;

    /** Top-N procedures by exclusive cycles. */
    stats::Table topTable(std::size_t top_n = 20) const;

    /** One "stack;frames count" line per folded stack. */
    void writeFolded(std::ostream &os) const;
};

/** The observer: attach to a Machine, run, then finish(). */
class Profiler : public XferObserver
{
  public:
    explicit Profiler(const LoadedImage &image) : map_(image) {}

    void onXfer(const XferRecord &record) override;

    /** Attribute the tail up to end_cycles (the machine's final cycle
     *  count), close every open activation, and return the data. The
     *  profiler is reset and may observe another run afterwards. */
    ProfileData finish(Tick end_cycles);

  private:
    struct Open
    {
        std::string name;
        Tick entered = 0;
    };

    /** Charge [lastTick_, now) to the stack top and the folded key. */
    void attribute(Tick now);
    void closeAll(Tick now);
    std::string nameAt(CodeByteAddr pc) const;
    std::string foldedKey() const;

    ProcMap map_;
    std::vector<Open> stack_;
    Tick lastTick_ = 0;
    ProfileData data_;
};

} // namespace fpc::obs

#endif // FPC_OBS_PROFILE_HH
