/**
 * @file
 * The flight recorder: a small always-on ring of the last N
 * XferRecords plus a shadow call stack, and the postmortem bundle
 * writer the drivers invoke when a run stops on a trap, panic, or
 * any other nonzero outcome.
 *
 * Call/return structure is exactly the context worth capturing at
 * failure time: the bundle contains the recent transfer history, the
 * shadow stack symbolized through a ProcMap as a backtrace, the
 * frame-heap and AV state, a disassembly window around the faulting
 * PC, and the final telemetry snapshot when a sampler was attached.
 * Recording honors the zero-simulated-cost contract (the recorder is
 * an ordinary XferObserver), and — like any observer — forces the
 * eager run loop, never the accel burst path.
 */

#ifndef FPC_OBS_POSTMORTEM_HH
#define FPC_OBS_POSTMORTEM_HH

#include <string>
#include <vector>

#include "machine/machine.hh"
#include "program/loader.hh"

namespace fpc::obs
{

class Telemetry;

/**
 * The observer: records the last N transfers and maintains a shadow
 * call stack (call-like transfers push, Return pops, non-LIFO
 * transfers re-root — the profiler's flush discipline).
 */
class FlightRecorder : public XferObserver
{
  public:
    static constexpr std::size_t defaultCapacity = 256;

    explicit FlightRecorder(std::size_t capacity = defaultCapacity);

    void onXfer(const XferRecord &record) override;

    /** One shadow activation: the callee's entry PC and frame. */
    struct ShadowFrame
    {
        CodeByteAddr pc = 0;
        Addr frame = nilAddr;
    };

    /** Oldest-first snapshot of the retained records. */
    std::vector<XferRecord> records() const;
    /** Outermost-first shadow stack at the moment of stop. */
    const std::vector<ShadowFrame> &shadowStack() const
    {
        return stack_;
    }
    std::size_t capacity() const { return capacity_; }
    CountT recorded() const { return recorded_; }

    void clear();

  private:
    std::size_t capacity_;
    std::vector<XferRecord> ring_;
    std::size_t head_ = 0; ///< next write slot once the ring is full
    CountT recorded_ = 0;
    std::vector<ShadowFrame> stack_;
};

/** Where and under what identity to write the bundle. */
struct PostmortemConfig
{
    std::string dir;        ///< bundle directory (created if missing)
    std::string filePrefix; ///< e.g. "job-3-" for fpcrun bundles
    std::string driver;     ///< "fpcvm" | "fpcrun" | test name
    std::string impl;       ///< implName() of the machine config
    unsigned disasmWindowBytes = 48; ///< bytes around the faulting PC
};

/**
 * Write the bundle: `<prefix>postmortem.json` (stop reason, faulting
 * PC, symbolized backtrace, transfer ring, machine/heap/AV state,
 * final metrics sample) and `<prefix>disasm.txt` (the faulting
 * procedure's code around the fault, faulting instruction marked).
 * telemetry may be null. Returns false (after a warning on stderr)
 * if the directory or files cannot be written; simulation state is
 * never touched.
 */
bool writePostmortem(const PostmortemConfig &config,
                     const Machine &machine, const RunResult &result,
                     const LoadedImage &image,
                     const FlightRecorder &recorder,
                     const Telemetry *telemetry);

} // namespace fpc::obs

#endif // FPC_OBS_POSTMORTEM_HH
