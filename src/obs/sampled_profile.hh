/**
 * @file
 * Low-overhead sampling profiler for the accelerated host backends.
 *
 * The exact Profiler (obs/profile.hh) rides the XFER observer hook,
 * which forces the eager loop: attaching it to an `--accel=threaded`
 * run silently throws away the speedup it is supposed to measure.
 * This profiler rides the BoundarySampler hook instead — the accel
 * fast paths keep running, and a sample is taken the next time the
 * machine reaches a superblock exit (threaded), a burst flush
 * (burst), or an instruction boundary (eager) after the simulated
 * cycle budget expires.
 *
 * What a sample records is the *currently executing procedure*: the
 * machine's shadow-of-shadow top-frame register (currentProcEntry(),
 * maintained at call/return boundaries for exactly this purpose),
 * falling back to the raw PC when the register is cold (returns
 * served by the return stack do not restore it). Attribution is
 * therefore statistical, not exact — cycle shares converge on the
 * exact profiler's exclusive shares as the sample count grows — and
 * the timestamps obey the documented slop contract: each sample
 * lands within one superblock (threaded), one burst (burst), or one
 * instruction (eager) of its nominal interval boundary.
 */

#ifndef FPC_OBS_SAMPLED_PROFILE_HH
#define FPC_OBS_SAMPLED_PROFILE_HH

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "machine/machine.hh"
#include "obs/profile.hh"
#include "program/loader.hh"
#include "stats/table.hh"

namespace fpc::obs
{

/** Per-procedure sample counts; mergeable across workers/jobs. */
struct SampledProfile
{
    std::map<std::string, CountT> samples;
    CountT total = 0;    ///< samples retained and attributed
    CountT recorded = 0; ///< samples taken over the profiler's life
    CountT dropped = 0;  ///< samples discarded by the ring

    void merge(const SampledProfile &other);

    /** Share of retained samples attributed to name (0 when empty). */
    double share(const std::string &name) const;

    /** Top-N procedures by sample count. */
    stats::Table topTable(std::size_t top_n = 20) const;

    /** Folded-stack output ("name count"), one line per procedure —
     *  the same flamegraph.pl input format the exact profiler writes,
     *  with single-frame stacks (sampling sees no caller chain). */
    void writeFolded(std::ostream &os) const;
};

/** The sampler: attach with machine.setBoundarySampler(&p, interval),
 *  run, then finish(). */
class SampledProfiler : public BoundarySampler
{
  public:
    static constexpr std::size_t defaultCapacity = 1u << 16;

    explicit SampledProfiler(const LoadedImage &image,
                             std::size_t capacity = defaultCapacity);

    void onBoundarySample(const Machine &machine) override;

    CountT recorded() const { return recorded_; }
    CountT dropped() const { return dropped_; }

    /** Resolve the retained samples to procedure names and return the
     *  profile. The profiler is reset and may observe another run. */
    SampledProfile finish();

  private:
    struct Sample
    {
        Tick cycles = 0;
        std::uint64_t steps = 0;
        CodeByteAddr pc = 0;
        CodeByteAddr procEntry = 0;
        /** Entry PC of the superblock that spent the budget (threaded
         *  boundaries only, 0 otherwise); preferred for attribution
         *  because block exits land just *after* a transfer. */
        CodeByteAddr anchorPc = 0;
    };

    ProcMap map_;
    std::size_t capacity_;
    std::vector<Sample> ring_;
    std::size_t head_ = 0; ///< next write slot once the ring is full
    CountT recorded_ = 0;
    CountT dropped_ = 0;
};

/**
 * Distributes machine boundary samples to several consumers on their
 * own simulated-cycle budgets (the machine has one boundary-sampler
 * slot; a sampled profiler and sampled telemetry may both want it).
 * The machine fires at the finest requested interval and each target
 * forwards only once its own budget expires, with the same catch-up
 * semantics as the machine's. A coarser consumer's slop grows by at
 * most one finest-interval on top of the machine's documented
 * boundary slop.
 */
class BoundaryFanout final : public BoundarySampler
{
  public:
    void
    add(BoundarySampler *target, Tick interval)
    {
        interval = interval > 0 ? interval : 1;
        targets_.push_back({target, interval, interval});
    }
    /** Detach a target; its interval stops contributing to
     *  machineInterval(), so re-arm the machine's sampler after
     *  removal. Unknown targets are ignored. */
    void
    remove(BoundarySampler *target)
    {
        std::erase_if(targets_, [target](const Target &t) {
            return t.target == target;
        });
    }
    bool empty() const { return targets_.empty(); }
    std::size_t size() const { return targets_.size(); }
    /** The interval to hand machine.setBoundarySampler (the finest
     *  of the added budgets; 0 when empty). */
    Tick
    machineInterval() const
    {
        Tick finest = 0;
        for (const Target &t : targets_)
            if (finest == 0 || t.interval < finest)
                finest = t.interval;
        return finest;
    }
    void
    onBoundarySample(const Machine &machine) override
    {
        const Tick now = machine.stats().cycles;
        for (Target &t : targets_) {
            if (now < t.nextAt)
                continue;
            do
                t.nextAt += t.interval;
            while (t.nextAt <= now);
            t.target->onBoundarySample(machine);
        }
    }

  private:
    struct Target
    {
        BoundarySampler *target;
        Tick interval;
        Tick nextAt;
    };
    std::vector<Target> targets_;
};

} // namespace fpc::obs

#endif // FPC_OBS_SAMPLED_PROFILE_HH
