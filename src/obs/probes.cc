#include "obs/probes.hh"

#include <algorithm>
#include <tuple>

#include "obs/json.hh"

namespace fpc::obs
{

namespace
{

bool
callLike(XferKind kind)
{
    return kind == XferKind::ExtCall || kind == XferKind::LocalCall ||
           kind == XferKind::DirectCall || kind == XferKind::FatCall;
}

bool
cmpU(std::uint64_t a, ProbeCmp cmp, std::uint64_t b)
{
    switch (cmp) {
    case ProbeCmp::Eq:
        return a == b;
    case ProbeCmp::Ne:
        return a != b;
    case ProbeCmp::Lt:
        return a < b;
    case ProbeCmp::Le:
        return a <= b;
    case ProbeCmp::Gt:
        return a > b;
    case ProbeCmp::Ge:
        return a >= b;
    }
    return false;
}

auto
captureKey(const ProbeCaptureEntry &e)
{
    return std::make_tuple(e.worker, e.seq, e.step, e.cycles, e.pc,
                           e.value);
}

bool
captureLess(const ProbeCaptureEntry &a, const ProbeCaptureEntry &b)
{
    return captureKey(a) < captureKey(b);
}

/** Keep the greatest `depth` entries under the capture total order.
 *  "Greatest-N under a total order" is an associative, commutative
 *  reduction, so trimming at every fold yields the same survivors no
 *  matter which worker's buffers arrive first — the property the
 *  fpc-probes-v1 determinism gate leans on. */
void
trimRing(std::vector<ProbeCaptureEntry> &ring, std::size_t depth)
{
    std::sort(ring.begin(), ring.end(), captureLess);
    if (depth != 0 && ring.size() > depth)
        ring.erase(ring.begin(),
                   ring.end() - static_cast<std::ptrdiff_t>(depth));
}

constexpr std::size_t npos = ~static_cast<std::size_t>(0);

} // namespace

// ---------------------------------------------------------------------
// Aggregation buffers
// ---------------------------------------------------------------------

void
ProbeAgg::merge(const ProbeAgg &other)
{
    hits += other.hits;
    dist.merge(other.dist);
    quant.merge(other.quant);
    ring.insert(ring.end(), other.ring.begin(), other.ring.end());
}

void
ProbeBuffers::merge(const ProbeBuffers &other)
{
    if (aggs.size() < other.aggs.size())
        aggs.resize(other.aggs.size());
    for (std::size_t i = 0; i < other.aggs.size(); ++i)
        aggs[i].merge(other.aggs[i]);
}

// ---------------------------------------------------------------------
// ProbeRegistry
// ---------------------------------------------------------------------

std::uint32_t
ProbeRegistry::attach(ProbeSpec spec)
{
    std::lock_guard<std::mutex> lock(mutex_);
    // Specs compare by canonical text, so re-attaching an identical
    // probe is idempotent: its aggregation just keeps accumulating.
    for (const Entry &e : entries_)
        if (e.spec.text == spec.text)
            return e.id;
    const std::uint32_t id = nextId_++;
    entries_.push_back(Entry{id, std::move(spec)});
    totals_[id];
    return id;
}

bool
ProbeRegistry::detach(std::uint32_t id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (it->id == id) {
            entries_.erase(it);
            totals_.erase(id);
            return true;
        }
    }
    return false;
}

bool
ProbeRegistry::active() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return !entries_.empty();
}

std::size_t
ProbeRegistry::attachedCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

ProbeRegistry::Snapshot
ProbeRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return std::make_shared<const std::vector<Entry>>(entries_);
}

void
ProbeRegistry::fold(const Snapshot &snap, const ProbeBuffers &buffers)
{
    if (snap == nullptr)
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    const std::size_t n =
        std::min(snap->size(), buffers.aggs.size());
    for (std::size_t i = 0; i < n; ++i) {
        const Entry &e = (*snap)[i];
        auto it = totals_.find(e.id);
        if (it == totals_.end())
            continue; // detached while the job was in flight
        it->second.merge(buffers.aggs[i]);
        if (e.spec.action == ProbeAction::Capture)
            trimRing(it->second.ring, e.spec.captureDepth);
    }
}

std::vector<std::pair<ProbeRegistry::Entry, ProbeAgg>>
ProbeRegistry::read() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::pair<Entry, ProbeAgg>> out;
    out.reserve(entries_.size());
    for (const Entry &e : entries_) {
        auto it = totals_.find(e.id);
        out.emplace_back(e, it == totals_.end() ? ProbeAgg()
                                                : it->second);
    }
    return out;
}

void
ProbeRegistry::writeJson(std::ostream &os,
                         const std::string &driver) const
{
    const auto probes = read();
    JsonWriter w(os);
    w.beginObject();
    w.kv("schema", "fpc-probes-v1");
    w.kv("driver", driver);
    w.key("probes").beginArray();
    for (const auto &[entry, agg] : probes) {
        const ProbeSpec &s = entry.spec;
        w.beginObject();
        w.kv("id", std::uint64_t(entry.id));
        w.kv("spec", s.text);
        w.kv("site", probeSiteName(s.site));
        w.kv("action", probeActionName(s.action));
        w.kv("hits", agg.hits);
        switch (s.action) {
        case ProbeAction::Count:
            break;
        case ProbeAction::Sum:
        case ProbeAction::Min:
        case ProbeAction::Max: {
            w.kv("expr", probeExprName(s.expr));
            const bool any = agg.dist.count() != 0;
            w.key("value").beginObject();
            w.kv("count", agg.dist.count());
            w.kv("sum", any ? agg.dist.total() : 0.0);
            w.kv("min", any ? agg.dist.min() : 0.0);
            w.kv("max", any ? agg.dist.max() : 0.0);
            w.kv("mean", any ? agg.dist.mean() : 0.0);
            w.endObject();
            break;
        }
        case ProbeAction::Quantize: {
            w.kv("expr", probeExprName(s.expr));
            // bucket 0 counts value 0; bucket k>=1 counts values in
            // [2^(k-1), 2^k). Ascending, zero buckets elided.
            w.key("quantize").beginArray();
            for (std::size_t b = 0; b < agg.quant.buckets.size();
                 ++b) {
                if (agg.quant.buckets[b] == 0)
                    continue;
                w.beginObject();
                w.kv("bucket", std::uint64_t(b));
                w.kv("count", agg.quant.buckets[b]);
                w.endObject();
            }
            w.endArray();
            break;
        }
        case ProbeAction::Capture: {
            w.kv("expr", probeExprName(s.expr));
            std::vector<ProbeCaptureEntry> ring = agg.ring;
            std::sort(ring.begin(), ring.end(), captureLess);
            w.key("captures").beginArray();
            for (const ProbeCaptureEntry &c : ring) {
                w.beginObject();
                w.kv("worker", std::uint64_t(c.worker));
                w.kv("seq", c.seq);
                w.kv("step", c.step);
                w.kv("cycles", std::uint64_t(c.cycles));
                w.kv("pc", std::uint64_t(c.pc));
                w.kv("value", c.value);
                w.endObject();
            }
            w.endArray();
            break;
        }
        }
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << "\n";
}

void
ProbeRegistry::gauges(
    std::vector<std::pair<std::string, double>> &out) const
{
    const auto probes = read();
    for (const auto &[entry, agg] : probes) {
        const std::string base =
            "probe_" + std::to_string(entry.id);
        out.emplace_back(base + "_hits",
                         static_cast<double>(agg.hits));
        switch (entry.spec.action) {
        case ProbeAction::Sum:
            out.emplace_back(base + "_sum", agg.dist.total());
            break;
        case ProbeAction::Min:
            out.emplace_back(base + "_min", agg.dist.count() != 0
                                                ? agg.dist.min()
                                                : 0.0);
            break;
        case ProbeAction::Max:
            out.emplace_back(base + "_max", agg.dist.count() != 0
                                                ? agg.dist.max()
                                                : 0.0);
            break;
        default:
            break;
        }
    }
}

// ---------------------------------------------------------------------
// ProbeEngine
// ---------------------------------------------------------------------

ProbeEngine::ProbeEngine(ProbeRegistry::Snapshot snapshot,
                         const LoadedImage &image, std::string tenant,
                         std::uint32_t worker)
    : snap_(std::move(snapshot)), tenant_(std::move(tenant)),
      worker_(worker)
{
    // The ProcMap construction idiom: one row per placed procedure,
    // keyed by the post-prologue entry PC transfers actually land on.
    for (const PlacedModule &pm : image.modules()) {
        for (unsigned p = 0; p < pm.procs.size(); ++p) {
            const PlacedProc &pp = pm.procs[p];
            Proc proc;
            proc.entry = pp.prologueAddr + pp.prologueBytes;
            proc.begin = pp.prologueAddr;
            proc.end =
                pp.prologueAddr + pp.prologueBytes + pp.bodyBytes;
            proc.fsi = pp.fsi;
            proc.name = pm.src->name + "." + pm.src->procs[p].name;
            procByEntry_[proc.entry] =
                static_cast<std::uint32_t>(procs_.size());
            procs_.push_back(std::move(proc));
        }
    }

    if (snap_ == nullptr)
        snap_ = std::make_shared<const std::vector<
            ProbeRegistry::Entry>>();
    buffers_.aggs.resize(snap_->size());
    compiled_.resize(snap_->size());
    for (std::size_t i = 0; i < snap_->size(); ++i) {
        const ProbeSpec &s = (*snap_)[i].spec;
        Compiled &c = compiled_[i];
        c.spec = &s;
        if (s.site == ProbeSite::Entry ||
            s.site == ProbeSite::Exit) {
            anyNameSite_ = true;
            for (const Proc &proc : procs_)
                if (probeGlobMatch(s.pattern, proc.name))
                    c.entryPcs.push_back(proc.entry);
            std::sort(c.entryPcs.begin(), c.entryPcs.end());
        }
        for (const ProbePredicate &pred : s.predicates)
            if (pred.kind == ProbePredicate::Kind::Tenant &&
                !probeGlobMatch(pred.text, tenant_))
                c.tenantPass = false;
    }
}

std::vector<ProbeRange>
ProbeEngine::armedRanges() const
{
    std::vector<ProbeRange> out;
    for (const Compiled &c : compiled_) {
        if (c.spec->site != ProbeSite::Entry &&
            c.spec->site != ProbeSite::Exit)
            continue;
        for (CodeByteAddr entry : c.entryPcs) {
            auto it = procByEntry_.find(entry);
            if (it == procByEntry_.end())
                continue;
            const Proc &proc = procs_[it->second];
            out.push_back(ProbeRange{proc.begin, proc.end});
        }
    }
    std::sort(out.begin(), out.end(),
              [](const ProbeRange &a, const ProbeRange &b) {
                  return a.begin != b.begin ? a.begin < b.begin
                                            : a.end < b.end;
              });
    out.erase(std::unique(out.begin(), out.end(),
                          [](const ProbeRange &a,
                             const ProbeRange &b) {
                              return a.begin == b.begin &&
                                     a.end == b.end;
                          }),
              out.end());
    return out;
}

void
ProbeEngine::finishInto(ProbeRegistry &registry)
{
    registry.fold(snap_, buffers_);
    buffers_ = ProbeBuffers();
    buffers_.aggs.resize(snap_->size());
}

bool
ProbeEngine::specMatchesPc(const Compiled &c, CodeByteAddr pc) const
{
    return std::binary_search(c.entryPcs.begin(), c.entryPcs.end(),
                              pc);
}

std::string
ProbeEngine::frameName(const Frame &frame) const
{
    if (frame.proc != ~0u)
        return procs_[frame.proc].name;
    return "pc_" + std::to_string(frame.entry);
}

bool
ProbeEngine::predicatesPass(const Compiled &c, const Event &ev) const
{
    if (!c.tenantPass)
        return false;
    for (const ProbePredicate &pred : c.spec->predicates) {
        switch (pred.kind) {
        case ProbePredicate::Kind::Depth:
            if (!cmpU(ev.depth, pred.cmp, pred.number))
                return false;
            break;
        case ProbePredicate::Kind::Fsi:
            if (!ev.fsiValid ||
                !cmpU(ev.fsi, pred.cmp, pred.number))
                return false;
            break;
        case ProbePredicate::Kind::Tenant:
            break; // pre-evaluated into tenantPass
        case ProbePredicate::Kind::Caller: {
            if (ev.topIndex == npos || ev.topIndex == 0)
                return false;
            if (!probeGlobMatch(pred.text,
                                frameName(stack_[ev.topIndex - 1])))
                return false;
            break;
        }
        case ProbePredicate::Kind::CallString: {
            // Suffix match: the last pattern binds the innermost
            // (topmost) shadow-stack frame.
            const std::size_t k = pred.path.size();
            if (ev.topIndex == npos || ev.topIndex + 1 < k)
                return false;
            bool ok = true;
            for (std::size_t j = 0; j < k; ++j) {
                const Frame &f =
                    stack_[ev.topIndex + 1 - k + j];
                if (!probeGlobMatch(pred.path[j], frameName(f))) {
                    ok = false;
                    break;
                }
            }
            if (!ok)
                return false;
            break;
        }
        }
    }
    return true;
}

std::uint64_t
ProbeEngine::exprValue(const ProbeSpec &spec, const Event &ev) const
{
    switch (spec.expr) {
    case ProbeExpr::Refs:
        return ev.refs;
    case ProbeExpr::Cycles:
        return static_cast<std::uint64_t>(ev.cycles);
    case ProbeExpr::Depth:
        return ev.depth;
    case ProbeExpr::Fsi:
        return ev.fsiValid ? ev.fsi : 0;
    }
    return 0;
}

void
ProbeEngine::fire(std::size_t index, const Event &ev,
                  const Machine &machine)
{
    const ProbeSpec &s = *compiled_[index].spec;
    ProbeAgg &agg = buffers_.aggs[index];
    ++agg.hits;
    switch (s.action) {
    case ProbeAction::Count:
        break;
    case ProbeAction::Sum:
    case ProbeAction::Min:
    case ProbeAction::Max:
        agg.dist.sample(
            static_cast<double>(exprValue(s, ev)));
        break;
    case ProbeAction::Quantize:
        agg.quant.sample(exprValue(s, ev));
        break;
    case ProbeAction::Capture: {
        ProbeCaptureEntry c;
        c.worker = worker_;
        c.seq = seq_++;
        c.step = machine.stats().steps;
        c.cycles = machine.cycles();
        c.pc = machine.pc();
        c.value = exprValue(s, ev);
        agg.ring.push_back(c);
        if (agg.ring.size() > s.captureDepth)
            agg.ring.erase(agg.ring.begin());
        break;
    }
    }
}

void
ProbeEngine::pushFrame(CodeByteAddr entry)
{
    Frame f;
    f.entry = entry;
    auto it = procByEntry_.find(entry);
    if (it != procByEntry_.end())
        f.proc = it->second;
    stack_.push_back(f);
}

void
ProbeEngine::flushStack(const Machine &machine)
{
    // LIFO order broke (coroutine / process switch / trap): flush
    // like the profiler does and re-root at the destination
    // procedure when the machine knows it.
    stack_.clear();
    if (machine.currentProcEntry() != 0)
        pushFrame(machine.currentProcEntry());
}

void
ProbeEngine::onProbeXfer(XferKind kind, CountT refs, Tick cycles,
                         const Machine &machine)
{
    Event ev;
    ev.refs = refs;
    ev.cycles = cycles;

    if (kind == XferKind::Return) {
        // Exit events see the returning frame: depth counts it and
        // caller/callstr bind with it still on top.
        ev.depth = stack_.size();
        ev.topIndex = stack_.empty() ? npos : stack_.size() - 1;
        Frame popped;
        if (!stack_.empty())
            popped = stack_.back();
        if (popped.proc != ~0u) {
            ev.fsi = procs_[popped.proc].fsi;
            ev.fsiValid = true;
        }
        for (std::size_t i = 0; i < compiled_.size(); ++i) {
            const Compiled &c = compiled_[i];
            const ProbeSpec &s = *c.spec;
            const bool match =
                (s.site == ProbeSite::Exit && !stack_.empty() &&
                 specMatchesPc(c, popped.entry)) ||
                (s.site == ProbeSite::Xfer &&
                 s.kind == XferKind::Return);
            if (match && predicatesPass(c, ev))
                fire(i, ev, machine);
        }
        if (!stack_.empty())
            stack_.pop_back();
        return;
    }

    if (callLike(kind)) {
        pushFrame(machine.currentProcEntry());
        ev.depth = stack_.size();
        ev.topIndex = stack_.size() - 1;
        const Frame &top = stack_.back();
        if (top.proc != ~0u) {
            ev.fsi = procs_[top.proc].fsi;
            ev.fsiValid = true;
        }
        for (std::size_t i = 0; i < compiled_.size(); ++i) {
            const Compiled &c = compiled_[i];
            const ProbeSpec &s = *c.spec;
            const bool match =
                (s.site == ProbeSite::Entry &&
                 specMatchesPc(c, top.entry)) ||
                (s.site == ProbeSite::Xfer && s.kind == kind);
            if (match && predicatesPass(c, ev))
                fire(i, ev, machine);
        }
        return;
    }

    // Coroutine / ProcSwitch / (handled) Trap transfer.
    ev.depth = stack_.size();
    ev.topIndex = stack_.empty() ? npos : stack_.size() - 1;
    for (std::size_t i = 0; i < compiled_.size(); ++i) {
        const Compiled &c = compiled_[i];
        const ProbeSpec &s = *c.spec;
        const bool match =
            (s.site == ProbeSite::ProcSwitch &&
             kind == XferKind::ProcSwitch) ||
            (s.site == ProbeSite::Xfer && s.kind == kind);
        if (match && predicatesPass(c, ev))
            fire(i, ev, machine);
    }
    flushStack(machine);
}

void
ProbeEngine::onProbeFrameAlloc(unsigned fsi, bool fast,
                               const Machine &machine)
{
    (void)fast;
    Event ev;
    ev.depth = stack_.size();
    ev.topIndex = stack_.empty() ? npos : stack_.size() - 1;
    ev.fsi = fsi;
    ev.fsiValid = fsi != ~0u;
    for (std::size_t i = 0; i < compiled_.size(); ++i) {
        const Compiled &c = compiled_[i];
        if (c.spec->site == ProbeSite::FrameAlloc &&
            predicatesPass(c, ev))
            fire(i, ev, machine);
    }
}

void
ProbeEngine::onProbeFrameFree(unsigned fsi, bool fast,
                              const Machine &machine)
{
    (void)fast;
    Event ev;
    ev.depth = stack_.size();
    ev.topIndex = stack_.empty() ? npos : stack_.size() - 1;
    ev.fsi = fsi;
    ev.fsiValid = fsi != ~0u;
    for (std::size_t i = 0; i < compiled_.size(); ++i) {
        const Compiled &c = compiled_[i];
        if (c.spec->site == ProbeSite::FrameFree &&
            predicatesPass(c, ev))
            fire(i, ev, machine);
    }
}

void
ProbeEngine::onProbeTrap(Word code, const Machine &machine)
{
    (void)code;
    // Fires once per trap, handled or not — a handled trap's
    // dispatch also produces an xfer:trap event afterwards, which is
    // the distinct "trap transfers" site.
    Event ev;
    ev.depth = stack_.size();
    ev.topIndex = stack_.empty() ? npos : stack_.size() - 1;
    for (std::size_t i = 0; i < compiled_.size(); ++i) {
        const Compiled &c = compiled_[i];
        if (c.spec->site == ProbeSite::Trap &&
            predicatesPass(c, ev))
            fire(i, ev, machine);
    }
}

// ---------------------------------------------------------------------

bool
attachProbeSpecs(ProbeRegistry &registry,
                 const std::vector<std::string> &specs,
                 std::string &err)
{
    for (const std::string &text : specs) {
        ProbeSpec spec;
        std::string diag;
        if (!parseProbeSpec(text, spec, diag)) {
            err = "bad probe spec '" + text + "': " + diag;
            return false;
        }
        registry.attach(std::move(spec));
    }
    return true;
}

} // namespace fpc::obs
