#include "obs/postmortem.hh"

#include <filesystem>
#include <fstream>

#include "common/logging.hh"
#include "isa/disasm.hh"
#include "obs/json.hh"
#include "obs/profile.hh"
#include "obs/telemetry.hh"

namespace fpc::obs
{

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(capacity)
{
    if (capacity_ == 0)
        panic("FlightRecorder: capacity must be nonzero");
    ring_.reserve(std::min<std::size_t>(capacity_, 1024));
}

void
FlightRecorder::onXfer(const XferRecord &record)
{
    if (ring_.size() < capacity_) {
        ring_.push_back(record);
    } else {
        ring_[head_] = record;
        head_ = (head_ + 1) % capacity_;
    }
    ++recorded_;

    switch (record.kind) {
      case XferKind::ExtCall:
      case XferKind::LocalCall:
      case XferKind::DirectCall:
      case XferKind::FatCall:
        stack_.push_back({record.pc, record.frame});
        break;
      case XferKind::Return:
        if (!stack_.empty())
            stack_.pop_back();
        // A return past the shadow root re-roots at the destination,
        // so the stack never misrepresents where execution is.
        if (stack_.empty())
            stack_.push_back({record.pc, record.frame});
        break;
      default:
        // Coroutine / ProcSwitch / Trap break LIFO order: re-root at
        // the destination (the I3 flush discipline, as in Profiler).
        stack_.clear();
        stack_.push_back({record.pc, record.frame});
        break;
    }
}

std::vector<XferRecord>
FlightRecorder::records() const
{
    std::vector<XferRecord> out;
    out.reserve(ring_.size());
    // head_ is the oldest slot once the ring has wrapped.
    for (std::size_t i = 0; i < ring_.size(); ++i)
        out.push_back(ring_[(head_ + i) % ring_.size()]);
    return out;
}

void
FlightRecorder::clear()
{
    ring_.clear();
    head_ = 0;
    recorded_ = 0;
    stack_.clear();
}

namespace
{

/** Symbolize a PC through the map, "?" when outside any procedure. */
std::string
procNameAt(const ProcMap &map, CodeByteAddr pc)
{
    const std::string *name = map.find(pc);
    return name != nullptr ? *name : std::string("?");
}

/** The placed procedure whose code range contains pc, or null. */
const PlacedProc *
placedProcAt(const LoadedImage &image, CodeByteAddr pc,
             std::string *module_name, std::string *proc_name)
{
    for (const PlacedModule &pm : image.modules()) {
        for (std::size_t i = 0; i < pm.procs.size(); ++i) {
            const PlacedProc &pp = pm.procs[i];
            const CodeByteAddr end =
                pp.prologueAddr + pp.prologueBytes + pp.bodyBytes;
            if (pc >= pp.prologueAddr && pc < end) {
                if (module_name != nullptr)
                    *module_name = pm.src->name;
                if (proc_name != nullptr)
                    *proc_name = pm.src->procs[i].name;
                return &pp;
            }
        }
    }
    return nullptr;
}

/**
 * Disassemble the faulting procedure's body around fault_pc, marking
 * the faulting instruction with "=>". Falls back to a note when the
 * PC lies outside every known procedure (e.g. a stop before start).
 */
void
writeDisasmWindow(std::ostream &os, const Machine &machine,
                  const LoadedImage &image, CodeByteAddr fault_pc,
                  unsigned window_bytes)
{
    std::string module_name, proc_name;
    const PlacedProc *pp =
        placedProcAt(image, fault_pc, &module_name, &proc_name);
    if (pp == nullptr) {
        os << "; fault pc " << fault_pc
           << " is outside every loaded procedure\n";
        return;
    }

    const CodeByteAddr body = pp->prologueAddr + pp->prologueBytes;
    std::vector<std::uint8_t> code(pp->bodyBytes);
    for (unsigned i = 0; i < pp->bodyBytes; ++i)
        code[i] = machine.memory().peekByte(body + i);

    os << "; " << module_name << "." << proc_name << " at " << body
       << " (" << pp->bodyBytes << " body bytes, fsi " << pp->fsi
       << ")\n";

    const CodeByteAddr lo =
        fault_pc > window_bytes ? fault_pc - window_bytes : 0;
    const CodeByteAddr hi = fault_pc + window_bytes;
    bool elided = false;
    for (const isa::DisasmLine &line : isa::disassemble(code)) {
        const CodeByteAddr addr =
            body + static_cast<CodeByteAddr>(line.offset);
        if (addr < lo || addr > hi) {
            if (!elided) {
                os << "   ...\n";
                elided = true;
            }
            continue;
        }
        elided = false;
        os << (addr == fault_pc ? "=> " : "   ") << addr << ": "
           << line.text << "\n";
    }
}

} // namespace

bool
writePostmortem(const PostmortemConfig &config, const Machine &machine,
                const RunResult &result, const LoadedImage &image,
                const FlightRecorder &recorder,
                const Telemetry *telemetry)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(config.dir, ec);
    if (ec) {
        warn("postmortem: cannot create {}: {}", config.dir,
             ec.message());
        return false;
    }

    const std::string disasm_name = config.filePrefix + "disasm.txt";
    const fs::path json_path =
        fs::path(config.dir) / (config.filePrefix + "postmortem.json");
    const fs::path disasm_path = fs::path(config.dir) / disasm_name;

    const ProcMap map(image);
    const CodeByteAddr fault_pc = machine.lastInstStart();

    std::ofstream js(json_path);
    if (!js) {
        warn("postmortem: cannot write {}", json_path.string());
        return false;
    }

    JsonWriter w(js);
    w.beginObject();
    w.kv("schema", "fpc-postmortem-v1");
    w.kv("driver", config.driver);
    w.kv("impl", config.impl);

    w.key("stop").beginObject();
    w.kv("reason", stopReasonName(result.reason));
    w.kv("message", result.message);
    w.kv("steps", result.steps);
    w.kv("cycles", static_cast<std::uint64_t>(machine.cycles()));
    w.endObject();

    w.key("fault").beginObject();
    w.kv("pc", static_cast<std::uint64_t>(fault_pc));
    w.kv("nextPc", static_cast<std::uint64_t>(machine.pc()));
    w.kv("proc", procNameAt(map, fault_pc));
    w.kv("frame", static_cast<std::uint64_t>(machine.currentFrame()));
    w.endObject();

    // Innermost first: the faulting activation, then the shadow stack
    // (whose top duplicates the faulting activation's entry) outward.
    w.key("backtrace").beginArray();
    const auto &shadow = recorder.shadowStack();
    for (std::size_t i = shadow.size(); i-- > 0;) {
        const FlightRecorder::ShadowFrame &f = shadow[i];
        w.beginObject();
        w.kv("pc", static_cast<std::uint64_t>(f.pc));
        w.kv("frame", static_cast<std::uint64_t>(f.frame));
        w.kv("proc", procNameAt(map, f.pc));
        w.endObject();
    }
    w.endArray();

    w.key("xferRing").beginObject();
    w.kv("capacity", static_cast<std::uint64_t>(recorder.capacity()));
    w.kv("recorded", recorder.recorded());
    w.key("records").beginArray();
    for (const XferRecord &r : recorder.records()) {
        w.beginObject();
        w.kv("kind", xferKindName(r.kind));
        w.kv("pc", static_cast<std::uint64_t>(r.pc));
        w.kv("proc", procNameAt(map, r.pc));
        w.kv("frame", static_cast<std::uint64_t>(r.frame));
        w.kv("srcCtx", static_cast<std::uint64_t>(r.srcCtx));
        w.kv("dstCtx", static_cast<std::uint64_t>(r.dstCtx));
        w.kv("start", static_cast<std::uint64_t>(r.start));
        w.kv("end", static_cast<std::uint64_t>(r.end));
        w.kv("refs", r.refs);
        w.kv("step", r.step);
        w.endObject();
    }
    w.endArray();
    w.endObject();

    w.key("machine");
    machineStatsJson(w, machine.stats());

    const FrameHeap &heap = machine.heap();
    w.key("heap");
    heapStatsJson(w, heap.stats());
    w.key("av").beginObject();
    w.key("freeFrames").beginArray();
    for (unsigned c = 0; c < heap.classes().numClasses(); ++c)
        w.value(heap.freeListLength(c));
    w.endArray();
    w.kv("regionRemaining",
         static_cast<std::uint64_t>(heap.regionRemaining()));
    w.endObject();

    // The last telemetry snapshot, when a sampler was attached: the
    // gauges as they stood at the final interval before the stop.
    w.key("finalSample");
    if (telemetry != nullptr && telemetry->recorded() > 0) {
        const std::vector<MetricsSample> samples = telemetry->samples();
        const MetricsSample &s = samples.back();
        w.beginObject();
        w.kv("cycles", static_cast<std::uint64_t>(s.cycles));
        w.kv("steps", s.steps);
        w.kv("liveFrames", s.liveFrames);
        w.kv("fragmentation", s.fragmentation);
        w.kv("returnStackDepth", s.returnStackDepth);
        w.kv("banksResident", s.banksResident);
        w.endObject();
    } else {
        w.nullValue();
    }

    w.kv("disasmFile", disasm_name);
    w.endObject();
    js << "\n";
    if (!js) {
        warn("postmortem: write failed for {}", json_path.string());
        return false;
    }

    std::ofstream ds(disasm_path);
    if (!ds) {
        warn("postmortem: cannot write {}", disasm_path.string());
        return false;
    }
    writeDisasmWindow(ds, machine, image, fault_pc,
                      config.disasmWindowBytes);
    return static_cast<bool>(ds);
}

} // namespace fpc::obs
