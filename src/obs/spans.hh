/**
 * @file
 * Request-scoped span tracing for the serving stack.
 *
 * A span is one bracketed interval of host (wall-clock) time in the
 * life of a request: the enclosing `request` span plus the phases
 * `admission`, `queued`, `dispatch`, `execute` and `reply`. The server
 * brackets the serve-side phases, sched::Runtime brackets `execute`
 * (and closes `dispatch`/`queued` at execution start, re-homing the
 * span to the worker that actually runs the job — under work stealing
 * that is the *stealing* worker's track, deterministically: a span
 * always lands on the track of JobResult::worker).
 *
 * Spans follow StkTokens-style well-bracketing discipline: every
 * begin() must be matched by exactly one end(); for every request at
 * most one phase is open at a time; a completed request's phases
 * partition [request.start, request.end] exactly — adjacent phases
 * share a boundary timestamp, so the phase durations sum to the
 * request duration with zero slack. checkSpans() verifies this and
 * writeSpanPostmortem() turns violations into a PR 4 style
 * fpc-postmortem-v1 bundle (kind "span-bracketing").
 *
 * Spans are host-time observability only: the collector never touches
 * the Machine, so simulated stats/metrics stay byte-identical with
 * spans on or off and span collection adds zero simulated cycles.
 *
 * Storage is a drop-oldest ring like the XFER Tracer; export formats
 * are a line-oriented `fpc-spans-v1` log (writeSpansLog) and Chrome
 * trace-event / Perfetto JSON (writeSpansPerfetto) with one track per
 * connection, tenant, and worker. The Perfetto export can embed the
 * per-worker XFER tracks (pid 0, simulated cycles) alongside the
 * serve tracks (pid 1, wall microseconds) so a request's `execute`
 * span can be eyeballed against the XFERs of the worker it names.
 */

#ifndef FPC_OBS_SPANS_HH
#define FPC_OBS_SPANS_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"
#include "obs/trace.hh"

namespace fpc::obs
{

/** Span kinds, in canonical phase order (Request is the parent). */
enum class SpanKind : std::uint8_t
{
    Request,
    Admission,
    Queued,
    Dispatch,
    Execute,
    Reply,
};

const char *spanKindName(SpanKind kind);

/** Which kind of Perfetto track a span is drawn on. */
enum class SpanTrack : std::uint8_t
{
    Connection,
    Tenant,
    Worker,
};

const char *spanTrackName(SpanTrack kind);

/** "No tenant" sentinel for Span::tenant / SpanRef::tenant. */
constexpr std::uint32_t noTenant = ~0u;

/**
 * Propagation context threaded alongside a job: the server stamps it
 * on sched::Job so the runtime's execute bracketing joins the same
 * span tree the serve side started.
 */
struct SpanRef
{
    std::uint64_t requestId = 0; ///< collector span id; 0 = none
    std::uint64_t traceId = 0;   ///< client-supplied correlation id
    std::uint32_t tenant = noTenant; ///< interned tenant index
};

/** One completed span. Timestamps are raw steady-clock nanoseconds
 *  (same epoch as SpanCollector::nowNs()). */
struct Span
{
    std::uint64_t id = 0;      ///< request id (shared by the tree)
    std::uint64_t traceId = 0; ///< client-supplied correlation id
    std::uint32_t reqId = 0;   ///< wire-protocol request id
    SpanKind kind = SpanKind::Request;
    SpanTrack trackKind = SpanTrack::Worker;
    std::uint32_t track = 0;   ///< index within the track kind
    std::uint32_t tenant = noTenant;
    std::int64_t startNs = 0;
    std::int64_t endNs = 0;
    bool ok = true;
};

/** One bracketing-discipline violation. */
struct SpanFault
{
    std::uint64_t id = 0;
    SpanKind kind = SpanKind::Request;
    std::string what;
};

/**
 * Thread-safe span sink: begin()/end() record into per-request open
 * state; completed spans land in a drop-oldest ring. Discipline
 * violations (double begin, end without begin) are recorded as faults
 * rather than crashing the server.
 */
class SpanCollector
{
  public:
    static constexpr std::size_t defaultCapacity = 1u << 16;
    /** Faults retained verbatim; later ones only count. */
    static constexpr std::size_t maxRetainedFaults = 64;

    explicit SpanCollector(std::size_t capacity = defaultCapacity);

    /** Steady-clock now, in nanoseconds since the clock's epoch —
     *  comparable across threads and with
     *  std::chrono::steady_clock::time_point::time_since_epoch(). */
    static std::int64_t nowNs();

    /** nowNs() at construction; exports emit start/end relative to
     *  this so logs start near zero. */
    std::int64_t epochNs() const { return epochNs_; }

    /** Intern a tenant name; returns its stable index (also used as
     *  the Tenant track index). */
    std::uint32_t internTenant(const std::string &name);
    std::vector<std::string> tenantNames() const;

    /** Open a span. For phases the protocol is: at most one phase of
     *  a request open at any time (checked; violations fault). */
    void begin(SpanKind kind, std::uint64_t id, SpanTrack trackKind,
               std::uint32_t track, std::uint32_t tenant,
               std::int64_t startNs, std::uint64_t traceId = 0,
               std::uint32_t reqId = 0);

    /** Close a span opened with begin(); faults if no span of this
     *  kind is open for id. */
    void end(SpanKind kind, std::uint64_t id, std::int64_t endNs,
             bool ok = true);
    /** Close and re-home: the span is recorded on (trackKind, track)
     *  instead of the track it was begun on — how an `execute` span
     *  (and the `dispatch` it closes) lands on the stealing worker's
     *  track. */
    void end(SpanKind kind, std::uint64_t id, std::int64_t endNs,
             bool ok, SpanTrack trackKind, std::uint32_t track);

    /** Close whichever phase (non-Request) span is open for id, if
     *  any; returns false (silently — callers use this on paths where
     *  the open phase's kind is unknowable) when none is open. */
    bool endPhase(std::uint64_t id, std::int64_t endNs, bool ok = true);
    bool endPhase(std::uint64_t id, std::int64_t endNs, bool ok,
                  SpanTrack trackKind, std::uint32_t track);

    /** Close the request span for id if one is open; silent no-op
     *  otherwise (abort paths where progress is unknowable). */
    bool endRequestIfOpen(std::uint64_t id, std::int64_t endNs, bool ok,
                          SpanTrack trackKind, std::uint32_t track);

    /** Oldest-first snapshot of the retained completed spans. */
    std::vector<Span> spans() const;
    /** Retained discipline faults (first maxRetainedFaults). */
    std::vector<SpanFault> faults() const;
    CountT faultCount() const;
    /** Completed spans recorded since construction. */
    CountT recorded() const;
    /** Completed spans discarded by the drop-oldest ring. */
    CountT dropped() const;
    /** Requests with an open request or phase span. */
    std::size_t openCount() const;

    std::size_t capacity() const { return capacity_; }

    void clear();

  private:
    struct OpenState
    {
        bool haveRequest = false;
        bool havePhase = false;
        Span request;
        Span phase;
    };

    void recordLocked(const Span &span);
    void faultLocked(std::uint64_t id, SpanKind kind, std::string what);

    mutable std::mutex mutex_;
    std::size_t capacity_;
    std::vector<Span> ring_;
    std::size_t head_ = 0; ///< oldest slot once the ring is full
    CountT recorded_ = 0;
    CountT dropped_ = 0;
    std::int64_t epochNs_ = 0;
    std::map<std::uint64_t, OpenState> open_;
    std::vector<SpanFault> faults_;
    CountT faultCount_ = 0;
    std::vector<std::string> tenants_;
    std::map<std::string, std::uint32_t> tenantIndex_;
};

/**
 * Verify well-bracketing over the collector's completed spans (plus
 * any still-open spans, which are themselves faults):
 *  - every retained phase lies within its request's bounds, phases
 *    are mutually non-overlapping and in canonical order;
 *  - when the ring has dropped nothing, an ok request that was
 *    admitted (has an Admission phase) carries all five phases and
 *    they partition [start, end] exactly: adjacent phases share their
 *    boundary timestamp, so durations sum to the request duration
 *    with slackNs tolerance (0 by default — the bracketing uses
 *    shared timestamps, not re-read clocks).
 * Completeness checks are skipped when dropped() > 0 (truncation is
 * legal, torn trees from it are not faults). Returns the combined
 * fault list: collector-recorded discipline faults first, then
 * checker findings.
 */
std::vector<SpanFault> checkSpans(const SpanCollector &spans,
                                  std::int64_t slackNs = 0);

/**
 * Write an fpc-postmortem-v1 bundle (kind "span-bracketing") naming
 * each fault and the retained spans of the offending requests, to
 * `<dir>/<prefix>spans-postmortem.json`. Returns false (with a
 * logged error) if the directory or file cannot be written.
 */
bool writeSpanPostmortem(const std::string &dir,
                         const std::string &prefix,
                         const std::string &driver,
                         const std::vector<SpanFault> &faults,
                         const SpanCollector &spans);

/**
 * Line-oriented fpc-spans-v1 log:
 *
 *   fpc-spans-v1
 *   driver <name>
 *   capacity <n>
 *   recorded <n>
 *   dropped <n>
 *   tenant <idx> <name>          (one per interned tenant)
 *   span <id> <traceId> <reqId> <kind> <track-kind>:<track> \
 *        <tenant-idx|-> <startNs> <endNs> <ok|err>
 *   faults <n>
 *   fault <id> <kind> <message>  (retained faults)
 *   eof
 *
 * Timestamps are nanoseconds relative to the collector's epoch.
 */
void writeSpansLog(std::ostream &os, const std::string &driver,
                   const SpanCollector &spans);

/**
 * Chrome trace-event / Perfetto JSON. Serve spans are "X" slices on
 * pid 1 ("serve, wall time"): worker tracks at tid = track, tenant
 * tracks at tid = 1000 + index, connection tracks at tid = 2000 +
 * index (wall ns exported as microseconds). When xferTracks is
 * nonempty the per-worker XFER tracks are embedded as pid 0
 * ("machine, simulated cycles") with their usual 1-cycle = 1-us
 * timebase; the two pids share a document but not a clock — the link
 * between them is the worker index in the track names.
 */
void writeSpansPerfetto(std::ostream &os, const SpanCollector &spans,
                        const std::vector<const Tracer *> &xferTracks =
                            {});

} // namespace fpc::obs

#endif // FPC_OBS_SPANS_HH
