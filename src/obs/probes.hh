/**
 * @file
 * fpc_probe: dynamic probe points with predicates and aggregations,
 * across all host backends (see docs/OBSERVABILITY.md "Dynamic
 * probes").
 *
 * Layering: a ProbeSpec (probe_lang.hh) is image-independent; a
 * ProbeEngine compiles a snapshot of specs against one LoadedImage
 * (name globs bind to entry PCs and code ranges), attaches to one
 * Machine as its ProbeSink, and aggregates matching events into
 * per-spec buffers. A ProbeRegistry owns the attached spec set and
 * the merged totals: drivers attach parsed specs up front, the
 * serving layer attaches/detaches live (PROBE op), and every engine
 * folds its buffers back under the registry lock when its job
 * completes — the per-worker-merge discipline the profiler and
 * telemetry already use.
 *
 * Cost model: probes charge zero simulated cycles, so all simulated
 * numbers are byte-identical with any probe set attached. Host-side,
 * entry/exit probes arm their procedures' code ranges: the machine
 * selectively deoptimizes just the superblocks/bursts containing
 * those PCs to the exact eager path (events there read exact
 * absolute cycle/step stamps) while unprobed code keeps full
 * threaded speed. Events fired from unprobed accelerated code carry
 * exact refs/cycles *deltas* but absolute stamps with bounded slop
 * (one superblock / one burst of decode cycles), deterministically
 * per backend.
 *
 * Determinism: fpc-probes-v1 output is ordered by probe id (attach
 * order), quantize buckets ascending, capture rings sorted by
 * (worker, sequence). Batch drivers force the runtime's static
 * job-to-worker assignment when probes are attached, so identical
 * runs produce byte-identical documents.
 */

#ifndef FPC_OBS_PROBES_HH
#define FPC_OBS_PROBES_HH

#include <array>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "machine/machine.hh"
#include "obs/probe_lang.hh"
#include "program/loader.hh"
#include "stats/stats.hh"

namespace fpc::obs
{

/** DTrace-style log2 histogram: bucket 0 counts value 0, bucket k>=1
 *  counts values in [2^(k-1), 2^k). */
struct ProbeQuantize
{
    std::array<CountT, 66> buckets{};

    void
    sample(std::uint64_t value)
    {
        unsigned b = 0;
        if (value != 0)
            b = 64 - static_cast<unsigned>(
                         std::countl_zero(value));
        ++buckets[b];
    }

    void
    merge(const ProbeQuantize &other)
    {
        for (std::size_t i = 0; i < buckets.size(); ++i)
            buckets[i] += other.buckets[i];
    }
};

/** One captured event (Capture action): last-N per worker, merged
 *  rings sorted by (worker, seq) for deterministic output. */
struct ProbeCaptureEntry
{
    std::uint32_t worker = 0;
    std::uint64_t seq = 0; ///< per-worker monotonic match index
    std::uint64_t step = 0;
    Tick cycles = 0;
    CodeByteAddr pc = 0;
    std::uint64_t value = 0;
};

/** Per-spec aggregation buffer; merges via the stats machinery. */
struct ProbeAgg
{
    CountT hits = 0;                  ///< matched events
    stats::Distribution dist;         ///< Sum/Min/Max actions
    ProbeQuantize quant;              ///< Quantize action
    std::vector<ProbeCaptureEntry> ring; ///< Capture action

    void merge(const ProbeAgg &other);
};

/** Per-engine buffers, parallel to a registry snapshot's entries. */
struct ProbeBuffers
{
    std::vector<ProbeAgg> aggs;

    void merge(const ProbeBuffers &other);
};

/**
 * The attached probe set plus merged totals; thread-safe. Attach
 * returns a stable id; snapshots are copy-on-write so engines read
 * the spec set lock-free while the serving layer mutates it between
 * jobs (in-flight jobs keep their snapshot and fold into whatever is
 * still attached when they complete).
 */
class ProbeRegistry
{
  public:
    struct Entry
    {
        std::uint32_t id = 0;
        ProbeSpec spec;
    };
    using Snapshot = std::shared_ptr<const std::vector<Entry>>;

    /** Attach a parsed spec; returns its id. */
    std::uint32_t attach(ProbeSpec spec);

    /** Detach by id; false when no such probe is attached. Its
     *  accumulated totals are dropped with it. */
    bool detach(std::uint32_t id);

    bool active() const;
    std::size_t attachedCount() const;

    /** The current spec set (never null; may be empty). */
    Snapshot snapshot() const;

    /** Fold an engine's buffers into the totals. Buffers index the
     *  snapshot the engine compiled; probes detached since then are
     *  skipped. */
    void fold(const Snapshot &snap, const ProbeBuffers &buffers);

    /** Attached entries with a copy of their merged totals, in
     *  attach order. */
    std::vector<std::pair<Entry, ProbeAgg>> read() const;

    /** The deterministic fpc-probes-v1 document. */
    void writeJson(std::ostream &os, const std::string &driver) const;

    /** Append "probe_<id>_hits" (and, for distribution actions,
     *  "probe_<id>_sum") gauges — the serving layer's telemetry
     *  mirror; exported OpenMetrics families become fpc_probe_*. */
    void gauges(std::vector<std::pair<std::string, double>> &out) const;

  private:
    mutable std::mutex mutex_;
    std::vector<Entry> entries_;           ///< attach order
    std::map<std::uint32_t, ProbeAgg> totals_;
    std::uint32_t nextId_ = 0;
};

/**
 * One machine's probe engine: compiles a registry snapshot against a
 * LoadedImage, implements ProbeSink, and aggregates into per-spec
 * buffers. Maintains its own POD shadow call stack with the
 * profiler's flush discipline (call-like pushes, RETURN pops,
 * Coroutine/ProcSwitch/Trap flush and re-root), which the depth /
 * caller / callstr predicates evaluate against.
 */
class ProbeEngine final : public ProbeSink
{
  public:
    ProbeEngine(ProbeRegistry::Snapshot snapshot,
                const LoadedImage &image, std::string tenant,
                std::uint32_t worker);

    /** Code ranges the Entry/Exit specs armed (for
     *  Machine::setProbeSink); empty when only kind-wide sites are
     *  attached. */
    std::vector<ProbeRange> armedRanges() const;

    const ProbeBuffers &buffers() const { return buffers_; }
    const ProbeRegistry::Snapshot &snapshot() const { return snap_; }

    /** Fold this engine's buffers into the registry and clear them
     *  (call after detaching from the machine). */
    void finishInto(ProbeRegistry &registry);

    /** @name ProbeSink. @{ */
    void onProbeXfer(XferKind kind, CountT refs, Tick cycles,
                     const Machine &machine) override;
    void onProbeFrameAlloc(unsigned fsi, bool fast,
                           const Machine &machine) override;
    void onProbeFrameFree(unsigned fsi, bool fast,
                          const Machine &machine) override;
    void onProbeTrap(Word code, const Machine &machine) override;
    /** @} */

  private:
    struct Compiled
    {
        const ProbeSpec *spec = nullptr;
        /** Entry/Exit sites: matching procedures' entry PCs. */
        std::vector<CodeByteAddr> entryPcs; ///< sorted
        /** Tenant predicates pre-evaluated (they cannot change
         *  mid-job). */
        bool tenantPass = true;
    };

    struct Frame
    {
        CodeByteAddr entry = 0;
        std::uint32_t proc = ~0u; ///< index into procs_, ~0u unknown
    };

    /** One event, normalized across the four hook flavors. */
    struct Event
    {
        CountT refs = 0;
        Tick cycles = 0;
        std::uint64_t depth = 0;
        std::uint64_t fsi = 0;
        bool fsiValid = false;
        /** caller/callstr evaluate against the shadow stack up to
         *  (and including) this index; ~0u disables them. */
        std::size_t topIndex = 0;
    };

    bool specMatchesPc(const Compiled &c, CodeByteAddr pc) const;
    bool predicatesPass(const Compiled &c, const Event &ev) const;
    std::uint64_t exprValue(const ProbeSpec &spec,
                            const Event &ev) const;
    void fire(std::size_t index, const Event &ev,
              const Machine &machine);
    void pushFrame(CodeByteAddr entry);
    void flushStack(const Machine &machine);
    std::string frameName(const Frame &frame) const;

    ProbeRegistry::Snapshot snap_;
    std::vector<Compiled> compiled_;
    ProbeBuffers buffers_;
    std::string tenant_;
    std::uint32_t worker_ = 0;
    std::uint64_t seq_ = 0; ///< capture sequence, all specs

    /** Procedure table from the image: entry PC -> index, plus name
     *  and static frame-size class for predicates/exprs. */
    struct Proc
    {
        CodeByteAddr entry = 0; ///< post-prologue landing PC
        CodeByteAddr begin = 0; ///< prologueAddr (range start)
        CodeByteAddr end = 0;   ///< one past the body's last byte
        unsigned fsi = 0;
        std::string name;
    };
    std::vector<Proc> procs_;
    std::unordered_map<CodeByteAddr, std::uint32_t> procByEntry_;
    std::vector<Frame> stack_;

    /** Any Entry/Exit spec attached (stack bookkeeping is only
     *  needed when name sites or context predicates exist — kept
     *  unconditional for simplicity; it is POD-cheap). */
    bool anyNameSite_ = false;
};

/** Parse a list of --probe= strings into registry attachments;
 *  returns false with a diagnosis naming the offending spec. */
bool attachProbeSpecs(ProbeRegistry &registry,
                      const std::vector<std::string> &specs,
                      std::string &err);

} // namespace fpc::obs

#endif // FPC_OBS_PROBES_HH
