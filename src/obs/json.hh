/**
 * @file
 * A minimal streaming JSON writer plus the stable-schema exporters
 * for the simulator's statistics ("fpc-stats-v1").
 *
 * The paper's whole argument is quantitative; these exporters are how
 * the numbers leave the simulator in machine-readable form instead of
 * dying in a text table. The schema is append-only by convention: new
 * keys may be added, existing keys keep their meaning, and breaking
 * changes bump the "schema" string.
 */

#ifndef FPC_OBS_JSON_HH
#define FPC_OBS_JSON_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hh"

namespace fpc
{
struct MachineStats;
struct AccelStats;
class Memory;
struct FrameHeapStats;
class Cache;
} // namespace fpc

namespace fpc::stats
{
class StatGroup;
class Distribution;
} // namespace fpc::stats

namespace fpc::obs
{

/** Escape a string for inclusion inside JSON double quotes. */
std::string jsonEscape(std::string_view s);

/** Deterministic number rendering (no NaN/Inf; "%.12g"-shaped). */
std::string jsonNumber(double v);

/**
 * A small streaming JSON writer: explicit begin/end nesting, automatic
 * comma placement, two-space indentation. Values are written in call
 * order, so output is deterministic for deterministic inputs.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os) : os_(os) {}

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit an object key; the next value/begin* call is its value. */
    JsonWriter &key(std::string_view name);

    JsonWriter &value(std::string_view v);
    JsonWriter &value(const char *v) { return value(std::string_view(v)); }
    JsonWriter &value(double v);
    JsonWriter &value(bool v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(unsigned v) { return value(std::uint64_t(v)); }
    JsonWriter &value(int v) { return value(std::int64_t(v)); }
    JsonWriter &nullValue();

    template <typename T>
    JsonWriter &
    kv(std::string_view name, const T &v)
    {
        key(name);
        return value(v);
    }

  private:
    void preValue();
    void indent();

    std::ostream &os_;
    struct Level
    {
        bool array = false;
        bool first = true;
    };
    std::vector<Level> stack_;
    bool keyPending_ = false;
};

/** @name Component exporters: each writes one JSON value. @{ */
void distributionJson(JsonWriter &w, const stats::Distribution &d);
void machineStatsJson(JsonWriter &w, const MachineStats &s);
void accelStatsJson(JsonWriter &w, const AccelStats &s);
void memoryStatsJson(JsonWriter &w, const Memory &mem);
void heapStatsJson(JsonWriter &w, const FrameHeapStats &s);
void cacheStatsJson(JsonWriter &w, const Cache &cache);
void statGroupJson(JsonWriter &w, const stats::StatGroup &group);
/** @} */

/**
 * Everything one driver run wants exported. Null members are emitted
 * as JSON null, so consumers see a fixed key set.
 */
struct StatsExport
{
    std::string driver;          ///< "fpcvm" | "fpcrun" | test name
    std::string impl;            ///< implName() of the machine config
    std::string stopReason;      ///< stopReasonName() (single runs)
    unsigned workers = 0;        ///< worker count (batch runs)
    const MachineStats *machine = nullptr;
    const Memory *memory = nullptr;
    const FrameHeapStats *heap = nullptr;
    const Cache *cache = nullptr;
    /** Host-acceleration counters. Left null unless explicitly
     *  requested (fpcvm --accel-stats): the default export must stay
     *  byte-identical with acceleration on or off, and these counters
     *  are the one thing that legitimately differs. */
    const AccelStats *accel = nullptr;
    std::vector<const stats::StatGroup *> groups;
};

/** Write the full "fpc-stats-v1" document. */
void writeStatsJson(std::ostream &os, const StatsExport &exp);

} // namespace fpc::obs

#endif // FPC_OBS_JSON_HH
