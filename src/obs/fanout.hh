/**
 * @file
 * Multiplexes the Machine's single observer slot: a Machine holds one
 * XferObserver pointer, so attach a Fanout when both the tracer and
 * the profiler want the same run.
 */

#ifndef FPC_OBS_FANOUT_HH
#define FPC_OBS_FANOUT_HH

#include <vector>

#include "machine/machine.hh"

namespace fpc::obs
{

class Fanout : public XferObserver
{
  public:
    void
    add(XferObserver *observer)
    {
        if (observer != nullptr)
            observers_.push_back(observer);
    }

    bool empty() const { return observers_.empty(); }

    void
    onXfer(const XferRecord &record) override
    {
        for (XferObserver *obs : observers_)
            obs->onXfer(record);
    }

  private:
    std::vector<XferObserver *> observers_;
};

} // namespace fpc::obs

#endif // FPC_OBS_FANOUT_HH
