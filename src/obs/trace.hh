/**
 * @file
 * XFER tracing: a fixed-capacity per-machine ring buffer of transfer
 * events, exported as Chrome trace-event / Perfetto-compatible JSON.
 *
 * Each recorded event is one complete ("X") slice whose width is the
 * cycles the transfer itself consumed — the paper's headline metric
 * made visible: expensive Mesa-path calls render as wide slices,
 * jump-fast I3/I4 calls as zero-width ticks, and the gaps between
 * slices are straight-line execution. One track (Chrome tid) per
 * Runtime worker turns an fpcrun batch into a multi-worker timeline.
 *
 * Ticks are simulated cycles (exported 1 cycle = 1 "microsecond"), so
 * traces are byte-identical across runs of the same program, seed and
 * configuration.
 */

#ifndef FPC_OBS_TRACE_HH
#define FPC_OBS_TRACE_HH

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "machine/machine.hh"

namespace fpc::obs
{

class ProcMap;

/** One recorded transfer. */
struct TraceEvent
{
    XferKind kind = XferKind::ExtCall;
    Word srcCtx = nilContext;
    Word dstCtx = nilContext;
    Addr frame = nilAddr;      ///< destination local frame
    CodeByteAddr pc = 0;       ///< destination PC
    unsigned depth = 0;        ///< shadow call depth after the event
    Tick start = 0;            ///< base-offset cycles at begin
    Tick end = 0;              ///< base-offset cycles at completion
    CountT refs = 0;
    std::uint64_t step = 0;
    unsigned nameIdx = noName; ///< interned name, or noName = kind name

    static constexpr unsigned noName = ~0u;
};

/**
 * The observer: a drop-oldest ring of TraceEvents. Recording is a few
 * array stores per transfer; export happens after the run.
 */
class Tracer : public XferObserver
{
  public:
    static constexpr std::size_t defaultCapacity = 1u << 16;

    explicit Tracer(std::size_t capacity = defaultCapacity);

    void onXfer(const XferRecord &record) override;

    /** Tick offset added to subsequent events — a Runtime worker
     *  advances this between jobs so consecutive jobs lay out
     *  consecutively on its track. */
    void setBase(Tick base) { base_ = base; }
    Tick base() const { return base_; }

    /** Name call destinations "Module.proc" via the map (may be null;
     *  consulted at record time and interned, so the map need not
     *  outlive the job that set it). */
    void setProcMap(const ProcMap *map) { procMap_ = map; }

    std::size_t capacity() const { return capacity_; }
    /** Events seen since the last clear(). */
    CountT recorded() const { return recorded_; }
    /** Events discarded by the drop-oldest ring over the tracer's
     *  whole lifetime — the count survives clear() and setBase(), so
     *  a runtime worker re-based between jobs still reports every
     *  event any of its epochs lost. */
    CountT dropped() const { return dropped_; }

    /** Oldest-first snapshot of the retained events. */
    std::vector<TraceEvent> events() const;
    const std::string &name(unsigned name_idx) const;

    void clear();

  private:
    unsigned intern(const std::string &name);

    std::size_t capacity_;
    std::vector<TraceEvent> ring_;
    std::size_t head_ = 0; ///< next write slot once the ring is full
    CountT recorded_ = 0;
    CountT dropped_ = 0;   ///< lifetime drops, across all epochs
    Tick base_ = 0;
    unsigned depth_ = 0;
    const ProcMap *procMap_ = nullptr;
    std::vector<std::string> names_;
    std::map<std::string, unsigned> nameIndex_;
};

/**
 * Write Chrome trace-event JSON ("traceEvents" array form): one "X"
 * slice per retained event, track metadata naming each tid
 * "worker N". Loadable in Perfetto / chrome://tracing.
 */
void writeChromeTrace(std::ostream &os,
                      const std::vector<const Tracer *> &tracks);

/** Single-machine convenience: one track. */
void writeChromeTrace(std::ostream &os, const Tracer &tracer);

/** @name Building blocks for combined documents (see obs/spans.hh).
 *  Append events to an already-open "traceEvents" array; `first`
 *  tracks whether a comma is needed and is updated in place. @{ */
void writeChromeThreadName(std::ostream &os, unsigned pid, unsigned tid,
                           const std::string &name, bool &first);
void writeChromeTraceEvents(std::ostream &os, const Tracer &tracer,
                            unsigned pid, unsigned tid, bool &first);
/** @} */

} // namespace fpc::obs

#endif // FPC_OBS_TRACE_HH
