#include "obs/telemetry.hh"

#include <algorithm>
#include <set>

#include "common/logging.hh"
#include "frames/frame_heap.hh"
#include "obs/json.hh"

namespace fpc::obs
{

Telemetry::Telemetry(std::size_t capacity) : capacity_(capacity)
{
    if (capacity_ == 0)
        panic("Telemetry: capacity must be nonzero");
    ring_.reserve(std::min<std::size_t>(capacity_, 1024));
}

void
Telemetry::setProvider(GaugeProvider provider)
{
    provider_ = std::move(provider);
}

void
Telemetry::onSample(const Machine &machine)
{
    sample(machine);
}

void
Telemetry::onBoundarySample(const Machine &machine)
{
    sample(machine);
}

void
Telemetry::sample(const Machine &machine)
{
    MetricsSample s;
    const MachineStats &ms = machine.stats();
    s.cycles = base_ + ms.cycles;
    s.steps = stepBase_ + ms.steps;
    s.xferCount = ms.xferCount;
    s.calls = ms.calls();
    s.returns = ms.returns();
    s.preemptions = ms.preemptions;
    s.fastCallReturnRate = ms.fastCallReturnRate();
    s.returnStackDepth = machine.returnStackDepth();

    const BankFile &banks = machine.banks();
    for (unsigned b = 0; b < banks.numBanks(); ++b) {
        if (banks.owner(static_cast<int>(b)) != nilAddr)
            ++s.banksResident;
    }

    const FrameHeap &heap = machine.heap();
    s.liveFrames = heap.stats().liveFrames();
    s.fragmentation = heap.stats().fragmentation();
    const unsigned classes = heap.classes().numClasses();
    s.freeFrames.reserve(classes);
    for (unsigned c = 0; c < classes; ++c)
        s.freeFrames.push_back(heap.freeListLength(c));

    s.accelEnabled = machine.accelEnabled();
    if (s.accelEnabled) {
        const AccelStats a = machine.accelStats();
        s.icacheHitRate = a.icacheHitRate();
        s.linkHitRate = a.linkHitRate();
        s.sblockChainRate = a.chainRate();
        s.sblockFusionHits = a.sblockFusionHits;
        s.deferredFlushes = a.deferredFlushes;
    }

    if (provider_)
        provider_(s.gauges);

    if (ring_.size() < capacity_) {
        ring_.push_back(std::move(s));
    } else {
        ring_[head_] = std::move(s);
        head_ = (head_ + 1) % capacity_;
        ++dropped_;
    }
    ++recorded_;
}

std::vector<MetricsSample>
Telemetry::samples() const
{
    std::vector<MetricsSample> out;
    out.reserve(ring_.size());
    // head_ is the oldest slot once the ring has wrapped.
    for (std::size_t i = 0; i < ring_.size(); ++i)
        out.push_back(ring_[(head_ + i) % ring_.size()]);
    return out;
}

void
Telemetry::clear()
{
    ring_.clear();
    head_ = 0;
    recorded_ = 0;
    // dropped_ survives: lifetime losses, across epochs.
}

// ---------------------------------------------------------------------
// fpc-metrics-v1 JSON export
// ---------------------------------------------------------------------

namespace
{

void
sampleJson(JsonWriter &w, const MetricsSample &s, bool include_accel)
{
    w.beginObject();
    w.kv("cycles", static_cast<std::uint64_t>(s.cycles));
    w.kv("steps", s.steps);

    w.key("xfers").beginObject();
    for (unsigned k = 0; k < MachineStats::numXferKinds; ++k)
        w.kv(xferKindName(static_cast<XferKind>(k)), s.xferCount[k]);
    w.endObject();

    w.kv("calls", s.calls);
    w.kv("returns", s.returns);
    w.kv("preemptions", s.preemptions);
    w.kv("fastCallReturnRate", s.fastCallReturnRate);
    w.kv("returnStackDepth", s.returnStackDepth);
    w.kv("banksResident", s.banksResident);

    w.key("heap").beginObject();
    w.kv("liveFrames", s.liveFrames);
    w.kv("fragmentation", s.fragmentation);
    w.key("freeFrames").beginArray();
    for (const unsigned n : s.freeFrames)
        w.value(n);
    w.endArray();
    w.endObject();

    // Host hit rates only on request: the default document must be
    // byte-identical with acceleration on or off.
    w.key("accel");
    if (include_accel && s.accelEnabled) {
        w.beginObject();
        w.kv("icacheHitRate", s.icacheHitRate);
        w.kv("linkHitRate", s.linkHitRate);
        w.kv("sblockChainRate", s.sblockChainRate);
        w.kv("sblockFusionHits", s.sblockFusionHits);
        w.kv("deferredFlushes", s.deferredFlushes);
        w.endObject();
    } else {
        w.nullValue();
    }

    w.key("gauges").beginObject();
    for (const auto &[name, value] : s.gauges)
        w.kv(name, value);
    w.endObject();

    w.endObject();
}

} // namespace

void
writeMetricsJson(std::ostream &os, const MetricsExport &meta,
                 const std::vector<const Telemetry *> &workers)
{
    JsonWriter w(os);
    w.beginObject();
    w.kv("schema", "fpc-metrics-v1");
    w.kv("driver", meta.driver);
    if (!meta.impl.empty())
        w.kv("impl", meta.impl);
    w.kv("interval", static_cast<std::uint64_t>(meta.interval));

    w.key("series").beginArray();
    for (unsigned worker = 0; worker < workers.size(); ++worker) {
        const Telemetry *t = workers[worker];
        if (t == nullptr)
            continue;
        w.beginObject();
        w.kv("worker", worker);
        w.kv("recorded", t->recorded());
        w.kv("dropped", t->dropped());
        w.key("samples").beginArray();
        for (const MetricsSample &s : t->samples())
            sampleJson(w, s, meta.includeAccel);
        w.endArray();
        w.endObject();
    }
    w.endArray();

    w.endObject();
    os << "\n";
}

void
writeMetricsJson(std::ostream &os, const MetricsExport &meta,
                 const Telemetry &telemetry)
{
    writeMetricsJson(os, meta,
                     std::vector<const Telemetry *>{&telemetry});
}

// ---------------------------------------------------------------------
// OpenMetrics text exposition
// ---------------------------------------------------------------------

namespace
{

/** OpenMetrics label-value escaping: backslash, quote, newline. */
std::string
labelEscape(std::string_view v)
{
    std::string out;
    out.reserve(v.size());
    for (const char c : v) {
        switch (c) {
          case '\\': out += "\\\\"; break;
          case '"': out += "\\\""; break;
          case '\n': out += "\\n"; break;
          default: out += c;
        }
    }
    return out;
}

/** Restrict a provider gauge name to [a-zA-Z0-9_:]. */
std::string
sanitizeName(std::string_view name)
{
    std::string out;
    out.reserve(name.size());
    for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == ':';
        out += ok ? c : '_';
    }
    if (out.empty() || (out[0] >= '0' && out[0] <= '9'))
        out.insert(out.begin(), '_');
    return out;
}

struct Exposition
{
    std::ostream &os;
    const MetricsExport &meta;
    const std::vector<const Telemetry *> &workers;

    /** `# HELP`/`# TYPE` header for one metric family. */
    void
    family(const std::string &name, const char *type, const char *help)
    {
        os << "# HELP " << name << " " << help << "\n"
           << "# TYPE " << name << " " << type << "\n";
    }

    /** One sample line, stamped with its simulated-cycle timestamp
     *  (exported 1 cycle = 1 second; simulated time, so the series is
     *  byte-identical across runs). */
    void
    point(const std::string &name, unsigned worker,
          const std::string &extra_labels, double value, Tick stamp)
    {
        os << name << "{worker=\"" << worker << "\",impl=\""
           << labelEscape(meta.impl) << "\"" << extra_labels << "} "
           << jsonNumber(value) << " " << stamp << "\n";
    }

    /** Emit one family whose per-sample value emit() extracts. */
    template <typename Fn>
    void
    gaugeFamily(const std::string &name, const char *help, Fn &&emit)
    {
        family(name, "gauge", help);
        forEachSample([&](unsigned worker, const MetricsSample &s) {
            emit(name, worker, s);
        });
    }

    template <typename Fn>
    void
    forEachSample(Fn &&fn)
    {
        for (unsigned worker = 0; worker < workers.size(); ++worker) {
            if (workers[worker] == nullptr)
                continue;
            for (const MetricsSample &s : workers[worker]->samples())
                fn(worker, s);
        }
    }
};

} // namespace

void
writeOpenMetrics(std::ostream &os, const MetricsExport &meta,
                 const std::vector<const Telemetry *> &workers)
{
    Exposition x{os, meta, workers};

    // Counters: the family is named without the _total suffix the
    // sample lines carry (OpenMetrics 1.0 naming).
    x.family("fpc_cycles", "counter", "Simulated cycles executed.");
    x.forEachSample([&](unsigned w, const MetricsSample &s) {
        x.point("fpc_cycles_total", w, "",
                static_cast<double>(s.cycles), s.cycles);
    });
    x.family("fpc_steps", "counter", "Instructions executed.");
    x.forEachSample([&](unsigned w, const MetricsSample &s) {
        x.point("fpc_steps_total", w, "",
                static_cast<double>(s.steps), s.cycles);
    });
    x.family("fpc_xfers", "counter", "Control transfers by kind.");
    x.forEachSample([&](unsigned w, const MetricsSample &s) {
        for (unsigned k = 0; k < MachineStats::numXferKinds; ++k) {
            const std::string kind =
                xferKindName(static_cast<XferKind>(k));
            x.point("fpc_xfers_total", w,
                    ",kind=\"" + labelEscape(kind) + "\"",
                    static_cast<double>(s.xferCount[k]), s.cycles);
        }
    });
    x.family("fpc_calls", "counter", "Call-like transfers.");
    x.forEachSample([&](unsigned w, const MetricsSample &s) {
        x.point("fpc_calls_total", w, "",
                static_cast<double>(s.calls), s.cycles);
    });
    x.family("fpc_returns", "counter", "Return transfers.");
    x.forEachSample([&](unsigned w, const MetricsSample &s) {
        x.point("fpc_returns_total", w, "",
                static_cast<double>(s.returns), s.cycles);
    });
    x.family("fpc_preemptions", "counter",
             "Timeslice-driven process switches.");
    x.forEachSample([&](unsigned w, const MetricsSample &s) {
        x.point("fpc_preemptions_total", w, "",
                static_cast<double>(s.preemptions), s.cycles);
    });

    // Gauges.
    x.gaugeFamily("fpc_fast_call_return_rate",
                  "Fraction of calls+returns at jump cost.",
                  [&](const std::string &n, unsigned w,
                      const MetricsSample &s) {
                      x.point(n, w, "", s.fastCallReturnRate, s.cycles);
                  });
    x.gaugeFamily("fpc_return_stack_depth",
                  "IFU return-stack residency.",
                  [&](const std::string &n, unsigned w,
                      const MetricsSample &s) {
                      x.point(n, w, "", s.returnStackDepth, s.cycles);
                  });
    x.gaugeFamily("fpc_banks_resident",
                  "Register banks currently owning a frame.",
                  [&](const std::string &n, unsigned w,
                      const MetricsSample &s) {
                      x.point(n, w, "", s.banksResident, s.cycles);
                  });
    x.gaugeFamily("fpc_frames_live",
                  "Frames allocated and not yet freed.",
                  [&](const std::string &n, unsigned w,
                      const MetricsSample &s) {
                      x.point(n, w, "",
                              static_cast<double>(s.liveFrames),
                              s.cycles);
                  });
    x.gaugeFamily("fpc_heap_fragmentation",
                  "Internal fragmentation of the frame heap.",
                  [&](const std::string &n, unsigned w,
                      const MetricsSample &s) {
                      x.point(n, w, "", s.fragmentation, s.cycles);
                  });
    x.family("fpc_heap_free_frames", "gauge",
             "AV free-list occupancy per size class.");
    x.forEachSample([&](unsigned w, const MetricsSample &s) {
        for (unsigned fsi = 0; fsi < s.freeFrames.size(); ++fsi) {
            x.point("fpc_heap_free_frames", w,
                    ",fsi=\"" + std::to_string(fsi) + "\"",
                    s.freeFrames[fsi], s.cycles);
        }
    });

    if (meta.includeAccel) {
        x.gaugeFamily("fpc_accel_icache_hit_rate",
                      "Host predecode cache hit rate.",
                      [&](const std::string &n, unsigned w,
                          const MetricsSample &s) {
                          if (s.accelEnabled)
                              x.point(n, w, "", s.icacheHitRate,
                                      s.cycles);
                      });
        x.gaugeFamily("fpc_accel_link_hit_rate",
                      "Host XFER link cache hit rate.",
                      [&](const std::string &n, unsigned w,
                          const MetricsSample &s) {
                          if (s.accelEnabled)
                              x.point(n, w, "", s.linkHitRate,
                                      s.cycles);
                      });
        x.gaugeFamily("fpc_accel_chain_rate",
                      "Superblock transitions served by the inline "
                      "chain pointer, per execution.",
                      [&](const std::string &n, unsigned w,
                          const MetricsSample &s) {
                          if (s.accelEnabled)
                              x.point(n, w, "", s.sblockChainRate,
                                      s.cycles);
                      });
        x.family("fpc_accel_fusion_hits", "counter",
                 "Fused superinstruction executions (threaded "
                 "backend).");
        x.forEachSample([&](unsigned w, const MetricsSample &s) {
            if (s.accelEnabled)
                x.point("fpc_accel_fusion_hits_total", w, "",
                        static_cast<double>(s.sblockFusionHits),
                        s.cycles);
        });
        x.family("fpc_accel_deferred_flushes", "counter",
                 "Deferred-accounting folds into MachineStats.");
        x.forEachSample([&](unsigned w, const MetricsSample &s) {
            if (s.accelEnabled)
                x.point("fpc_accel_deferred_flushes_total", w, "",
                        static_cast<double>(s.deferredFlushes),
                        s.cycles);
        });
    }

    // Provider gauges, one family per distinct name, in order of
    // first appearance (deterministic for deterministic providers).
    std::vector<std::string> gaugeNames;
    std::set<std::string> seen;
    x.forEachSample([&](unsigned, const MetricsSample &s) {
        for (const auto &[name, value] : s.gauges) {
            (void)value;
            const std::string n = "fpc_" + sanitizeName(name);
            if (seen.insert(n).second)
                gaugeNames.push_back(n);
        }
    });
    for (const std::string &family : gaugeNames) {
        x.family(family, "gauge", "Runtime-provided gauge.");
        x.forEachSample([&](unsigned w, const MetricsSample &s) {
            for (const auto &[name, value] : s.gauges) {
                if ("fpc_" + sanitizeName(name) == family)
                    x.point(family, w, "", value, s.cycles);
            }
        });
    }

    os << "# EOF\n";
}

void
writeOpenMetrics(std::ostream &os, const MetricsExport &meta,
                 const Telemetry &telemetry)
{
    writeOpenMetrics(os, meta,
                     std::vector<const Telemetry *>{&telemetry});
}

} // namespace fpc::obs
