#include "obs/json.hh"

#include <cmath>
#include <cstdio>

#include "common/logging.hh"
#include "frames/frame_heap.hh"
#include "machine/machine.hh"
#include "memory/cache.hh"
#include "memory/memory.hh"
#include "stats/stats.hh"

namespace fpc::obs
{

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "0";
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    return buf;
}

void
JsonWriter::indent()
{
    os_ << "\n";
    for (std::size_t i = 0; i < stack_.size(); ++i)
        os_ << "  ";
}

void
JsonWriter::preValue()
{
    if (keyPending_) {
        keyPending_ = false;
        return;
    }
    if (stack_.empty())
        return;
    if (!stack_.back().first)
        os_ << ",";
    stack_.back().first = false;
    indent();
}

JsonWriter &
JsonWriter::beginObject()
{
    preValue();
    os_ << "{";
    stack_.push_back({false, true});
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    if (stack_.empty() || stack_.back().array)
        panic("JsonWriter::endObject: not in an object");
    const bool empty = stack_.back().first;
    stack_.pop_back();
    if (!empty)
        indent();
    os_ << "}";
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    preValue();
    os_ << "[";
    stack_.push_back({true, true});
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    if (stack_.empty() || !stack_.back().array)
        panic("JsonWriter::endArray: not in an array");
    const bool empty = stack_.back().first;
    stack_.pop_back();
    if (!empty)
        indent();
    os_ << "]";
    return *this;
}

JsonWriter &
JsonWriter::key(std::string_view name)
{
    if (stack_.empty() || stack_.back().array)
        panic("JsonWriter::key outside an object");
    if (!stack_.back().first)
        os_ << ",";
    stack_.back().first = false;
    indent();
    os_ << "\"" << jsonEscape(name) << "\": ";
    keyPending_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view v)
{
    preValue();
    os_ << "\"" << jsonEscape(v) << "\"";
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    preValue();
    os_ << jsonNumber(v);
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    preValue();
    os_ << (v ? "true" : "false");
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    preValue();
    os_ << v;
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    preValue();
    os_ << v;
    return *this;
}

JsonWriter &
JsonWriter::nullValue()
{
    preValue();
    os_ << "null";
    return *this;
}

// ---------------------------------------------------------------------
// Component exporters
// ---------------------------------------------------------------------

void
distributionJson(JsonWriter &w, const stats::Distribution &d)
{
    w.beginObject();
    w.kv("count", d.count());
    w.kv("total", d.total());
    w.kv("mean", d.mean());
    w.kv("min", d.min());
    w.kv("max", d.max());
    w.kv("stddev", d.stddev());
    w.endObject();
}

void
machineStatsJson(JsonWriter &w, const MachineStats &s)
{
    w.beginObject();
    w.kv("steps", s.steps);
    w.kv("cycles", s.cycles);
    w.kv("calls", s.calls());
    w.kv("returns", s.returns());
    w.kv("totalXfers", s.totalXfers());
    w.kv("fastCallReturnRate", s.fastCallReturnRate());

    w.key("xfers").beginObject();
    for (unsigned k = 0; k < MachineStats::numXferKinds; ++k) {
        w.key(xferKindName(static_cast<XferKind>(k))).beginObject();
        w.kv("count", s.xferCount[k]);
        w.kv("fast", s.xferFast[k]);
        w.key("refs");
        distributionJson(w, s.xferRefs[k]);
        w.key("cycles");
        distributionJson(w, s.xferCycles[k]);
        w.endObject();
    }
    w.endObject();

    w.key("returnStack").beginObject();
    w.kv("hits", s.returnStackHits);
    w.kv("misses", s.returnStackMisses);
    w.kv("flushes", s.returnStackFlushes);
    w.kv("flushedEntries", s.returnStackFlushedEntries);
    w.kv("spills", s.returnStackSpills);
    w.endObject();

    w.key("banks").beginObject();
    w.kv("overflows", s.bankOverflows);
    w.kv("underflows", s.bankUnderflows);
    w.kv("flushWords", s.bankFlushWords);
    w.kv("loadWords", s.bankLoadWords);
    w.kv("diverts", s.bankDiverts);
    w.kv("flaggedFrames", s.flaggedFrames);
    w.endObject();

    w.key("frames").beginObject();
    w.kv("fastAllocs", s.fastFrameAllocs);
    w.kv("slowAllocs", s.slowFrameAllocs);
    w.kv("fastFrees", s.fastFrameFrees);
    w.kv("slowFrees", s.slowFrameFrees);
    w.endObject();

    w.key("accesses").beginObject();
    w.kv("localBank", s.localBankAccesses);
    w.kv("localMem", s.localMemAccesses);
    w.kv("global", s.globalAccesses);
    w.endObject();

    w.kv("preemptions", s.preemptions);

    // Only the opcodes that actually executed, keyed by opcode byte.
    w.key("opCount").beginObject();
    for (unsigned op = 0; op < s.opCount.size(); ++op) {
        if (s.opCount[op] == 0)
            continue;
        w.kv(std::to_string(op), s.opCount[op]);
    }
    w.endObject();

    w.key("instLenCount").beginArray();
    for (const CountT c : s.instLenCount)
        w.value(c);
    w.endArray();

    w.endObject();
}

void
accelStatsJson(JsonWriter &w, const AccelStats &s)
{
    w.beginObject();
    w.key("icache").beginObject();
    w.kv("hits", s.icacheHits);
    w.kv("misses", s.icacheMisses);
    w.kv("hitRate", s.icacheHitRate());
    w.endObject();
    w.key("links").beginObject();
    w.kv("extHits", s.extHits);
    w.kv("extMisses", s.extMisses);
    w.kv("localHits", s.localHits);
    w.kv("localMisses", s.localMisses);
    w.kv("directHits", s.directHits);
    w.kv("directMisses", s.directMisses);
    w.kv("fatHits", s.fatHits);
    w.kv("fatMisses", s.fatMisses);
    w.kv("hitRate", s.linkHitRate());
    w.endObject();
    w.kv("codeFlushes", s.codeFlushes);
    w.kv("tableFlushes", s.tableFlushes);
    w.key("sblocks").beginObject();
    w.kv("builds", s.sblockBuilds);
    w.kv("execs", s.sblockExecs);
    w.kv("chainHits", s.sblockChainHits);
    w.endObject();
    w.key("probes").beginObject();
    w.kv("sites", s.probeSites);
    w.kv("deoptBlocks", s.probeDeoptBlocks);
    w.kv("eagerSteps", s.probeEagerSteps);
    w.endObject();
    w.endObject();
}

void
memoryStatsJson(JsonWriter &w, const Memory &mem)
{
    w.beginObject();
    w.kv("words", std::uint64_t(mem.size()));
    w.kv("totalRefs", mem.totalRefs());
    w.kv("codeByteFetches", mem.codeByteFetches());
    w.key("reads").beginObject();
    for (unsigned k = 0; k < static_cast<unsigned>(AccessKind::NumKinds);
         ++k) {
        w.kv(accessKindName(static_cast<AccessKind>(k)),
             mem.reads(static_cast<AccessKind>(k)));
    }
    w.endObject();
    w.key("writes").beginObject();
    for (unsigned k = 0; k < static_cast<unsigned>(AccessKind::NumKinds);
         ++k) {
        w.kv(accessKindName(static_cast<AccessKind>(k)),
             mem.writes(static_cast<AccessKind>(k)));
    }
    w.endObject();
    w.endObject();
}

void
heapStatsJson(JsonWriter &w, const FrameHeapStats &s)
{
    w.beginObject();
    w.kv("allocs", s.allocs);
    w.kv("frees", s.frees);
    w.kv("softwareTraps", s.softwareTraps);
    w.kv("retainedSkips", s.retainedSkips);
    w.kv("requestedWords", s.requestedWords);
    w.kv("allocatedWords", s.allocatedWords);
    w.kv("blockWords", s.blockWords);
    w.kv("refsAlloc", s.refsAlloc);
    w.kv("refsFree", s.refsFree);
    w.kv("fragmentation", s.fragmentation());
    w.endObject();
}

void
cacheStatsJson(JsonWriter &w, const Cache &cache)
{
    w.beginObject();
    w.kv("hits", cache.hits());
    w.kv("misses", cache.misses());
    w.kv("writebacks", cache.writebacks());
    w.kv("accesses", cache.accesses());
    w.kv("hitRate", cache.hitRate());
    w.endObject();
}

void
statGroupJson(JsonWriter &w, const stats::StatGroup &group)
{
    w.beginObject();
    w.kv("name", group.name());
    w.key("stats").beginObject();
    group.visit([&w](const std::string &name, const std::string &desc,
                     const stats::Counter *counter,
                     const stats::Distribution *dist,
                     const stats::Histogram *hist) {
        w.key(name).beginObject();
        if (!desc.empty())
            w.kv("desc", desc);
        if (counter != nullptr) {
            w.kv("type", "counter");
            w.kv("value", counter->value());
        } else if (dist != nullptr) {
            w.kv("type", "distribution");
            w.key("value");
            distributionJson(w, *dist);
        } else if (hist != nullptr) {
            w.kv("type", "histogram");
            w.key("value").beginObject();
            w.kv("bucketWidth", hist->bucketWidth());
            w.kv("count", hist->count());
            w.kv("mean", hist->mean());
            w.kv("p50", hist->p50());
            w.kv("p90", hist->p90());
            w.kv("p99", hist->p99());
            w.kv("overflow", hist->overflow());
            w.key("buckets").beginArray();
            for (std::size_t i = 0; i < hist->buckets(); ++i)
                w.value(hist->bucketCount(i));
            w.endArray();
            w.endObject();
        }
        w.endObject();
    });
    w.endObject();
    w.endObject();
}

void
writeStatsJson(std::ostream &os, const StatsExport &exp)
{
    JsonWriter w(os);
    w.beginObject();
    w.kv("schema", "fpc-stats-v1");
    w.kv("driver", exp.driver);
    if (!exp.impl.empty())
        w.kv("impl", exp.impl);
    if (!exp.stopReason.empty())
        w.kv("stopReason", exp.stopReason);
    if (exp.workers > 0)
        w.kv("workers", exp.workers);

    w.key("machine");
    if (exp.machine != nullptr)
        machineStatsJson(w, *exp.machine);
    else
        w.nullValue();

    w.key("memory");
    if (exp.memory != nullptr)
        memoryStatsJson(w, *exp.memory);
    else
        w.nullValue();

    w.key("heap");
    if (exp.heap != nullptr)
        heapStatsJson(w, *exp.heap);
    else
        w.nullValue();

    w.key("cache");
    if (exp.cache != nullptr)
        cacheStatsJson(w, *exp.cache);
    else
        w.nullValue();

    w.key("accel");
    if (exp.accel != nullptr)
        accelStatsJson(w, *exp.accel);
    else
        w.nullValue();

    w.key("groups").beginArray();
    for (const stats::StatGroup *g : exp.groups) {
        if (g != nullptr)
            statGroupJson(w, *g);
    }
    w.endArray();

    w.endObject();
    os << "\n";
}

} // namespace fpc::obs
