#include "obs/trace.hh"

#include <algorithm>

#include "common/logging.hh"
#include "obs/json.hh"
#include "obs/profile.hh"
#include "xfer/context.hh"

namespace fpc::obs
{

namespace
{

bool
callLike(XferKind kind)
{
    return kind == XferKind::ExtCall || kind == XferKind::LocalCall ||
           kind == XferKind::DirectCall || kind == XferKind::FatCall;
}

} // namespace

Tracer::Tracer(std::size_t capacity) : capacity_(capacity)
{
    if (capacity_ == 0)
        panic("Tracer: capacity must be nonzero");
    ring_.reserve(std::min<std::size_t>(capacity_, 4096));
}

void
Tracer::onXfer(const XferRecord &record)
{
    TraceEvent ev;
    ev.kind = record.kind;
    ev.srcCtx = record.srcCtx;
    ev.dstCtx = record.dstCtx;
    ev.frame = record.frame;
    ev.pc = record.pc;
    ev.start = base_ + record.start;
    ev.end = base_ + record.end;
    ev.refs = record.refs;
    ev.step = record.step;

    // Shadow depth: calls deepen, returns shallow, anything that breaks
    // LIFO order (Switch / ProcSwitch / Trap) resets to the root.
    if (callLike(record.kind)) {
        ev.depth = ++depth_;
        if (procMap_ != nullptr) {
            if (const std::string *name = procMap_->find(record.pc))
                ev.nameIdx = intern(*name);
        }
    } else if (record.kind == XferKind::Return) {
        ev.depth = depth_;
        if (depth_ > 0)
            --depth_;
    } else {
        depth_ = 0;
        ev.depth = 0;
    }

    if (ring_.size() < capacity_) {
        ring_.push_back(ev);
    } else {
        ring_[head_] = ev;
        head_ = (head_ + 1) % capacity_;
        ++dropped_;
    }
    ++recorded_;
}

std::vector<TraceEvent>
Tracer::events() const
{
    std::vector<TraceEvent> out;
    out.reserve(ring_.size());
    // head_ is the oldest slot once the ring has wrapped.
    for (std::size_t i = 0; i < ring_.size(); ++i)
        out.push_back(ring_[(head_ + i) % ring_.size()]);
    return out;
}

const std::string &
Tracer::name(unsigned name_idx) const
{
    if (name_idx >= names_.size())
        panic("Tracer::name: bad index {}", name_idx);
    return names_[name_idx];
}

void
Tracer::clear()
{
    ring_.clear();
    head_ = 0;
    recorded_ = 0;
    depth_ = 0;
    // Keep the interned names: indices in already-snapshotted events
    // stay valid and re-recording reuses them. dropped_ also survives:
    // it reports lifetime losses across every epoch.
}

unsigned
Tracer::intern(const std::string &name)
{
    auto it = nameIndex_.find(name);
    if (it != nameIndex_.end())
        return it->second;
    const unsigned idx = static_cast<unsigned>(names_.size());
    names_.push_back(name);
    nameIndex_.emplace(name, idx);
    return idx;
}

// ---------------------------------------------------------------------
// Chrome trace-event export
// ---------------------------------------------------------------------

namespace
{

/**
 * Complete ("X") events tolerate drop-oldest truncation — there is no
 * begin/end pairing to corrupt — and each slice's width is exactly the
 * cycles the transfer consumed. Exported as 1 cycle == 1 "us".
 */
void
writeEvent(std::ostream &os, const Tracer &tracer, unsigned pid,
           unsigned tid, const TraceEvent &ev, bool &first)
{
    if (!first)
        os << ",\n";
    first = false;

    const std::string &name = ev.nameIdx == TraceEvent::noName
                                  ? xferKindName(ev.kind)
                                  : tracer.name(ev.nameIdx);
    os << "    {\"name\": \"" << jsonEscape(name)
       << "\", \"cat\": \"xfer\", \"ph\": \"X\", \"pid\": " << pid
       << ", \"tid\": " << tid << ", \"ts\": " << ev.start
       << ", \"dur\": " << (ev.end - ev.start) << ", \"args\": {"
       << "\"kind\": \"" << xferKindName(ev.kind) << "\", \"src\": "
       << ev.srcCtx << ", \"dst\": " << ev.dstCtx
       << ", \"frame\": " << ev.frame << ", \"pc\": " << ev.pc
       << ", \"depth\": " << ev.depth << ", \"refs\": " << ev.refs
       << ", \"step\": " << ev.step << "}}";
}

} // namespace

void
writeChromeThreadName(std::ostream &os, unsigned pid, unsigned tid,
                      const std::string &name, bool &first)
{
    if (!first)
        os << ",\n";
    first = false;
    os << "    {\"name\": \"thread_name\", \"ph\": \"M\", "
       << "\"pid\": " << pid << ", \"tid\": " << tid
       << ", \"args\": {\"name\": \"" << jsonEscape(name) << "\"}}";
}

void
writeChromeTraceEvents(std::ostream &os, const Tracer &tracer,
                       unsigned pid, unsigned tid, bool &first)
{
    for (const TraceEvent &ev : tracer.events())
        writeEvent(os, tracer, pid, tid, ev, first);
}

void
writeChromeTrace(std::ostream &os,
                 const std::vector<const Tracer *> &tracks)
{
    os << "{\n  \"displayTimeUnit\": \"ns\",\n  \"traceEvents\": [\n";
    bool first = true;
    for (unsigned tid = 0; tid < tracks.size(); ++tid) {
        if (tracks[tid] == nullptr)
            continue;
        writeChromeThreadName(os, 0, tid, "worker " + std::to_string(tid),
                              first);
    }
    for (unsigned tid = 0; tid < tracks.size(); ++tid) {
        if (tracks[tid] == nullptr)
            continue;
        writeChromeTraceEvents(os, *tracks[tid], 0, tid, first);
    }
    os << "\n  ]\n}\n";
}

void
writeChromeTrace(std::ostream &os, const Tracer &tracer)
{
    writeChromeTrace(os, std::vector<const Tracer *>{&tracer});
}

} // namespace fpc::obs
