#include "obs/spans.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>

#include "common/logging.hh"
#include "obs/json.hh"

namespace fpc::obs
{

const char *
spanKindName(SpanKind kind)
{
    switch (kind) {
    case SpanKind::Request:
        return "request";
    case SpanKind::Admission:
        return "admission";
    case SpanKind::Queued:
        return "queued";
    case SpanKind::Dispatch:
        return "dispatch";
    case SpanKind::Execute:
        return "execute";
    case SpanKind::Reply:
        return "reply";
    }
    return "?";
}

const char *
spanTrackName(SpanTrack kind)
{
    switch (kind) {
    case SpanTrack::Connection:
        return "conn";
    case SpanTrack::Tenant:
        return "tenant";
    case SpanTrack::Worker:
        return "worker";
    }
    return "?";
}

SpanCollector::SpanCollector(std::size_t capacity) : capacity_(capacity)
{
    if (capacity_ == 0)
        panic("SpanCollector: capacity must be nonzero");
    ring_.reserve(std::min<std::size_t>(capacity_, 4096));
    epochNs_ = nowNs();
}

std::int64_t
SpanCollector::nowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

std::uint32_t
SpanCollector::internTenant(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = tenantIndex_.find(name);
    if (it != tenantIndex_.end())
        return it->second;
    const auto idx = static_cast<std::uint32_t>(tenants_.size());
    tenants_.push_back(name);
    tenantIndex_.emplace(name, idx);
    return idx;
}

std::vector<std::string>
SpanCollector::tenantNames() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return tenants_;
}

void
SpanCollector::begin(SpanKind kind, std::uint64_t id,
                     SpanTrack trackKind, std::uint32_t track,
                     std::uint32_t tenant, std::int64_t startNs,
                     std::uint64_t traceId, std::uint32_t reqId)
{
    Span span;
    span.id = id;
    span.traceId = traceId;
    span.reqId = reqId;
    span.kind = kind;
    span.trackKind = trackKind;
    span.track = track;
    span.tenant = tenant;
    span.startNs = startNs;

    std::lock_guard<std::mutex> lock(mutex_);
    OpenState &st = open_[id];
    if (kind == SpanKind::Request) {
        if (st.haveRequest)
            faultLocked(id, kind, "double begin of request span");
        st.haveRequest = true;
        st.request = span;
    } else {
        if (st.havePhase)
            faultLocked(id, kind,
                        strfmt("begin of {} while {} is still open",
                               spanKindName(kind),
                               spanKindName(st.phase.kind)));
        st.havePhase = true;
        st.phase = span;
    }
}

void
SpanCollector::end(SpanKind kind, std::uint64_t id, std::int64_t endNs,
                   bool ok)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = open_.find(id);
    const bool match = it != open_.end() &&
                       (kind == SpanKind::Request
                            ? it->second.haveRequest
                            : it->second.havePhase &&
                                  it->second.phase.kind == kind);
    if (!match) {
        faultLocked(id, kind,
                    strfmt("end of {} without matching begin",
                           spanKindName(kind)));
        return;
    }
    Span &span = kind == SpanKind::Request ? it->second.request
                                           : it->second.phase;
    span.endNs = endNs;
    span.ok = ok;
    recordLocked(span);
    if (kind == SpanKind::Request)
        it->second.haveRequest = false;
    else
        it->second.havePhase = false;
    if (!it->second.haveRequest && !it->second.havePhase)
        open_.erase(it);
}

void
SpanCollector::end(SpanKind kind, std::uint64_t id, std::int64_t endNs,
                   bool ok, SpanTrack trackKind, std::uint32_t track)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = open_.find(id);
        if (it != open_.end()) {
            Span &span = kind == SpanKind::Request ? it->second.request
                                                   : it->second.phase;
            span.trackKind = trackKind;
            span.track = track;
        }
    }
    end(kind, id, endNs, ok);
}

bool
SpanCollector::endPhase(std::uint64_t id, std::int64_t endNs, bool ok)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = open_.find(id);
    if (it == open_.end() || !it->second.havePhase)
        return false;
    Span &span = it->second.phase;
    span.endNs = endNs;
    span.ok = ok;
    recordLocked(span);
    it->second.havePhase = false;
    if (!it->second.haveRequest)
        open_.erase(it);
    return true;
}

bool
SpanCollector::endPhase(std::uint64_t id, std::int64_t endNs, bool ok,
                        SpanTrack trackKind, std::uint32_t track)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = open_.find(id);
        if (it == open_.end() || !it->second.havePhase)
            return false;
        it->second.phase.trackKind = trackKind;
        it->second.phase.track = track;
    }
    return endPhase(id, endNs, ok);
}

bool
SpanCollector::endRequestIfOpen(std::uint64_t id, std::int64_t endNs,
                                bool ok, SpanTrack trackKind,
                                std::uint32_t track)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = open_.find(id);
        if (it == open_.end() || !it->second.haveRequest)
            return false;
        it->second.request.trackKind = trackKind;
        it->second.request.track = track;
    }
    end(SpanKind::Request, id, endNs, ok);
    return true;
}

std::vector<Span>
SpanCollector::spans() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<Span> out;
    out.reserve(ring_.size());
    for (std::size_t i = 0; i < ring_.size(); ++i)
        out.push_back(ring_[(head_ + i) % ring_.size()]);
    return out;
}

std::vector<SpanFault>
SpanCollector::faults() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return faults_;
}

CountT
SpanCollector::faultCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return faultCount_;
}

CountT
SpanCollector::recorded() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return recorded_;
}

CountT
SpanCollector::dropped() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return dropped_;
}

std::size_t
SpanCollector::openCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return open_.size();
}

void
SpanCollector::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    ring_.clear();
    head_ = 0;
    recorded_ = 0;
    dropped_ = 0;
    open_.clear();
    faults_.clear();
    faultCount_ = 0;
    // Tenant interning survives: indices in SpanRefs stay valid.
}

void
SpanCollector::recordLocked(const Span &span)
{
    if (ring_.size() < capacity_) {
        ring_.push_back(span);
    } else {
        ring_[head_] = span;
        head_ = (head_ + 1) % capacity_;
        ++dropped_;
    }
    ++recorded_;
}

void
SpanCollector::faultLocked(std::uint64_t id, SpanKind kind,
                           std::string what)
{
    if (faults_.size() < maxRetainedFaults)
        faults_.push_back(SpanFault{id, kind, std::move(what)});
    ++faultCount_;
}

// ---------------------------------------------------------------------
// Bracketing checker
// ---------------------------------------------------------------------

std::vector<SpanFault>
checkSpans(const SpanCollector &spans, std::int64_t slackNs)
{
    std::vector<SpanFault> out = spans.faults();
    const bool truncated = spans.dropped() > 0;

    // Open spans at check time are unbalanced by definition: the
    // checker runs after drain, when every request has completed.
    if (spans.openCount() > 0)
        out.push_back(SpanFault{
            0, SpanKind::Request,
            strfmt("{} request(s) still have open spans at check",
                   spans.openCount())});

    struct Tree
    {
        bool haveRequest = false;
        Span request;
        std::vector<Span> phases;
    };
    std::map<std::uint64_t, Tree> trees;
    for (const Span &s : spans.spans()) {
        Tree &t = trees[s.id];
        if (s.kind == SpanKind::Request) {
            if (t.haveRequest)
                out.push_back(SpanFault{
                    s.id, s.kind, "duplicate completed request span"});
            t.haveRequest = true;
            t.request = s;
        } else {
            t.phases.push_back(s);
        }
    }

    for (auto &[id, t] : trees) {
        std::sort(t.phases.begin(), t.phases.end(),
                  [](const Span &a, const Span &b) {
                      return a.startNs != b.startNs
                                 ? a.startNs < b.startNs
                                 : a.kind < b.kind;
                  });
        // Phases must not overlap and must come in canonical order.
        for (std::size_t i = 1; i < t.phases.size(); ++i) {
            const Span &prev = t.phases[i - 1];
            const Span &cur = t.phases[i];
            if (cur.startNs < prev.endNs)
                out.push_back(SpanFault{
                    id, cur.kind,
                    strfmt("{} overlaps {}", spanKindName(cur.kind),
                           spanKindName(prev.kind))});
            if (cur.kind <= prev.kind)
                out.push_back(SpanFault{
                    id, cur.kind,
                    strfmt("{} out of canonical order after {}",
                           spanKindName(cur.kind),
                           spanKindName(prev.kind))});
        }
        if (!t.haveRequest) {
            // Without truncation every phase belongs to a completed
            // request span.
            if (!truncated && !t.phases.empty())
                out.push_back(SpanFault{id, t.phases.front().kind,
                                        "phase without request span"});
            continue;
        }
        for (const Span &p : t.phases) {
            if (p.startNs < t.request.startNs ||
                p.endNs > t.request.endNs)
                out.push_back(SpanFault{
                    id, p.kind,
                    strfmt("{} outside request bounds",
                           spanKindName(p.kind))});
        }
        // Completeness + exact partition, only for fully-retained
        // trees of ok requests that passed admission.
        const bool admitted = std::any_of(
            t.phases.begin(), t.phases.end(), [](const Span &p) {
                return p.kind == SpanKind::Admission && p.ok;
            });
        if (truncated || !t.request.ok || !admitted)
            continue;
        if (t.phases.size() != 5) {
            out.push_back(SpanFault{
                id, SpanKind::Request,
                strfmt("admitted ok request has {} phases, want 5",
                       t.phases.size())});
            continue;
        }
        std::int64_t cursor = t.request.startNs;
        std::int64_t sum = 0;
        bool contiguous = true;
        for (const Span &p : t.phases) {
            if (std::llabs(p.startNs - cursor) > slackNs)
                contiguous = false;
            cursor = p.endNs;
            sum += p.endNs - p.startNs;
        }
        if (std::llabs(cursor - t.request.endNs) > slackNs)
            contiguous = false;
        const std::int64_t requestDur =
            t.request.endNs - t.request.startNs;
        if (!contiguous)
            out.push_back(SpanFault{
                id, SpanKind::Request,
                strfmt("phases do not partition the request span "
                       "(phase sum {} ns vs request {} ns)",
                       sum, requestDur)});
    }
    return out;
}

// ---------------------------------------------------------------------
// Postmortem bundle
// ---------------------------------------------------------------------

namespace
{

void
spanJson(JsonWriter &w, const std::vector<std::string> &tenants,
         std::int64_t epoch, const Span &s)
{
    w.beginObject()
        .kv("id", s.id)
        .kv("traceId", s.traceId)
        .kv("reqId", std::uint64_t(s.reqId))
        .kv("kind", spanKindName(s.kind))
        .kv("track",
            strfmt("{}:{}", spanTrackName(s.trackKind), s.track));
    if (s.tenant != noTenant && s.tenant < tenants.size())
        w.kv("tenant", tenants[s.tenant]);
    else
        w.key("tenant").nullValue();
    w.kv("startNs", s.startNs - epoch)
        .kv("endNs", s.endNs - epoch)
        .kv("ok", s.ok)
        .endObject();
}

} // namespace

bool
writeSpanPostmortem(const std::string &dir, const std::string &prefix,
                    const std::string &driver,
                    const std::vector<SpanFault> &faults,
                    const SpanCollector &spans)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) {
        error("cannot create postmortem dir {}: {}", dir, ec.message());
        return false;
    }
    const std::string path =
        dir + "/" + prefix + "spans-postmortem.json";
    std::ofstream os(path);
    if (!os) {
        error("cannot write {}", path);
        return false;
    }

    std::set<std::uint64_t> offending;
    for (const SpanFault &f : faults)
        offending.insert(f.id);

    JsonWriter w(os);
    w.beginObject()
        .kv("schema", "fpc-postmortem-v1")
        .kv("kind", "span-bracketing")
        .kv("driver", driver)
        .kv("recorded", spans.recorded())
        .kv("dropped", spans.dropped())
        .kv("open", std::uint64_t(spans.openCount()))
        .kv("faultCount", std::uint64_t(faults.size()));
    w.key("faults").beginArray();
    for (const SpanFault &f : faults) {
        w.beginObject()
            .kv("id", f.id)
            .kv("kind", spanKindName(f.kind))
            .kv("what", f.what)
            .endObject();
    }
    w.endArray();
    // The retained spans of every offending request, for context.
    const std::vector<std::string> tenants = spans.tenantNames();
    w.key("spans").beginArray();
    for (const Span &s : spans.spans())
        if (offending.count(s.id) != 0)
            spanJson(w, tenants, spans.epochNs(), s);
    w.endArray();
    w.endObject();
    os << "\n";
    return os.good();
}

// ---------------------------------------------------------------------
// fpc-spans-v1 log
// ---------------------------------------------------------------------

void
writeSpansLog(std::ostream &os, const std::string &driver,
              const SpanCollector &spans)
{
    const std::int64_t epoch = spans.epochNs();
    os << "fpc-spans-v1\n";
    os << "driver " << driver << "\n";
    os << "capacity " << spans.capacity() << "\n";
    os << "recorded " << spans.recorded() << "\n";
    os << "dropped " << spans.dropped() << "\n";
    const std::vector<std::string> tenants = spans.tenantNames();
    for (std::size_t i = 0; i < tenants.size(); ++i)
        os << "tenant " << i << " " << tenants[i] << "\n";
    for (const Span &s : spans.spans()) {
        os << "span " << s.id << " " << s.traceId << " " << s.reqId
           << " " << spanKindName(s.kind) << " "
           << spanTrackName(s.trackKind) << ":" << s.track << " ";
        if (s.tenant == noTenant)
            os << "-";
        else
            os << s.tenant;
        os << " " << (s.startNs - epoch) << " " << (s.endNs - epoch)
           << " " << (s.ok ? "ok" : "err") << "\n";
    }
    const std::vector<SpanFault> faults = spans.faults();
    os << "faults " << spans.faultCount() << "\n";
    for (const SpanFault &f : faults)
        os << "fault " << f.id << " " << spanKindName(f.kind) << " "
           << f.what << "\n";
    os << "eof\n";
}

// ---------------------------------------------------------------------
// Perfetto export
// ---------------------------------------------------------------------

namespace
{

/** tid layout on the serve pid: workers at 0, tenants at 1000,
 *  connections at 2000. Purely presentational. */
constexpr unsigned tenantTidBase = 1000;
constexpr unsigned connTidBase = 2000;

unsigned
spanTid(const Span &s)
{
    switch (s.trackKind) {
    case SpanTrack::Worker:
        return s.track;
    case SpanTrack::Tenant:
        return tenantTidBase + s.track;
    case SpanTrack::Connection:
        return connTidBase + s.track;
    }
    return s.track;
}

} // namespace

void
writeSpansPerfetto(std::ostream &os, const SpanCollector &spans,
                   const std::vector<const Tracer *> &xferTracks)
{
    const std::vector<Span> all = spans.spans();
    const std::vector<std::string> tenants = spans.tenantNames();
    const std::int64_t epoch = spans.epochNs();

    os << "{\n  \"displayTimeUnit\": \"ns\",\n  \"traceEvents\": [\n";
    bool first = true;

    // Track metadata: name every tid that actually carries spans.
    std::set<unsigned> workerTids, connTids;
    std::set<std::uint32_t> tenantTracks;
    for (const Span &s : all) {
        switch (s.trackKind) {
        case SpanTrack::Worker:
            workerTids.insert(s.track);
            break;
        case SpanTrack::Tenant:
            tenantTracks.insert(s.track);
            break;
        case SpanTrack::Connection:
            connTids.insert(s.track);
            break;
        }
    }
    os << "    {\"name\": \"process_name\", \"ph\": \"M\", "
       << "\"pid\": 1, \"tid\": 0, \"args\": "
       << "{\"name\": \"serve (wall time)\"}}";
    first = false;
    for (const unsigned t : workerTids)
        writeChromeThreadName(os, 1, t,
                              "serve worker " + std::to_string(t),
                              first);
    for (const std::uint32_t t : tenantTracks) {
        const std::string name =
            t < tenants.size() ? tenants[t] : std::to_string(t);
        writeChromeThreadName(os, 1, tenantTidBase + t,
                              "tenant " + name, first);
    }
    for (const unsigned t : connTids)
        writeChromeThreadName(os, 1, connTidBase + t,
                              "conn " + std::to_string(t), first);

    for (const Span &s : all) {
        os << ",\n";
        // Wall nanoseconds exported as fractional microseconds (the
        // trace-event "ts" unit).
        const double ts =
            static_cast<double>(s.startNs - epoch) / 1000.0;
        const double dur =
            static_cast<double>(s.endNs - s.startNs) / 1000.0;
        os << "    {\"name\": \"" << spanKindName(s.kind)
           << "\", \"cat\": \"span\", \"ph\": \"X\", \"pid\": 1, "
           << "\"tid\": " << spanTid(s) << ", \"ts\": "
           << jsonNumber(ts) << ", \"dur\": " << jsonNumber(dur)
           << ", \"args\": {\"id\": " << s.id << ", \"traceId\": "
           << s.traceId << ", \"reqId\": " << s.reqId
           << ", \"tenant\": ";
        if (s.tenant != noTenant && s.tenant < tenants.size())
            os << "\"" << jsonEscape(tenants[s.tenant]) << "\"";
        else
            os << "null";
        os << ", \"ok\": " << (s.ok ? "true" : "false") << "}}";
    }

    // Embedded XFER tracks: pid 0, simulated cycles (1 cycle = 1 us).
    // Different clock, same document — correlate by worker index.
    if (!xferTracks.empty()) {
        os << ",\n    {\"name\": \"process_name\", \"ph\": \"M\", "
           << "\"pid\": 0, \"tid\": 0, \"args\": "
           << "{\"name\": \"machine (simulated cycles)\"}}";
        for (unsigned tid = 0; tid < xferTracks.size(); ++tid) {
            if (xferTracks[tid] == nullptr)
                continue;
            writeChromeThreadName(os, 0, tid,
                                  "worker " + std::to_string(tid),
                                  first);
        }
        for (unsigned tid = 0; tid < xferTracks.size(); ++tid) {
            if (xferTracks[tid] == nullptr)
                continue;
            writeChromeTraceEvents(os, *xferTracks[tid], 0, tid, first);
        }
    }
    os << "\n  ]\n}\n";
}

} // namespace fpc::obs
