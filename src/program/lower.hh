/**
 * @file
 * Lowering of procedure IR to code bytes.
 *
 * Call-site encodings depend on the bind-time linkage decision, so
 * lowering is parameterized by a CallSitePolicy the loader implements.
 * Jump displacements are resolved with a grow-only fixpoint so the
 * compact one-byte (J2..J8) and two-byte (JB) forms are used whenever
 * the final displacement allows — this is where the "two thirds of
 * instructions are one byte" property of the Mesa encoding comes from.
 */

#ifndef FPC_PROGRAM_LOWER_HH
#define FPC_PROGRAM_LOWER_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "program/module.hh"

namespace fpc
{

/** How the loader wants call sites in one module encoded. */
class CallSitePolicy
{
  public:
    virtual ~CallSitePolicy() = default;

    /** Encoded size in bytes of a call to the given extern. */
    virtual unsigned extCallSize(unsigned extern_id) const = 0;
    /** Encoded size in bytes of a call to the given local proc. */
    virtual unsigned localCallSize(unsigned proc_index) const = 0;

    /**
     * Emit the call; site_addr is the absolute byte address of the
     * call instruction (needed for PC-relative SHORTDIRECTCALLs).
     * Must append exactly the promised size.
     */
    virtual void encodeExtCall(std::vector<std::uint8_t> &out,
                               unsigned extern_id,
                               CodeByteAddr site_addr) const = 0;
    virtual void encodeLocalCall(std::vector<std::uint8_t> &out,
                                 unsigned proc_index,
                                 CodeByteAddr site_addr) const = 0;

    /** Link-vector index to use for an LPD of the given extern. */
    virtual unsigned loadDescLvIndex(unsigned extern_id) const = 0;
};

/** Phase A: fixpoint item sizes for the procedure body. */
std::vector<unsigned> layoutBody(const ProcDef &proc,
                                 const CallSitePolicy &policy);

/** Total body size in bytes given the item sizes. */
unsigned bodySize(const std::vector<unsigned> &sizes);

/**
 * Phase B: produce the final bytes. body_addr is the absolute byte
 * address where the body will start (after the prologue).
 */
std::vector<std::uint8_t> encodeBody(const ProcDef &proc,
                                     const CallSitePolicy &policy,
                                     const std::vector<unsigned> &sizes,
                                     CodeByteAddr body_addr);

} // namespace fpc

#endif // FPC_PROGRAM_LOWER_HH
