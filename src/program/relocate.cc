#include "program/relocate.hh"

#include "common/logging.hh"
#include "isa/disasm.hh"

namespace fpc
{

CodeByteAddr
imageCodeEnd(const LoadedImage &image)
{
    const SystemLayout &layout = image.layout();
    CodeByteAddr end =
        static_cast<CodeByteAddr>(layout.codeRegionBase) * wordBytes;
    for (const PlacedModule &pm : image.modules()) {
        const CodeByteAddr seg_end = pm.segBase + pm.segBytes;
        end = std::max(end, seg_end);
    }
    return (end + layout.codeGranuleBytes - 1) /
           layout.codeGranuleBytes * layout.codeGranuleBytes;
}

namespace
{

/** True if any call site in the module is PC-relative (SDFC). */
bool
hasPcRelativeSites(const Memory &memory, const PlacedModule &pm)
{
    for (const PlacedProc &pp : pm.procs) {
        std::vector<std::uint8_t> bytes;
        bytes.reserve(pp.bodyBytes);
        for (unsigned i = 0; i < pp.bodyBytes; ++i)
            bytes.push_back(
                memory.peekByte(pp.prologueAddr + pp.prologueBytes + i));
        for (const auto &line : isa::disassemble(bytes))
            if (line.inst.cls == isa::OpClass::ShortDirectCall)
                return true;
    }
    return false;
}

} // namespace

unsigned
relocateModule(Memory &memory, LoadedImage &image,
               const std::string &module_name, CodeByteAddr new_base)
{
    const SystemLayout &layout = image.layout();
    auto it = image.moduleByName_.find(module_name);
    if (it == image.moduleByName_.end())
        fatal("relocate: no module named {}", module_name);
    PlacedModule &pm = image.modules_[it->second];

    // D3: direct linkage burns absolute addresses into callers; the
    // fat linkage likewise. Only the fully table-driven Mesa linkage
    // relocates without re-binding.
    if (pm.lowering != CallLowering::Mesa) {
        fatal("relocate: module {} uses {} linkage; relocation "
              "requires re-binding (D3)",
              module_name, callLoweringName(pm.lowering));
    }
    // A PC-relative call site inside the segment would break.
    if (hasPcRelativeSites(memory, pm)) {
        fatal("relocate: module {} contains SHORTDIRECTCALL sites",
              module_name);
    }

    if (new_base % layout.codeGranuleBytes != 0)
        fatal("relocate: target {} is not granule-aligned", new_base);
    if (new_base / wordBytes < layout.codeRegionBase ||
        (new_base + pm.segBytes + wordBytes - 1) / wordBytes >=
            layout.memWords) {
        fatal("relocate: target range out of the code region");
    }
    for (const PlacedModule &other : image.modules_) {
        if (&other == &pm)
            continue;
        const bool disjoint =
            new_base + pm.segBytes <= other.segBase ||
            other.segBase + other.segBytes <= new_base;
        if (!disjoint)
            fatal("relocate: target overlaps module {}",
                  other.src->name);
    }

    // Copy the segment and scrub the old bytes (catching any stale
    // absolute reference immediately).
    const CodeByteAddr old_base = pm.segBase;
    for (unsigned i = 0; i < pm.segBytes; ++i)
        memory.pokeByte(new_base + i, memory.peekByte(old_base + i));
    for (unsigned i = 0; i < pm.segBytes; ++i)
        memory.pokeByte(old_base + i, 0);

    // One word per instance: the code base in the global frame (T2).
    const Word new_seg = layout.codeSegNum(new_base);
    for (const PlacedInstance &inst : image.instances_) {
        if (inst.moduleIndex == it->second)
            memory.poke(inst.gfAddr, new_seg);
    }

    // Fix the image's own records.
    pm.segBase = new_base;
    for (PlacedProc &pp : pm.procs)
        pp.prologueAddr = pp.prologueAddr - old_base + new_base;

    // The segment moved and every instance's code-base word changed;
    // force the host-side caches to drop predecoded instructions and
    // memoized link resolutions (the pokes above bump the epoch too,
    // but relocation must invalidate by contract, not by side effect).
    memory.invalidateCode();

    return pm.segBytes;
}

} // namespace fpc
