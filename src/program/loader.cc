#include "program/loader.hh"

#include <algorithm>

#include "common/bits.hh"
#include "common/logging.hh"
#include "isa/decode.hh"
#include "program/lower.hh"
#include "xfer/context.hh"

namespace fpc
{

const char *
callLoweringName(CallLowering lowering)
{
    switch (lowering) {
      case CallLowering::Fat: return "fat";
      case CallLowering::Mesa: return "mesa";
      case CallLowering::Direct: return "direct";
      default: return "?";
    }
}

CallLowering
LinkPlan::loweringFor(const std::string &target_module) const
{
    auto it = targetOverride.find(target_module);
    return it == targetOverride.end() ? lowering : it->second;
}

const PlacedModule &
LoadedImage::module(const std::string &name) const
{
    auto it = moduleByName_.find(name);
    if (it == moduleByName_.end())
        fatal("no module named {}", name);
    return modules_[it->second];
}

const PlacedInstance &
LoadedImage::instance(const std::string &module_name,
                      unsigned ordinal) const
{
    auto it = moduleByName_.find(module_name);
    if (it == moduleByName_.end())
        fatal("no module named {}", module_name);
    const auto &of_module = instancesOfModule_[it->second];
    if (ordinal >= of_module.size())
        fatal("module {} has no instance {}", module_name, ordinal);
    return instances_[of_module[ordinal]];
}

Word
LoadedImage::procDescriptor(const std::string &module_name,
                            const std::string &proc_name,
                            unsigned instance_ordinal) const
{
    const PlacedModule &pm = module(module_name);
    const int proc = pm.src->procIndex(proc_name);
    if (proc < 0)
        fatal("module {} has no procedure {}", module_name, proc_name);
    const PlacedInstance &inst = instance(module_name, instance_ordinal);
    const unsigned ep = static_cast<unsigned>(proc);
    return packProcDesc(inst.gftBase + ep / 32, ep % 32);
}

CodeByteAddr
LoadedImage::procAddr(const std::string &module_name,
                      const std::string &proc_name) const
{
    const PlacedModule &pm = module(module_name);
    const int proc = pm.src->procIndex(proc_name);
    if (proc < 0)
        fatal("module {} has no procedure {}", module_name, proc_name);
    return pm.procs[static_cast<unsigned>(proc)].prologueAddr;
}

Addr
LoadedImage::gfAddr(const std::string &module_name,
                    unsigned instance_ordinal) const
{
    return instance(module_name, instance_ordinal).gfAddr;
}

CountT
LoadedImage::codeBytes() const
{
    CountT total = 0;
    for (const auto &m : modules_)
        total += m.segBytes;
    return total;
}

CountT
LoadedImage::lvWords() const
{
    CountT total = 0;
    for (const auto &inst : instances_)
        total += modules_[inst.moduleIndex].lvCount;
    return total;
}

Loader::Loader(const SystemLayout &layout, SizeClasses classes)
    : layout_(layout), classes_(std::move(classes))
{
    layout_.validate();
}

void
Loader::add(Module module)
{
    module.validate();
    for (const auto &m : modules_)
        if (m.name == module.name)
            fatal("duplicate module name {}", module.name);
    modules_.push_back(std::move(module));
}

void
Loader::addInstance(const std::string &module_name)
{
    for (unsigned i = 0; i < modules_.size(); ++i) {
        if (modules_[i].name == module_name) {
            extraInstances_.push_back(i);
            return;
        }
    }
    fatal("addInstance: no module named {}", module_name);
}

namespace
{

/** Resolution of one extern reference. */
struct ResolvedExtern
{
    unsigned targetModule = 0;
    unsigned targetProc = 0;
    unsigned targetInstance = 0;
    CallLowering siteLowering = CallLowering::Mesa;
    bool needsLvSlot = false;
    CountT staticUses = 0;
};

/** The loader's CallSitePolicy for one module. */
class ModulePolicy : public CallSitePolicy
{
  public:
    ModulePolicy(const Module &src, CallLowering own_lowering,
                 bool short_calls,
                 const std::vector<ResolvedExtern> &externs,
                 const std::vector<int> &lv_index)
        : src_(src), ownLowering_(own_lowering),
          shortCalls_(short_calls), externs_(externs), lvIndex_(lv_index)
    {}

    /** Phase B inputs, filled in once layout is known. */
    const std::vector<PlacedModule> *placedModules = nullptr;
    const std::vector<PlacedInstance> *placedInstances = nullptr;
    /** instances-of-module table (first = default instance). */
    const std::vector<std::vector<unsigned>> *instancesOf = nullptr;
    unsigned selfModuleIndex = 0;

    unsigned
    extCallSize(unsigned extern_id) const override
    {
        const ResolvedExtern &ext = externs_[extern_id];
        switch (ext.siteLowering) {
          case CallLowering::Mesa: {
            const int lv = lvIndex_[extern_id];
            return lv >= 0 && lv < 8 ? 1 : 2;
          }
          case CallLowering::Direct:
            return shortCalls_ ? 3 : 4;
          case CallLowering::Fat:
            return 6;
        }
        panic("extCallSize: bad lowering");
    }

    unsigned
    localCallSize(unsigned proc_index) const override
    {
        switch (ownLowering_) {
          case CallLowering::Mesa:
            return proc_index < 8 ? 1 : 2;
          case CallLowering::Direct:
            return shortCalls_ ? 3 : 4;
          case CallLowering::Fat:
            return 6;
        }
        panic("localCallSize: bad lowering");
    }

    void
    encodeExtCall(std::vector<std::uint8_t> &out, unsigned extern_id,
                  CodeByteAddr site_addr) const override
    {
        const ResolvedExtern &ext = externs_[extern_id];
        switch (ext.siteLowering) {
          case CallLowering::Mesa: {
            const int lv = lvIndex_[extern_id];
            if (lv < 0)
                panic("mesa call without LV slot");
            isa::encode(out, isa::extCallOp(static_cast<unsigned>(lv)),
                        lv);
            return;
          }
          case CallLowering::Direct:
            encodeDirect(out, targetAddr(ext), site_addr);
            return;
          case CallLowering::Fat:
            isa::encode(out, isa::Op::FCALL,
                        static_cast<std::int32_t>(targetAddr(ext)),
                        static_cast<std::int32_t>(targetGf(ext)));
            return;
        }
        panic("encodeExtCall: bad lowering");
    }

    void
    encodeLocalCall(std::vector<std::uint8_t> &out, unsigned proc_index,
                    CodeByteAddr site_addr) const override
    {
        switch (ownLowering_) {
          case CallLowering::Mesa:
            isa::encode(out, isa::localCallOp(proc_index),
                        static_cast<std::int32_t>(proc_index));
            return;
          case CallLowering::Direct:
            encodeDirect(out, ownProcAddr(proc_index), site_addr);
            return;
          case CallLowering::Fat:
            isa::encode(out, isa::Op::FCALL,
                        static_cast<std::int32_t>(ownProcAddr(proc_index)),
                        static_cast<std::int32_t>(ownGf()));
            return;
        }
        panic("encodeLocalCall: bad lowering");
    }

    unsigned
    loadDescLvIndex(unsigned extern_id) const override
    {
        const int lv = lvIndex_[extern_id];
        if (lv < 0)
            panic("LPD of extern without LV slot");
        return static_cast<unsigned>(lv);
    }

  private:
    CodeByteAddr
    targetAddr(const ResolvedExtern &ext) const
    {
        const PlacedModule &pm = (*placedModules)[ext.targetModule];
        return pm.procs[ext.targetProc].prologueAddr;
    }

    Word
    targetGf(const ResolvedExtern &ext) const
    {
        const unsigned inst_index =
            (*instancesOf)[ext.targetModule][ext.targetInstance];
        return static_cast<Word>((*placedInstances)[inst_index].gfAddr);
    }

    CodeByteAddr
    ownProcAddr(unsigned proc_index) const
    {
        return (*placedModules)[selfModuleIndex]
            .procs[proc_index]
            .prologueAddr;
    }

    Word
    ownGf() const
    {
        const unsigned inst_index = (*instancesOf)[selfModuleIndex][0];
        return static_cast<Word>((*placedInstances)[inst_index].gfAddr);
    }

    void
    encodeDirect(std::vector<std::uint8_t> &out, CodeByteAddr target,
                 CodeByteAddr site_addr) const
    {
        if (shortCalls_) {
            const std::int32_t disp = static_cast<std::int32_t>(target) -
                                      static_cast<std::int32_t>(site_addr);
            if (!fitsSigned(disp, 20)) {
                fatal("SHORTDIRECTCALL displacement {} exceeds one "
                      "megabyte",
                      disp);
            }
            const std::uint32_t raw =
                static_cast<std::uint32_t>(disp) & 0xFFFFF;
            const auto op = static_cast<isa::Op>(
                static_cast<unsigned>(isa::Op::SDFC0) + (raw >> 16));
            isa::encode(out, op, disp);
        } else {
            isa::encode(out, isa::Op::DFC,
                        static_cast<std::int32_t>(target));
        }
    }

    [[maybe_unused]] const Module &src_;
    CallLowering ownLowering_;
    bool shortCalls_;
    const std::vector<ResolvedExtern> &externs_;
    const std::vector<int> &lvIndex_;
};

unsigned
alignUp(unsigned value, unsigned alignment)
{
    return (value + alignment - 1) / alignment * alignment;
}

} // namespace

LoadedImage
Loader::load(Memory &memory, const LinkPlan &plan) const
{
    if (modules_.empty())
        fatal("nothing to load");

    LoadedImage image;
    image.layout_ = layout_;
    image.classes_ = classes_;
    image.moduleStore_ =
        std::make_shared<const std::vector<Module>>(modules_);
    const std::vector<Module> &modules = *image.moduleStore_;

    const unsigned num_modules = modules_.size();
    std::vector<unsigned> instance_count(num_modules, 1);
    for (unsigned mod : extraInstances_)
        ++instance_count[mod];

    for (unsigned m = 0; m < num_modules; ++m)
        image.moduleByName_[modules_[m].name] = m;

    // Effective lowering of each module *as a target* (and hence its
    // prologue style). Direct and Fat burn a single global frame
    // address into the code, which is impossible with multiple
    // instances (paper D2): fall back to the general scheme.
    std::vector<CallLowering> effective(num_modules);
    for (unsigned m = 0; m < num_modules; ++m) {
        CallLowering want = plan.loweringFor(modules_[m].name);
        if (want != CallLowering::Mesa && instance_count[m] > 1) {
            warn("module {} has {} instances; falling back to mesa "
                 "linkage (D2)",
                 modules_[m].name, instance_count[m]);
            want = CallLowering::Mesa;
        }
        effective[m] = want;
    }

    // Resolve externs and decide per-site lowering.
    std::vector<std::vector<ResolvedExtern>> resolved(num_modules);
    for (unsigned m = 0; m < num_modules; ++m) {
        const Module &mod = modules_[m];
        resolved[m].resize(mod.externs.size());
        for (unsigned e = 0; e < mod.externs.size(); ++e) {
            const ExternRef &ref = mod.externs[e];
            auto it = image.moduleByName_.find(ref.module);
            if (it == image.moduleByName_.end())
                fatal("module {}: unresolved extern {}.{}", mod.name,
                      ref.module, ref.proc);
            ResolvedExtern &res = resolved[m][e];
            res.targetModule = it->second;
            const int proc = modules_[res.targetModule].procIndex(ref.proc);
            if (proc < 0)
                fatal("module {}: no procedure {} in {}", mod.name,
                      ref.proc, ref.module);
            res.targetProc = static_cast<unsigned>(proc);
            if (ref.instance >= instance_count[res.targetModule])
                fatal("module {}: extern {}.{} instance {} out of range",
                      mod.name, ref.module, ref.proc, ref.instance);
            res.targetInstance = ref.instance;
            res.siteLowering = effective[res.targetModule];
            // A non-default instance cannot use the burned-in address.
            if (ref.instance > 0)
                res.siteLowering = CallLowering::Mesa;
        }
        // Count static uses and LV needs.
        for (const auto &proc : mod.procs) {
            for (const auto &inst : proc.code) {
                if (inst.kind == AsmInst::Kind::ExtCall) {
                    auto &res = resolved[m][inst.a];
                    ++res.staticUses;
                    if (res.siteLowering == CallLowering::Mesa)
                        res.needsLvSlot = true;
                } else if (inst.kind == AsmInst::Kind::LoadDesc) {
                    auto &res = resolved[m][inst.a];
                    ++res.staticUses;
                    res.needsLvSlot = true;
                }
            }
        }
    }

    // Assign LV slots, hottest externs first so they get the one-byte
    // EFC0..EFC7 opcodes.
    std::vector<std::vector<int>> lv_index(num_modules);
    image.modules_.resize(num_modules);
    for (unsigned m = 0; m < num_modules; ++m) {
        const Module &mod = modules_[m];
        lv_index[m].assign(mod.externs.size(), -1);
        std::vector<unsigned> slots;
        for (unsigned e = 0; e < mod.externs.size(); ++e)
            if (resolved[m][e].needsLvSlot)
                slots.push_back(e);
        if (plan.sortLvByUse) {
            std::stable_sort(slots.begin(), slots.end(),
                             [&](unsigned a, unsigned b) {
                                 return resolved[m][a].staticUses >
                                        resolved[m][b].staticUses;
                             });
        }
        if (slots.size() > 256)
            fatal("module {}: {} link-vector slots exceed the EFCB "
                  "byte index",
                  mod.name, slots.size());
        for (unsigned i = 0; i < slots.size(); ++i)
            lv_index[m][slots[i]] = static_cast<int>(i);

        PlacedModule &pm = image.modules_[m];
        pm.src = &modules[m];
        pm.lowering = effective[m];
        pm.lvIndexOfExtern = lv_index[m];
        pm.lvSlotExtern = slots;
        pm.lvCount = slots.size();
    }

    // Phase A: lay out procedure bodies and code segments.
    std::vector<ModulePolicy> policies;
    policies.reserve(num_modules);
    for (unsigned m = 0; m < num_modules; ++m) {
        policies.emplace_back(modules_[m], effective[m], plan.shortCalls,
                              resolved[m], lv_index[m]);
    }

    std::vector<std::vector<std::vector<unsigned>>> sizes(num_modules);
    CodeByteAddr next_seg =
        static_cast<CodeByteAddr>(layout_.codeRegionBase) * wordBytes;
    for (unsigned m = 0; m < num_modules; ++m) {
        const Module &mod = modules_[m];
        PlacedModule &pm = image.modules_[m];
        pm.segBase = next_seg;
        pm.procs.resize(mod.procs.size());
        sizes[m].resize(mod.procs.size());

        const unsigned prologue_bytes =
            effective[m] == CallLowering::Direct ? 4 : 1;
        unsigned offset = 2 * mod.procs.size(); // the entry vector
        for (unsigned p = 0; p < mod.procs.size(); ++p) {
            const ProcDef &proc = mod.procs[p];
            sizes[m][p] = layoutBody(proc, policies[m]);

            PlacedProc &pp = pm.procs[p];
            pp.prologueAddr = pm.segBase + offset;
            pp.prologueBytes = prologue_bytes;
            pp.bodyBytes = bodySize(sizes[m][p]);
            if (!classes_.fits(proc.framePayloadWords()))
                fatal("module {} proc {}: frame of {} words exceeds the "
                      "largest size class",
                      mod.name, proc.name, proc.framePayloadWords());
            pp.fsi = classes_.fsiFor(proc.framePayloadWords());
            const unsigned fsi_off =
                offset + (effective[m] == CallLowering::Direct ? 3 : 0);
            if (fsi_off > 0xFFFF)
                fatal("module {}: code segment exceeds 64 KB", mod.name);
            pp.evOffset = static_cast<Word>(fsi_off);
            offset += prologue_bytes + pp.bodyBytes;

            // Call-site accounting for the space studies.
            for (unsigned i = 0; i < proc.code.size(); ++i) {
                const auto kind = proc.code[i].kind;
                if (kind == AsmInst::Kind::ExtCall ||
                    kind == AsmInst::Kind::LocalCall) {
                    ++pm.callSites;
                    pm.callSiteBytes += sizes[m][p][i];
                }
            }
        }
        pm.segBytes = offset;
        next_seg = alignUp(pm.segBase + pm.segBytes,
                           layout_.codeGranuleBytes);
        if (next_seg / wordBytes > layout_.memWords)
            fatal("out of code space loading module {}", mod.name);
    }

    // Place instances in the global region and assign GFT entries.
    Addr cur = layout_.globalBase;
    image.instancesOfModule_.resize(num_modules);
    for (unsigned m = 0; m < num_modules; ++m) {
        const Module &mod = modules_[m];
        const unsigned gft_count =
            std::max<unsigned>(1, (mod.procs.size() + 31) / 32);
        for (unsigned ord = 0; ord < instance_count[m]; ++ord) {
            PlacedInstance inst;
            inst.moduleIndex = m;
            inst.instanceOrdinal = ord;
            inst.gfWords = 1 + mod.numGlobals;
            const Addr gf =
                alignUp(cur + image.modules_[m].lvCount, 4);
            inst.gfAddr = gf;
            inst.gftBase = image.gftUsed_;
            inst.gftCount = gft_count;
            image.gftUsed_ += gft_count;
            if (image.gftUsed_ > layout_.gftEntries)
                fatal("out of GFT entries at module {}", mod.name);
            cur = gf + inst.gfWords;
            if (cur > layout_.globalEnd)
                fatal("out of global-frame space at module {}",
                      mod.name);
            image.instancesOfModule_[m].push_back(
                image.instances_.size());
            image.instances_.push_back(inst);
        }
    }

    // Phase B: encode and write everything into memory.
    for (auto &policy : policies) {
        policy.placedModules = &image.modules_;
        policy.placedInstances = &image.instances_;
        policy.instancesOf = &image.instancesOfModule_;
    }

    for (unsigned m = 0; m < num_modules; ++m) {
        const Module &mod = modules_[m];
        PlacedModule &pm = image.modules_[m];
        policies[m].selfModuleIndex = m;

        // Entry vector: one word per procedure at the code base.
        for (unsigned p = 0; p < mod.procs.size(); ++p) {
            memory.poke(pm.segBase / wordBytes + p,
                        pm.procs[p].evOffset);
        }

        for (unsigned p = 0; p < mod.procs.size(); ++p) {
            const ProcDef &proc = mod.procs[p];
            const PlacedProc &pp = pm.procs[p];
            CodeByteAddr at = pp.prologueAddr;

            if (effective[m] == CallLowering::Direct) {
                // The §6 header: SETGLOBALFRAME GF; ALLOCATEFRAME fsi
                // as two bare words before the first instruction.
                const Word gf = static_cast<Word>(
                    image.instances_[image.instancesOfModule_[m][0]]
                        .gfAddr);
                memory.pokeByte(at++, static_cast<std::uint8_t>(gf >> 8));
                memory.pokeByte(at++,
                                static_cast<std::uint8_t>(gf & 0xFF));
                memory.pokeByte(at++, 0);
                memory.pokeByte(at++,
                                static_cast<std::uint8_t>(pp.fsi));
            } else {
                memory.pokeByte(at++,
                                static_cast<std::uint8_t>(pp.fsi));
            }

            const auto bytes =
                encodeBody(proc, policies[m], sizes[m][p], at);
            if (bytes.size() != pp.bodyBytes)
                panic("module {} proc {}: body size drifted ({} != {})",
                      mod.name, proc.name, bytes.size(), pp.bodyBytes);
            for (std::uint8_t b : bytes)
                memory.pokeByte(at++, b);
        }
    }

    for (const PlacedInstance &inst : image.instances_) {
        const Module &mod = modules_[inst.moduleIndex];
        const PlacedModule &pm = image.modules_[inst.moduleIndex];

        // GFT entries, one per 32-entry bias window.
        for (unsigned b = 0; b < inst.gftCount; ++b) {
            memory.poke(layout_.gftAddr + inst.gftBase + b,
                        packGftEntry({inst.gfAddr, b}, layout_));
        }

        // Link vector, growing down from the global frame.
        for (unsigned slot = 0; slot < pm.lvCount; ++slot) {
            const ResolvedExtern &res =
                resolved[inst.moduleIndex][pm.lvSlotExtern[slot]];
            const PlacedInstance &target =
                image.instances_[image.instancesOfModule_
                                     [res.targetModule]
                                     [res.targetInstance]];
            const Word desc =
                packProcDesc(target.gftBase + res.targetProc / 32,
                             res.targetProc % 32);
            memory.poke(inst.gfAddr - 1 - slot, desc);
        }

        // The global frame: code base word then the globals.
        memory.poke(inst.gfAddr, layout_.codeSegNum(pm.segBase));
        for (unsigned g = 0; g < mod.numGlobals; ++g) {
            const Word init =
                g < mod.globalInit.size() ? mod.globalInit[g] : 0;
            memory.poke(inst.gfAddr + 1 + g, init);
        }
    }

    // Every poke above already advanced the memory's mutation epoch,
    // but loading is *the* event the host-side caches must observe
    // (new code, new tables); make the invalidation explicit so it
    // survives any change to poke's epoch policy.
    memory.invalidateCode();

    return image;
}

} // namespace fpc
