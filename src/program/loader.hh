/**
 * @file
 * Binding and loading: turns a set of Modules into an executable
 * memory image under a chosen LinkPlan.
 *
 * The LinkPlan is the paper's §6 knob. With CallLowering::Mesa every
 * external call goes through the four levels of indirection of §5.1
 * (Figure 1): call site -> link vector -> GFT -> global frame -> entry
 * vector. With CallLowering::Direct, call sites become DIRECTCALLs (or
 * three-byte SHORTDIRECTCALLs when enabled and in range) straight to
 * the procedure's code, where the loader has planted the global frame
 * address and frame size index (the "SETGLOBALFRAME GF /
 * ALLOCATEFRAME fsi" words); the link-vector entries for those
 * targets disappear, which is D1's space arithmetic. With
 * CallLowering::Fat the full descriptor is an inline literal at every
 * call site, §4's simple implementation.
 *
 * Converting between representations is just reloading with a
 * different plan — the §8 observation that "the programming
 * environment can automatically convert between the two
 * representations when appropriate". Direct linkage to a module with
 * multiple instances is refused (D2) and falls back to Mesa linkage.
 */

#ifndef FPC_PROGRAM_LOADER_HH
#define FPC_PROGRAM_LOADER_HH

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hh"
#include "frames/size_classes.hh"
#include "memory/memory.hh"
#include "program/module.hh"
#include "xfer/layout.hh"

namespace fpc
{

/** How call sites are lowered (per target module). */
enum class CallLowering
{
    Fat,   ///< §4: six-byte inline descriptor (FCALL)
    Mesa,  ///< §5: EFC/LFC through LV/GFT/EV
    Direct ///< §6: DFC/SDFC to a planted code address
};

const char *callLoweringName(CallLowering lowering);

/** The bind-time decisions. */
struct LinkPlan
{
    CallLowering lowering = CallLowering::Mesa;
    /** Use SHORTDIRECTCALL when the displacement fits 20 bits. */
    bool shortCalls = false;
    /** Renumber link-vector slots so the statically most used externs
     *  get the one-byte EFC0..EFC7 opcodes (§5.1). */
    bool sortLvByUse = true;
    /** Per-target-module overrides of the lowering. */
    std::map<std::string, CallLowering> targetOverride;

    CallLowering loweringFor(const std::string &target_module) const;
};

/** Where one procedure landed in the image. */
struct PlacedProc
{
    CodeByteAddr prologueAddr = 0; ///< absolute byte address
    unsigned prologueBytes = 0;    ///< 1 (fsi byte) or 4 (direct header)
    unsigned bodyBytes = 0;
    unsigned fsi = 0;
    Word evOffset = 0; ///< EV entry value (byte offset of the fsi byte)
};

/** Where one module's code landed. */
struct PlacedModule
{
    const Module *src = nullptr;
    CallLowering lowering = CallLowering::Mesa;
    CodeByteAddr segBase = 0; ///< byte address of the code segment
    unsigned segBytes = 0;    ///< EV + prologues + bodies
    std::vector<PlacedProc> procs;
    /** LV slot for each extern, or -1 if no slot was needed. */
    std::vector<int> lvIndexOfExtern;
    /** Extern bound by each LV slot. */
    std::vector<unsigned> lvSlotExtern;
    unsigned lvCount = 0;
    /** Static call-site byte counts, for the space studies. */
    CountT callSiteBytes = 0;
    CountT callSites = 0;
};

/** One module instance's data. */
struct PlacedInstance
{
    unsigned moduleIndex = 0;
    unsigned instanceOrdinal = 0; ///< 0 = the default instance
    Addr gfAddr = 0;
    unsigned gfWords = 0; ///< 1 + numGlobals
    unsigned gftBase = 0; ///< first GFT index
    unsigned gftCount = 0;
};

/** The bound image: lookup tables over the loaded memory. */
class LoadedImage
{
  public:
    const SystemLayout &layout() const { return layout_; }
    const SizeClasses &classes() const { return classes_; }

    const std::vector<PlacedModule> &modules() const { return modules_; }
    const std::vector<PlacedInstance> &instances() const
    {
        return instances_;
    }

    const PlacedModule &module(const std::string &name) const;
    const PlacedInstance &instance(const std::string &module_name,
                                   unsigned ordinal = 0) const;

    /** Packed procedure-descriptor context for Mod.proc. */
    Word procDescriptor(const std::string &module_name,
                        const std::string &proc_name,
                        unsigned instance = 0) const;

    /** Absolute byte address of the procedure's prologue. */
    CodeByteAddr procAddr(const std::string &module_name,
                          const std::string &proc_name) const;

    /** Global frame address of an instance. */
    Addr gfAddr(const std::string &module_name,
                unsigned instance = 0) const;

    /** Total image code bytes (all segments). */
    CountT codeBytes() const;
    /** Total link-vector words across instances. */
    CountT lvWords() const;
    /** GFT entries consumed. */
    CountT gftEntriesUsed() const { return gftUsed_ - 1; }

  private:
    friend class Loader;
    friend unsigned relocateModule(Memory &memory, LoadedImage &image,
                                   const std::string &module_name,
                                   CodeByteAddr new_base);

    SystemLayout layout_;
    SizeClasses classes_ = SizeClasses::standard();
    /** Owns the module definitions PlacedModule::src points into, so
     *  the image outlives the loader and survives copies. */
    std::shared_ptr<const std::vector<Module>> moduleStore_;
    std::vector<PlacedModule> modules_;
    std::vector<PlacedInstance> instances_;
    std::map<std::string, unsigned> moduleByName_;
    /** instances_ indices for each module, by ordinal. */
    std::vector<std::vector<unsigned>> instancesOfModule_;
    unsigned gftUsed_ = 1; // index 0 reserved
};

/** Binds modules and writes the image into simulated memory. */
class Loader
{
  public:
    Loader(const SystemLayout &layout, SizeClasses classes);

    /** Register a module (validated here). */
    void add(Module module);

    /** Create an additional instance of a registered module. */
    void addInstance(const std::string &module_name);

    /** Bind everything under the plan and write the image. */
    LoadedImage load(Memory &memory, const LinkPlan &plan) const;

  private:
    SystemLayout layout_;
    SizeClasses classes_;
    std::vector<Module> modules_;
    std::vector<unsigned> extraInstances_; ///< module index per extra
};

} // namespace fpc

#endif // FPC_PROGRAM_LOADER_HH
