/**
 * @file
 * The object-program representation: what the compiler produces
 * (paper §2's "encoding" level, before it is bound into an image).
 *
 * Procedures are kept as a small instruction IR rather than raw bytes
 * because the size of a call site depends on the linkage chosen at
 * bind time (§6: the same program can be encoded with Mesa links,
 * DIRECTCALLs, or §4's inline descriptors, "the programming
 * environment can automatically convert between the two
 * representations when appropriate"). The loader lowers the IR to
 * bytes once a LinkPlan is fixed.
 *
 * A Module mirrors a Mesa module (§5): a named collection of
 * procedures sharing a global frame, compiled together so that
 * intra-module binding (LOCALCALL entry-vector indices) happens at
 * compile time, with a link vector of symbolic references to external
 * procedures.
 */

#ifndef FPC_PROGRAM_MODULE_HH
#define FPC_PROGRAM_MODULE_HH

#include <string>
#include <vector>

#include "common/types.hh"
#include "isa/opcodes.hh"

namespace fpc
{

/** A symbolic reference to an external procedure. */
struct ExternRef
{
    std::string module;
    std::string proc;
    /** Which instance of the target module to bind to (D2: multiple
     *  instances force the general linkage). */
    unsigned instance = 0;
};

/** One IR instruction. */
struct AsmInst
{
    enum class Kind : std::uint8_t
    {
        Plain,       ///< a concrete opcode; a = operand (b for FCALL)
        ExtCall,     ///< call extern; a = extern id
        LocalCall,   ///< call a procedure here; a = proc index
        LoadDesc,    ///< push the descriptor of extern a (LPD)
        Jump,        ///< unconditional; a = label id
        JumpZero,    ///< pop, jump if zero; a = label id
        JumpNotZero, ///< pop, jump if nonzero; a = label id
        Label        ///< bind label a here
    };

    Kind kind = Kind::Plain;
    isa::Op op = isa::Op::NOOP;
    std::int32_t a = 0;
    std::int32_t b = 0;

    static AsmInst plain(isa::Op op, std::int32_t a = 0,
                         std::int32_t b = 0);
    static AsmInst extCall(unsigned extern_id);
    static AsmInst localCall(unsigned proc_index);
    static AsmInst loadDesc(unsigned extern_id);
    static AsmInst jump(Kind kind, unsigned label_id);
    static AsmInst label(unsigned label_id);
};

/** One procedure definition. */
struct ProcDef
{
    std::string name;
    /** Argument slots (locals 0 .. numArgs-1 at entry). */
    unsigned numArgs = 0;
    /** Total variable slots, including the arguments. */
    unsigned numVars = 0;
    /** Extra frame words beyond the variables (spill/temp space). */
    unsigned extraWords = 0;
    /** Number of jump labels used in code. */
    unsigned numLabels = 0;
    std::vector<AsmInst> code;

    /** Frame payload words this procedure needs. */
    unsigned framePayloadWords() const;
};

/** A compiled module. */
struct Module
{
    std::string name;
    std::vector<ProcDef> procs;
    std::vector<ExternRef> externs;
    /** Global variable count (the code base word is extra). */
    unsigned numGlobals = 0;
    /** Initial values for the first globals (rest zero). */
    std::vector<Word> globalInit;

    /** Index of the named procedure; -1 if absent. */
    int procIndex(const std::string &proc_name) const;

    /** Basic well-formedness checks; fatal on violation. */
    void validate() const;
};

} // namespace fpc

#endif // FPC_PROGRAM_MODULE_HH
