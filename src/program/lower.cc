#include "program/lower.hh"

#include "common/bits.hh"
#include "common/logging.hh"
#include "isa/decode.hh"

namespace fpc
{

namespace
{

using Kind = AsmInst::Kind;

bool
isJump(Kind kind)
{
    return kind == Kind::Jump || kind == Kind::JumpZero ||
           kind == Kind::JumpNotZero;
}

/** Minimal size of an item, before any growth. */
unsigned
minimalSize(const AsmInst &inst, const CallSitePolicy &policy)
{
    switch (inst.kind) {
      case Kind::Plain:
        return isa::instLength(static_cast<std::uint8_t>(inst.op));
      case Kind::ExtCall:
        return policy.extCallSize(static_cast<unsigned>(inst.a));
      case Kind::LocalCall:
        return policy.localCallSize(static_cast<unsigned>(inst.a));
      case Kind::LoadDesc:
        return 2; // LPD n
      case Kind::Jump:
        return 1; // J2..J8 optimistically
      case Kind::JumpZero:
      case Kind::JumpNotZero:
        return 2; // JZB/JNZB optimistically
      case Kind::Label:
        return 0;
    }
    panic("minimalSize: bad kind");
}

/** Size a jump needs for the given displacement. */
unsigned
neededJumpSize(Kind kind, std::int32_t disp)
{
    if (kind == Kind::Jump) {
        if (disp >= 2 && disp <= 8)
            return 1;
        if (fitsSigned(disp, 8))
            return 2;
        return 3;
    }
    // Conditional: JZB/JNZB reach a signed byte; otherwise an inverted
    // short conditional hops over a word jump (2 + 3 bytes).
    if (fitsSigned(disp, 8))
        return 2;
    return 5;
}

struct Offsets
{
    std::vector<unsigned> itemOffset;
    std::vector<std::int32_t> labelOffset;
    unsigned total = 0;
};

Offsets
computeOffsets(const ProcDef &proc, const std::vector<unsigned> &sizes)
{
    Offsets out;
    out.itemOffset.resize(proc.code.size());
    out.labelOffset.assign(proc.numLabels, -1);
    unsigned pos = 0;
    for (std::size_t i = 0; i < proc.code.size(); ++i) {
        out.itemOffset[i] = pos;
        if (proc.code[i].kind == Kind::Label)
            out.labelOffset[proc.code[i].a] = static_cast<std::int32_t>(pos);
        pos += sizes[i];
    }
    out.total = pos;
    return out;
}

std::int32_t
labelTarget(const Offsets &offsets, const ProcDef &proc, std::int32_t id)
{
    const std::int32_t off = offsets.labelOffset.at(id);
    if (off < 0)
        fatal("proc {}: label {} never bound", proc.name, id);
    return off;
}

} // namespace

std::vector<unsigned>
layoutBody(const ProcDef &proc, const CallSitePolicy &policy)
{
    std::vector<unsigned> sizes(proc.code.size());
    for (std::size_t i = 0; i < proc.code.size(); ++i)
        sizes[i] = minimalSize(proc.code[i], policy);

    // Grow-only fixpoint: every iteration either grows some jump or
    // terminates, so this runs at most O(jumps) rounds.
    bool changed = true;
    while (changed) {
        changed = false;
        const Offsets offsets = computeOffsets(proc, sizes);
        for (std::size_t i = 0; i < proc.code.size(); ++i) {
            const AsmInst &inst = proc.code[i];
            if (!isJump(inst.kind))
                continue;
            const std::int32_t disp =
                labelTarget(offsets, proc, inst.a) -
                static_cast<std::int32_t>(offsets.itemOffset[i]);
            const unsigned need = neededJumpSize(inst.kind, disp);
            if (need > sizes[i]) {
                sizes[i] = need;
                changed = true;
            }
        }
    }
    return sizes;
}

unsigned
bodySize(const std::vector<unsigned> &sizes)
{
    unsigned total = 0;
    for (unsigned s : sizes)
        total += s;
    return total;
}

namespace
{

void
encodeJump(std::vector<std::uint8_t> &out, Kind kind, unsigned size,
           std::int32_t disp)
{
    using isa::Op;
    switch (kind) {
      case Kind::Jump:
        if (size == 1) {
            if (disp < 2 || disp > 8)
                panic("one-byte jump displacement {} out of range", disp);
            isa::encode(out, static_cast<Op>(
                                 static_cast<unsigned>(Op::J2) + disp - 2));
        } else if (size == 2) {
            isa::encode(out, Op::JB, disp);
        } else {
            isa::encode(out, Op::JW, disp);
        }
        return;
      case Kind::JumpZero:
      case Kind::JumpNotZero: {
        const Op near_op =
            kind == Kind::JumpZero ? Op::JZB : Op::JNZB;
        if (size == 2) {
            isa::encode(out, near_op, disp);
        } else {
            // Inverted short conditional over a word jump. The inner
            // JW starts two bytes into this item.
            const Op inverted =
                kind == Kind::JumpZero ? Op::JNZB : Op::JZB;
            isa::encode(out, inverted, 5);
            isa::encode(out, Op::JW, disp - 2);
        }
        return;
      }
      default:
        panic("encodeJump: bad kind");
    }
}

} // namespace

std::vector<std::uint8_t>
encodeBody(const ProcDef &proc, const CallSitePolicy &policy,
           const std::vector<unsigned> &sizes, CodeByteAddr body_addr)
{
    const Offsets offsets = computeOffsets(proc, sizes);
    std::vector<std::uint8_t> out;
    out.reserve(offsets.total);

    for (std::size_t i = 0; i < proc.code.size(); ++i) {
        const AsmInst &inst = proc.code[i];
        const std::size_t before = out.size();
        if (before != offsets.itemOffset[i])
            panic("encodeBody: drifted at item {} ({} != {})", i, before,
                  offsets.itemOffset[i]);
        const CodeByteAddr site = body_addr + offsets.itemOffset[i];

        switch (inst.kind) {
          case Kind::Plain:
            isa::encode(out, inst.op, inst.a, inst.b);
            break;
          case Kind::ExtCall:
            policy.encodeExtCall(out, static_cast<unsigned>(inst.a),
                                 site);
            break;
          case Kind::LocalCall:
            policy.encodeLocalCall(out, static_cast<unsigned>(inst.a),
                                   site);
            break;
          case Kind::LoadDesc:
            isa::encode(out, isa::Op::LPD,
                        static_cast<std::int32_t>(policy.loadDescLvIndex(
                            static_cast<unsigned>(inst.a))));
            break;
          case Kind::Jump:
          case Kind::JumpZero:
          case Kind::JumpNotZero: {
            const std::int32_t disp =
                labelTarget(offsets, proc, inst.a) -
                static_cast<std::int32_t>(offsets.itemOffset[i]);
            encodeJump(out, inst.kind, sizes[i], disp);
            break;
          }
          case Kind::Label:
            break;
        }

        if (out.size() - before != sizes[i]) {
            panic("encodeBody: item {} produced {} bytes, expected {}",
                  i, out.size() - before, sizes[i]);
        }
    }
    return out;
}

} // namespace fpc
