/**
 * @file
 * Code-segment relocation (paper §5.1, T2/D3).
 *
 * With the Mesa linkage every reference to a module's code funnels
 * through the code-base word in its global frame, and every saved PC
 * is code-base-relative, so a code segment can be moved by copying
 * the bytes and updating one word per instance — "this allows a
 * simple and efficient implementation of code swapping and
 * relocation". Even activations suspended inside the module resume
 * correctly afterwards.
 *
 * The converse is D3: a module bound with DIRECTCALLs has absolute
 * addresses burned into its callers, so relocation is refused for
 * direct-linked modules (re-binding would be required, "as is
 * traditional in conventional linkers").
 *
 * Relocation must happen while no processor is executing inside the
 * module (its code base may be cached in processor registers), e.g.
 * between runs or while every activation of the module is suspended.
 */

#ifndef FPC_PROGRAM_RELOCATE_HH
#define FPC_PROGRAM_RELOCATE_HH

#include "memory/memory.hh"
#include "program/loader.hh"

namespace fpc
{

/**
 * Move the named module's code segment to new_base (a granule-aligned
 * byte address in the code region). Copies the segment, updates the
 * code-base word of every instance's global frame, and fixes the
 * image's placement records. Fatal if the module (or any module
 * calling it) uses direct linkage, or if the target range is invalid.
 *
 * @return the number of bytes moved.
 */
unsigned relocateModule(Memory &memory, LoadedImage &image,
                        const std::string &module_name,
                        CodeByteAddr new_base);

/** First granule-aligned free byte address after all segments. */
CodeByteAddr imageCodeEnd(const LoadedImage &image);

} // namespace fpc

#endif // FPC_PROGRAM_RELOCATE_HH
