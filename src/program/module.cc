#include "program/module.hh"

#include "common/logging.hh"
#include "xfer/context.hh"

namespace fpc
{

AsmInst
AsmInst::plain(isa::Op op, std::int32_t a, std::int32_t b)
{
    AsmInst inst;
    inst.kind = Kind::Plain;
    inst.op = op;
    inst.a = a;
    inst.b = b;
    return inst;
}

AsmInst
AsmInst::extCall(unsigned extern_id)
{
    AsmInst inst;
    inst.kind = Kind::ExtCall;
    inst.a = static_cast<std::int32_t>(extern_id);
    return inst;
}

AsmInst
AsmInst::localCall(unsigned proc_index)
{
    AsmInst inst;
    inst.kind = Kind::LocalCall;
    inst.a = static_cast<std::int32_t>(proc_index);
    return inst;
}

AsmInst
AsmInst::loadDesc(unsigned extern_id)
{
    AsmInst inst;
    inst.kind = Kind::LoadDesc;
    inst.a = static_cast<std::int32_t>(extern_id);
    return inst;
}

AsmInst
AsmInst::jump(Kind kind, unsigned label_id)
{
    if (kind != Kind::Jump && kind != Kind::JumpZero &&
        kind != Kind::JumpNotZero) {
        panic("AsmInst::jump: not a jump kind");
    }
    AsmInst inst;
    inst.kind = kind;
    inst.a = static_cast<std::int32_t>(label_id);
    return inst;
}

AsmInst
AsmInst::label(unsigned label_id)
{
    AsmInst inst;
    inst.kind = Kind::Label;
    inst.a = static_cast<std::int32_t>(label_id);
    return inst;
}

unsigned
ProcDef::framePayloadWords() const
{
    return frame::overheadWords + numVars + extraWords;
}

int
Module::procIndex(const std::string &proc_name) const
{
    for (std::size_t i = 0; i < procs.size(); ++i)
        if (procs[i].name == proc_name)
            return static_cast<int>(i);
    return -1;
}

void
Module::validate() const
{
    if (name.empty())
        fatal("module has no name");
    if (procs.empty())
        fatal("module {} has no procedures", name);
    if (procs.size() > 128)
        fatal("module {} has {} procedures; the GFT bias scheme allows "
              "at most 128 entry points",
              name, procs.size());
    if (globalInit.size() > numGlobals)
        fatal("module {}: more initial values than globals", name);
    for (const auto &p : procs) {
        if (p.numArgs > p.numVars)
            fatal("module {} proc {}: more args than variable slots",
                  name, p.name);
        for (const auto &inst : p.code) {
            const bool is_jump = inst.kind == AsmInst::Kind::Jump ||
                                 inst.kind == AsmInst::Kind::JumpZero ||
                                 inst.kind == AsmInst::Kind::JumpNotZero;
            if ((is_jump || inst.kind == AsmInst::Kind::Label) &&
                static_cast<unsigned>(inst.a) >= p.numLabels) {
                fatal("module {} proc {}: label {} out of range", name,
                      p.name, inst.a);
            }
            if ((inst.kind == AsmInst::Kind::ExtCall ||
                 inst.kind == AsmInst::Kind::LoadDesc) &&
                static_cast<unsigned>(inst.a) >= externs.size()) {
                fatal("module {} proc {}: extern {} out of range", name,
                      p.name, inst.a);
            }
            if (inst.kind == AsmInst::Kind::LocalCall &&
                static_cast<unsigned>(inst.a) >= procs.size()) {
                fatal("module {} proc {}: local callee {} out of range",
                      name, p.name, inst.a);
            }
        }
    }
}

} // namespace fpc
