/**
 * @file
 * A programmatic assembler for FPC modules.
 *
 * ModuleBuilder/ProcBuilder provide a fluent interface over the
 * program IR: labels with forward references, symbolic local and
 * external calls, and the compact-form selection of the Mesa
 * encoding. Tests, the examples, the workload generators and the
 * MiniMesa code generator all emit code through this interface.
 *
 * Example:
 *
 *   ModuleBuilder b("Math");
 *   auto &fib = b.proc("fib", 1, 2);
 *   auto recurse = fib.newLabel();
 *   fib.loadLocal(0).loadImm(2).op(Op::LT).jumpZero(recurse)
 *      .loadLocal(0).ret()
 *      .label(recurse)
 *      .loadLocal(0).loadImm(1).op(Op::SUB).callLocal("fib")
 *      .loadLocal(0).loadImm(2).op(Op::SUB).callLocal("fib")
 *      .op(Op::ADD).ret();
 *   Module m = b.build();
 */

#ifndef FPC_ASM_BUILDER_HH
#define FPC_ASM_BUILDER_HH

#include <deque>
#include <string>
#include <vector>

#include "isa/decode.hh"
#include "program/module.hh"

namespace fpc
{

class ModuleBuilder;

/** A forward-referenceable jump label. */
struct AsmLabel
{
    unsigned id;
};

/** Builds one procedure's body. */
class ProcBuilder
{
  public:
    /** @name Raw emission. @{ */
    ProcBuilder &op(isa::Op op, std::int32_t a = 0, std::int32_t b = 0);
    /** @} */

    /** @name Data movement (compact forms selected automatically). @{ */
    ProcBuilder &loadLocal(unsigned index);
    ProcBuilder &storeLocal(unsigned index);
    ProcBuilder &loadGlobal(unsigned index);
    ProcBuilder &storeGlobal(unsigned index);
    ProcBuilder &loadImm(Word value);
    ProcBuilder &loadLocalAddr(unsigned index);
    /** @} */

    /** @name Control. @{ */
    AsmLabel newLabel();
    ProcBuilder &label(AsmLabel l);
    ProcBuilder &jump(AsmLabel l);
    ProcBuilder &jumpZero(AsmLabel l);
    ProcBuilder &jumpNotZero(AsmLabel l);
    ProcBuilder &ret();
    ProcBuilder &halt();
    /** @} */

    /** @name Calls. @{ */
    /** Call a procedure of this module by name (forward refs OK). */
    ProcBuilder &callLocal(const std::string &proc_name);
    /** Call an external procedure by extern id (see externRef). */
    ProcBuilder &callExtern(unsigned extern_id);
    /** Push the descriptor of an extern (for XF-style calls). */
    ProcBuilder &loadDescriptor(unsigned extern_id);
    /** @} */

    /** Reserve extra frame words beyond the declared variables. */
    ProcBuilder &extraFrameWords(unsigned words);

    /** Number of variable slots declared. */
    unsigned numVars() const { return def_.numVars; }

  private:
    friend class ModuleBuilder;

    ProcBuilder(ModuleBuilder &owner, ProcDef def)
        : owner_(owner), def_(std::move(def))
    {}

    struct PendingLocalCall
    {
        std::size_t instIndex;
        std::string target;
    };

    ModuleBuilder &owner_;
    ProcDef def_;
    std::vector<PendingLocalCall> pendingCalls_;
};

/** Builds one module. */
class ModuleBuilder
{
  public:
    explicit ModuleBuilder(std::string name);

    /** Declare the global variable count (and optional initials). */
    ModuleBuilder &globals(unsigned count,
                           std::vector<Word> init = {});

    /** Register an external reference; returns its extern id. */
    unsigned externRef(const std::string &module_name,
                       const std::string &proc_name,
                       unsigned instance = 0);

    /**
     * Begin a procedure. num_vars counts all variable slots including
     * the num_args argument slots. The reference stays valid until
     * build().
     */
    ProcBuilder &proc(const std::string &name, unsigned num_args,
                      unsigned num_vars, unsigned extra_words = 0);

    /** Finalize: resolves forward local calls and validates. */
    Module build();

  private:
    friend class ProcBuilder;

    std::string name_;
    unsigned numGlobals_ = 0;
    std::vector<Word> globalInit_;
    std::vector<ExternRef> externs_;
    /** deque: references returned by proc() must remain valid. */
    std::deque<ProcBuilder> procs_;
    bool built_ = false;
};

} // namespace fpc

#endif // FPC_ASM_BUILDER_HH
