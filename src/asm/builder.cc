#include "asm/builder.hh"

#include "common/logging.hh"

namespace fpc
{

using isa::Op;

ProcBuilder &
ProcBuilder::op(Op op, std::int32_t a, std::int32_t b)
{
    def_.code.push_back(AsmInst::plain(op, a, b));
    return *this;
}

ProcBuilder &
ProcBuilder::loadLocal(unsigned index)
{
    if (index >= def_.numVars)
        fatal("proc {}: local {} out of range ({} vars)", def_.name,
              index, def_.numVars);
    return op(isa::loadLocalOp(index), static_cast<std::int32_t>(index));
}

ProcBuilder &
ProcBuilder::storeLocal(unsigned index)
{
    if (index >= def_.numVars)
        fatal("proc {}: local {} out of range ({} vars)", def_.name,
              index, def_.numVars);
    return op(isa::storeLocalOp(index),
              static_cast<std::int32_t>(index));
}

ProcBuilder &
ProcBuilder::loadGlobal(unsigned index)
{
    return op(isa::loadGlobalOp(index),
              static_cast<std::int32_t>(index));
}

ProcBuilder &
ProcBuilder::storeGlobal(unsigned index)
{
    return op(isa::storeGlobalOp(index),
              static_cast<std::int32_t>(index));
}

ProcBuilder &
ProcBuilder::loadImm(Word value)
{
    return op(isa::loadImmOp(value), static_cast<std::int32_t>(value));
}

ProcBuilder &
ProcBuilder::loadLocalAddr(unsigned index)
{
    if (index >= def_.numVars)
        fatal("proc {}: local {} out of range ({} vars)", def_.name,
              index, def_.numVars);
    return op(Op::LLA, static_cast<std::int32_t>(index));
}

AsmLabel
ProcBuilder::newLabel()
{
    return AsmLabel{def_.numLabels++};
}

ProcBuilder &
ProcBuilder::label(AsmLabel l)
{
    def_.code.push_back(AsmInst::label(l.id));
    return *this;
}

ProcBuilder &
ProcBuilder::jump(AsmLabel l)
{
    def_.code.push_back(AsmInst::jump(AsmInst::Kind::Jump, l.id));
    return *this;
}

ProcBuilder &
ProcBuilder::jumpZero(AsmLabel l)
{
    def_.code.push_back(AsmInst::jump(AsmInst::Kind::JumpZero, l.id));
    return *this;
}

ProcBuilder &
ProcBuilder::jumpNotZero(AsmLabel l)
{
    def_.code.push_back(AsmInst::jump(AsmInst::Kind::JumpNotZero, l.id));
    return *this;
}

ProcBuilder &
ProcBuilder::ret()
{
    return op(Op::RET);
}

ProcBuilder &
ProcBuilder::halt()
{
    return op(Op::HALT);
}

ProcBuilder &
ProcBuilder::callLocal(const std::string &proc_name)
{
    pendingCalls_.push_back({def_.code.size(), proc_name});
    def_.code.push_back(AsmInst::localCall(0)); // patched in build()
    return *this;
}

ProcBuilder &
ProcBuilder::callExtern(unsigned extern_id)
{
    if (extern_id >= owner_.externs_.size())
        fatal("proc {}: extern id {} out of range", def_.name,
              extern_id);
    def_.code.push_back(AsmInst::extCall(extern_id));
    return *this;
}

ProcBuilder &
ProcBuilder::loadDescriptor(unsigned extern_id)
{
    if (extern_id >= owner_.externs_.size())
        fatal("proc {}: extern id {} out of range", def_.name,
              extern_id);
    def_.code.push_back(AsmInst::loadDesc(extern_id));
    return *this;
}

ProcBuilder &
ProcBuilder::extraFrameWords(unsigned words)
{
    def_.extraWords = words;
    return *this;
}

ModuleBuilder::ModuleBuilder(std::string name) : name_(std::move(name)) {}

ModuleBuilder &
ModuleBuilder::globals(unsigned count, std::vector<Word> init)
{
    numGlobals_ = count;
    globalInit_ = std::move(init);
    return *this;
}

unsigned
ModuleBuilder::externRef(const std::string &module_name,
                         const std::string &proc_name, unsigned instance)
{
    // Reuse an identical existing reference.
    for (unsigned i = 0; i < externs_.size(); ++i) {
        const ExternRef &e = externs_[i];
        if (e.module == module_name && e.proc == proc_name &&
            e.instance == instance) {
            return i;
        }
    }
    externs_.push_back({module_name, proc_name, instance});
    return externs_.size() - 1;
}

ProcBuilder &
ModuleBuilder::proc(const std::string &name, unsigned num_args,
                    unsigned num_vars, unsigned extra_words)
{
    for (const auto &p : procs_)
        if (p.def_.name == name)
            fatal("module {}: duplicate procedure {}", name_, name);
    ProcDef def;
    def.name = name;
    def.numArgs = num_args;
    def.numVars = num_vars;
    def.extraWords = extra_words;
    procs_.push_back(ProcBuilder(*this, std::move(def)));
    return procs_.back();
}

Module
ModuleBuilder::build()
{
    if (built_)
        fatal("module {} already built", name_);
    built_ = true;

    Module out;
    out.name = name_;
    out.numGlobals = numGlobals_;
    out.globalInit = globalInit_;
    out.externs = externs_;

    // Resolve forward local calls by name.
    auto index_of = [this](const std::string &proc_name) -> int {
        for (unsigned i = 0; i < procs_.size(); ++i)
            if (procs_[i].def_.name == proc_name)
                return static_cast<int>(i);
        return -1;
    };

    for (auto &pb : procs_) {
        for (const auto &pending : pb.pendingCalls_) {
            const int target = index_of(pending.target);
            if (target < 0)
                fatal("module {}: local call to unknown procedure {}",
                      name_, pending.target);
            pb.def_.code[pending.instIndex].a = target;
        }
        out.procs.push_back(pb.def_);
    }

    out.validate();
    return out;
}

} // namespace fpc
