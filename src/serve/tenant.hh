/**
 * @file
 * Multi-tenant bookkeeping for the serving runtime: per-tenant
 * quotas, counters, and a deficit-round-robin dispatcher that decides
 * whose queued job runs next.
 *
 * DRR here is the classic scheme with unit job cost: each tenant in
 * the active ring holds a deficit; on its turn it is credited its
 * quantum (the configured weight) once, dispatches jobs while the
 * deficit covers them, then rotates to the back. Over any backlogged
 * interval tenants therefore dispatch in proportion to their weights,
 * a weight-2 tenant getting two jobs for every one of a weight-1
 * tenant, and an idle tenant's unused turns are not banked — it
 * re-enters the ring with a zero deficit.
 */

#ifndef FPC_SERVE_TENANT_HH
#define FPC_SERVE_TENANT_HH

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

namespace fpc::serve
{

/** Admission limits for one tenant. */
struct TenantConfig
{
    double weight = 1.0;        ///< DRR quantum (jobs per turn)
    std::size_t maxQueued = 64; ///< per-tenant queue bound
    /** Simulated cycles the tenant may consume per quota window;
     *  0 = unlimited. Charged at job completion, reset when the
     *  window rolls. */
    std::uint64_t cyclesPerWindow = 0;
    /** Latency SLO target in milliseconds (admission → completed
     *  reply); 0 = no SLO tracked. Completed requests at or under
     *  the target count good, the rest bad, and the scrape exposes
     *  the counters plus a burn-rate gauge against a 1% error
     *  budget. */
    double sloMs = 0;
};

/** Running totals the scrape endpoint exports per tenant. */
struct TenantCounters
{
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0; ///< subset of completed
    std::uint64_t rejectedQueue = 0;
    std::uint64_t rejectedQuota = 0;
    std::uint64_t windowCycles = 0; ///< spent in the current window
    std::size_t queued = 0;
    std::size_t inFlight = 0;
};

/**
 * The deficit-round-robin dispatcher. It tracks only names and
 * backlog counts — the owner keeps the actual job queues — so it is
 * deterministic and unit-testable in isolation: enqueue(tenant) when
 * a job is admitted, then pick() returns the tenant whose oldest job
 * should dispatch next.
 */
class DrrDispatcher
{
  public:
    /** Set a tenant's quantum (default 1.0). Takes effect on its
     *  next turn. */
    void setQuantum(const std::string &tenant, double quantum);

    /** A job for this tenant was admitted to its queue. */
    void enqueue(const std::string &tenant);

    /** Choose the next tenant to dispatch one job from; false when
     *  nothing is queued. */
    bool pick(std::string &tenant_out);

    std::size_t queued() const { return total_; }

  private:
    struct Ent
    {
        std::string name;
        double quantum = 1.0;
        double deficit = 0.0;
        bool charged = false; ///< credited this turn already
        std::size_t queued = 0;
        bool active = false; ///< in the ring
    };

    Ent &ent(const std::string &tenant);

    std::map<std::string, std::size_t> index_;
    std::vector<Ent> ents_;
    std::deque<std::size_t> ring_;
    std::size_t total_ = 0;
};

} // namespace fpc::serve

#endif // FPC_SERVE_TENANT_HH
