#include "serve/drain.hh"

#include <csignal>

#include <fcntl.h>
#include <unistd.h>

#include "common/logging.hh"

namespace fpc::serve
{

namespace
{

std::atomic<bool> g_requested{false};
std::atomic<bool> g_installed{false};
int g_pipe[2] = {-1, -1};
struct sigaction g_prevInt;
struct sigaction g_prevTerm;

} // namespace

void
DrainSignal::handler(int signo)
{
    (void)signo;
    g_requested.store(true, std::memory_order_relaxed);
    const char byte = 1;
    // Self-pipe: write() is async-signal-safe; a full pipe just means
    // the poller is already awake.
    [[maybe_unused]] ssize_t n = ::write(g_pipe[1], &byte, 1);
    // One shot: restore default handlers so a second signal kills a
    // stuck drain the ordinary way.
    ::sigaction(SIGINT, &g_prevInt, nullptr);
    ::sigaction(SIGTERM, &g_prevTerm, nullptr);
}

DrainSignal::DrainSignal()
{
    if (g_installed.exchange(true))
        panic("DrainSignal: already installed in this process");
    g_requested.store(false);
    if (::pipe(g_pipe) != 0)
        fatal("DrainSignal: pipe() failed");
    ::fcntl(g_pipe[0], F_SETFL, O_NONBLOCK);
    ::fcntl(g_pipe[1], F_SETFL, O_NONBLOCK);

    struct sigaction sa = {};
    sa.sa_handler = &DrainSignal::handler;
    ::sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0; // no SA_RESTART: blocking accept/read sees EINTR
    ::sigaction(SIGINT, &sa, &g_prevInt);
    ::sigaction(SIGTERM, &sa, &g_prevTerm);
}

DrainSignal::~DrainSignal()
{
    if (!requested()) {
        ::sigaction(SIGINT, &g_prevInt, nullptr);
        ::sigaction(SIGTERM, &g_prevTerm, nullptr);
    }
    ::close(g_pipe[0]);
    ::close(g_pipe[1]);
    g_pipe[0] = g_pipe[1] = -1;
    g_installed.store(false);
}

bool
DrainSignal::requested() const
{
    return g_requested.load(std::memory_order_relaxed);
}

const std::atomic<bool> &
DrainSignal::flag() const
{
    return g_requested;
}

int
DrainSignal::fd() const
{
    return g_pipe[0];
}

} // namespace fpc::serve
