#include "serve/protocol.hh"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <unistd.h>

namespace fpc::serve
{

const char *
statusName(Status status)
{
    switch (status) {
      case Status::Ok: return "ok";
      case Status::Rejected: return "rejected";
      case Status::OverQuota: return "over-quota";
      case Status::Draining: return "draining";
      case Status::BadRequest: return "bad-request";
      case Status::ScrapeText: return "scrape";
      case Status::Pong: return "pong";
      case Status::ProbeText: return "probe";
      default: return "?";
    }
}

namespace
{

void
putU8(std::string &out, std::uint8_t v)
{
    out.push_back(static_cast<char>(v));
}

void
putU16(std::string &out, std::uint16_t v)
{
    out.push_back(static_cast<char>(v & 0xFF));
    out.push_back(static_cast<char>(v >> 8));
}

void
putU32(std::string &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void
putU64(std::string &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void
putString(std::string &out, const std::string &s)
{
    putU32(out, static_cast<std::uint32_t>(s.size()));
    out.append(s);
}

/** Bounds-checked little-endian reader over one payload. */
struct Cursor
{
    std::string_view buf;
    std::size_t pos = 0;
    bool ok = true;

    bool
    need(std::size_t n)
    {
        if (!ok || buf.size() - pos < n)
            ok = false;
        return ok;
    }

    std::uint8_t
    u8()
    {
        if (!need(1))
            return 0;
        return static_cast<std::uint8_t>(buf[pos++]);
    }

    std::uint16_t
    u16()
    {
        std::uint16_t v = 0;
        if (!need(2))
            return 0;
        for (int i = 0; i < 2; ++i)
            v |= static_cast<std::uint16_t>(
                static_cast<std::uint8_t>(buf[pos++])) << (8 * i);
        return v;
    }

    std::uint32_t
    u32()
    {
        std::uint32_t v = 0;
        if (!need(4))
            return 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(
                static_cast<std::uint8_t>(buf[pos++])) << (8 * i);
        return v;
    }

    std::uint64_t
    u64()
    {
        std::uint64_t v = 0;
        if (!need(8))
            return 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(
                static_cast<std::uint8_t>(buf[pos++])) << (8 * i);
        return v;
    }

    std::string
    str()
    {
        const std::uint32_t len = u32();
        if (!need(len))
            return {};
        std::string s(buf.substr(pos, len));
        pos += len;
        return s;
    }

    bool
    done() const
    {
        return ok && pos == buf.size();
    }
};

} // namespace

std::string
encodeRequest(const Request &req)
{
    std::string out;
    putU8(out, static_cast<std::uint8_t>(req.op));
    if (req.op == ReqOp::Submit) {
        const SubmitRequest &s = req.submit;
        putU32(out, s.reqId);
        putU64(out, s.traceId);
        putString(out, s.tenant);
        putString(out, s.program);
        putString(out, s.source);
        putString(out, s.entryModule);
        putString(out, s.entryProc);
        putU16(out, static_cast<std::uint16_t>(s.args.size()));
        for (Word a : s.args)
            putU16(out, a);
    } else if (req.op == ReqOp::Probe) {
        const ProbeRequest &p = req.probe;
        putU32(out, p.reqId);
        putU8(out, static_cast<std::uint8_t>(p.action));
        putString(out, p.spec);
        putU32(out, p.id);
    }
    return out;
}

bool
decodeRequest(std::string_view payload, Request &out, std::string &err)
{
    Cursor c{payload};
    const auto op = c.u8();
    switch (op) {
      case static_cast<std::uint8_t>(ReqOp::Scrape):
      case static_cast<std::uint8_t>(ReqOp::Ping):
        out.op = static_cast<ReqOp>(op);
        if (!c.done()) {
            err = "trailing bytes after request";
            return false;
        }
        return true;
      case static_cast<std::uint8_t>(ReqOp::Submit): {
        out.op = ReqOp::Submit;
        SubmitRequest &s = out.submit;
        s.reqId = c.u32();
        s.traceId = c.u64();
        s.tenant = c.str();
        s.program = c.str();
        s.source = c.str();
        s.entryModule = c.str();
        s.entryProc = c.str();
        const std::uint16_t argc = c.u16();
        s.args.clear();
        for (std::uint16_t i = 0; i < argc && c.ok; ++i)
            s.args.push_back(c.u16());
        if (!c.done()) {
            err = "truncated or malformed SUBMIT payload";
            return false;
        }
        return true;
      }
      case static_cast<std::uint8_t>(ReqOp::Probe): {
        out.op = ReqOp::Probe;
        ProbeRequest &p = out.probe;
        p.reqId = c.u32();
        const std::uint8_t action = c.u8();
        if (c.ok &&
            (action < static_cast<std::uint8_t>(ProbeAction::Attach) ||
             action > static_cast<std::uint8_t>(ProbeAction::Read))) {
            err = "unknown probe action " + std::to_string(action);
            return false;
        }
        p.action = static_cast<ProbeAction>(action);
        p.spec = c.str();
        p.id = c.u32();
        if (!c.done()) {
            err = "truncated or malformed PROBE payload";
            return false;
        }
        return true;
      }
      default:
        err = "unknown request opcode " + std::to_string(op);
        return false;
    }
}

std::string
encodeReply(const Reply &reply)
{
    std::string out;
    putU32(out, reply.reqId);
    putU8(out, static_cast<std::uint8_t>(reply.status));
    switch (reply.status) {
      case Status::Ok:
      case Status::BadRequest:
        putU8(out, reply.jobOk ? 1 : 0);
        putU16(out, reply.value);
        putString(out, reply.stopReason);
        putString(out, reply.error);
        putU64(out, reply.steps);
        putU64(out, reply.cycles);
        putString(out, reply.postmortem);
        putU64(out, reply.spanId);
        putU64(out, reply.queueNs);
        putU64(out, reply.execNs);
        break;
      case Status::Rejected:
      case Status::OverQuota:
      case Status::Draining:
        putU32(out, reply.retryAfterMs);
        putString(out, reply.error);
        break;
      case Status::ScrapeText:
        putString(out, reply.text);
        break;
      case Status::ProbeText:
        putU32(out, reply.probeId);
        putString(out, reply.text);
        break;
      case Status::Pong:
        break;
    }
    return out;
}

bool
decodeReply(std::string_view payload, Reply &out, std::string &err)
{
    Cursor c{payload};
    out.reqId = c.u32();
    const auto status = c.u8();
    if (status > static_cast<std::uint8_t>(Status::ProbeText)) {
        err = "unknown reply status " + std::to_string(status);
        return false;
    }
    out.status = static_cast<Status>(status);
    switch (out.status) {
      case Status::Ok:
      case Status::BadRequest:
        out.jobOk = c.u8() != 0;
        out.value = c.u16();
        out.stopReason = c.str();
        out.error = c.str();
        out.steps = c.u64();
        out.cycles = c.u64();
        out.postmortem = c.str();
        out.spanId = c.u64();
        out.queueNs = c.u64();
        out.execNs = c.u64();
        break;
      case Status::Rejected:
      case Status::OverQuota:
      case Status::Draining:
        out.retryAfterMs = c.u32();
        out.error = c.str();
        break;
      case Status::ScrapeText:
        out.text = c.str();
        break;
      case Status::ProbeText:
        out.probeId = c.u32();
        out.text = c.str();
        break;
      case Status::Pong:
        break;
    }
    if (!c.done()) {
        err = "truncated or malformed reply payload";
        return false;
    }
    return true;
}

namespace
{

bool
writeAll(int fd, const char *data, std::size_t len)
{
    while (len > 0) {
        const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

bool
readAll(int fd, char *data, std::size_t len)
{
    while (len > 0) {
        const ssize_t n = ::recv(fd, data, len, 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (n == 0)
            return false; // EOF mid-frame
        data += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace

bool
writeFrame(int fd, std::string_view payload)
{
    std::string frame;
    frame.reserve(4 + payload.size());
    putU32(frame, static_cast<std::uint32_t>(payload.size()));
    frame.append(payload);
    return writeAll(fd, frame.data(), frame.size());
}

bool
readFrame(int fd, std::string &payload)
{
    char head[4];
    if (!readAll(fd, head, 4))
        return false;
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i)
        len |= static_cast<std::uint32_t>(
            static_cast<std::uint8_t>(head[i])) << (8 * i);
    if (len > maxFrameBytes)
        return false;
    payload.resize(len);
    return len == 0 || readAll(fd, payload.data(), len);
}

} // namespace fpc::serve
