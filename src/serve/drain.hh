/**
 * @file
 * Graceful-shutdown plumbing shared by the drivers: a SIGINT/SIGTERM
 * handler that records the request in an atomic flag and pokes a
 * self-pipe, so both polling loops (fpcserve waits on the pipe) and
 * running workers (fpcrun points RuntimeConfig::stopFlag at the
 * flag) see the drain without any async-signal-unsafe work in the
 * handler.
 */

#ifndef FPC_SERVE_DRAIN_HH
#define FPC_SERVE_DRAIN_HH

#include <atomic>

namespace fpc::serve
{

/**
 * Installs SIGINT and SIGTERM handlers on construction, restores the
 * previous handlers on destruction. Process-wide state: at most one
 * instance may live at a time (the constructor panics otherwise).
 * A second signal while draining falls through to the restored
 * default handler, so a stuck drain can still be killed.
 */
class DrainSignal
{
  public:
    DrainSignal();
    ~DrainSignal();

    DrainSignal(const DrainSignal &) = delete;
    DrainSignal &operator=(const DrainSignal &) = delete;

    /** True once a shutdown signal arrived. */
    bool requested() const;

    /** The flag itself — wire into RuntimeConfig::stopFlag. */
    const std::atomic<bool> &flag() const;

    /** Readable end of the self-pipe: becomes readable on the first
     *  signal. poll() this instead of sleeping. */
    int fd() const;

  private:
    static void handler(int signo);
};

} // namespace fpc::serve

#endif // FPC_SERVE_DRAIN_HH
