#include "serve/server.hh"

#include <algorithm>
#include <cerrno>
#include <sstream>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.hh"
#include "lang/codegen.hh"

namespace fpc::serve
{

namespace
{

/** OpenMetrics label-value escaping: backslash, quote, newline. */
std::string
labelEscape(const std::string &value)
{
    std::string out;
    out.reserve(value.size());
    for (char c : value) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '"')
            out += "\\\"";
        else if (c == '\n')
            out += "\\n";
        else
            out += c;
    }
    return out;
}

double
msSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

Server::Conn::~Conn()
{
    if (fd >= 0)
        ::close(fd);
}

Server::Server(ServerConfig config)
    : config_(std::move(config)),
      latency_(config_.latencyBucketMs > 0 ? config_.latencyBucketMs
                                           : 0.25,
               std::max<std::size_t>(1, config_.latencyBuckets))
{
    if (config_.workers == 0)
        config_.workers = 1;
    maxInFlight_ = config_.maxInFlight != 0 ? config_.maxInFlight
                                            : config_.workers;
    if (config_.spans)
        spans_ = std::make_unique<obs::SpanCollector>(
            std::max<std::size_t>(1, config_.spansCapacity));
}

Server::~Server()
{
    stop();
}

void
Server::addProgram(const std::string &name,
                   std::shared_ptr<const std::vector<Module>> modules)
{
    if (!modules || modules->empty())
        panic("Server::addProgram: program has no modules");
    std::lock_guard<std::mutex> lock(cacheMutex_);
    programs_[name] = std::move(modules);
}

void
Server::start()
{
    if (started_)
        panic("Server::start called twice");
    started_ = true;

    sched::RuntimeConfig rc;
    rc.workers = config_.workers;
    rc.machine = config_.machine;
    rc.plan = config_.plan;
    rc.metrics = config_.metrics;
    rc.metricsInterval = config_.metricsInterval;
    rc.metricsCapacity = config_.metricsCapacity;
    rc.metricsSampled = config_.metricsSampled;
    rc.postmortemDir = config_.postmortemDir;
    rc.driver = config_.driver;
    rc.spans = spans_.get();
    rc.trace = config_.trace;
    rc.traceCapacity = config_.traceCapacity;
    rc.gaugeProvider =
        [this](std::vector<std::pair<std::string, double>> &g) {
            g.emplace_back("serve_queue_depth", gaugeQueue_.load());
            g.emplace_back("serve_in_flight", gaugeInFlight_.load());
            std::lock_guard<std::mutex> lock(tenantGaugeMutex_);
            for (const auto &entry : tenantGauges_)
                g.push_back(entry);
            probes_.gauges(g);
        };
    if (!config_.probeSpecs.empty()) {
        std::string perr;
        if (!obs::attachProbeSpecs(probes_, config_.probeSpecs, perr))
            fatal("fpcserve: {}", perr);
    }
    rc.probes = &probes_;
    runtime_ = std::make_unique<sched::Runtime>(rc);
    runtime_->startPool();

    windowStart_ = std::chrono::steady_clock::now();
    {
        // Pre-register configured tenants so the scrape shows them
        // before their first request.
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &entry : config_.tenants)
            tenantLocked(entry.first);
        tenantLocked("default");
    }

    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        fatal("fpcserve: socket() failed");
    const int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));
    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config_.port);
    if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) !=
        1)
        fatal("fpcserve: bad listen address '{}'", config_.host);
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0)
        fatal("fpcserve: cannot bind {}:{}", config_.host,
              config_.port);
    if (::listen(listenFd_, 64) != 0)
        fatal("fpcserve: listen() failed");
    socklen_t len = sizeof(addr);
    ::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&addr),
                  &len);
    port_ = ntohs(addr.sin_port);

    if (::pipe(wakePipe_) != 0)
        fatal("fpcserve: pipe() failed");

    acceptThread_ = std::thread([this] { acceptLoop(); });
}

void
Server::acceptLoop()
{
    while (true) {
        pollfd fds[2] = {{listenFd_, POLLIN, 0},
                         {wakePipe_[0], POLLIN, 0}};
        const int rc = ::poll(fds, 2, -1);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (fds[1].revents != 0)
            break; // drain/stop woke us
        if ((fds[0].revents & POLLIN) == 0)
            continue;
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            break;
        }
        auto conn = std::make_shared<Conn>();
        conn->fd = fd;
        conn->track = nextConnTrack_.fetch_add(1);
        std::lock_guard<std::mutex> lock(connMutex_);
        if (acceptClosed_) {
            break; // Conn destructor closes fd
        }
        conns_.push_back(conn);
        connThreads_.emplace_back(
            [this, conn] { connLoop(std::move(conn)); });
        accepted_.fetch_add(1, std::memory_order_relaxed);
    }
}

void
Server::connLoop(std::shared_ptr<Conn> conn)
{
    std::string payload;
    while (readFrame(conn->fd, payload)) {
        Request req;
        std::string err;
        if (!decodeRequest(payload, req, err)) {
            {
                std::lock_guard<std::mutex> lock(mutex_);
                ++badRequests_;
            }
            Reply reply;
            reply.status = Status::BadRequest;
            reply.error = err;
            sendReply(conn, reply);
            continue;
        }
        switch (req.op) {
          case ReqOp::Ping: {
            Reply reply;
            reply.status = Status::Pong;
            sendReply(conn, reply);
            break;
          }
          case ReqOp::Scrape: {
            Reply reply;
            reply.status = Status::ScrapeText;
            reply.text = scrapeText();
            sendReply(conn, reply);
            break;
          }
          case ReqOp::Submit:
            handleSubmit(conn, std::move(req.submit));
            break;
          case ReqOp::Probe:
            handleProbe(conn, req.probe);
            break;
        }
    }
    conn->open.store(false, std::memory_order_relaxed);
}

std::shared_ptr<const std::vector<Module>>
Server::resolveModules(const SubmitRequest &req, std::string &err)
{
    std::lock_guard<std::mutex> lock(cacheMutex_);
    if (!req.program.empty()) {
        auto it = programs_.find(req.program);
        if (it == programs_.end()) {
            err = "unknown program '" + req.program + "'";
            return nullptr;
        }
        return it->second;
    }
    if (req.source.empty()) {
        err = "SUBMIT carries neither a program name nor source";
        return nullptr;
    }
    auto it = sourceCache_.find(req.source);
    if (it != sourceCache_.end())
        return it->second;
    try {
        auto modules = std::make_shared<const std::vector<Module>>(
            lang::compile(req.source));
        sourceCache_[req.source] = modules;
        return modules;
    } catch (const std::exception &e) {
        err = e.what();
        return nullptr;
    }
}

void
Server::handleProbe(const std::shared_ptr<Conn> &conn,
                    const ProbeRequest &req)
{
    // Probe ops mutate only the registry: jobs already executing keep
    // the snapshot they compiled at dispatch and complete normally —
    // live attach/detach never drops an in-flight request.
    Reply reply;
    reply.reqId = req.reqId;
    switch (req.action) {
      case ProbeAction::Attach: {
        obs::ProbeSpec spec;
        std::string err;
        if (!obs::parseProbeSpec(req.spec, spec, err)) {
            std::lock_guard<std::mutex> lock(mutex_);
            ++badRequests_;
            reply.status = Status::BadRequest;
            reply.error = "bad probe spec: " + err;
            break;
        }
        reply.status = Status::ProbeText;
        reply.probeId = probes_.attach(std::move(spec));
        break;
      }
      case ProbeAction::Detach:
        if (!probes_.detach(req.id)) {
            std::lock_guard<std::mutex> lock(mutex_);
            ++badRequests_;
            reply.status = Status::BadRequest;
            reply.error =
                "no probe with id " + std::to_string(req.id);
            break;
        }
        reply.status = Status::ProbeText;
        reply.probeId = req.id;
        break;
      case ProbeAction::Read: {
        std::ostringstream os;
        probes_.writeJson(os, config_.driver);
        reply.status = Status::ProbeText;
        reply.text = os.str();
        break;
      }
    }
    sendReply(conn, reply);
}

void
Server::handleSubmit(const std::shared_ptr<Conn> &conn,
                     SubmitRequest &&req)
{
    Reply reply;
    reply.reqId = req.reqId;

    // The span tree roots at frame receipt: request ⊃ admission begin
    // together on the connection's track. Every SUBMIT gets a request
    // id whether or not it survives admission.
    const std::uint64_t rid = nextRequestId_.fetch_add(1);
    const std::string tenant =
        req.tenant.empty() ? "default" : req.tenant;
    std::uint32_t spanTenant = obs::noTenant;
    if (spans_) {
        const std::int64_t recvNs = obs::SpanCollector::nowNs();
        spanTenant = spans_->internTenant(tenant);
        spans_->begin(obs::SpanKind::Request, rid,
                      obs::SpanTrack::Connection, conn->track,
                      spanTenant, recvNs, req.traceId, req.reqId);
        spans_->begin(obs::SpanKind::Admission, rid,
                      obs::SpanTrack::Connection, conn->track,
                      spanTenant, recvNs, req.traceId, req.reqId);
    }
    // A request that never reaches the queue ends here: admission and
    // request both close as failed at the rejection decision.
    auto rejectSpans = [&] {
        if (!spans_)
            return;
        const std::int64_t t = obs::SpanCollector::nowNs();
        spans_->end(obs::SpanKind::Admission, rid, t, false);
        spans_->end(obs::SpanKind::Request, rid, t, false);
    };

    // Compilation / registry lookup happens outside the serving lock:
    // it can be slow, and completions must not wait on it.
    std::string err;
    auto modules = resolveModules(req, err);
    if (!modules) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++badRequests_;
        }
        rejectSpans();
        reply.status = Status::BadRequest;
        reply.error = err;
        sendReply(conn, reply);
        return;
    }

    std::string module = req.entryModule;
    if (module.empty()) {
        module = modules->front().name;
        for (const Module &m : *modules)
            if (m.name == "Main")
                module = "Main";
    }
    const std::string proc =
        req.entryProc.empty() ? "main" : req.entryProc;

    {
        std::unique_lock<std::mutex> lock(mutex_);
        if (draining_) {
            ++rejectedDraining_;
            reply.status = Status::Draining;
            reply.error = "server is draining";
            lock.unlock();
            rejectSpans();
            sendReply(conn, reply);
            return;
        }
        rollWindowLocked();
        TenantState &t = tenantLocked(tenant);
        ++t.counters.submitted;
        ++jobsSubmitted_;
        if (t.config.cyclesPerWindow > 0 &&
            t.counters.windowCycles >= t.config.cyclesPerWindow) {
            ++t.counters.rejectedQuota;
            ++rejectedQuota_;
            reply.status = Status::OverQuota;
            const double left =
                static_cast<double>(config_.quotaWindowMs) -
                msSince(windowStart_);
            reply.retryAfterMs = static_cast<std::uint32_t>(
                std::clamp(left, 1.0, 1.0e6));
            reply.error = "tenant simulated-cycle quota exhausted";
            lock.unlock();
            rejectSpans();
            sendReply(conn, reply);
            return;
        }
        if (queuedTotal_ >= config_.queueCapacity) {
            ++t.counters.rejectedQueue;
            ++rejectedQueue_;
            reply.status = Status::Rejected;
            reply.retryAfterMs = retryAfterLocked();
            reply.error = "server queue full";
            lock.unlock();
            rejectSpans();
            sendReply(conn, reply);
            return;
        }
        if (t.pending.size() >= t.config.maxQueued) {
            ++t.counters.rejectedQueue;
            ++rejectedQueue_;
            reply.status = Status::Rejected;
            reply.retryAfterMs = retryAfterLocked();
            reply.error = "tenant queue full";
            lock.unlock();
            rejectSpans();
            sendReply(conn, reply);
            return;
        }

        Pending p;
        p.reqId = req.reqId;
        p.conn = conn;
        p.tenant = tenant;
        p.job.modules = std::move(modules);
        p.job.module = std::move(module);
        p.job.proc = proc;
        p.job.args = std::move(req.args);
        p.job.tenant = tenant;
        p.admitted = std::chrono::steady_clock::now();
        p.admittedNs =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                p.admitted.time_since_epoch())
                .count();
        p.requestId = rid;
        p.traceId = req.traceId;
        p.spanTenant = spanTenant;
        if (spans_) {
            // Admission ends where queueing begins — the shared
            // boundary timestamp keeps the phases an exact partition.
            p.job.span =
                obs::SpanRef{rid, req.traceId, spanTenant};
            spans_->end(obs::SpanKind::Admission, rid, p.admittedNs,
                        true);
            spans_->begin(obs::SpanKind::Queued, rid,
                          obs::SpanTrack::Tenant, spanTenant,
                          spanTenant, p.admittedNs, req.traceId,
                          req.reqId);
        }
        t.pending.push_back(std::move(p));
        t.counters.queued = t.pending.size();
        ++queuedTotal_;
        drr_.enqueue(tenant);
        pumpLocked();
        updateGaugesLocked();
    }
    // The reply comes from the completion callback once the job ran.
}

void
Server::pumpLocked()
{
    std::string tenant;
    while (inFlight_ < maxInFlight_ && drr_.pick(tenant)) {
        TenantState &t = tenants_.at(tenant);
        Pending p = std::move(t.pending.front());
        t.pending.pop_front();
        t.counters.queued = t.pending.size();
        --queuedTotal_;
        ++inFlight_;
        ++t.counters.inFlight;
        if (spans_ && p.requestId != 0) {
            // Queued ends at the DRR pick; dispatch runs until the
            // worker starts executing, which re-homes the tree onto
            // the executing worker's track (the track here is a
            // placeholder — the pool chooses the worker later).
            const std::int64_t pickNs = obs::SpanCollector::nowNs();
            spans_->endPhase(p.requestId, pickNs, true);
            spans_->begin(obs::SpanKind::Dispatch, p.requestId,
                          obs::SpanTrack::Worker, 0, p.spanTenant,
                          pickNs, p.traceId, p.reqId);
        }
        sched::Job job = std::move(p.job);
        auto meta = std::make_shared<Pending>(std::move(p));
        runtime_->enqueue(std::move(job),
                          [this, meta](sched::JobResult r) {
                              onComplete(*meta, std::move(r));
                          });
    }
}

void
Server::onComplete(const Pending &meta, sched::JobResult r)
{
    Reply reply;
    reply.reqId = meta.reqId;
    reply.status = Status::Ok;
    reply.jobOk = r.ok;
    reply.value = r.value;
    reply.stopReason = stopReasonName(r.reason);
    reply.error = r.error;
    reply.steps = r.steps;
    reply.cycles = r.cycles;
    if (!r.ok && !config_.postmortemDir.empty()) {
        reply.postmortem = config_.postmortemDir + "/job-" +
                           std::to_string(r.id) +
                           "-postmortem.json";
    }

    // Latency attribution: the worker stamped execStartNs/execEndNs
    // whether or not span collection is on (a canceled job leaves
    // them zero). The reply echoes the breakdown.
    const bool executed = r.execStartNs != 0;
    const double queueMs =
        executed ? std::max<double>(0, static_cast<double>(
                                           r.execStartNs -
                                           meta.admittedNs)) /
                       1e6
                 : 0;
    const double execMs =
        executed ? std::max<double>(0, static_cast<double>(
                                           r.execEndNs -
                                           r.execStartNs)) /
                       1e6
                 : 0;
    reply.spanId = meta.requestId;
    reply.queueNs = executed ? static_cast<std::uint64_t>(std::max<
                                   std::int64_t>(
                                   0, r.execStartNs - meta.admittedNs))
                             : 0;
    reply.execNs = executed ? static_cast<std::uint64_t>(std::max<
                                  std::int64_t>(
                                  0, r.execEndNs - r.execStartNs))
                            : 0;

    // Charge the books that admission reads BEFORE the reply goes
    // out: a client that resubmits the instant its Ok arrives must
    // see the quota already spent, not race the bookkeeping.
    const double ms = msSince(meta.admitted);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        TenantState &t = tenantLocked(meta.tenant);
        ++t.counters.completed;
        ++jobsCompleted_;
        if (!r.ok) {
            ++t.counters.failed;
            ++jobsFailed_;
        }
        t.counters.windowCycles += r.cycles;
        latency_.sample(ms);
        if (executed) {
            t.queueWait.sample(queueMs);
            t.execute.sample(execMs);
        }
        if (t.config.sloMs > 0) {
            const bool good = r.ok && ms <= t.config.sloMs;
            if (good) {
                ++t.sloGood;
                ++t.windowGood;
            } else {
                ++t.sloBad;
                ++t.windowBad;
            }
        }
    }

    // The reply phase runs from execution end to the result frame
    // being on the wire; its close also closes the request span.
    // Reply before the in-flight count drops: once drain() returns,
    // every admitted job's result frame has been written.
    if (spans_ && meta.requestId != 0) {
        const std::int64_t replyStartNs =
            r.execEndNs != 0 ? r.execEndNs
                             : obs::SpanCollector::nowNs();
        spans_->begin(obs::SpanKind::Reply, meta.requestId,
                      obs::SpanTrack::Worker, r.worker,
                      meta.spanTenant, replyStartNs, meta.traceId,
                      meta.reqId);
        sendReply(meta.conn, reply);
        const std::int64_t sentNs = obs::SpanCollector::nowNs();
        spans_->end(obs::SpanKind::Reply, meta.requestId, sentNs,
                    true);
        spans_->end(obs::SpanKind::Request, meta.requestId, sentNs,
                    r.ok);
        std::lock_guard<std::mutex> lock(mutex_);
        tenantLocked(meta.tenant)
            .reply.sample(std::max<double>(
                              0, static_cast<double>(sentNs -
                                                     replyStartNs)) /
                          1e6);
    } else {
        sendReply(meta.conn, reply);
        if (executed) {
            const std::int64_t sentNs = obs::SpanCollector::nowNs();
            std::lock_guard<std::mutex> lock(mutex_);
            tenantLocked(meta.tenant)
                .reply.sample(
                    std::max<double>(
                        0, static_cast<double>(sentNs - r.execEndNs)) /
                    1e6);
        }
    }

    std::lock_guard<std::mutex> lock(mutex_);
    --inFlight_;
    --tenantLocked(meta.tenant).counters.inFlight;
    pumpLocked();
    updateGaugesLocked();
    updateTenantGaugesLocked();
    if (draining_ && queuedTotal_ == 0 && inFlight_ == 0)
        drainedCv_.notify_all();
}

void
Server::rollWindowLocked()
{
    const auto window =
        std::chrono::milliseconds(config_.quotaWindowMs);
    const auto now = std::chrono::steady_clock::now();
    if (now - windowStart_ < window)
        return;
    while (now - windowStart_ >= window)
        windowStart_ += window;
    for (auto &entry : tenants_) {
        TenantState &t = entry.second;
        t.counters.windowCycles = 0;
        // SLO burn-rate smoothing: the gauge reads the previous
        // window plus the current one, so a fresh window doesn't
        // reset the rate to zero.
        t.prevWindowGood = t.windowGood;
        t.prevWindowBad = t.windowBad;
        t.windowGood = 0;
        t.windowBad = 0;
    }
}

Server::TenantState &
Server::tenantLocked(const std::string &name)
{
    auto it = tenants_.find(name);
    if (it == tenants_.end()) {
        TenantState ts;
        auto cfg = config_.tenants.find(name);
        ts.config = cfg != config_.tenants.end()
                        ? cfg->second
                        : config_.defaultTenant;
        const double width = config_.latencyBucketMs > 0
                                 ? config_.latencyBucketMs
                                 : 0.25;
        const std::size_t buckets =
            std::max<std::size_t>(1, config_.latencyBuckets);
        ts.queueWait = stats::Histogram(width, buckets);
        ts.execute = stats::Histogram(width, buckets);
        ts.reply = stats::Histogram(width, buckets);
        if (spans_)
            ts.spanTenant = spans_->internTenant(name);
        it = tenants_.emplace(name, std::move(ts)).first;
        drr_.setQuantum(name, it->second.config.weight);
    }
    return it->second;
}

std::uint32_t
Server::retryAfterLocked() const
{
    // Estimate: the backlog's expected drain time at the observed
    // mean job latency (or a nominal 10ms before any completions).
    const double perJob =
        latency_.count() > 0 ? latency_.mean() : 10.0;
    const double backlog =
        static_cast<double>(queuedTotal_ + inFlight_);
    const double est =
        perJob * backlog / static_cast<double>(config_.workers);
    return static_cast<std::uint32_t>(std::clamp(est, 1.0, 30000.0));
}

void
Server::updateGaugesLocked()
{
    gaugeQueue_.store(static_cast<double>(queuedTotal_));
    gaugeInFlight_.store(static_cast<double>(inFlight_));
}

void
Server::sendReply(const std::shared_ptr<Conn> &conn,
                  const Reply &reply)
{
    if (!conn->open.load(std::memory_order_relaxed))
        return;
    const std::string payload = encodeReply(reply);
    std::lock_guard<std::mutex> lock(conn->writeMutex);
    if (!writeFrame(conn->fd, payload))
        conn->open.store(false, std::memory_order_relaxed);
}

bool
Server::draining() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return draining_;
}

std::string
Server::scrapeText() const
{
    std::ostringstream os;
    std::lock_guard<std::mutex> lock(mutex_);

    auto gauge = [&os](const char *name, const char *help,
                       double value) {
        os << "# HELP " << name << " " << help << "\n"
           << "# TYPE " << name << " gauge\n"
           << name << " " << value << "\n";
    };
    auto counter = [&os](const char *name, const char *help,
                         std::uint64_t value) {
        os << "# HELP " << name << " " << help << "\n"
           << "# TYPE " << name << " counter\n"
           << name << "_total " << value << "\n";
    };

    gauge("fpc_serve_queue_depth",
          "Jobs admitted but not yet dispatched.",
          static_cast<double>(queuedTotal_));
    gauge("fpc_serve_in_flight", "Jobs currently on the pool.",
          static_cast<double>(inFlight_));
    gauge("fpc_serve_workers", "Pool worker threads.",
          static_cast<double>(config_.workers));
    gauge("fpc_serve_draining", "1 while the server drains.",
          draining_ ? 1.0 : 0.0);
    counter("fpc_serve_connections", "Connections accepted.",
            accepted_.load(std::memory_order_relaxed));
    counter("fpc_serve_jobs_submitted", "SUBMIT requests received.",
            jobsSubmitted_);
    counter("fpc_serve_jobs_completed", "Jobs run to completion.",
            jobsCompleted_);
    counter("fpc_serve_jobs_failed",
            "Completed jobs that stopped on an error.", jobsFailed_);
    counter("fpc_serve_rejected_queue",
            "Submits rejected by a queue bound.", rejectedQueue_);
    counter("fpc_serve_rejected_quota",
            "Submits rejected by a tenant cycle quota.",
            rejectedQuota_);
    counter("fpc_serve_rejected_draining",
            "Submits answered DRAINING during shutdown.",
            rejectedDraining_);
    counter("fpc_serve_bad_requests",
            "Frames that failed to decode or resolve.", badRequests_);
    gauge("fpc_serve_job_latency_ms_p50",
          "Median job latency, admission to completion.",
          latency_.p50());
    gauge("fpc_serve_job_latency_ms_p90", "90th percentile latency.",
          latency_.p90());
    gauge("fpc_serve_job_latency_ms_p99", "99th percentile latency.",
          latency_.p99());
    gauge("fpc_serve_job_latency_ms_mean", "Mean job latency.",
          latency_.mean());

    // Per-tenant families: one HELP/TYPE header, one labeled sample
    // per tenant.
    auto tenantGauge =
        [&](const char *name, const char *help,
            double (*get)(const TenantState &)) {
            os << "# HELP " << name << " " << help << "\n"
               << "# TYPE " << name << " gauge\n";
            for (const auto &entry : tenants_) {
                os << name << "{tenant=\""
                   << labelEscape(entry.first) << "\"} "
                   << get(entry.second) << "\n";
            }
        };
    auto tenantCounter =
        [&](const char *name, const char *help,
            std::uint64_t (*get)(const TenantState &)) {
            os << "# HELP " << name << " " << help << "\n"
               << "# TYPE " << name << " counter\n";
            for (const auto &entry : tenants_) {
                os << name << "_total{tenant=\""
                   << labelEscape(entry.first) << "\"} "
                   << get(entry.second) << "\n";
            }
        };
    tenantGauge("fpc_serve_tenant_queued",
                "Jobs waiting in the tenant's queue.",
                [](const TenantState &t) {
                    return static_cast<double>(t.counters.queued);
                });
    tenantGauge("fpc_serve_tenant_in_flight",
                "The tenant's jobs on the pool.",
                [](const TenantState &t) {
                    return static_cast<double>(t.counters.inFlight);
                });
    tenantGauge("fpc_serve_tenant_weight", "DRR dispatch weight.",
                [](const TenantState &t) { return t.config.weight; });
    tenantGauge("fpc_serve_tenant_window_cycles",
                "Simulated cycles spent in the current quota window.",
                [](const TenantState &t) {
                    return static_cast<double>(
                        t.counters.windowCycles);
                });
    tenantCounter("fpc_serve_tenant_submitted",
                  "SUBMITs received for the tenant.",
                  [](const TenantState &t) {
                      return t.counters.submitted;
                  });
    tenantCounter("fpc_serve_tenant_completed",
                  "The tenant's jobs run to completion.",
                  [](const TenantState &t) {
                      return t.counters.completed;
                  });
    tenantCounter("fpc_serve_tenant_rejected",
                  "The tenant's submits rejected (queue or quota).",
                  [](const TenantState &t) {
                      return t.counters.rejectedQueue +
                             t.counters.rejectedQuota;
                  });

    // Latency attribution: one histogram family per phase with
    // coarse cumulative buckets, plus percentile gauges. The
    // underlying fine-grained linear histograms stay internal; the
    // exposition re-buckets them at standard boundaries.
    static const double boundsMs[] = {1,  2,  5,   10,  20,
                                      50, 100, 250, 1000};
    auto cumulative = [](const stats::Histogram &h, double bound) {
        // Samples in buckets that lie entirely at or below the
        // bound; exact per-bucket, monotone in the bound.
        std::uint64_t c = 0;
        const double w = h.bucketWidth();
        for (std::size_t i = 0; i < h.buckets(); ++i) {
            if (static_cast<double>(i + 1) * w > bound + 1e-9)
                break;
            c += h.bucketCount(i);
        }
        return c;
    };
    auto tenantHistogram =
        [&](const char *name, const char *help,
            const stats::Histogram &(*get)(const TenantState &)) {
            os << "# HELP " << name << " " << help << "\n"
               << "# TYPE " << name << " histogram\n";
            for (const auto &entry : tenants_) {
                const stats::Histogram &h = get(entry.second);
                const std::string tenant =
                    labelEscape(entry.first);
                for (double b : boundsMs)
                    os << name << "_bucket{tenant=\"" << tenant
                       << "\",le=\"" << b << "\"} "
                       << cumulative(h, b) << "\n";
                os << name << "_bucket{tenant=\"" << tenant
                   << "\",le=\"+Inf\"} " << h.count() << "\n";
                os << name << "_sum{tenant=\"" << tenant << "\"} "
                   << (h.count() > 0 ? h.mean() *
                                           static_cast<double>(
                                               h.count())
                                     : 0.0)
                   << "\n";
                os << name << "_count{tenant=\"" << tenant << "\"} "
                   << h.count() << "\n";
            }
        };
    tenantHistogram("fpc_serve_tenant_queue_wait_ms",
                    "Admission to execution start, per completed job.",
                    [](const TenantState &t) -> const stats::
                        Histogram & { return t.queueWait; });
    tenantHistogram("fpc_serve_tenant_execute_ms",
                    "Execution start to end, per completed job.",
                    [](const TenantState &t) -> const stats::
                        Histogram & { return t.execute; });
    tenantHistogram("fpc_serve_tenant_reply_ms",
                    "Execution end to the reply on the wire.",
                    [](const TenantState &t) -> const stats::
                        Histogram & { return t.reply; });
    tenantGauge("fpc_serve_tenant_queue_wait_p50_ms",
                "Median queue wait.", [](const TenantState &t) {
                    return t.queueWait.p50();
                });
    tenantGauge("fpc_serve_tenant_queue_wait_p90_ms",
                "90th percentile queue wait.",
                [](const TenantState &t) {
                    return t.queueWait.p90();
                });
    tenantGauge("fpc_serve_tenant_queue_wait_p99_ms",
                "99th percentile queue wait.",
                [](const TenantState &t) {
                    return t.queueWait.p99();
                });
    tenantGauge("fpc_serve_tenant_execute_p50_ms",
                "Median execute time.", [](const TenantState &t) {
                    return t.execute.p50();
                });
    tenantGauge("fpc_serve_tenant_execute_p90_ms",
                "90th percentile execute time.",
                [](const TenantState &t) { return t.execute.p90(); });
    tenantGauge("fpc_serve_tenant_execute_p99_ms",
                "99th percentile execute time.",
                [](const TenantState &t) { return t.execute.p99(); });
    tenantGauge("fpc_serve_tenant_reply_p50_ms",
                "Median reply time.",
                [](const TenantState &t) { return t.reply.p50(); });
    tenantGauge("fpc_serve_tenant_reply_p90_ms",
                "90th percentile reply time.",
                [](const TenantState &t) { return t.reply.p90(); });
    tenantGauge("fpc_serve_tenant_reply_p99_ms",
                "99th percentile reply time.",
                [](const TenantState &t) { return t.reply.p99(); });

    // SLO families appear once any tenant has a target; samples only
    // for tenants with one.
    bool anySlo = false;
    for (const auto &entry : tenants_)
        if (entry.second.config.sloMs > 0)
            anySlo = true;
    if (anySlo) {
        auto sloGauge = [&](const char *name, const char *help,
                            double (*get)(const TenantState &)) {
            os << "# HELP " << name << " " << help << "\n"
               << "# TYPE " << name << " gauge\n";
            for (const auto &entry : tenants_)
                if (entry.second.config.sloMs > 0)
                    os << name << "{tenant=\""
                       << labelEscape(entry.first) << "\"} "
                       << get(entry.second) << "\n";
        };
        auto sloCounter =
            [&](const char *name, const char *help,
                std::uint64_t (*get)(const TenantState &)) {
                os << "# HELP " << name << " " << help << "\n"
                   << "# TYPE " << name << " counter\n";
                for (const auto &entry : tenants_)
                    if (entry.second.config.sloMs > 0)
                        os << name << "_total{tenant=\""
                           << labelEscape(entry.first) << "\"} "
                           << get(entry.second) << "\n";
            };
        sloGauge("fpc_serve_slo_target_ms",
                 "Latency SLO target (admission to reply).",
                 [](const TenantState &t) { return t.config.sloMs; });
        sloCounter("fpc_serve_slo_good",
                   "Completed requests at or under the SLO target.",
                   [](const TenantState &t) { return t.sloGood; });
        sloCounter("fpc_serve_slo_bad",
                   "Completed requests over the SLO target (or "
                   "failed).",
                   [](const TenantState &t) { return t.sloBad; });
        sloGauge("fpc_serve_slo_burn_rate",
                 "Error-budget burn rate over the last two quota "
                 "windows (1 = burning exactly the 1% budget).",
                 [](const TenantState &t) { return burnRate(t); });
    }

    // Host-acceleration internals, folded per completed job (live
    // mid-run, unlike the post-stop accelStats()). Host-side only:
    // they describe the accelerator, never simulated behavior.
    if (config_.machine.accel.enabled) {
        const AccelStats a = runtime_->liveAccelStats();
        gauge("fpc_serve_accel_icache_hit_rate",
              "Host predecode cache hit rate.", a.icacheHitRate());
        gauge("fpc_serve_accel_link_hit_rate",
              "Host XFER link cache hit rate.", a.linkHitRate());
        gauge("fpc_serve_accel_chain_rate",
              "Superblock transitions served by the inline chain "
              "pointer, per execution.",
              a.chainRate());
        counter("fpc_serve_accel_sblock_execs",
                "Superblock executions (threaded backend).",
                a.sblockExecs);
        counter("fpc_serve_accel_fusion_hits",
                "Fused superinstruction executions (threaded "
                "backend).",
                a.sblockFusionHits);
        counter("fpc_serve_accel_deferred_flushes",
                "Deferred-accounting folds into MachineStats.",
                a.deferredFlushes);
        counter("fpc_serve_accel_probe_sites",
                "Probe code ranges armed at sink attach.",
                a.probeSites);
        counter("fpc_serve_accel_probe_deopt_blocks",
                "Superblocks invalidated by probe arming.",
                a.probeDeoptBlocks);
        counter("fpc_serve_accel_probe_eager_steps",
                "Instructions taken on the exact eager path inside "
                "armed probe ranges.",
                a.probeEagerSteps);
    }

    if (spans_) {
        counter("fpc_serve_spans_recorded",
                "Spans closed into the ring buffer.",
                spans_->recorded());
        counter("fpc_serve_spans_dropped",
                "Spans evicted from the full ring (oldest first).",
                spans_->dropped());
        counter("fpc_serve_span_faults",
                "Span bracketing violations detected.",
                spans_->faultCount());
        gauge("fpc_serve_spans_open",
              "Requests with a span currently open.",
              static_cast<double>(spans_->openCount()));
    }

    // Dynamic probe aggregations, live against the registry's merged
    // totals. All-gauge families (a probe can detach and re-attach,
    // so monotonicity is not guaranteed); one labeled sample per
    // attached probe.
    {
        const auto probes = probes_.read();
        gauge("fpc_probe_attached", "Probes currently attached.",
              static_cast<double>(probes.size()));
        if (!probes.empty()) {
            os << "# HELP fpc_probe_hits Events matched per attached "
                  "probe.\n"
               << "# TYPE fpc_probe_hits gauge\n";
            for (const auto &[e, agg] : probes)
                os << "fpc_probe_hits{id=\"" << e.id << "\",spec=\""
                   << labelEscape(e.spec.text) << "\"} " << agg.hits
                   << "\n";
        }
        auto distFamily = [&](const char *name, const char *help,
                              obs::ProbeAction action) {
            bool any = false;
            for (const auto &entry : probes)
                if (entry.first.spec.action == action)
                    any = true;
            if (!any)
                return;
            os << "# HELP " << name << " " << help << "\n"
               << "# TYPE " << name << " gauge\n";
            for (const auto &[e, agg] : probes) {
                if (e.spec.action != action)
                    continue;
                double v = 0.0;
                if (agg.dist.count() != 0)
                    v = action == obs::ProbeAction::Sum
                            ? agg.dist.total()
                        : action == obs::ProbeAction::Min
                            ? agg.dist.min()
                            : agg.dist.max();
                os << name << "{id=\"" << e.id << "\"} " << v << "\n";
            }
        };
        distFamily("fpc_probe_value_sum",
                   "Sum of the probe's expression over matches.",
                   obs::ProbeAction::Sum);
        distFamily("fpc_probe_value_min",
                   "Minimum of the probe's expression over matches.",
                   obs::ProbeAction::Min);
        distFamily("fpc_probe_value_max",
                   "Maximum of the probe's expression over matches.",
                   obs::ProbeAction::Max);
        bool anyQuant = false;
        for (const auto &entry : probes)
            if (entry.first.spec.action == obs::ProbeAction::Quantize)
                anyQuant = true;
        if (anyQuant) {
            // pow="k": bucket k counts values in [2^(k-1), 2^k)
            // (pow="0" counts exact zeros); zero buckets elided.
            os << "# HELP fpc_probe_quantize_bucket Log2 histogram "
                  "of the probe's expression.\n"
               << "# TYPE fpc_probe_quantize_bucket gauge\n";
            for (const auto &[e, agg] : probes) {
                if (e.spec.action != obs::ProbeAction::Quantize)
                    continue;
                for (std::size_t b = 0;
                     b < agg.quant.buckets.size(); ++b) {
                    if (agg.quant.buckets[b] == 0)
                        continue;
                    os << "fpc_probe_quantize_bucket{id=\"" << e.id
                       << "\",pow=\"" << b << "\"} "
                       << agg.quant.buckets[b] << "\n";
                }
            }
        }
    }

    os << "# EOF\n";
    return os.str();
}

void
Server::drain()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        draining_ = true;
    }
    // Wake the accept loop; it exits and no new connections land.
    if (wakePipe_[1] >= 0) {
        [[maybe_unused]] ssize_t n = ::write(wakePipe_[1], "x", 1);
    }
    std::unique_lock<std::mutex> lock(mutex_);
    drainedCv_.wait(lock, [this] {
        return queuedTotal_ == 0 && inFlight_ == 0;
    });
}

double
Server::burnRate(const TenantState &t)
{
    // Fraction of requests blowing the SLO over the previous window
    // plus the current one, normalized by the 1% error budget: 1.0
    // means burning the budget exactly, 100 means everything is bad.
    const double good = static_cast<double>(t.prevWindowGood +
                                            t.windowGood);
    const double bad =
        static_cast<double>(t.prevWindowBad + t.windowBad);
    const double total = good + bad;
    if (total <= 0)
        return 0;
    return (bad / total) / 0.01;
}

void
Server::updateTenantGaugesLocked()
{
    // Rebuild the telemetry-provider mirror. Caller holds mutex_;
    // tenantGaugeMutex_ nests inside it (the provider takes only the
    // inner lock, so samplers never contend on mutex_).
    std::vector<std::pair<std::string, double>> g;
    for (const auto &entry : tenants_) {
        const TenantState &t = entry.second;
        if (t.counters.completed == 0 && t.config.sloMs <= 0)
            continue;
        const std::string base = "serve_tenant_" + entry.first + "_";
        g.emplace_back(base + "queue_wait_p50_ms", t.queueWait.p50());
        g.emplace_back(base + "queue_wait_p99_ms", t.queueWait.p99());
        g.emplace_back(base + "execute_p50_ms", t.execute.p50());
        g.emplace_back(base + "execute_p99_ms", t.execute.p99());
        if (t.config.sloMs > 0)
            g.emplace_back(base + "slo_burn_rate", burnRate(t));
    }
    std::lock_guard<std::mutex> lock(tenantGaugeMutex_);
    tenantGauges_ = std::move(g);
}

void
Server::checkSpansAtStop()
{
    if (!spans_)
        return;
    // checkSpans combines the collector's recorded discipline faults,
    // open-at-check spans (everything has drained, so those are real
    // leaks) and structural violations over the retained spans.
    spanFaults_ = obs::checkSpans(*spans_);
    if (!spanFaults_.empty()) {
        warn("fpcserve: {} span bracketing fault(s) detected",
             spanFaults_.size());
        if (!config_.postmortemDir.empty())
            obs::writeSpanPostmortem(config_.postmortemDir, "serve-",
                                     config_.driver, spanFaults_,
                                     *spans_);
    }
}

void
Server::writeSpansLog(std::ostream &os) const
{
    if (!spans_)
        return;
    obs::writeSpansLog(os, config_.driver, *spans_);
}

void
Server::writeSpansTrace(std::ostream &os) const
{
    if (!spans_)
        return;
    std::vector<const obs::Tracer *> xfer;
    if (config_.trace && runtime_)
        xfer = runtime_->tracers();
    obs::writeSpansPerfetto(os, *spans_, xfer);
}

void
Server::stop()
{
    if (!started_ || stopped_)
        return;
    stopped_ = true;
    drain();
    runtime_->stopPool();
    checkSpansAtStop();
    if (acceptThread_.joinable())
        acceptThread_.join();

    std::vector<std::thread> threads;
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        acceptClosed_ = true;
        for (const auto &c : conns_) {
            c->open.store(false, std::memory_order_relaxed);
            ::shutdown(c->fd, SHUT_RDWR);
        }
        threads.swap(connThreads_);
    }
    for (std::thread &t : threads)
        t.join();
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        conns_.clear();
    }

    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
    if (wakePipe_[0] >= 0) {
        ::close(wakePipe_[0]);
        ::close(wakePipe_[1]);
        wakePipe_[0] = wakePipe_[1] = -1;
    }
}

void
Server::writeMetricsJson(std::ostream &os) const
{
    runtime_->writeMetricsJson(os);
}

void
Server::writeOpenMetrics(std::ostream &os) const
{
    runtime_->writeOpenMetrics(os);
}

std::uint64_t
Server::jobsCompleted() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return jobsCompleted_;
}

std::uint64_t
Server::jobsRejected() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return rejectedQueue_ + rejectedQuota_ + rejectedDraining_;
}

} // namespace fpc::serve
