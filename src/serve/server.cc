#include "serve/server.hh"

#include <algorithm>
#include <cerrno>
#include <sstream>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.hh"
#include "lang/codegen.hh"

namespace fpc::serve
{

namespace
{

/** OpenMetrics label-value escaping: backslash, quote, newline. */
std::string
labelEscape(const std::string &value)
{
    std::string out;
    out.reserve(value.size());
    for (char c : value) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '"')
            out += "\\\"";
        else if (c == '\n')
            out += "\\n";
        else
            out += c;
    }
    return out;
}

double
msSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

Server::Conn::~Conn()
{
    if (fd >= 0)
        ::close(fd);
}

Server::Server(ServerConfig config)
    : config_(std::move(config)),
      latency_(config_.latencyBucketMs > 0 ? config_.latencyBucketMs
                                           : 0.25,
               std::max<std::size_t>(1, config_.latencyBuckets))
{
    if (config_.workers == 0)
        config_.workers = 1;
    maxInFlight_ = config_.maxInFlight != 0 ? config_.maxInFlight
                                            : config_.workers;
}

Server::~Server()
{
    stop();
}

void
Server::addProgram(const std::string &name,
                   std::shared_ptr<const std::vector<Module>> modules)
{
    if (!modules || modules->empty())
        panic("Server::addProgram: program has no modules");
    std::lock_guard<std::mutex> lock(cacheMutex_);
    programs_[name] = std::move(modules);
}

void
Server::start()
{
    if (started_)
        panic("Server::start called twice");
    started_ = true;

    sched::RuntimeConfig rc;
    rc.workers = config_.workers;
    rc.machine = config_.machine;
    rc.plan = config_.plan;
    rc.metrics = config_.metrics;
    rc.metricsInterval = config_.metricsInterval;
    rc.metricsCapacity = config_.metricsCapacity;
    rc.postmortemDir = config_.postmortemDir;
    rc.driver = config_.driver;
    rc.gaugeProvider =
        [this](std::vector<std::pair<std::string, double>> &g) {
            g.emplace_back("serve_queue_depth", gaugeQueue_.load());
            g.emplace_back("serve_in_flight", gaugeInFlight_.load());
        };
    runtime_ = std::make_unique<sched::Runtime>(rc);
    runtime_->startPool();

    windowStart_ = std::chrono::steady_clock::now();
    {
        // Pre-register configured tenants so the scrape shows them
        // before their first request.
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &entry : config_.tenants)
            tenantLocked(entry.first);
        tenantLocked("default");
    }

    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        fatal("fpcserve: socket() failed");
    const int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));
    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config_.port);
    if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) !=
        1)
        fatal("fpcserve: bad listen address '{}'", config_.host);
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0)
        fatal("fpcserve: cannot bind {}:{}", config_.host,
              config_.port);
    if (::listen(listenFd_, 64) != 0)
        fatal("fpcserve: listen() failed");
    socklen_t len = sizeof(addr);
    ::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&addr),
                  &len);
    port_ = ntohs(addr.sin_port);

    if (::pipe(wakePipe_) != 0)
        fatal("fpcserve: pipe() failed");

    acceptThread_ = std::thread([this] { acceptLoop(); });
}

void
Server::acceptLoop()
{
    while (true) {
        pollfd fds[2] = {{listenFd_, POLLIN, 0},
                         {wakePipe_[0], POLLIN, 0}};
        const int rc = ::poll(fds, 2, -1);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (fds[1].revents != 0)
            break; // drain/stop woke us
        if ((fds[0].revents & POLLIN) == 0)
            continue;
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            break;
        }
        auto conn = std::make_shared<Conn>();
        conn->fd = fd;
        std::lock_guard<std::mutex> lock(connMutex_);
        if (acceptClosed_) {
            break; // Conn destructor closes fd
        }
        conns_.push_back(conn);
        connThreads_.emplace_back(
            [this, conn] { connLoop(std::move(conn)); });
        accepted_.fetch_add(1, std::memory_order_relaxed);
    }
}

void
Server::connLoop(std::shared_ptr<Conn> conn)
{
    std::string payload;
    while (readFrame(conn->fd, payload)) {
        Request req;
        std::string err;
        if (!decodeRequest(payload, req, err)) {
            {
                std::lock_guard<std::mutex> lock(mutex_);
                ++badRequests_;
            }
            Reply reply;
            reply.status = Status::BadRequest;
            reply.error = err;
            sendReply(conn, reply);
            continue;
        }
        switch (req.op) {
          case ReqOp::Ping: {
            Reply reply;
            reply.status = Status::Pong;
            sendReply(conn, reply);
            break;
          }
          case ReqOp::Scrape: {
            Reply reply;
            reply.status = Status::ScrapeText;
            reply.text = scrapeText();
            sendReply(conn, reply);
            break;
          }
          case ReqOp::Submit:
            handleSubmit(conn, std::move(req.submit));
            break;
        }
    }
    conn->open.store(false, std::memory_order_relaxed);
}

std::shared_ptr<const std::vector<Module>>
Server::resolveModules(const SubmitRequest &req, std::string &err)
{
    std::lock_guard<std::mutex> lock(cacheMutex_);
    if (!req.program.empty()) {
        auto it = programs_.find(req.program);
        if (it == programs_.end()) {
            err = "unknown program '" + req.program + "'";
            return nullptr;
        }
        return it->second;
    }
    if (req.source.empty()) {
        err = "SUBMIT carries neither a program name nor source";
        return nullptr;
    }
    auto it = sourceCache_.find(req.source);
    if (it != sourceCache_.end())
        return it->second;
    try {
        auto modules = std::make_shared<const std::vector<Module>>(
            lang::compile(req.source));
        sourceCache_[req.source] = modules;
        return modules;
    } catch (const std::exception &e) {
        err = e.what();
        return nullptr;
    }
}

void
Server::handleSubmit(const std::shared_ptr<Conn> &conn,
                     SubmitRequest &&req)
{
    Reply reply;
    reply.reqId = req.reqId;

    // Compilation / registry lookup happens outside the serving lock:
    // it can be slow, and completions must not wait on it.
    std::string err;
    auto modules = resolveModules(req, err);
    if (!modules) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++badRequests_;
        }
        reply.status = Status::BadRequest;
        reply.error = err;
        sendReply(conn, reply);
        return;
    }

    std::string module = req.entryModule;
    if (module.empty()) {
        module = modules->front().name;
        for (const Module &m : *modules)
            if (m.name == "Main")
                module = "Main";
    }
    const std::string proc =
        req.entryProc.empty() ? "main" : req.entryProc;
    const std::string tenant =
        req.tenant.empty() ? "default" : req.tenant;

    {
        std::unique_lock<std::mutex> lock(mutex_);
        if (draining_) {
            ++rejectedDraining_;
            reply.status = Status::Draining;
            reply.error = "server is draining";
            lock.unlock();
            sendReply(conn, reply);
            return;
        }
        rollWindowLocked();
        TenantState &t = tenantLocked(tenant);
        ++t.counters.submitted;
        ++jobsSubmitted_;
        if (t.config.cyclesPerWindow > 0 &&
            t.counters.windowCycles >= t.config.cyclesPerWindow) {
            ++t.counters.rejectedQuota;
            ++rejectedQuota_;
            reply.status = Status::OverQuota;
            const double left =
                static_cast<double>(config_.quotaWindowMs) -
                msSince(windowStart_);
            reply.retryAfterMs = static_cast<std::uint32_t>(
                std::clamp(left, 1.0, 1.0e6));
            reply.error = "tenant simulated-cycle quota exhausted";
            lock.unlock();
            sendReply(conn, reply);
            return;
        }
        if (queuedTotal_ >= config_.queueCapacity) {
            ++t.counters.rejectedQueue;
            ++rejectedQueue_;
            reply.status = Status::Rejected;
            reply.retryAfterMs = retryAfterLocked();
            reply.error = "server queue full";
            lock.unlock();
            sendReply(conn, reply);
            return;
        }
        if (t.pending.size() >= t.config.maxQueued) {
            ++t.counters.rejectedQueue;
            ++rejectedQueue_;
            reply.status = Status::Rejected;
            reply.retryAfterMs = retryAfterLocked();
            reply.error = "tenant queue full";
            lock.unlock();
            sendReply(conn, reply);
            return;
        }

        Pending p;
        p.reqId = req.reqId;
        p.conn = conn;
        p.tenant = tenant;
        p.job = sched::Job{std::move(modules), std::move(module),
                           proc, std::move(req.args)};
        p.admitted = std::chrono::steady_clock::now();
        t.pending.push_back(std::move(p));
        t.counters.queued = t.pending.size();
        ++queuedTotal_;
        drr_.enqueue(tenant);
        pumpLocked();
        updateGaugesLocked();
    }
    // The reply comes from the completion callback once the job ran.
}

void
Server::pumpLocked()
{
    std::string tenant;
    while (inFlight_ < maxInFlight_ && drr_.pick(tenant)) {
        TenantState &t = tenants_.at(tenant);
        Pending p = std::move(t.pending.front());
        t.pending.pop_front();
        t.counters.queued = t.pending.size();
        --queuedTotal_;
        ++inFlight_;
        ++t.counters.inFlight;
        sched::Job job = std::move(p.job);
        auto meta = std::make_shared<Pending>(std::move(p));
        runtime_->enqueue(std::move(job),
                          [this, meta](sched::JobResult r) {
                              onComplete(*meta, std::move(r));
                          });
    }
}

void
Server::onComplete(const Pending &meta, sched::JobResult r)
{
    Reply reply;
    reply.reqId = meta.reqId;
    reply.status = Status::Ok;
    reply.jobOk = r.ok;
    reply.value = r.value;
    reply.stopReason = stopReasonName(r.reason);
    reply.error = r.error;
    reply.steps = r.steps;
    reply.cycles = r.cycles;
    if (!r.ok && !config_.postmortemDir.empty()) {
        reply.postmortem = config_.postmortemDir + "/job-" +
                           std::to_string(r.id) +
                           "-postmortem.json";
    }
    // Charge the books that admission reads BEFORE the reply goes
    // out: a client that resubmits the instant its Ok arrives must
    // see the quota already spent, not race the bookkeeping.
    const double ms = msSince(meta.admitted);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        TenantState &t = tenantLocked(meta.tenant);
        ++t.counters.completed;
        ++jobsCompleted_;
        if (!r.ok) {
            ++t.counters.failed;
            ++jobsFailed_;
        }
        t.counters.windowCycles += r.cycles;
        latency_.sample(ms);
    }

    // Reply before the in-flight count drops: once drain() returns,
    // every admitted job's result frame has been written.
    sendReply(meta.conn, reply);

    std::lock_guard<std::mutex> lock(mutex_);
    --inFlight_;
    --tenantLocked(meta.tenant).counters.inFlight;
    pumpLocked();
    updateGaugesLocked();
    if (draining_ && queuedTotal_ == 0 && inFlight_ == 0)
        drainedCv_.notify_all();
}

void
Server::rollWindowLocked()
{
    const auto window =
        std::chrono::milliseconds(config_.quotaWindowMs);
    const auto now = std::chrono::steady_clock::now();
    if (now - windowStart_ < window)
        return;
    while (now - windowStart_ >= window)
        windowStart_ += window;
    for (auto &entry : tenants_)
        entry.second.counters.windowCycles = 0;
}

Server::TenantState &
Server::tenantLocked(const std::string &name)
{
    auto it = tenants_.find(name);
    if (it == tenants_.end()) {
        TenantState ts;
        auto cfg = config_.tenants.find(name);
        ts.config = cfg != config_.tenants.end()
                        ? cfg->second
                        : config_.defaultTenant;
        it = tenants_.emplace(name, std::move(ts)).first;
        drr_.setQuantum(name, it->second.config.weight);
    }
    return it->second;
}

std::uint32_t
Server::retryAfterLocked() const
{
    // Estimate: the backlog's expected drain time at the observed
    // mean job latency (or a nominal 10ms before any completions).
    const double perJob =
        latency_.count() > 0 ? latency_.mean() : 10.0;
    const double backlog =
        static_cast<double>(queuedTotal_ + inFlight_);
    const double est =
        perJob * backlog / static_cast<double>(config_.workers);
    return static_cast<std::uint32_t>(std::clamp(est, 1.0, 30000.0));
}

void
Server::updateGaugesLocked()
{
    gaugeQueue_.store(static_cast<double>(queuedTotal_));
    gaugeInFlight_.store(static_cast<double>(inFlight_));
}

void
Server::sendReply(const std::shared_ptr<Conn> &conn,
                  const Reply &reply)
{
    if (!conn->open.load(std::memory_order_relaxed))
        return;
    const std::string payload = encodeReply(reply);
    std::lock_guard<std::mutex> lock(conn->writeMutex);
    if (!writeFrame(conn->fd, payload))
        conn->open.store(false, std::memory_order_relaxed);
}

bool
Server::draining() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return draining_;
}

std::string
Server::scrapeText() const
{
    std::ostringstream os;
    std::lock_guard<std::mutex> lock(mutex_);

    auto gauge = [&os](const char *name, const char *help,
                       double value) {
        os << "# HELP " << name << " " << help << "\n"
           << "# TYPE " << name << " gauge\n"
           << name << " " << value << "\n";
    };
    auto counter = [&os](const char *name, const char *help,
                         std::uint64_t value) {
        os << "# HELP " << name << " " << help << "\n"
           << "# TYPE " << name << " counter\n"
           << name << "_total " << value << "\n";
    };

    gauge("fpc_serve_queue_depth",
          "Jobs admitted but not yet dispatched.",
          static_cast<double>(queuedTotal_));
    gauge("fpc_serve_in_flight", "Jobs currently on the pool.",
          static_cast<double>(inFlight_));
    gauge("fpc_serve_workers", "Pool worker threads.",
          static_cast<double>(config_.workers));
    gauge("fpc_serve_draining", "1 while the server drains.",
          draining_ ? 1.0 : 0.0);
    counter("fpc_serve_connections", "Connections accepted.",
            accepted_.load(std::memory_order_relaxed));
    counter("fpc_serve_jobs_submitted", "SUBMIT requests received.",
            jobsSubmitted_);
    counter("fpc_serve_jobs_completed", "Jobs run to completion.",
            jobsCompleted_);
    counter("fpc_serve_jobs_failed",
            "Completed jobs that stopped on an error.", jobsFailed_);
    counter("fpc_serve_rejected_queue",
            "Submits rejected by a queue bound.", rejectedQueue_);
    counter("fpc_serve_rejected_quota",
            "Submits rejected by a tenant cycle quota.",
            rejectedQuota_);
    counter("fpc_serve_rejected_draining",
            "Submits answered DRAINING during shutdown.",
            rejectedDraining_);
    counter("fpc_serve_bad_requests",
            "Frames that failed to decode or resolve.", badRequests_);
    gauge("fpc_serve_job_latency_ms_p50",
          "Median job latency, admission to completion.",
          latency_.p50());
    gauge("fpc_serve_job_latency_ms_p90", "90th percentile latency.",
          latency_.p90());
    gauge("fpc_serve_job_latency_ms_p99", "99th percentile latency.",
          latency_.p99());
    gauge("fpc_serve_job_latency_ms_mean", "Mean job latency.",
          latency_.mean());

    // Per-tenant families: one HELP/TYPE header, one labeled sample
    // per tenant.
    auto tenantGauge =
        [&](const char *name, const char *help,
            double (*get)(const TenantState &)) {
            os << "# HELP " << name << " " << help << "\n"
               << "# TYPE " << name << " gauge\n";
            for (const auto &entry : tenants_) {
                os << name << "{tenant=\""
                   << labelEscape(entry.first) << "\"} "
                   << get(entry.second) << "\n";
            }
        };
    auto tenantCounter =
        [&](const char *name, const char *help,
            std::uint64_t (*get)(const TenantState &)) {
            os << "# HELP " << name << " " << help << "\n"
               << "# TYPE " << name << " counter\n";
            for (const auto &entry : tenants_) {
                os << name << "_total{tenant=\""
                   << labelEscape(entry.first) << "\"} "
                   << get(entry.second) << "\n";
            }
        };
    tenantGauge("fpc_serve_tenant_queued",
                "Jobs waiting in the tenant's queue.",
                [](const TenantState &t) {
                    return static_cast<double>(t.counters.queued);
                });
    tenantGauge("fpc_serve_tenant_in_flight",
                "The tenant's jobs on the pool.",
                [](const TenantState &t) {
                    return static_cast<double>(t.counters.inFlight);
                });
    tenantGauge("fpc_serve_tenant_weight", "DRR dispatch weight.",
                [](const TenantState &t) { return t.config.weight; });
    tenantGauge("fpc_serve_tenant_window_cycles",
                "Simulated cycles spent in the current quota window.",
                [](const TenantState &t) {
                    return static_cast<double>(
                        t.counters.windowCycles);
                });
    tenantCounter("fpc_serve_tenant_submitted",
                  "SUBMITs received for the tenant.",
                  [](const TenantState &t) {
                      return t.counters.submitted;
                  });
    tenantCounter("fpc_serve_tenant_completed",
                  "The tenant's jobs run to completion.",
                  [](const TenantState &t) {
                      return t.counters.completed;
                  });
    tenantCounter("fpc_serve_tenant_rejected",
                  "The tenant's submits rejected (queue or quota).",
                  [](const TenantState &t) {
                      return t.counters.rejectedQueue +
                             t.counters.rejectedQuota;
                  });

    os << "# EOF\n";
    return os.str();
}

void
Server::drain()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        draining_ = true;
    }
    // Wake the accept loop; it exits and no new connections land.
    if (wakePipe_[1] >= 0) {
        [[maybe_unused]] ssize_t n = ::write(wakePipe_[1], "x", 1);
    }
    std::unique_lock<std::mutex> lock(mutex_);
    drainedCv_.wait(lock, [this] {
        return queuedTotal_ == 0 && inFlight_ == 0;
    });
}

void
Server::stop()
{
    if (!started_ || stopped_)
        return;
    stopped_ = true;
    drain();
    runtime_->stopPool();
    if (acceptThread_.joinable())
        acceptThread_.join();

    std::vector<std::thread> threads;
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        acceptClosed_ = true;
        for (const auto &c : conns_) {
            c->open.store(false, std::memory_order_relaxed);
            ::shutdown(c->fd, SHUT_RDWR);
        }
        threads.swap(connThreads_);
    }
    for (std::thread &t : threads)
        t.join();
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        conns_.clear();
    }

    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
    if (wakePipe_[0] >= 0) {
        ::close(wakePipe_[0]);
        ::close(wakePipe_[1]);
        wakePipe_[0] = wakePipe_[1] = -1;
    }
}

void
Server::writeMetricsJson(std::ostream &os) const
{
    runtime_->writeMetricsJson(os);
}

void
Server::writeOpenMetrics(std::ostream &os) const
{
    runtime_->writeOpenMetrics(os);
}

std::uint64_t
Server::jobsCompleted() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return jobsCompleted_;
}

std::uint64_t
Server::jobsRejected() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return rejectedQueue_ + rejectedQuota_ + rejectedDraining_;
}

} // namespace fpc::serve
