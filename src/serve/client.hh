/**
 * @file
 * A small blocking client for the fpc-serve-v1 protocol, used by the
 * load generator, the tests, and anything else that wants to talk to
 * a running fpcserve without hand-rolling frames.
 *
 * One Client is one connection. call() does a synchronous round trip
 * (closed-loop use); send()/recv() are the raw halves for pipelined
 * use — issue many SUBMITs, then collect completions out of order and
 * correlate by request id (typically from a dedicated reader thread).
 */

#ifndef FPC_SERVE_CLIENT_HH
#define FPC_SERVE_CLIENT_HH

#include <cstdint>
#include <string>

#include "serve/protocol.hh"

namespace fpc::serve
{

class Client
{
  public:
    Client() = default;
    ~Client() { close(); }

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    Client(Client &&other) noexcept
        : fd_(other.fd_), nextReqId_(other.nextReqId_)
    {
        other.fd_ = -1;
    }

    Client &
    operator=(Client &&other) noexcept
    {
        if (this != &other) {
            close();
            fd_ = other.fd_;
            nextReqId_ = other.nextReqId_;
            other.fd_ = -1;
        }
        return *this;
    }

    /** Connect to host:port; false (with a message in err) on
     *  failure. */
    bool connect(const std::string &host, std::uint16_t port,
                 std::string &err);

    void close();
    bool connected() const { return fd_ >= 0; }
    int fd() const { return fd_; }

    /** @name Raw pipelined halves. @{ */
    bool send(const Request &req);
    bool recv(Reply &reply);
    /** @} */

    /** Synchronous round trip (single outstanding request). */
    bool call(const Request &req, Reply &reply);

    /** @name Convenience round trips. @{ */
    bool submitSource(const std::string &tenant,
                      const std::string &source,
                      const std::vector<Word> &args, Reply &reply);
    bool submitProgram(const std::string &tenant,
                       const std::string &program,
                       const std::vector<Word> &args, Reply &reply);
    bool scrape(std::string &text);
    bool ping();
    /** Live probe management (PROBE op). probeAttach parses nothing
     *  client-side: the server answers BadRequest with a diagnosis in
     *  reply.error for malformed specs. @{ */
    bool probeAttach(const std::string &spec, Reply &reply);
    bool probeDetach(std::uint32_t id, Reply &reply);
    bool probeRead(std::string &text);
    /** @} */

  private:
    int fd_ = -1;
    std::uint32_t nextReqId_ = 1;
};

} // namespace fpc::serve

#endif // FPC_SERVE_CLIENT_HH
