/**
 * @file
 * The fpc-serve-v1 wire protocol: length-prefixed binary frames over
 * a stream socket.
 *
 * Every frame is a little-endian u32 payload length followed by that
 * many bytes. Payloads are flat little-endian structs built from u8 /
 * u16 / u32 / u64 scalars and u32-length-prefixed strings — no
 * nesting, no varints, so a client in any language is a page of code.
 *
 * Requests open with a u8 opcode; SUBMIT carries a client-chosen
 * request id that the matching reply echoes, so one connection can
 * pipeline many jobs and collect completions out of order (jobs
 * finish in whatever order the pool schedules them).
 */

#ifndef FPC_SERVE_PROTOCOL_HH
#define FPC_SERVE_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hh"

namespace fpc::serve
{

/** Frames above this are rejected before allocation: nothing the
 *  protocol carries legitimately approaches it. */
constexpr std::uint32_t maxFrameBytes = 1u << 24;

enum class ReqOp : std::uint8_t
{
    Submit = 1, ///< run a job
    Scrape = 2, ///< fetch the server's OpenMetrics exposition
    Ping = 3,   ///< liveness check
    Probe = 4,  ///< live probe attach / detach / read
};

/** Reply status. Submit replies use Ok/Rejected/OverQuota/Draining/
 *  BadRequest; Scrape answers ScrapeText; Ping answers Pong; Probe
 *  answers ProbeText (or BadRequest). */
enum class Status : std::uint8_t
{
    Ok = 0,         ///< the job ran; see the result fields
    Rejected = 1,   ///< queue full — back off retryAfterMs
    OverQuota = 2,  ///< tenant cycle quota spent — retryAfterMs
    Draining = 3,   ///< server is shutting down, resubmit elsewhere
    BadRequest = 4, ///< malformed frame / unknown program / bad source
    ScrapeText = 5,
    Pong = 6,
    ProbeText = 7,  ///< probe op accepted; text carries the payload
};

/** ProbeRequest action selector. */
enum class ProbeAction : std::uint8_t
{
    Attach = 1, ///< parse spec and attach; reply text = probe id
    Detach = 2, ///< detach probe id
    Read = 3,   ///< reply text = the fpc-probes-v1 document
};

const char *statusName(Status status);

struct SubmitRequest
{
    std::uint32_t reqId = 0;
    /** Client-chosen correlation id, propagated into the server's
     *  span tree (fpc-spans-v1 / Perfetto exports) so a client can
     *  find its own requests in the server's telemetry; 0 = unset. */
    std::uint64_t traceId = 0;
    std::string tenant;      ///< empty → the server's default tenant
    std::string program;     ///< preloaded program name; empty → source
    std::string source;      ///< MiniMesa source when program is empty
    std::string entryModule; ///< empty → "Main" or the first module
    std::string entryProc;   ///< empty → "main"
    std::vector<Word> args;
};

/** Live probe management on a running daemon. Attach/detach mutate
 *  only the server's probe registry — jobs already executing keep
 *  their compiled snapshot and are never interrupted; the change
 *  takes effect from the next job dispatched. */
struct ProbeRequest
{
    std::uint32_t reqId = 0;
    ProbeAction action = ProbeAction::Read;
    std::string spec;       ///< Attach: the probe one-liner
    std::uint32_t id = 0;   ///< Detach: probe id to remove
};

struct Request
{
    ReqOp op = ReqOp::Ping;
    SubmitRequest submit; ///< valid when op == Submit
    ProbeRequest probe;   ///< valid when op == Probe
};

struct Reply
{
    std::uint32_t reqId = 0;
    Status status = Status::Pong;

    // Status::Ok — the job's outcome.
    bool jobOk = false;
    Word value = 0;
    std::string stopReason;
    std::string error; ///< job failure, or the BadRequest diagnosis
    std::uint64_t steps = 0;
    std::uint64_t cycles = 0;
    std::string postmortem; ///< bundle path prefix, when written

    /** Latency attribution echoed with every Ok reply: the server's
     *  span id for this request plus how long it sat queued
     *  (admission → execution start) and how long it executed, in
     *  host nanoseconds. Zero for replies that never reached a
     *  worker. */
    std::uint64_t spanId = 0;
    std::uint64_t queueNs = 0;
    std::uint64_t execNs = 0;

    // Status::Rejected / OverQuota — explicit backpressure.
    std::uint32_t retryAfterMs = 0;

    // Status::ScrapeText / ProbeText. For probe attach replies, text
    // is empty and probeId carries the assigned id; probe reads put
    // the fpc-probes-v1 document in text.
    std::string text;
    std::uint32_t probeId = 0;
};

/** @name Payload encoding.
 * encode* build a payload (no frame header); decode* parse one,
 * returning false with a diagnosis on truncated or malformed input
 * instead of throwing — the server answers BadRequest, it does not
 * die.
 * @{ */
std::string encodeRequest(const Request &req);
std::string encodeReply(const Reply &reply);
bool decodeRequest(std::string_view payload, Request &out,
                   std::string &err);
bool decodeReply(std::string_view payload, Reply &out,
                 std::string &err);
/** @} */

/** @name Framed blocking I/O on a connected socket.
 * Both return false on EOF or a socket error; writeFrame never raises
 * SIGPIPE. readFrame enforces maxFrameBytes.
 * @{ */
bool writeFrame(int fd, std::string_view payload);
bool readFrame(int fd, std::string &payload);
/** @} */

} // namespace fpc::serve

#endif // FPC_SERVE_PROTOCOL_HH
