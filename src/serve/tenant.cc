#include "serve/tenant.hh"

namespace fpc::serve
{

DrrDispatcher::Ent &
DrrDispatcher::ent(const std::string &tenant)
{
    auto [it, inserted] = index_.try_emplace(tenant, ents_.size());
    if (inserted) {
        Ent e;
        e.name = tenant;
        ents_.push_back(std::move(e));
    }
    return ents_[it->second];
}

void
DrrDispatcher::setQuantum(const std::string &tenant, double quantum)
{
    ent(tenant).quantum = quantum > 0 ? quantum : 1.0;
}

void
DrrDispatcher::enqueue(const std::string &tenant)
{
    Ent &e = ent(tenant);
    ++e.queued;
    ++total_;
    if (!e.active) {
        // Re-entering the ring starts a fresh turn: idle time banks
        // no deficit.
        e.active = true;
        e.charged = false;
        e.deficit = 0.0;
        ring_.push_back(index_[tenant]);
    }
}

bool
DrrDispatcher::pick(std::string &tenant_out)
{
    while (total_ > 0) {
        Ent &e = ents_[ring_.front()];
        if (e.queued == 0) {
            e.active = false;
            e.charged = false;
            e.deficit = 0.0;
            ring_.pop_front();
            continue;
        }
        if (!e.charged) {
            e.deficit += e.quantum;
            e.charged = true;
        }
        if (e.deficit >= 1.0) {
            e.deficit -= 1.0;
            --e.queued;
            --total_;
            tenant_out = e.name;
            if (e.queued == 0) {
                e.active = false;
                e.charged = false;
                e.deficit = 0.0;
                ring_.pop_front();
            }
            return true;
        }
        // Turn exhausted; rotate. Sub-unit quanta accumulate across
        // turns until they cover a job.
        e.charged = false;
        const std::size_t i = ring_.front();
        ring_.pop_front();
        ring_.push_back(i);
    }
    return false;
}

} // namespace fpc::serve
