/**
 * @file
 * The serving runtime: a persistent, multi-tenant front end over the
 * pooled sched::Runtime.
 *
 * A Server owns a listening TCP socket, one thread per connection
 * speaking the fpc-serve-v1 protocol, and a worker pool with
 * long-lived per-worker machine contexts. Jobs pass through three
 * stages:
 *
 *   admission — bounded: a global queue cap, a per-tenant queue cap,
 *       and a per-tenant simulated-cycle quota per time window. Over
 *       any limit the client gets an explicit backpressure reply
 *       (REJECTED / OVER_QUOTA with a retry-after hint) instead of an
 *       unbounded queue;
 *   dispatch — deficit-round-robin across tenants (see
 *       DrrDispatcher), so a flooding tenant cannot starve the
 *       others: dispatch share follows configured weights, not
 *       arrival counts;
 *   completion — the worker's callback sends the result frame on the
 *       job's connection (replies are pipelined and may complete out
 *       of order; the request id correlates).
 *
 * drain() implements graceful shutdown: stop accepting, let admitted
 * jobs finish, answer late submits with DRAINING, then stop the pool.
 * scrapeText() exposes queue depth, per-tenant gauges and job-latency
 * percentiles as a strict OpenMetrics exposition at any moment while
 * serving.
 */

#ifndef FPC_SERVE_SERVER_HH
#define FPC_SERVE_SERVER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sched/runtime.hh"
#include "serve/protocol.hh"
#include "serve/tenant.hh"
#include "stats/stats.hh"

namespace fpc::serve
{

struct ServerConfig
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 0; ///< 0 = ephemeral; read back via port()
    unsigned workers = 2;
    MachineConfig machine;
    LinkPlan plan;

    /** Jobs admitted but not yet dispatched, across all tenants. */
    std::size_t queueCapacity = 256;
    /** Jobs handed to the pool at once; 0 = one per worker (tenant
     *  queues hold the backlog, so fair dispatch stays responsive). */
    unsigned maxInFlight = 0;

    TenantConfig defaultTenant;
    std::map<std::string, TenantConfig> tenants;
    std::uint64_t quotaWindowMs = 1000;

    /** Job-latency histogram shape (milliseconds, admission to
     *  completion). */
    double latencyBucketMs = 0.25;
    std::size_t latencyBuckets = 1024;

    /** Machine-level telemetry per worker (exported after stop()). */
    bool metrics = false;
    Tick metricsInterval = obs::Telemetry::defaultInterval;
    std::size_t metricsCapacity = obs::Telemetry::defaultCapacity;
    /** Clock the telemetry off boundary samples (bounded-slop
     *  stamps) so accelerated workers keep their fast paths; see
     *  sched::RuntimeConfig::metricsSampled. */
    bool metricsSampled = false;

    /** Request-scoped span tracing (see obs::SpanCollector): every
     *  SUBMIT grows a request ⊃ admission/queued/dispatch/execute/
     *  reply tree, exported after stop() via writeSpansLog /
     *  writeSpansTrace. Host-time only: simulated stats and metrics
     *  are byte-identical with spans on or off. */
    bool spans = false;
    std::size_t spansCapacity = obs::SpanCollector::defaultCapacity;

    /** Per-worker XFER tracing on the pool (embedded into
     *  writeSpansTrace alongside the serve spans). */
    bool trace = false;
    std::size_t traceCapacity = obs::Tracer::defaultCapacity;

    /** When nonempty, failed jobs write postmortem bundles here and
     *  the result reply carries the bundle path. */
    std::string postmortemDir;

    /** Probe specs attached before start() (--probe=); clients can
     *  attach/detach/read more at runtime via the PROBE op. */
    std::vector<std::string> probeSpecs;

    std::string driver = "fpcserve";
};

class Server
{
  public:
    explicit Server(ServerConfig config);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Register a named program clients can SUBMIT by name instead of
     *  shipping source. Call before start(). */
    void addProgram(const std::string &name,
                    std::shared_ptr<const std::vector<Module>> modules);

    /** Bind, listen, bring up the pool and the accept thread. Throws
     *  FatalError when the address is unusable. */
    void start();

    /** The bound port (after start(); resolves port 0). */
    std::uint16_t port() const { return port_; }

    /** Graceful shutdown, phase one: stop accepting connections,
     *  answer new SUBMITs with DRAINING, block until every admitted
     *  job has completed and replied. Idempotent. */
    void drain();

    /** drain(), then stop the pool and join every thread. The
     *  telemetry exports below are valid afterwards. Idempotent;
     *  also run by the destructor. */
    void stop();

    bool draining() const;

    /** The server-level OpenMetrics exposition (live at any point
     *  while serving — this is what SCRAPE returns). */
    std::string scrapeText() const;

    /** @name Span exports (ServerConfig::spans).
     *  The collector is live while serving; the log/trace writers and
     *  spanFaults() are meant for after stop(), which runs the
     *  well-bracketing checker (writing a span-bracketing postmortem
     *  bundle into postmortemDir on any fault). @{ */
    const obs::SpanCollector *spanCollector() const
    {
        return spans_.get();
    }
    void writeSpansLog(std::ostream &os) const;
    /** Perfetto JSON: serve tracks, plus the per-worker XFER tracks
     *  when ServerConfig::trace is on. */
    void writeSpansTrace(std::ostream &os) const;
    const std::vector<obs::SpanFault> &spanFaults() const
    {
        return spanFaults_;
    }
    /** @} */

    /** @name Machine-level telemetry (valid after stop() when
     *  ServerConfig::metrics was set). @{ */
    void writeMetricsJson(std::ostream &os) const;
    void writeOpenMetrics(std::ostream &os) const;
    /** @} */

    const sched::Runtime &runtime() const { return *runtime_; }

    /** The live probe registry (attach/detach/read; fpc-probes-v1 via
     *  ProbeRegistry::writeJson). Valid from construction. */
    obs::ProbeRegistry &probes() { return probes_; }
    const obs::ProbeRegistry &probes() const { return probes_; }

    /** @name Totals for drivers and tests. @{ */
    std::uint64_t jobsCompleted() const;
    std::uint64_t jobsRejected() const;
    std::uint64_t connectionsAccepted() const { return accepted_; }
    const stats::Histogram &latencyHistogram() const
    {
        return latency_;
    }
    /** @} */

  private:
    /** One client connection. Completions on worker threads and the
     *  connection's reader thread both write frames; writeMutex
     *  serializes them. The fd closes when the last reference
     *  drops. */
    struct Conn
    {
        ~Conn();
        int fd = -1;
        std::mutex writeMutex;
        std::atomic<bool> open{true};
        std::uint32_t track = 0; ///< span Connection-track index
    };

    /** An admitted job waiting in its tenant's queue. */
    struct Pending
    {
        std::uint32_t reqId = 0;
        std::shared_ptr<Conn> conn;
        std::string tenant;
        sched::Job job;
        std::chrono::steady_clock::time_point admitted;
        std::int64_t admittedNs = 0; ///< nowNs() at admission
        std::uint64_t requestId = 0; ///< server-assigned span id
        std::uint64_t traceId = 0;   ///< client correlation id
        std::uint32_t spanTenant = obs::noTenant;
    };

    struct TenantState
    {
        TenantConfig config;
        TenantCounters counters;
        std::deque<Pending> pending;

        /** Latency attribution (milliseconds), sampled per completed
         *  request whether or not span collection is on. */
        stats::Histogram queueWait; ///< admission → execution start
        stats::Histogram execute;   ///< execution start → end
        stats::Histogram reply;     ///< execution end → reply sent

        /** SLO bookkeeping (TenantConfig::sloMs). Window counters
         *  roll with the quota window; the burn rate smooths over the
         *  previous window plus the current one. */
        std::uint64_t sloGood = 0;
        std::uint64_t sloBad = 0;
        std::uint64_t windowGood = 0;
        std::uint64_t windowBad = 0;
        std::uint64_t prevWindowGood = 0;
        std::uint64_t prevWindowBad = 0;

        std::uint32_t spanTenant = obs::noTenant;
    };

    void acceptLoop();
    void connLoop(std::shared_ptr<Conn> conn);
    void handleSubmit(const std::shared_ptr<Conn> &conn,
                      SubmitRequest &&req);
    void handleProbe(const std::shared_ptr<Conn> &conn,
                     const ProbeRequest &req);
    void onComplete(const Pending &meta, sched::JobResult r);
    std::shared_ptr<const std::vector<Module>>
    resolveModules(const SubmitRequest &req, std::string &err);

    /** Dispatch queued jobs to the pool while capacity allows, in
     *  DRR order. Caller holds mutex_. */
    void pumpLocked();
    void rollWindowLocked();
    TenantState &tenantLocked(const std::string &name);
    std::uint32_t retryAfterLocked() const;
    void updateGaugesLocked();
    void sendReply(const std::shared_ptr<Conn> &conn,
                   const Reply &reply);
    static double burnRate(const TenantState &t);
    void updateTenantGaugesLocked();
    void checkSpansAtStop();

    ServerConfig config_;
    unsigned maxInFlight_ = 0;
    /** Lives above runtime_ so every in-flight engine folds before
     *  the registry dies. */
    obs::ProbeRegistry probes_;
    std::unique_ptr<sched::Runtime> runtime_;

    int listenFd_ = -1;
    std::uint16_t port_ = 0;
    int wakePipe_[2] = {-1, -1};
    std::thread acceptThread_;
    std::mutex connMutex_;
    std::vector<std::shared_ptr<Conn>> conns_;
    std::vector<std::thread> connThreads_;
    bool acceptClosed_ = false; ///< under connMutex_

    // Serving state, under mutex_.
    mutable std::mutex mutex_;
    std::condition_variable drainedCv_;
    std::map<std::string, TenantState> tenants_;
    DrrDispatcher drr_;
    std::size_t queuedTotal_ = 0;
    unsigned inFlight_ = 0;
    bool draining_ = false;
    bool started_ = false;
    bool stopped_ = false;
    std::uint64_t jobsSubmitted_ = 0;
    std::uint64_t jobsCompleted_ = 0;
    std::uint64_t jobsFailed_ = 0;
    std::uint64_t rejectedQueue_ = 0;
    std::uint64_t rejectedQuota_ = 0;
    std::uint64_t rejectedDraining_ = 0;
    std::uint64_t badRequests_ = 0;
    stats::Histogram latency_;
    std::chrono::steady_clock::time_point windowStart_;

    std::atomic<std::uint64_t> accepted_{0};
    std::atomic<std::uint64_t> nextRequestId_{1};
    std::atomic<std::uint32_t> nextConnTrack_{0};

    std::unique_ptr<obs::SpanCollector> spans_;
    std::vector<obs::SpanFault> spanFaults_; ///< set by stop()

    // Mirrors for the (lock-free) telemetry gauge provider.
    std::atomic<double> gaugeQueue_{0};
    std::atomic<double> gaugeInFlight_{0};

    /** Per-tenant attribution/SLO gauges mirrored for the telemetry
     *  provider: rebuilt under mutex_ on completions, read on worker
     *  threads under its own lock so the sampler never takes
     *  mutex_. */
    mutable std::mutex tenantGaugeMutex_;
    std::vector<std::pair<std::string, double>> tenantGauges_;

    // Program registry and source-compile cache, under cacheMutex_.
    std::mutex cacheMutex_;
    std::map<std::string, std::shared_ptr<const std::vector<Module>>>
        programs_;
    std::map<std::string, std::shared_ptr<const std::vector<Module>>>
        sourceCache_;
};

} // namespace fpc::serve

#endif // FPC_SERVE_SERVER_HH
