#include "serve/client.hh"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace fpc::serve
{

bool
Client::connect(const std::string &host, std::uint16_t port,
                std::string &err)
{
    close();
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) {
        err = "socket() failed";
        return false;
    }
    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        err = "bad address '" + host + "'";
        close();
        return false;
    }
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        err = "connect to " + host + ":" + std::to_string(port) +
              " failed: " + std::strerror(errno);
        close();
        return false;
    }
    // Request/reply frames are tiny; don't let Nagle batch them.
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return true;
}

void
Client::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool
Client::send(const Request &req)
{
    if (fd_ < 0)
        return false;
    return writeFrame(fd_, encodeRequest(req));
}

bool
Client::recv(Reply &reply)
{
    if (fd_ < 0)
        return false;
    std::string payload;
    if (!readFrame(fd_, payload))
        return false;
    std::string err;
    return decodeReply(payload, reply, err);
}

bool
Client::call(const Request &req, Reply &reply)
{
    return send(req) && recv(reply);
}

bool
Client::submitSource(const std::string &tenant,
                     const std::string &source,
                     const std::vector<Word> &args, Reply &reply)
{
    Request req;
    req.op = ReqOp::Submit;
    req.submit.reqId = nextReqId_++;
    req.submit.tenant = tenant;
    req.submit.source = source;
    req.submit.args = args;
    return call(req, reply);
}

bool
Client::submitProgram(const std::string &tenant,
                      const std::string &program,
                      const std::vector<Word> &args, Reply &reply)
{
    Request req;
    req.op = ReqOp::Submit;
    req.submit.reqId = nextReqId_++;
    req.submit.tenant = tenant;
    req.submit.program = program;
    req.submit.args = args;
    return call(req, reply);
}

bool
Client::scrape(std::string &text)
{
    Request req;
    req.op = ReqOp::Scrape;
    Reply reply;
    if (!call(req, reply) || reply.status != Status::ScrapeText)
        return false;
    text = std::move(reply.text);
    return true;
}

bool
Client::ping()
{
    Request req;
    req.op = ReqOp::Ping;
    Reply reply;
    return call(req, reply) && reply.status == Status::Pong;
}

bool
Client::probeAttach(const std::string &spec, Reply &reply)
{
    Request req;
    req.op = ReqOp::Probe;
    req.probe.reqId = nextReqId_++;
    req.probe.action = ProbeAction::Attach;
    req.probe.spec = spec;
    return call(req, reply);
}

bool
Client::probeDetach(std::uint32_t id, Reply &reply)
{
    Request req;
    req.op = ReqOp::Probe;
    req.probe.reqId = nextReqId_++;
    req.probe.action = ProbeAction::Detach;
    req.probe.id = id;
    return call(req, reply);
}

bool
Client::probeRead(std::string &text)
{
    Request req;
    req.op = ReqOp::Probe;
    req.probe.reqId = nextReqId_++;
    req.probe.action = ProbeAction::Read;
    Reply reply;
    if (!call(req, reply) || reply.status != Status::ProbeText)
        return false;
    text = std::move(reply.text);
    return true;
}

} // namespace fpc::serve
