#include "common/logging.hh"

#include <iostream>

namespace fpc
{

namespace
{
bool quietMode = false;
LogLevel currentLevel = LogLevel::Info;

bool
enabled(LogLevel level)
{
    return !quietMode && level <= currentLevel;
}
} // namespace

void
setQuiet(bool quiet)
{
    quietMode = quiet;
}

const char *
logLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Error: return "error";
      case LogLevel::Warn: return "warn";
      case LogLevel::Info: return "info";
      case LogLevel::Debug: return "debug";
    }
    return "?";
}

bool
parseLogLevel(std::string_view name, LogLevel &out)
{
    if (name == "error") { out = LogLevel::Error; return true; }
    if (name == "warn") { out = LogLevel::Warn; return true; }
    if (name == "info") { out = LogLevel::Info; return true; }
    if (name == "debug") { out = LogLevel::Debug; return true; }
    return false;
}

void
setLogLevel(LogLevel level)
{
    currentLevel = level;
}

LogLevel
logLevel()
{
    return currentLevel;
}

void
panicImpl(const std::string &msg)
{
    if (!quietMode)
        std::cerr << "panic: " << msg << std::endl;
    throw PanicError(msg);
}

void
fatalImpl(const std::string &msg)
{
    if (!quietMode)
        std::cerr << "fatal: " << msg << std::endl;
    throw FatalError(msg);
}

void
errorImpl(const std::string &msg)
{
    if (enabled(LogLevel::Error))
        std::cerr << "error: " << msg << std::endl;
}

void
warnImpl(const std::string &msg)
{
    if (enabled(LogLevel::Warn))
        std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    if (enabled(LogLevel::Info))
        std::cerr << "info: " << msg << std::endl;
}

void
debugImpl(const std::string &msg)
{
    if (enabled(LogLevel::Debug))
        std::cerr << "debug: " << msg << std::endl;
}

} // namespace fpc
