#include "common/logging.hh"

#include <iostream>

namespace fpc
{

namespace
{
bool quietMode = false;
} // namespace

void
setQuiet(bool quiet)
{
    quietMode = quiet;
}

void
panicImpl(const std::string &msg)
{
    if (!quietMode)
        std::cerr << "panic: " << msg << std::endl;
    throw PanicError(msg);
}

void
fatalImpl(const std::string &msg)
{
    if (!quietMode)
        std::cerr << "fatal: " << msg << std::endl;
    throw FatalError(msg);
}

void
warnImpl(const std::string &msg)
{
    if (!quietMode)
        std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    if (!quietMode)
        std::cerr << "info: " << msg << std::endl;
}

} // namespace fpc
