/**
 * @file
 * Bit-field extraction and insertion helpers used by the packed
 * procedure-descriptor and GFT-entry encodings (paper §5.1).
 */

#ifndef FPC_COMMON_BITS_HH
#define FPC_COMMON_BITS_HH

#include <cstdint>

#include "common/logging.hh"

namespace fpc
{

/** Extract bits [lo, lo+width) of val (lo = 0 is the LSB). */
constexpr std::uint32_t
bits(std::uint32_t val, unsigned lo, unsigned width)
{
    return (val >> lo) & ((1u << width) - 1);
}

/** Return val with bits [lo, lo+width) replaced by field. */
constexpr std::uint32_t
insertBits(std::uint32_t val, unsigned lo, unsigned width,
           std::uint32_t field)
{
    const std::uint32_t mask = ((1u << width) - 1) << lo;
    return (val & ~mask) | ((field << lo) & mask);
}

/** True if val fits in an unsigned field of the given width. */
constexpr bool
fitsUnsigned(std::uint32_t val, unsigned width)
{
    return width >= 32 || val < (1u << width);
}

/** True if val fits in a signed field of the given width. */
constexpr bool
fitsSigned(std::int32_t val, unsigned width)
{
    const std::int32_t lim = 1 << (width - 1);
    return val >= -lim && val < lim;
}

/** Checked narrowing used by encoders: panics on overflow. */
inline std::uint32_t
checkedField(std::uint32_t val, unsigned width, const char *what)
{
    if (!fitsUnsigned(val, width))
        panic("field {} = {} does not fit in {} bits", what, val, width);
    return val;
}

} // namespace fpc

#endif // FPC_COMMON_BITS_HH
