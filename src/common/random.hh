/**
 * @file
 * Deterministic random number generation for workload synthesis.
 *
 * Every workload generator takes an explicit seed so experiments are
 * reproducible run-to-run; the engine is xoshiro256**, self-contained
 * so results do not depend on the host library's distributions.
 */

#ifndef FPC_COMMON_RANDOM_HH
#define FPC_COMMON_RANDOM_HH

#include <cstdint>
#include <vector>

namespace fpc
{

/** A small, fast, deterministic PRNG (xoshiro256**). */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double uniformReal();

    /** Bernoulli trial with probability p of true. */
    bool chance(double p);

    /** Geometric-ish depth sample: count of successes at probability p,
     *  clamped to maxCount. */
    unsigned geometric(double p, unsigned max_count);

    /** Sample an index according to the given (unnormalized) weights. */
    std::size_t weighted(const std::vector<double> &weights);

  private:
    std::uint64_t s_[4];
};

} // namespace fpc

#endif // FPC_COMMON_RANDOM_HH
