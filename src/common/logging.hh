/**
 * @file
 * Error and status reporting, following the gem5 discipline:
 *
 *  - panic(): an internal invariant of the simulator itself is broken;
 *    aborts (throws PanicError so tests can assert on it).
 *  - fatal(): the user's configuration or program is at fault; throws
 *    FatalError.
 *  - warn()/inform(): non-fatal status messages to stderr.
 */

#ifndef FPC_COMMON_LOGGING_HH
#define FPC_COMMON_LOGGING_HH

#include <stdexcept>
#include <string>

#include "common/strfmt.hh"

namespace fpc
{

/** Thrown by panic(): a bug in the simulator. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** Thrown by fatal(): a user error (bad program, bad configuration). */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Verbosity of the non-throwing channels (error/warn/inform/debug).
 *  Messages at or above the current level print to stderr; panic and
 *  fatal always print (they are about to throw). */
enum class LogLevel
{
    Error, ///< only error()
    Warn,  ///< + warn()
    Info,  ///< + inform() — the default
    Debug  ///< + debugMsg()
};

const char *logLevelName(LogLevel level);

/** Parse "error" | "warn" | "info" | "debug"; false on anything else. */
bool parseLogLevel(std::string_view name, LogLevel &out);

void setLogLevel(LogLevel level);
LogLevel logLevel();

[[noreturn]] void panicImpl(const std::string &msg);
[[noreturn]] void fatalImpl(const std::string &msg);
void errorImpl(const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
void debugImpl(const std::string &msg);

/** Report a simulator bug and abort via exception. */
template <typename... Args>
[[noreturn]] void
panic(std::string_view fmt, const Args &...args)
{
    panicImpl(strfmt(fmt, args...));
}

/** Report a user error and abort via exception. */
template <typename... Args>
[[noreturn]] void
fatal(std::string_view fmt, const Args &...args)
{
    fatalImpl(strfmt(fmt, args...));
}

/** Report a survivable error the program should still act on (a
 *  driver reporting it will typically exit nonzero). Never throws. */
template <typename... Args>
void
error(std::string_view fmt, const Args &...args)
{
    errorImpl(strfmt(fmt, args...));
}

/** Report a suspicious but survivable condition. */
template <typename... Args>
void
warn(std::string_view fmt, const Args &...args)
{
    warnImpl(strfmt(fmt, args...));
}

/** Report normal operating status. */
template <typename... Args>
void
inform(std::string_view fmt, const Args &...args)
{
    informImpl(strfmt(fmt, args...));
}

/** Diagnostic chatter, off unless --log-level=debug. */
template <typename... Args>
void
debugMsg(std::string_view fmt, const Args &...args)
{
    debugImpl(strfmt(fmt, args...));
}

/** Quiet warn/inform output (benchmarks set this). */
void setQuiet(bool quiet);

} // namespace fpc

#endif // FPC_COMMON_LOGGING_HH
