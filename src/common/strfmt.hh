/**
 * @file
 * Minimal type-safe string formatting.
 *
 * GCC 12 lacks std::format, so this provides a small substitute:
 * strfmt("x = {}, y = {}", x, y) replaces each "{}" in order with the
 * ostream rendering of the corresponding argument. Surplus placeholders
 * are left verbatim; surplus arguments are appended space-separated,
 * so a malformed format string never throws.
 */

#ifndef FPC_COMMON_STRFMT_HH
#define FPC_COMMON_STRFMT_HH

#include <sstream>
#include <string>
#include <string_view>

namespace fpc
{

namespace detail
{

inline void
strfmtRest(std::ostringstream &os, std::string_view fmt)
{
    os << fmt;
}

template <typename T, typename... Rest>
void
strfmtRest(std::ostringstream &os, std::string_view fmt, const T &val,
           const Rest &...rest)
{
    const auto pos = fmt.find("{}");
    if (pos == std::string_view::npos) {
        os << fmt << ' ' << val;
        (void)std::initializer_list<int>{((os << ' ' << rest), 0)...};
        return;
    }
    os << fmt.substr(0, pos) << val;
    strfmtRest(os, fmt.substr(pos + 2), rest...);
}

} // namespace detail

/** Render a "{}"-style format string with the given arguments. */
template <typename... Args>
std::string
strfmt(std::string_view fmt, const Args &...args)
{
    std::ostringstream os;
    detail::strfmtRest(os, fmt, args...);
    return os.str();
}

} // namespace fpc

#endif // FPC_COMMON_STRFMT_HH
