#include "common/random.hh"

#include "common/logging.hh"

namespace fpc
{

namespace
{

/** SplitMix64, used to expand the seed into xoshiro state. */
std::uint64_t
splitMix64(std::uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : s_)
        s = splitMix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::uniform(std::uint64_t lo, std::uint64_t hi)
{
    if (lo > hi)
        panic("Rng::uniform: lo {} > hi {}", lo, hi);
    const std::uint64_t span = hi - lo + 1;
    if (span == 0) // full 64-bit range
        return next();
    return lo + next() % span;
}

double
Rng::uniformReal()
{
    return (next() >> 11) * (1.0 / 9007199254740992.0);
}

bool
Rng::chance(double p)
{
    return uniformReal() < p;
}

unsigned
Rng::geometric(double p, unsigned max_count)
{
    unsigned n = 0;
    while (n < max_count && chance(p))
        ++n;
    return n;
}

std::size_t
Rng::weighted(const std::vector<double> &weights)
{
    double total = 0;
    for (double w : weights)
        total += w;
    if (total <= 0)
        panic("Rng::weighted: no positive weights");
    double pick = uniformReal() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        pick -= weights[i];
        if (pick <= 0)
            return i;
    }
    return weights.size() - 1;
}

} // namespace fpc
