/**
 * @file
 * Fundamental machine types for the FPC (Fast Procedure Calls) simulator.
 *
 * The simulated machine follows the Mesa processors described in the
 * paper: a 16-bit, word-addressed data memory, with byte-addressed code
 * inside code segments. Word addresses and code byte offsets are kept as
 * distinct types so they cannot be confused.
 */

#ifndef FPC_COMMON_TYPES_HH
#define FPC_COMMON_TYPES_HH

#include <cstddef>
#include <cstdint>

namespace fpc
{

/** A 16-bit machine word, the unit of data storage. */
using Word = std::uint16_t;

/** A 32-bit double word, used for intermediate arithmetic. */
using DWord = std::uint32_t;

/** Signed views of the above, for arithmetic instructions. */
using SWord = std::int16_t;
using SDWord = std::int32_t;

/**
 * A word address into simulated main memory. The simulated address
 * space is larger than 64K words (the paper's DIRECTCALL carries a
 * 24-bit program address), so addresses are 32 bits host-side.
 */
using Addr = std::uint32_t;

/** A byte offset into a code segment, relative to the code base. */
using CodeOffset = std::uint32_t;

/** An absolute code byte address: codeBase * 2 + offset. */
using CodeByteAddr = std::uint32_t;

/** Count types for statistics. */
using Tick = std::uint64_t;
using CountT = std::uint64_t;

/** Number of bytes in a simulated word. */
constexpr unsigned wordBytes = 2;

/** An invalid/NIL address marker (cannot be a valid frame pointer). */
constexpr Addr nilAddr = 0;

} // namespace fpc

#endif // FPC_COMMON_TYPES_HH
