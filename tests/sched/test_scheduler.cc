/**
 * @file
 * Tests for the fpc_sched library: the in-VM preemptive scheduler
 * (round-robin fairness, priority dispatch, blocking, preemption
 * through the real ProcSwitch fallback paths, determinism) and the
 * multi-worker Runtime (job correctness, failure isolation, merged
 * statistics).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>

#include "obs/json.hh"
#include "obs/spans.hh"

#include "common/logging.hh"
#include "lang/codegen.hh"
#include "machine/machine.hh"
#include "program/loader.hh"
#include "sched/runtime.hh"
#include "sched/scheduler.hh"

namespace fpc
{
namespace
{

struct Combo
{
    Impl impl;
    CallLowering lowering;
    bool shortCalls;
};

std::vector<Combo>
allCombos()
{
    return {
        {Impl::Simple, CallLowering::Fat, false},
        {Impl::Mesa, CallLowering::Mesa, false},
        {Impl::Ifu, CallLowering::Direct, true},
        {Impl::Banked, CallLowering::Direct, true},
    };
}

struct Rig
{
    SystemLayout layout;
    Memory mem;
    LoadedImage image;
    Machine machine;

    Rig(const std::vector<Module> &modules, const Combo &combo,
        std::uint64_t timeslice = 0)
        : mem(layout.memWords),
          image(load(modules, combo)),
          machine(mem, image, config(combo, timeslice))
    {
    }

  private:
    LoadedImage load(const std::vector<Module> &modules,
                     const Combo &combo)
    {
        Loader loader{layout, SizeClasses::standard()};
        for (const auto &m : modules)
            loader.add(m);
        LinkPlan plan;
        plan.lowering = combo.lowering;
        plan.shortCalls = combo.shortCalls;
        return loader.load(mem, plan);
    }

    static MachineConfig config(const Combo &combo,
                                std::uint64_t timeslice)
    {
        MachineConfig c;
        c.impl = combo.impl;
        c.timesliceSteps = timeslice;
        return c;
    }
};

/** Three-pass worker: out id*10+i, yield, repeat (c7's shape). */
std::vector<Module>
yieldingWorkers()
{
    return lang::compile(R"(
        module Procs;
        proc worker(id) {
            var i;
            i = 0;
            while (i < 3) {
                out id * 10 + i;
                yield;
                i = i + 1;
            }
            return id;
        }
    )");
}

/** Recursion + output: exercises deep frame chains so a preemption's
 *  bank writeback / return-stack flush has state to get wrong. */
std::vector<Module>
fibTracer()
{
    return lang::compile(R"(
        module Fib;
        proc fib(n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        proc main(n) {
            var i;
            i = 1;
            while (i <= n) {
                out fib(i);
                i = i + 1;
            }
            return fib(n);
        }
    )");
}

// ---------------------------------------------------------------------
// Layer 1: the in-VM scheduler.
// ---------------------------------------------------------------------

TEST(RoundRobin, FairInterleavingAcrossEngines)
{
    const std::vector<Word> want = {10, 20, 30, 11, 21, 31, 12, 22, 32};
    for (const Combo &combo : allCombos()) {
        Rig rig(yieldingWorkers(), combo);
        sched::Scheduler sched(rig.machine);
        sched.spawn("Procs", "worker", std::array<Word, 1>{Word{1}});
        sched.spawn("Procs", "worker", std::array<Word, 1>{Word{2}});
        sched.spawn("Procs", "worker", std::array<Word, 1>{Word{3}});

        const RunResult last = sched.runAll();
        EXPECT_EQ(last.reason, StopReason::TopReturn)
            << implName(combo.impl);
        EXPECT_EQ(rig.machine.output(), want) << implName(combo.impl);
        EXPECT_EQ(sched.liveCount(), 0u);
        EXPECT_EQ(sched.stats().completions, 3u);
        for (unsigned pid = 0; pid < 3; ++pid) {
            const sched::Process &p = sched.process(pid);
            EXPECT_EQ(p.state, sched::ProcState::Done);
            ASSERT_TRUE(p.result.has_value());
            EXPECT_EQ(*p.result, pid + 1);
            EXPECT_GT(p.stepsRun, 0u);
        }
        // 3 workers x 3 yields each; the final yield of each worker
        // also counts (it requeues and later resumes to return).
        EXPECT_EQ(sched.stats().yields, 9u) << implName(combo.impl);
    }
}

TEST(RoundRobin, StepAccountingSumsToMachineSteps)
{
    const Combo combo{Impl::Mesa, CallLowering::Mesa, false};
    Rig rig(yieldingWorkers(), combo);
    sched::Scheduler sched(rig.machine);
    sched.spawn("Procs", "worker", std::array<Word, 1>{Word{1}});
    sched.spawn("Procs", "worker", std::array<Word, 1>{Word{2}});
    sched.runAll();
    CountT attributed = 0;
    for (unsigned pid = 0; pid < 2; ++pid)
        attributed += sched.process(pid).stepsRun;
    EXPECT_EQ(attributed, rig.machine.stats().steps);
}

TEST(PriorityPolicy, HighestPriorityRunsToCompletionFirst)
{
    // Workers with priority == id. Under the priority policy a yield
    // requeues the yielder, but pickNext takes the max again, so the
    // priority-5 worker monopolizes the machine until it returns.
    const std::vector<Word> want = {50, 51, 52, 30, 31, 32,
                                    10, 11, 12};
    for (const Combo &combo : allCombos()) {
        Rig rig(yieldingWorkers(), combo);
        sched::Scheduler sched(rig.machine,
                               sched::Policy::Priority);
        sched.spawn("Procs", "worker", std::array<Word, 1>{Word{1}},
                    1);
        sched.spawn("Procs", "worker", std::array<Word, 1>{Word{5}},
                    5);
        sched.spawn("Procs", "worker", std::array<Word, 1>{Word{3}},
                    3);
        sched.runAll();
        EXPECT_EQ(rig.machine.output(), want) << implName(combo.impl);
    }
}

TEST(Blocking, BlockedProcessSkippedUntilSignalled)
{
    const Combo combo{Impl::Banked, CallLowering::Direct, true};
    Rig rig(yieldingWorkers(), combo);
    sched::Scheduler sched(rig.machine);
    const unsigned a =
        sched.spawn("Procs", "worker", std::array<Word, 1>{Word{1}});
    const unsigned b =
        sched.spawn("Procs", "worker", std::array<Word, 1>{Word{2}});
    const Word event = 77;
    sched.block(b, event);
    EXPECT_EQ(sched.blockedCount(), 1u);

    sched.runAll();
    // Only worker 1 ran; worker 2 is still parked.
    EXPECT_EQ(rig.machine.output(),
              (std::vector<Word>{10, 11, 12}));
    EXPECT_EQ(sched.process(a).state, sched::ProcState::Done);
    EXPECT_EQ(sched.process(b).state, sched::ProcState::Blocked);
    EXPECT_EQ(sched.liveCount(), 1u);

    EXPECT_EQ(sched.signal(event), 1u);
    EXPECT_EQ(sched.signal(event), 0u); // idempotent
    sched.runAll();
    EXPECT_EQ(rig.machine.output(),
              (std::vector<Word>{10, 11, 12, 20, 21, 22}));
    EXPECT_EQ(sched.liveCount(), 0u);
}

TEST(Preemption, StateEquivalentToUnpreemptedRun)
{
    // The §7.1 fallback claim in executable form: preempting every 37
    // instructions — return stack flushed on I3, every bank written
    // back on I4 — must not change a single output word or the result.
    for (const Combo &combo : allCombos()) {
        Rig plain(fibTracer(), combo);
        plain.machine.start("Fib", "main",
                            std::array<Word, 1>{Word{10}});
        ASSERT_EQ(plain.machine.run().reason, StopReason::TopReturn);
        const Word plainResult = plain.machine.popValue();
        const std::vector<Word> plainOut = plain.machine.output();

        Rig sliced(fibTracer(), combo, /*timeslice=*/37);
        sched::Scheduler sched(sliced.machine);
        sched.spawn("Fib", "main", std::array<Word, 1>{Word{10}});
        ASSERT_EQ(sched.runAll().reason, StopReason::TopReturn)
            << implName(combo.impl);

        const sched::Process &p = sched.process(0);
        ASSERT_TRUE(p.result.has_value());
        EXPECT_EQ(*p.result, plainResult) << implName(combo.impl);
        EXPECT_EQ(sliced.machine.output(), plainOut)
            << implName(combo.impl);

        const MachineStats &s = sliced.machine.stats();
        EXPECT_GT(s.preemptions, 0u) << implName(combo.impl);
        EXPECT_EQ(s.preemptions, sched.stats().preemptions);
        if (combo.impl == Impl::Ifu) {
            EXPECT_GT(s.returnStackFlushes, 0u);
        }
        if (combo.impl == Impl::Banked) {
            EXPECT_GT(s.bankFlushWords, 0u);
        }
    }
}

TEST(Preemption, InterleavesProcessesWithoutYields)
{
    // No voluntary yields at all: two fib processes share the machine
    // purely via the timeslice trap, and both must finish correctly.
    const Combo combo{Impl::Banked, CallLowering::Direct, true};
    Rig rig(fibTracer(), combo, /*timeslice=*/50);
    sched::Scheduler sched(rig.machine);
    sched.spawn("Fib", "main", std::array<Word, 1>{Word{9}});
    sched.spawn("Fib", "main", std::array<Word, 1>{Word{9}});
    ASSERT_EQ(sched.runAll().reason, StopReason::TopReturn);
    EXPECT_EQ(sched.liveCount(), 0u);
    EXPECT_EQ(*sched.process(0).result, 34u); // fib(9)
    EXPECT_EQ(*sched.process(1).result, 34u);
    EXPECT_GT(sched.process(0).preemptions, 0u);
    EXPECT_GT(sched.process(1).preemptions, 0u);
    // Both processes' output streams interleave; sorting by value
    // must recover two copies of the unpreempted trace.
    Rig plain(fibTracer(), combo);
    plain.machine.start("Fib", "main", std::array<Word, 1>{Word{9}});
    plain.machine.run();
    auto got = rig.machine.output();
    auto want = plain.machine.output();
    want.insert(want.end(), plain.machine.output().begin(),
                plain.machine.output().end());
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want);
}

TEST(Preemption, DeterministicAcrossIdenticalRuns)
{
    const Combo combo{Impl::Ifu, CallLowering::Direct, true};
    auto run = [&](std::vector<Word> &out, CountT &steps) {
        Rig rig(fibTracer(), combo, /*timeslice=*/41);
        sched::Scheduler sched(rig.machine);
        sched.spawn("Fib", "main", std::array<Word, 1>{Word{11}});
        sched.spawn("Fib", "main", std::array<Word, 1>{Word{8}});
        ASSERT_EQ(sched.runAll().reason, StopReason::TopReturn);
        out = rig.machine.output();
        steps = rig.machine.stats().steps;
    };
    std::vector<Word> out1, out2;
    CountT steps1 = 0, steps2 = 0;
    run(out1, steps1);
    run(out2, steps2);
    EXPECT_EQ(out1, out2);
    EXPECT_EQ(steps1, steps2);
}

TEST(RetainedRoots, SchedulerReclaimsRootFramesExplicitly)
{
    // §4: root activations are retained frames — the worker's own
    // return must not free them (retainedSkips counts the skips);
    // complete() releases them, so nothing leaks by the end.
    const Combo combo{Impl::Mesa, CallLowering::Mesa, false};
    Rig rig(yieldingWorkers(), combo);
    sched::Scheduler sched(rig.machine);
    sched.spawn("Procs", "worker", std::array<Word, 1>{Word{1}});
    sched.spawn("Procs", "worker", std::array<Word, 1>{Word{2}});
    sched.runAll();
    const FrameHeapStats &h = rig.machine.heap().stats();
    EXPECT_GE(h.retainedSkips, 2u);
    EXPECT_EQ(h.allocs, h.frees);
}

// ---------------------------------------------------------------------
// Layer 2: the multi-worker Runtime.
// ---------------------------------------------------------------------

std::shared_ptr<const std::vector<Module>>
shared(std::vector<Module> m)
{
    return std::make_shared<const std::vector<Module>>(std::move(m));
}

TEST(Runtime, JobsCorrectAcrossWorkerCounts)
{
    // fib(10) == 55 regardless of which worker ran it or how many
    // workers there were; merged steps are worker-count invariant.
    const auto prog = shared(fibTracer());
    CountT steps1 = 0;
    for (const unsigned workers : {1u, 3u}) {
        sched::RuntimeConfig rc;
        rc.workers = workers;
        rc.machine.impl = Impl::Banked;
        rc.plan.lowering = CallLowering::Direct;
        rc.plan.shortCalls = true;
        sched::Runtime runtime(rc);
        for (unsigned j = 0; j < 6; ++j)
            runtime.submit({prog, "Fib", "main", {10}});
        const auto results = runtime.run();
        ASSERT_EQ(results.size(), 6u);
        for (const sched::JobResult &r : results) {
            EXPECT_TRUE(r.ok) << r.error;
            EXPECT_EQ(r.value, 55u);
            EXPECT_GT(r.steps, 0u);
        }
        EXPECT_EQ(
            runtime.stats().findCounter("jobs_completed").value(),
            6u);
        EXPECT_EQ(runtime.stats().findCounter("jobs_failed").value(),
                  0u);
        EXPECT_EQ(
            runtime.stats().findDistribution("job_steps").count(),
            6u);
        if (workers == 1)
            steps1 = runtime.machineStats().steps;
        else
            EXPECT_EQ(runtime.machineStats().steps, steps1);
    }
}

TEST(Runtime, FailingJobIsIsolated)
{
    const auto bad = shared(lang::compile(R"(
        module Oops;
        proc main(n) { return 100 / n; }
    )"));
    sched::RuntimeConfig rc;
    rc.workers = 2;
    sched::Runtime runtime(rc);
    runtime.submit({bad, "Oops", "main", {4}});  // fine: 25
    runtime.submit({bad, "Oops", "main", {0}});  // divide by zero
    runtime.submit({bad, "Oops", "main", {10}}); // fine: 10
    const auto results = runtime.run();
    ASSERT_EQ(results.size(), 3u);
    EXPECT_TRUE(results[0].ok);
    EXPECT_EQ(results[0].value, 25u);
    EXPECT_FALSE(results[1].ok);
    EXPECT_FALSE(results[1].error.empty());
    EXPECT_TRUE(results[2].ok);
    EXPECT_EQ(results[2].value, 10u);
    EXPECT_EQ(runtime.stats().findCounter("jobs_completed").value(),
              2u);
    EXPECT_EQ(runtime.stats().findCounter("jobs_failed").value(), 1u);
}

TEST(Runtime, RunTwicePanics)
{
    const auto prog = shared(fibTracer());
    sched::RuntimeConfig rc;
    rc.workers = 1;
    sched::Runtime runtime(rc);
    runtime.submit({prog, "Fib", "main", {5}});
    runtime.run();
    EXPECT_THROW(runtime.run(), PanicError);
    EXPECT_THROW(runtime.submit({prog, "Fib", "main", {5}}),
                 PanicError);
}

TEST(Runtime, RunAndPoolModesAreExclusive)
{
    const auto prog = shared(fibTracer());
    {
        sched::RuntimeConfig rc;
        rc.workers = 1;
        sched::Runtime runtime(rc);
        runtime.startPool();
        EXPECT_THROW(runtime.run(), PanicError);
        EXPECT_THROW(runtime.startPool(), PanicError);
        runtime.stopPool();
    }
    {
        sched::RuntimeConfig rc;
        rc.workers = 1;
        sched::Runtime runtime(rc);
        runtime.submit({prog, "Fib", "main", {5}});
        runtime.run();
        EXPECT_THROW(runtime.startPool(), PanicError);
    }
    {
        sched::RuntimeConfig rc;
        rc.workers = 1;
        sched::Runtime runtime(rc);
        EXPECT_THROW(
            runtime.enqueue({prog, "Fib", "main", {5}}, nullptr),
            PanicError);
    }
}

TEST(Runtime, PoolEnqueueCompletesEveryJob)
{
    const auto prog = shared(fibTracer());
    sched::RuntimeConfig rc;
    rc.workers = 2;
    rc.machine.impl = Impl::Banked;
    rc.plan.lowering = CallLowering::Direct;
    rc.plan.shortCalls = true;
    sched::Runtime runtime(rc);
    runtime.startPool();

    std::mutex mu;
    std::vector<sched::JobResult> results;
    for (unsigned j = 0; j < 12; ++j)
        runtime.enqueue({prog, "Fib", "main", {10}},
                        [&](sched::JobResult r) {
                            std::lock_guard<std::mutex> lock(mu);
                            results.push_back(std::move(r));
                        });
    runtime.drainPool();
    EXPECT_EQ(runtime.queuedJobs(), 0u);
    EXPECT_EQ(runtime.runningJobs(), 0u);
    ASSERT_EQ(results.size(), 12u);
    for (const sched::JobResult &r : results) {
        EXPECT_TRUE(r.ok) << r.error;
        EXPECT_EQ(r.value, 55u);
    }
    runtime.stopPool();
    EXPECT_EQ(runtime.stats().findCounter("jobs_completed").value(),
              12u);
    EXPECT_EQ(runtime.stats().findCounter("jobs_failed").value(), 0u);
}

TEST(Runtime, PoolReusesWorkerContextsDeterministically)
{
    // One worker, four identical jobs: the first builds the context,
    // the rest recycle it — and recycling must be invisible to the
    // simulated outcome (same value, same step count every time).
    const auto prog = shared(fibTracer());
    sched::RuntimeConfig rc;
    rc.workers = 1;
    sched::Runtime runtime(rc);
    runtime.startPool();
    std::mutex mu;
    std::vector<sched::JobResult> results;
    for (unsigned j = 0; j < 4; ++j)
        runtime.enqueue({prog, "Fib", "main", {9}},
                        [&](sched::JobResult r) {
                            std::lock_guard<std::mutex> lock(mu);
                            results.push_back(std::move(r));
                        });
    runtime.drainPool();
    runtime.stopPool();
    ASSERT_EQ(results.size(), 4u);
    for (const sched::JobResult &r : results) {
        EXPECT_TRUE(r.ok) << r.error;
        EXPECT_EQ(r.value, results[0].value);
        EXPECT_EQ(r.steps, results[0].steps);
    }
    EXPECT_EQ(runtime.stats().findCounter("context_builds").value(),
              1u);
    EXPECT_EQ(runtime.stats().findCounter("context_reuses").value(),
              3u);
}

TEST(Runtime, StopFlagCancelsRemainingJobs)
{
    // With the drain flag already raised, every job comes back
    // canceled — the path fpcrun takes on SIGINT/SIGTERM.
    const auto prog = shared(fibTracer());
    std::atomic<bool> stop{true};
    sched::RuntimeConfig rc;
    rc.workers = 2;
    rc.stopFlag = &stop;
    sched::Runtime runtime(rc);
    for (unsigned j = 0; j < 4; ++j)
        runtime.submit({prog, "Fib", "main", {10}});
    const auto results = runtime.run();
    ASSERT_EQ(results.size(), 4u);
    for (const sched::JobResult &r : results) {
        EXPECT_FALSE(r.ok);
        EXPECT_NE(r.error.find("canceled"), std::string::npos)
            << r.error;
    }
}

TEST(Runtime, TimeslicedJobsPreemptAndStillAgree)
{
    const auto prog = shared(fibTracer());
    sched::RuntimeConfig rc;
    rc.workers = 2;
    rc.machine.impl = Impl::Banked;
    rc.machine.timesliceSteps = 64;
    rc.plan.lowering = CallLowering::Direct;
    rc.plan.shortCalls = true;
    sched::Runtime runtime(rc);
    for (unsigned j = 0; j < 4; ++j)
        runtime.submit({prog, "Fib", "main", {10}});
    const auto results = runtime.run();
    for (const sched::JobResult &r : results) {
        EXPECT_TRUE(r.ok) << r.error;
        EXPECT_EQ(r.value, 55u);
    }
    EXPECT_GT(runtime.machineStats().preemptions, 0u);
}

// ---------------------------------------------------------------------
// Mergeable statistics (the plumbing the Runtime relies on).
// ---------------------------------------------------------------------

TEST(StatsMerge, DistributionMergesMoments)
{
    stats::Distribution a, b;
    a.sample(1);
    a.sample(2);
    a.sample(3);
    b.sample(4);
    b.sample(5);
    a.merge(b);
    EXPECT_EQ(a.count(), 5u);
    EXPECT_DOUBLE_EQ(a.mean(), 3.0);
    EXPECT_DOUBLE_EQ(a.min(), 1.0);
    EXPECT_DOUBLE_EQ(a.max(), 5.0);

    stats::Distribution empty;
    a.merge(empty); // merging an empty distribution is a no-op
    EXPECT_EQ(a.count(), 5u);
    EXPECT_DOUBLE_EQ(a.min(), 1.0);
}

TEST(StatsMerge, StatGroupMergesByNameAndAdopts)
{
    stats::StatGroup a("g"), b("g");
    a.counter("hits") += 2;
    b.counter("hits") += 3;
    b.counter("misses") += 7; // absent in a: adopted on merge
    b.distribution("lat").sample(4);
    a.mergeFrom(b);
    EXPECT_EQ(a.findCounter("hits").value(), 5u);
    EXPECT_EQ(a.findCounter("misses").value(), 7u);
    EXPECT_EQ(a.findDistribution("lat").count(), 1u);
}

TEST(StatsMerge, MachineStatsSumAcrossRuns)
{
    const Combo combo{Impl::Banked, CallLowering::Direct, true};
    auto runOne = [&](Word n, MachineStats &into) {
        Rig rig(fibTracer(), combo);
        rig.machine.start("Fib", "main", std::array<Word, 1>{n});
        EXPECT_EQ(rig.machine.run().reason, StopReason::TopReturn);
        into.merge(rig.machine.stats());
        return rig.machine.stats().steps;
    };
    MachineStats merged;
    const CountT s1 = runOne(8, merged);
    const CountT s2 = runOne(10, merged);
    EXPECT_EQ(merged.steps, s1 + s2);
    EXPECT_GT(merged.calls() + merged.returns(), 0u);
    const double rate = merged.fastCallReturnRate();
    EXPECT_GE(rate, 0.0);
    EXPECT_LE(rate, 1.0);
}

// ---------------------------------------------------------------------
// Span tracing through the Runtime (src/obs/spans wired into pool and
// batch execution).
// ---------------------------------------------------------------------

TEST(RuntimeSpans, BatchRunSynthesizesSpanTreesPerJob)
{
    const auto prog = shared(fibTracer());
    obs::SpanCollector sc;
    sched::RuntimeConfig rc;
    rc.workers = 2;
    rc.trace = true; // static assignment: job i -> worker i mod stride
    rc.spans = &sc;
    sched::Runtime runtime(rc);
    for (unsigned j = 0; j < 4; ++j)
        runtime.submit({prog, "Fib", "main", {8}});
    const auto results = runtime.run();
    ASSERT_EQ(results.size(), 4u);

    const auto faults = obs::checkSpans(sc);
    EXPECT_TRUE(faults.empty())
        << (faults.empty() ? "" : faults.front().what);
    // request + queued + execute per job, no serve-side phases.
    EXPECT_EQ(sc.recorded(), 12u);
    std::map<std::uint64_t, std::vector<obs::Span>> trees;
    for (const obs::Span &s : sc.spans())
        trees[s.id].push_back(s);
    ASSERT_EQ(trees.size(), 4u);
    for (std::size_t i = 0; i < results.size(); ++i) {
        const std::uint64_t sid = i + 1; // batch span id = job idx + 1
        ASSERT_EQ(trees.count(sid), 1u);
        const std::vector<obs::Span> &tree = trees[sid];
        ASSERT_EQ(tree.size(), 3u);
        std::set<obs::SpanKind> kinds;
        for (const obs::Span &s : tree) {
            kinds.insert(s.kind);
            EXPECT_EQ(s.trackKind, obs::SpanTrack::Worker);
            EXPECT_EQ(s.track, results[i].worker)
                << obs::spanKindName(s.kind) << " of job " << i;
            if (s.kind == obs::SpanKind::Execute) {
                // The span brackets exactly the stamped exec window.
                EXPECT_EQ(s.startNs, results[i].execStartNs);
                EXPECT_EQ(s.endNs, results[i].execEndNs);
            }
        }
        EXPECT_EQ(kinds.count(obs::SpanKind::Request), 1u);
        EXPECT_EQ(kinds.count(obs::SpanKind::Queued), 1u);
        EXPECT_EQ(kinds.count(obs::SpanKind::Execute), 1u);
    }
}

TEST(RuntimeSpans, PoolStolenJobsLandOnStealingWorkersTrack)
{
    // Pool-mode tracing determinism: a job's spans land on the track
    // of the worker that executed it — JobResult::worker — so a
    // stolen job re-homes to the thief's track. The track invariant
    // is asserted on every attempt; stealing itself is
    // timing-dependent, so a skewed load is retried a few times until
    // at least one steal is observed.
    const auto prog = shared(fibTracer());
    bool sawSteal = false;
    for (int attempt = 0; attempt < 5 && !sawSteal; ++attempt) {
        obs::SpanCollector sc;
        sched::RuntimeConfig rc;
        rc.workers = 2;
        rc.spans = &sc;
        sched::Runtime runtime(rc);
        runtime.startPool();
        std::mutex mu;
        std::map<unsigned, unsigned> workerOf; // job id -> worker
        auto done = [&](sched::JobResult r) {
            std::lock_guard<std::mutex> lock(mu);
            workerOf[r.id] = r.worker;
        };
        // Round-robin puts the long job on deque 0 and half the
        // short ones behind it; worker 1 drains its own deque first
        // and then steals from deque 0.
        runtime.enqueue({prog, "Fib", "main", {22}}, done);
        for (unsigned j = 0; j < 12; ++j)
            runtime.enqueue({prog, "Fib", "main", {3}}, done);
        runtime.drainPool();
        runtime.stopPool();
        sawSteal =
            runtime.stats().findCounter("jobs_stolen").value() > 0;

        ASSERT_EQ(workerOf.size(), 13u);
        const auto faults = obs::checkSpans(sc);
        EXPECT_TRUE(faults.empty())
            << (faults.empty() ? "" : faults.front().what);
        EXPECT_EQ(sc.recorded(), 39u); // 13 jobs x 3 spans
        for (const obs::Span &s : sc.spans()) {
            ASSERT_GE(s.id, 1u);
            const auto id = static_cast<unsigned>(s.id - 1);
            ASSERT_EQ(workerOf.count(id), 1u);
            EXPECT_EQ(s.trackKind, obs::SpanTrack::Worker);
            EXPECT_EQ(s.track, workerOf[id])
                << obs::spanKindName(s.kind) << " of job " << id;
        }
    }
    EXPECT_TRUE(sawSteal) << "no steal observed in 5 skewed runs";
}

TEST(RuntimeSpans, SpanCollectionLeavesStatsJsonByteIdentical)
{
    // Spans are host-time observability only: the exported simulated
    // stats document must be byte-for-byte the same with the
    // collector attached or absent.
    const auto prog = shared(fibTracer());
    const auto statsDoc = [&](obs::SpanCollector *sc) {
        sched::RuntimeConfig rc;
        rc.workers = 2;
        rc.trace = true; // static assignment: deterministic merge
        rc.spans = sc;
        sched::Runtime runtime(rc);
        for (unsigned j = 0; j < 4; ++j)
            runtime.submit({prog, "Fib", "main", {8}});
        runtime.run();
        obs::StatsExport exp;
        exp.driver = "test_scheduler";
        exp.impl = implName(rc.machine.impl);
        exp.workers = runtime.workers();
        exp.machine = &runtime.machineStats();
        exp.groups.push_back(&runtime.stats());
        std::ostringstream os;
        obs::writeStatsJson(os, exp);
        return os.str();
    };
    obs::SpanCollector sc;
    const std::string withSpans = statsDoc(&sc);
    const std::string without = statsDoc(nullptr);
    EXPECT_GT(sc.recorded(), 0u);
    EXPECT_EQ(withSpans, without);
}

} // namespace
} // namespace fpc
