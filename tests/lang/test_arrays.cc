/**
 * @file
 * MiniMesa local arrays: declaration, constant and dynamic indexing,
 * decay to pointers, bounds diagnostics, and the §7.4 interaction
 * (dynamic indexing takes the frame's address; constant indexing
 * stays register-resident).
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "lang/codegen.hh"
#include "machine/machine.hh"
#include "program/loader.hh"

namespace fpc
{
namespace
{

Word
runMain(const std::string &source, std::vector<Word> args = {},
        Impl impl = Impl::Mesa, std::vector<Word> *output = nullptr,
        const MachineStats **stats_out = nullptr)
{
    static std::unique_ptr<Machine> keep_alive;
    const SystemLayout layout;
    static Memory mem(SystemLayout().memWords);
    mem = Memory(layout.memWords);
    Loader loader{layout, SizeClasses::standard()};
    const auto modules = lang::compile(source);
    for (const auto &m : modules)
        loader.add(m);
    const LoadedImage image = loader.load(mem, LinkPlan{});
    MachineConfig config;
    config.impl = impl;
    keep_alive = std::make_unique<Machine>(mem, image, config);
    keep_alive->start(modules.front().name, "main", args);
    const RunResult result = keep_alive->run();
    EXPECT_EQ(result.reason, StopReason::TopReturn) << result.message;
    if (output)
        *output = keep_alive->output();
    if (stats_out)
        *stats_out = &keep_alive->stats();
    return keep_alive->popValue();
}

TEST(Arrays, ConstantIndexing)
{
    const char *src = R"(
        module M;
        proc main() {
            var a[4];
            a[0] = 10; a[1] = 20; a[2] = 30; a[3] = a[0] + a[2];
            return a[3];
        }
    )";
    EXPECT_EQ(runMain(src), 40);
    EXPECT_EQ(runMain(src, {}, Impl::Banked), 40);
}

TEST(Arrays, ConstantIndexingStaysInBanks)
{
    // Constant subscripts address frame slots directly: no pointer is
    // formed, so the I4 frame keeps its bank (no §7.4 flagging).
    const MachineStats *stats = nullptr;
    runMain(R"(
        module M;
        proc main() {
            var a[4];
            a[1] = 7;
            return a[1];
        }
    )",
            {}, Impl::Banked, nullptr, &stats);
    EXPECT_EQ(stats->flaggedFrames, 0u);
    EXPECT_EQ(stats->localMemAccesses, 0u);
}

TEST(Arrays, DynamicIndexingFlagsTheFrame)
{
    const MachineStats *stats = nullptr;
    const Word r = runMain(R"(
        module M;
        proc main(i) {
            var a[4];
            a[i] = 9;
            return a[i] + a[1];
        }
    )",
                           {1}, Impl::Banked, nullptr, &stats);
    EXPECT_EQ(r, 18);
    EXPECT_EQ(stats->flaggedFrames, 1u);
}

TEST(Arrays, DynamicFill)
{
    const char *src = R"(
        module M;
        proc main(n) {
            var a[10];
            var i, sum;
            i = 0;
            while (i < n) { a[i] = i * i; i = i + 1; }
            i = 0;
            while (i < n) { sum = sum + a[i]; i = i + 1; }
            return sum;
        }
    )";
    EXPECT_EQ(runMain(src, {10}), 285);
    EXPECT_EQ(runMain(src, {10}, Impl::Banked), 285);
}

TEST(Arrays, DecayToPointerAcrossCalls)
{
    const char *src = R"(
        module M;
        proc sum(p, n) {
            var i, acc;
            i = 0;
            while (i < n) { acc = acc + *(p + i); i = i + 1; }
            return acc;
        }
        proc main() {
            var a[3];
            a[0] = 5; a[1] = 6; a[2] = 7;
            return sum(a, 3);
        }
    )";
    for (const Impl impl :
         {Impl::Simple, Impl::Mesa, Impl::Ifu, Impl::Banked}) {
        EXPECT_EQ(runMain(src, {}, impl), 18) << implName(impl);
    }
}

TEST(Arrays, ZeroInitialized)
{
    // Recycled frames would otherwise leak prior activations' data.
    const char *src = R"(
        module M;
        proc scribble() {
            var junk[6];
            var i;
            i = 0;
            while (i < 6) { junk[i] = 0x7777; i = i + 1; }
            return 0;
        }
        proc probe() {
            var a[6];
            return a[0] + a[1] + a[2] + a[3] + a[4] + a[5];
        }
        proc main() {
            scribble();
            return probe(); -- reuses scribble's frame
        }
    )";
    EXPECT_EQ(runMain(src), 0);
}

TEST(Arrays, CompileErrors)
{
    setQuiet(true);
    // Out-of-bounds constant index.
    EXPECT_THROW(lang::compile("module M; proc main() { var a[3]; "
                               "return a[3]; }"),
                 FatalError);
    // Assigning to an array name.
    EXPECT_THROW(lang::compile("module M; proc main() { var a[3]; "
                               "a = 1; return 0; }"),
                 FatalError);
    // Indexing a scalar.
    EXPECT_THROW(lang::compile("module M; proc main() { var x; "
                               "return x[0]; }"),
                 FatalError);
    // Zero-length array.
    EXPECT_THROW(lang::compile("module M; proc main() { var a[0]; "
                               "return 0; }"),
                 FatalError);
    setQuiet(false);
}

TEST(Arrays, IndexExpressionAsStatement)
{
    // Backtracking parse: a[i] in expression position, not assignment.
    const char *src = R"(
        module M;
        proc main() {
            var a[2];
            a[1] = 41;
            a[1] + 1;      -- value dropped
            return a[1] + 1;
        }
    )";
    EXPECT_EQ(runMain(src), 42);
}

TEST(Arrays, CallResultsAsSubscripts)
{
    const char *src = R"(
        module M;
        proc pick() { return 2; }
        proc main() {
            var a[4];
            a[pick()] = 33;
            return a[pick() + 1 - 1];
        }
    )";
    EXPECT_EQ(runMain(src), 33);
    EXPECT_EQ(runMain(src, {}, Impl::Banked), 33);
}

} // namespace
} // namespace fpc
