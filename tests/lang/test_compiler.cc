/**
 * @file
 * MiniMesa compiler tests: source programs compiled, loaded and run
 * on the simulated machine, checked for results and for semantic
 * corners (short-circuit with calls, nested-call flattening per §5.2,
 * pointers to locals per §7.4).
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "lang/codegen.hh"
#include "machine/machine.hh"
#include "program/loader.hh"

namespace fpc
{
namespace
{

/** Compile, load and run Mod.main(args); return the machine. */
std::unique_ptr<Machine>
runProgram(const std::string &source, std::vector<Word> args,
           Impl impl = Impl::Mesa,
           CallLowering lowering = CallLowering::Mesa,
           Memory *out_mem = nullptr)
{
    static Memory mem(SystemLayout().memWords);
    mem = Memory(SystemLayout().memWords); // fresh contents
    Loader loader{SystemLayout(), SizeClasses::standard()};
    const auto modules = lang::compile(source);
    const std::string entry_module = modules.front().name;
    for (auto &m : modules)
        loader.add(m);
    LinkPlan plan;
    plan.lowering = lowering;
    LoadedImage image = loader.load(mem, plan);

    MachineConfig config;
    config.impl = impl;
    auto machine = std::make_unique<Machine>(mem, image, config);
    machine->start(entry_module, "main", args);
    const RunResult result = machine->run();
    EXPECT_EQ(result.reason, StopReason::TopReturn) << result.message;
    if (out_mem)
        *out_mem = mem;
    return machine;
}

Word
runForValue(const std::string &source, std::vector<Word> args = {},
            Impl impl = Impl::Mesa)
{
    auto machine = runProgram(source, std::move(args), impl);
    EXPECT_EQ(machine->stackDepth(), 1u);
    return machine->popValue();
}

TEST(Compiler, ArithmeticAndPrecedence)
{
    EXPECT_EQ(runForValue("module M; proc main() { return 2 + 3 * 4; }"),
              14);
    EXPECT_EQ(runForValue(
                  "module M; proc main() { return (2 + 3) * 4; }"),
              20);
    EXPECT_EQ(runForValue(
                  "module M; proc main() { return 10 % 3 + 7 / 2; }"),
              1 + 3);
    EXPECT_EQ(runForValue(
                  "module M; proc main() { return 1 << 4 | 3; }"),
              19);
    EXPECT_EQ(
        static_cast<SWord>(runForValue(
            "module M; proc main() { return -5 + 2; }")),
        -3);
}

TEST(Compiler, LocalsAndGlobals)
{
    const char *src = R"(
        module M;
        var total, count = 7;
        proc main(n) {
            var i;
            i = count;      -- global read
            total = i + n;  -- global write
            return total;
        }
    )";
    EXPECT_EQ(runForValue(src, {5}), 12);
}

TEST(Compiler, RecursionAndNestedCalls)
{
    const char *src = R"(
        module M;
        proc fib(n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);  -- §5.2 flattening
        }
        proc main(n) { return fib(n); }
    )";
    EXPECT_EQ(runForValue(src, {15}), 610);
}

TEST(Compiler, NestedCallArguments)
{
    const char *src = R"(
        module M;
        proc add(a, b) { return a + b; }
        proc twice(x) { return x * 2; }
        proc main() {
            return add(twice(3), add(twice(4), 1)); -- 6 + (8+1)
        }
    )";
    EXPECT_EQ(runForValue(src), 15);
}

TEST(Compiler, ShortCircuitSkipsCalls)
{
    // The right-hand call must NOT run when the left side decides.
    const char *src = R"(
        module M;
        var ran;
        proc mark() { ran = ran + 1; return 1; }
        proc main() {
            var a;
            a = 0 && mark();   -- mark must not run
            a = 1 || mark();   -- mark must not run
            a = 1 && mark();   -- runs
            a = 0 || mark();   -- runs
            return ran;
        }
    )";
    EXPECT_EQ(runForValue(src), 2);
}

TEST(Compiler, ShortCircuitValues)
{
    const char *src = R"(
        module M;
        proc one() { return 1; }
        proc zero() { return 0; }
        proc main() {
            return (one() && zero()) * 10 + (zero() || one());
        }
    )";
    EXPECT_EQ(runForValue(src), 1);
}

TEST(Compiler, WhileLoops)
{
    const char *src = R"(
        module M;
        proc main(n) {
            var i, acc;
            i = 1;
            while (i <= n) { acc = acc + i; i = i + 1; }
            return acc;
        }
    )";
    EXPECT_EQ(runForValue(src, {200}), 20100);
}

TEST(Compiler, IfElseChains)
{
    const char *src = R"(
        module M;
        proc classify(x) {
            if (x < 10) { return 1; }
            else if (x < 100) { return 2; }
            else { return 3; }
        }
        proc main() {
            return classify(5) * 100 + classify(50) * 10 +
                   classify(500);
        }
    )";
    EXPECT_EQ(runForValue(src), 123);
}

TEST(Compiler, CrossModuleCalls)
{
    const char *src = R"(
        module Main;
        proc main(n) { return Lib.square(n) + Lib.cube(2); }

        module Lib;
        proc square(x) { return x * x; }
        proc cube(x) { return x * square(x); }
    )";
    EXPECT_EQ(runForValue(src, {6}), 36 + 8);
}

TEST(Compiler, PointersToLocals)
{
    // §7.4: @x makes a storage address; *p dereferences; *p = v stores.
    const char *src = R"(
        module M;
        proc bump(p) { *p = *p + 1; return 0; }
        proc main() {
            var x;
            x = 41;
            bump(@x);
            return x;
        }
    )";
    EXPECT_EQ(runForValue(src), 42);
    // The same must hold when register banks shadow frames.
    EXPECT_EQ(runForValue(src, {}, Impl::Banked), 42);
}

TEST(Compiler, OutStatement)
{
    const char *src = R"(
        module M;
        proc main(n) {
            var i;
            i = 0;
            while (i < n) { out i * i; i = i + 1; }
            return n;
        }
    )";
    auto machine = runProgram(src, {4});
    EXPECT_EQ(machine->output(),
              (std::vector<Word>{0, 1, 4, 9}));
}

TEST(Compiler, ErrorsAreReported)
{
    EXPECT_THROW(lang::compile("module M; proc main() { return x; }"),
                 FatalError);
    EXPECT_THROW(lang::compile("module M; proc main() { f(); }"),
                 FatalError);
    EXPECT_THROW(
        lang::compile("module M; proc f(a) { return a; } "
                      "proc main() { return f(1, 2); }"),
        FatalError);
    EXPECT_THROW(lang::compile("module M;"), FatalError);
    EXPECT_THROW(lang::compile("module M; proc main() { return 99999; }"),
                 FatalError);
}

TEST(Compiler, SameResultsOnAllImplementations)
{
    const char *src = R"(
        module M;
        proc ack(m, n) {
            if (m == 0) { return n + 1; }
            if (n == 0) { return ack(m - 1, 1); }
            return ack(m - 1, ack(m, n - 1));
        }
        proc main() { return ack(2, 3); }
    )";
    const Word expected = 9;
    EXPECT_EQ(runForValue(src, {}, Impl::Simple), expected);
    EXPECT_EQ(runForValue(src, {}, Impl::Mesa), expected);
    EXPECT_EQ(runForValue(src, {}, Impl::Ifu), expected);
    EXPECT_EQ(runForValue(src, {}, Impl::Banked), expected);
}

} // namespace
} // namespace fpc
