/**
 * @file
 * Additional MiniMesa tests: lexer corners, constant folding and
 * dead-branch elimination, pointer/workspace programs, yields with a
 * scheduler, and code-size effects.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "lang/codegen.hh"
#include "lang/lexer.hh"
#include "lang/parser.hh"
#include "machine/machine.hh"
#include "program/loader.hh"

namespace fpc
{
namespace
{

Word
runMain(const std::string &source, std::vector<Word> args = {},
        Impl impl = Impl::Mesa, std::vector<Word> *output = nullptr)
{
    const SystemLayout layout;
    Memory mem(layout.memWords);
    Loader loader{layout, SizeClasses::standard()};
    const auto modules = lang::compile(source);
    for (const auto &m : modules)
        loader.add(m);
    const LoadedImage image = loader.load(mem, LinkPlan{});
    MachineConfig config;
    config.impl = impl;
    Machine machine(mem, image, config);
    machine.start(modules.front().name, "main", args);
    const RunResult result = machine.run();
    EXPECT_EQ(result.reason, StopReason::TopReturn) << result.message;
    if (output)
        *output = machine.output();
    EXPECT_GE(machine.stackDepth(), 1u);
    return machine.popValue();
}

CountT
codeBytes(const std::string &source)
{
    const SystemLayout layout;
    Memory mem(layout.memWords);
    Loader loader{layout, SizeClasses::standard()};
    for (const auto &m : lang::compile(source))
        loader.add(m);
    return loader.load(mem, LinkPlan{}).codeBytes();
}

TEST(Lexer, CommentsAndHexAndTokens)
{
    const auto toks = lang::tokenize(
        "x = 0x1F; -- mesa comment\n"
        "y = 10;   // c++ comment\n"
        "a <= b >= c << d >> e != f == g && h || i");
    EXPECT_EQ(toks[2].number, 0x1F);
    unsigned comments = 0;
    for (const auto &t : toks)
        if (t.text.find("comment") != std::string::npos)
            ++comments;
    EXPECT_EQ(comments, 0u);
    // Line numbers survive.
    EXPECT_EQ(toks[0].line, 1u);
    EXPECT_EQ(toks[4].line, 2u);
}

TEST(Lexer, OverflowingLiteralIsFatal)
{
    setQuiet(true);
    EXPECT_THROW(lang::tokenize("65536"), FatalError);
    EXPECT_THROW(lang::tokenize("x $ y"), FatalError);
    setQuiet(false);
    EXPECT_NO_THROW(lang::tokenize("65535"));
}

TEST(Folding, ConstantsFoldToLiterals)
{
    // Both forms must compute the same and the folded one be smaller.
    const char *folded = R"(
        module M;
        proc main() { return (3 + 4) * (10 - 2) / 2; }
    )";
    EXPECT_EQ(runMain(folded), 28);
    const char *dynamic = R"(
        module M;
        proc main() { var a, b; a = 3 + 4; b = 10 - 2;
                      return a * b / 2; }
    )";
    EXPECT_EQ(runMain(dynamic), 28);
    EXPECT_LT(codeBytes(folded), codeBytes(dynamic));
}

TEST(Folding, MatchesRuntimeSemantics)
{
    // Wrapping, signed division, shifts: folded == computed.
    EXPECT_EQ(runMain("module M; proc main() { return 0xFFFF + 2; }"),
              1);
    EXPECT_EQ(
        static_cast<SWord>(
            runMain("module M; proc main() { return -17 / 5; }")),
        -3);
    EXPECT_EQ(runMain("module M; proc main() { return 1 << 16; }"), 0);
    EXPECT_EQ(runMain("module M; proc main() { return !5 + !0; }"), 1);
    EXPECT_EQ(runMain("module M; proc main() { return 3 < 4; }"), 1);
}

TEST(Folding, DivisionByZeroConstantStillTraps)
{
    setQuiet(true);
    const SystemLayout layout;
    Memory mem(layout.memWords);
    Loader loader{layout, SizeClasses::standard()};
    for (const auto &m :
         lang::compile("module M; proc main() { return 1 / 0; }"))
        loader.add(m);
    const LoadedImage image = loader.load(mem, LinkPlan{});
    Machine machine(mem, image, MachineConfig{});
    machine.start("M", "main");
    EXPECT_EQ(machine.run().reason, StopReason::Error);
    setQuiet(false);
}

TEST(Folding, DeadBranchesEliminated)
{
    const char *with_dead = R"(
        module M;
        proc big() { var a; a = 1; a = 2; a = 3; a = 4; return a; }
        proc main() {
            if (0) { big(); big(); big(); }
            while (0) { big(); }
            if (1) { return 7; } else { big(); }
            return 0;
        }
    )";
    EXPECT_EQ(runMain(with_dead), 7);
    const char *without = R"(
        module M;
        proc big() { var a; a = 1; a = 2; a = 3; a = 4; return a; }
        proc main() { return 7; }
    )";
    // main bodies should now be nearly the same size.
    const CountT a = codeBytes(with_dead);
    const CountT b = codeBytes(without);
    EXPECT_LT(a - b, 8u);
}

TEST(Folding, ShortCircuitConstantsPreserveLaziness)
{
    // 0 && f() folds to 0 — and f must not run. 1 || f() likewise.
    std::vector<Word> output;
    const Word r = runMain(R"(
        module M;
        proc loud() { out 99; return 1; }
        proc main() {
            var a;
            a = 0 && loud();
            a = a + (1 || loud());
            return a;
        }
    )",
                           {}, Impl::Mesa, &output);
    EXPECT_EQ(r, 1);
    EXPECT_TRUE(output.empty());
}

TEST(Pointers, WorkspaceSortRunsOnAllEngines)
{
    const char *src = R"(
        module M;
        proc main() {
            var a0, a1, a2, a3;
            var base, i, j, key;
            base = @a0;
            *(base + 0) = 40; *(base + 1) = 10;
            *(base + 2) = 30; *(base + 3) = 20;
            i = 1;
            while (i < 4) {
                key = *(base + i);
                j = i - 1;
                while (j >= 0 && *(base + j) > key) {
                    *(base + j + 1) = *(base + j);
                    j = j - 1;
                }
                *(base + j + 1) = key;
                i = i + 1;
            }
            out *(base + 0); out *(base + 1);
            out *(base + 2); out *(base + 3);
            return 0;
        }
    )";
    for (const Impl impl :
         {Impl::Simple, Impl::Mesa, Impl::Ifu, Impl::Banked}) {
        std::vector<Word> output;
        runMain(src, {}, impl, &output);
        EXPECT_EQ(output, (std::vector<Word>{10, 20, 30, 40}))
            << implName(impl);
    }
}

TEST(Processes, MiniMesaYieldRoundRobin)
{
    const SystemLayout layout;
    Memory mem(layout.memWords);
    Loader loader{layout, SizeClasses::standard()};
    const auto modules = lang::compile(R"(
        module P;
        proc worker(id, rounds) {
            var i;
            i = 0;
            while (i < rounds) { out id; yield; i = i + 1; }
            return id;
        }
    )");
    for (const auto &m : modules)
        loader.add(m);
    const LoadedImage image = loader.load(mem, LinkPlan{});

    MachineConfig config;
    config.impl = Impl::Banked;
    Machine machine(mem, image, config);
    std::vector<Word> queue = {
        machine.spawn("P", "worker", {{2, 2}}),
        machine.spawn("P", "worker", {{3, 2}}),
    };
    machine.setScheduler([&queue](Machine &m) {
        queue.push_back(m.currentFrameContext());
        const Word next = queue.front();
        queue.erase(queue.begin());
        return next;
    });
    machine.start("P", "worker", {{1, 2}});
    ASSERT_EQ(machine.run().reason, StopReason::TopReturn);
    EXPECT_EQ(machine.output(),
              (std::vector<Word>{1, 2, 3, 1, 2, 3}));
}

TEST(Limits, ManyArgumentsWithinStackCapacity)
{
    const char *src = R"(
        module M;
        proc sum8(a, b, c, d, e, f, g, h) {
            return a + b + c + d + e + f + g + h;
        }
        proc main() { return sum8(1, 2, 3, 4, 5, 6, 7, 8); }
    )";
    EXPECT_EQ(runMain(src), 36);
    EXPECT_EQ(runMain(src, {}, Impl::Banked), 36);
}

TEST(Limits, DeepExpressionNesting)
{
    std::string expr = "1";
    for (int i = 0; i < 8; ++i)
        expr = "(" + expr + " + " + expr + ")";
    EXPECT_EQ(runMain("module M; proc main() { return " + expr +
                      "; }"),
              256); // folds completely
}

TEST(EntryPoints, MultiModuleProgramsPickNamedModule)
{
    const auto modules = lang::compile(R"(
        module Helper;
        proc h() { return 5; }
        module Main;
        proc main() { return Helper.h() * 2; }
    )");
    EXPECT_EQ(modules.size(), 2u);
    EXPECT_EQ(modules[1].name, "Main");
}

} // namespace
} // namespace fpc
