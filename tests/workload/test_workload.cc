/**
 * @file
 * Workload generator tests: distribution calibration, synthetic
 * program executability on all engines, and trace-driven transfer
 * validity (including coroutine switching under register banks).
 */

#include <gtest/gtest.h>

#include "machine/machine.hh"
#include "program/loader.hh"
#include "workload/frame_dist.hh"
#include "workload/synthetic.hh"
#include "workload/trace.hh"

namespace fpc
{
namespace
{

TEST(FrameDist, MesaShapeMatchesPaper)
{
    // §7.1: 95% of frames below 80 bytes = 40 words.
    const FrameSizeDist dist = FrameSizeDist::mesa();
    EXPECT_NEAR(dist.fractionAtOrBelow(40), 0.95, 0.02);

    Rng rng(7);
    unsigned below = 0;
    const unsigned n = 20000;
    for (unsigned i = 0; i < n; ++i)
        if (dist.sample(rng) <= 40)
            ++below;
    EXPECT_NEAR(static_cast<double>(below) / n, 0.95, 0.02);
}

TEST(FrameDist, FixedIsFixed)
{
    const FrameSizeDist dist = FrameSizeDist::fixed(17);
    Rng rng(1);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(dist.sample(rng), 17u);
}

TEST(TraceGen, DepthNeverUnderflows)
{
    TraceConfig config;
    config.length = 50'000;
    config.persistence = 0.5;
    const auto trace = generateTrace(config);
    ASSERT_EQ(trace.size(), config.length);
    int depth = 0;
    for (const TraceOp op : trace) {
        if (op == TraceOp::Call)
            ++depth;
        else if (op == TraceOp::Return)
            --depth;
        ASSERT_GE(depth, 0);
    }
}

TEST(TraceGen, PersistenceShapesRunLengths)
{
    // Higher persistence => longer same-direction runs.
    auto mean_run = [](double persistence) {
        TraceConfig config;
        config.length = 50'000;
        config.persistence = persistence;
        config.seed = 3;
        const auto trace = generateTrace(config);
        unsigned runs = 1;
        for (std::size_t i = 1; i < trace.size(); ++i)
            if (trace[i] != trace[i - 1])
                ++runs;
        return static_cast<double>(trace.size()) / runs;
    };
    EXPECT_LT(mean_run(0.2), mean_run(0.8));
}

class TraceOnEngines : public testing::TestWithParam<Impl>
{};

TEST_P(TraceOnEngines, RunsCleanAndBalanced)
{
    MachineConfig config;
    config.impl = GetParam();
    TraceRunner runner(config);

    TraceConfig tc;
    tc.length = 20'000;
    tc.persistence = 0.35;
    runner.run(generateTrace(tc));

    const MachineStats &stats = runner.machine().stats();
    EXPECT_GT(stats.calls(), 5'000u);
    EXPECT_GT(stats.returns(), 5'000u);

    // Frame conservation: frames handed to the program minus frames
    // given back equals the live chain (current depth + its base +
    // the three spawned coroutine bases). The banked engine's free-
    // frame stack was pre-filled from the heap, which shifts the heap
    // count by exactly that prefill.
    const auto &hs = runner.machine().heap().stats();
    const CountT live = runner.depth() + 1 + 3;
    const CountT prefill =
        GetParam() == Impl::Banked
            ? runner.machine().config().fastFrameStackDepth
            : 0;
    EXPECT_EQ(hs.allocs + stats.fastFrameAllocs,
              hs.frees + stats.fastFrameFrees + live + prefill)
        << "frame leak";
}

INSTANTIATE_TEST_SUITE_P(AllEngines, TraceOnEngines,
                         testing::Values(Impl::Simple, Impl::Mesa,
                                         Impl::Ifu, Impl::Banked),
                         [](const auto &info) {
                             std::string n = implName(info.param);
                             for (auto &c : n)
                                 if (c == '-')
                                     c = '_';
                             return n;
                         });

TEST(TraceRunner, CoroutineSwitchesWork)
{
    MachineConfig config;
    config.impl = Impl::Banked;
    TraceRunner runner(config, FrameSizeDist::mesa(), 4);

    TraceConfig tc;
    tc.length = 10'000;
    tc.switchFraction = 0.05;
    tc.seed = 11;
    runner.run(generateTrace(tc));

    const MachineStats &stats = runner.machine().stats();
    EXPECT_GT(stats.xferCount[static_cast<unsigned>(
                  XferKind::Coroutine)],
              100u);
    // Switches flush the return stack (unusual transfers, §6).
    EXPECT_GT(stats.returnStackFlushes, 0u);
}

TEST(Synthetic, GeneratedProgramRunsOnAllEngines)
{
    ProgramConfig pc;
    pc.modules = 3;
    pc.procsPerModule = 6;
    pc.maxDepth = 6;
    pc.seed = 42;
    const auto modules = generateProgram(pc);

    Word expected = 0;
    bool first = true;
    for (const Impl impl :
         {Impl::Simple, Impl::Mesa, Impl::Ifu, Impl::Banked}) {
        Memory mem(SystemLayout().memWords);
        Loader loader{SystemLayout(), SizeClasses::standard()};
        for (const auto &m : modules)
            loader.add(m);
        LinkPlan plan;
        plan.lowering = impl == Impl::Simple ? CallLowering::Fat
                        : impl == Impl::Mesa ? CallLowering::Mesa
                                             : CallLowering::Direct;
        const LoadedImage image = loader.load(mem, plan);
        MachineConfig config;
        config.impl = impl;
        Machine machine(mem, image, config);
        machine.start(generatedEntryModule(), generatedEntryProc(),
                      std::array<Word, 1>{static_cast<Word>(pc.maxDepth)});
        const RunResult result = machine.run();
        ASSERT_EQ(result.reason, StopReason::TopReturn)
            << implName(impl) << ": " << result.message;
        ASSERT_EQ(machine.stackDepth(), 1u);
        const Word value = machine.popValue();
        if (first) {
            expected = value;
            first = false;
        } else {
            // The encodings differ; the computation must not.
            EXPECT_EQ(value, expected) << implName(impl);
        }
        // Call density: the paper's motivation is ~1 call per 10
        // executed instructions; the generator should land near that.
        const MachineStats &stats = machine.stats();
        const double instr_per_call =
            static_cast<double>(stats.steps) / stats.calls();
        EXPECT_GT(instr_per_call, 4.0);
        EXPECT_LT(instr_per_call, 30.0);
    }
}

TEST(Synthetic, DeadSitesContributeStaticallyOnly)
{
    ProgramConfig pc;
    pc.modules = 2;
    pc.procsPerModule = 4;
    pc.callSitesPerProc = 4;
    pc.liveCallsPerProc = 1;
    pc.maxDepth = 3;
    const auto modules = generateProgram(pc);

    // Static sites: 4 per proc; dynamic: 1 per activation.
    Memory mem(SystemLayout().memWords);
    Loader loader{SystemLayout(), SizeClasses::standard()};
    for (const auto &m : modules)
        loader.add(m);
    const LoadedImage image = loader.load(mem, LinkPlan{});
    CountT static_sites = 0;
    for (const auto &pm : image.modules())
        static_sites += pm.callSites;
    EXPECT_EQ(static_sites, 2u * 4u * 4u);

    Machine machine(mem, image, MachineConfig{});
    machine.start(generatedEntryModule(), generatedEntryProc(),
                  std::array<Word, 1>{Word{3}});
    ASSERT_EQ(machine.run().reason, StopReason::TopReturn);
    // liveCalls=1 => the dynamic call tree is a path: the entry call
    // plus one call per remaining depth level.
    EXPECT_EQ(machine.stats().calls(), 1u + 3u);
}

} // namespace
} // namespace fpc
