/**
 * @file
 * Tests for the observability layer (src/obs): XFER tracing, the
 * per-procedure profiler's attribution invariant, and the JSON
 * exporters' determinism and shape.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "lang/codegen.hh"
#include "machine/machine.hh"
#include "obs/fanout.hh"
#include "obs/json.hh"
#include "obs/profile.hh"
#include "obs/trace.hh"
#include "program/loader.hh"
#include "sched/runtime.hh"

using namespace fpc;

namespace
{

const char *kPrimes = R"(
    module Main;
    var count;
    proc isPrime(n) {
        var d;
        if (n < 2) { return 0; }
        d = 2;
        while (d * d <= n) {
            if (n % d == 0) { return 0; }
            d = d + 1;
        }
        return 1;
    }
    proc main(limit) {
        var i;
        i = 2;
        while (i < limit) {
            if (isPrime(i)) { count = count + 1; }
            i = i + 1;
        }
        return count;
    }
)";

const char *kFib = R"(
    module Fib;
    proc fib(n) {
        if (n < 2) { return n; }
        return fib(n - 1) + fib(n - 2);
    }
    proc main(n) { return fib(n); }
)";

struct Rig
{
    std::unique_ptr<Memory> mem;
    LoadedImage image;
    std::unique_ptr<Machine> machine;

    Rig(const std::string &source, MachineConfig config = {})
    {
        const auto modules = lang::compile(source);
        const SystemLayout layout;
        mem = std::make_unique<Memory>(layout.memWords);
        Loader loader{layout, SizeClasses::standard()};
        for (const auto &m : modules)
            loader.add(m);
        image = loader.load(*mem, LinkPlan{});
        machine = std::make_unique<Machine>(*mem, image, config);
    }
};

Word
runMain(Rig &rig, const std::string &module, Word arg)
{
    const std::vector<Word> args = {arg};
    rig.machine->start(module, "main", args);
    const RunResult result = rig.machine->run();
    EXPECT_EQ(result.reason, StopReason::TopReturn) << result.message;
    return rig.machine->popValue();
}

std::string
traceOnce(Word limit)
{
    Rig rig(kPrimes);
    obs::ProcMap map(rig.image);
    obs::Tracer tracer;
    tracer.setProcMap(&map);
    rig.machine->setObserver(&tracer);
    runMain(rig, "Main", limit);
    std::ostringstream os;
    obs::writeChromeTrace(os, tracer);
    return os.str();
}

} // namespace

// ---------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------

TEST(Tracer, RecordsEveryTransferInOrder)
{
    Rig rig(kPrimes);
    obs::Tracer tracer;
    rig.machine->setObserver(&tracer);
    runMain(rig, "Main", 20);

    const MachineStats &s = rig.machine->stats();
    EXPECT_EQ(tracer.recorded(), s.totalXfers());
    EXPECT_EQ(tracer.dropped(), 0u);

    const auto events = tracer.events();
    ASSERT_EQ(events.size(), tracer.recorded());
    for (std::size_t i = 1; i < events.size(); ++i)
        EXPECT_LE(events[i - 1].end, events[i].end);
}

TEST(Tracer, NamesCallDestinationsViaProcMap)
{
    Rig rig(kPrimes);
    obs::ProcMap map(rig.image);
    EXPECT_EQ(map.size(), 2u); // isPrime, main
    obs::Tracer tracer;
    tracer.setProcMap(&map);
    rig.machine->setObserver(&tracer);
    runMain(rig, "Main", 20);

    bool saw_is_prime = false;
    for (const obs::TraceEvent &ev : tracer.events()) {
        if (ev.nameIdx == obs::TraceEvent::noName)
            continue;
        if (tracer.name(ev.nameIdx) == "Main.isPrime")
            saw_is_prime = true;
    }
    EXPECT_TRUE(saw_is_prime);
}

TEST(Tracer, RingDropsOldestAtCapacity)
{
    Rig rig(kPrimes);
    obs::Tracer tracer(8);
    rig.machine->setObserver(&tracer);
    runMain(rig, "Main", 30);

    EXPECT_GT(tracer.recorded(), 8u);
    const auto events = tracer.events();
    ASSERT_EQ(events.size(), 8u);
    EXPECT_EQ(tracer.dropped(), tracer.recorded() - 8);
    // The retained window is the most recent, still oldest-first.
    for (std::size_t i = 1; i < events.size(); ++i)
        EXPECT_LE(events[i - 1].end, events[i].end);
    // The last transfer of the program is the top-level return.
    EXPECT_EQ(events.back().kind, XferKind::Return);
}

TEST(Tracer, DroppedSurvivesEpochs)
{
    // The runtime rolls a tracer across jobs with setBase()+clear();
    // dropped() must keep the lifetime total, not reset per epoch
    // (it used to be computed as recorded() - events.size(), which a
    // clear() silently zeroed).
    Rig rig(kPrimes);
    obs::Tracer tracer(4);
    rig.machine->setObserver(&tracer);
    runMain(rig, "Main", 20);

    const CountT first_dropped = tracer.dropped();
    EXPECT_GT(first_dropped, 0u);
    EXPECT_EQ(first_dropped, tracer.recorded() - 4);

    tracer.setBase(tracer.base() + rig.machine->cycles());
    tracer.clear();
    EXPECT_EQ(tracer.recorded(), 0u);
    EXPECT_EQ(tracer.dropped(), first_dropped);

    Rig rig2(kPrimes);
    rig2.machine->setObserver(&tracer);
    runMain(rig2, "Main", 20);
    EXPECT_EQ(tracer.dropped(),
              first_dropped + tracer.recorded() - 4);
}

TEST(Tracer, ExportIsByteIdenticalAcrossRuns)
{
    const std::string a = traceOnce(25);
    const std::string b = traceOnce(25);
    EXPECT_EQ(a, b);
    EXPECT_NE(a.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(a.find("Main.isPrime"), std::string::npos);
}

TEST(Tracer, BaseOffsetsSequentialJobs)
{
    obs::Tracer tracer;
    {
        Rig rig(kPrimes);
        rig.machine->setObserver(&tracer);
        runMain(rig, "Main", 10);
        tracer.setBase(tracer.base() + rig.machine->cycles());
    }
    const auto first = tracer.events();
    const Tick boundary = tracer.base();
    ASSERT_FALSE(first.empty());
    EXPECT_LE(first.back().end, boundary);
    {
        Rig rig(kPrimes);
        rig.machine->setObserver(&tracer);
        runMain(rig, "Main", 10);
    }
    const auto all = tracer.events();
    ASSERT_GT(all.size(), first.size());
    // Second-job events start at or after the first job's end.
    EXPECT_GE(all[first.size()].start, boundary);
}

// ---------------------------------------------------------------------
// Profiler
// ---------------------------------------------------------------------

TEST(Profiler, ExclusiveCyclesSumToTotal)
{
    Rig rig(kFib);
    obs::Profiler profiler(rig.image);
    rig.machine->setObserver(&profiler);
    runMain(rig, "Fib", 10);

    const obs::ProfileData data =
        profiler.finish(rig.machine->cycles());
    EXPECT_EQ(data.total, rig.machine->cycles());
    EXPECT_EQ(data.exclusiveTotal(), data.total);

    // Folded stacks cover the same cycles.
    Tick folded = 0;
    for (const auto &[stack, cycles] : data.folded)
        folded += cycles;
    EXPECT_EQ(folded, data.total);
}

TEST(Profiler, ExclusiveSumSurvivesProcSwitchFlush)
{
    // Timesliced self-switching breaks LIFO bracketing on every
    // expired slice; the flush keeps attribution exact anyway.
    MachineConfig config;
    config.timesliceSteps = 50;
    Rig rig(kFib, config);
    rig.machine->setScheduler(
        [](Machine &m) { return m.currentFrameContext(); });
    obs::Profiler profiler(rig.image);
    rig.machine->setObserver(&profiler);
    runMain(rig, "Fib", 12);

    EXPECT_GT(rig.machine->stats().preemptions, 0u);
    const obs::ProfileData data =
        profiler.finish(rig.machine->cycles());
    EXPECT_EQ(data.total, rig.machine->cycles());
    EXPECT_EQ(data.exclusiveTotal(), data.total);

    // Re-rooted activations after a ProcSwitch count as resumes.
    Tick resumes = 0;
    for (const auto &[name, p] : data.procs)
        resumes += p.resumes;
    EXPECT_GT(resumes, 0u);
}

TEST(Profiler, CountsCallsPerProcedure)
{
    Rig rig(kPrimes);
    obs::Profiler profiler(rig.image);
    rig.machine->setObserver(&profiler);
    runMain(rig, "Main", 20);

    const obs::ProfileData data =
        profiler.finish(rig.machine->cycles());
    ASSERT_TRUE(data.procs.count("Main.isPrime"));
    ASSERT_TRUE(data.procs.count("Main.main"));
    // main(20) probes every i in [2, 20).
    EXPECT_EQ(data.procs.at("Main.isPrime").calls, 18u);
    EXPECT_EQ(data.procs.at("Main.main").calls, 1u);
    // isPrime never calls anything: exclusive == inclusive.
    EXPECT_EQ(data.procs.at("Main.isPrime").exclusive,
              data.procs.at("Main.isPrime").inclusive);
    EXPECT_GE(data.procs.at("Main.main").inclusive,
              data.procs.at("Main.main").exclusive);
}

TEST(Profiler, FoldedStacksNestProperly)
{
    Rig rig(kPrimes);
    obs::Profiler profiler(rig.image);
    rig.machine->setObserver(&profiler);
    runMain(rig, "Main", 20);

    const obs::ProfileData data =
        profiler.finish(rig.machine->cycles());
    EXPECT_TRUE(data.folded.count("Main.main"));
    EXPECT_TRUE(data.folded.count("Main.main;Main.isPrime"));

    std::ostringstream os;
    data.writeFolded(os);
    EXPECT_NE(os.str().find("Main.main;Main.isPrime "),
              std::string::npos);
}

TEST(Profiler, MergeAccumulates)
{
    obs::ProfileData total;
    for (int i = 0; i < 2; ++i) {
        Rig rig(kPrimes);
        obs::Profiler profiler(rig.image);
        rig.machine->setObserver(&profiler);
        runMain(rig, "Main", 20);
        total.merge(profiler.finish(rig.machine->cycles()));
    }
    EXPECT_EQ(total.procs.at("Main.isPrime").calls, 36u);
    EXPECT_EQ(total.exclusiveTotal(), total.total);
}

// ---------------------------------------------------------------------
// Observation cost and fanout
// ---------------------------------------------------------------------

TEST(Observer, AddsNoSimulatedCycles)
{
    Rig plain(kPrimes);
    runMain(plain, "Main", 25);

    Rig observed(kPrimes);
    obs::Tracer tracer;
    obs::Profiler profiler(observed.image);
    obs::Fanout fanout;
    fanout.add(&tracer);
    fanout.add(&profiler);
    observed.machine->setObserver(&fanout);
    runMain(observed, "Main", 25);

    EXPECT_EQ(plain.machine->cycles(), observed.machine->cycles());
    EXPECT_EQ(plain.machine->stats().steps,
              observed.machine->stats().steps);
}

TEST(Observer, FanoutReachesAllObservers)
{
    Rig rig(kPrimes);
    obs::Tracer a, b;
    obs::Fanout fanout;
    EXPECT_TRUE(fanout.empty());
    fanout.add(&a);
    fanout.add(&b);
    fanout.add(nullptr); // ignored
    EXPECT_FALSE(fanout.empty());
    rig.machine->setObserver(&fanout);
    runMain(rig, "Main", 10);
    EXPECT_GT(a.recorded(), 0u);
    EXPECT_EQ(a.recorded(), b.recorded());
}

// ---------------------------------------------------------------------
// Runtime integration
// ---------------------------------------------------------------------

namespace
{

std::string
runtimeTrace(unsigned workers, unsigned jobs, obs::ProfileData *profile)
{
    sched::RuntimeConfig rc;
    rc.workers = workers;
    rc.trace = true;
    rc.profile = profile != nullptr;
    sched::Runtime runtime(rc);
    auto modules = std::make_shared<const std::vector<Module>>(
        lang::compile(kPrimes));
    for (unsigned j = 0; j < jobs; ++j)
        runtime.submit({modules, "Main", "main", {Word(20)}});
    for (const auto &r : runtime.run())
        EXPECT_TRUE(r.ok) << r.error;
    if (profile != nullptr)
        *profile = runtime.profile();
    std::ostringstream os;
    runtime.writeTrace(os);
    return os.str();
}

} // namespace

TEST(RuntimeObs, TraceHasOneTrackPerWorkerAndIsStable)
{
    const std::string a = runtimeTrace(2, 6, nullptr);
    const std::string b = runtimeTrace(2, 6, nullptr);
    EXPECT_EQ(a, b);
    EXPECT_NE(a.find("\"worker 0\""), std::string::npos);
    EXPECT_NE(a.find("\"worker 1\""), std::string::npos);
    EXPECT_EQ(a.find("\"worker 2\""), std::string::npos);
}

TEST(RuntimeObs, MergedProfileCoversAllJobs)
{
    obs::ProfileData profile;
    runtimeTrace(2, 6, &profile);
    // 6 jobs x main(20) -> 18 isPrime calls each.
    EXPECT_EQ(profile.procs.at("Main.isPrime").calls, 6u * 18u);
    EXPECT_EQ(profile.exclusiveTotal(), profile.total);
}

// ---------------------------------------------------------------------
// JSON export
// ---------------------------------------------------------------------

TEST(Json, EscapesAndNumbers)
{
    EXPECT_EQ(obs::jsonEscape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
    EXPECT_EQ(obs::jsonEscape(std::string_view("\x01", 1)), "\\u0001");
    EXPECT_EQ(obs::jsonNumber(1.5), "1.5");
    EXPECT_EQ(obs::jsonNumber(0.0 / 0.0), "0"); // NaN never leaks
}

TEST(Json, WriterNestsAndSeparates)
{
    std::ostringstream os;
    obs::JsonWriter w(os);
    w.beginObject();
    w.kv("a", 1);
    w.key("b").beginArray().value(1).value("x").endArray();
    w.key("c").nullValue();
    w.endObject();
    EXPECT_EQ(os.str(), "{\n  \"a\": 1,\n  \"b\": [\n    1,\n"
                        "    \"x\"\n  ],\n  \"c\": null\n}");
}

TEST(Json, StatsExportHasStableSchema)
{
    Rig rig(kPrimes);
    runMain(rig, "Main", 20);

    auto render = [&] {
        obs::StatsExport exp;
        exp.driver = "test";
        exp.impl = implName(rig.machine->config().impl);
        exp.stopReason = stopReasonName(StopReason::TopReturn);
        exp.machine = &rig.machine->stats();
        exp.memory = rig.mem.get();
        exp.heap = &rig.machine->heap().stats();
        exp.cache = rig.machine->dataCache();
        std::ostringstream os;
        obs::writeStatsJson(os, exp);
        return os.str();
    };

    const std::string doc = render();
    EXPECT_EQ(doc, render()); // deterministic
    for (const char *key :
         {"\"schema\": \"fpc-stats-v1\"", "\"driver\": \"test\"",
          "\"machine\"", "\"cycles\"", "\"xfers\"", "\"memory\"",
          "\"heap\"", "\"groups\""}) {
        EXPECT_NE(doc.find(key), std::string::npos) << key;
    }
}

TEST(Json, StatGroupExportCoversEveryStat)
{
    stats::StatGroup group("g");
    ++group.counter("hits", "cache hits");
    group.distribution("lat").sample(2.0);
    group.histogram("sz", 2.0, 4).sample(1.0);

    std::ostringstream os;
    obs::JsonWriter w(os);
    obs::statGroupJson(w, group);
    const std::string doc = os.str();
    for (const char *key : {"\"hits\"", "\"lat\"", "\"sz\"",
                            "\"counter\"", "\"distribution\"",
                            "\"histogram\"", "\"buckets\""}) {
        EXPECT_NE(doc.find(key), std::string::npos) << key;
    }
}
