/**
 * @file
 * Tests for the time-series telemetry sampler, its exporters, and the
 * flight-recorder/postmortem path: the zero-simulated-cost contract,
 * byte-identical exports across engines/runs/acceleration, ring
 * semantics, and the symbolized bundle a trap leaves behind.
 */

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "lang/codegen.hh"
#include "machine/machine.hh"
#include "obs/postmortem.hh"
#include "obs/telemetry.hh"
#include "program/loader.hh"
#include "sched/runtime.hh"
#include "sched/scheduler.hh"

using namespace fpc;

namespace
{

const char *kPrimes = R"(
    module Main;
    var count;
    proc isPrime(n) {
        var d;
        if (n < 2) { return 0; }
        d = 2;
        while (d * d <= n) {
            if (n % d == 0) { return 0; }
            d = d + 1;
        }
        return 1;
    }
    proc main(limit) {
        var i;
        i = 2;
        while (i < limit) {
            if (isPrime(i)) { count = count + 1; }
            i = i + 1;
        }
        return count;
    }
)";

const char *kTrap = R"(
    module Main;
    proc div(a, b) { return a / b; }
    proc inner(n) { return div(100, n); }
    proc main(n) { return inner(n); }
)";

struct Rig
{
    std::unique_ptr<Memory> mem;
    LoadedImage image;
    std::unique_ptr<Machine> machine;

    explicit Rig(const std::string &source, MachineConfig config = {},
                 LinkPlan plan = {})
    {
        const auto modules = lang::compile(source);
        const SystemLayout layout;
        mem = std::make_unique<Memory>(layout.memWords);
        Loader loader{layout, SizeClasses::standard()};
        for (const auto &m : modules)
            loader.add(m);
        image = loader.load(*mem, plan);
        machine = std::make_unique<Machine>(*mem, image, config);
    }
};

RunResult
runMain(Rig &rig, Word arg)
{
    const std::vector<Word> args = {arg};
    rig.machine->start("Main", "main", args);
    return rig.machine->run();
}

/** Driver-shaped metrics run: attach, bracket, run, export. */
std::string
metricsOnce(MachineConfig config, LinkPlan plan, Word limit,
            Tick interval)
{
    Rig rig(kPrimes, config, plan);
    obs::Telemetry telemetry;
    rig.machine->setSampler(&telemetry, interval);
    const std::array<Word, 1> args = {limit};
    rig.machine->start("Main", "main", args);
    telemetry.sample(*rig.machine);
    rig.machine->run();
    telemetry.sample(*rig.machine);

    obs::MetricsExport meta;
    meta.driver = "test";
    meta.impl = implName(config.impl);
    meta.interval = interval;
    std::ostringstream os;
    obs::writeMetricsJson(os, meta, telemetry);
    return os.str();
}

struct EngineCombo
{
    Impl impl;
    CallLowering lowering;
    bool shortCalls;
};

std::vector<EngineCombo>
allEngines()
{
    return {
        {Impl::Simple, CallLowering::Fat, false},
        {Impl::Mesa, CallLowering::Mesa, false},
        {Impl::Ifu, CallLowering::Direct, true},
        {Impl::Banked, CallLowering::Direct, true},
    };
}

} // namespace

// ---------------------------------------------------------------------
// Telemetry sampling
// ---------------------------------------------------------------------

TEST(Telemetry, SamplesAtIntervalBoundaries)
{
    Rig rig(kPrimes);
    obs::Telemetry telemetry;
    rig.machine->setSampler(&telemetry, 1000);
    const RunResult result = runMain(rig, 60);
    ASSERT_EQ(result.reason, StopReason::TopReturn);

    const auto samples = telemetry.samples();
    ASSERT_GE(samples.size(), 2u);
    // Stamps are strictly monotone and each sample lands in a later
    // interval bucket (the sampler fires on boundary crossings, so
    // consecutive samples may be closer than one interval but never
    // share a bucket).
    for (std::size_t i = 1; i < samples.size(); ++i) {
        EXPECT_GT(samples[i].cycles, samples[i - 1].cycles);
        EXPECT_GT(samples[i].cycles / 1000,
                  samples[i - 1].cycles / 1000);
        EXPECT_GE(samples[i].steps, samples[i - 1].steps);
    }
    // Gauges carry real machine state.
    const obs::MetricsSample &last = samples.back();
    EXPECT_GT(last.calls, 0u);
    EXPECT_GT(last.liveFrames, 0u);
    EXPECT_TRUE(std::isfinite(last.fragmentation));
    EXPECT_EQ(last.freeFrames.size(),
              rig.machine->heap().classes().numClasses());
}

TEST(Telemetry, AddsNoSimulatedCycles)
{
    // A run with a sampler attached (even a very chatty one) must
    // report exactly the simulated numbers of an unobserved run.
    Rig plain(kPrimes);
    const RunResult r1 = runMain(plain, 50);
    ASSERT_EQ(r1.reason, StopReason::TopReturn);

    Rig sampled(kPrimes);
    obs::Telemetry telemetry;
    sampled.machine->setSampler(&telemetry, 100);
    const RunResult r2 = runMain(sampled, 50);
    ASSERT_EQ(r2.reason, StopReason::TopReturn);

    EXPECT_GT(telemetry.recorded(), 10u);
    EXPECT_EQ(plain.machine->stats().cycles,
              sampled.machine->stats().cycles);
    EXPECT_EQ(plain.machine->stats().steps,
              sampled.machine->stats().steps);
    EXPECT_EQ(plain.mem->totalRefs(), sampled.mem->totalRefs());
}

TEST(Telemetry, MetricsJsonByteIdenticalAcrossRunsAndAccel)
{
    for (const EngineCombo &combo : allEngines()) {
        LinkPlan plan;
        plan.lowering = combo.lowering;
        plan.shortCalls = combo.shortCalls;
        MachineConfig on;
        on.impl = combo.impl;
        on.accel.enabled = true;
        MachineConfig off = on;
        off.accel.enabled = false;

        const std::string a = metricsOnce(on, plan, 40, 2000);
        const std::string b = metricsOnce(on, plan, 40, 2000);
        const std::string c = metricsOnce(off, plan, 40, 2000);
        EXPECT_EQ(a, b) << implName(combo.impl) << ": two runs differ";
        EXPECT_EQ(a, c) << implName(combo.impl)
                        << ": accel on/off differ";
        EXPECT_NE(a.find("\"fpc-metrics-v1\""), std::string::npos);
        // The default document never leaks host-side counters.
        EXPECT_NE(a.find("\"accel\": null"), std::string::npos);
        EXPECT_EQ(a.find("icacheHitRate"), std::string::npos);
    }
}

TEST(Telemetry, RingDropsOldestAndCountsLifetimeDrops)
{
    Rig rig(kPrimes);
    obs::Telemetry telemetry(4);
    rig.machine->setSampler(&telemetry, 100);
    runMain(rig, 50);

    EXPECT_GT(telemetry.dropped(), 0u);
    const auto samples = telemetry.samples();
    ASSERT_EQ(samples.size(), 4u);
    EXPECT_EQ(telemetry.recorded(), telemetry.dropped() + 4);
    for (std::size_t i = 1; i < samples.size(); ++i)
        EXPECT_GT(samples[i].cycles, samples[i - 1].cycles);

    // dropped() survives an epoch roll, like Tracer::dropped().
    const CountT before = telemetry.dropped();
    telemetry.clear();
    EXPECT_EQ(telemetry.recorded(), 0u);
    EXPECT_EQ(telemetry.dropped(), before);
}

TEST(Telemetry, SetBaseOffsetsStamps)
{
    Rig rig(kPrimes);
    obs::Telemetry telemetry;
    telemetry.setBase(100000, 5000);
    rig.machine->setSampler(&telemetry, 1000);
    runMain(rig, 40);
    telemetry.sample(*rig.machine);

    const auto samples = telemetry.samples();
    ASSERT_FALSE(samples.empty());
    EXPECT_GE(samples.front().cycles, 100000u);
    EXPECT_GE(samples.front().steps, 5000u);
    EXPECT_EQ(samples.back().cycles,
              100000 + rig.machine->stats().cycles);
}

TEST(Telemetry, ProviderGaugesAppearInBothExports)
{
    Rig rig(kPrimes);
    obs::Telemetry telemetry;
    telemetry.setProvider(
        [](std::vector<std::pair<std::string, double>> &g) {
            g.emplace_back("custom_gauge", 42.0);
        });
    rig.machine->setSampler(&telemetry, 1000);
    runMain(rig, 40);
    telemetry.sample(*rig.machine);

    obs::MetricsExport meta;
    meta.driver = "test";
    meta.impl = "I2-mesa";
    std::ostringstream js, om;
    obs::writeMetricsJson(js, meta, telemetry);
    obs::writeOpenMetrics(om, meta, telemetry);
    EXPECT_NE(js.str().find("\"custom_gauge\": 42"),
              std::string::npos);
    EXPECT_NE(om.str().find("fpc_custom_gauge"), std::string::npos);
}

TEST(Telemetry, OpenMetricsShape)
{
    Rig rig(kPrimes);
    obs::Telemetry telemetry;
    rig.machine->setSampler(&telemetry, 1000);
    runMain(rig, 40);

    obs::MetricsExport meta;
    meta.driver = "test";
    meta.impl = "I2-mesa";
    std::ostringstream os;
    obs::writeOpenMetrics(os, meta, telemetry);
    const std::string text = os.str();

    EXPECT_NE(text.find("# TYPE fpc_cycles counter"),
              std::string::npos);
    EXPECT_NE(text.find("fpc_cycles_total{worker=\"0\",impl="
                        "\"I2-mesa\"}"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE fpc_heap_fragmentation gauge"),
              std::string::npos);
    EXPECT_NE(text.find("kind=\"extCall\""), std::string::npos);
    // Terminator present, exactly at the end.
    ASSERT_GE(text.size(), 6u);
    EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
    // No host-side families without includeAccel.
    EXPECT_EQ(text.find("fpc_accel"), std::string::npos);
}

TEST(Telemetry, SchedulerGaugesViaProvider)
{
    MachineConfig config;
    config.timesliceSteps = 200;
    Rig rig(kPrimes, config);
    sched::Scheduler scheduler(*rig.machine);
    scheduler.spawn("Main", "main", std::array<Word, 1>{Word{30}});
    scheduler.spawn("Main", "main", std::array<Word, 1>{Word{40}});

    obs::Telemetry telemetry;
    telemetry.setProvider(
        [&scheduler](std::vector<std::pair<std::string, double>> &g) {
            scheduler.appendGauges(g);
        });
    rig.machine->setSampler(&telemetry, 500);
    const RunResult result = scheduler.runAll();
    ASSERT_NE(result.reason, StopReason::Error) << result.message;
    telemetry.sample(*rig.machine);

    const auto samples = telemetry.samples();
    ASSERT_FALSE(samples.empty());
    bool saw_live = false;
    for (const auto &[name, value] : samples.front().gauges) {
        if (name == "sched_live" && value > 0)
            saw_live = true;
    }
    EXPECT_TRUE(saw_live);
    // After runAll, every process is done.
    for (const auto &[name, value] : samples.back().gauges) {
        if (name == "sched_live") {
            EXPECT_EQ(value, 0.0);
        }
    }
}

// ---------------------------------------------------------------------
// Flight recorder and postmortem bundles
// ---------------------------------------------------------------------

TEST(FlightRecorder, ShadowStackTracksNesting)
{
    Rig rig(kTrap);
    obs::FlightRecorder recorder;
    rig.machine->setObserver(&recorder);
    const RunResult result = runMain(rig, 0);
    ASSERT_EQ(result.reason, StopReason::Error);

    // main -> inner -> div, innermost on top.
    const auto &stack = recorder.shadowStack();
    ASSERT_EQ(stack.size(), 3u);
    const obs::ProcMap map(rig.image);
    EXPECT_EQ(*map.find(stack[0].pc), "Main.main");
    EXPECT_EQ(*map.find(stack[1].pc), "Main.inner");
    EXPECT_EQ(*map.find(stack[2].pc), "Main.div");
}

TEST(FlightRecorder, RingKeepsMostRecent)
{
    Rig rig(kPrimes);
    obs::FlightRecorder recorder(8);
    rig.machine->setObserver(&recorder);
    runMain(rig, 30);

    EXPECT_GT(recorder.recorded(), 8u);
    const auto records = recorder.records();
    ASSERT_EQ(records.size(), 8u);
    for (std::size_t i = 1; i < records.size(); ++i)
        EXPECT_LE(records[i - 1].end, records[i].end);
    EXPECT_EQ(records.back().kind, XferKind::Return);
}

TEST(Postmortem, BundleSymbolizesTrap)
{
    const std::filesystem::path dir =
        std::filesystem::path(testing::TempDir()) /
        "fpc_postmortem_test";
    std::filesystem::remove_all(dir);

    Rig rig(kTrap);
    obs::FlightRecorder recorder;
    rig.machine->setObserver(&recorder);
    obs::Telemetry telemetry;
    rig.machine->setSampler(&telemetry, 1000);
    const std::array<Word, 1> args = {Word{0}};
    rig.machine->start("Main", "main", args);
    telemetry.sample(*rig.machine);
    const RunResult result = rig.machine->run();
    telemetry.sample(*rig.machine);
    ASSERT_EQ(result.reason, StopReason::Error);

    obs::PostmortemConfig pm;
    pm.dir = dir.string();
    pm.driver = "test";
    pm.impl = "I2-mesa";
    ASSERT_TRUE(obs::writePostmortem(pm, *rig.machine, result,
                                     rig.image, recorder, &telemetry));

    std::ifstream js(dir / "postmortem.json");
    ASSERT_TRUE(js.good());
    std::stringstream jbuf;
    jbuf << js.rdbuf();
    const std::string json = jbuf.str();
    EXPECT_NE(json.find("\"fpc-postmortem-v1\""), std::string::npos);
    EXPECT_NE(json.find("division by zero"), std::string::npos);
    // The faulting procedure and the full backtrace, symbolized.
    EXPECT_NE(json.find("\"Main.div\""), std::string::npos);
    EXPECT_NE(json.find("\"Main.inner\""), std::string::npos);
    EXPECT_NE(json.find("\"Main.main\""), std::string::npos);
    EXPECT_NE(json.find("\"finalSample\""), std::string::npos);

    std::ifstream ds(dir / "disasm.txt");
    ASSERT_TRUE(ds.good());
    std::stringstream dbuf;
    dbuf << ds.rdbuf();
    const std::string disasm = dbuf.str();
    // The window names the procedure and marks the faulting DIV.
    EXPECT_NE(disasm.find("Main.div"), std::string::npos);
    EXPECT_NE(disasm.find("=> "), std::string::npos);
    EXPECT_NE(disasm.find("DIV"), std::string::npos);

    std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------
// Runtime integration
// ---------------------------------------------------------------------

TEST(RuntimeTelemetry, PerWorkerSeriesAndFailedJobBundles)
{
    const std::filesystem::path dir =
        std::filesystem::path(testing::TempDir()) /
        "fpc_runtime_postmortem_test";
    std::filesystem::remove_all(dir);

    auto modules = std::make_shared<const std::vector<Module>>(
        lang::compile(kTrap));

    sched::RuntimeConfig rc;
    rc.workers = 2;
    rc.metrics = true;
    rc.metricsInterval = 100;
    rc.postmortemDir = dir.string();
    rc.driver = "test";
    sched::Runtime runtime(rc);
    // Jobs 0/2 succeed (divide by 5), jobs 1/3 trap (divide by 0).
    for (const Word arg : {Word(5), Word(0), Word(5), Word(0)})
        runtime.submit({modules, "Main", "main", {arg}});
    const auto results = runtime.run();

    ASSERT_EQ(results.size(), 4u);
    EXPECT_TRUE(results[0].ok);
    EXPECT_FALSE(results[1].ok);
    EXPECT_TRUE(results[2].ok);
    EXPECT_FALSE(results[3].ok);

    // Only the failed jobs left bundles.
    EXPECT_FALSE(
        std::filesystem::exists(dir / "job-0-postmortem.json"));
    EXPECT_TRUE(
        std::filesystem::exists(dir / "job-1-postmortem.json"));
    EXPECT_TRUE(std::filesystem::exists(dir / "job-3-disasm.txt"));

    std::ostringstream js;
    runtime.writeMetricsJson(js);
    const std::string json = js.str();
    // One series per worker, worker job-progress gauges included.
    EXPECT_NE(json.find("\"worker\": 0"), std::string::npos);
    EXPECT_NE(json.find("\"worker\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"worker_jobs_done\""), std::string::npos);

    std::filesystem::remove_all(dir);
}

TEST(RuntimeTelemetry, MetricsForceStaticAssignmentDeterminism)
{
    auto once = [] {
        auto modules = std::make_shared<const std::vector<Module>>(
            lang::compile(kPrimes));
        sched::RuntimeConfig rc;
        rc.workers = 2;
        rc.metrics = true;
        rc.metricsInterval = 500;
        rc.driver = "test";
        sched::Runtime runtime(rc);
        for (unsigned j = 0; j < 6; ++j)
            runtime.submit({modules, "Main", "main", {30}});
        runtime.run();
        std::ostringstream os;
        runtime.writeMetricsJson(os);
        return os.str();
    };
    EXPECT_EQ(once(), once());
}
