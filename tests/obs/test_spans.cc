/**
 * @file
 * Tests for request-scoped span tracing (src/obs/spans): the
 * collector's bracketing discipline, drop-oldest ring, the
 * checkSpans() well-bracketing checker, the fpc-spans-v1 and Perfetto
 * exporters, and the span-bracketing postmortem bundle.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/spans.hh"

using namespace fpc;
using obs::SpanKind;
using obs::SpanTrack;

namespace
{

/** Record one complete, exactly-partitioned request tree starting at
 *  `base` ns on connection `conn`, executing on worker `worker`. */
void recordRequest(obs::SpanCollector &sc, std::uint64_t id,
                   std::uint32_t tenant, std::int64_t base,
                   std::uint32_t conn = 0, std::uint32_t worker = 0)
{
    const std::int64_t recv = base;
    const std::int64_t admitted = base + 10;
    const std::int64_t pick = base + 30;
    const std::int64_t execStart = base + 40;
    const std::int64_t execEnd = base + 90;
    const std::int64_t sent = base + 100;
    sc.begin(SpanKind::Request, id, SpanTrack::Connection, conn,
             tenant, recv, /*traceId=*/id * 7, /*reqId=*/42);
    sc.begin(SpanKind::Admission, id, SpanTrack::Connection, conn,
             tenant, recv, id * 7, 42);
    sc.end(SpanKind::Admission, id, admitted, true);
    sc.begin(SpanKind::Queued, id, SpanTrack::Tenant, tenant, tenant,
             admitted, id * 7, 42);
    sc.end(SpanKind::Queued, id, pick, true);
    sc.begin(SpanKind::Dispatch, id, SpanTrack::Worker, 0, tenant,
             pick, id * 7, 42);
    // Close-and-re-home, as the runtime does at execution start: the
    // dispatch span lands on the worker that actually runs the job.
    sc.end(SpanKind::Dispatch, id, execStart, true, SpanTrack::Worker,
           worker);
    sc.begin(SpanKind::Execute, id, SpanTrack::Worker, worker, tenant,
             execStart, id * 7, 42);
    sc.end(SpanKind::Execute, id, execEnd, true);
    sc.begin(SpanKind::Reply, id, SpanTrack::Worker, worker, tenant,
             execEnd, id * 7, 42);
    sc.end(SpanKind::Reply, id, sent, true);
    sc.end(SpanKind::Request, id, sent, true);
}

} // namespace

TEST(Spans, CompleteRequestTreeIsWellBracketed)
{
    obs::SpanCollector sc;
    const std::uint32_t gold = sc.internTenant("gold");
    recordRequest(sc, 1, gold, 1000);

    EXPECT_EQ(sc.recorded(), 6u);
    EXPECT_EQ(sc.dropped(), 0u);
    EXPECT_EQ(sc.openCount(), 0u);
    EXPECT_EQ(sc.faultCount(), 0u);

    const auto spans = sc.spans();
    ASSERT_EQ(spans.size(), 6u);
    // Phases are recorded as they close, the request span last.
    EXPECT_EQ(spans.front().kind, SpanKind::Admission);
    EXPECT_EQ(spans.back().kind, SpanKind::Request);
    for (const obs::Span &s : spans) {
        EXPECT_EQ(s.id, 1u);
        EXPECT_EQ(s.traceId, 7u);
        EXPECT_EQ(s.reqId, 42u);
        EXPECT_EQ(s.tenant, gold);
        EXPECT_GE(s.endNs, s.startNs);
        EXPECT_TRUE(s.ok);
    }

    const auto faults = obs::checkSpans(sc);
    EXPECT_TRUE(faults.empty())
        << (faults.empty() ? "" : faults.front().what);
}

TEST(Spans, PhaseDurationsPartitionTheRequestExactly)
{
    obs::SpanCollector sc;
    recordRequest(sc, 3, sc.internTenant("t"), 500);
    const auto spans = sc.spans();
    std::int64_t phaseTotal = 0;
    std::int64_t requestDur = -1;
    for (const obs::Span &s : spans) {
        if (s.kind == SpanKind::Request)
            requestDur = s.endNs - s.startNs;
        else
            phaseTotal += s.endNs - s.startNs;
    }
    // Adjacent phases share boundary timestamps, so the sum is exact
    // (the documented slack is zero).
    EXPECT_EQ(phaseTotal, requestDur);
}

TEST(Spans, ReHomingEndMovesSpanToStealingWorkerTrack)
{
    obs::SpanCollector sc;
    sc.begin(SpanKind::Request, 9, SpanTrack::Connection, 2,
             obs::noTenant, 0);
    sc.begin(SpanKind::Dispatch, 9, SpanTrack::Worker, 0,
             obs::noTenant, 0);
    // The job was picked for worker 0's deque but stolen by worker 3.
    sc.endPhase(9, 25, true, SpanTrack::Worker, 3);
    sc.begin(SpanKind::Execute, 9, SpanTrack::Worker, 3, obs::noTenant,
             25);
    sc.end(SpanKind::Execute, 9, 50, true);
    sc.end(SpanKind::Request, 9, 50, true);

    const auto spans = sc.spans();
    ASSERT_EQ(spans.size(), 3u);
    for (const obs::Span &s : spans) {
        if (s.kind == SpanKind::Dispatch || s.kind == SpanKind::Execute) {
            EXPECT_EQ(s.trackKind, SpanTrack::Worker);
            EXPECT_EQ(s.track, 3u) << spanKindName(s.kind);
        }
    }
}

TEST(Spans, EndPhaseClosesWhicheverPhaseIsOpen)
{
    obs::SpanCollector sc;
    sc.begin(SpanKind::Request, 5, SpanTrack::Connection, 0,
             obs::noTenant, 0);
    EXPECT_FALSE(sc.endPhase(5, 10)); // no phase open yet
    sc.begin(SpanKind::Queued, 5, SpanTrack::Tenant, 0, obs::noTenant,
             0);
    EXPECT_TRUE(sc.endPhase(5, 10));
    EXPECT_FALSE(sc.endPhase(5, 20)); // already closed
    EXPECT_TRUE(sc.endRequestIfOpen(5, 20, false, SpanTrack::Worker, 0));
    EXPECT_FALSE(sc.endRequestIfOpen(5, 30, false, SpanTrack::Worker, 0));
    EXPECT_EQ(sc.faultCount(), 0u);
    EXPECT_EQ(sc.openCount(), 0u);
}

TEST(Spans, RingDropsOldestBeyondCapacity)
{
    obs::SpanCollector sc(/*capacity=*/8);
    for (std::uint64_t id = 1; id <= 4; ++id)
        recordRequest(sc, id, obs::noTenant, 1000 * id);
    EXPECT_EQ(sc.recorded(), 24u);
    EXPECT_EQ(sc.dropped(), 16u);
    const auto spans = sc.spans();
    ASSERT_EQ(spans.size(), 8u);
    // Oldest-first snapshot: everything left belongs to the newest
    // trees, and order is preserved.
    for (const obs::Span &s : spans)
        EXPECT_GE(s.id, 3u);
    for (std::size_t i = 1; i < spans.size(); ++i)
        EXPECT_GE(spans[i].endNs, spans[i - 1].endNs);

    // Truncated logs skip completeness checks: torn trees from legal
    // eviction are not bracketing faults.
    const auto faults = obs::checkSpans(sc);
    EXPECT_TRUE(faults.empty())
        << (faults.empty() ? "" : faults.front().what);
}

TEST(Spans, DoubleBeginAndEndWithoutBeginFault)
{
    obs::SpanCollector sc;
    sc.begin(SpanKind::Request, 1, SpanTrack::Connection, 0,
             obs::noTenant, 0);
    sc.begin(SpanKind::Queued, 1, SpanTrack::Tenant, 0, obs::noTenant,
             0);
    // Second phase while the first is still open: discipline fault.
    sc.begin(SpanKind::Dispatch, 1, SpanTrack::Worker, 0,
             obs::noTenant, 5);
    // Ending a phase that was never begun: another fault.
    sc.end(SpanKind::Reply, 1, 10, true);
    EXPECT_GE(sc.faultCount(), 2u);
    const auto faults = sc.faults();
    ASSERT_GE(faults.size(), 2u);
    for (const obs::SpanFault &f : faults) {
        EXPECT_EQ(f.id, 1u);
        EXPECT_FALSE(f.what.empty());
    }
}

TEST(Spans, CheckerFlagsOpenSpansAndBrokenPartition)
{
    {
        obs::SpanCollector sc;
        sc.begin(SpanKind::Request, 2, SpanTrack::Connection, 0,
                 obs::noTenant, 0);
        const auto faults = obs::checkSpans(sc);
        ASSERT_FALSE(faults.empty()); // request still open at check
        EXPECT_NE(faults.front().what.find("open"),
                  std::string::npos);
    }
    {
        // A gap between execute and reply breaks the exact partition.
        obs::SpanCollector sc;
        sc.begin(SpanKind::Request, 4, SpanTrack::Connection, 0,
                 obs::noTenant, 0);
        sc.begin(SpanKind::Admission, 4, SpanTrack::Connection, 0,
                 obs::noTenant, 0);
        sc.end(SpanKind::Admission, 4, 10, true);
        sc.begin(SpanKind::Queued, 4, SpanTrack::Tenant, 0,
                 obs::noTenant, 10);
        sc.end(SpanKind::Queued, 4, 20, true);
        sc.begin(SpanKind::Dispatch, 4, SpanTrack::Worker, 0,
                 obs::noTenant, 20);
        sc.end(SpanKind::Dispatch, 4, 30, true);
        sc.begin(SpanKind::Execute, 4, SpanTrack::Worker, 0,
                 obs::noTenant, 30);
        sc.end(SpanKind::Execute, 4, 40, true);
        sc.begin(SpanKind::Reply, 4, SpanTrack::Worker, 0,
                 obs::noTenant, 60); // gap: 40..60 unaccounted
        sc.end(SpanKind::Reply, 4, 100, true);
        sc.end(SpanKind::Request, 4, 100, true);
        EXPECT_EQ(sc.faultCount(), 0u); // discipline itself was fine
        EXPECT_FALSE(obs::checkSpans(sc).empty());
        // ...and a generous slack forgives the gap.
        EXPECT_TRUE(obs::checkSpans(sc, /*slackNs=*/25).empty());
    }
}

TEST(Spans, SeededFaultTripsPostmortemBundle)
{
    obs::SpanCollector sc;
    recordRequest(sc, 1, sc.internTenant("gold"), 100);
    // Seed an unbalanced end: no Execute span is open for id 1.
    sc.end(SpanKind::Execute, 1, 999, true);
    const auto faults = obs::checkSpans(sc);
    ASSERT_FALSE(faults.empty());

    const std::string dir = "test_spans_postmortem.tmp";
    ASSERT_TRUE(obs::writeSpanPostmortem(dir, "unit-", "test_obs",
                                         faults, sc));
    const std::string path = dir + "/unit-spans-postmortem.json";
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path;
    std::stringstream body;
    body << in.rdbuf();
    const std::string text = body.str();
    EXPECT_NE(text.find("fpc-postmortem-v1"), std::string::npos);
    EXPECT_NE(text.find("span-bracketing"), std::string::npos);
    EXPECT_NE(text.find("execute"), std::string::npos);
    in.close();
    std::remove(path.c_str());
    std::remove(dir.c_str());
}

TEST(Spans, SpansLogRoundTripsTheCollectorState)
{
    obs::SpanCollector sc;
    const std::uint32_t gold = sc.internTenant("gold");
    sc.internTenant("silver");
    recordRequest(sc, 1, gold, 100);
    recordRequest(sc, 2, obs::noTenant, 300);

    std::ostringstream os;
    obs::writeSpansLog(os, "test_obs", sc);
    const std::string log = os.str();

    std::istringstream is(log);
    std::string line;
    std::getline(is, line);
    EXPECT_EQ(line, "fpc-spans-v1");
    std::size_t spanLines = 0, tenantLines = 0;
    bool sawEof = false;
    while (std::getline(is, line)) {
        if (line.rfind("span ", 0) == 0) {
            ++spanLines;
            // 10 whitespace-separated fields per record.
            std::istringstream fields(line);
            std::string f;
            int n = 0;
            while (fields >> f)
                ++n;
            EXPECT_EQ(n, 10) << line;
        } else if (line.rfind("tenant ", 0) == 0) {
            ++tenantLines;
        } else if (line == "eof") {
            sawEof = true;
        }
    }
    EXPECT_EQ(spanLines, 12u);
    EXPECT_EQ(tenantLines, 2u);
    EXPECT_TRUE(sawEof);
    EXPECT_NE(log.find("driver test_obs"), std::string::npos);
    EXPECT_NE(log.find("recorded 12"), std::string::npos);
    EXPECT_NE(log.find("dropped 0"), std::string::npos);
    EXPECT_NE(log.find("faults 0"), std::string::npos);
    EXPECT_NE(log.find("tenant 0 gold"), std::string::npos);
    // The no-tenant request exports its tenant column as '-'.
    EXPECT_NE(log.find(" - "), std::string::npos);
}

TEST(Spans, PerfettoExportEmitsSlicesPerTrack)
{
    obs::SpanCollector sc;
    recordRequest(sc, 1, sc.internTenant("gold"), 100, /*conn=*/0,
                  /*worker=*/1);
    std::ostringstream os;
    obs::writeSpansPerfetto(os, sc);
    const std::string doc = os.str();
    EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(doc.find("\"ph\": \"X\""), std::string::npos);
    // Serve spans live on pid 1; worker/tenant/connection tracks.
    EXPECT_NE(doc.find("\"pid\": 1"), std::string::npos);
    EXPECT_EQ(doc.find("\"pid\": 0"), std::string::npos)
        << "no XFER tracks were passed, pid 0 must be absent";
    // Request + admission on the connection track (tid 2000+),
    // queued on the tenant track (tid 1000+).
    EXPECT_NE(doc.find("\"tid\": 2000"), std::string::npos);
    EXPECT_NE(doc.find("\"tid\": 1000"), std::string::npos);
    EXPECT_NE(doc.find("\"tid\": 1,"), std::string::npos);
}

TEST(Spans, ClearResetsEverythingButTenants)
{
    obs::SpanCollector sc;
    sc.internTenant("gold");
    recordRequest(sc, 1, 0, 100);
    sc.end(SpanKind::Reply, 1, 5, true); // seed a fault
    ASSERT_GT(sc.recorded(), 0u);
    ASSERT_GT(sc.faultCount(), 0u);
    sc.clear();
    EXPECT_EQ(sc.recorded(), 0u);
    EXPECT_EQ(sc.dropped(), 0u);
    EXPECT_EQ(sc.faultCount(), 0u);
    EXPECT_EQ(sc.openCount(), 0u);
    EXPECT_TRUE(sc.spans().empty());
    EXPECT_TRUE(sc.faults().empty());
    // Interned tenant indices stay stable across clear().
    EXPECT_EQ(sc.internTenant("gold"), 0u);
}
