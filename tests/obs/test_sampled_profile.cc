/**
 * @file
 * Tests for the boundary-sampling profiler (obs/sampled_profile.hh)
 * and the BoundarySampler machinery it rides:
 *
 *  - the slop contract — every sample lands at or after its nominal
 *    interval boundary, within one instruction (eager), one burst
 *    (burst loop) or one superblock (threaded) of it, on all four
 *    engines;
 *  - the validation harness the tentpole promises: sampled cycle
 *    shares on a deterministic call-heavy workload agree with the
 *    exact eager profiler's exclusive shares within tolerance;
 *  - attaching a boundary sampler does not perturb a single simulated
 *    number (the accel invariance contract extends to observation);
 *  - the SampledProfile container and BoundaryFanout mechanics.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "lang/codegen.hh"
#include "machine/machine.hh"
#include "obs/json.hh"
#include "obs/profile.hh"
#include "obs/sampled_profile.hh"
#include "program/loader.hh"

using namespace fpc;

namespace
{

/** Call-heavy, deterministic: isPrime dominates, with main's loop a
 *  solid second — two procedures with stable, well-separated shares. */
const char *kPrimes = R"(
    module Main;
    var count;
    proc isPrime(n) {
        var d;
        if (n < 2) { return 0; }
        d = 2;
        while (d * d <= n) {
            if (n % d == 0) { return 0; }
            d = d + 1;
        }
        return 1;
    }
    proc main(limit) {
        var i;
        i = 2;
        while (i < limit) {
            if (isPrime(i)) { count = count + 1; }
            i = i + 1;
        }
        return count;
    }
)";

enum class Mode
{
    Off,
    On,
    Threaded,
};

const char *
modeName(Mode mode)
{
    switch (mode) {
      case Mode::Off: return "off";
      case Mode::On: return "on";
      case Mode::Threaded: return "threaded";
      default: return "?";
    }
}

struct Rig
{
    std::unique_ptr<Memory> mem;
    LoadedImage image;
    std::unique_ptr<Machine> machine;

    explicit Rig(const std::string &source, MachineConfig config = {},
                 LinkPlan plan = {})
    {
        const auto modules = lang::compile(source);
        const SystemLayout layout;
        mem = std::make_unique<Memory>(layout.memWords);
        Loader loader{layout, SizeClasses::standard()};
        for (const auto &m : modules)
            loader.add(m);
        image = loader.load(*mem, plan);
        machine = std::make_unique<Machine>(*mem, image, config);
    }
};

MachineConfig
configFor(Impl impl, Mode mode)
{
    MachineConfig config;
    config.impl = impl;
    config.accel.enabled = mode != Mode::Off;
    config.accel.threaded = mode == Mode::Threaded;
    return config;
}

Word
runMain(Rig &rig, Word arg)
{
    const std::vector<Word> args = {arg};
    rig.machine->start("Main", "main", args);
    const RunResult result = rig.machine->run();
    EXPECT_EQ(result.reason, StopReason::TopReturn) << result.message;
    return rig.machine->popValue();
}

/** Records the (cycles, steps) coordinates of every boundary fire. */
struct RecordingBsampler : BoundarySampler
{
    std::vector<std::pair<Tick, std::uint64_t>> fires;

    void
    onBoundarySample(const Machine &machine) override
    {
        fires.emplace_back(machine.stats().cycles,
                           machine.stats().steps);
    }
};

} // namespace

// ---------------------------------------------------------------------
// The slop contract
// ---------------------------------------------------------------------

namespace
{

/** Generous upper bound on the simulated cost of one instruction in
 *  the default latency model (decode + a transfer's worth of memory
 *  references stays well under this). */
constexpr Tick kPerStepCycleCap = 64;

/** Steps per boundary unit for each host backend. */
std::uint64_t
unitSteps(Mode mode)
{
    switch (mode) {
      case Mode::Off: return 1;        // instruction boundary
      case Mode::On: return 4096;      // one burst
      case Mode::Threaded: return 64;  // one superblock (maxBlockInsts)
      default: return 1;
    }
}

} // namespace

TEST(BoundarySampling, SlopBoundedOnEveryEngineAndBackend)
{
    constexpr Tick interval = 1000;
    const struct
    {
        Impl impl;
        CallLowering lowering;
    } combos[] = {
        {Impl::Simple, CallLowering::Fat},
        {Impl::Mesa, CallLowering::Mesa},
        {Impl::Ifu, CallLowering::Direct},
        {Impl::Banked, CallLowering::Direct},
    };

    for (const auto &combo : combos) {
        for (Mode mode : {Mode::Off, Mode::On, Mode::Threaded}) {
            const std::string tag = std::string(implName(combo.impl)) +
                                    "/" + modeName(mode);
            LinkPlan plan;
            plan.lowering = combo.lowering;
            Rig rig(kPrimes, configFor(combo.impl, mode), plan);
            RecordingBsampler rec;
            rig.machine->setBoundarySampler(&rec, interval);
            runMain(rig, 300);

            // The burst backend fires at most once per 4096-step
            // burst, so a short run yields only a handful of samples.
            ASSERT_GT(rec.fires.size(), mode == Mode::On ? 3u : 10u)
                << tag;
            const Tick slopBound = static_cast<Tick>(unitSteps(mode)) *
                                   kPerStepCycleCap;
            const std::uint64_t finalSteps =
                rig.machine->stats().steps;

            // Replicate the machine's catch-up bookkeeping: each fire
            // must land at or after its nominal boundary, within the
            // backend's slop, and then consume every boundary up to
            // the observed cycle count.
            Tick nextAt = interval;
            Tick prevCycles = 0;
            for (const auto &[cycles, steps] : rec.fires) {
                EXPECT_GE(cycles, nextAt) << tag;
                EXPECT_LE(cycles - nextAt, slopBound) << tag;
                EXPECT_GT(cycles, prevCycles) << tag;
                prevCycles = cycles;
                do
                    nextAt += interval;
                while (nextAt <= cycles);
                if (mode == Mode::On) {
                    // Burst boundaries are structural: a fire can only
                    // happen at a burst flush (a 4096-step multiple)
                    // or at the run's final, possibly partial, burst.
                    EXPECT_TRUE(steps % 4096 == 0 ||
                                steps == finalSteps)
                        << tag << " steps=" << steps;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Sampled-vs-exact validation harness
// ---------------------------------------------------------------------

TEST(SampledProfiler, AgreesWithExactProfilerOnThreaded)
{
    constexpr Word limit = 4000;
    constexpr Tick interval = 491; // prime: avoids loop aliasing

    // Exact baseline: eager loop, XFER-observer profiler.
    Rig exactRig(kPrimes);
    obs::Profiler exact(exactRig.image);
    exactRig.machine->setObserver(&exact);
    const Word exactValue = runMain(exactRig, limit);
    const obs::ProfileData exactData =
        exact.finish(exactRig.machine->stats().cycles);
    ASSERT_GT(exactData.total, 0);

    for (Mode mode : {Mode::Threaded, Mode::Off}) {
        Rig rig(kPrimes, configFor(Impl::Banked, mode));
        obs::SampledProfiler sampler(rig.image);
        rig.machine->setBoundarySampler(&sampler, interval);
        EXPECT_EQ(runMain(rig, limit), exactValue) << modeName(mode);
        const obs::SampledProfile profile = sampler.finish();
        ASSERT_GT(profile.total, 100) << modeName(mode);
        EXPECT_EQ(profile.dropped, 0u) << modeName(mode);

        // Every procedure with a non-trivial exact share must appear
        // in the sampled profile with a share within 5 points.
        for (const auto &[name, pp] : exactData.procs) {
            const double exactShare =
                static_cast<double>(pp.exclusive) /
                static_cast<double>(exactData.total);
            if (exactShare < 0.02)
                continue;
            const double sampledShare = profile.share(name);
            EXPECT_NEAR(sampledShare, exactShare, 0.05)
                << modeName(mode) << " " << name;
        }
    }
}

// ---------------------------------------------------------------------
// Observation must not perturb simulated numbers
// ---------------------------------------------------------------------

TEST(BoundarySampling, DoesNotPerturbSimulatedStats)
{
    const auto statsJson = [](Rig &rig) {
        std::ostringstream os;
        obs::StatsExport exp;
        exp.driver = "test_sampled";
        exp.impl = implName(rig.machine->config().impl);
        exp.stopReason = stopReasonName(StopReason::TopReturn);
        exp.machine = &rig.machine->stats();
        exp.memory = rig.mem.get();
        exp.heap = &rig.machine->heap().stats();
        exp.cache = rig.machine->dataCache();
        obs::writeStatsJson(os, exp);
        return os.str();
    };

    for (Mode mode : {Mode::Off, Mode::On, Mode::Threaded}) {
        Rig bare(kPrimes, configFor(Impl::Banked, mode));
        const Word bareValue = runMain(bare, 200);
        const std::string bareJson = statsJson(bare);

        Rig observed(kPrimes, configFor(Impl::Banked, mode));
        obs::SampledProfiler sampler(observed.image);
        observed.machine->setBoundarySampler(&sampler, 997);
        EXPECT_EQ(runMain(observed, 200), bareValue) << modeName(mode);
        EXPECT_GT(sampler.recorded(), 0u) << modeName(mode);
        EXPECT_EQ(statsJson(observed), bareJson) << modeName(mode);
    }
}

// ---------------------------------------------------------------------
// SampledProfile container
// ---------------------------------------------------------------------

TEST(SampledProfile, MergeShareAndFolded)
{
    obs::SampledProfile a;
    a.samples["Main.f"] = 30;
    a.samples["Main.g"] = 10;
    a.total = 40;
    a.recorded = 40;

    obs::SampledProfile b;
    b.samples["Main.g"] = 10;
    b.samples["Main.h"] = 10;
    b.total = 20;
    b.recorded = 25;
    b.dropped = 5;

    a.merge(b);
    EXPECT_EQ(a.total, 60);
    EXPECT_EQ(a.recorded, 65);
    EXPECT_EQ(a.dropped, 5);
    EXPECT_DOUBLE_EQ(a.share("Main.f"), 0.5);
    EXPECT_DOUBLE_EQ(a.share("Main.g"), 20.0 / 60.0);
    EXPECT_DOUBLE_EQ(a.share("absent"), 0.0);

    std::ostringstream os;
    a.writeFolded(os);
    EXPECT_EQ(os.str(), "Main.f 30\nMain.g 20\nMain.h 10\n");
}

TEST(SampledProfiler, RingDropsOldestBeyondCapacity)
{
    Rig rig(kPrimes, configFor(Impl::Banked, Mode::Threaded));
    obs::SampledProfiler sampler(rig.image, /*capacity=*/8);
    rig.machine->setBoundarySampler(&sampler, 500);
    runMain(rig, 300);

    ASSERT_GT(sampler.recorded(), 8u);
    EXPECT_EQ(sampler.dropped(), sampler.recorded() - 8u);
    const CountT recorded = sampler.recorded();
    const obs::SampledProfile profile = sampler.finish();
    EXPECT_EQ(profile.total, 8); // ring retains exactly its capacity
    EXPECT_EQ(profile.recorded, recorded);
    // finish() resets: a second finish sees an empty profiler.
    const obs::SampledProfile empty = sampler.finish();
    EXPECT_EQ(empty.total, 0);
    EXPECT_EQ(empty.recorded, 0);
}

// ---------------------------------------------------------------------
// BoundaryFanout
// ---------------------------------------------------------------------

namespace
{

struct CountingBsampler : BoundarySampler
{
    std::vector<Tick> at;
    void
    onBoundarySample(const Machine &machine) override
    {
        at.push_back(machine.stats().cycles);
    }
};

} // namespace

TEST(BoundaryFanout, FinestIntervalDrivesCoarserTargets)
{
    obs::BoundaryFanout fan;
    EXPECT_TRUE(fan.empty());
    EXPECT_EQ(fan.machineInterval(), 0);

    CountingBsampler fine;
    CountingBsampler coarse;
    fan.add(&fine, 500);
    fan.add(&coarse, 5000);
    EXPECT_FALSE(fan.empty());
    EXPECT_EQ(fan.machineInterval(), 500);

    Rig rig(kPrimes, configFor(Impl::Banked, Mode::Threaded));
    rig.machine->setBoundarySampler(&fan, fan.machineInterval());
    runMain(rig, 300);

    ASSERT_GT(fine.at.size(), 20u);
    ASSERT_GE(coarse.at.size(), 2u);
    EXPECT_LT(coarse.at.size(), fine.at.size());
    // Each coarse fire obeys the same catch-up contract as the
    // machine's own budget: at or after its nominal boundary, which
    // then advances strictly past the fire point.
    Tick nextAt = 5000;
    for (const Tick at : coarse.at) {
        EXPECT_GE(at, nextAt);
        do
            nextAt += 5000;
        while (nextAt <= at);
    }
}
