/**
 * @file
 * Tests for fpc_probe (obs/probes.hh + obs/probe_lang.hh):
 *
 *  - the probe language: canonical rendering, predicate/action
 *    parsing, diagnosis on malformed specs, glob matching;
 *  - the log2 quantize histogram's bucket boundaries;
 *  - a live ProbeEngine on a real Machine: entry/exit counts,
 *    aggregating actions, the depth/caller/callstr/tenant predicates,
 *    capture rings, and identical aggregations across every host
 *    backend (probed procedures deopt to the exact eager path);
 *  - attaching probes must not perturb a single simulated number on
 *    any engine x backend combination (the invariance contract);
 *  - the ProbeRegistry: idempotent attach, detach, folding engines
 *    compiled against stale snapshots, deterministic fpc-probes-v1
 *    output;
 *  - the BoundaryFanout detach path (satellite);
 *  - SampledProfile::merge edge cases (satellite).
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "lang/codegen.hh"
#include "machine/machine.hh"
#include "obs/json.hh"
#include "obs/probe_lang.hh"
#include "obs/probes.hh"
#include "obs/sampled_profile.hh"
#include "program/loader.hh"

using namespace fpc;

namespace
{

const char *kPrimes = R"(
    module Main;
    var count;
    proc isPrime(n) {
        var d;
        if (n < 2) { return 0; }
        d = 2;
        while (d * d <= n) {
            if (n % d == 0) { return 0; }
            d = d + 1;
        }
        return 1;
    }
    proc main(limit) {
        var i;
        i = 2;
        while (i < limit) {
            if (isPrime(i)) { count = count + 1; }
            i = i + 1;
        }
        return count;
    }
)";

enum class Mode
{
    Off,
    On,
    Threaded,
};

const char *
modeName(Mode mode)
{
    switch (mode) {
      case Mode::Off: return "off";
      case Mode::On: return "on";
      case Mode::Threaded: return "threaded";
      default: return "?";
    }
}

struct Rig
{
    std::unique_ptr<Memory> mem;
    LoadedImage image;
    std::unique_ptr<Machine> machine;

    explicit Rig(const std::string &source, MachineConfig config = {},
                 LinkPlan plan = {})
    {
        const auto modules = lang::compile(source);
        const SystemLayout layout;
        mem = std::make_unique<Memory>(layout.memWords);
        Loader loader{layout, SizeClasses::standard()};
        for (const auto &m : modules)
            loader.add(m);
        image = loader.load(*mem, plan);
        machine = std::make_unique<Machine>(*mem, image, config);
    }
};

MachineConfig
configFor(Impl impl, Mode mode)
{
    MachineConfig config;
    config.impl = impl;
    config.accel.enabled = mode != Mode::Off;
    config.accel.threaded = mode == Mode::Threaded;
    return config;
}

Word
runMain(Rig &rig, Word arg)
{
    const std::vector<Word> args = {arg};
    rig.machine->start("Main", "main", args);
    const RunResult result = rig.machine->run();
    EXPECT_EQ(result.reason, StopReason::TopReturn) << result.message;
    return rig.machine->popValue();
}

obs::ProbeSpec
parse(const std::string &text)
{
    obs::ProbeSpec spec;
    std::string err;
    EXPECT_TRUE(obs::parseProbeSpec(text, spec, err))
        << text << ": " << err;
    return spec;
}

/** Run kPrimes(limit) with the given specs attached and return the
 *  registry's read() view. */
std::vector<std::pair<obs::ProbeRegistry::Entry, obs::ProbeAgg>>
runProbed(const std::vector<std::string> &specs, Word limit,
          Impl impl = Impl::Banked, Mode mode = Mode::Off,
          const std::string &tenant = "")
{
    obs::ProbeRegistry registry;
    std::string err;
    EXPECT_TRUE(obs::attachProbeSpecs(registry, specs, err)) << err;
    Rig rig(kPrimes, configFor(impl, mode));
    obs::ProbeEngine engine(registry.snapshot(), rig.image, tenant,
                            /*worker=*/0);
    rig.machine->setProbeSink(&engine, engine.armedRanges());
    runMain(rig, limit);
    rig.machine->setProbeSink(nullptr);
    engine.finishInto(registry);
    return registry.read();
}

} // namespace

// ---------------------------------------------------------------------
// The probe language
// ---------------------------------------------------------------------

TEST(ProbeLang, CanonicalRenderingIsSpacingIndependent)
{
    const obs::ProbeSpec a =
        parse("entry:Main.isPrime{depth<=4}->quantize(cycles)");
    const obs::ProbeSpec b = parse(
        "  entry:Main.isPrime  { depth <= 4 } ->  quantize( cycles )");
    EXPECT_EQ(a.text, b.text);
    EXPECT_EQ(a.site, obs::ProbeSite::Entry);
    EXPECT_EQ(a.pattern, "Main.isPrime");
    ASSERT_EQ(a.predicates.size(), 1u);
    EXPECT_EQ(a.predicates[0].kind,
              obs::ProbePredicate::Kind::Depth);
    EXPECT_EQ(a.predicates[0].cmp, obs::ProbeCmp::Le);
    EXPECT_EQ(a.predicates[0].number, 4u);
    EXPECT_EQ(a.action, obs::ProbeAction::Quantize);
    EXPECT_EQ(a.expr, obs::ProbeExpr::Cycles);
}

TEST(ProbeLang, SitesPredicatesAndActionsParse)
{
    EXPECT_EQ(parse("exit:Main.*").site, obs::ProbeSite::Exit);
    EXPECT_EQ(parse("exit:Main.*").action, obs::ProbeAction::Count);
    EXPECT_EQ(parse("xfer:return").site, obs::ProbeSite::Xfer);
    EXPECT_EQ(parse("xfer:return").kind, XferKind::Return);
    EXPECT_EQ(parse("trap").site, obs::ProbeSite::Trap);
    EXPECT_EQ(parse("procswitch").site, obs::ProbeSite::ProcSwitch);
    EXPECT_EQ(parse("alloc").site, obs::ProbeSite::FrameAlloc);
    EXPECT_EQ(parse("free").site, obs::ProbeSite::FrameFree);

    const obs::ProbeSpec multi = parse(
        "entry:M.p{depth>2,tenant==gold,caller==M.*,"
        "callstr==M.a/M.b} -> sum(refs)");
    ASSERT_EQ(multi.predicates.size(), 4u);
    EXPECT_EQ(multi.predicates[1].text, "gold");
    EXPECT_EQ(multi.predicates[2].text, "M.*");
    ASSERT_EQ(multi.predicates[3].path.size(), 2u);
    EXPECT_EQ(multi.predicates[3].path[1], "M.b");
    EXPECT_EQ(multi.action, obs::ProbeAction::Sum);
    EXPECT_EQ(multi.expr, obs::ProbeExpr::Refs);

    EXPECT_EQ(parse("entry:M.p -> capture(16)").captureDepth, 16u);
}

TEST(ProbeLang, MalformedSpecsDiagnose)
{
    obs::ProbeSpec spec;
    std::string err;
    for (const char *bad :
         {"", "entry:", "bogus:M.p", "xfer:sideways",
          "entry:M.p{depth=4}", "entry:M.p{tenant<gold}",
          "entry:M.p -> frobnicate", "entry:M.p -> sum()",
          "entry:M.p -> sum(bogus)", "entry:M.p -> capture(x)",
          "entry:M.p{", "entry:M.p}junk"}) {
        err.clear();
        EXPECT_FALSE(obs::parseProbeSpec(bad, spec, err)) << bad;
        EXPECT_FALSE(err.empty()) << bad;
    }
}

TEST(ProbeLang, GlobMatching)
{
    EXPECT_TRUE(obs::probeGlobMatch("Main.isPrime", "Main.isPrime"));
    EXPECT_TRUE(obs::probeGlobMatch("Main.*", "Main.isPrime"));
    EXPECT_TRUE(obs::probeGlobMatch("*.isPrime", "Main.isPrime"));
    EXPECT_TRUE(obs::probeGlobMatch("Main.is?rime", "Main.isPrime"));
    EXPECT_TRUE(obs::probeGlobMatch("*", "anything"));
    EXPECT_TRUE(obs::probeGlobMatch("*", ""));
    EXPECT_FALSE(obs::probeGlobMatch("Main.is?rime", "Main.isrime"));
    EXPECT_FALSE(obs::probeGlobMatch("Main.*", "Other.isPrime"));
    EXPECT_FALSE(obs::probeGlobMatch("", "x"));
}

// ---------------------------------------------------------------------
// Quantize buckets
// ---------------------------------------------------------------------

TEST(ProbeQuantize, Log2BucketBoundaries)
{
    obs::ProbeQuantize q;
    q.sample(0);                       // bucket 0
    q.sample(1);                       // bucket 1: [1, 2)
    q.sample(2);                       // bucket 2: [2, 4)
    q.sample(3);                       // bucket 2
    q.sample(4);                       // bucket 3: [4, 8)
    q.sample(7);                       // bucket 3
    q.sample(8);                       // bucket 4
    q.sample(~std::uint64_t{0});       // bucket 64
    EXPECT_EQ(q.buckets[0], 1u);
    EXPECT_EQ(q.buckets[1], 1u);
    EXPECT_EQ(q.buckets[2], 2u);
    EXPECT_EQ(q.buckets[3], 2u);
    EXPECT_EQ(q.buckets[4], 1u);
    EXPECT_EQ(q.buckets[64], 1u);

    obs::ProbeQuantize other;
    other.sample(3);
    q.merge(other);
    EXPECT_EQ(q.buckets[2], 3u);
}

// ---------------------------------------------------------------------
// Live engine aggregation
// ---------------------------------------------------------------------

TEST(ProbeEngine, EntryAndExitCountCalls)
{
    // main calls isPrime once per i in [2, 50): 48 calls, each of
    // which returns.
    const auto probes = runProbed(
        {"entry:Main.isPrime", "exit:Main.isPrime"}, 50);
    ASSERT_EQ(probes.size(), 2u);
    EXPECT_EQ(probes[0].second.hits, 48u);
    EXPECT_EQ(probes[1].second.hits, 48u);
}

TEST(ProbeEngine, AggregationsAreBackendInvariant)
{
    const std::vector<std::string> specs = {
        "entry:Main.isPrime -> sum(cycles)",
        "entry:Main.* -> quantize(refs)",
        "xfer:return -> count",
    };
    const auto baseline = runProbed(specs, 120, Impl::Banked,
                                    Mode::Off);
    ASSERT_EQ(baseline.size(), specs.size());
    EXPECT_GT(baseline[0].second.hits, 0u);
    EXPECT_GT(baseline[0].second.dist.total(), 0.0);
    EXPECT_GT(baseline[2].second.hits, baseline[0].second.hits);

    for (Impl impl : {Impl::Simple, Impl::Mesa, Impl::Ifu,
                      Impl::Banked}) {
        for (Mode mode : {Mode::On, Mode::Threaded}) {
            const std::string tag = std::string(implName(impl)) + "/" +
                                    modeName(mode);
            const auto probed = runProbed(specs, 120, impl, mode);
            // Same engine, other backend: same simulated history, so
            // identical counts everywhere. Sum aggregations compare
            // against the same engine's eager baseline.
            const auto eager =
                impl == Impl::Banked
                    ? baseline
                    : runProbed(specs, 120, impl, Mode::Off);
            ASSERT_EQ(probed.size(), eager.size()) << tag;
            for (std::size_t i = 0; i < probed.size(); ++i) {
                EXPECT_EQ(probed[i].second.hits,
                          eager[i].second.hits)
                    << tag << " " << specs[i];
                EXPECT_EQ(probed[i].second.dist.total(),
                          eager[i].second.dist.total())
                    << tag << " " << specs[i];
                for (std::size_t b = 0;
                     b < probed[i].second.quant.buckets.size(); ++b)
                    EXPECT_EQ(probed[i].second.quant.buckets[b],
                              eager[i].second.quant.buckets[b])
                        << tag << " " << specs[i] << " bucket " << b;
            }
        }
    }
}

TEST(ProbeEngine, PredicatesFilter)
{
    const auto probes = runProbed(
        {
            "entry:Main.isPrime",
            "entry:Main.isPrime{depth>=100}",
            "entry:Main.isPrime{caller==Main.main}",
            "entry:Main.isPrime{caller==Main.isPrime}",
            "entry:Main.isPrime{callstr==Main.main/Main.isPrime}",
            "entry:Main.isPrime{tenant==gold}",
            "entry:Main.isPrime{tenant==silver}",
        },
        50, Impl::Banked, Mode::Off, /*tenant=*/"gold");
    ASSERT_EQ(probes.size(), 7u);
    const CountT all = probes[0].second.hits;
    EXPECT_EQ(all, 48u);
    EXPECT_EQ(probes[1].second.hits, 0u);  // depth >= 100
    EXPECT_EQ(probes[2].second.hits, all); // caller is main
    EXPECT_EQ(probes[3].second.hits, 0u);  // never self-called
    EXPECT_EQ(probes[4].second.hits, all); // main/isPrime suffix
    EXPECT_EQ(probes[5].second.hits, all); // tenant matches
    EXPECT_EQ(probes[6].second.hits, 0u);  // tenant differs
}

TEST(ProbeEngine, CaptureKeepsLastNDeterministically)
{
    const auto probes =
        runProbed({"entry:Main.isPrime -> capture(4)"}, 50);
    ASSERT_EQ(probes.size(), 1u);
    EXPECT_EQ(probes[0].second.hits, 48u);
    const auto &ring = probes[0].second.ring;
    ASSERT_EQ(ring.size(), 4u);
    // Last-N: sequence numbers are the final four match indices, in
    // order, with strictly advancing stamps.
    for (std::size_t i = 0; i < ring.size(); ++i) {
        EXPECT_EQ(ring[i].worker, 0u);
        EXPECT_EQ(ring[i].seq, 44u + i);
        if (i > 0) {
            EXPECT_GT(ring[i].step, ring[i - 1].step);
            EXPECT_GT(ring[i].cycles, ring[i - 1].cycles);
        }
    }
}

// ---------------------------------------------------------------------
// Invariance: probes never perturb simulated numbers
// ---------------------------------------------------------------------

TEST(ProbeEngine, DoesNotPerturbSimulatedStats)
{
    const auto statsJson = [](Rig &rig) {
        std::ostringstream os;
        obs::StatsExport exp;
        exp.driver = "test_probes";
        exp.impl = implName(rig.machine->config().impl);
        exp.stopReason = stopReasonName(StopReason::TopReturn);
        exp.machine = &rig.machine->stats();
        exp.memory = rig.mem.get();
        exp.heap = &rig.machine->heap().stats();
        exp.cache = rig.machine->dataCache();
        obs::writeStatsJson(os, exp);
        return os.str();
    };

    obs::ProbeRegistry registry;
    std::string err;
    ASSERT_TRUE(obs::attachProbeSpecs(
        registry,
        {"entry:Main.isPrime -> quantize(cycles)",
         "xfer:return -> sum(refs)", "alloc", "free"},
        err))
        << err;

    for (Impl impl : {Impl::Simple, Impl::Mesa, Impl::Ifu,
                      Impl::Banked}) {
        for (Mode mode : {Mode::Off, Mode::On, Mode::Threaded}) {
            const std::string tag = std::string(implName(impl)) + "/" +
                                    modeName(mode);
            Rig bare(kPrimes, configFor(impl, mode));
            const Word bareValue = runMain(bare, 200);
            const std::string bareJson = statsJson(bare);

            Rig probed(kPrimes, configFor(impl, mode));
            obs::ProbeEngine engine(registry.snapshot(), probed.image,
                                    "", 0);
            probed.machine->setProbeSink(&engine,
                                         engine.armedRanges());
            EXPECT_EQ(runMain(probed, 200), bareValue) << tag;
            EXPECT_EQ(statsJson(probed), bareJson) << tag;
        }
    }
}

// ---------------------------------------------------------------------
// Registry semantics and fpc-probes-v1 output
// ---------------------------------------------------------------------

TEST(ProbeRegistry, AttachIsIdempotentOnCanonicalText)
{
    obs::ProbeRegistry registry;
    const std::uint32_t a =
        registry.attach(parse("entry:M.p->count"));
    const std::uint32_t b =
        registry.attach(parse("entry:M.p  ->  count"));
    EXPECT_EQ(a, b);
    EXPECT_EQ(registry.attachedCount(), 1u);
    const std::uint32_t c = registry.attach(parse("exit:M.p"));
    EXPECT_NE(a, c);
    EXPECT_EQ(registry.attachedCount(), 2u);

    EXPECT_TRUE(registry.detach(a));
    EXPECT_FALSE(registry.detach(a));
    EXPECT_EQ(registry.attachedCount(), 1u);
    EXPECT_TRUE(registry.active());
    EXPECT_TRUE(registry.detach(c));
    EXPECT_FALSE(registry.active());
}

TEST(ProbeRegistry, FoldSkipsProbesDetachedSinceSnapshot)
{
    obs::ProbeRegistry registry;
    const std::uint32_t gone =
        registry.attach(parse("entry:M.gone"));
    const std::uint32_t kept =
        registry.attach(parse("entry:M.kept"));
    const obs::ProbeRegistry::Snapshot snap = registry.snapshot();

    obs::ProbeBuffers buffers;
    buffers.aggs.resize(2);
    buffers.aggs[0].hits = 7;
    buffers.aggs[1].hits = 9;

    // The engine's snapshot outlives a detach; its buffers for the
    // detached probe are dropped, the survivor's folded.
    ASSERT_TRUE(registry.detach(gone));
    registry.fold(snap, buffers);
    registry.fold(snap, buffers);

    const auto read = registry.read();
    ASSERT_EQ(read.size(), 1u);
    EXPECT_EQ(read[0].first.id, kept);
    EXPECT_EQ(read[0].second.hits, 18u);
}

TEST(ProbeRegistry, WriteJsonIsDeterministic)
{
    const auto document = [] {
        obs::ProbeRegistry registry;
        std::string err;
        EXPECT_TRUE(obs::attachProbeSpecs(
            registry,
            {"entry:Main.isPrime -> quantize(cycles)",
             "exit:Main.* -> sum(refs)",
             "entry:Main.isPrime -> capture(3)"},
            err))
            << err;
        Rig rig(kPrimes, configFor(Impl::Banked, Mode::Threaded));
        obs::ProbeEngine engine(registry.snapshot(), rig.image, "",
                                0);
        rig.machine->setProbeSink(&engine, engine.armedRanges());
        runMain(rig, 80);
        rig.machine->setProbeSink(nullptr);
        engine.finishInto(registry);
        std::ostringstream os;
        registry.writeJson(os, "test_probes");
        return os.str();
    };

    const std::string first = document();
    EXPECT_EQ(first, document());
    EXPECT_NE(first.find("\"schema\": \"fpc-probes-v1\""),
              std::string::npos);
    EXPECT_NE(first.find("\"quantize\""), std::string::npos);
    EXPECT_NE(first.find("\"captures\""), std::string::npos);
}

TEST(ProbeRegistry, GaugesMirrorHitsAndDistributions)
{
    obs::ProbeRegistry registry;
    std::string err;
    ASSERT_TRUE(obs::attachProbeSpecs(
        registry, {"entry:Main.isPrime -> sum(cycles)"}, err))
        << err;
    Rig rig(kPrimes);
    obs::ProbeEngine engine(registry.snapshot(), rig.image, "", 0);
    rig.machine->setProbeSink(&engine, engine.armedRanges());
    runMain(rig, 50);
    rig.machine->setProbeSink(nullptr);
    engine.finishInto(registry);

    std::vector<std::pair<std::string, double>> gauges;
    registry.gauges(gauges);
    bool sawHits = false, sawSum = false;
    for (const auto &[name, value] : gauges) {
        if (name == "probe_0_hits") {
            sawHits = true;
            EXPECT_EQ(value, 48.0);
        }
        if (name == "probe_0_sum") {
            sawSum = true;
            EXPECT_GT(value, 0.0);
        }
    }
    EXPECT_TRUE(sawHits);
    EXPECT_TRUE(sawSum);
}

// ---------------------------------------------------------------------
// BoundaryFanout detach (satellite)
// ---------------------------------------------------------------------

namespace
{

struct CountingBsampler : BoundarySampler
{
    std::size_t fires = 0;
    void
    onBoundarySample(const Machine &) override
    {
        ++fires;
    }
};

} // namespace

TEST(BoundaryFanout, RemoveDetachesOneTargetAndKeepsTheRest)
{
    obs::BoundaryFanout fan;
    CountingBsampler fine;
    CountingBsampler coarse;
    fan.add(&fine, 500);
    fan.add(&coarse, 5000);
    ASSERT_EQ(fan.size(), 2u);

    fan.remove(&coarse);
    EXPECT_EQ(fan.size(), 1u);
    EXPECT_FALSE(fan.empty());
    EXPECT_EQ(fan.machineInterval(), 500);

    // Removing an unknown target is a no-op.
    fan.remove(&coarse);
    EXPECT_EQ(fan.size(), 1u);

    Rig rig(kPrimes, configFor(Impl::Banked, Mode::Threaded));
    rig.machine->setBoundarySampler(&fan, fan.machineInterval());
    runMain(rig, 300);
    EXPECT_GT(fine.fires, 20u);
    EXPECT_EQ(coarse.fires, 0u); // detached targets never fire

    fan.remove(&fine);
    EXPECT_TRUE(fan.empty());
    EXPECT_EQ(fan.machineInterval(), 0);
}

// ---------------------------------------------------------------------
// SampledProfile::merge edge cases (satellite)
// ---------------------------------------------------------------------

TEST(SampledProfile, MergeDisjointProcedureSets)
{
    obs::SampledProfile a;
    a.samples["Main.f"] = 12;
    a.total = 12;
    a.recorded = 12;

    obs::SampledProfile b;
    b.samples["Main.g"] = 4;
    b.samples["Main.h"] = 4;
    b.total = 8;
    b.recorded = 8;

    a.merge(b);
    EXPECT_EQ(a.samples.size(), 3u);
    EXPECT_EQ(a.total, 20);
    EXPECT_EQ(a.samples.at("Main.f"), 12);
    EXPECT_EQ(a.samples.at("Main.g"), 4);
}

TEST(SampledProfile, MergeEmptyOperandIsIdentity)
{
    obs::SampledProfile a;
    a.samples["Main.f"] = 5;
    a.total = 5;
    a.recorded = 7;
    a.dropped = 2;

    a.merge(obs::SampledProfile{});
    EXPECT_EQ(a.samples.size(), 1u);
    EXPECT_EQ(a.total, 5);
    EXPECT_EQ(a.recorded, 7);
    EXPECT_EQ(a.dropped, 2);

    // And merging into an empty profile copies the operand.
    obs::SampledProfile empty;
    empty.merge(a);
    EXPECT_EQ(empty.total, 5);
    EXPECT_EQ(empty.samples.at("Main.f"), 5);
}

TEST(SampledProfile, MergeThenShareUsesCombinedTotal)
{
    obs::SampledProfile a;
    a.samples["Main.f"] = 6;
    a.total = 6;
    obs::SampledProfile b;
    b.samples["Main.f"] = 2;
    b.samples["Main.g"] = 8;
    b.total = 10;

    a.merge(b);
    EXPECT_DOUBLE_EQ(a.share("Main.f"), 0.5);
    EXPECT_DOUBLE_EQ(a.share("Main.g"), 0.5);
    EXPECT_DOUBLE_EQ(a.share("Main.h"), 0.0);
}
