/**
 * @file
 * Tests for the §5.3 frame heap: the exact reference counts, size
 * classes, retained frames, the software-allocator trap, LIFO-free
 * operation, and exhaustion behaviour.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/logging.hh"
#include "common/random.hh"
#include "frames/frame_heap.hh"
#include "xfer/context.hh"

namespace fpc
{
namespace
{

struct HeapRig
{
    SystemLayout layout;
    Memory mem{SystemLayout().memWords};
    FrameHeap heap{mem, layout, SizeClasses::standard()};
};

TEST(SizeClasses, StandardShapeMatchesPaper)
{
    const SizeClasses classes = SizeClasses::standard();
    EXPECT_LT(classes.numClasses(), 20u); // "less than 20 steps"
    EXPECT_EQ(classes.classWords(0), 8u); // "minimum of about 16 bytes"
    for (unsigned i = 1; i < classes.numClasses(); ++i) {
        const double step = static_cast<double>(classes.classWords(i)) /
                            classes.classWords(i - 1);
        EXPECT_GT(step, 1.0);
        EXPECT_LT(step, 1.35) << "steps of about 20%";
    }
}

TEST(SizeClasses, FsiForIsMinimal)
{
    const SizeClasses classes = SizeClasses::standard();
    for (unsigned words = 1; words <= classes.maxWords(); ++words) {
        const unsigned fsi = classes.fsiFor(words);
        EXPECT_GE(classes.classWords(fsi), words);
        if (fsi > 0)
            EXPECT_LT(classes.classWords(fsi - 1), words);
    }
    EXPECT_FALSE(classes.fits(classes.maxWords() + 1));
    EXPECT_THROW(classes.fsiFor(classes.maxWords() + 1), PanicError);
}

TEST(SizeClasses, BlocksAreQuadAlignedWithHeader)
{
    const SizeClasses classes = SizeClasses::standard();
    for (unsigned fsi = 0; fsi < classes.numClasses(); ++fsi) {
        EXPECT_EQ(classes.blockWords(fsi) % 4, 0u);
        EXPECT_GE(classes.blockWords(fsi), classes.classWords(fsi) + 1);
    }
}

TEST(SizeClasses, BadShapesPanic)
{
    EXPECT_THROW(SizeClasses(0, 1.2, 10), PanicError);
    EXPECT_THROW(SizeClasses(8, 1.0, 10), PanicError);
    EXPECT_THROW(SizeClasses(8, 1.2, 0), PanicError);
    EXPECT_THROW(SizeClasses(8, 1.2, 33), PanicError);
}

TEST(FrameHeap, AllocIsExactlyThreeRefsSteadyState)
{
    HeapRig rig;
    // Prime the class-0 list (first alloc traps to the software
    // allocator).
    rig.heap.free(rig.heap.alloc(0));
    rig.heap.resetStats();

    const Addr lf = rig.heap.alloc(0);
    EXPECT_EQ(rig.heap.stats().refsAlloc, 3u);
    EXPECT_NE(lf, nilAddr);

    rig.heap.free(lf);
    EXPECT_EQ(rig.heap.stats().refsFree, 4u);
}

TEST(FrameHeap, EmptyListTrapsToSoftwareAllocator)
{
    HeapRig rig;
    EXPECT_EQ(rig.heap.stats().softwareTraps, 0u);
    rig.heap.alloc(3);
    EXPECT_EQ(rig.heap.stats().softwareTraps, 1u);
    // The trap replenished several frames: next allocs are fast.
    rig.heap.resetStats();
    rig.heap.alloc(3);
    EXPECT_EQ(rig.heap.stats().softwareTraps, 0u);
    EXPECT_EQ(rig.heap.stats().refsAlloc, 3u);
}

TEST(FrameHeap, FramesAreQuadAlignedAndDisjoint)
{
    HeapRig rig;
    std::set<Addr> seen;
    std::vector<Addr> live;
    for (int i = 0; i < 100; ++i) {
        const Addr lf = rig.heap.alloc(i % 4);
        EXPECT_EQ((lf - 1 - rig.layout.frameBase) % 4, 0u);
        EXPECT_TRUE(seen.insert(lf).second) << "frame reissued live";
        live.push_back(lf);
    }
    for (const Addr lf : live)
        rig.heap.free(lf);
}

TEST(FrameHeap, FreeReusesMostRecentlyFreed)
{
    HeapRig rig;
    const Addr a = rig.heap.alloc(2);
    rig.heap.free(a);
    const Addr b = rig.heap.alloc(2);
    EXPECT_EQ(a, b); // LIFO free list per class
    rig.heap.free(b);
}

TEST(FrameHeap, NoLifoDisciplineRequired)
{
    HeapRig rig;
    Rng rng(4);
    std::vector<Addr> live;
    for (int i = 0; i < 5000; ++i) {
        if (live.empty() || rng.chance(0.55)) {
            live.push_back(rig.heap.allocWords(
                4 + rng.uniform(0, 60)));
        } else {
            const std::size_t pick = rng.uniform(0, live.size() - 1);
            rig.heap.free(live[pick]);
            live[pick] = live.back();
            live.pop_back();
        }
    }
    EXPECT_EQ(rig.heap.stats().allocs,
              rig.heap.stats().frees + live.size());
}

TEST(FrameHeap, HeaderHoldsFsi)
{
    HeapRig rig;
    const Addr lf = rig.heap.alloc(5);
    EXPECT_EQ(rig.heap.frameFsi(lf), 5u);
    EXPECT_EQ(rig.heap.frameWords(lf),
              rig.heap.classes().classWords(5));
    EXPECT_EQ(rig.mem.peek(lf - 1) & frame::fsiMask, 5u);
    rig.heap.free(lf);
}

TEST(FrameHeap, ReleaseHonoursRetainedFlag)
{
    HeapRig rig;
    const Addr lf = rig.heap.alloc(1);
    rig.heap.setRetained(lf, true);
    EXPECT_TRUE(rig.heap.isRetained(lf));

    EXPECT_FALSE(rig.heap.release(lf));
    EXPECT_EQ(rig.heap.stats().retainedSkips, 1u);
    EXPECT_EQ(rig.heap.stats().frees, 0u);

    // Clearing the flag makes it freeable; a release is 4 refs.
    rig.heap.setRetained(lf, false);
    rig.heap.resetStats();
    EXPECT_TRUE(rig.heap.release(lf));
    EXPECT_EQ(rig.heap.stats().refsFree, 4u);
}

TEST(FrameHeap, FlaggedBitIndependentOfRetained)
{
    HeapRig rig;
    const Addr lf = rig.heap.alloc(1);
    rig.heap.setFlagged(lf, true);
    EXPECT_TRUE(rig.heap.isFlagged(lf));
    EXPECT_FALSE(rig.heap.isRetained(lf));
    rig.heap.setRetained(lf, true);
    rig.heap.setFlagged(lf, false);
    EXPECT_TRUE(rig.heap.isRetained(lf));
    EXPECT_FALSE(rig.heap.isFlagged(lf));
}

TEST(FrameHeap, FragmentationTracksRequestVsGrant)
{
    HeapRig rig;
    // Request exactly class sizes: zero fragmentation.
    for (int i = 0; i < 10; ++i) {
        const Addr lf =
            rig.heap.allocWords(rig.heap.classes().classWords(2));
        rig.heap.free(lf);
    }
    EXPECT_DOUBLE_EQ(rig.heap.stats().fragmentation(), 0.0);

    // Request one word above a class boundary: worst-case waste.
    rig.heap.resetStats();
    const unsigned req = rig.heap.classes().classWords(2) + 1;
    const Addr lf = rig.heap.allocWords(req);
    const double frag = rig.heap.stats().fragmentation();
    EXPECT_GT(frag, 0.0);
    EXPECT_LT(frag, 0.25); // bounded by the ~20% step
    rig.heap.free(lf);
}

TEST(FrameHeap, OversizeRequestIsFatal)
{
    setQuiet(true);
    HeapRig rig;
    EXPECT_THROW(
        rig.heap.allocWords(rig.heap.classes().maxWords() + 1),
        FatalError);
    setQuiet(false);
}

TEST(FrameHeap, RegionExhaustionIsFatal)
{
    setQuiet(true);
    HeapRig rig;
    // Retain everything so nothing recycles: the carve pointer must
    // eventually hit the region end.
    const unsigned fsi = rig.heap.classes().numClasses() - 1;
    EXPECT_THROW(
        {
            for (;;)
                rig.heap.alloc(fsi);
        },
        FatalError);
    setQuiet(false);
}

TEST(FrameHeap, FreeListsLiveInSimulatedMemory)
{
    HeapRig rig;
    const Addr lf = rig.heap.alloc(0);
    rig.heap.free(lf);
    // AV slot 0 now points at the freed frame, as a context word.
    const Word head = rig.mem.peek(rig.layout.avAddr + 0);
    EXPECT_EQ(unpackContext(head, rig.layout).framePtr, lf);
}

/** Parameterized sweep: every class allocates/frees cleanly. */
class EveryClass : public testing::TestWithParam<unsigned>
{};

TEST_P(EveryClass, AllocFreeRoundTrip)
{
    HeapRig rig;
    const unsigned fsi = GetParam();
    const Addr a = rig.heap.alloc(fsi);
    const Addr b = rig.heap.alloc(fsi);
    EXPECT_NE(a, b);
    EXPECT_EQ(rig.heap.frameFsi(a), fsi);
    rig.heap.free(a);
    rig.heap.free(b);
    EXPECT_EQ(rig.heap.alloc(fsi), b); // most recent first
    rig.heap.free(b);
}

INSTANTIATE_TEST_SUITE_P(AllClasses, EveryClass,
                         testing::Range(0u, 19u));

} // namespace
} // namespace fpc
