/**
 * @file
 * Cross-cutting machine tests: external calls through biased GFT
 * entries (modules with more than 32 entry points), resumable traps
 * (the exception discipline built on XFER), mutual recursion across
 * modules, latency-model sensitivity, and statistics plumbing.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "asm/builder.hh"
#include "common/logging.hh"
#include "common/strfmt.hh"
#include "lang/codegen.hh"
#include "machine/machine.hh"
#include "program/loader.hh"

namespace fpc
{
namespace
{

TEST(BiasCalls, ExternalCallToHighEntryPoint)
{
    // A module with 40 procedures: p35 is reachable only through the
    // second GFT entry (bias 1). Call it externally end-to-end.
    ModuleBuilder big("Big");
    for (unsigned p = 0; p < 40; ++p) {
        auto &proc = big.proc(strfmt("p{}", p), 1, 1);
        proc.loadLocal(0).loadImm(static_cast<Word>(p % 7))
            .op(isa::Op::ADD)
            .ret();
    }
    ModuleBuilder client("Client");
    const unsigned hi = client.externRef("Big", "p35");
    const unsigned lo = client.externRef("Big", "p3");
    auto &main = client.proc("main", 1, 1);
    main.loadLocal(0).callExtern(hi); // + 35%7 = 0
    main.callExtern(lo);              // + 3
    main.ret();

    const SystemLayout layout;
    Memory mem(layout.memWords);
    Loader loader{layout, SizeClasses::standard()};
    loader.add(big.build());
    loader.add(client.build());
    const LoadedImage image = loader.load(mem, LinkPlan{});

    for (const Impl impl : {Impl::Mesa, Impl::Banked}) {
        MachineConfig config;
        config.impl = impl;
        Machine machine(mem, image, config);
        machine.start("Client", "main", std::array<Word, 1>{Word{10}});
        ASSERT_EQ(machine.run().reason, StopReason::TopReturn)
            << implName(impl);
        EXPECT_EQ(machine.popValue(), 10 + 0 + 3) << implName(impl);
    }
}

TEST(ResumableTraps, HandlerTransfersBackToFaultPoint)
{
    // The §3 model treats a trap as just another XFER; a handler can
    // resume the faulting context through returnContext. BRK acts as
    // a "system call": out 1; BRK; out 2; BRK; out 3.
    ModuleBuilder b("M");
    auto &main = b.proc("main", 0, 1);
    main.loadImm(1).op(isa::Op::OUT);
    main.op(isa::Op::BRK);
    main.loadImm(2).op(isa::Op::OUT);
    main.op(isa::Op::BRK);
    main.loadImm(3).op(isa::Op::OUT);
    main.loadImm(42).ret();

    // A reusable handler: forever { drop the code; resume sender }.
    auto &handler = b.proc("handler", 0, 1);
    auto loop = handler.newLabel();
    handler.label(loop);
    handler.op(isa::Op::DROP); // the trap code
    handler.op(isa::Op::LRC);  // who trapped?
    handler.op(isa::Op::XF);   // resume them
    handler.jump(loop);

    const SystemLayout layout;
    Memory mem(layout.memWords);
    Loader loader{layout, SizeClasses::standard()};
    loader.add(b.build());
    const LoadedImage image = loader.load(mem, LinkPlan{});

    for (const Impl impl :
         {Impl::Simple, Impl::Mesa, Impl::Ifu, Impl::Banked}) {
        MachineConfig config;
        config.impl = impl;
        Machine machine(mem, image, config);
        machine.setTrapContext(machine.spawn("M", "handler"));
        machine.start("M", "main");
        const RunResult result = machine.run();
        ASSERT_EQ(result.reason, StopReason::TopReturn)
            << implName(impl) << ": " << result.message;
        EXPECT_EQ(machine.popValue(), 42);
        EXPECT_EQ(machine.output(), (std::vector<Word>{1, 2, 3}))
            << implName(impl);
        EXPECT_EQ(machine.stats().xferCount[static_cast<unsigned>(
                      XferKind::Trap)],
                  2u);
    }
}

TEST(MutualRecursion, AcrossModules)
{
    const auto modules = lang::compile(R"(
        module Even;
        proc isEven(n) {
            if (n == 0) { return 1; }
            return Odd.isOdd(n - 1);
        }
        module Odd;
        proc isOdd(n) {
            if (n == 0) { return 0; }
            return Even.isEven(n - 1);
        }
        module Main;
        proc main(n) {
            return Even.isEven(n) * 10 + Odd.isOdd(n);
        }
    )");
    const SystemLayout layout;
    Memory mem(layout.memWords);
    Loader loader{layout, SizeClasses::standard()};
    for (const auto &m : modules)
        loader.add(m);
    const LoadedImage image = loader.load(mem, LinkPlan{});
    Machine machine(mem, image, MachineConfig{});
    machine.start("Main", "main", std::array<Word, 1>{Word{101}});
    ASSERT_EQ(machine.run().reason, StopReason::TopReturn);
    EXPECT_EQ(machine.popValue(), 0 * 10 + 1);
}

TEST(LatencyModel, StorageLatencyHurtsI2MoreThanI4)
{
    const auto modules = lang::compile(R"(
        module M;
        proc leaf(x) { return x + 1; }
        proc main(n) {
            var i, acc;
            i = 0;
            while (i < n) { acc = leaf(acc); i = i + 1; }
            return acc;
        }
    )");

    auto cycles = [&](Impl impl, unsigned mem_cycles) {
        const SystemLayout layout;
        Memory mem(layout.memWords);
        Loader loader{layout, SizeClasses::standard()};
        for (const auto &m : modules)
            loader.add(m);
        LinkPlan plan;
        plan.lowering = impl == Impl::Banked ? CallLowering::Direct
                                             : CallLowering::Mesa;
        const LoadedImage image = loader.load(mem, plan);
        MachineConfig config;
        config.impl = impl;
        config.latency.memCycles = mem_cycles;
        Machine machine(mem, image, config);
        machine.start("M", "main", std::array<Word, 1>{Word{200}});
        EXPECT_EQ(machine.run().reason, StopReason::TopReturn);
        return machine.cycles();
    };

    const double i2_ratio =
        static_cast<double>(cycles(Impl::Mesa, 8)) /
        cycles(Impl::Mesa, 4);
    const double i4_ratio =
        static_cast<double>(cycles(Impl::Banked, 8)) /
        cycles(Impl::Banked, 4);
    // I2 keeps everything in storage: doubling storage latency nearly
    // doubles its time. I4 barely notices.
    EXPECT_GT(i2_ratio, 1.6);
    EXPECT_LT(i4_ratio, 1.15);
}

TEST(Stats, OpcodeAndLengthHistograms)
{
    const auto modules =
        lang::compile("module M; proc main() { var i; i = 0; "
                      "while (i < 10) { i = i + 1; } return i; }");
    const SystemLayout layout;
    Memory mem(layout.memWords);
    Loader loader{layout, SizeClasses::standard()};
    for (const auto &m : modules)
        loader.add(m);
    const LoadedImage image = loader.load(mem, LinkPlan{});
    Machine machine(mem, image, MachineConfig{});
    machine.start("M", "main");
    machine.run();

    const MachineStats &s = machine.stats();
    CountT by_len = 0;
    for (unsigned l = 1; l < s.instLenCount.size(); ++l)
        by_len += s.instLenCount[l];
    EXPECT_EQ(by_len, s.steps);

    CountT by_op = 0;
    for (unsigned op = 0; op < 256; ++op)
        by_op += s.opCount[op];
    EXPECT_EQ(by_op, s.steps);
    // The loop increment ran 10 times: ADD count >= 10.
    EXPECT_GE(s.opCount[static_cast<unsigned>(isa::Op::ADD)], 10u);
}

TEST(Stats, DumpsAreWellFormed)
{
    const SystemLayout layout;
    Memory mem(layout.memWords);
    mem.read(0, AccessKind::Data);
    mem.write(1, 2, AccessKind::Heap);
    std::ostringstream os;
    mem.dumpStats(os);
    EXPECT_NE(os.str().find("data: reads=1"), std::string::npos);
    EXPECT_NE(os.str().find("heap: reads=0 writes=1"),
              std::string::npos);

    FrameHeap heap(mem, layout, SizeClasses::standard());
    heap.free(heap.alloc(0));
    std::ostringstream hs;
    heap.dumpStats(hs);
    EXPECT_NE(hs.str().find("frameHeap"), std::string::npos);
}

TEST(Restart, MachineIsReusableAfterCompletion)
{
    const auto modules = lang::compile(
        "module M; var g; proc main(n) { g = g + n; return g; }");
    const SystemLayout layout;
    Memory mem(layout.memWords);
    Loader loader{layout, SizeClasses::standard()};
    for (const auto &m : modules)
        loader.add(m);
    const LoadedImage image = loader.load(mem, LinkPlan{});
    Machine machine(mem, image, MachineConfig{});

    machine.start("M", "main", std::array<Word, 1>{Word{5}});
    ASSERT_EQ(machine.run().reason, StopReason::TopReturn);
    EXPECT_EQ(machine.popValue(), 5);

    machine.start("M", "main", std::array<Word, 1>{Word{7}});
    ASSERT_EQ(machine.run().reason, StopReason::TopReturn);
    EXPECT_EQ(machine.popValue(), 12); // globals persist across runs

    machine.reset(); // full processor reset; memory persists
    machine.start("M", "main", std::array<Word, 1>{Word{1}});
    ASSERT_EQ(machine.run().reason, StopReason::TopReturn);
    EXPECT_EQ(machine.popValue(), 13);
}

} // namespace
} // namespace fpc
