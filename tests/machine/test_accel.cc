/**
 * @file
 * Host-acceleration tests (docs/PERFORMANCE.md): the invariance
 * contract — every simulated number is bit-identical with
 * acceleration on or off — plus the invalidation hooks (code patches,
 * relocation) and the steady-state hit rates the C9 benchmark relies
 * on.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "asm/builder.hh"
#include "common/logging.hh"
#include "machine/machine.hh"
#include "obs/json.hh"
#include "obs/trace.hh"
#include "program/loader.hh"
#include "program/relocate.hh"

namespace fpc
{
namespace
{

/** The three host execution backends under test. */
enum class Mode
{
    Off,      ///< eager per-step loop
    On,       ///< burst loop (icache + link caches)
    Threaded, ///< computed-goto superblocks
};

const Mode allModes[] = {Mode::Off, Mode::On, Mode::Threaded};

const char *
modeName(Mode mode)
{
    switch (mode) {
      case Mode::Off: return "off";
      case Mode::On: return "on";
      case Mode::Threaded: return "threaded";
      default: return "?";
    }
}

void
applyMode(MachineConfig &config, Mode mode)
{
    config.accel.enabled = mode != Mode::Off;
    config.accel.threaded = mode == Mode::Threaded;
}

/** A call-heavy program: main loops n times, each iteration calling
 *  bump(acc) = acc + 77 through a local call. */
Module
callLoopModule()
{
    ModuleBuilder b("M");
    auto &bump = b.proc("bump", 1, 1);
    bump.loadLocal(0).loadImm(77).op(isa::Op::ADD).ret();

    auto &main = b.proc("main", 1, 2);
    auto loop = main.newLabel();
    auto done = main.newLabel();
    main.loadImm(0).storeLocal(1);
    main.label(loop);
    main.loadLocal(0).jumpZero(done);
    main.loadLocal(1).callLocal("bump").storeLocal(1);
    main.loadLocal(0).loadImm(1).op(isa::Op::SUB).storeLocal(0);
    main.jump(loop);
    main.label(done);
    main.loadLocal(1).ret();
    return b.build();
}

/** A branch-heavy variant: each iteration compares the counter
 *  against a threshold and only calls bump below it, so compare +
 *  conditional-branch pairs (the threaded backend's fused CMPBR
 *  superinstruction) run hot in both directions, and the taken side
 *  leads straight into a call — on the banked engine the stack bank
 *  holding the compare's transient boolean gets renamed into the
 *  callee's frame bank, which is exactly the path where a fused
 *  compare that skipped the boolean's slot write would leak a wrong
 *  dirty word into a later flush. */
Module
compareLoopModule()
{
    ModuleBuilder b("M");
    auto &bump = b.proc("bump", 1, 1);
    bump.loadLocal(0).loadImm(77).op(isa::Op::ADD).ret();

    auto &main = b.proc("main", 1, 2);
    auto loop = main.newLabel();
    auto skip = main.newLabel();
    auto next = main.newLabel();
    auto done = main.newLabel();
    main.loadImm(0).storeLocal(1);
    main.label(loop);
    main.loadLocal(0).jumpZero(done);
    main.loadLocal(0).loadImm(100).op(isa::Op::LT).jumpZero(skip);
    main.loadLocal(1).callLocal("bump").storeLocal(1);
    main.jump(next);
    main.label(skip);
    main.label(next);
    main.loadLocal(0).loadImm(1).op(isa::Op::SUB).storeLocal(0);
    main.jump(loop);
    main.label(done);
    main.loadLocal(1).ret();
    return b.build();
}

struct EngineCombo
{
    Impl impl;
    CallLowering lowering;
};

const EngineCombo combos[] = {
    {Impl::Simple, CallLowering::Fat},
    {Impl::Mesa, CallLowering::Mesa},
    {Impl::Ifu, CallLowering::Direct},
    {Impl::Banked, CallLowering::Direct},
};

struct RunOut
{
    Word value = 0;
    std::string statsJson;
    std::string traceJson;
    StopReason reason = StopReason::Running;
};

/** One complete run on a fresh memory/image; exports the full
 *  simulated-stats document (and optionally an XFER trace, which
 *  forces the eager per-step loop even with acceleration on). */
RunOut
runOnce(const EngineCombo &combo, Mode mode, Word n, bool with_trace,
        Module (*module)() = callLoopModule)
{
    const SystemLayout layout;
    Memory mem(layout.memWords);
    Loader loader{layout, SizeClasses::standard()};
    loader.add(module());
    LinkPlan plan;
    plan.lowering = combo.lowering;
    const LoadedImage image = loader.load(mem, plan);

    MachineConfig config;
    config.impl = combo.impl;
    applyMode(config, mode);
    Machine machine(mem, image, config);

    obs::Tracer tracer;
    if (with_trace)
        machine.setObserver(&tracer);

    machine.start("M", "main", std::array<Word, 1>{n});
    RunOut out;
    out.reason = machine.run().reason;
    if (out.reason == StopReason::TopReturn)
        out.value = machine.popValue();

    std::ostringstream stats;
    obs::StatsExport exp;
    exp.driver = "test_accel";
    exp.impl = implName(config.impl);
    exp.stopReason = stopReasonName(out.reason);
    exp.machine = &machine.stats();
    exp.memory = &mem;
    exp.heap = &machine.heap().stats();
    exp.cache = machine.dataCache();
    obs::writeStatsJson(stats, exp);
    out.statsJson = stats.str();

    if (with_trace) {
        std::ostringstream trace;
        obs::writeChromeTrace(trace, tracer);
        out.traceJson = trace.str();
    }
    return out;
}

// ---------------------------------------------------------------------
// The invariance contract
// ---------------------------------------------------------------------

TEST(AccelDeterminism, StatsJsonByteIdenticalOnEveryEngine)
{
    for (const EngineCombo &combo : combos) {
        const RunOut off = runOnce(combo, Mode::Off, 200, false);
        ASSERT_EQ(off.reason, StopReason::TopReturn)
            << implName(combo.impl);
        for (Mode mode : {Mode::On, Mode::Threaded}) {
            const RunOut out = runOnce(combo, mode, 200, false);
            EXPECT_EQ(off.value, out.value)
                << implName(combo.impl) << " " << modeName(mode);
            EXPECT_EQ(off.statsJson, out.statsJson)
                << implName(combo.impl) << " " << modeName(mode);
        }
    }
}

TEST(AccelDeterminism, CompareBranchStatsIdenticalOnEveryEngine)
{
    // The compare-loop workload keeps the threaded backend's fused
    // compare+branch and load-pair superinstructions hot, with the
    // taken side calling through an XFER (the bank-rename path that
    // makes the compare's transient boolean slot write observable on
    // the banked engine).
    for (const EngineCombo &combo : combos) {
        const RunOut off =
            runOnce(combo, Mode::Off, 200, false, compareLoopModule);
        ASSERT_EQ(off.reason, StopReason::TopReturn)
            << implName(combo.impl);
        EXPECT_EQ(off.value, static_cast<Word>(99 * 77))
            << implName(combo.impl);
        for (Mode mode : {Mode::On, Mode::Threaded}) {
            const RunOut out =
                runOnce(combo, mode, 200, false, compareLoopModule);
            EXPECT_EQ(off.value, out.value)
                << implName(combo.impl) << " " << modeName(mode);
            EXPECT_EQ(off.statsJson, out.statsJson)
                << implName(combo.impl) << " " << modeName(mode);
        }
    }
}

TEST(AccelDeterminism, TraceByteIdenticalWithObserverAttached)
{
    // An attached observer routes the accelerated machine through the
    // eager per-step loop; the XFER records' absolute cycle/step
    // stamps must come out identical.
    for (const EngineCombo &combo : combos) {
        const RunOut off = runOnce(combo, Mode::Off, 100, true);
        for (Mode mode : {Mode::On, Mode::Threaded}) {
            const RunOut out = runOnce(combo, mode, 100, true);
            EXPECT_EQ(off.traceJson, out.traceJson)
                << implName(combo.impl) << " " << modeName(mode);
            EXPECT_EQ(off.statsJson, out.statsJson)
                << implName(combo.impl) << " " << modeName(mode);
        }
    }
}

TEST(AccelDeterminism, ObserverForcesEagerUnderThreaded)
{
    // With an observer attached the threaded machine must not run a
    // single superblock: the eager loop is the only path that can
    // deliver per-XFER records with exact absolute stamps.
    const SystemLayout layout;
    Memory mem(layout.memWords);
    Loader loader{layout, SizeClasses::standard()};
    loader.add(callLoopModule());
    const LoadedImage image = loader.load(mem, LinkPlan{});

    MachineConfig config;
    applyMode(config, Mode::Threaded);
    Machine machine(mem, image, config);
    obs::Tracer tracer;
    machine.setObserver(&tracer);
    machine.start("M", "main", std::array<Word, 1>{Word{100}});
    ASSERT_EQ(machine.run().reason, StopReason::TopReturn);
    EXPECT_EQ(machine.accelStats().sblockExecs, 0u);
    EXPECT_EQ(machine.accelStats().sblockBuilds, 0u);
}

/** A sampler that counts its sample points. */
struct CountingSampler : CycleSampler
{
    unsigned samples = 0;
    void onSample(const Machine &) override { ++samples; }
};

TEST(AccelDeterminism, SamplerForcesEagerUnderThreaded)
{
    // Same for a cycle sampler: sample points are defined at step
    // granularity, so the threaded machine falls back to the eager
    // loop and the sample count matches the unaccelerated run.
    unsigned counts[2] = {0, 0};
    std::string json[2];
    const Mode modes[2] = {Mode::Off, Mode::Threaded};
    for (int i = 0; i < 2; ++i) {
        const SystemLayout layout;
        Memory mem(layout.memWords);
        Loader loader{layout, SizeClasses::standard()};
        loader.add(callLoopModule());
        const LoadedImage image = loader.load(mem, LinkPlan{});

        MachineConfig config;
        applyMode(config, modes[i]);
        Machine machine(mem, image, config);
        CountingSampler sampler;
        machine.setSampler(&sampler, 1000);
        machine.start("M", "main", std::array<Word, 1>{Word{100}});
        ASSERT_EQ(machine.run().reason, StopReason::TopReturn);
        counts[i] = sampler.samples;
        if (modes[i] == Mode::Threaded) {
            EXPECT_EQ(machine.accelStats().sblockExecs, 0u);
        }
        std::ostringstream os;
        obs::StatsExport exp;
        exp.driver = "test_accel";
        exp.impl = implName(config.impl);
        exp.stopReason = stopReasonName(StopReason::TopReturn);
        exp.machine = &machine.stats();
        exp.memory = &mem;
        exp.heap = &machine.heap().stats();
        obs::writeStatsJson(os, exp);
        json[i] = os.str();
    }
    EXPECT_GT(counts[0], 0u);
    EXPECT_EQ(counts[0], counts[1]);
    EXPECT_EQ(json[0], json[1]);
}

TEST(AccelDeterminism, ThreadedFastPathActuallyEngages)
{
    // Sanity check on the force-eager tests above: with no observer
    // attached the same workload does run through superblocks, so a
    // zero sblockExecs there means "fell back", not "never built".
    if (!Machine::threadedSupported())
        GTEST_SKIP() << "threaded backend not compiled in";
    const SystemLayout layout;
    Memory mem(layout.memWords);
    Loader loader{layout, SizeClasses::standard()};
    loader.add(callLoopModule());
    const LoadedImage image = loader.load(mem, LinkPlan{});

    MachineConfig config;
    applyMode(config, Mode::Threaded);
    Machine machine(mem, image, config);
    EXPECT_TRUE(machine.threadedActive());
    machine.start("M", "main", std::array<Word, 1>{Word{100}});
    ASSERT_EQ(machine.run().reason, StopReason::TopReturn);
    EXPECT_GT(machine.accelStats().sblockBuilds, 0u);
    EXPECT_GT(machine.accelStats().sblockExecs, 0u);
}

// ---------------------------------------------------------------------
// Invalidation
// ---------------------------------------------------------------------

/** Drive a machine mid-run, patch bump's immediate (77 -> 5) through
 *  pokeByte, and finish. Returns the final value. */
Word
patchMidRun(Mode mode, std::string *stats_json)
{
    const SystemLayout layout;
    Memory mem(layout.memWords);
    Loader loader{layout, SizeClasses::standard()};
    loader.add(callLoopModule());
    const LoadedImage image = loader.load(mem, LinkPlan{});

    MachineConfig config;
    applyMode(config, mode);
    Machine machine(mem, image, config);
    machine.start("M", "main", std::array<Word, 1>{Word{100}});

    // Far enough that bump's decode is cached, mid-loop.
    for (int i = 0; i < 120; ++i)
        machine.step();

    // The immediate 77 appears exactly once in bump's body bytes.
    const PlacedModule &pm = image.modules().front();
    const PlacedProc &bump = pm.procs.front();
    std::vector<CodeByteAddr> sites;
    for (unsigned i = 0; i < bump.bodyBytes; ++i) {
        const CodeByteAddr a = bump.prologueAddr + bump.prologueBytes + i;
        if (mem.peekByte(a) == 77)
            sites.push_back(a);
    }
    EXPECT_EQ(sites.size(), 1u);
    mem.pokeByte(sites.front(), 5);

    const RunResult result = machine.run();
    EXPECT_EQ(result.reason, StopReason::TopReturn);
    const Word value = machine.popValue();
    if (stats_json != nullptr) {
        std::ostringstream os;
        obs::StatsExport exp;
        exp.driver = "test_accel";
        exp.impl = implName(config.impl);
        exp.stopReason = stopReasonName(result.reason);
        exp.machine = &machine.stats();
        exp.memory = &mem;
        exp.heap = &machine.heap().stats();
        obs::writeStatsJson(os, exp);
        *stats_json = os.str();
    }
    return value;
}

TEST(AccelInvalidation, PokeByteMidRunDropsStaleDecode)
{
    std::string off_json;
    const Word off = patchMidRun(Mode::Off, &off_json);
    // The result must show a mix of old and new immediates, proving
    // the patch landed mid-run, not before or after.
    EXPECT_NE(off, static_cast<Word>(100 * 77));
    EXPECT_NE(off, static_cast<Word>(100 * 5));
    for (Mode mode : {Mode::On, Mode::Threaded}) {
        // The patch must take effect under acceleration (a stale
        // cached decode of the old immediate would keep adding 77).
        std::string json;
        const Word value = patchMidRun(mode, &json);
        EXPECT_EQ(value, off) << modeName(mode);
        EXPECT_EQ(json, off_json) << modeName(mode);
    }
}

TEST(AccelInvalidation, PokeByteInvalidatesWarmSuperblocks)
{
    // Warm the superblock cache over a complete threaded run, patch
    // bump's immediate through pokeByte, and rerun on the same
    // machine: the code-epoch move must flush every superblock before
    // the next entry, or the second run would keep executing the old
    // immediate out of the stale block.
    const SystemLayout layout;
    Memory mem(layout.memWords);
    Loader loader{layout, SizeClasses::standard()};
    loader.add(callLoopModule());
    const LoadedImage image = loader.load(mem, LinkPlan{});

    MachineConfig config;
    applyMode(config, Mode::Threaded);
    Machine machine(mem, image, config);
    machine.start("M", "main", std::array<Word, 1>{Word{50}});
    ASSERT_EQ(machine.run().reason, StopReason::TopReturn);
    EXPECT_EQ(machine.popValue(), static_cast<Word>(50 * 77));

    const PlacedModule &pm = image.modules().front();
    const PlacedProc &bump = pm.procs.front();
    std::vector<CodeByteAddr> sites;
    for (unsigned i = 0; i < bump.bodyBytes; ++i) {
        const CodeByteAddr a = bump.prologueAddr + bump.prologueBytes + i;
        if (mem.peekByte(a) == 77)
            sites.push_back(a);
    }
    ASSERT_EQ(sites.size(), 1u);
    mem.pokeByte(sites.front(), 5);

    machine.start("M", "main", std::array<Word, 1>{Word{50}});
    ASSERT_EQ(machine.run().reason, StopReason::TopReturn);
    EXPECT_EQ(machine.popValue(), static_cast<Word>(50 * 5));
    EXPECT_GE(machine.accelStats().codeFlushes, 1u);
}

TEST(AccelInvalidation, RelocationFlushesMemoizedEntryPoints)
{
    // Warm every cache over a full run, move the module's code
    // segment, and rerun on the same machine: the memoized entry PCs
    // point into the old segment and must not survive.
    const SystemLayout layout;
    Memory mem(layout.memWords);
    Loader loader{layout, SizeClasses::standard()};
    loader.add(callLoopModule());
    LoadedImage image = loader.load(mem, LinkPlan{});

    MachineConfig config;
    config.impl = Impl::Mesa; // relocation forbids direct linkage
    config.accel.enabled = true;
    Machine machine(mem, image, config);

    machine.start("M", "main", std::array<Word, 1>{Word{50}});
    ASSERT_EQ(machine.run().reason, StopReason::TopReturn);
    EXPECT_EQ(machine.popValue(), static_cast<Word>(50 * 77));

    const unsigned moved =
        relocateModule(mem, image, "M", imageCodeEnd(image));
    ASSERT_GT(moved, 0u);

    machine.start("M", "main", std::array<Word, 1>{Word{50}});
    ASSERT_EQ(machine.run().reason, StopReason::TopReturn);
    EXPECT_EQ(machine.popValue(), static_cast<Word>(50 * 77));
    EXPECT_GE(machine.accelStats().codeFlushes, 1u);
}

// ---------------------------------------------------------------------
// Steady-state behaviour and counters
// ---------------------------------------------------------------------

TEST(AccelCounters, HitRatesExceedNinetyPercentOnCallLoop)
{
    for (const EngineCombo &combo : combos) {
        const SystemLayout layout;
        Memory mem(layout.memWords);
        Loader loader{layout, SizeClasses::standard()};
        loader.add(callLoopModule());
        LinkPlan plan;
        plan.lowering = combo.lowering;
        const LoadedImage image = loader.load(mem, plan);

        MachineConfig config;
        config.impl = combo.impl;
        config.accel.enabled = true;
        Machine machine(mem, image, config);
        machine.start("M", "main", std::array<Word, 1>{Word{500}});
        ASSERT_EQ(machine.run().reason, StopReason::TopReturn)
            << implName(combo.impl);

        const AccelStats a = machine.accelStats();
        EXPECT_GT(a.icacheHitRate(), 0.9) << implName(combo.impl);
        EXPECT_GT(a.linkHitRate(), 0.9) << implName(combo.impl);
    }
}

TEST(AccelCounters, MergeSumsEveryField)
{
    AccelStats a;
    a.icacheHits = 10;
    a.icacheMisses = 2;
    a.extHits = 3;
    a.localHits = 4;
    a.directHits = 5;
    a.fatHits = 6;
    a.extMisses = 1;
    a.codeFlushes = 7;
    AccelStats b;
    b.icacheHits = 100;
    b.localMisses = 9;
    b.tableFlushes = 8;

    a.merge(b);
    EXPECT_EQ(a.icacheHits, 110u);
    EXPECT_EQ(a.icacheMisses, 2u);
    EXPECT_EQ(a.linkHits(), 3u + 4u + 5u + 6u);
    EXPECT_EQ(a.linkMisses(), 1u + 9u);
    EXPECT_EQ(a.codeFlushes, 7u);
    EXPECT_EQ(a.tableFlushes, 8u);
}

TEST(AccelCounters, DisabledMachineReportsZeroes)
{
    const SystemLayout layout;
    Memory mem(layout.memWords);
    Loader loader{layout, SizeClasses::standard()};
    loader.add(callLoopModule());
    const LoadedImage image = loader.load(mem, LinkPlan{});

    MachineConfig config;
    config.accel.enabled = false;
    Machine machine(mem, image, config);
    machine.start("M", "main", std::array<Word, 1>{Word{10}});
    ASSERT_EQ(machine.run().reason, StopReason::TopReturn);
    EXPECT_FALSE(machine.accelEnabled());
    EXPECT_EQ(machine.accelStats().icacheHits, 0u);
    EXPECT_EQ(machine.accelStats().linkHits(), 0u);
}

} // namespace
} // namespace fpc
