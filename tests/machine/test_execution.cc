/**
 * @file
 * End-to-end execution tests: the same programs must compute the same
 * results under every implementation (I1-I4) and every linkage plan,
 * which is the paper's core compatibility claim ("with either linkage
 * the program behaves identically (except for space and speed)").
 */

#include <gtest/gtest.h>

#include "asm/builder.hh"
#include "machine/machine.hh"
#include "program/loader.hh"

namespace fpc
{
namespace
{

/** A Math module: recursive fib, add, and an iterative summation. */
Module
fibModule()
{
    ModuleBuilder b("Math");
    b.globals(2);

    auto &fib = b.proc("fib", 1, 2);
    auto recurse = fib.newLabel();
    fib.loadLocal(0).loadImm(2).op(isa::Op::LT);
    fib.jumpZero(recurse);
    fib.loadLocal(0).ret();
    fib.label(recurse);
    fib.loadLocal(0).loadImm(1).op(isa::Op::SUB).callLocal("fib");
    fib.storeLocal(1);
    fib.loadLocal(0).loadImm(2).op(isa::Op::SUB).callLocal("fib");
    fib.loadLocal(1).op(isa::Op::ADD).ret();

    auto &add = b.proc("add", 2, 2);
    add.loadLocal(0).loadLocal(1).op(isa::Op::ADD).ret();

    auto &sumTo = b.proc("sumTo", 1, 3);
    // sum 1..n iteratively: var i=1, acc=0
    auto loop = sumTo.newLabel();
    auto done = sumTo.newLabel();
    sumTo.loadImm(1).storeLocal(1);
    sumTo.loadImm(0).storeLocal(2);
    sumTo.label(loop);
    sumTo.loadLocal(1).loadLocal(0).op(isa::Op::GT);
    sumTo.jumpNotZero(done);
    sumTo.loadLocal(2).loadLocal(1).op(isa::Op::ADD).storeLocal(2);
    sumTo.loadLocal(1).loadImm(1).op(isa::Op::ADD).storeLocal(1);
    sumTo.jump(loop);
    sumTo.label(done);
    sumTo.loadLocal(2).ret();

    return b.build();
}

/** A client module that calls into Math externally. */
Module
clientModule()
{
    ModuleBuilder b("Client");
    b.globals(1);
    const unsigned fib = b.externRef("Math", "fib");
    const unsigned add = b.externRef("Math", "add");

    auto &main = b.proc("main", 1, 2);
    main.loadLocal(0).callExtern(fib); // fib(n)
    main.storeLocal(1);
    main.loadLocal(1).loadImm(5).callExtern(add); // fib(n) + 5
    main.storeGlobal(0);
    main.loadGlobal(0).ret();

    return b.build();
}

struct Rig
{
    Memory mem{SystemLayout().memWords};
    LoadedImage image;
    std::unique_ptr<Machine> machine;

    Rig(const LinkPlan &plan, const MachineConfig &config)
    {
        Loader loader{SystemLayout(), SizeClasses::standard()};
        loader.add(fibModule());
        loader.add(clientModule());
        image = loader.load(mem, plan);
        machine = std::make_unique<Machine>(mem, image, config);
    }
};

struct ComboParam
{
    Impl impl;
    CallLowering lowering;
    bool shortCalls;
};

std::string
comboName(const testing::TestParamInfo<ComboParam> &info)
{
    std::string name = implName(info.param.impl);
    name += "_";
    name += callLoweringName(info.param.lowering);
    if (info.param.shortCalls)
        name += "_short";
    for (auto &c : name)
        if (c == '-')
            c = '_';
    return name;
}

class ExecutionCombo : public testing::TestWithParam<ComboParam>
{
  protected:
    LinkPlan
    plan() const
    {
        LinkPlan p;
        p.lowering = GetParam().lowering;
        p.shortCalls = GetParam().shortCalls;
        return p;
    }

    MachineConfig
    config() const
    {
        MachineConfig c;
        c.impl = GetParam().impl;
        return c;
    }
};

TEST_P(ExecutionCombo, FibComputesCorrectly)
{
    Rig s(plan(), config());
    const Word arg = 12;
    s.machine->start("Math", "fib", std::array<Word, 1>{arg});
    const RunResult result = s.machine->run();
    ASSERT_EQ(result.reason, StopReason::TopReturn) << result.message;
    ASSERT_EQ(s.machine->stackDepth(), 1u);
    EXPECT_EQ(s.machine->popValue(), 144);
}

TEST_P(ExecutionCombo, ExternalCallsWork)
{
    Rig s(plan(), config());
    s.machine->start("Client", "main", std::array<Word, 1>{Word{10}});
    const RunResult result = s.machine->run();
    ASSERT_EQ(result.reason, StopReason::TopReturn) << result.message;
    EXPECT_EQ(s.machine->popValue(), 55 + 5);
    // The global was written.
    EXPECT_EQ(s.mem.peek(s.image.gfAddr("Client") + 1), 60);
}

TEST_P(ExecutionCombo, IterativeLoopWorks)
{
    Rig s(plan(), config());
    s.machine->start("Math", "sumTo", std::array<Word, 1>{Word{100}});
    const RunResult result = s.machine->run();
    ASSERT_EQ(result.reason, StopReason::TopReturn) << result.message;
    EXPECT_EQ(s.machine->popValue(), 5050);
}

TEST_P(ExecutionCombo, DeepRecursionAndFrameReuse)
{
    Rig s(plan(), config());
    s.machine->start("Math", "fib", std::array<Word, 1>{Word{17}});
    const RunResult result = s.machine->run();
    ASSERT_EQ(result.reason, StopReason::TopReturn) << result.message;
    EXPECT_EQ(s.machine->popValue(), 1597);
    // Every allocated frame was freed again.
    const auto &hs = s.machine->heap().stats();
    const auto &ms = s.machine->stats();
    EXPECT_EQ(hs.allocs + ms.fastFrameAllocs,
              hs.frees + ms.fastFrameFrees +
                  s.machine->config().fastFrameStackDepth *
                      (s.machine->config().impl == Impl::Banked ? 1 : 0));
}

INSTANTIATE_TEST_SUITE_P(
    AllImplsAllPlans, ExecutionCombo,
    testing::Values(
        ComboParam{Impl::Simple, CallLowering::Fat, false},
        ComboParam{Impl::Mesa, CallLowering::Mesa, false},
        ComboParam{Impl::Ifu, CallLowering::Direct, false},
        ComboParam{Impl::Ifu, CallLowering::Direct, true},
        ComboParam{Impl::Banked, CallLowering::Direct, false},
        ComboParam{Impl::Banked, CallLowering::Direct, true},
        // Cross combinations: any impl must run any encoding.
        ComboParam{Impl::Mesa, CallLowering::Fat, false},
        ComboParam{Impl::Banked, CallLowering::Mesa, false},
        ComboParam{Impl::Simple, CallLowering::Mesa, false},
        ComboParam{Impl::Ifu, CallLowering::Mesa, false}),
    comboName);

} // namespace
} // namespace fpc
